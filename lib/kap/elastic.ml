(* Elasticity soak harness: one seeded bursty task stream, three
   protection regimes. The collapse mechanism is the instance cost
   model itself — scheduler-cycle cost grows with queue length, so an
   unbounded queue slows the very cycles that could drain it. The
   protected regime bounds the queue by shedding arrivals (the PR 5
   admission analog at the submission side); the elastic regime keeps
   the same bound but lets the controller buy capacity from the root's
   free headroom when the rolled-up queue gauge climbs. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Session = Flux_cmb.Session
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics
module Flight = Flux_trace.Flight
module Detect = Flux_trace.Detect
module Tmod = Flux_modules.Telem
module Wexec = Flux_modules.Wexec
module Instance = Flux_core.Instance
module Jobspec = Flux_core.Jobspec
module Job = Flux_core.Job
module Pool = Flux_core.Pool
module Ctl = Flux_core.Elastic

type mode = Unprotected | Protected | Elastic

let mode_to_string = function
  | Unprotected -> "unprotected"
  | Protected -> "protected"
  | Elastic -> "elastic"

type config = {
  seed : int;
  size : int;
  fanout : int;
  child_nodes : int;
  mode : mode;
  duration : float;
  drain : float;
  base_rate : float;
  burst_factor : float;
  burst_period : float;
  mean_duration : float;
  min_duration : float;
  queue_cap : int;
  telem_interval : float;
  telem_window : int;
  slope_threshold : float;
  policy : Ctl.policy;
  silence_at : float option;
  cost_model : Instance.cost_model;
  converge_margin : float;
}

let default =
  {
    seed = 1;
    size = 32;
    fanout = 2;
    child_nodes = 4;
    mode = Elastic;
    duration = 6.0;
    drain = 2.0;
    base_rate = 15.0;
    burst_factor = 4.0;
    burst_period = 1.0;
    mean_duration = 0.2;
    min_duration = 0.02;
    queue_cap = 40;
    telem_interval = 0.25;
    telem_window = 16;
    slope_threshold = 3.0;
    policy =
      {
        Ctl.p_metric = "elastic.queue";
        p_high = 12.0;
        p_low = 3.0;
        p_step = 4;
        p_min_nodes = 2;
        p_max_nodes = 24;
        p_cooldown = 0.5;
        p_period = 0.25;
        (* Pressure-driven for the soak: sheds pin the queue at the cap,
           flattening the slope, so alert-gated grows would stall after
           the first step. Alerts still fire and are counted. *)
        p_require_alert = false;
        p_silence = 1.0;
      };
    silence_at = None;
    (* A heavier per-job cycle cost than the default model: this is the
       regime the paper's admission-control argument lives in, where an
       unbounded queue slows the very scheduler that must drain it. At
       the protected cap (40) a cycle costs ~80 ms — painful but below
       the 200 ms mean task, so goodput plateaus; an unbounded queue in
       the hundreds pushes cycles past the task duration and the
       collapse feeds itself. *)
    cost_model = { Instance.default_cost_model with Instance.decision_per_job = 2e-3 };
    converge_margin = 1.0;
  }

let unprotected_case = { default with mode = Unprotected }
let protected_case = { default with mode = Protected }
let elastic_case = { default with mode = Elastic }

let silent_case =
  { default with mode = Elastic; silence_at = Some (0.45 *. default.duration) }

type report = {
  e_mode : mode;
  e_offered : int;
  e_submitted : int;
  e_shed : int;
  e_acked : int;
  e_failed : int;
  e_cancelled : int;
  e_goodput : float;
  e_queue_peak : int;
  e_nodes_final : int;
  e_nodes_peak : int;
  e_grows : int;
  e_shrinks : int;
  e_denied : int;
  e_drains : int;
  e_decisions : int;
  e_fallback_entries : int;
  e_telem_epochs : int;
  e_alerts : int;
  e_write_loss : int;
  e_trajectory : (float * int) list;
  e_fingerprint : string;
  e_violations : string list;
  e_clock : float;
  e_events : int;
}

let prog_name = "elastic.task"
let key_of_tid tid = Printf.sprintf "elastic.t%d" tid

(* The task body: compute, then commit the result to the KVS before
   completing. A task preempted mid-body never reaches the commit of
   the final epoch of work — but its requeued attempt does, which is
   exactly what the acked-write audit verifies. *)
let task_body (ctx : Wexec.proc_ctx) =
  let d = Json.to_float (Json.member "duration" ctx.px_args) in
  let tid = Json.to_int (Json.member "tid" ctx.px_args) in
  Proc.sleep d;
  (match Client.put ctx.px_kvs ~key:(key_of_tid tid) (Json.int tid) with
  | Ok () -> ()
  | Error e -> failwith ("elastic task put: " ^ e));
  match Client.commit ctx.px_kvs with
  | Ok _ -> ()
  | Error e -> failwith ("elastic task commit: " ^ e)

let validate cfg =
  if cfg.size < 8 then invalid_arg "Elastic.run: need at least 8 ranks";
  if cfg.child_nodes < 2 || cfg.child_nodes >= cfg.size then
    invalid_arg "Elastic.run: child_nodes must be in 2..size-1";
  if cfg.duration <= 0.0 || cfg.drain < 0.0 then
    invalid_arg "Elastic.run: duration must be positive, drain non-negative";
  if cfg.base_rate <= 0.0 || cfg.burst_factor < 1.0 || cfg.burst_period <= 0.0 then
    invalid_arg "Elastic.run: rates must be positive, burst_factor >= 1";
  if cfg.mean_duration <= 0.0 || cfg.min_duration <= 0.0 then
    invalid_arg "Elastic.run: task durations must be positive";
  if cfg.queue_cap < 1 then invalid_arg "Elastic.run: queue_cap must be >= 1";
  if cfg.telem_interval <= 0.0 || cfg.telem_window < 4 then
    invalid_arg "Elastic.run: telem_interval positive, telem_window >= 4";
  match Ctl.validate_policy cfg.policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Elastic.run: policy: " ^ e)

let run cfg =
  validate cfg;
  let t_end = cfg.duration +. cfg.drain in
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ~size:cfg.size () in
  let kvs_mod = Kvs.load sess () in
  ignore (Flux_modules.Barrier.load sess () : Flux_modules.Barrier.t array);
  let wexec = Wexec.load sess () in
  let tracer = Tracer.create ~capacity:1_000_000 ~now:(fun () -> Engine.now eng) () in
  let metrics = Metrics.create () in
  Flux_kvs.Kvs_module.set_metrics_all kvs_mod metrics;
  Wexec.set_metrics_all wexec metrics;
  let flight = Flight.create ~capacity:128 tracer in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        violations := Printf.sprintf "t=%.3f %s" (Engine.now eng) s :: !violations;
        ignore
          (Flight.dump_once flight ~rank:0 ~tag:("violation:" ^ s)
             ~reason:("guarantee tripped: " ^ s)
            : Flight.dump option))
      fmt
  in
  Wexec.register_program prog_name task_body;
  (* Telemetry plane: rolls up the queue gauge the harness publishes,
     trend-checks it, and feeds the controller. On in every mode so the
     regimes differ only in protection, not observability. *)
  let tconfig =
    {
      Tmod.default_config with
      Tmod.interval = cfg.telem_interval;
      window = cfg.telem_window;
      slope_threshold = cfg.slope_threshold;
      queue_metrics = [ cfg.policy.Ctl.p_metric ];
    }
  in
  let telem = Tmod.load sess ~config:tconfig () in
  Tmod.set_metrics_all telem metrics;
  Tmod.set_tracer_all telem tracer;
  Tmod.set_flight_all telem flight;
  Tmod.start ~until:(t_end +. (0.25 *. cfg.telem_interval)) telem;
  (match cfg.silence_at with
  | Some at ->
    ignore (Engine.schedule eng ~delay:at (fun () -> Tmod.stop telem) : Engine.handle)
  | None -> ());
  let root =
    Instance.create_root sess ~policy:"fcfs" ~cost_model:cfg.cost_model ~name:"elastic" ()
  in
  Instance.set_tracer root (Some tracer);
  (* The worker child: carved from the root, kept alive past the
     horizon by a sentinel sleep so momentary idleness between
     arrivals cannot complete the child job under the workload. *)
  let sentinel =
    {
      Job.sub_after = 0.0;
      sub_spec = Jobspec.make ~nnodes:1 ~walltime_est:(t_end +. 1.0) ();
      sub_payload = Job.Sleep (t_end +. 0.5);
    }
  in
  ignore
    (Instance.submit root
       ~spec:(Jobspec.make ~nnodes:cfg.child_nodes ~walltime_est:(t_end +. 1.0) ())
       ~payload:(Job.Child { policy = "fcfs"; workload = [ sentinel ] })
      : Job.t);
  let child = ref None in
  let ctl = ref None in
  let offered = ref 0 in
  let submitted = ref 0 in
  let shed = ref 0 in
  let queue_peak = ref 0 in
  let nodes_peak = ref cfg.child_nodes in
  let trajectory = ref [] in
  let write_loss = ref 0 in
  let durations : (int, float) Hashtbl.t = Hashtbl.create 512 in
  let arr_rng = Rng.create cfg.seed in
  let rate_at now =
    let phase = Float.rem now cfg.burst_period in
    if phase < 0.5 *. cfg.burst_period then cfg.base_rate *. cfg.burst_factor
    else cfg.base_rate
  in
  let setup_at = 0.05 in
  ignore
    (Engine.schedule eng ~delay:setup_at (fun () ->
         let c =
           match Instance.children root with
           | [ c ] -> c
           | cs ->
             invalid_arg
               (Printf.sprintf "Elastic.run: expected 1 child, found %d" (List.length cs))
         in
         child := Some c;
         (* Elastic regime only: wire the controller to the child. *)
         (match cfg.mode with
         | Elastic ->
           let k = Ctl.create sess ~instance:c ~telem ~policy:cfg.policy () in
           Ctl.set_tracer k tracer;
           Ctl.set_metrics k metrics;
           Ctl.set_flight k flight;
           Ctl.start ~until:(t_end -. setup_at) k;
           ctl := Some k
         | Unprotected | Protected -> ());
         (* Queue gauge + trajectory sampler. *)
         let sampler =
           Engine.every eng ~period:0.05 (fun () ->
               let q = Instance.queue_length c in
               queue_peak := max !queue_peak q;
               Metrics.set_gauge metrics ~name:cfg.policy.Ctl.p_metric ~rank:0
                 (float_of_int q);
               let n = Pool.total_nodes (Instance.pool c) in
               nodes_peak := max !nodes_peak n;
               trajectory := (Engine.now eng, n) :: !trajectory)
         in
         ignore (Engine.schedule eng ~delay:(t_end -. setup_at) (fun () -> Engine.cancel sampler)
                 : Engine.handle);
         (* Open-loop bursty arrivals. The duration draw happens for
            every arrival — shed or not — so the random stream, task
            ids and durations are identical across the three modes. *)
         let rec arrive () =
           let now = Engine.now eng in
           if now < cfg.duration then begin
             let tid = !offered in
             incr offered;
             let d =
               Float.max cfg.min_duration (Rng.exponential arr_rng cfg.mean_duration)
             in
             Hashtbl.replace durations tid d;
             if cfg.mode <> Unprotected && Instance.queue_length c >= cfg.queue_cap then
               incr shed
             else begin
               incr submitted;
               ignore
                 (Instance.submit c
                    ~spec:(Jobspec.make ~nnodes:1 ~walltime_est:(2.0 *. d) ())
                    ~payload:
                      (Job.App
                         {
                           prog = prog_name;
                           args = Json.obj [ ("tid", Json.int tid) ];
                           per_rank = 1;
                           duration = d;
                         })
                   : Job.t)
             end;
             let gap = Rng.exponential arr_rng (1.0 /. rate_at now) in
             ignore (Engine.schedule eng ~delay:gap arrive : Engine.handle)
           end
         in
         arrive ())
      : Engine.handle);
  (* Horizon: cancel what never started so the unbounded regime's
     backlog does not stretch the run arbitrarily past the window the
     regimes are compared over. *)
  ignore
    (Engine.schedule eng ~delay:t_end (fun () ->
         match !child with
         | None -> ()
         | Some c ->
           List.iter
             (fun (j : Job.t) ->
               match j.Job.jstate with
               | Job.Pending ->
                 ignore (Instance.cancel c ~jid:j.Job.jid : bool)
               | _ -> ())
             (Instance.jobs c))
      : Engine.handle);
  (* Acked-write audit, after the horizon sweep and the wexec tails:
     every completed attempt's tid must have its committed key. *)
  ignore
    (Engine.schedule eng ~delay:(t_end +. 0.3) (fun () ->
         ignore
           (Proc.spawn eng ~name:"elastic-audit" (fun () ->
                match !child with
                | None -> ()
                | Some c ->
                  let kv = Client.connect sess ~rank:0 in
                  List.iter
                    (fun (j : Job.t) ->
                      match (j.Job.jstate, j.Job.job_payload) with
                      | Job.Complete, Job.App { args; _ } -> (
                        match Json.member_opt "tid" args with
                        | None -> ()
                        | Some t -> (
                          let tid = Json.to_int t in
                          match Client.get kv ~key:(key_of_tid tid) with
                          | Ok v when Json.to_int v = tid -> ()
                          | Ok _ ->
                            incr write_loss;
                            violate "task %d: key holds wrong value" tid
                          | Error _ ->
                            incr write_loss;
                            violate "task %d acked but its write is gone" tid))
                      | _ -> ())
                    (Instance.jobs c))
              : Proc.pid))
      : Engine.handle);
  Engine.run eng;
  (* --- Outcome accounting ------------------------------------------------ *)
  let c = match !child with Some c -> c | None -> invalid_arg "Elastic.run: no child" in
  let acked_tids : (int, unit) Hashtbl.t = Hashtbl.create 512 in
  let failed = ref 0 in
  let cancelled = ref 0 in
  List.iter
    (fun (j : Job.t) ->
      match (j.Job.jstate, j.Job.job_payload) with
      | Job.Complete, Job.App { args; _ } -> (
        match Json.member_opt "tid" args with
        | Some t -> Hashtbl.replace acked_tids (Json.to_int t) ()
        | None -> ())
      | Job.Failed _, Job.App _ -> incr failed
      | Job.Cancelled, Job.App _ -> incr cancelled
      | _ -> ())
    (Instance.jobs c);
  let acked = Hashtbl.length acked_tids in
  let actions = match !ctl with None -> [] | Some k -> Ctl.actions k in
  let grows =
    List.length (List.filter (fun (_, d) -> match d with Ctl.Grow _ -> true | _ -> false) actions)
  in
  let shrinks =
    List.length
      (List.filter (fun (_, d) -> match d with Ctl.Shrink _ -> true | _ -> false) actions)
  in
  (* --- Guarantees -------------------------------------------------------- *)
  (match
     List.find_opt
       (fun (j : Job.t) -> match j.Job.job_payload with Job.Sleep _ -> true | _ -> false)
       (Instance.jobs c)
   with
  | Some j when j.Job.jstate <> Job.Complete ->
    violate "sentinel job ended %s" (Job.state_to_string j.Job.jstate)
  | Some _ -> ()
  | None -> violate "sentinel job missing");
  (match !ctl with
  | None -> ()
  | Some k ->
    (* Convergence: once arrivals stop (plus rollup lag), growing must
       stop — a controller that keeps buying nodes for an empty queue
       has not converged. *)
    List.iter
      (fun (ts, d) ->
        match d with
        | Ctl.Grow _ when ts > cfg.duration +. cfg.converge_margin ->
          violate "grow at t=%.3f, %.3f after arrivals stopped" ts (ts -. cfg.duration)
        | _ -> ())
      (Ctl.actions k);
    (match cfg.silence_at with
    | Some at ->
      if Ctl.fallback_entries k = 0 then violate "telemetry went silent, no fallback";
      let deadline = at +. cfg.policy.Ctl.p_silence +. (2.0 *. cfg.policy.Ctl.p_period) in
      List.iter
        (fun (ts, _) ->
          if ts > deadline then violate "action at t=%.3f on silent telemetry" ts)
        (Ctl.actions k)
    | None ->
      if Tmod.alerts telem = [] then violate "overload ran but telemetry never alerted"));
  if cfg.mode = Unprotected && !shed > 0 then violate "unprotected mode shed arrivals";
  if !write_loss > 0 then violate "%d acked writes lost" !write_loss;
  let alerts = Tmod.alerts telem in
  let fingerprint =
    let ctl_fp = match !ctl with None -> "-" | Some k -> Ctl.fingerprint k in
    let alert_fp =
      String.concat ";"
        (List.map
           (fun (a : Detect.alert) ->
             Printf.sprintf "%s:%d:%d"
               (Detect.kind_to_string a.Detect.al_kind)
               a.Detect.al_epoch a.Detect.al_rank)
           alerts)
    in
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%s|%d|%d|%d|%s|%d|%d" ctl_fp !offered !shed acked alert_fp
            (Engine.events_executed eng)
            (Pool.total_nodes (Instance.pool c))))
  in
  {
    e_mode = cfg.mode;
    e_offered = !offered;
    e_submitted = !submitted;
    e_shed = !shed;
    e_acked = acked;
    e_failed = !failed;
    e_cancelled = !cancelled;
    e_goodput = float_of_int acked /. cfg.duration;
    e_queue_peak = !queue_peak;
    e_nodes_final = Pool.total_nodes (Instance.pool c);
    e_nodes_peak = !nodes_peak;
    e_grows = grows;
    e_shrinks = shrinks;
    e_denied = (match !ctl with None -> 0 | Some k -> Ctl.denied k);
    e_drains = (match !ctl with None -> 0 | Some k -> Ctl.drains k);
    e_decisions = (match !ctl with None -> 0 | Some k -> List.length (Ctl.decisions k));
    e_fallback_entries = (match !ctl with None -> 0 | Some k -> Ctl.fallback_entries k);
    e_telem_epochs = Tmod.epochs_completed telem;
    e_alerts = List.length alerts;
    e_write_loss = !write_loss;
    e_trajectory = List.rev !trajectory;
    e_fingerprint = fingerprint;
    e_violations = List.rev !violations;
    e_clock = Engine.now eng;
    e_events = Engine.events_executed eng;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: offered %d (submitted %d, shed %d), acked %d (%.1f/s)@,\
     failed %d, cancelled %d, queue peak %d@,\
     nodes: final %d, peak %d; grows %d, shrinks %d (drains %d, denied %d)@,\
     decisions %d, fallbacks %d; telem: %d epochs, %d alerts@,\
     write loss %d@,clock %.3f (%d events)@,violations: %d%a@]"
    (mode_to_string r.e_mode) r.e_offered r.e_submitted r.e_shed r.e_acked r.e_goodput
    r.e_failed r.e_cancelled r.e_queue_peak r.e_nodes_final r.e_nodes_peak r.e_grows
    r.e_shrinks r.e_drains r.e_denied r.e_decisions r.e_fallback_entries r.e_telem_epochs
    r.e_alerts r.e_write_loss r.e_clock r.e_events
    (List.length r.e_violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.e_violations
