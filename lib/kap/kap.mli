(** KAP — KVS Access Patterns, the dedicated tester from the paper's
    evaluation (Section V).

    KAP stresses the KVS abstraction and the underlying CMB: a
    configurable number of producers write key-value objects, everyone
    synchronizes through a consistency protocol, and a configurable
    number of consumers read the objects back. Four phases — setup,
    producer, synchronization, consumer — are timed per process and the
    per-phase {e maximum} latency (the paper's critical-path metric) is
    reported. *)

type value_kind =
  | Unique  (** every producer writes distinct values *)
  | Redundant  (** all producers write the same value — reducible *)

type dir_layout =
  | Single_dir  (** all objects in one KVS directory (Figure 4a) *)
  | Multi_dir of int  (** at most this many objects per directory (128 in the paper) *)

type sync_kind =
  | Fence  (** everyone joins one [kvs_fence] *)
  | Commit_wait  (** producers commit individually; consumers [kvs_wait_version] *)

type config = {
  nodes : int;
  procs_per_node : int;
  producers : int;  (** first [producers] global ranks produce *)
  consumers : int;  (** first [consumers] global ranks consume *)
  nputs : int;  (** objects put by each producer *)
  ngets : int;  (** objects read by each consumer (the access count) *)
  value_size : int;  (** serialized bytes per value *)
  value_kind : value_kind;
  dir_layout : dir_layout;
  sync : sync_kind;
  access_stride : int;  (** consumer c reads objects [c*stride + k] mod total *)
  fanout : int;  (** CMB tree fan-out *)
  net_config : Flux_sim.Net.config option;
  kvs_config : Flux_kvs.Kvs_module.config option;
  trace : bool;  (** attach a tracer to the session and KVS instances *)
}

val default : config
(** 4 nodes x 16 procs, everyone produces and consumes one 8-byte
    object, fence sync, single directory, binary tree. *)

val fully_populated : nodes:int -> config
(** The paper's most revealing configuration: every core runs a process
    acting as both producer and consumer. *)

type phase_metrics = {
  ph_max : float;  (** max latency over participating processes *)
  ph_mean : float;
  ph_min : float;
}

type result = {
  r_config : config;
  r_setup : phase_metrics;
  r_producer : phase_metrics;
  r_sync : phase_metrics;
  r_consumer : phase_metrics;
  r_total_objects : int;
  r_root_ingress_bytes : int;  (** RPC-plane bytes into rank 0 *)
  r_rpc_messages : int;
  r_loads_issued : int;  (** fault-in requests across all slaves *)
  r_wallclock : float;  (** virtual seconds for the whole run *)
  r_events : int;  (** engine callbacks fired (a determinism fingerprint) *)
  r_trace : Flux_trace.Tracer.t option;  (** present when [trace] was set *)
  r_metrics : Flux_trace.Metrics.t option;
      (** the run's metrics registry (RPC latency, per-hop net, KVS
          cache/commit histograms); present when [trace] was set *)
}

val run : config -> result
(** Execute one KAP configuration on a fresh simulated cluster. Raises
    [Invalid_argument] on inconsistent configs (e.g. consumers but no
    producers). *)

val pp_result : Format.formatter -> result -> unit
(** One-line summary, bench-harness friendly. *)
