(** Closed-loop elasticity soak: one bursty open-loop task stream run
    against a child instance under three protection regimes —
    [Unprotected] (no admission bound, no controller: the queue grows
    without bound and scheduler-cycle cost grows with it, collapsing
    goodput), [Protected] (PR 5-style static protection: arrivals are
    shed at a queue cap, goodput plateaus at the child's fixed
    capacity), and [Elastic] (same cap, plus the
    {!Flux_core.Elastic} controller growing the child out of the
    root's headroom when the telemetry plane reports queue pressure,
    and shrinking it back — drain-before-shrink included — once the
    burst subsides).

    Tasks are wexec launches whose bodies commit a KVS key before
    completing, so the harness can audit the rescale safety guarantee
    directly: every acked (completed) task's write is present after
    the run, across every grow, preemption and requeue — zero
    acked-write loss. Convergence is audited too: once arrivals stop,
    the controller must stop growing. *)

module Detect = Flux_trace.Detect
module Ctl = Flux_core.Elastic

type mode = Unprotected | Protected | Elastic

val mode_to_string : mode -> string

type config = {
  seed : int;
  size : int;  (** session ranks; the root instance owns them all *)
  fanout : int;
  child_nodes : int;  (** the worker child's initial pool *)
  mode : mode;
  duration : float;  (** arrival window, sim-seconds *)
  drain : float;  (** controller/telemetry run-on after arrivals stop *)
  base_rate : float;  (** off-burst arrival rate, tasks/s *)
  burst_factor : float;  (** rate multiplier during the burst half *)
  burst_period : float;  (** square-wave period; burst = first half *)
  mean_duration : float;  (** exponential task-duration mean *)
  min_duration : float;
  queue_cap : int;  (** Protected/Elastic submission-shed bound *)
  telem_interval : float;  (** rollup epoch length *)
  telem_window : int;
  slope_threshold : float;  (** queue-growth alert slope, units/epoch *)
  policy : Ctl.policy;  (** controller policy (Elastic mode only) *)
  silence_at : float option;
      (** stop the telemetry plane at this sim time — the
          telemetry-silent fallback case *)
  cost_model : Flux_core.Instance.cost_model;
  converge_margin : float;
      (** no grow may fire later than [duration + converge_margin] *)
}

val default : config
(** 32 ranks, child of 4, 6 s of arrivals (15/s base, 4x bursts every
    1 s) + 2 s drain, 0.2 s mean tasks, cap 40, pressure-driven
    controller (band 3..12, step 4, nodes 2..24, cooldown 0.5 s),
    [Elastic] mode. *)

val unprotected_case : config
val protected_case : config
val elastic_case : config

val silent_case : config
(** [Elastic] with the telemetry plane killed mid-run: the controller
    must detect the silence, hold everything, and never act on stale
    pressure again. *)

type report = {
  e_mode : mode;
  e_offered : int;  (** arrivals generated (shed ones included) *)
  e_submitted : int;
  e_shed : int;
  e_acked : int;  (** logical tasks with a completed attempt *)
  e_failed : int;  (** failed attempts (preemptions included) *)
  e_cancelled : int;  (** attempts cancelled at the horizon *)
  e_goodput : float;  (** acked / duration *)
  e_queue_peak : int;
  e_nodes_final : int;
  e_nodes_peak : int;
  e_grows : int;  (** applied grow decisions *)
  e_shrinks : int;  (** applied shrink decisions (drains included) *)
  e_denied : int;
  e_drains : int;
  e_decisions : int;  (** every controller tick's decision *)
  e_fallback_entries : int;
  e_telem_epochs : int;
  e_alerts : int;  (** root-raised telemetry alerts *)
  e_write_loss : int;  (** acked tasks whose KVS key was missing *)
  e_trajectory : (float * int) list;  (** sampled (time, child nodes) *)
  e_fingerprint : string;  (** determinism witness *)
  e_violations : string list;
  e_clock : float;
  e_events : int;
}

val run : config -> report
(** One soak under one regime. Raises [Invalid_argument] on a config
    that cannot be run (bad sizes, rates, or controller policy). *)

val pp_report : Format.formatter -> report -> unit
