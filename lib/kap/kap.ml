module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Barrier = Flux_modules.Barrier
module Stats = Flux_util.Stats

type value_kind = Unique | Redundant

type dir_layout = Single_dir | Multi_dir of int

type sync_kind = Fence | Commit_wait

type config = {
  nodes : int;
  procs_per_node : int;
  producers : int;
  consumers : int;
  nputs : int;
  ngets : int;
  value_size : int;
  value_kind : value_kind;
  dir_layout : dir_layout;
  sync : sync_kind;
  access_stride : int;
  fanout : int;
  net_config : Flux_sim.Net.config option;
  kvs_config : Flux_kvs.Kvs_module.config option;
  trace : bool;
}

let default =
  {
    nodes = 4;
    procs_per_node = 16;
    producers = 64;
    consumers = 64;
    nputs = 1;
    ngets = 1;
    value_size = 8;
    value_kind = Unique;
    dir_layout = Single_dir;
    sync = Fence;
    access_stride = 1;
    fanout = 2;
    net_config = None;
    kvs_config = None;
    trace = false;
  }

let fully_populated ~nodes =
  let total = nodes * 16 in
  { default with nodes; producers = total; consumers = total }

type phase_metrics = { ph_max : float; ph_mean : float; ph_min : float }

type result = {
  r_config : config;
  r_setup : phase_metrics;
  r_producer : phase_metrics;
  r_sync : phase_metrics;
  r_consumer : phase_metrics;
  r_total_objects : int;
  r_root_ingress_bytes : int;
  r_rpc_messages : int;
  r_loads_issued : int;
  r_wallclock : float;
  r_events : int;
  r_trace : Flux_trace.Tracer.t option;
  r_metrics : Flux_trace.Metrics.t option;
}

(* --- Value generation -------------------------------------------------- *)

(* Filler strings are memoized so that a 32 KiB redundant workload does
   not allocate one fresh buffer per producer. Unique values embed a
   10-digit tag and share the filler tail structurally, so even the
   unique-value runs stay within a constant memory footprint. *)
let fillers : (int, Json.t) Hashtbl.t = Hashtbl.create 8

let filler_sized n =
  match Hashtbl.find_opt fillers n with
  | Some v -> v
  | None ->
    let v = Json.pad n in
    Hashtbl.replace fillers n v;
    v

let make_value kind ~size ~salt =
  match kind with
  | Redundant -> filler_sized size
  | Unique ->
    if size < 20 then
      (* Too small for the tagged-list trick: a bare numeric string.
         Serialized size = width + 2 quotes. *)
      Json.string (Printf.sprintf "%0*d" (max 1 (size - 2)) salt)
    else
      (* ["<10-digit tag>", "<filler>"] — serialized size is
         2 (brackets) + 12 (tag) + 1 (comma) + filler. *)
      Json.list [ Json.string (Printf.sprintf "%010d" salt); filler_sized (size - 15) ]

(* --- Key layout ---------------------------------------------------------- *)

let key_of_object layout idx =
  match layout with
  | Single_dir -> Printf.sprintf "kap.o%d" idx
  | Multi_dir per_dir -> Printf.sprintf "kap.d%d.o%d" (idx / per_dir) idx

(* --- The tester ----------------------------------------------------------- *)

let metrics_of stats =
  if Stats.count stats = 0 then { ph_max = 0.0; ph_mean = 0.0; ph_min = 0.0 }
  else { ph_max = Stats.max stats; ph_mean = Stats.mean stats; ph_min = Stats.min stats }

let run cfg =
  if cfg.nodes <= 0 || cfg.procs_per_node <= 0 then
    invalid_arg "Kap.run: need at least one node and one process";
  let total = cfg.nodes * cfg.procs_per_node in
  if cfg.producers > total || cfg.consumers > total then
    invalid_arg "Kap.run: more roles than processes";
  if cfg.consumers > 0 && cfg.producers = 0 then
    invalid_arg "Kap.run: consumers need producers";
  (match cfg.dir_layout with
  | Multi_dir n when n <= 0 -> invalid_arg "Kap.run: directory size must be positive"
  | _ -> ());
  let total_objects = cfg.producers * cfg.nputs in
  let eng = Engine.create () in
  let sess =
    match cfg.net_config with
    | Some net_config -> Session.create eng ~net_config ~fanout:cfg.fanout ~size:cfg.nodes ()
    | None -> Session.create eng ~fanout:cfg.fanout ~size:cfg.nodes ()
  in
  let kvs =
    match cfg.kvs_config with
    | Some config -> Kvs.load sess ~config ()
    | None -> Kvs.load sess ()
  in
  let barriers = Barrier.load sess () in
  let tracer, metrics =
    if cfg.trace then begin
      (* Sized so a fully-populated 64-node fence keeps its early
         [fence.enter] events: critical-path analysis needs the whole
         span tree, not just the tail of the run. *)
      let tr =
        Flux_trace.Tracer.create ~capacity:2_000_000 ~now:(fun () -> Engine.now eng) ()
      in
      let m = Flux_trace.Metrics.create () in
      Session.set_tracer sess (Some tr);
      Session.set_metrics sess (Some m);
      Kvs.set_tracer_all kvs tr;
      Kvs.set_metrics_all kvs m;
      Barrier.set_tracer_all barriers tr;
      (Some tr, Some m)
    end
    else (None, None)
  in
  let setup_s = Stats.create () in
  let producer_s = Stats.create () in
  let sync_s = Stats.create () in
  let consumer_s = Stats.create () in
  let incomplete = ref total in
  let expect label = function
    | Ok v -> v
    | Error e -> failwith (Printf.sprintf "KAP %s failed: %s" label e)
  in
  (* Commit_wait bookkeeping: producers commit individually; the highest
     resulting version is handed to waiters out of band, mirroring the
     paper's causal-consistency pattern (A passes a store version to B,
     B calls kvs_wait_version before reading). *)
  let commits_done = ref 0 in
  let vmax = ref 0 in
  let all_committed = Flux_sim.Ivar.create () in
  for p = 0 to total - 1 do
    (* Consecutive global ranks land on consecutive nodes, per the paper. *)
    let node = p mod cfg.nodes in
    let is_producer = p < cfg.producers in
    let is_consumer = p < cfg.consumers in
    ignore
      (Proc.spawn eng ~name:(Printf.sprintf "kap-%d" p) (fun () ->
           let api = Api.connect sess ~rank:node in
           let c = Client.connect sess ~rank:node in
           (* Phase 1: setup — all testers rendezvous. *)
           let t0 = Engine.now eng in
           expect "setup barrier" (Barrier.enter api ~name:"kap-setup" ~nprocs:total);
           Stats.add setup_s (Engine.now eng -. t0);
           (* Phase 2: producer. *)
           let t1 = Engine.now eng in
           if is_producer then
             for j = 0 to cfg.nputs - 1 do
               let idx = (p * cfg.nputs) + j in
               let key = key_of_object cfg.dir_layout idx in
               let value = make_value cfg.value_kind ~size:cfg.value_size ~salt:idx in
               expect "put" (Client.put c ~key value)
             done;
           Stats.add producer_s (Engine.now eng -. t1);
           (* Phase 3: synchronization. *)
           let t2 = Engine.now eng in
           (match cfg.sync with
           | Fence ->
             ignore (expect "fence" (Client.fence c ~name:"kap-sync" ~nprocs:total) : int)
           | Commit_wait when cfg.producers = 0 -> ()
           | Commit_wait ->
             if is_producer then begin
               let v = expect "commit" (Client.commit c) in
               vmax := max !vmax v;
               incr commits_done;
               if !commits_done = cfg.producers then
                 Flux_sim.Ivar.fill eng all_committed !vmax
             end;
             let v = Proc.await all_committed in
             expect "wait_version" (Client.wait_version c v));
           Stats.add sync_s (Engine.now eng -. t2);
           (* Phase 4: consumer. *)
           let t3 = Engine.now eng in
           if is_consumer && total_objects > 0 then
             for k = 0 to cfg.ngets - 1 do
               let idx = ((p * cfg.access_stride) + k) mod total_objects in
               let key = key_of_object cfg.dir_layout idx in
               ignore (expect "get" (Client.get c ~key) : Json.t)
             done;
           Stats.add consumer_s (Engine.now eng -. t3);
           decr incomplete)
        : Proc.pid)
  done;
  Engine.run eng;
  if !incomplete <> 0 then
    failwith (Printf.sprintf "KAP: %d tester processes did not finish" !incomplete);
  let loads = Array.fold_left (fun acc k -> acc + Kvs.loads_issued k) 0 kvs in
  {
    r_config = cfg;
    r_setup = metrics_of setup_s;
    r_producer = metrics_of producer_s;
    r_sync = metrics_of sync_s;
    r_consumer = metrics_of consumer_s;
    r_total_objects = total_objects;
    r_root_ingress_bytes = Session.root_rpc_ingress_bytes sess;
    r_rpc_messages = (Session.rpc_net_stats sess).Flux_sim.Net.messages;
    r_loads_issued = loads;
    r_wallclock = Engine.now eng;
    r_events = Engine.events_executed eng;
    r_trace = tracer;
    r_metrics = metrics;
  }

let pp_result ppf r =
  let c = r.r_config in
  Format.fprintf ppf
    "nodes=%d procs=%d prod=%d cons=%d vsize=%d %s %s put_max=%.6f fence_max=%.6f get_max=%.6f"
    c.nodes
    (c.nodes * c.procs_per_node)
    c.producers c.consumers c.value_size
    (match c.value_kind with Unique -> "uniq" | Redundant -> "red")
    (match c.dir_layout with Single_dir -> "1dir" | Multi_dir n -> Printf.sprintf "dir%d" n)
    r.r_producer.ph_max r.r_sync.ph_max r.r_consumer.ph_max
