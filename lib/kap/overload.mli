(** Overload/soak harness: open-loop producers drive the KVS write path
    past the master's capacity while every overload-protection layer is
    engaged, and the run is checked against the guarantees shedding must
    not break.

    Producers inject [kvs.mput] streams at a configured aggregate rate
    — open loop, so offered load does not slacken as queues fill, which
    is the regime closed-loop clients can never reach. The protection
    stack under test:

    - bounded per-link queues on the RPC plane ({!Flux_sim.Net.set_link_limits});
    - credit-based flow control on the request tree
      ({!Flux_cmb.Session.flow_config});
    - master admission control
      ({!Flux_kvs.Kvs_module.config.admission_max_intake}), whose busy
      rejections carry a [retry_after] hint the RPC layer honours.

    Checked invariants (breaches land in [violations]; empty = proved):

    - {b bounded occupancy}: every configured queue's high-water mark
      stays within its cap;
    - {b zero acked-write loss}: every acknowledged mput reads back with
      its committed value after the run drains — shedding may reject
      offered load, never acknowledged load;
    - {b monotonic reads}: a monitor polling [get_version] through the
      storm never observes a version regression;
    - {b eventual drain}: once arrivals stop, every stash and intake
      queue empties and every offered op resolves (ack, busy, or
      timeout).

    Deterministic for a given config: same seed, same arrivals, same
    report. *)

module Session = Flux_cmb.Session
module Net = Flux_sim.Net
module Kvs = Flux_kvs.Kvs_module

type profile =
  | Sustained  (** constant-rate Poisson arrivals *)
  | Bursty
      (** square-wave modulation: each [burst_period] spends half at
          [burst_factor] times the stream rate and half at the
          reciprocal, hammering the queues while the average stays near
          the configured rate *)

type config = {
  seed : int;  (** everything stochastic derives from this *)
  size : int;  (** session ranks *)
  fanout : int;
  producers : int list;  (** ranks injecting streams (never rank 0) *)
  rate : float;  (** aggregate offered ops/second across producers *)
  duration : float;  (** injection window, virtual seconds *)
  profile : profile;
  burst_factor : float;
  burst_period : float;
  value_bytes : int;  (** padding per written value *)
  op_timeout : float;  (** per-attempt client deadline *)
  op_attempts : int;
  flow : Session.flow_config option;  (** TBON credit window; [None] = off *)
  link_limits : Net.queue_limits option;  (** RPC-plane caps; [None] = off *)
  kvs : Kvs.config;  (** admission control lives here *)
  chaos_kill : bool;
      (** overlay one interior-rank kill/revive mid-run, proving the
          invariants hold across a fault under load *)
  telem : bool;
      (** run the live telemetry plane ({!Flux_modules.Telem}) in-band
          with the soak: rollups contend for the same links, credits,
          and admission gate; guarantee trips and chaos kills take
          flight-recorder dumps *)
  telem_interval : float;
      (** rollup epoch length in virtual seconds; [<= 0] (the default)
          picks [duration / 10]. The telemetry bench sweeps this — the
          plane's cost is proportional to rollup cadence. *)
}

val default : config
(** 64 ranks, 8 leaf producers, every protection layer on, and a 100 us
    serial apply so the master saturates at 10k ops/s — small enough to
    drive 2x past capacity in half a virtual second. *)

val master_capacity : config -> float
(** The master's apply-rate ceiling implied by the config, ops/second
    (1-tuple ops): the natural unit for choosing [rate] multiples. *)

type report = {
  offered : int;  (** ops injected *)
  acked : int;  (** ops acknowledged Ok *)
  shed : int;  (** ops rejected busy after retries *)
  failed : int;  (** other failures (timeouts) *)
  goodput : float;  (** acked ops / (injection + drain) window, ops/second *)
  ack_p50 : float;  (** median ack latency, seconds *)
  ack_p99 : float;
  admission_sheds : int;  (** master-gate busy rejections *)
  intake_hwm : int;
  flow_defers : int;
  flow_sheds : int;
  flow_stash_hwm : int;
  link_defers : int;  (** sends postponed by [Block] link policy *)
  link_drops : int;  (** sends shed by drop link policies *)
  link_depth_hwm : int;
  rpc_busy_retries : int;
  rpc_retries : int;
  rpc_timeouts : int;
  lost_acks : int;  (** acked writes that failed read-back — must be 0 *)
  monotonic_violations : int;  (** version regressions seen — must be 0 *)
  drained : bool;  (** all queues empty after arrivals stopped *)
  violations : string list;  (** invariant breaches; empty = proved *)
  final_version : int;
  final_clock : float;
  sim_events : int;  (** engine callbacks fired (determinism fingerprint) *)
  telem_epochs : int;  (** rollup epochs finalized (0 with [telem] off) *)
  telem_alerts : int;
  telem_dumps : int;  (** flight-recorder dumps taken *)
}

val run : config -> report
(** Raises [Invalid_argument] on an empty/out-of-range producer list or
    non-positive rate/duration. *)

val pp_report : Format.formatter -> report -> unit
