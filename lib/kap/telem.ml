(* Telemetry-plane harness: a seeded synthetic workload with injectable
   faults, run under the live telemetry plane, checking that the plane
   actually sees them. Every rank runs a timed-work loop feeding the
   [telem.work] histogram; the faults are a straggler (one rank's work
   items slow down by a factor mid-run), a kill (mark_down, which must
   produce a flight dump of the victim's last events), a mute (one
   rank's telemetry agent dies while the rank stays up — the silent-rank
   case), and a queue ramp (a gauge growing linearly, the trend the
   elasticity roadmap item wants detected). Guarantees trip into the
   violations list and themselves take a flight dump, so every failed
   run carries its own evidence. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Rng = Flux_util.Rng
module Session = Flux_cmb.Session
module Metrics = Flux_trace.Metrics
module Tracer = Flux_trace.Tracer
module Flight = Flux_trace.Flight
module Series = Flux_trace.Series
module Detect = Flux_trace.Detect
module Tmod = Flux_modules.Telem

type config = {
  seed : int;
  size : int;
  fanout : int;
  interval : float; (* rollup epoch length *)
  epochs : int; (* run duration = epochs * interval *)
  window : int;
  straggler_k : float;
  slope_threshold : float;
  work_mean : float; (* mean work-item duration *)
  work_per_epoch : int; (* work items per rank per epoch *)
  straggler : (int * float) option; (* rank, slowdown factor *)
  onset_frac : float; (* fault onset as a fraction of the run *)
  kill : int option; (* rank marked down at onset *)
  mute : int option; (* rank whose telemetry agent dies at onset *)
  ramp : float option; (* telem.qdepth gauge growth, units/epoch *)
}

let default =
  {
    seed = 1;
    size = 16;
    fanout = 2;
    interval = 0.05;
    epochs = 12;
    window = 32;
    straggler_k = 4.0;
    slope_threshold = 1.0;
    work_mean = 0.002;
    work_per_epoch = 4;
    straggler = Some (11, 10.0);
    onset_frac = 0.3;
    kill = None;
    mute = None;
    ramp = None;
  }

let straggler_case = default
let kill_case = { default with straggler = None; kill = Some 9 }
let silent_case = { default with straggler = None; mute = Some 7 }
let growth_case = { default with straggler = None; ramp = Some 4.0 }

type report = {
  t_epochs : int; (* rollup epochs the root finalized *)
  t_alerts : Detect.alert list;
  t_stragglers : int;
  t_growth : int;
  t_silent : int;
  t_first_straggler_epoch : int; (* -1 when none fired *)
  t_onset_epoch : int; (* rollup epoch containing the fault onset *)
  t_dumps : int;
  t_victim_dump_events : int; (* events in the killed rank's dump; -1 without a kill *)
  t_rollup_bytes : int;
  t_late_drops : int;
  t_alert_fingerprint : string; (* determinism check: kind:epoch:rank:metric;... *)
  t_violations : string list;
  t_clock : float;
  t_events : int; (* engine fingerprint *)
  t_series : Series.t;
  t_flight : Flight.t;
  t_tracer : Tracer.t;
  t_metrics : Metrics.t;
}

let alert_fingerprint alerts =
  String.concat ";"
    (List.map
       (fun (a : Detect.alert) ->
         Printf.sprintf "%s:%d:%d:%s"
           (Detect.kind_to_string a.Detect.al_kind)
           a.Detect.al_epoch a.Detect.al_rank a.Detect.al_metric)
       alerts)

let run cfg =
  if cfg.size < 4 then invalid_arg "Telem.run: need at least 4 ranks";
  if cfg.epochs < 4 then invalid_arg "Telem.run: need at least 4 epochs";
  if cfg.interval <= 0.0 || cfg.work_mean <= 0.0 then
    invalid_arg "Telem.run: interval and work_mean must be positive";
  if cfg.work_per_epoch <= 0 then invalid_arg "Telem.run: work_per_epoch must be positive";
  if cfg.onset_frac < 0.0 || cfg.onset_frac >= 1.0 then
    invalid_arg "Telem.run: onset_frac must be in [0, 1)";
  let check_rank what = function
    | Some r when r <= 0 || r >= cfg.size ->
      invalid_arg (Printf.sprintf "Telem.run: %s rank out of range (1..size-1)" what)
    | _ -> ()
  in
  check_rank "kill" cfg.kill;
  check_rank "mute" cfg.mute;
  (match cfg.straggler with
  | Some (r, f) ->
    check_rank "straggler" (Some r);
    if f <= 1.0 then invalid_arg "Telem.run: straggler factor must exceed 1"
  | None -> ());
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ~size:cfg.size () in
  let tracer = Tracer.create ~capacity:500_000 ~now:(fun () -> Engine.now eng) () in
  let metrics = Metrics.create () in
  Session.set_tracer sess (Some tracer);
  Session.set_metrics sess (Some metrics);
  let flight = Flight.create ~capacity:128 tracer in
  let tconfig =
    {
      Tmod.default_config with
      Tmod.interval = cfg.interval;
      window = cfg.window;
      straggler_k = cfg.straggler_k;
      slope_threshold = cfg.slope_threshold;
      straggler_metrics = [ "telem.work" ];
      queue_metrics = (match cfg.ramp with Some _ -> [ "telem.qdepth" ] | None -> []);
    }
  in
  let telem = Tmod.load sess ~config:tconfig () in
  Tmod.set_metrics_all telem metrics;
  Tmod.set_tracer_all telem tracer;
  Tmod.set_flight_all telem flight;
  let duration = float_of_int cfg.epochs *. cfg.interval in
  let onset = cfg.onset_frac *. duration in
  (* A quarter-interval of slack so the final epoch's tick (exactly at
     [duration]) fires before the timers are cancelled. *)
  Tmod.start ~until:(duration +. (0.25 *. cfg.interval)) telem;
  (* Timed-work loops: one per rank, [work_per_epoch] items per epoch,
     durations jittered deterministically per (seed, rank). *)
  for rank = 0 to cfg.size - 1 do
    let rng = Rng.create (cfg.seed lxor ((rank + 1) * 0x9e3779b1)) in
    let period = cfg.interval /. float_of_int cfg.work_per_epoch in
    let rec arm () =
      ignore
        (Engine.schedule eng ~delay:period (fun () ->
             let now = Engine.now eng in
             if now < duration then begin
               if not (Session.is_down sess rank) then begin
                 let slow =
                   match cfg.straggler with
                   | Some (r, f) when r = rank && now >= onset -> f
                   | _ -> 1.0
                 in
                 let dur = cfg.work_mean *. slow *. (0.75 +. (0.5 *. Rng.float rng 1.0)) in
                 Tracer.emit tracer ~cat:"work" ~name:"item" ~rank
                   ~fields:[ ("dur", Json.float dur) ]
                   ();
                 Metrics.observe metrics ~name:"telem.work" ~rank dur;
                 match cfg.ramp with
                 | Some per_epoch when rank = 0 ->
                   Metrics.set_gauge metrics ~name:"telem.qdepth" ~rank
                     (per_epoch *. now /. cfg.interval)
                 | _ -> ()
               end;
               arm ()
             end)
          : Engine.handle)
    in
    arm ()
  done;
  (match cfg.kill with
  | Some r ->
    ignore
      (Engine.schedule eng ~delay:onset (fun () -> Session.mark_down sess r)
        : Engine.handle)
  | None -> ());
  (match cfg.mute with
  | Some r ->
    ignore
      (Engine.schedule eng ~delay:onset (fun () -> Tmod.mute telem ~rank:r)
        : Engine.handle)
  | None -> ());
  Engine.run eng;
  (* --- Guarantees -------------------------------------------------------- *)
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        violations := s :: !violations;
        (* A tripped guarantee preserves its own evidence. *)
        ignore
          (Flight.dump_once flight ~rank:0 ~tag:("violation:" ^ s)
             ~reason:("guarantee tripped: " ^ s)
            : Flight.dump option))
      fmt
  in
  let alerts = Tmod.alerts telem in
  let count k =
    List.length (List.filter (fun (a : Detect.alert) -> a.Detect.al_kind = k) alerts)
  in
  let onset_epoch = int_of_float (onset /. cfg.interval) + 1 in
  let first_straggler =
    match cfg.straggler with
    | None -> -1
    | Some (r, _) -> (
      match
        List.find_opt
          (fun (a : Detect.alert) ->
            a.Detect.al_kind = Detect.Straggler && a.Detect.al_rank = r)
          alerts
      with
      | Some a -> a.Detect.al_epoch
      | None -> -1)
  in
  (match cfg.straggler with
  | Some (r, _) ->
    if first_straggler < 0 then violate "no straggler alert for rank %d" r
    else if first_straggler > onset_epoch + 2 then
      violate "straggler alert late: epoch %d, onset epoch %d" first_straggler onset_epoch
  | None -> ());
  let victim_dump_events =
    match cfg.kill with
    | None -> -1
    | Some r -> (
      match
        List.find_opt
          (fun (d : Flight.dump) ->
            d.Flight.d_rank = r && String.equal d.Flight.d_reason "mark_down")
          (Flight.dumps flight)
      with
      | None ->
        violate "no flight dump for killed rank %d" r;
        0
      | Some d ->
        let n = List.length d.Flight.d_events in
        if n = 0 then violate "killed rank %d flight dump is empty" r;
        n)
  in
  (match cfg.mute with
  | Some r ->
    if
      not
        (List.exists
           (fun (a : Detect.alert) ->
             a.Detect.al_kind = Detect.Silent && a.Detect.al_rank = r)
           alerts)
    then violate "no silent alert for muted rank %d" r
  | None -> ());
  (match cfg.ramp with
  | Some _ -> if count Detect.Queue_growth = 0 then violate "no queue-growth alert"
  | None -> ());
  let rollups = Tmod.epochs_completed telem in
  if rollups < cfg.epochs - 2 then
    violate "only %d/%d rollup epochs completed" rollups cfg.epochs;
  {
    t_epochs = rollups;
    t_alerts = alerts;
    t_stragglers = count Detect.Straggler;
    t_growth = count Detect.Queue_growth;
    t_silent = count Detect.Silent;
    t_first_straggler_epoch = first_straggler;
    t_onset_epoch = onset_epoch;
    t_dumps = List.length (Flight.dumps flight);
    t_victim_dump_events = victim_dump_events;
    t_rollup_bytes = Tmod.rollup_bytes telem;
    t_late_drops = Tmod.late_drops telem;
    t_alert_fingerprint = alert_fingerprint alerts;
    t_violations = List.rev !violations;
    t_clock = Engine.now eng;
    t_events = Engine.events_executed eng;
    t_series = Tmod.series telem;
    t_flight = flight;
    t_tracer = tracer;
    t_metrics = metrics;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>epochs: %d, alerts: %d (straggler %d, growth %d, silent %d)@,\
     first straggler epoch: %d (onset %d)@,\
     flight dumps: %d (victim events %d)@,\
     rollup bytes: %d, late drops: %d@,clock %.6f (%d events)@,violations: %d%a@]"
    r.t_epochs (List.length r.t_alerts) r.t_stragglers r.t_growth r.t_silent
    r.t_first_straggler_epoch r.t_onset_epoch r.t_dumps r.t_victim_dump_events
    r.t_rollup_bytes r.t_late_drops r.t_clock r.t_events
    (List.length r.t_violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.t_violations
