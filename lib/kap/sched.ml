(* Center-scale scheduling ablation harness: a pilot-style open-loop
   stream of sub-second single-node tasks is fed either to a hierarchy
   of nested Flux instances (configurable depth and per-level fanout)
   or to the centralized baseline controller, measuring jobs/sec,
   makespan, and — from the tracer's causal span chain
   (sched.submit -> sched.match -> wexec.start -> wexec.complete) —
   per-level scheduler-hop latency: the paper's log2(C)*T(G) argument,
   measured.

   The same harness doubles as wexec's chaos workload: a seeded
   assassin kills a worker rank inside one leaf instance mid-batch; a
   requeue monitor moves that leaf's failed tasks to surviving sibling
   leaves. Logical task ids ride the wexec args, and every task body
   records its executions, so the invariants are checked exactly:
   every task acked exactly once, every acked task actually executed,
   and no execution ever lands after its task's ack. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Stats = Flux_util.Stats
module Session = Flux_cmb.Session
module Kvs = Flux_kvs.Kvs_module
module Wexec = Flux_modules.Wexec
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Pool = Flux_core.Pool
module Workload = Flux_core.Workload
module Central = Flux_baseline.Central
module Flight = Flux_trace.Flight
module Tmod = Flux_modules.Telem

type task_kind =
  | Sleep_tasks  (** synthetic: pure scheduler study, no launch stack *)
  | Wexec_tasks  (** real launches through wexec with the full span chain *)

type config = {
  seed : int;
  nodes : int;  (** session size = compute nodes of the center *)
  fanout : int;  (** CMB tree fanout *)
  depth : int;  (** levels of child instances (0 = one flat instance) *)
  children : int;  (** instance-tree fanout per level *)
  tasks : int;
  mean_duration : float;
  min_duration : float;
  arrival_rate : float;  (** offered tasks/s, open loop; 0 = batch at t=0 *)
  policy : string;
  task_kind : task_kind;
  cost_model : Instance.cost_model;
  trace : bool;
  kill_leaf : bool;  (** kill a worker rank of leaf 0 mid-batch *)
  kill_frac : float;  (** strike once this fraction of tasks has acked *)
  revive_after : float;
  max_requeues : int;
  telem : bool;  (** run the live telemetry plane alongside the workload *)
  telem_interval : float;
}

let default =
  {
    seed = 1;
    nodes = 16;
    fanout = 2;
    depth = 2;
    children = 2;
    tasks = 200;
    mean_duration = 0.1;
    min_duration = 0.01;
    arrival_rate = 0.0;
    policy = "fcfs";
    task_kind = Wexec_tasks;
    cost_model = Instance.default_cost_model;
    trace = true;
    kill_leaf = false;
    kill_frac = 0.25;
    revive_after = 1.0;
    max_requeues = 5;
    telem = false;
    telem_interval = 0.25;
  }

type level = {
  lv_depth : int;  (** 0 = root *)
  lv_jobs : int;  (** matches observed at this level *)
  lv_submit_match_mean : float;  (** scheduler-hop latency (wait in queue) *)
  lv_submit_match_p95 : float;
}

type report = {
  r_depth : int;
  r_children : int;
  r_leaves : int;
  r_tasks : int;
  r_acked : int;  (** logical tasks whose job completed *)
  r_failed_jobs : int;  (** job attempts that ended Failed (pre-requeue) *)
  r_requeues : int;
  r_kills : int;
  r_revives : int;
  r_makespan : float;  (** last task completion - first task submission *)
  r_jobs_per_s : float;
  r_mean_wait : float;
  r_sched_cycles : int;  (** summed over every instance in the tree *)
  r_levels : level list;  (** per-level hop decomposition, root first *)
  r_hop_match_start_mean : float;  (** sched.match -> wexec.start *)
  r_hop_start_complete_mean : float;  (** wexec.start -> wexec.complete *)
  r_spans : (string * int) list;  (** span-chain counter fingerprint *)
  r_wexec_started : int;
  r_wexec_done : int;
  r_telem_epochs : int;  (** 0 when the plane is off *)
  r_telem_alerts : int;
  r_telem_dumps : int;
  r_violations : string list;
  r_final_clock : float;
  r_sim_events : int;
}

(* --- Hierarchical run ----------------------------------------------------- *)

type task_state = {
  mutable ts_acked_at : float;  (** < 0.0: not acked *)
  mutable ts_acks : int;
  mutable ts_execs : int;
  mutable ts_requeues : int;
}

type state = {
  cfg : config;
  eng : Engine.t;
  sess : Session.t;
  root : Instance.t;
  tracer : Tracer.t option;
  tasks : task_state array;  (** indexed by logical task id *)
  mutable requeues : int;
  mutable kills : int;
  mutable revives : int;
  mutable violations : string list;  (** reversed *)
  mutable flight : Flight.t option;
}

let violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.violations <- Printf.sprintf "t=%.3f %s" (Engine.now st.eng) s :: st.violations;
      (* A tripped guarantee preserves its own evidence: the first one
         dumps the master's recent events before the trace moves on. *)
      match st.flight with
      | Some f ->
        ignore
          (Flight.dump_once f ~rank:0 ~tag:"violation" ~reason:("guarantee tripped: " ^ s)
            : Flight.dump option)
      | None -> ())
    fmt

let prog_name = "sched.task"

let time_limit = 600.0

let tid_of_payload = function
  | Job.App { args; _ } -> (
    match Json.member_opt "tid" args with Some t -> Some (Json.to_int t) | None -> None)
  | Job.Sleep _ | Job.Child _ | Job.Nested _ -> None

(* The pilot task body: compute for the assigned duration, then record
   the execution against the logical task id. A task killed mid-sleep
   (worker death) never reaches the record — exactly the semantics the
   at-most-once-per-ack invariant needs. *)
let task_body st (ctx : Wexec.proc_ctx) =
  let d = Json.to_float (Json.member "duration" ctx.px_args) in
  Proc.sleep d;
  let tid = Json.to_int (Json.member "tid" ctx.px_args) in
  let ts = st.tasks.(tid) in
  ts.ts_execs <- ts.ts_execs + 1;
  if ts.ts_acked_at >= 0.0 then
    violate st "task %d executed after its ack (execs=%d)" tid ts.ts_execs

let rec instances st i = i :: List.concat_map (instances st) (Instance.children i)

let leaves st =
  List.filter (fun i -> Instance.children i = [] && Instance.depth i = st.cfg.depth)
    (instances st st.root)

(* Leaf-task jobs across the whole tree (requeues included). *)
let task_jobs st =
  List.concat_map
    (fun i ->
      List.filter
        (fun (j : Job.t) ->
          match j.Job.job_payload with
          | Job.Sleep _ | Job.App _ -> true
          | Job.Child _ | Job.Nested _ -> false)
        (Instance.jobs i))
    (instances st st.root)

let acked_count st =
  Array.fold_left (fun acc ts -> if ts.ts_acks > 0 then acc + 1 else acc) 0 st.tasks

(* A task is resolved when acked, or when its requeue budget is spent
   (the monitor stops waiting for it; the final audit flags it). *)
let unresolved st =
  Array.exists
    (fun ts -> ts.ts_acks = 0 && ts.ts_requeues <= st.cfg.max_requeues)
    st.tasks

(* --- Chaos: leaf kill + requeue monitor ----------------------------------- *)

let assassin st =
  let rng = Rng.split (Rng.create st.cfg.seed) in
  let threshold =
    max 1 (int_of_float (st.cfg.kill_frac *. float_of_int st.cfg.tasks))
  in
  while acked_count st < threshold && Engine.now st.eng < time_limit do
    Proc.sleep 0.002
  done;
  Proc.sleep (Rng.float rng 0.01);
  match leaves st with
  | [] -> violate st "assassin found no leaf instance"
  | leaf :: _ -> (
    (* Kill a worker rank owned by the first leaf — never rank 0 (the
       wexec/KVS master is fixed there). Prefer a rank that is busy
       running a task so the strike exercises wexec's death-accounting
       path, not just pool bookkeeping. *)
    let busy =
      List.concat_map
        (fun (j : Job.t) -> j.Job.granted_nodes)
        (List.filter (fun (j : Job.t) -> j.Job.jstate = Job.Running) (Instance.jobs leaf))
    in
    let candidates =
      List.filter (fun r -> r <> 0)
        (busy @ Pool.free_node_list (Instance.pool leaf))
    in
    match candidates with
    | [] -> violate st "assassin found no killable rank in leaf %s" (Instance.name leaf)
    | v :: _ ->
      Session.mark_down st.sess v;
      st.kills <- st.kills + 1;
      Proc.sleep st.cfg.revive_after;
      Session.mark_up st.sess v;
      st.revives <- st.revives + 1)

(* Requeue failed task attempts onto a surviving sibling leaf: the
   logical task id rides along, the jobid is fresh (wexec requires
   fresh ids), and acked tasks are never requeued — that is exactly the
   no-double-execution guarantee under test. Event-driven: one
   {!Instance.on_job_failed} registration at the root sees every
   descendant leaf's failures the instant they transition, instead of a
   polling scan over every job record. *)
let install_monitor st =
  let requeued_jids : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let pick_target =
    let cursor = ref 0 in
    fun () ->
      let ls = leaves st in
      let n = List.length ls in
      let ok i =
        let pool = Instance.pool i in
        Pool.total_nodes pool >= 1
        && List.for_all (fun r -> not (Session.is_down st.sess r))
             (Pool.free_node_list pool)
      in
      let rec scan k =
        if k >= n then None
        else
          let c = List.nth ls ((!cursor + k) mod n) in
          if ok c then begin
            cursor := (!cursor + k + 1) mod n;
            Some c
          end
          else scan (k + 1)
      in
      scan 0
  in
  let rec handle _owner (j : Job.t) =
    match j.Job.jstate with
    | Job.Failed _ when not (Hashtbl.mem requeued_jids j.Job.jid) -> (
      Hashtbl.replace requeued_jids j.Job.jid ();
      match tid_of_payload j.Job.job_payload with
      | None -> ()
      | Some tid ->
        let ts = st.tasks.(tid) in
        if ts.ts_acks = 0 && ts.ts_requeues < st.cfg.max_requeues then begin
          ts.ts_requeues <- ts.ts_requeues + 1;
          match pick_target () with
          | None ->
            (* No live leaf right now (a revive may be in flight):
               give the budget back and retry shortly. *)
            ts.ts_requeues <- ts.ts_requeues - 1;
            Hashtbl.remove requeued_jids j.Job.jid;
            if Engine.now st.eng < time_limit then
              ignore
                (Engine.schedule st.eng ~delay:0.001 (fun () -> handle _owner j)
                  : Engine.handle)
          | Some target ->
            st.requeues <- st.requeues + 1;
            ignore
              (Instance.submit target ~spec:j.Job.spec ~payload:j.Job.job_payload
                : Job.t)
        end)
    | _ -> ()
  in
  Instance.on_job_failed st.root handle

(* --- Span-chain decomposition --------------------------------------------- *)

let level_decomposition st =
  match st.tracer with
  | None -> ([], 0.0, 0.0)
  | Some tr ->
    let submits : (string, float * int) Hashtbl.t = Hashtbl.create 1024 in
    let matches : (string, float) Hashtbl.t = Hashtbl.create 1024 in
    let starts : (string, float) Hashtbl.t = Hashtbl.create 1024 in
    let completes : (string, float) Hashtbl.t = Hashtbl.create 1024 in
    List.iter
      (fun (e : Tracer.event) ->
        let jid () = Json.to_string_v (Json.member "jid" (Json.obj e.Tracer.ev_fields)) in
        match (e.Tracer.ev_cat, e.Tracer.ev_name) with
        | "sched", "submit" ->
          let d = Json.to_int (Json.member "depth" (Json.obj e.Tracer.ev_fields)) in
          Hashtbl.replace submits (jid ()) (e.Tracer.ev_ts, d)
        | "sched", "match" -> Hashtbl.replace matches (jid ()) e.Tracer.ev_ts
        | "wexec", "start" ->
          let jobid =
            Json.to_string_v (Json.member "jobid" (Json.obj e.Tracer.ev_fields))
          in
          if not (Hashtbl.mem starts jobid) then
            Hashtbl.replace starts jobid e.Tracer.ev_ts
        | "wexec", "complete" ->
          let jobid =
            Json.to_string_v (Json.member "jobid" (Json.obj e.Tracer.ev_fields))
          in
          Hashtbl.replace completes jobid e.Tracer.ev_ts
        | _ -> ())
      (Tracer.events tr);
    let per_level : (int, Stats.t) Hashtbl.t = Hashtbl.create 8 in
    let match_start = Stats.create () in
    let start_complete = Stats.create () in
    Hashtbl.iter
      (fun jid (t_submit, d) ->
        match Hashtbl.find_opt matches jid with
        | None -> ()
        | Some t_match ->
          let s =
            match Hashtbl.find_opt per_level d with
            | Some s -> s
            | None ->
              let s = Stats.create () in
              Hashtbl.replace per_level d s;
              s
          in
          Stats.add s (t_match -. t_submit);
          (match Hashtbl.find_opt starts jid with
          | Some t_start -> Stats.add match_start (t_start -. t_match)
          | None -> ());
          (match (Hashtbl.find_opt starts jid, Hashtbl.find_opt completes jid) with
          | Some t_start, Some t_c -> Stats.add start_complete (t_c -. t_start)
          | _ -> ()))
      submits;
    let levels =
      List.sort (fun a b -> compare a.lv_depth b.lv_depth)
        (Hashtbl.fold
           (fun d s acc ->
             {
               lv_depth = d;
               lv_jobs = Stats.count s;
               lv_submit_match_mean = Stats.mean s;
               lv_submit_match_p95 = Stats.percentile s 0.95;
             }
             :: acc)
           per_level [])
    in
    ( levels,
      (if Stats.count match_start = 0 then 0.0 else Stats.mean match_start),
      if Stats.count start_complete = 0 then 0.0 else Stats.mean start_complete )

(* --- Audit ----------------------------------------------------------------- *)

let audit st =
  (* Fold the end state of every task-job into the per-task ledger,
     then check the exactly-once story. Sleep payloads carry no logical
     task id (nothing executes, nothing can double-execute), so the
     ledger audit only applies to wexec tasks. *)
  if st.cfg.task_kind = Wexec_tasks then begin
  List.iter
    (fun (j : Job.t) ->
      match tid_of_payload j.Job.job_payload with
      | None -> ()
      | Some tid ->
        let ts = st.tasks.(tid) in
        (match j.Job.jstate with
        | Job.Complete ->
          ts.ts_acks <- ts.ts_acks + 1;
          ts.ts_acked_at <-
            (if ts.ts_acked_at < 0.0 then j.Job.end_time
             else Float.min ts.ts_acked_at j.Job.end_time)
        | _ -> ()))
    (task_jobs st);
  Array.iteri
    (fun tid ts ->
      if ts.ts_acks = 0 then
        violate st "task %d lost: never acked (requeues %d)" tid ts.ts_requeues
      else if ts.ts_acks > 1 then violate st "task %d acked %d times" tid ts.ts_acks;
      if ts.ts_acks > 0 && ts.ts_execs = 0 then
        violate st "task %d acked but never executed" tid;
      if ts.ts_execs > ts.ts_requeues + 1 then
        violate st "task %d executed %d times with only %d requeues" tid ts.ts_execs
          ts.ts_requeues)
    st.tasks
  end

(* Live ack bookkeeping so the assassin/monitor can pace themselves
   without waiting for the final audit: poll completions incrementally. *)
let ack_watcher st =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let done_ () =
    (not (unresolved st)) || Engine.now st.eng >= time_limit
  in
  while not (done_ ()) do
    List.iter
      (fun (j : Job.t) ->
        if j.Job.jstate = Job.Complete && not (Hashtbl.mem seen j.Job.jid) then begin
          Hashtbl.replace seen j.Job.jid ();
          match tid_of_payload j.Job.job_payload with
          | None -> ()
          | Some tid ->
            let ts = st.tasks.(tid) in
            if ts.ts_acks = 0 then begin
              ts.ts_acks <- 1;
              ts.ts_acked_at <- j.Job.end_time
            end
            else violate st "task %d acked twice (live)" tid
        end)
      (task_jobs st);
    Proc.sleep 0.001
  done

let run cfg =
  if cfg.depth < 0 then invalid_arg "Sched.run: depth must be >= 0";
  if cfg.depth > 0 && cfg.children < 2 then
    invalid_arg "Sched.run: children must be >= 2 when depth > 0";
  let leaves_n =
    int_of_float (float_of_int cfg.children ** float_of_int cfg.depth)
  in
  if cfg.depth > 0 && cfg.nodes / leaves_n < 1 then
    invalid_arg "Sched.run: children^depth exceeds the node count";
  if cfg.kill_leaf && cfg.task_kind <> Wexec_tasks then
    invalid_arg "Sched.run: kill_leaf requires Wexec_tasks";
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ~size:cfg.nodes () in
  let kvs = Kvs.load sess () in
  ignore (Flux_modules.Barrier.load sess () : Flux_modules.Barrier.t array);
  let wexec = Wexec.load sess () in
  let tracer =
    if cfg.trace then Some (Tracer.create ~capacity:2_000_000 ~now:(fun () -> Engine.now eng) ())
    else None
  in
  let metrics = Metrics.create () in
  Kvs.set_metrics_all kvs metrics;
  Wexec.set_tracer_all wexec tracer;
  Wexec.set_metrics_all wexec metrics;
  let root =
    Instance.create_root sess ~policy:cfg.policy ~cost_model:cfg.cost_model ~name:"sched"
      ()
  in
  Instance.set_tracer root tracer;
  let st =
    {
      cfg;
      eng;
      sess;
      root;
      tracer;
      tasks =
        Array.init cfg.tasks (fun _ ->
            { ts_acked_at = -1.0; ts_acks = 0; ts_execs = 0; ts_requeues = 0 });
      requeues = 0;
      kills = 0;
      revives = 0;
      violations = [];
      flight = None;
    }
  in
  Wexec.register_program prog_name (task_body st);
  let rng = Rng.create cfg.seed in
  let prog = match cfg.task_kind with Sleep_tasks -> "" | Wexec_tasks -> prog_name in
  let stream =
    Workload.pilot_tasks rng ~n:cfg.tasks ~prog ~mean_duration:cfg.mean_duration
      ~min_duration:cfg.min_duration ~arrival_rate:cfg.arrival_rate ()
  in
  let plan =
    Workload.nest ~depth:cfg.depth ~children:cfg.children ~policy:cfg.policy
      ~nnodes:cfg.nodes stream
  in
  Instance.submit_plan root plan;
  (* Optional live telemetry plane alongside the workload. Its rollup
     length is data-dependent (the makespan is what the harness
     measures), so a watcher proc stops the plane once every task has
     resolved and the engine is free to drain. *)
  let telem =
    if not cfg.telem then None
    else begin
      if cfg.telem_interval <= 0.0 then
        invalid_arg "Sched.run: telem_interval must be positive";
      let ts =
        Tmod.load sess
          ~config:{ Tmod.default_config with Tmod.interval = cfg.telem_interval }
          ()
      in
      Tmod.set_metrics_all ts metrics;
      (match tracer with
      | Some tr ->
        Tmod.set_tracer_all ts tr;
        let f = Flight.create ~capacity:128 tr in
        st.flight <- Some f;
        Tmod.set_flight_all ts f
      | None -> ());
      Tmod.start ts;
      ignore
        (Proc.spawn eng ~name:"sched-telem-stop" (fun () ->
             (* Ground truth: every logical task has arrived and every
                job attempt is terminal. (The ack ledger only updates
                in kill mode, so it cannot drive this.) *)
             let workload_done () =
               let js = task_jobs st in
               List.length js >= cfg.tasks
               && List.for_all
                    (fun (j : Job.t) ->
                      match j.Job.jstate with
                      | Job.Complete | Job.Failed _ -> true
                      | _ -> false)
                    js
             in
             while (not (workload_done ())) && Engine.now eng < time_limit do
               Proc.sleep cfg.telem_interval
             done;
             (* One grace epoch so the final deltas still roll up. *)
             Proc.sleep (2.0 *. cfg.telem_interval);
             Tmod.stop ts)
          : Proc.pid);
      Some ts
    end
  in
  if cfg.kill_leaf then begin
    install_monitor st;
    ignore (Proc.spawn eng ~name:"sched-assassin" (fun () -> assassin st) : Proc.pid);
    ignore (Proc.spawn eng ~name:"sched-acks" (fun () -> ack_watcher st) : Proc.pid)
  end;
  Engine.run eng;
  (* Reset the live ledger and audit from ground truth (job records). *)
  Array.iter
    (fun ts ->
      ts.ts_acks <- 0;
      ts.ts_acked_at <- -1.0)
    st.tasks;
  audit st;
  let tjobs = task_jobs st in
  let completed = List.filter (fun (j : Job.t) -> j.Job.jstate = Job.Complete) tjobs in
  let failed =
    List.filter
      (fun (j : Job.t) -> match j.Job.jstate with Job.Failed _ -> true | _ -> false)
      tjobs
  in
  let first_submit =
    List.fold_left (fun acc (j : Job.t) -> Float.min acc j.Job.submit_time) infinity tjobs
  in
  let last_end =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.Job.end_time) 0.0 completed
  in
  let makespan = if completed = [] then 0.0 else last_end -. first_submit in
  let waits = List.map Job.wait_time completed in
  let sched_cycles =
    List.fold_left
      (fun acc i -> acc + (Instance.stats i).Instance.st_sched_cycles)
      0 (instances st st.root)
  in
  let levels, hop_ms, hop_sc = level_decomposition st in
  let spans =
    match st.tracer with
    | None -> []
    | Some tr ->
      List.map
        (fun (cat, name) -> (cat ^ "." ^ name, Tracer.count tr ~cat ~name))
        [
          ("sched", "submit");
          ("sched", "match");
          ("wexec", "start");
          ("wexec", "complete");
        ]
  in
  {
    r_depth = cfg.depth;
    r_children = cfg.children;
    r_leaves = (if cfg.depth = 0 then 1 else leaves_n);
    r_tasks = cfg.tasks;
    r_acked =
      (match cfg.task_kind with
      | Wexec_tasks -> acked_count st
      | Sleep_tasks -> List.length completed);
    r_failed_jobs = List.length failed;
    r_requeues = st.requeues;
    r_kills = st.kills;
    r_revives = st.revives;
    r_makespan = makespan;
    r_jobs_per_s =
      (if makespan > 0.0 then float_of_int (List.length completed) /. makespan else 0.0);
    r_mean_wait =
      (if waits = [] then 0.0
       else List.fold_left ( +. ) 0.0 waits /. float_of_int (List.length waits));
    r_sched_cycles = sched_cycles;
    r_levels = levels;
    r_hop_match_start_mean = hop_ms;
    r_hop_start_complete_mean = hop_sc;
    r_spans = spans;
    r_wexec_started = Metrics.counter_total metrics ~name:"wexec.tasks.started";
    r_wexec_done = Metrics.counter_total metrics ~name:"wexec.tasks.done";
    r_telem_epochs = (match telem with Some ts -> Tmod.epochs_completed ts | None -> 0);
    r_telem_alerts = (match telem with Some ts -> List.length (Tmod.alerts ts) | None -> 0);
    r_telem_dumps = (match st.flight with Some f -> List.length (Flight.dumps f) | None -> 0);
    r_violations = List.rev st.violations;
    r_final_clock = Engine.now eng;
    r_sim_events = Engine.events_executed eng;
  }

(* --- Centralized baseline -------------------------------------------------- *)

type central_report = {
  c_tasks : int;
  c_completed : int;
  c_makespan : float;
  c_jobs_per_s : float;
  c_mean_wait : float;
  c_sched_cycles : int;
  c_final_clock : float;
}

(* The identical pilot stream (same seed, so the same durations and
   arrivals) against one monolithic controller. The baseline has no
   launch stack at all — tasks are pure timers — which only flatters
   it: the hierarchy pays wexec RPCs on top and must still win. *)
let run_central cfg =
  let eng = Engine.create () in
  let ctl =
    Central.create eng ~nnodes:cfg.nodes ~policy:cfg.policy ~cost_model:cfg.cost_model ()
  in
  let rng = Rng.create cfg.seed in
  let stream =
    Workload.pilot_tasks rng ~n:cfg.tasks ~prog:"" ~mean_duration:cfg.mean_duration
      ~min_duration:cfg.min_duration ~arrival_rate:cfg.arrival_rate ()
  in
  Central.submit_plan ctl stream;
  Engine.run eng;
  let s = Central.stats ctl in
  {
    c_tasks = cfg.tasks;
    c_completed = s.Central.bs_completed;
    c_makespan = s.Central.bs_makespan;
    c_jobs_per_s =
      (if s.Central.bs_makespan > 0.0 then
         float_of_int s.Central.bs_completed /. s.Central.bs_makespan
       else 0.0);
    c_mean_wait = s.Central.bs_mean_wait;
    c_sched_cycles = s.Central.bs_sched_cycles;
    c_final_clock = Engine.now eng;
  }

(* --- Reporting ------------------------------------------------------------- *)

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>depth %d x %d children (%d leaves), %d tasks@,\
     acked %d, failed attempts %d, requeues %d, kills/revives %d/%d@,\
     makespan %.3fs -> %.1f jobs/s, mean wait %.4fs, %d sched cycles@,\
     hops: match->start %.5fs, start->complete %.5fs@,"
    r.r_depth r.r_children r.r_leaves r.r_tasks r.r_acked r.r_failed_jobs r.r_requeues
    r.r_kills r.r_revives r.r_makespan r.r_jobs_per_s r.r_mean_wait r.r_sched_cycles
    r.r_hop_match_start_mean r.r_hop_start_complete_mean;
  List.iter
    (fun lv ->
      Format.fprintf ppf "  level %d: %d jobs, submit->match mean %.5fs p95 %.5fs@,"
        lv.lv_depth lv.lv_jobs lv.lv_submit_match_mean lv.lv_submit_match_p95)
    r.r_levels;
  Format.fprintf ppf "violations: %d%a@]"
    (List.length r.r_violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.r_violations

let pp_central ppf (c : central_report) =
  Format.fprintf ppf
    "@[<v>central: %d/%d tasks, makespan %.3fs -> %.1f jobs/s, mean wait %.4fs, %d cycles@]"
    c.c_completed c.c_tasks c.c_makespan c.c_jobs_per_s c.c_mean_wait c.c_sched_cycles

(* Fingerprint for same-seed determinism comparisons: counters, clock,
   and the span-chain counts must all be bit-for-bit reproducible. *)
let fingerprint (r : report) =
  (r.r_acked, r.r_jobs_per_s, r.r_makespan, r.r_final_clock, r.r_sim_events, r.r_spans)
