(* Sharded-KVS harnesses: the goodput-vs-shards soak (does distributing
   the master actually buy capacity under admission control?) and the
   cross-shard fence chaos schedule (does the two-phase epoch-merge keep
   its guarantees when a shard master dies mid-fence?). *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Stats = Flux_util.Stats
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Volumes = Flux_kvs.Volumes
module Proto = Flux_kvs.Proto
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics
module Tmod = Flux_modules.Telem

(* First path components that route to each volume, found by search so
   harness keys land on the shard we intend. *)
let comps_for vt ~shards =
  Array.init shards (fun vol ->
      let rec find i =
        let c = Printf.sprintf "s%d" i in
        match Volumes.volume_for_key vt c with
        | Ok v when v = vol -> c
        | _ -> find (i + 1)
      in
      find 0)

(* --- Goodput-vs-shards soak ------------------------------------------------ *)

type soak_config = {
  seed : int;
  size : int;
  fanout : int;
  shards : int;
  producers : int list;
  rate : float;  (** aggregate offered ops/s; set to 2x one master's capacity *)
  duration : float;
  value_bytes : int;
  op_timeout : float;
  op_attempts : int;
  kvs : Kvs.config;
  telem : bool; (* run the live telemetry plane in-band with the soak *)
}

let soak_default =
  {
    seed = 1;
    size = 32;
    fanout = 2;
    shards = 1;
    producers = List.init 8 (fun i -> 24 + i);
    (* One master applies at 1/apply_cpu_per_tuple = 10k ops/s; offer
       twice that, so shards=1 saturates and shards>=2 has headroom. *)
    rate = 20_000.0;
    duration = 0.4;
    value_bytes = 256;
    op_timeout = 1.0;
    op_attempts = 6;
    kvs =
      {
        Kvs.default_config with
        Kvs.apply_cpu_per_tuple = 100e-6;
        admission_max_intake = 256;
      };
    telem = false;
  }

let soak_capacity cfg =
  if cfg.kvs.Kvs.apply_cpu_per_tuple <= 0.0 then infinity
  else 1.0 /. cfg.kvs.Kvs.apply_cpu_per_tuple

type soak_report = {
  shards : int;
  offered : int;
  acked : int;
  shed : int;
  failed : int;
  goodput : float;
  ack_p50 : float;
  ack_p99 : float;
  admission_sheds : int;
  intake_hwm : int;  (** max over shard masters *)
  rpc_busy_retries : int;
  lost_acks : int;
  drained : bool;
  violations : string list;
  final_clock : float;
  sim_events : int;
  telem_epochs : int; (* 0 when the plane is off *)
  telem_alerts : int;
}

type soak_state = {
  scfg : soak_config;
  eng : Engine.t;
  sess : Session.t;
  vt : Volumes.t;
  model : (int * string, Json.t) Hashtbl.t; (* (volume, key) -> acked value *)
  lat : Stats.t;
  mutable offered : int;
  mutable acked : int;
  mutable shed : int;
  mutable failed : int;
  mutable last_ack : float;
  mutable violations : string list; (* reversed *)
}

let soak_violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.violations <-
        Printf.sprintf "t=%.3f %s" (Engine.now st.eng) s :: st.violations)
    fmt

(* Producers are assigned to volumes round-robin and address their
   volume by topic ("kvs-<v>.mput"), so the offered load spreads across
   the shard masters exactly — the scaling the sweep measures — rather
   than by the luck of key hashing. *)
let soak_inject st ~api ~vol ~rank ~seq =
  let key = Printf.sprintf "sh%d.%d.%d.%d" vol rank (seq land 63) seq in
  let v =
    Json.obj
      [
        ("r", Json.int rank);
        ("n", Json.int seq);
        ("pad", Json.string (String.make st.scfg.value_bytes 'x'));
      ]
  in
  let sent = Engine.now st.eng in
  st.offered <- st.offered + 1;
  Api.rpc_async api ~timeout:st.scfg.op_timeout ~attempts:st.scfg.op_attempts
    ~idempotent:true
    ~topic:(Printf.sprintf "kvs-%d.mput" vol)
    (Json.obj
       [ ("bindings", Json.list [ Json.obj [ ("key", Json.string key); ("v", v) ] ]) ])
    ~reply:(fun r ->
      match r with
      | Ok _ ->
        st.acked <- st.acked + 1;
        st.last_ack <- Engine.now st.eng;
        Stats.add st.lat (Engine.now st.eng -. sent);
        Hashtbl.replace st.model (vol, key) v
      | Error e ->
        if Session.busy_retry_after e <> None then st.shed <- st.shed + 1
        else st.failed <- st.failed + 1)

let soak_producer st ~idx ~rank =
  let api = Api.connect st.sess ~rank in
  let vol = idx mod st.scfg.shards in
  let rng = Rng.create (st.scfg.seed lxor (rank * 0x9e3779b1)) in
  let per = st.scfg.rate /. float_of_int (List.length st.scfg.producers) in
  let seq = ref 0 in
  let rec arm () =
    if Engine.now st.eng < st.scfg.duration then begin
      let gap = Rng.exponential rng (1.0 /. per) in
      ignore
        (Engine.schedule st.eng ~delay:gap (fun () ->
             if Engine.now st.eng < st.scfg.duration then begin
               incr seq;
               soak_inject st ~api ~vol ~rank ~seq:!seq;
               arm ()
             end)
          : Engine.handle)
    end
  in
  arm ()

(* Acked writes must read back through the owning volume. *)
let soak_verify st =
  let rank = List.hd st.scfg.producers in
  let lost = ref 0 in
  ignore
    (Proc.spawn st.eng (fun () ->
         let api = Api.connect st.sess ~rank in
         Hashtbl.iter
           (fun (vol, key) v ->
             match
               Api.rpc api
                 ~topic:(Printf.sprintf "kvs-%d.get" vol)
                 (Json.obj [ ("key", Json.string key) ])
             with
             | Ok payload ->
               if not (Json.equal (Proto.load_reply_value payload) v) then begin
                 incr lost;
                 soak_violate st "acked write %s diverged" key
               end
             | Error e ->
               incr lost;
               soak_violate st "acked write %s unreadable: %s" key e)
           st.model)
      : Proc.pid);
  Engine.run st.eng;
  !lost

let soak cfg =
  if cfg.producers = [] then invalid_arg "Shard.soak: no producers";
  if cfg.rate <= 0.0 || cfg.duration <= 0.0 then
    invalid_arg "Shard.soak: rate and duration must be positive";
  let eng = Engine.create () in
  let sess =
    Session.create eng ~fanout:cfg.fanout ~rank_topology:Session.Direct
      ~size:cfg.size ()
  in
  let vt = Volumes.load sess ~config:cfg.kvs ~shards:cfg.shards () in
  let st =
    {
      scfg = cfg;
      eng;
      sess;
      vt;
      model = Hashtbl.create 4096;
      lat = Stats.create ();
      offered = 0;
      acked = 0;
      shed = 0;
      failed = 0;
      last_ack = 0.0;
      violations = [];
    }
  in
  (* Optional telemetry plane: rollups ride the same tree as the
     sharded write streams, so per-shard pressure shows up live. *)
  let telem =
    if not cfg.telem then None
    else begin
      let tr = Tracer.create ~capacity:500_000 ~now:(fun () -> Engine.now eng) () in
      let m = Metrics.create () in
      Session.set_tracer sess (Some tr);
      Session.set_metrics sess (Some m);
      let ts =
        Tmod.load sess
          ~config:{ Tmod.default_config with Tmod.interval = cfg.duration /. 10.0 }
          ()
      in
      Tmod.set_metrics_all ts m;
      Tmod.set_tracer_all ts tr;
      Tmod.start ~until:cfg.duration ts;
      Some ts
    end
  in
  List.iteri (fun idx rank -> soak_producer st ~idx ~rank) cfg.producers;
  Engine.run eng;
  let drain_clock = Float.max cfg.duration st.last_ack in
  let lost_acks = soak_verify st in
  let masters = List.init cfg.shards (Volumes.master_rank vt) in
  let inst vol = Volumes.instance vt ~volume:vol ~rank:(List.nth masters vol) in
  let hwm = ref 0 and sheds = ref 0 and intake_left = ref 0 in
  for vol = 0 to cfg.shards - 1 do
    hwm := max !hwm (Kvs.intake_hwm (inst vol));
    sheds := !sheds + Kvs.admission_sheds (inst vol);
    intake_left := !intake_left + Kvs.intake_depth (inst vol);
    if
      cfg.kvs.Kvs.admission_max_intake > 0
      && Kvs.intake_hwm (inst vol) > cfg.kvs.Kvs.admission_max_intake
    then
      soak_violate st "volume %d intake hwm %d exceeds bound %d" vol
        (Kvs.intake_hwm (inst vol))
        cfg.kvs.Kvs.admission_max_intake
  done;
  let unresolved = st.offered - st.acked - st.shed - st.failed in
  if unresolved <> 0 then soak_violate st "%d offered ops never resolved" unresolved;
  let drained = !intake_left = 0 in
  if not drained then soak_violate st "undrained: intake=%d" !intake_left;
  {
    shards = cfg.shards;
    offered = st.offered;
    acked = st.acked;
    shed = st.shed;
    failed = st.failed;
    goodput = float_of_int st.acked /. drain_clock;
    ack_p50 = (if Stats.count st.lat = 0 then 0.0 else Stats.percentile st.lat 0.50);
    ack_p99 = (if Stats.count st.lat = 0 then 0.0 else Stats.percentile st.lat 0.99);
    admission_sheds = !sheds;
    intake_hwm = !hwm;
    rpc_busy_retries = Session.rpc_busy_retries sess;
    lost_acks;
    drained;
    violations = List.rev st.violations;
    final_clock = Engine.now eng;
    sim_events = Engine.events_executed eng;
    telem_epochs = (match telem with Some ts -> Tmod.epochs_completed ts | None -> 0);
    telem_alerts = (match telem with Some ts -> List.length (Tmod.alerts ts) | None -> 0);
  }

let pp_soak_report ppf (r : soak_report) =
  Format.fprintf ppf
    "@[<v>shards: %d@,offered/acked/shed/failed: %d/%d/%d/%d@,\
     goodput: %.0f ops/s (ack p50 %.6f p99 %.6f)@,\
     admission sheds: %d (intake hwm %d), busy retries: %d@,\
     lost acks: %d, drained: %b@,telem: %d epochs, %d alerts@,\
     clock: %.6f (%d events)@,violations: %d%a@]"
    r.shards r.offered r.acked r.shed r.failed r.goodput r.ack_p50 r.ack_p99
    r.admission_sheds r.intake_hwm r.rpc_busy_retries r.lost_acks r.drained
    r.telem_epochs r.telem_alerts r.final_clock r.sim_events
    (List.length r.violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.violations

(* --- Cross-shard fence chaos ---------------------------------------------- *)

type chaos_config = {
  cseed : int;
  csize : int;
  cfanout : int;
  cshards : int;
  cclients : int list;
  crounds : int;
  cvalue_bytes : int;
  round_gap : float;  (** mean inter-round gap per client *)
  revive_after : float;  (** kill-to-revive delay *)
  ckvs : Kvs.config;
}

let chaos_default =
  {
    cseed = 1;
    csize = 12;
    cfanout = 2;
    cshards = 2;
    cclients = [ 9; 10; 11 ];
    crounds = 6;
    cvalue_bytes = 64;
    round_gap = 0.25;
    revive_after = 0.6;
    (* Acked cross-shard fences must survive a shard-master loss:
       replicate fresh interior objects with each setroot so a successor
       can rebuild the authoritative store from survivors. *)
    ckvs = { Kvs.default_config with Kvs.setroot_delta_max = max_int };
  }

type chaos_report = {
  fences_ok : int;
  fences_failed : int;
  kills : int;
  revives : int;
  takeovers : int;  (** sum over volumes of max mastership epoch *)
  xepoch : int;  (** cross-shard fence epoch at rank 0 after quiescence *)
  keys_checked : int;
  cviolations : string list;
  (* Determinism fingerprint material. *)
  final_versions : int list;  (** per volume *)
  final_roots : string list;  (** per volume, hex *)
  cfinal_clock : float;
  csim_events : int;
}

type chaos_state = {
  ccfg : chaos_config;
  ceng : Engine.t;
  csess : Session.t;
  cvt : Volumes.t;
  comps : string array;
  crng : Rng.t;
  cmodel : (string, Json.t) Hashtbl.t; (* key -> value acked by a fence *)
  seen : (string, unit) Hashtbl.t; (* keys a client has observed *)
  mutable in_flight_fences : int;
  mutable ckills : int;
  mutable crevives : int;
  mutable cfences_ok : int;
  mutable cfences_failed : int;
  mutable checked : int;
  mutable cviolations : string list; (* reversed *)
}

let chaos_violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.cviolations <-
        Printf.sprintf "t=%.3f %s" (Engine.now st.ceng) s :: st.cviolations)
    fmt

let chaos_key st ~vol ~rank ~round =
  Printf.sprintf "%s.c%d.r%d" st.comps.(vol) rank round

let chaos_value cfg ~vol ~rank ~round =
  Json.obj
    [
      ("v", Json.int vol);
      ("r", Json.int rank);
      ("n", Json.int round);
      ("pad", Json.string (String.make cfg.cvalue_bytes 'y'));
    ]

(* The rank currently acting as master for a volume (skipping dead ranks,
   whose instances still believe in their old role). *)
let acting_master st ~vol =
  let m = ref (-1) in
  for r = 0 to st.ccfg.csize - 1 do
    if
      Kvs.is_master (Volumes.instance st.cvt ~volume:vol ~rank:r)
      && not (Session.is_down st.csess r)
    then m := r
  done;
  !m

(* Kill the seeded target volume's acting master the moment a cross-shard
   fence is in flight — the window where one shard may have prepared
   while another has not — then revive it later. *)
let assassin st =
  let rng = Rng.split st.crng in
  let target_vol = st.ccfg.cseed mod st.ccfg.cshards in
  Proc.sleep 0.01;
  while st.in_flight_fences = 0 && Engine.now st.ceng < 60.0 do
    Proc.sleep 0.0005
  done;
  (* A seeded extra beat varies which phase of the fence the kill hits. *)
  Proc.sleep (Rng.float rng 0.01);
  let m = acting_master st ~vol:target_vol in
  if m >= 0 && not (List.mem m st.ccfg.cclients) then begin
    Session.mark_down st.csess m;
    st.ckills <- st.ckills + 1;
    Proc.sleep st.ccfg.revive_after;
    Session.mark_up st.csess m;
    st.crevives <- st.crevives + 1
  end

(* Odd seeds also fell an interior slave of the other volume's tree
   mid-run, exercising the healed-tree forwarding under the same fence
   traffic. *)
let slave_killer st =
  if st.ccfg.cseed land 1 = 1 then begin
    Proc.sleep (st.ccfg.round_gap *. 2.5);
    let masters = List.init st.ccfg.cshards (Volumes.master_rank st.cvt) in
    match
      List.filter
        (fun r ->
          (not (List.mem r masters))
          && (not (List.mem r st.ccfg.cclients))
          && (not (Session.is_down st.csess r))
          && r <> 0)
        (List.init st.ccfg.csize Fun.id)
    with
    | [] -> ()
    | v :: _ ->
      Session.mark_down st.csess v;
      st.ckills <- st.ckills + 1;
      Proc.sleep st.ccfg.revive_after;
      Session.mark_up st.csess v;
      st.crevives <- st.crevives + 1
  end

(* Poll a key until visible: fence completion guarantees every shard
   adopts, but the setroot events take (bounded, simulated) time to
   reach a reader's local slave. A key that never appears is a real
   atomicity/durability violation, not propagation lag. *)
let await_key st c ~label ~key ~expect =
  let tries = ref 0 in
  let rec go () =
    match Volumes.get c ~key with
    | Ok got ->
      st.checked <- st.checked + 1;
      Hashtbl.replace st.seen key ();
      if not (Json.equal got expect) then
        chaos_violate st "%s: key %s has wrong value" label key
    | Error e ->
      incr tries;
      if !tries >= 100 then
        chaos_violate st "%s: key %s never became visible: %s" label key e
      else begin
        Proc.sleep 0.005;
        go ()
      end
  in
  go ()

let chaos_client st ~rank =
  let c = Volumes.client st.cvt ~rank in
  let rng = Rng.split st.crng in
  let nprocs = List.length st.ccfg.cclients in
  (* Per-volume version horizon, read from this rank's local instances:
     monotonic reads must hold on every shard independently. *)
  let horizon = Array.make st.ccfg.cshards 0 in
  let check_monotonic label =
    for vol = 0 to st.ccfg.cshards - 1 do
      let v = Kvs.version (Volumes.instance st.cvt ~volume:vol ~rank) in
      if v < horizon.(vol) then
        chaos_violate st "rank %d: %s volume %d version regressed %d -> %d" rank
          label vol horizon.(vol) v
      else horizon.(vol) <- v
    done
  in
  for round = 1 to st.ccfg.crounds do
    Proc.sleep (Rng.exponential rng st.ccfg.round_gap);
    (* One write per volume, so every cross-shard fence really spans
       every shard. *)
    let wrote = ref [] in
    for vol = 0 to st.ccfg.cshards - 1 do
      let key = chaos_key st ~vol ~rank ~round in
      let v = chaos_value st.ccfg ~vol ~rank ~round in
      match Volumes.put c ~key v with
      | Ok () -> wrote := (key, v) :: !wrote
      | Error e -> chaos_violate st "rank %d: put %s failed: %s" rank key e
    done;
    st.in_flight_fences <- st.in_flight_fences + 1;
    let r = Volumes.fence c ~name:(Printf.sprintf "r%d" round) ~nprocs in
    st.in_flight_fences <- st.in_flight_fences - 1;
    (match r with
    | Ok () ->
      st.cfences_ok <- st.cfences_ok + 1;
      List.iter (fun (k, v) -> Hashtbl.replace st.cmodel k v) !wrote;
      (* Read-your-writes per shard, then fence atomicity: the fence
         returned, so every participant's contribution on every shard
         must (become) readable — all or nothing. *)
      List.iter
        (fun (k, v) -> await_key st c ~label:"ryw" ~key:k ~expect:v)
        !wrote;
      List.iter
        (fun peer ->
          for vol = 0 to st.ccfg.cshards - 1 do
            let pk = chaos_key st ~vol ~rank:peer ~round in
            Hashtbl.replace st.cmodel pk
              (chaos_value st.ccfg ~vol ~rank:peer ~round);
            await_key st c ~label:"atomicity" ~key:pk
              ~expect:(chaos_value st.ccfg ~vol ~rank:peer ~round)
          done)
        (List.filter (fun p -> p <> rank) st.ccfg.cclients);
      (* Monotonic reads over keys: anything this client has already
         observed must still be there. *)
      Hashtbl.iter
        (fun k () ->
          match Volumes.get c ~key:k with
          | Ok got ->
            st.checked <- st.checked + 1;
            if not (Json.equal got (Hashtbl.find st.cmodel k)) then
              chaos_violate st "rank %d: seen key %s diverged" rank k
          | Error e -> chaos_violate st "rank %d: seen key %s vanished: %s" rank k e)
        st.seen
    | Error e ->
      st.cfences_failed <- st.cfences_failed + 1;
      chaos_violate st "rank %d: fence r%d failed: %s" rank round e);
    check_monotonic "post-fence"
  done

let chaos_finalize st =
  Engine.run st.ceng;
  let n = st.ccfg.csize in
  let shards = st.ccfg.cshards in
  (* Exactly one acting master per volume. *)
  for vol = 0 to shards - 1 do
    let ms =
      List.filter
        (fun r ->
          Kvs.is_master (Volumes.instance st.cvt ~volume:vol ~rank:r)
          && not (Session.is_down st.csess r))
        (List.init n Fun.id)
    in
    if List.length ms <> 1 then
      chaos_violate st "volume %d: expected one master, got [%s]" vol
        (String.concat ";" (List.map string_of_int ms))
  done;
  (* Every rank converged to the same per-volume (version, root) and
     derived the same cross-shard epoch and composite — the sequenced
     event plane makes the merge a deterministic function every rank
     computes identically. *)
  let versions = ref [] and roots = ref [] in
  for vol = shards - 1 downto 0 do
    let v0 = Kvs.version (Volumes.instance st.cvt ~volume:vol ~rank:0) in
    let r0 = Kvs.root_ref (Volumes.instance st.cvt ~volume:vol ~rank:0) in
    for r = 1 to n - 1 do
      let t = Volumes.instance st.cvt ~volume:vol ~rank:r in
      if Kvs.version t <> v0 then
        chaos_violate st "volume %d rank %d stuck at version %d (cluster at %d)"
          vol r (Kvs.version t) v0;
      if not (Flux_sha1.Sha1.equal (Kvs.root_ref t) r0) then
        chaos_violate st "volume %d rank %d root diverged" vol r
    done;
    versions := v0 :: !versions;
    roots := Flux_sha1.Sha1.to_hex r0 :: !roots
  done;
  let xe0 = Volumes.xfence_epoch st.cvt ~rank:0 in
  let cx0 = Volumes.last_composite st.cvt ~rank:0 in
  for r = 1 to n - 1 do
    if Volumes.xfence_epoch st.cvt ~rank:r <> xe0 then
      chaos_violate st "rank %d xfence epoch %d <> rank 0's %d" r
        (Volumes.xfence_epoch st.cvt ~rank:r)
        xe0;
    match (cx0, Volumes.last_composite st.cvt ~rank:r) with
    | None, None -> ()
    | Some a, Some b ->
      if
        not
          (String.equal a.Proto.cx_name b.Proto.cx_name
          && a.Proto.cx_epoch = b.Proto.cx_epoch
          && Array.length a.Proto.cx_roots = Array.length b.Proto.cx_roots
          && Array.for_all2
               (fun (x : Proto.root_info) (y : Proto.root_info) ->
                 Flux_sha1.Sha1.equal x.Proto.ri_root y.Proto.ri_root
                 && x.Proto.ri_version = y.Proto.ri_version)
               a.Proto.cx_roots b.Proto.cx_roots)
      then chaos_violate st "rank %d composite diverged from rank 0" r
    | _ -> chaos_violate st "rank %d composite presence diverged from rank 0" r
  done;
  (* Zero lost acked writes: the whole fence-acked model must be
     readable from a rank that is not a client (including the revived
     ex-master's). *)
  let verify_rank =
    match
      List.filter (fun r -> not (List.mem r st.ccfg.cclients)) (List.init n Fun.id)
    with
    | r :: _ -> r
    | [] -> 0
  in
  ignore
    (Proc.spawn st.ceng (fun () ->
         let c = Volumes.client st.cvt ~rank:verify_rank in
         Hashtbl.iter
           (fun key v ->
             st.checked <- st.checked + 1;
             match Volumes.get c ~key with
             | Ok got ->
               if not (Json.equal got v) then
                 chaos_violate st "verify@%d: key %s diverged" verify_rank key
             | Error e ->
               chaos_violate st "verify@%d: acked key %s lost: %s" verify_rank key e)
           st.cmodel)
      : Proc.pid);
  Engine.run st.ceng;
  (!versions, !roots, xe0)

let chaos cfg =
  if cfg.cshards < 2 then invalid_arg "Shard.chaos: needs at least two shards";
  List.iter
    (fun r ->
      if r < 0 || r >= cfg.csize then
        invalid_arg "Shard.chaos: client rank out of range")
    cfg.cclients;
  let eng = Engine.create () in
  let sess =
    Session.create eng ~fanout:cfg.cfanout ~rank_topology:Session.Direct
      ~size:cfg.csize ()
  in
  let vt = Volumes.load sess ~config:cfg.ckvs ~shards:cfg.cshards () in
  let st =
    {
      ccfg = cfg;
      ceng = eng;
      csess = sess;
      cvt = vt;
      comps = comps_for vt ~shards:cfg.cshards;
      crng = Rng.create cfg.cseed;
      cmodel = Hashtbl.create 256;
      seen = Hashtbl.create 256;
      in_flight_fences = 0;
      ckills = 0;
      crevives = 0;
      cfences_ok = 0;
      cfences_failed = 0;
      checked = 0;
      cviolations = [];
    }
  in
  ignore (Proc.spawn eng (fun () -> assassin st) : Proc.pid);
  ignore (Proc.spawn eng (fun () -> slave_killer st) : Proc.pid);
  List.iter
    (fun r -> ignore (Proc.spawn eng (fun () -> chaos_client st ~rank:r) : Proc.pid))
    cfg.cclients;
  Engine.run eng;
  let versions, roots, xepoch = chaos_finalize st in
  let takeovers =
    List.init cfg.cshards (fun vol ->
        List.fold_left
          (fun acc r -> max acc (Kvs.epoch (Volumes.instance vt ~volume:vol ~rank:r)))
          0
          (List.init cfg.csize Fun.id))
    |> List.fold_left ( + ) 0
  in
  {
    fences_ok = st.cfences_ok;
    fences_failed = st.cfences_failed;
    kills = st.ckills;
    revives = st.crevives;
    takeovers;
    xepoch;
    keys_checked = st.checked;
    cviolations = List.rev st.cviolations;
    final_versions = versions;
    final_roots = roots;
    cfinal_clock = Engine.now eng;
    csim_events = Engine.events_executed eng;
  }

let pp_chaos_report ppf (r : chaos_report) =
  Format.fprintf ppf
    "@[<v>fences ok/failed: %d/%d@,kills/revives: %d/%d (takeovers %d)@,\
     xepoch: %d, keys checked: %d@,final versions: [%s] roots: [%s]@,\
     clock: %.6f (%d events)@,violations: %d%a@]"
    r.fences_ok r.fences_failed r.kills r.revives r.takeovers r.xepoch
    r.keys_checked
    (String.concat ";" (List.map string_of_int r.final_versions))
    (String.concat ";" (List.map (fun s -> String.sub s 0 8) r.final_roots))
    r.cfinal_clock r.csim_events
    (List.length r.cviolations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.cviolations
