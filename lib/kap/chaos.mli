(** Chaos harness: seeded randomized fault schedules over a live KVS
    workload, checking the paper's consistency guarantees as the faults
    land.

    A schedule runs [clients] concurrent writer/reader processes on
    protected ranks (never killed) while a fault injector kills and
    revives the other ranks — including the KVS master, and including
    one guaranteed master kill while a commit is in flight. Every
    client checks, op by op:

    - {b monotonic reads}: the version it observes never decreases;
    - {b read-your-writes}: a key it committed reads back its value;
    - {b lost writes}: previously committed keys keep their values;
    - {b fence atomicity}: when a fence completes, every participant's
      contribution is visible (all-or-nothing).

    A commit or fence that errors is {e indeterminate} — the paper's
    guarantees say nothing about it, so its keys are dropped from the
    model rather than asserted either way.

    After the schedule, every dead rank is revived and the run must
    converge: one master, all ranks at the same (epoch, version), and a
    previously-dead rank must serve every surviving model key correctly
    from its rejoined state.

    Invariant breaches are collected in [violations] (empty = the
    schedule proved out); the harness never raises on a breach so
    benches can report instead of abort. *)

module Kvs = Flux_kvs.Kvs_module

type config = {
  seed : int;  (** everything stochastic derives from this *)
  size : int;  (** session ranks *)
  fanout : int;
  clients : int list;  (** protected client ranks — never killed *)
  rounds : int;  (** put/commit rounds per client *)
  fence_every : int;  (** every Nth round is a collective fence; 0 = never *)
  value_bytes : int;  (** size of the periodic large (non-inlined) values *)
  fault_mean : float;  (** mean virtual seconds between injector actions *)
  duration : float;  (** injector stops after this much virtual time *)
  max_dead : int;  (** cap on concurrently dead ranks *)
  master_kill_bias : float;  (** probability an injector kill targets the master *)
  op_timeout : float;  (** client-side deadline for fences *)
  kvs : Kvs.config;
}

val default : config
(** 15 ranks, 3 clients on leaf ranks, delta replication enabled
    ([setroot_delta_max = max_int]) so acked commits survive master
    loss. *)

type report = {
  commits_ok : int;
  commits_indeterminate : int;
  fences_ok : int;
  fences_indeterminate : int;
  gets_ok : int;
  gets_failed : int;  (** reads that errored (no data returned) *)
  kills : int;
  revives : int;
  master_kills : int;  (** kills that hit the acting master *)
  takeovers : int;  (** final mastership epoch *)
  final_version : int;
  final_master : int;
  keys_checked : int;  (** model keys verified in the final phase *)
  keys_indeterminate : int;  (** keys dropped after indeterminate ops *)
  violations : string list;  (** consistency breaches; empty = proved *)
  rpc_timeouts : int;
  rpc_retries : int;
  dead_letters : int;
  dropped : int;
  final_clock : float;  (** virtual time when the run converged *)
  sim_events : int;  (** engine callbacks fired (a determinism fingerprint) *)
}

val run : config -> report
(** Deterministic for a given config: same seed, same schedule, same
    report. *)

val pp_report : Format.formatter -> report -> unit
