module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Net = Flux_sim.Net
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Session = Flux_cmb.Session
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client

type config = {
  seed : int;
  size : int;
  fanout : int;
  clients : int list;
  rounds : int;
  fence_every : int;
  value_bytes : int;
  fault_mean : float;
  duration : float;
  max_dead : int;
  master_kill_bias : float;
  op_timeout : float;
  kvs : Kvs.config;
}

let default =
  {
    seed = 1;
    size = 15;
    fanout = 2;
    clients = [ 9; 11; 13 ];
    rounds = 24;
    fence_every = 6;
    value_bytes = 400;
    fault_mean = 0.8;
    duration = 25.0;
    max_dead = 3;
    master_kill_bias = 0.4;
    op_timeout = 8.0;
    (* Acked commits must survive master loss: replicate every fresh
       interior object with the setroot announcing it. *)
    kvs = { Kvs.default_config with Kvs.setroot_delta_max = max_int };
  }

type report = {
  commits_ok : int;
  commits_indeterminate : int;
  fences_ok : int;
  fences_indeterminate : int;
  gets_ok : int;
  gets_failed : int;
  kills : int;
  revives : int;
  master_kills : int;
  takeovers : int;
  final_version : int;
  final_master : int;
  keys_checked : int;
  keys_indeterminate : int;
  violations : string list;
  rpc_timeouts : int;
  rpc_retries : int;
  dead_letters : int;
  dropped : int;
  final_clock : float;
  sim_events : int;
}

(* Shared mutable state of one schedule run. *)
type state = {
  cfg : config;
  eng : Engine.t;
  sess : Session.t;
  kvs : Kvs.t array;
  rng : Rng.t;
  (* Authoritative model of what must be readable: key -> committed
     value. Keys are namespaced per writer, so clients never race on an
     entry. *)
  model : (string, Json.t) Hashtbl.t;
  indeterminate : (string, unit) Hashtbl.t;
  mutable dead : int list; (* in order of death, oldest first *)
  mutable in_flight_commits : int;
  mutable violations : string list; (* reversed *)
  mutable commits_ok : int;
  mutable commits_indeterminate : int;
  mutable fences_ok : int;
  mutable fences_indeterminate : int;
  mutable gets_ok : int;
  mutable gets_failed : int;
  mutable kills : int;
  mutable revives : int;
  mutable master_kills : int;
}

let violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.violations <-
        Printf.sprintf "t=%.3f %s" (Engine.now st.eng) s :: st.violations)
    fmt

(* The rank currently acting as master, if any live instance claims it.
   A dead rank's instance still believes it is master until it rejoins,
   so down ranks must be skipped. *)
let acting_master st =
  let m = ref (-1) in
  Array.iteri
    (fun r t -> if Kvs.is_master t && not (Session.is_down st.sess r) then m := r)
    st.kvs;
  !m

let kill_rank st r =
  if not (Session.is_down st.sess r) then begin
    if r = acting_master st then st.master_kills <- st.master_kills + 1;
    Session.mark_down st.sess r;
    st.dead <- st.dead @ [ r ];
    st.kills <- st.kills + 1
  end

let revive_oldest st =
  match st.dead with
  | [] -> ()
  | r :: rest ->
    st.dead <- rest;
    Session.mark_up st.sess r;
    st.revives <- st.revives + 1

(* --- Fault injection ----------------------------------------------------- *)

(* Ranks that may be killed right now. *)
let victims st =
  List.filter
    (fun r -> (not (List.mem r st.cfg.clients)) && not (Session.is_down st.sess r))
    (List.init st.cfg.size Fun.id)

(* Every schedule is guaranteed one master kill while a commit is in
   flight: the assassin waits for the first concurrent commit and
   strikes. Randomized injection covers the rest of the space. *)
let assassin st =
  Proc.sleep 0.01;
  let deadline = st.cfg.duration in
  while
    (st.in_flight_commits = 0 || acting_master st < 0)
    && Engine.now st.eng < deadline
  do
    Proc.sleep 0.0005
  done;
  let m = acting_master st in
  if m >= 0 && (not (List.mem m st.cfg.clients)) && not (Session.is_down st.sess m)
  then kill_rank st m

let injector st =
  let rng = Rng.split st.rng in
  let continue = ref true in
  while !continue do
    Proc.sleep (Rng.exponential rng st.cfg.fault_mean);
    if Engine.now st.eng >= st.cfg.duration then continue := false
    else if List.length st.dead >= st.cfg.max_dead then revive_oldest st
    else begin
      let m = acting_master st in
      let want_master =
        Rng.float rng 1.0 < st.cfg.master_kill_bias
        && m >= 0
        && (not (List.mem m st.cfg.clients))
        && not (Session.is_down st.sess m)
      in
      if want_master then kill_rank st m
      else if st.dead <> [] && Rng.bool rng then revive_oldest st
      else
        match victims st with
        | [] -> ()
        | vs -> kill_rank st (List.nth vs (Rng.int rng (List.length vs)))
    end
  done

(* --- Client workload ----------------------------------------------------- *)

let value_for cfg ~rank ~round =
  if round mod 3 = 0 then Json.string (String.make cfg.value_bytes (Char.chr (97 + (rank mod 26))))
  else Json.obj [ ("r", Json.int rank); ("n", Json.int round) ]

let fence_key ~round ~rank = Printf.sprintf "f%d.c%d" round rank
let commit_key ~rank ~round = Printf.sprintf "c%d.k%d" rank round

(* One client process: puts, commits, fences, and checks the guarantees
   after every op. [last_seen] is this client's version horizon for the
   monotonic-reads check. *)
let client_proc st ~rank =
  let c = Client.connect st.sess ~rank in
  let rng = Rng.split st.rng in
  let last_seen = ref 0 in
  let own_committed = ref [] in
  let nprocs = List.length st.cfg.clients in
  let observe_version label v =
    if v < !last_seen then
      violate st "rank %d: %s version regressed %d -> %d" rank label !last_seen v
    else last_seen := v
  in
  let check_version () =
    match Client.get_version c with
    | Ok v -> observe_version "get_version" v
    | Error _ -> st.gets_failed <- st.gets_failed + 1
  in
  (* Pace rounds across the injector's window so ops genuinely overlap
     the kill/revive churn instead of finishing before the first fault. *)
  let round_gap = st.cfg.duration /. float_of_int (st.cfg.rounds + 1) in
  for round = 1 to st.cfg.rounds do
    Proc.sleep (Rng.exponential rng round_gap);
    let is_fence = st.cfg.fence_every > 0 && round mod st.cfg.fence_every = 0 in
    if is_fence then begin
      let key = fence_key ~round ~rank in
      let v = value_for st.cfg ~rank ~round in
      match Client.put c ~key v with
      | Error _ ->
        (* The local broker never dies in a schedule; treat a failed put
           as an indeterminate round anyway. *)
        Hashtbl.replace st.indeterminate key ();
        st.fences_indeterminate <- st.fences_indeterminate + 1;
        Client.abort c
      | Ok () -> (
        st.in_flight_commits <- st.in_flight_commits + 1;
        let r =
          Client.fence ~timeout:st.cfg.op_timeout c
            ~name:(Printf.sprintf "chaos.%d" round)
            ~nprocs
        in
        st.in_flight_commits <- st.in_flight_commits - 1;
        match r with
        | Ok fv ->
          st.fences_ok <- st.fences_ok + 1;
          observe_version "fence" fv;
          Hashtbl.replace st.model key v;
          (* Atomicity: the fence completed, so every participant's
             contribution must be visible — all or nothing. *)
          List.iter
            (fun peer ->
              let pk = fence_key ~round ~rank:peer in
              match Client.get c ~key:pk with
              | Ok pv ->
                st.gets_ok <- st.gets_ok + 1;
                if not (Json.equal pv (value_for st.cfg ~rank:peer ~round)) then
                  violate st "rank %d: fence %d key %s has wrong value" rank round pk
              | Error _ -> st.gets_failed <- st.gets_failed + 1)
            st.cfg.clients
        | Error _ ->
          st.fences_indeterminate <- st.fences_indeterminate + 1;
          Hashtbl.replace st.indeterminate key ();
          Client.abort c)
    end
    else begin
      let key = commit_key ~rank ~round in
      let v = value_for st.cfg ~rank ~round in
      (match Client.put c ~key v with
      | Error _ ->
        Hashtbl.replace st.indeterminate key ();
        st.commits_indeterminate <- st.commits_indeterminate + 1;
        Client.abort c
      | Ok () -> (
        st.in_flight_commits <- st.in_flight_commits + 1;
        let r = Client.commit c in
        st.in_flight_commits <- st.in_flight_commits - 1;
        match r with
        | Ok cv ->
          st.commits_ok <- st.commits_ok + 1;
          (* Read-your-writes: our commit was acked at a version strictly
             newer than anything we had observed. *)
          if cv <= !last_seen then
            violate st "rank %d: commit version %d not newer than seen %d" rank cv !last_seen;
          last_seen := max !last_seen cv;
          Hashtbl.replace st.model key v;
          own_committed := key :: !own_committed;
          (match Client.get c ~key with
          | Ok got ->
            st.gets_ok <- st.gets_ok + 1;
            if not (Json.equal got v) then
              violate st "rank %d: read-your-writes broken for %s" rank key
          | Error _ -> st.gets_failed <- st.gets_failed + 1)
        | Error _ ->
          st.commits_indeterminate <- st.commits_indeterminate + 1;
          Hashtbl.replace st.indeterminate key ();
          Client.abort c));
      (* Lost-write check on a random earlier own key. *)
      (match !own_committed with
      | [] -> ()
      | keys -> (
        let k = List.nth keys (Rng.int rng (List.length keys)) in
        match Client.get c ~key:k with
        | Ok got ->
          st.gets_ok <- st.gets_ok + 1;
          if not (Json.equal got (Hashtbl.find st.model k)) then
            violate st "rank %d: lost write %s" rank k
        | Error _ -> st.gets_failed <- st.gets_failed + 1))
    end;
    check_version ()
  done

(* --- Final convergence and verification ---------------------------------- *)

let finalize st =
  (* Revive everything and let the rejoin handshakes settle. *)
  List.iter (fun r -> Session.mark_up st.sess r) st.dead;
  st.revives <- st.revives + List.length st.dead;
  let was_dead = st.dead in
  st.dead <- [];
  Engine.run st.eng;
  let masters =
    Array.to_list st.kvs
    |> List.mapi (fun r t -> (r, Kvs.is_master t))
    |> List.filter snd |> List.map fst
  in
  (match masters with
  | [ _ ] -> ()
  | ms -> violate st "expected exactly one master, got [%s]"
            (String.concat ";" (List.map string_of_int ms)));
  let final_master = acting_master st in
  let vmax = Array.fold_left (fun acc t -> max acc (Kvs.version t)) 0 st.kvs in
  let emax = Array.fold_left (fun acc t -> max acc (Kvs.epoch t)) 0 st.kvs in
  Array.iteri
    (fun r t ->
      if Kvs.version t <> vmax then
        violate st "rank %d stuck at version %d (cluster at %d)" r (Kvs.version t) vmax;
      if Kvs.epoch t <> emax then
        violate st "rank %d stuck at epoch %d (cluster at %d)" r (Kvs.epoch t) emax)
    st.kvs;
  (* Verify the whole surviving model from a rank that died and rejoined
     (falling back to any non-client rank): it must serve every key. *)
  let verify_rank =
    match List.filter (fun r -> not (List.mem r st.cfg.clients)) was_dead with
    | r :: _ -> r
    | [] -> ( match victims st with r :: _ -> r | [] -> List.hd st.cfg.clients)
  in
  let checked = ref 0 in
  ignore
    (Proc.spawn st.eng (fun () ->
         let c = Client.connect st.sess ~rank:verify_rank in
         Hashtbl.iter
           (fun key v ->
             if not (Hashtbl.mem st.indeterminate key) then begin
               incr checked;
               match Client.get c ~key with
               | Ok got ->
                 if not (Json.equal got v) then
                   violate st "verify@%d: key %s diverged" verify_rank key
               | Error e -> violate st "verify@%d: key %s unreadable: %s" verify_rank key e
             end)
           st.model)
      : Proc.pid);
  Engine.run st.eng;
  (final_master, vmax, emax, !checked)

let run cfg =
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ~size:cfg.size () in
  let kvs = Kvs.load sess ~config:cfg.kvs () in
  let st =
    {
      cfg;
      eng;
      sess;
      kvs;
      rng = Rng.create cfg.seed;
      model = Hashtbl.create 256;
      indeterminate = Hashtbl.create 64;
      dead = [];
      in_flight_commits = 0;
      violations = [];
      commits_ok = 0;
      commits_indeterminate = 0;
      fences_ok = 0;
      fences_indeterminate = 0;
      gets_ok = 0;
      gets_failed = 0;
      kills = 0;
      revives = 0;
      master_kills = 0;
    }
  in
  List.iter
    (fun r ->
      if r < 0 || r >= cfg.size then invalid_arg "Chaos.run: client rank out of range")
    cfg.clients;
  ignore (Proc.spawn eng (fun () -> assassin st) : Proc.pid);
  ignore (Proc.spawn eng (fun () -> injector st) : Proc.pid);
  List.iter
    (fun r -> ignore (Proc.spawn eng (fun () -> client_proc st ~rank:r) : Proc.pid))
    cfg.clients;
  Engine.run eng;
  let final_master, final_version, takeovers, keys_checked = finalize st in
  let rpc = Session.rpc_net_stats sess in
  let ev = Session.event_net_stats sess in
  let ring = Session.ring_net_stats sess in
  {
    commits_ok = st.commits_ok;
    commits_indeterminate = st.commits_indeterminate;
    fences_ok = st.fences_ok;
    fences_indeterminate = st.fences_indeterminate;
    gets_ok = st.gets_ok;
    gets_failed = st.gets_failed;
    kills = st.kills;
    revives = st.revives;
    master_kills = st.master_kills;
    takeovers;
    final_version;
    final_master;
    keys_checked;
    keys_indeterminate = Hashtbl.length st.indeterminate;
    violations = List.rev st.violations;
    rpc_timeouts = Session.rpc_timeouts sess;
    rpc_retries = Session.rpc_retries sess;
    dead_letters = rpc.Net.dead_letters + ev.Net.dead_letters + ring.Net.dead_letters;
    dropped = rpc.Net.dropped + ev.Net.dropped + ring.Net.dropped;
    final_clock = Engine.now eng;
    sim_events = Engine.events_executed eng;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>commits ok/indet: %d/%d@,fences ok/indet: %d/%d@,gets ok/failed: %d/%d@,\
     kills/revives: %d/%d (master kills %d)@,takeovers: %d@,final: master=%d version=%d@,\
     keys checked/indet: %d/%d@,rpc timeouts/retries: %d/%d@,net dead_letters/dropped: %d/%d@,\
     clock: %.6f (%d events)@,violations: %d%a@]"
    r.commits_ok r.commits_indeterminate r.fences_ok r.fences_indeterminate r.gets_ok
    r.gets_failed r.kills r.revives r.master_kills r.takeovers r.final_master
    r.final_version r.keys_checked r.keys_indeterminate r.rpc_timeouts r.rpc_retries
    r.dead_letters r.dropped r.final_clock r.sim_events
    (List.length r.violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.violations
