(* Checkpoint/requeue kill-schedule harness: jobs that checkpoint
   through the KVS (fence + manifest) are killed at seeded points —
   a worker node mid-job, the KVS master mid-snapshot, a worker in the
   window between a committed checkpoint and the next fence — and must
   come back with zero acked-write loss, restart-equivalent reads, and
   monotonically advancing recovery points. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Stats = Flux_util.Stats
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Snapshot = Flux_kvs.Snapshot
module Wexec = Flux_modules.Wexec
module Checkpoint = Flux_core.Checkpoint
module Metrics = Flux_trace.Metrics
module Sha1 = Flux_sha1.Sha1

type kill_kind =
  | Node_mid_job  (** a worker rank dies while its tasks run *)
  | Master_mid_snapshot  (** the acting KVS master dies during a live capture *)
  | Between_ckpt_and_fence  (** a worker dies after a manifest commits, before the next fence *)

type config = {
  seed : int;
  size : int;
  fanout : int;
  kill : kill_kind option;  (** [None]: fault-free baseline (bench) *)
  manifests : bool;  (** [false]: plain fences, no manifests (bench baseline) *)
  workers : int list;
  per_rank : int;
  epochs : int;
  keys_per_epoch : int;
  value_bytes : int;
  ckpt_timeout : float;
  revive_after : float;
  max_requeues : int;
  kvs : Kvs.config;
}

(* Rank 0 is the wexec job master (no failover) and the driver runs on
   rank [size-1], so schedules never kill either; [size-2] serves reads
   and snapshot captures. Workers live strictly between. *)
let default =
  {
    seed = 1;
    size = 13;
    fanout = 2;
    kill = Some Node_mid_job;
    manifests = true;
    workers = [ 2; 3; 4; 5 ];
    per_rank = 1;
    epochs = 4;
    keys_per_epoch = 2;
    value_bytes = 96;
    ckpt_timeout = 4.0;
    revive_after = 1.0;
    max_requeues = 3;
    (* Acked state must survive master loss: replicate fresh interior
       objects with each setroot so a successor rebuilds from survivors. *)
    kvs = { Kvs.default_config with Kvs.setroot_delta_max = max_int };
  }

type report = {
  r_kind : kill_kind option;
  r_kills : int;
  r_revives : int;
  r_attempts : int;
  r_requeues : int;
  r_ckpt_ok : int;
  r_ckpt_failed : int;
  r_acked_epoch : int;
  r_resume_epochs : int list;  (** manifest epochs resumed from, oldest first *)
  r_keys_checked : int;
  r_snapshot_objects : int;
  r_snapshot_bytes : int;
  r_recovery_time : float;  (** first kill to job completion; 0 when fault-free *)
  r_ckpt_mean : float;  (** mean checkpoint (or plain-fence) latency *)
  r_ckpt_p50 : float;
  r_violations : string list;
  (* Determinism fingerprint material. *)
  r_final_version : int;
  r_final_root : string;
  r_final_clock : float;
  r_sim_events : int;
}

type state = {
  cfg : config;
  eng : Engine.t;
  sess : Session.t;
  kvs : Kvs.t array;
  rng : Rng.t;
  metrics : Metrics.t;
  (* Keys covered by a committed checkpoint manifest -> expected value. *)
  model : (string, Json.t) Hashtbl.t;
  ckpt_lat : Stats.t;
  mutable dead : int list;
  mutable launch_ok : bool;  (** gates the driver (master-failover pre-phase) *)
  mutable started_tasks : int;
  mutable capturing : bool;
  mutable fencing : int;  (** checkpoint fences currently in flight *)
  mutable acked_epoch : int;
  mutable resume_epochs : int list;  (** reversed *)
  mutable kills : int;
  mutable revives : int;
  mutable ckpt_ok : int;
  mutable ckpt_failed : int;
  mutable checked : int;
  mutable first_kill : float;
  mutable completed_at : float;
  mutable outcome : Checkpoint.outcome option;
  mutable violations : string list;  (** reversed *)
}

let violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.violations <-
        Printf.sprintf "t=%.3f %s" (Engine.now st.eng) s :: st.violations)
    fmt

let jobid = "ckjob"
let prog_name = "ckpt.worker"
let capture_rank st = st.cfg.size - 2
let driver_rank st = st.cfg.size - 1

let key_for ~g ~e ~i = Printf.sprintf "ck.g%d.e%d.i%d" g e i

let value_for cfg ~g ~e ~i =
  Json.obj
    [
      ("g", Json.int g);
      ("e", Json.int e);
      ("i", Json.int i);
      ("pad", Json.string (String.make cfg.value_bytes 'z'));
    ]

(* A committed manifest at epoch [e] covers every task's writes for all
   epochs of the attempt that fenced it; earlier epochs were promoted by
   the attempt that acked them (possibly with a different task count). *)
let promote st ~ntasks ~from_e ~to_e =
  for e = from_e to to_e do
    for g = 0 to ntasks - 1 do
      for i = 0 to st.cfg.keys_per_epoch - 1 do
        Hashtbl.replace st.model (key_for ~g ~e ~i) (value_for st.cfg ~g ~e ~i)
      done
    done
  done

let acting_kvs_master st =
  let m = ref (-1) in
  Array.iteri
    (fun r t -> if Kvs.is_master t && not (Session.is_down st.sess r) then m := r)
    st.kvs;
  !m

let kill_rank st r =
  if not (Session.is_down st.sess r) then begin
    Session.mark_down st.sess r;
    st.dead <- st.dead @ [ r ];
    st.kills <- st.kills + 1;
    if st.first_kill = 0.0 then st.first_kill <- Engine.now st.eng
  end

let revive_rank st r =
  if Session.is_down st.sess r then begin
    Session.mark_up st.sess r;
    st.dead <- List.filter (fun d -> d <> r) st.dead;
    st.revives <- st.revives + 1
  end

(* --- The checkpointing program ------------------------------------------- *)

let worker st (ctx : Wexec.proc_ctx) =
  st.started_tasks <- st.started_tasks + 1;
  let start_e, resumed =
    match Json.member_opt "resume" ctx.px_args with
    | None -> (1, None)
    | Some mj -> (
      match Wexec.manifest_of_json mj with
      | Some m -> (m.Wexec.m_epoch + 1, Some m)
      | None -> (1, None))
  in
  if ctx.px_global_index = 0 then begin
    (match resumed with
    | None -> ()
    | Some m -> st.resume_epochs <- m.Wexec.m_epoch :: st.resume_epochs);
    (* Restart-equivalence at the task level: the state the manifest
       pins must be readable before the attempt produces anything new. *)
    match resumed with
    | None -> ()
    | Some m ->
      for e = 1 to m.Wexec.m_epoch do
        let key = key_for ~g:0 ~e ~i:0 in
        match Client.get ctx.px_kvs ~key with
        | Ok v ->
          st.checked <- st.checked + 1;
          if not (Json.equal v (value_for st.cfg ~g:0 ~e ~i:0)) then
            violate st "resume: key %s diverged from checkpointed value" key
        | Error er -> violate st "resume: checkpointed key %s unreadable: %s" key er
      done
  end;
  for e = start_e to st.cfg.epochs do
    for i = 0 to st.cfg.keys_per_epoch - 1 do
      let key = key_for ~g:ctx.px_global_index ~e ~i in
      match Client.put ctx.px_kvs ~key (value_for st.cfg ~g:ctx.px_global_index ~e ~i) with
      | Ok () -> ()
      | Error er -> raise (Wexec.Task_failure er)
    done;
    let t0 = Engine.now st.eng in
    st.fencing <- st.fencing + 1;
    let r =
      if st.cfg.manifests then Wexec.checkpoint ~timeout:st.cfg.ckpt_timeout ctx ~epoch:e
      else
        Client.fence ~timeout:st.cfg.ckpt_timeout ctx.px_kvs
          ~name:(Wexec.manifest_key ctx.px_jobid e)
          ~nprocs:ctx.px_ntasks
    in
    st.fencing <- st.fencing - 1;
    match r with
    | Ok _ ->
      st.ckpt_ok <- st.ckpt_ok + 1;
      Stats.add st.ckpt_lat (Engine.now st.eng -. t0);
      if ctx.px_global_index = 0 && st.cfg.manifests then begin
        (* Task 0's Ok means the manifest itself committed: only now is
           the epoch a recovery point the model may rely on. *)
        if e > st.acked_epoch then st.acked_epoch <- e;
        promote st ~ntasks:ctx.px_ntasks ~from_e:start_e ~to_e:e
      end
    | Error er ->
      st.ckpt_failed <- st.ckpt_failed + 1;
      Client.abort ctx.px_kvs;
      raise (Wexec.Task_failure er)
  done

(* --- Kill schedules ------------------------------------------------------ *)

let protected st r = r = 0 || r = driver_rank st || r = capture_rank st

let seeded_worker st rng =
  let ws = st.cfg.workers in
  List.nth ws (Rng.int rng (List.length ws))

let node_assassin st =
  let rng = Rng.split st.rng in
  (* Strike while a checkpoint fence is demonstrably in flight — the
     worst window for a node death: the collective can no longer
     complete and the job must be killed and requeued. The whole job
     runs in a few simulated milliseconds, so poll finely from the
     start. *)
  while st.fencing = 0 && Engine.now st.eng < 60.0 do
    Proc.sleep 0.0002
  done;
  Proc.sleep (Rng.float rng 0.0005);
  let v = seeded_worker st rng in
  if not (protected st v) then begin
    kill_rank st v;
    Proc.sleep st.cfg.revive_after;
    revive_rank st v
  end

let window_assassin st =
  let rng = Rng.split st.rng in
  let target_epoch = 1 + (st.cfg.seed mod Int.max 1 (st.cfg.epochs - 1)) in
  while st.acked_epoch < target_epoch && Engine.now st.eng < 60.0 do
    Proc.sleep 0.0005
  done;
  (* Strike in the gap between the committed manifest and the next
     fence: the newest recovery point must already be durable. *)
  let v = seeded_worker st rng in
  if not (protected st v) then begin
    kill_rank st v;
    Proc.sleep st.cfg.revive_after;
    revive_rank st v
  end

(* Move KVS mastership off rank 0 (the fixed wexec master) before the
   job launches, so the mid-snapshot master kill never has to touch a
   protected rank. *)
let master_prephase st =
  (* Let the session and modules finish coming up before deposing the
     initial master — a kill at t=0 lands before anyone is watching
     liveness and no takeover ever starts. *)
  Proc.sleep 0.05;
  kill_rank st 0;
  while acting_kvs_master st < 0 && Engine.now st.eng < 60.0 do
    Proc.sleep 0.005
  done;
  Proc.sleep st.cfg.revive_after;
  revive_rank st 0;
  Proc.sleep 0.05;
  st.launch_ok <- true

let snapshotter st =
  while (st.acked_epoch < 1 || st.started_tasks = 0) && Engine.now st.eng < 60.0 do
    Proc.sleep 0.001
  done;
  st.capturing <- true;
  (* Hold the window open: the whole capture can finish inside the
     assassin's poll gap, so give it a beat to depose the master first —
     the capture then has to ride the takeover. *)
  Proc.sleep 0.002;
  (match Snapshot.capture st.sess ~rank:(capture_rank st) () with
  | Ok snap -> (
    match Snapshot.verify snap with
    | Ok () -> ()
    | Error e ->
      violate st "live capture did not verify: %s" (Snapshot.error_to_string e))
  | Error e -> violate st "live capture failed: %s" e);
  st.capturing <- false

let master_assassin st =
  let rng = Rng.split st.rng in
  while (not st.capturing) && Engine.now st.eng < 60.0 do
    Proc.sleep 0.0002
  done;
  Proc.sleep (Rng.float rng 0.001);
  let m = acting_kvs_master st in
  if m >= 0 && (not (protected st m)) && st.capturing then begin
    kill_rank st m;
    Proc.sleep st.cfg.revive_after;
    revive_rank st m
  end

(* --- Driver and finalization --------------------------------------------- *)

let driver st =
  while (not st.launch_ok) && Engine.now st.eng < 60.0 do
    Proc.sleep 0.01
  done;
  let rank = driver_rank st in
  let api = Api.connect st.sess ~rank in
  let kvs = Client.connect st.sess ~rank in
  match
    Checkpoint.run_resilient api ~kvs ~metrics:st.metrics
      ~max_requeues:st.cfg.max_requeues ~max_epoch:st.cfg.epochs ~jobid
      ~prog:prog_name ~per_rank:st.cfg.per_rank ~ranks:st.cfg.workers ()
  with
  | Ok o ->
    st.outcome <- Some o;
    st.completed_at <- Engine.now st.eng;
    if o.Checkpoint.o_completion.Wexec.c_failed <> 0 then
      violate st "job ended with %d failed tasks after %d attempts"
        o.Checkpoint.o_completion.Wexec.c_failed o.Checkpoint.o_attempts
  | Error e -> violate st "run_resilient: %s" e

(* Read every model key back through an uninvolved rank. *)
let verify_model st ~label =
  ignore
    (Proc.spawn st.eng (fun () ->
         let c = Client.connect st.sess ~rank:(capture_rank st) in
         Hashtbl.iter
           (fun key v ->
             st.checked <- st.checked + 1;
             match Client.get c ~key with
             | Ok got ->
               if not (Json.equal got v) then violate st "%s: key %s diverged" label key
             | Error e -> violate st "%s: acked key %s lost: %s" label key e)
           st.model)
      : Proc.pid);
  Engine.run st.eng

(* Serialize the final store, damage-check the round-trip, then rebuild
   a brand-new session from the bytes and require the model to read
   back identically — restart equivalence. *)
let restore_equivalence st snap =
  let encoded = Snapshot.encode snap in
  (match Snapshot.decode encoded with
  | Error e -> violate st "decode(encode) failed: %s" (Snapshot.error_to_string e)
  | Ok snap2 ->
    if not (String.equal encoded (Snapshot.encode snap2)) then
      violate st "decode(encode) is not a fixed point";
    if not (Sha1.equal snap.Snapshot.s_root snap2.Snapshot.s_root) then
      violate st "decode(encode) changed the root");
  let eng2 = Engine.create () in
  let sess2 = Session.create eng2 ~fanout:2 ~size:4 () in
  let kvs2 = Kvs.load sess2 ~config:st.cfg.kvs () in
  match Kvs.restore kvs2.(0) snap with
  | Error e -> violate st "restore into fresh session failed: %s" e
  | Ok () ->
    if Kvs.version kvs2.(0) <> snap.Snapshot.s_version then
      violate st "restored version %d <> snapshot version %d" (Kvs.version kvs2.(0))
        snap.Snapshot.s_version;
    ignore
      (Proc.spawn eng2 (fun () ->
           let c = Client.connect sess2 ~rank:3 in
           (* The restored root's setroot must reach this slave before
              its reads mean anything. *)
           (match Client.wait_version c snap.Snapshot.s_version with
           | Ok () -> ()
           | Error e -> violate st "restored: wait_version: %s" e);
           Hashtbl.iter
             (fun key v ->
               st.checked <- st.checked + 1;
               match Client.get c ~key with
               | Ok got ->
                 if not (Json.equal got v) then
                   violate st "restored: key %s diverged" key
               | Error e -> violate st "restored: acked key %s unreadable: %s" key e)
             st.model)
        : Proc.pid);
    Engine.run eng2

let finalize st =
  Engine.run st.eng;
  List.iter (fun r -> revive_rank st r) st.dead;
  Engine.run st.eng;
  (match st.outcome with
  | Some _ -> ()
  | None -> violate st "job never completed");
  (* Monotonic recovery: every requeue resumed at or past its
     predecessor's epoch. *)
  let resumes = List.rev st.resume_epochs in
  ignore
    (List.fold_left
       (fun prev e ->
         if e < prev then violate st "recovery regressed: resumed e%d after e%d" e prev;
         e)
       0 resumes
      : int);
  verify_model st ~label:"final";
  let snap_ref = ref None in
  ignore
    (Proc.spawn st.eng (fun () ->
         match Snapshot.capture st.sess ~rank:(capture_rank st) () with
         | Ok s -> snap_ref := Some s
         | Error e -> violate st "final capture failed: %s" e)
      : Proc.pid);
  Engine.run st.eng;
  (match !snap_ref with Some s -> restore_equivalence st s | None -> ());
  !snap_ref

let run cfg =
  if cfg.workers = [] then invalid_arg "Ckpt.run: no workers";
  List.iter
    (fun r ->
      if r <= 0 || r >= cfg.size - 2 then
        invalid_arg "Ckpt.run: workers must avoid ranks 0, size-2 and size-1")
    cfg.workers;
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ~size:cfg.size () in
  let kvs = Kvs.load sess ~config:cfg.kvs () in
  let metrics = Metrics.create () in
  Kvs.set_metrics_all kvs metrics;
  ignore (Wexec.load sess () : Wexec.t array);
  let st =
    {
      cfg;
      eng;
      sess;
      kvs;
      rng = Rng.create cfg.seed;
      metrics;
      model = Hashtbl.create 256;
      ckpt_lat = Stats.create ();
      dead = [];
      launch_ok = cfg.kill <> Some Master_mid_snapshot;
      started_tasks = 0;
      capturing = false;
      fencing = 0;
      acked_epoch = 0;
      resume_epochs = [];
      kills = 0;
      revives = 0;
      ckpt_ok = 0;
      ckpt_failed = 0;
      checked = 0;
      first_kill = 0.0;
      completed_at = 0.0;
      outcome = None;
      violations = [];
    }
  in
  Wexec.register_program prog_name (worker st);
  (match cfg.kill with
  | None -> ()
  | Some Node_mid_job -> ignore (Proc.spawn eng (fun () -> node_assassin st) : Proc.pid)
  | Some Between_ckpt_and_fence ->
    ignore (Proc.spawn eng (fun () -> window_assassin st) : Proc.pid)
  | Some Master_mid_snapshot ->
    ignore (Proc.spawn eng (fun () -> master_prephase st) : Proc.pid);
    ignore (Proc.spawn eng (fun () -> snapshotter st) : Proc.pid);
    ignore (Proc.spawn eng (fun () -> master_assassin st) : Proc.pid));
  ignore (Proc.spawn eng (fun () -> driver st) : Proc.pid);
  Engine.run eng;
  let snap = finalize st in
  let attempts, requeues =
    match st.outcome with
    | Some o ->
      (o.Checkpoint.o_attempts, Metrics.counter_total st.metrics ~name:"ckpt.requeue")
    | None -> (0, Metrics.counter_total st.metrics ~name:"ckpt.requeue")
  in
  let final_version, final_root =
    match acting_kvs_master st with
    | -1 -> (-1, "")
    | m -> (Kvs.version st.kvs.(m), Sha1.to_hex (Kvs.root_ref st.kvs.(m)))
  in
  {
    r_kind = cfg.kill;
    r_kills = st.kills;
    r_revives = st.revives;
    r_attempts = attempts;
    r_requeues = requeues;
    r_ckpt_ok = st.ckpt_ok;
    r_ckpt_failed = st.ckpt_failed;
    r_acked_epoch = st.acked_epoch;
    r_resume_epochs = List.rev st.resume_epochs;
    r_keys_checked = st.checked;
    r_snapshot_objects =
      (match snap with Some s -> List.length s.Snapshot.s_objects | None -> 0);
    r_snapshot_bytes = (match snap with Some s -> Snapshot.objects_bytes s | None -> 0);
    r_recovery_time =
      (if st.first_kill > 0.0 && st.completed_at > st.first_kill then
         st.completed_at -. st.first_kill
       else 0.0);
    r_ckpt_mean = (if Stats.count st.ckpt_lat = 0 then 0.0 else Stats.mean st.ckpt_lat);
    r_ckpt_p50 =
      (if Stats.count st.ckpt_lat = 0 then 0.0 else Stats.percentile st.ckpt_lat 0.50);
    r_violations = List.rev st.violations;
    r_final_version = final_version;
    r_final_root = final_root;
    r_final_clock = Engine.now eng;
    r_sim_events = Engine.events_executed eng;
  }

let pp_report ppf (r : report) =
  let kind =
    match r.r_kind with
    | None -> "none"
    | Some Node_mid_job -> "node-mid-job"
    | Some Master_mid_snapshot -> "master-mid-snapshot"
    | Some Between_ckpt_and_fence -> "between-ckpt-and-fence"
  in
  Format.fprintf ppf
    "@[<v>kill: %s@,kills/revives: %d/%d, attempts: %d (requeues %d)@,\
     ckpt ok/failed: %d/%d, acked epoch: %d, resumes: [%s]@,\
     keys checked: %d, snapshot: %d objects / %d bytes@,\
     recovery: %.3fs, ckpt latency mean/p50: %.6f/%.6f@,\
     final version %d root %s@,clock: %.6f (%d events)@,violations: %d%a@]"
    kind r.r_kills r.r_revives r.r_attempts r.r_requeues r.r_ckpt_ok r.r_ckpt_failed
    r.r_acked_epoch
    (String.concat ";" (List.map string_of_int r.r_resume_epochs))
    r.r_keys_checked r.r_snapshot_objects r.r_snapshot_bytes r.r_recovery_time
    r.r_ckpt_mean r.r_ckpt_p50 r.r_final_version
    (if String.length r.r_final_root >= 8 then String.sub r.r_final_root 0 8 else r.r_final_root)
    r.r_final_clock r.r_sim_events
    (List.length r.r_violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.r_violations

(* Fingerprint for same-seed determinism comparisons. *)
let fingerprint (r : report) =
  (r.r_final_clock, r.r_sim_events, r.r_final_version, r.r_final_root)
