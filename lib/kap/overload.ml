module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Net = Flux_sim.Net
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Stats = Flux_util.Stats
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics
module Flight = Flux_trace.Flight
module Tmod = Flux_modules.Telem

type profile = Sustained | Bursty

type config = {
  seed : int;
  size : int;
  fanout : int;
  producers : int list;
  rate : float;
  duration : float;
  profile : profile;
  burst_factor : float;
  burst_period : float;
  value_bytes : int;
  op_timeout : float;
  op_attempts : int;
  flow : Session.flow_config option;
  link_limits : Net.queue_limits option;
  kvs : Kvs.config;
  chaos_kill : bool;
  telem : bool; (* run the live telemetry plane in-band with the soak *)
  telem_interval : float; (* rollup epoch length; <= 0 means duration/10 *)
}

let master_capacity cfg =
  if cfg.kvs.Kvs.apply_cpu_per_tuple <= 0.0 then infinity
  else 1.0 /. cfg.kvs.Kvs.apply_cpu_per_tuple

let default =
  {
    seed = 1;
    size = 64;
    fanout = 2;
    (* Leaf-ish ranks, spread across subtrees so the streams converge
       hop by hop — the TBON funnel the credits are protecting. *)
    producers = List.init 8 (fun i -> 56 + i);
    rate = 5_000.0;
    duration = 0.5;
    profile = Sustained;
    burst_factor = 4.0;
    burst_period = 0.05;
    (* Above the inline threshold: values stay by-reference, so
       directories hold 20-byte shas rather than the payloads. *)
    value_bytes = 512;
    op_timeout = 1.0;
    op_attempts = 6;
    (* The top-of-tree broker funnels nearly all traffic: its window
       must cover the master's queueing delay (window/apply-rate) or the
       credits, not the master, become the bottleneck. 256 credits at
       100 us/op is a 25.6 ms pipe — deep enough to saturate the master,
       shallow enough that admission control still gets exercised. *)
    flow = Some { Session.default_flow_config with Session.flow_credits = 256; flow_stash = 512 };
    link_limits = Some { Net.max_msgs = 512; max_bytes = max_int; policy = Net.Block };
    (* A 100 us serial apply makes the master's capacity 10k ops/s —
       small enough to saturate with a short virtual-time run. *)
    kvs =
      {
        Kvs.default_config with
        Kvs.apply_cpu_per_tuple = 100e-6;
        admission_max_intake = 256;
      };
    chaos_kill = false;
    telem = false;
    telem_interval = 0.0;
  }

type report = {
  offered : int;
  acked : int;
  shed : int;
  failed : int;
  goodput : float;
  ack_p50 : float;
  ack_p99 : float;
  admission_sheds : int;
  intake_hwm : int;
  flow_defers : int;
  flow_sheds : int;
  flow_stash_hwm : int;
  link_defers : int;
  link_drops : int;
  link_depth_hwm : int;
  rpc_busy_retries : int;
  rpc_retries : int;
  rpc_timeouts : int;
  lost_acks : int;
  monotonic_violations : int;
  drained : bool;
  violations : string list;
  final_version : int;
  final_clock : float;
  sim_events : int;
  telem_epochs : int; (* 0 when the plane is off *)
  telem_alerts : int;
  telem_dumps : int;
}

(* Shared mutable state of one soak run. *)
type state = {
  cfg : config;
  eng : Engine.t;
  sess : Session.t;
  kvs : Kvs.t array;
  model : (string, Json.t) Hashtbl.t; (* key -> value, acked writes only *)
  lat : Stats.t;
  mutable offered : int;
  mutable acked : int;
  mutable shed : int;
  mutable failed : int;
  mutable monotonic_violations : int;
  mutable last_ack : float; (* when the final ack landed *)
  mutable violations : string list; (* reversed *)
  mutable flight : Flight.t option;
}

let violate st fmt =
  Printf.ksprintf
    (fun s ->
      st.violations <-
        Printf.sprintf "t=%.3f %s" (Engine.now st.eng) s :: st.violations;
      (* A tripped guarantee preserves its own evidence: the first one
         dumps the master's recent events before the trace moves on. *)
      match st.flight with
      | Some f ->
        ignore
          (Flight.dump_once f ~rank:0 ~tag:"violation" ~reason:("guarantee tripped: " ^ s)
            : Flight.dump option)
      | None -> ())
    fmt

(* --- Open-loop producers -------------------------------------------------- *)

(* Offered load is open loop: arrivals are scheduled on the engine at
   drawn interarrival times regardless of how many ops are still in
   flight — the overload regime closed-loop clients can never reach. *)

let stream_rate st ~now =
  let per = st.cfg.rate /. float_of_int (List.length st.cfg.producers) in
  match st.cfg.profile with
  | Sustained -> per
  | Bursty ->
    (* Average-preserving square wave with peak-to-trough ratio
       [burst_factor]: bursts hammer the queues while the aggregate
       offered load stays at the configured rate. *)
    let f = st.cfg.burst_factor in
    let phase = Float.rem now st.cfg.burst_period in
    if phase < st.cfg.burst_period /. 2.0 then per *. 2.0 *. f /. (f +. 1.0)
    else per *. 2.0 /. (f +. 1.0)

let value_for st ~rank ~seq =
  Json.obj
    [
      ("r", Json.int rank);
      ("n", Json.int seq);
      ("pad", Json.string (String.make st.cfg.value_bytes 'x'));
    ]

let inject st ~api ~rank ~seq =
  (* Shard each stream across 64 subdirectories so no directory grows
     with the run: an apply rewrites every directory on the touched
     path, and a single flat directory would make op cost linear in the
     ops so far. *)
  let key = Printf.sprintf "ov.%d.%d.%d" rank (seq land 63) seq in
  let v = value_for st ~rank ~seq in
  let sent = Engine.now st.eng in
  st.offered <- st.offered + 1;
  Api.rpc_async api ~timeout:st.cfg.op_timeout ~attempts:st.cfg.op_attempts
    ~idempotent:true ~topic:"kvs.mput"
    (Json.obj [ ("bindings", Json.list [ Json.obj [ ("key", Json.string key); ("v", v) ] ]) ])
    ~reply:(fun r ->
      match r with
      | Ok _ ->
        st.acked <- st.acked + 1;
        st.last_ack <- Engine.now st.eng;
        Stats.add st.lat (Engine.now st.eng -. sent);
        Hashtbl.replace st.model key v
      | Error e ->
        if Session.busy_retry_after e <> None then st.shed <- st.shed + 1
        else st.failed <- st.failed + 1)

let producer st ~rank =
  let api = Api.connect st.sess ~rank in
  let rng = Rng.create (st.cfg.seed lxor (rank * 0x9e3779b1)) in
  let seq = ref 0 in
  let rec arm () =
    let now = Engine.now st.eng in
    if now < st.cfg.duration then begin
      let gap = Rng.exponential rng (1.0 /. stream_rate st ~now) in
      ignore
        (Engine.schedule st.eng ~delay:gap (fun () ->
             if Engine.now st.eng < st.cfg.duration then begin
               incr seq;
               inject st ~api ~rank ~seq:!seq;
               arm ()
             end)
          : Engine.handle)
    end
  in
  arm ()

(* A version monitor at the first producer rank: monotonic reads must
   survive shedding — rejected writes may be lost, observed roots may
   never regress. *)
let monitor st =
  let rank = List.hd st.cfg.producers in
  ignore
    (Proc.spawn st.eng (fun () ->
         let c = Client.connect st.sess ~rank in
         let last = ref 0 in
         while Engine.now st.eng < st.cfg.duration do
           Proc.sleep (st.cfg.duration /. 200.0);
           match Client.get_version c with
           | Ok v ->
             if v < !last then begin
               st.monotonic_violations <- st.monotonic_violations + 1;
               violate st "monitor: version regressed %d -> %d" !last v
             end
             else last := v
           | Error _ -> ()
         done)
      : Proc.pid)

(* Optional chaos overlay: kill one interior non-producer, non-master
   rank a third of the way in and revive it at two thirds, proving the
   overload invariants hold across a failover-free fault. *)
let chaos_overlay st =
  match
    List.filter
      (fun r -> r <> 0 && not (List.mem r st.cfg.producers))
      (List.init st.cfg.size Fun.id)
  with
  | [] -> ()
  | victim :: _ ->
    ignore
      (Engine.schedule st.eng ~delay:(st.cfg.duration /. 3.0) (fun () ->
           Session.mark_down st.sess victim)
        : Engine.handle);
    ignore
      (Engine.schedule st.eng ~delay:(2.0 *. st.cfg.duration /. 3.0) (fun () ->
           Session.mark_up st.sess victim)
        : Engine.handle)

(* --- Verification --------------------------------------------------------- *)

(* Every acked write must read back with the committed value: shedding
   may reject offered load, never acknowledged load. *)
let verify_acked st =
  let rank = List.hd st.cfg.producers in
  let lost = ref 0 in
  ignore
    (Proc.spawn st.eng (fun () ->
         let c = Client.connect st.sess ~rank in
         Hashtbl.iter
           (fun key v ->
             match Client.get c ~key with
             | Ok got ->
               if not (Json.equal got v) then begin
                 incr lost;
                 violate st "acked write %s diverged" key
               end
             | Error e ->
               incr lost;
               violate st "acked write %s unreadable: %s" key e)
           st.model)
      : Proc.pid);
  Engine.run st.eng;
  !lost

let check_bounds st =
  (match st.cfg.flow with
  | Some fc ->
    let hwm = Session.flow_stash_hwm st.sess in
    if hwm > fc.Session.flow_stash then
      violate st "flow stash hwm %d exceeds bound %d" hwm fc.Session.flow_stash
  | None -> ());
  (match st.cfg.link_limits with
  | Some l ->
    let hwm = Net.max_link_depth_hwm (Session.rpc_net st.sess) in
    if hwm > l.Net.max_msgs then
      violate st "link depth hwm %d exceeds bound %d" hwm l.Net.max_msgs
  | None -> ());
  if st.cfg.kvs.Kvs.admission_max_intake > 0 then begin
    let hwm = Kvs.intake_hwm st.kvs.(0) in
    (* The gate admits at depth < limit; an admitted fence batch can
       still park, so the true ceiling is the threshold itself. *)
    if hwm > st.cfg.kvs.Kvs.admission_max_intake then
      violate st "master intake hwm %d exceeds bound %d" hwm
        st.cfg.kvs.Kvs.admission_max_intake
  end

let run cfg =
  if cfg.producers = [] then invalid_arg "Overload.run: no producers";
  List.iter
    (fun r ->
      if r <= 0 || r >= cfg.size then
        invalid_arg "Overload.run: producer rank out of range (must be 1..size-1)")
    cfg.producers;
  if cfg.rate <= 0.0 || cfg.duration <= 0.0 then
    invalid_arg "Overload.run: rate and duration must be positive";
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:cfg.fanout ?flow:cfg.flow ~size:cfg.size () in
  Net.set_link_limits (Session.rpc_net sess) cfg.link_limits;
  let kvs = Kvs.load sess ~config:cfg.kvs () in
  let st =
    {
      cfg;
      eng;
      sess;
      kvs;
      model = Hashtbl.create 4096;
      lat = Stats.create ();
      offered = 0;
      acked = 0;
      shed = 0;
      failed = 0;
      monotonic_violations = 0;
      last_ack = 0.0;
      violations = [];
      flight = None;
    }
  in
  (* Optional live telemetry plane, riding the same overloaded tree as
     the soak traffic — the rollups themselves contend for the links,
     credits, and admission gate under test. *)
  let telem =
    if not cfg.telem then None
    else begin
      (* The plane samples the *metric* registry — counters, gauges and
         histograms every layer already maintains — so metrics attach to
         the whole stack. Full per-event tracing is a separate opt-in
         (the observe experiment): at soak rates it costs ~2x wall
         clock, so the tracer here is a small dedicated ring carrying
         only the plane's own rollup/alert events and feeding the
         flight recorder. *)
      let tr = Tracer.create ~capacity:8192 ~now:(fun () -> Engine.now eng) () in
      let m = Metrics.create () in
      Session.set_metrics sess (Some m);
      Kvs.set_metrics_all kvs m;
      let f = Flight.create ~capacity:128 tr in
      st.flight <- Some f;
      let ts =
        Tmod.load sess
          ~config:{ Tmod.default_config with Tmod.interval =
              (if cfg.telem_interval > 0.0 then cfg.telem_interval
               else cfg.duration /. 10.0) }
          ()
      in
      Tmod.set_metrics_all ts m;
      Tmod.set_tracer_all ts tr;
      Tmod.set_flight_all ts f;
      Tmod.start ~until:cfg.duration ts;
      Some ts
    end
  in
  List.iter (fun r -> producer st ~rank:r) cfg.producers;
  monitor st;
  if cfg.chaos_kill then chaos_overlay st;
  (* Drains completely: open-loop arrivals stop at [duration], then
     every in-flight RPC resolves (ack, busy, or timeout) and the
     engine goes quiet. *)
  Engine.run eng;
  (* Goodput over the full busy window (injection plus drain-to-last-
     ack), so work absorbed into queues and finished late cannot be
     counted as above-capacity throughput. The raw engine clock would
     overshoot: idle housekeeping timers (stash sweeps, deadline arming)
     can fire long after the last useful event. *)
  let drain_clock = Float.max cfg.duration st.last_ack in
  let lost_acks = verify_acked st in
  check_bounds st;
  let unresolved = st.offered - st.acked - st.shed - st.failed in
  if unresolved <> 0 then violate st "%d offered ops never resolved" unresolved;
  let stash_left =
    List.init cfg.size (fun r -> Session.flow_stash_depth sess r)
    |> List.fold_left ( + ) 0
  in
  let drained = stash_left = 0 && Kvs.intake_depth kvs.(0) = 0 in
  if not drained then
    violate st "undrained: stash=%d intake=%d" stash_left (Kvs.intake_depth kvs.(0));
  let rpc = Session.rpc_net_stats sess in
  {
    offered = st.offered;
    acked = st.acked;
    shed = st.shed;
    failed = st.failed;
    goodput = float_of_int st.acked /. drain_clock;
    ack_p50 = (if Stats.count st.lat = 0 then 0.0 else Stats.percentile st.lat 0.50);
    ack_p99 = (if Stats.count st.lat = 0 then 0.0 else Stats.percentile st.lat 0.99);
    admission_sheds = Kvs.admission_sheds kvs.(0);
    intake_hwm = Kvs.intake_hwm kvs.(0);
    flow_defers = Session.flow_defers sess;
    flow_sheds = Session.flow_sheds sess;
    flow_stash_hwm = Session.flow_stash_hwm sess;
    link_defers = rpc.Net.overload_defers;
    link_drops = rpc.Net.overload_drops;
    link_depth_hwm = Net.max_link_depth_hwm (Session.rpc_net sess);
    rpc_busy_retries = Session.rpc_busy_retries sess;
    rpc_retries = Session.rpc_retries sess;
    rpc_timeouts = Session.rpc_timeouts sess;
    lost_acks;
    monotonic_violations = st.monotonic_violations;
    drained;
    violations = List.rev st.violations;
    final_version = Kvs.version kvs.(0);
    final_clock = Engine.now eng;
    sim_events = Engine.events_executed eng;
    telem_epochs = (match telem with Some ts -> Tmod.epochs_completed ts | None -> 0);
    telem_alerts = (match telem with Some ts -> List.length (Tmod.alerts ts) | None -> 0);
    telem_dumps = (match st.flight with Some f -> List.length (Flight.dumps f) | None -> 0);
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>offered/acked/shed/failed: %d/%d/%d/%d@,goodput: %.0f ops/s (ack p50 %.6f p99 %.6f)@,\
     admission sheds: %d (intake hwm %d)@,flow defers/sheds: %d/%d (stash hwm %d)@,\
     link defers/drops: %d/%d (depth hwm %d)@,rpc busy/retries/timeouts: %d/%d/%d@,\
     lost acks: %d, monotonic violations: %d, drained: %b@,\
     telem: %d epochs, %d alerts, %d dumps@,\
     final: v%d clock %.6f (%d events)@,violations: %d%a@]"
    r.offered r.acked r.shed r.failed r.goodput r.ack_p50 r.ack_p99 r.admission_sheds
    r.intake_hwm r.flow_defers r.flow_sheds r.flow_stash_hwm r.link_defers r.link_drops
    r.link_depth_hwm r.rpc_busy_retries r.rpc_retries r.rpc_timeouts r.lost_acks
    r.monotonic_violations r.drained r.telem_epochs r.telem_alerts r.telem_dumps
    r.final_version r.final_clock r.sim_events
    (List.length r.violations)
    (fun ppf -> List.iter (fun v -> Format.fprintf ppf "@,  %s" v))
    r.violations
