module Rng = Flux_util.Rng
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics

type config = {
  link_latency : float;
  bandwidth : float;
  per_msg_overhead : int;
  host_cpu_per_msg : float;
  host_cpu_per_byte : float;
  local_delivery : float;
}

let default_config =
  {
    link_latency = 20e-6;
    bandwidth = 3.2e9;
    per_msg_overhead = 64;
    host_cpu_per_msg = 2e-6;
    host_cpu_per_byte = 0.35e-9;
    local_delivery = 0.5e-6;
  }

type overflow = Mailbox.overflow = Block | Drop_newest | Drop_oldest

type queue_limits = { max_msgs : int; max_bytes : int; policy : overflow }

(* One message in flight on a link, tracked only when limits are set:
   [Drop_oldest] needs a cancellation handle for the head of line and
   [Block] needs arrival times to compute when occupancy drains. *)
type inflight = {
  if_wire : int;
  if_arrive : float;
  mutable if_handle : Engine.handle option;
  mutable if_live : bool;
}

type link = {
  mutable free_at : float;
  mutable bytes : int; (* cumulative wire bytes delivered *)
  mutable msgs : int; (* cumulative messages delivered *)
  mutable q_msgs : int; (* messages currently in flight (occupancy) *)
  mutable q_bytes : int; (* wire bytes currently in flight *)
  mutable q_hwm : int; (* high-water mark of [q_msgs] *)
  inflight : inflight Queue.t; (* populated only when limits are set *)
}

type 'msg host = {
  mutable alive : bool;
  mutable cpu_free_at : float;
  mutable handler : (src:int -> 'msg -> unit) option;
}

type 'msg t = {
  eng : Engine.t;
  cfg : config;
  n : int;
  hosts : 'msg host array;
  links : (int, link) Hashtbl.t; (* key: src * n + dst *)
  cuts : (int, float) Hashtbl.t; (* key: src * n + dst -> blackout end *)
  rng : Rng.t;
  mutable loss_prob : float;
  mutable jitter : float;
  mutable limits : queue_limits option;
  mutable messages : int;
  mutable total_bytes : int;
  mutable dropped : int;
  mutable dropped_bytes : int;
  mutable dead_letters : int;
  mutable overload_drops : int;
  mutable overload_defers : int;
  (* Observability hooks; [None] (the default) costs one branch per
     drop/send and allocates nothing. *)
  mutable tracer : Tracer.t option;
  mutable metrics : metric_families option;
  mutable label : string;
}

(* Per-plane metric families, resolved once at [set_metrics]: the send
   path fires several metric updates per message, and rebuilding
   [label ^ ".queue_wait"]-style names there (or hashing them) would
   dominate the cost of the updates themselves. *)
and metric_families = {
  mf_overload_drop : Metrics.counter_family;
  mf_link_defer : Metrics.counter_family;
  mf_queue_wait : Metrics.hist_family;
  mf_transit : Metrics.hist_family;
  mf_link_bytes : Metrics.counter_family;
  mf_link_backlog : Metrics.gauge_family;
  mf_link_depth : Metrics.gauge_family;
  mf_link_depth_hwm : Metrics.gauge_family;
}

let resolve_families label m =
  {
    mf_overload_drop = Metrics.counter_family m ~name:(label ^ ".overload_drop");
    mf_link_defer = Metrics.counter_family m ~name:(label ^ ".link_defer");
    mf_queue_wait = Metrics.hist_family m ~name:(label ^ ".queue_wait");
    mf_transit = Metrics.hist_family m ~name:(label ^ ".transit");
    mf_link_bytes = Metrics.counter_family m ~name:(label ^ ".link_bytes");
    mf_link_backlog = Metrics.gauge_family m ~name:(label ^ ".link_backlog");
    mf_link_depth = Metrics.gauge_family m ~name:(label ^ ".link_depth");
    mf_link_depth_hwm = Metrics.gauge_family m ~name:(label ^ ".link_depth_hwm");
  }

let create eng ?(config = default_config) ?(fault_seed = 0x464c5558) ~nodes () =
  if nodes <= 0 then invalid_arg "Net.create: need at least one node";
  {
    eng;
    cfg = config;
    n = nodes;
    hosts = Array.init nodes (fun _ -> { alive = true; cpu_free_at = 0.0; handler = None });
    links = Hashtbl.create 64;
    cuts = Hashtbl.create 8;
    rng = Rng.create fault_seed;
    loss_prob = 0.0;
    jitter = 0.0;
    limits = None;
    messages = 0;
    total_bytes = 0;
    dropped = 0;
    dropped_bytes = 0;
    dead_letters = 0;
    overload_drops = 0;
    overload_defers = 0;
    tracer = None;
    metrics = None;
    label = "net";
  }

let engine t = t.eng

let set_tracer t tr = t.tracer <- tr

let set_metrics t ?label m =
  (match label with Some l -> t.label <- l | None -> ());
  t.metrics <- Option.map (resolve_families t.label) m
let nodes t = t.n
let config t = t.cfg

let set_link_limits t lim =
  (match lim with
  | Some l when l.max_msgs < 1 || l.max_bytes < 1 ->
    invalid_arg "Net.set_link_limits: bounds must be >= 1"
  | _ -> ());
  t.limits <- lim

let check_rank t r name =
  if r < 0 || r >= t.n then invalid_arg (Printf.sprintf "Net.%s: rank %d out of range" name r)

let set_handler t rank f =
  check_rank t rank "set_handler";
  t.hosts.(rank).handler <- Some f

let link_of t src dst =
  let key = (src * t.n) + dst in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l =
      {
        free_at = 0.0;
        bytes = 0;
        msgs = 0;
        q_msgs = 0;
        q_bytes = 0;
        q_hwm = 0;
        inflight = Queue.create ();
      }
    in
    Hashtbl.replace t.links key l;
    l

(* --- Fault injection --------------------------------------------------- *)

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_loss: probability out of [0,1]";
  t.loss_prob <- p

let set_jitter t j =
  if j < 0.0 then invalid_arg "Net.set_jitter: negative jitter";
  t.jitter <- j

let cut_key t ~src ~dst = (src * t.n) + dst

let cut_link t ~src ~dst =
  check_rank t src "cut_link";
  check_rank t dst "cut_link";
  Hashtbl.replace t.cuts (cut_key t ~src ~dst) infinity

let heal_link t ~src ~dst =
  check_rank t src "heal_link";
  check_rank t dst "heal_link";
  Hashtbl.remove t.cuts (cut_key t ~src ~dst)

let blackout t ~src ~dst ~duration =
  check_rank t src "blackout";
  check_rank t dst "blackout";
  if duration < 0.0 then invalid_arg "Net.blackout: negative duration";
  Hashtbl.replace t.cuts (cut_key t ~src ~dst) (Engine.now t.eng +. duration)

let link_cut t ~src ~dst =
  check_rank t src "link_cut";
  check_rank t dst "link_cut";
  match Hashtbl.find_opt t.cuts (cut_key t ~src ~dst) with
  | Some until -> Engine.now t.eng < until
  | None -> false

let partition t ranks =
  List.iter (fun r -> check_rank t r "partition") ranks;
  let inside = Array.make t.n false in
  List.iter (fun r -> inside.(r) <- true) ranks;
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if inside.(a) <> inside.(b) then begin
        cut_link t ~src:a ~dst:b;
        cut_link t ~src:b ~dst:a
      end
    done
  done

let heal_all_links t = Hashtbl.reset t.cuts

(* --- Delivery ----------------------------------------------------------- *)

let drop t ~wire ~fault =
  t.dropped <- t.dropped + 1;
  t.dropped_bytes <- t.dropped_bytes + wire;
  if fault then t.dead_letters <- t.dead_letters + 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
    Tracer.add_count tr ~cat:"net" ~name:"drop" 1;
    if fault then Tracer.add_count tr ~cat:"net" ~name:"dead_letter" 1

(* A policy (not fault) loss: the queue was full and the message was
   shed to bound memory. Counted separately from wire faults so shed
   rate is distinguishable from lossy-network drops. *)
let overload_drop t ~wire ~src =
  t.overload_drops <- t.overload_drops + 1;
  t.dropped <- t.dropped + 1;
  t.dropped_bytes <- t.dropped_bytes + wire;
  (match t.tracer with
  | None -> ()
  | Some tr -> Tracer.add_count tr ~cat:"net" ~name:"overload_drop" 1);
  match t.metrics with
  | None -> ()
  | Some mf -> Metrics.family_incr mf.mf_overload_drop ~rank:src

(* Occupancy released when the message leaves the wire (arrival, loss
   point, or eviction). *)
let occupy link ~wire =
  link.q_msgs <- link.q_msgs + 1;
  link.q_bytes <- link.q_bytes + wire;
  if link.q_msgs > link.q_hwm then link.q_hwm <- link.q_msgs

let release link ~wire =
  link.q_msgs <- link.q_msgs - 1;
  link.q_bytes <- link.q_bytes - wire

let retire_inflight link e =
  if e.if_live then begin
    e.if_live <- false;
    release link ~wire:e.if_wire
  end;
  (* Shed already-dead heads so the queue stays O(occupancy). *)
  let rec trim () =
    match Queue.peek_opt link.inflight with
    | Some h when not h.if_live ->
      ignore (Queue.take link.inflight : inflight);
      trim ()
    | _ -> ()
  in
  trim ()

(* Runs at arrival time, when the message reaches the receiving host.
   Dead hosts drop without any CPU charge; live hosts serialize through
   the receive core and may still lose the message if they die before
   processing completes. *)
let deliver_via_cpu t dst ~wire ~size ~src ?link payload =
  let host = t.hosts.(dst) in
  if not host.alive then drop t ~wire ~fault:false
  else begin
    let cpu_start = Float.max (Engine.now t.eng) host.cpu_free_at in
    let work = t.cfg.host_cpu_per_msg +. (float_of_int size *. t.cfg.host_cpu_per_byte) in
    host.cpu_free_at <- cpu_start +. work;
    ignore
      (Engine.schedule_at t.eng ~time:(cpu_start +. work) (fun () ->
           if host.alive then begin
             t.messages <- t.messages + 1;
             t.total_bytes <- t.total_bytes + wire;
             (match link with
             | Some l ->
               l.bytes <- l.bytes + wire;
               l.msgs <- l.msgs + 1
             | None -> ());
             match host.handler with
             | Some f -> f ~src payload
             | None -> ()
           end
           else drop t ~wire ~fault:false)
        : Engine.handle)
  end

(* Admission decision against the per-link occupancy caps. *)
type admission = Admitted | Shed | Deferred_until of float

let admit t link ~wire ~src =
  match t.limits with
  | None -> Admitted
  | Some lim ->
    let fits () = link.q_msgs < lim.max_msgs && link.q_bytes + wire <= lim.max_bytes in
    if fits () then Admitted
    else begin
      match lim.policy with
      | Drop_newest -> Shed
      | Drop_oldest ->
        let rec evict () =
          if not (fits ()) then begin
            match Queue.take_opt link.inflight with
            | None -> ()
            | Some e when not e.if_live -> evict ()
            | Some e ->
              (match e.if_handle with Some h -> Engine.cancel h | None -> ());
              e.if_live <- false;
              release link ~wire:e.if_wire;
              overload_drop t ~wire:e.if_wire ~src;
              evict ()
          end
        in
        evict ();
        if fits () then Admitted else Shed
      | Block ->
        (* Earliest instant enough in-flight messages will have drained
           for this one to fit: walk live entries in send order, which
           is arrival order up to jitter. *)
        let need_msgs = link.q_msgs - lim.max_msgs + 1 in
        let need_bytes = link.q_bytes + wire - lim.max_bytes in
        let freed_msgs = ref 0 and freed_bytes = ref 0 and at = ref (Engine.now t.eng) in
        let found = ref false in
        Queue.iter
          (fun e ->
            if e.if_live && not !found then begin
              incr freed_msgs;
              freed_bytes := !freed_bytes + e.if_wire;
              if e.if_arrive > !at then at := e.if_arrive;
              if !freed_msgs >= need_msgs && !freed_bytes >= need_bytes then found := true
            end)
          link.inflight;
        if !found then Deferred_until !at
        else Shed (* can never fit, e.g. wire > max_bytes *)
    end

(* Remote transmission path, re-entered by [Block]-policy deferrals so
   cuts and caps are re-evaluated at the actual transmit attempt. *)
let rec send_remote t ~src ~dst ~size m =
  let wire = size + t.cfg.per_msg_overhead in
  if not t.hosts.(src).alive then drop t ~wire:size ~fault:false
  else if link_cut t ~src ~dst then drop t ~wire ~fault:true
  else begin
    let link = link_of t src dst in
    match admit t link ~wire ~src with
    | Shed -> overload_drop t ~wire ~src
    | Deferred_until at ->
      t.overload_defers <- t.overload_defers + 1;
      (match t.metrics with
      | None -> ()
      | Some mf -> Metrics.family_incr mf.mf_link_defer ~rank:src);
      ignore
        (Engine.schedule_at t.eng ~time:at (fun () -> send_remote t ~src ~dst ~size m)
          : Engine.handle)
    | Admitted ->
      let lost = t.loss_prob > 0.0 && Rng.float t.rng 1.0 < t.loss_prob in
      let jit = if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0 in
      let now = Engine.now t.eng in
      let xfer = float_of_int wire /. t.cfg.bandwidth in
      let start = Float.max now link.free_at in
      (* Lost messages still occupy the pipe: the sender transmitted
         them, the fault eats them en route. *)
      link.free_at <- start +. xfer;
      let arrive = start +. xfer +. t.cfg.link_latency +. jit in
      occupy link ~wire;
      (match t.metrics with
      | None -> ()
      | Some mf ->
        (* Send-side per-link accounting: how long the message waited
           for the FIFO pipe, its full transit time, wire bytes pushed,
           the backlog the pipe now holds, and queue occupancy. *)
        Metrics.family_observe mf.mf_queue_wait ~rank:src (start -. now);
        Metrics.family_observe mf.mf_transit ~rank:src (arrive -. now);
        Metrics.family_add mf.mf_link_bytes ~rank:src wire;
        Metrics.family_set_gauge mf.mf_link_backlog ~rank:src (link.free_at -. now);
        Metrics.family_set_gauge mf.mf_link_depth ~rank:src
          (float_of_int link.q_msgs);
        let hwm = float_of_int link.q_hwm in
        let prev =
          match Metrics.family_gauge mf.mf_link_depth_hwm ~rank:src with
          | Some g -> g
          | None -> 0.0
        in
        if hwm > prev then
          Metrics.family_set_gauge mf.mf_link_depth_hwm ~rank:src hwm);
      if t.limits = None then begin
        (* Unbounded fast path: occupancy tracked with plain counters,
           no per-message record. *)
        if lost then
          ignore
            (Engine.schedule_at t.eng ~time:arrive (fun () ->
                 release link ~wire;
                 drop t ~wire ~fault:true)
              : Engine.handle)
        else
          ignore
            (Engine.schedule_at t.eng ~time:arrive (fun () ->
                 release link ~wire;
                 deliver_via_cpu t dst ~wire ~size ~src ~link m)
              : Engine.handle)
      end
      else begin
        let e = { if_wire = wire; if_arrive = arrive; if_handle = None; if_live = true } in
        Queue.add e link.inflight;
        let h =
          if lost then
            Engine.schedule_at t.eng ~time:arrive (fun () ->
                retire_inflight link e;
                drop t ~wire ~fault:true)
          else
            Engine.schedule_at t.eng ~time:arrive (fun () ->
                retire_inflight link e;
                deliver_via_cpu t dst ~wire ~size ~src ~link m)
        in
        e.if_handle <- Some h
      end
  end

let send t ~src ~dst ~size m =
  check_rank t src "send";
  check_rank t dst "send";
  if size < 0 then invalid_arg "Net.send: negative size";
  if not t.hosts.(src).alive then drop t ~wire:size ~fault:false
  else if src = dst then begin
    (* Loop-back: no framing, no link, just the local delivery cost. *)
    let arrive = Engine.now t.eng +. t.cfg.local_delivery in
    ignore
      (Engine.schedule_at t.eng ~time:arrive (fun () ->
           deliver_via_cpu t dst ~wire:size ~size ~src m)
        : Engine.handle)
  end
  else send_remote t ~src ~dst ~size m

let fail_node t r =
  check_rank t r "fail_node";
  t.hosts.(r).alive <- false

let revive_node t r =
  check_rank t r "revive_node";
  t.hosts.(r).alive <- true

let is_alive t r =
  check_rank t r "is_alive";
  t.hosts.(r).alive

type stats = {
  messages : int;
  bytes : int;
  dropped : int;
  dropped_bytes : int;
  dead_letters : int;
  overload_drops : int;
  overload_defers : int;
}

let stats (t : _ t) =
  {
    messages = t.messages;
    bytes = t.total_bytes;
    dropped = t.dropped;
    dropped_bytes = t.dropped_bytes;
    dead_letters = t.dead_letters;
    overload_drops = t.overload_drops;
    overload_defers = t.overload_defers;
  }

let link_bytes t ~src ~dst =
  match Hashtbl.find_opt t.links ((src * t.n) + dst) with
  | Some l -> l.bytes
  | None -> 0

let link_depth t ~src ~dst =
  match Hashtbl.find_opt t.links ((src * t.n) + dst) with
  | Some l -> l.q_msgs
  | None -> 0

let link_depth_hwm t ~src ~dst =
  match Hashtbl.find_opt t.links ((src * t.n) + dst) with
  | Some l -> l.q_hwm
  | None -> 0

let max_link_depth_hwm t = Hashtbl.fold (fun _ l acc -> max acc l.q_hwm) t.links 0
