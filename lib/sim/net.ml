module Rng = Flux_util.Rng
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics

type config = {
  link_latency : float;
  bandwidth : float;
  per_msg_overhead : int;
  host_cpu_per_msg : float;
  host_cpu_per_byte : float;
  local_delivery : float;
}

let default_config =
  {
    link_latency = 20e-6;
    bandwidth = 3.2e9;
    per_msg_overhead = 64;
    host_cpu_per_msg = 2e-6;
    host_cpu_per_byte = 0.35e-9;
    local_delivery = 0.5e-6;
  }

type link = { mutable free_at : float; mutable bytes : int; mutable msgs : int }

type 'msg host = {
  mutable alive : bool;
  mutable cpu_free_at : float;
  mutable handler : (src:int -> 'msg -> unit) option;
}

type 'msg t = {
  eng : Engine.t;
  cfg : config;
  n : int;
  hosts : 'msg host array;
  links : (int, link) Hashtbl.t; (* key: src * n + dst *)
  cuts : (int, float) Hashtbl.t; (* key: src * n + dst -> blackout end *)
  rng : Rng.t;
  mutable loss_prob : float;
  mutable jitter : float;
  mutable messages : int;
  mutable total_bytes : int;
  mutable dropped : int;
  mutable dropped_bytes : int;
  mutable dead_letters : int;
  (* Observability hooks; [None] (the default) costs one branch per
     drop/send and allocates nothing. *)
  mutable tracer : Tracer.t option;
  mutable metrics : Metrics.t option;
  mutable label : string;
}

let create eng ?(config = default_config) ?(fault_seed = 0x464c5558) ~nodes () =
  if nodes <= 0 then invalid_arg "Net.create: need at least one node";
  {
    eng;
    cfg = config;
    n = nodes;
    hosts = Array.init nodes (fun _ -> { alive = true; cpu_free_at = 0.0; handler = None });
    links = Hashtbl.create 64;
    cuts = Hashtbl.create 8;
    rng = Rng.create fault_seed;
    loss_prob = 0.0;
    jitter = 0.0;
    messages = 0;
    total_bytes = 0;
    dropped = 0;
    dropped_bytes = 0;
    dead_letters = 0;
    tracer = None;
    metrics = None;
    label = "net";
  }

let engine t = t.eng

let set_tracer t tr = t.tracer <- tr

let set_metrics t ?label m =
  (match label with Some l -> t.label <- l | None -> ());
  t.metrics <- m
let nodes t = t.n
let config t = t.cfg

let check_rank t r name =
  if r < 0 || r >= t.n then invalid_arg (Printf.sprintf "Net.%s: rank %d out of range" name r)

let set_handler t rank f =
  check_rank t rank "set_handler";
  t.hosts.(rank).handler <- Some f

let link_of t src dst =
  let key = (src * t.n) + dst in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l = { free_at = 0.0; bytes = 0; msgs = 0 } in
    Hashtbl.replace t.links key l;
    l

(* --- Fault injection --------------------------------------------------- *)

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Net.set_loss: probability out of [0,1]";
  t.loss_prob <- p

let set_jitter t j =
  if j < 0.0 then invalid_arg "Net.set_jitter: negative jitter";
  t.jitter <- j

let cut_key t ~src ~dst = (src * t.n) + dst

let cut_link t ~src ~dst =
  check_rank t src "cut_link";
  check_rank t dst "cut_link";
  Hashtbl.replace t.cuts (cut_key t ~src ~dst) infinity

let heal_link t ~src ~dst =
  check_rank t src "heal_link";
  check_rank t dst "heal_link";
  Hashtbl.remove t.cuts (cut_key t ~src ~dst)

let blackout t ~src ~dst ~duration =
  check_rank t src "blackout";
  check_rank t dst "blackout";
  if duration < 0.0 then invalid_arg "Net.blackout: negative duration";
  Hashtbl.replace t.cuts (cut_key t ~src ~dst) (Engine.now t.eng +. duration)

let link_cut t ~src ~dst =
  check_rank t src "link_cut";
  check_rank t dst "link_cut";
  match Hashtbl.find_opt t.cuts (cut_key t ~src ~dst) with
  | Some until -> Engine.now t.eng < until
  | None -> false

let partition t ranks =
  List.iter (fun r -> check_rank t r "partition") ranks;
  let inside = Array.make t.n false in
  List.iter (fun r -> inside.(r) <- true) ranks;
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if inside.(a) <> inside.(b) then begin
        cut_link t ~src:a ~dst:b;
        cut_link t ~src:b ~dst:a
      end
    done
  done

let heal_all_links t = Hashtbl.reset t.cuts

(* --- Delivery ----------------------------------------------------------- *)

let drop t ~wire ~fault =
  t.dropped <- t.dropped + 1;
  t.dropped_bytes <- t.dropped_bytes + wire;
  if fault then t.dead_letters <- t.dead_letters + 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
    Tracer.add_count tr ~cat:"net" ~name:"drop" 1;
    if fault then Tracer.add_count tr ~cat:"net" ~name:"dead_letter" 1

(* Runs at arrival time, when the message reaches the receiving host.
   Dead hosts drop without any CPU charge; live hosts serialize through
   the receive core and may still lose the message if they die before
   processing completes. *)
let deliver_via_cpu t dst ~wire ~size ~src ?link payload =
  let host = t.hosts.(dst) in
  if not host.alive then drop t ~wire ~fault:false
  else begin
    let cpu_start = Float.max (Engine.now t.eng) host.cpu_free_at in
    let work = t.cfg.host_cpu_per_msg +. (float_of_int size *. t.cfg.host_cpu_per_byte) in
    host.cpu_free_at <- cpu_start +. work;
    ignore
      (Engine.schedule_at t.eng ~time:(cpu_start +. work) (fun () ->
           if host.alive then begin
             t.messages <- t.messages + 1;
             t.total_bytes <- t.total_bytes + wire;
             (match link with
             | Some l ->
               l.bytes <- l.bytes + wire;
               l.msgs <- l.msgs + 1
             | None -> ());
             match host.handler with
             | Some f -> f ~src payload
             | None -> ()
           end
           else drop t ~wire ~fault:false)
        : Engine.handle)
  end

let send t ~src ~dst ~size m =
  check_rank t src "send";
  check_rank t dst "send";
  if size < 0 then invalid_arg "Net.send: negative size";
  if not t.hosts.(src).alive then drop t ~wire:size ~fault:false
  else if src = dst then begin
    (* Loop-back: no framing, no link, just the local delivery cost. *)
    let arrive = Engine.now t.eng +. t.cfg.local_delivery in
    ignore
      (Engine.schedule_at t.eng ~time:arrive (fun () ->
           deliver_via_cpu t dst ~wire:size ~size ~src m)
        : Engine.handle)
  end
  else begin
    let wire = size + t.cfg.per_msg_overhead in
    if link_cut t ~src ~dst then drop t ~wire ~fault:true
    else begin
      let lost = t.loss_prob > 0.0 && Rng.float t.rng 1.0 < t.loss_prob in
      let jit = if t.jitter > 0.0 then Rng.float t.rng t.jitter else 0.0 in
      let link = link_of t src dst in
      let now = Engine.now t.eng in
      let xfer = float_of_int wire /. t.cfg.bandwidth in
      let start = Float.max now link.free_at in
      (* Lost messages still occupy the pipe: the sender transmitted
         them, the fault eats them en route. *)
      link.free_at <- start +. xfer;
      let arrive = start +. xfer +. t.cfg.link_latency +. jit in
      (match t.metrics with
      | None -> ()
      | Some m ->
        (* Send-side per-link accounting: how long the message waited
           for the FIFO pipe, its full transit time, wire bytes pushed,
           and the backlog the pipe now holds. *)
        Metrics.observe m ~name:(t.label ^ ".queue_wait") ~rank:src (start -. now);
        Metrics.observe m ~name:(t.label ^ ".transit") ~rank:src (arrive -. now);
        Metrics.add m ~name:(t.label ^ ".link_bytes") ~rank:src wire;
        Metrics.set_gauge m ~name:(t.label ^ ".link_backlog") ~rank:src (link.free_at -. now));
      if lost then
        ignore
          (Engine.schedule_at t.eng ~time:arrive (fun () -> drop t ~wire ~fault:true)
            : Engine.handle)
      else
        ignore
          (Engine.schedule_at t.eng ~time:arrive (fun () ->
               deliver_via_cpu t dst ~wire ~size ~src ~link m)
            : Engine.handle)
    end
  end

let fail_node t r =
  check_rank t r "fail_node";
  t.hosts.(r).alive <- false

let revive_node t r =
  check_rank t r "revive_node";
  t.hosts.(r).alive <- true

let is_alive t r =
  check_rank t r "is_alive";
  t.hosts.(r).alive

type stats = {
  messages : int;
  bytes : int;
  dropped : int;
  dropped_bytes : int;
  dead_letters : int;
}

let stats (t : _ t) =
  {
    messages = t.messages;
    bytes = t.total_bytes;
    dropped = t.dropped;
    dropped_bytes = t.dropped_bytes;
    dead_letters = t.dead_letters;
  }

let link_bytes t ~src ~dst =
  match Hashtbl.find_opt t.links ((src * t.n) + dst) with
  | Some l -> l.bytes
  | None -> 0
