(** Point-to-point network model.

    Stands in for the paper's QDR InfiniBand fabric. Each directed link
    is a FIFO pipe charging [latency + bytes/bandwidth]; each receiving
    host charges per-message and per-byte CPU time on a serial core, so
    a node that must ingest the concatenation of a whole subtree's data
    (the KVS master during a fence) becomes the bottleneck exactly as in
    the paper's measurements.

    The fabric can also inject faults — probabilistic message loss,
    latency jitter, directed link cuts and timed blackouts — so the
    layers above (CMB RPC timeouts/retries, KVS failover) can be
    exercised under realistic failure semantics.

    ['msg] is the payload type carried; the model only inspects the
    declared [size]. *)

type config = {
  link_latency : float;  (** per-hop propagation + stack traversal, seconds *)
  bandwidth : float;  (** link bandwidth, bytes/second *)
  per_msg_overhead : int;  (** framing bytes added to every message *)
  host_cpu_per_msg : float;  (** receiver CPU seconds per message *)
  host_cpu_per_byte : float;  (** receiver CPU seconds per payload byte *)
  local_delivery : float;  (** cost of a loop-back (same-node) delivery *)
}

val default_config : config
(** Calibrated to a commodity Linux/IB cluster running a TCP overlay:
    20 us per hop, 3.2 GB/s links, 2 us + 0.35 ns/B of receive CPU. *)

type 'msg t

val create : Engine.t -> ?config:config -> ?fault_seed:int -> nodes:int -> unit -> 'msg t
(** [create eng ~nodes ()] builds a fabric connecting ranks
    [0 .. nodes-1]. [fault_seed] seeds the generator behind {!set_loss}
    and {!set_jitter}; with faults disabled (the default) no random
    draws occur and runs are bit-for-bit deterministic. Raises
    [Invalid_argument] if [nodes <= 0]. *)

val engine : 'msg t -> Engine.t
val nodes : 'msg t -> int
val config : 'msg t -> config

(** {1 Bounded links}

    By default every directed link is an unbounded FIFO pipe. Setting
    limits caps the number of in-flight messages and wire bytes per
    link; the policy decides what happens to a send that would exceed a
    cap. Opt-in: with limits unset the delivery schedule is bit-for-bit
    identical to the historical model. *)

type overflow = Mailbox.overflow =
  | Block
      (** Defer transmission until enough in-flight messages drain
          (sender-side backpressure: the message waits at the sender
          instead of on the wire). *)
  | Drop_newest  (** Shed the incoming message. *)
  | Drop_oldest
      (** Evict the oldest in-flight message (its pipe time is not
          reclaimed — the bytes were already transmitted). *)

type queue_limits = { max_msgs : int; max_bytes : int; policy : overflow }

val set_link_limits : 'msg t -> queue_limits option -> unit
(** Install (or clear) per-link occupancy caps. Applies to every
    non-loopback link of this fabric; loop-back delivery is host-local
    IPC and is never capped. Raises [Invalid_argument] when a bound
    is < 1. *)

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** [set_handler t rank f] installs the delivery callback for [rank],
    replacing any previous one. *)

(** {1 Observability}

    Both hooks default to [None]: unobserved fabrics pay one branch per
    send/drop and allocate nothing (pay-for-what-you-use). Neither hook
    affects delivery times — instrumentation must never perturb the
    simulation. *)

val set_tracer : 'msg t -> Flux_trace.Tracer.t option -> unit
(** Fold drops into the tracer's counter table: every drop bumps
    [net.drop]; fault-induced ones (loss, cuts, blackouts) also bump
    [net.dead_letter]. Counter-only — no events, so high drop rates
    cannot evict retained events. *)

val set_metrics : 'msg t -> ?label:string -> Flux_trace.Metrics.t option -> unit
(** Per-hop numeric aggregation, recorded at send time under the
    sending rank: [<label>.queue_wait] and [<label>.transit] histograms
    (seconds), a [<label>.link_bytes] counter (wire bytes), a
    [<label>.link_backlog] gauge (seconds of queued transmission), and
    queue-occupancy gauges [<label>.link_depth] (in-flight messages on
    the last-used link) / [<label>.link_depth_hwm] (high-water mark
    across the rank's links). Policy sheds bump a
    [<label>.overload_drop] counter and [Block] deferrals a
    [<label>.link_defer] counter. [label] defaults to ["net"]; sessions
    label their three planes ["net.rpc"] / ["net.event"] /
    ["net.ring"]. *)

val send : 'msg t -> src:int -> dst:int -> size:int -> 'msg -> unit
(** [send t ~src ~dst ~size m] queues [m] for delivery. Sends from a
    dead node, over a cut link, or to a node dead at arrival time are
    silently dropped (the transport reports nothing, as with a crashed
    peer). [size] is the payload size in bytes. *)

(** {1 Failure injection} *)

val fail_node : 'msg t -> int -> unit
(** [fail_node t r] kills rank [r]: all traffic from/to it is dropped
    until {!revive_node}. In-flight messages to [r] are lost. *)

val revive_node : 'msg t -> int -> unit

val is_alive : 'msg t -> int -> bool

val set_loss : 'msg t -> float -> unit
(** [set_loss t p] drops each subsequent non-loopback message with
    probability [p]. Lost messages still occupy link bandwidth (they
    were transmitted; the fault eats them en route) and are counted as
    dead letters at their would-be arrival time. Raises
    [Invalid_argument] unless [0 <= p <= 1]. *)

val set_jitter : 'msg t -> float -> unit
(** [set_jitter t j] adds a uniform extra delay in [[0, j)] seconds to
    every subsequent non-loopback delivery. *)

val cut_link : 'msg t -> src:int -> dst:int -> unit
(** [cut_link t ~src ~dst] severs the directed link: subsequent sends
    over it become dead letters until {!heal_link}. *)

val heal_link : 'msg t -> src:int -> dst:int -> unit

val blackout : 'msg t -> src:int -> dst:int -> duration:float -> unit
(** [blackout t ~src ~dst ~duration] cuts the directed link for
    [duration] seconds of virtual time, then it heals by itself. *)

val link_cut : 'msg t -> src:int -> dst:int -> bool
(** Whether the directed link is currently cut or blacked out. *)

val partition : 'msg t -> int list -> unit
(** [partition t ranks] cuts every link (both directions) between
    [ranks] and the rest of the fabric. Heal with {!heal_link} or
    {!heal_all_links}. *)

val heal_all_links : 'msg t -> unit
(** Removes every cut and blackout. *)

(** {1 Accounting} *)

type stats = {
  messages : int;  (** total messages delivered *)
  bytes : int;  (** wire bytes (payload + framing) delivered *)
  dropped : int;  (** messages lost for any reason *)
  dropped_bytes : int;  (** wire bytes of dropped messages *)
  dead_letters : int;  (** subset of [dropped] due to injected faults
                           (loss, cut links, blackouts) rather than dead
                           hosts *)
  overload_drops : int;  (** subset of [dropped] shed by queue-limit
                             policy (full link under [Drop_newest] /
                             [Drop_oldest]) *)
  overload_defers : int;  (** sends postponed by the [Block] policy *)
}

val stats : 'msg t -> stats

val link_bytes : 'msg t -> src:int -> dst:int -> int
(** Wire bytes delivered so far over one directed link. *)

val link_depth : 'msg t -> src:int -> dst:int -> int
(** Messages currently in flight on one directed link. *)

val link_depth_hwm : 'msg t -> src:int -> dst:int -> int
(** High-water mark of {!link_depth} over the link's lifetime. *)

val max_link_depth_hwm : 'msg t -> int
(** Highest {!link_depth_hwm} across all links of the fabric — the
    bound the overload harness asserts against configured caps. *)
