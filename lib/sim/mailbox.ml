module Metrics = Flux_trace.Metrics

type overflow = Block | Drop_newest | Drop_oldest

type 'a t = {
  msgs : 'a Queue.t;
  waiters : 'a Ivar.t Queue.t;
  (* Bounds; [max_int] everywhere means the historical unbounded FIFO. *)
  capacity : int;
  max_bytes : int;
  policy : overflow;
  size_of : ('a -> int) option;
  (* [Block]-policy senders parked until space frees. [None] wakers come
     from plain [send] calls outside a process body: the value is held
     back (bounding the mailbox) but nothing can be suspended. *)
  senders : ('a * unit Ivar.t option) Queue.t;
  mutable eng : Engine.t option;
  mutable bytes : int;
  mutable hwm : int;
  mutable hwm_bytes : int;
  mutable dropped : int;
  mutable metrics : (Metrics.t * string * int) option;
}

let create ?(capacity = max_int) ?(max_bytes = max_int) ?(policy = Block) ?size_of () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
  if max_bytes < 1 then invalid_arg "Mailbox.create: max_bytes < 1";
  {
    msgs = Queue.create ();
    waiters = Queue.create ();
    capacity;
    max_bytes;
    policy;
    size_of;
    senders = Queue.create ();
    eng = None;
    bytes = 0;
    hwm = 0;
    hwm_bytes = 0;
    dropped = 0;
    metrics = None;
  }

let set_metrics mb ?(label = "mailbox") ~rank m = mb.metrics <- Some (m, label, rank)

let size_of mb v = match mb.size_of with None -> 0 | Some f -> f v

let note_depth mb =
  let n = Queue.length mb.msgs in
  if n > mb.hwm then mb.hwm <- n;
  if mb.bytes > mb.hwm_bytes then mb.hwm_bytes <- mb.bytes;
  match mb.metrics with
  | None -> ()
  | Some (m, label, rank) ->
    Metrics.set_gauge m ~name:(label ^ ".depth") ~rank (float_of_int n);
    Metrics.set_gauge m ~name:(label ^ ".depth_hwm") ~rank (float_of_int mb.hwm)

let note_drop mb =
  mb.dropped <- mb.dropped + 1;
  match mb.metrics with
  | None -> ()
  | Some (m, label, rank) -> Metrics.incr m ~name:(label ^ ".dropped") ~rank

let fits mb extra = Queue.length mb.msgs < mb.capacity && mb.bytes + extra <= mb.max_bytes

let enqueue mb v =
  Queue.add v mb.msgs;
  mb.bytes <- mb.bytes + size_of mb v;
  note_depth mb

let dequeue mb =
  match Queue.take_opt mb.msgs with
  | None -> None
  | Some v ->
    mb.bytes <- mb.bytes - size_of mb v;
    Some v

(* After a receive frees space, admit parked senders in arrival order,
   stopping at the first whose value no longer fits (FIFO fairness over
   throughput). *)
let drain_senders mb =
  let rec go () =
    match Queue.peek_opt mb.senders with
    | Some (v, waker) when fits mb (size_of mb v) ->
      ignore (Queue.take mb.senders : 'a * unit Ivar.t option);
      enqueue mb v;
      (match (waker, mb.eng) with
      | Some iv, Some eng -> Ivar.fill eng iv ()
      | _ -> ());
      go ()
    | _ -> ()
  in
  go ()

let send eng mb v =
  mb.eng <- Some eng;
  match Queue.take_opt mb.waiters with
  | Some iv -> Ivar.fill eng iv v
  | None ->
    if fits mb (size_of mb v) then enqueue mb v
    else begin
      match mb.policy with
      | Drop_newest -> note_drop mb
      | Drop_oldest ->
        let sz = size_of mb v in
        while (not (fits mb sz)) && not (Queue.is_empty mb.msgs) do
          ignore (dequeue mb : 'a option);
          note_drop mb
        done;
        if fits mb sz then enqueue mb v else note_drop mb
      | Block -> Queue.add (v, None) mb.senders
    end

let send_wait eng mb v =
  mb.eng <- Some eng;
  match Queue.take_opt mb.waiters with
  | Some iv -> Ivar.fill eng iv v
  | None ->
    if fits mb (size_of mb v) && Queue.is_empty mb.senders then enqueue mb v
    else begin
      match mb.policy with
      | Block ->
        let iv = Ivar.create () in
        Queue.add (v, Some iv) mb.senders;
        Proc.await iv
      | Drop_newest | Drop_oldest -> send eng mb v
    end

let recv mb =
  match dequeue mb with
  | Some v ->
    drain_senders mb;
    v
  | None ->
    let iv = Ivar.create () in
    Queue.add iv mb.waiters;
    Proc.await iv

let try_recv mb =
  match dequeue mb with
  | Some v ->
    drain_senders mb;
    Some v
  | None -> None

let length mb = Queue.length mb.msgs
let bytes mb = mb.bytes
let blocked_senders mb = Queue.length mb.senders
let hwm mb = mb.hwm
let hwm_bytes mb = mb.hwm_bytes
let dropped mb = mb.dropped
