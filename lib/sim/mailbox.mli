(** FIFO channels between simulated processes — unbounded by default,
    with opt-in capacity limits and a pluggable full-queue policy for
    modeling overload at ingress points. *)

type overflow =
  | Block  (** Park the sender until space frees (backpressure). *)
  | Drop_newest  (** Reject the incoming message. *)
  | Drop_oldest  (** Evict from the head to make room (ring-buffer style). *)

type 'a t

val create :
  ?capacity:int -> ?max_bytes:int -> ?policy:overflow -> ?size_of:('a -> int) -> unit -> 'a t
(** [create ()] is the historical unbounded FIFO. [capacity] bounds the
    queued message count, [max_bytes] the queued byte total as measured
    by [size_of] (messages weigh 0 bytes when [size_of] is omitted, so
    only [capacity] applies); [policy] (default [Block]) decides what
    happens to a send that would exceed either bound. Raises
    [Invalid_argument] when a bound is < 1. *)

val send : Engine.t -> 'a t -> 'a -> unit
(** [send eng mb v] enqueues [v]; if a process is blocked in {!recv} it
    is resumed with [v] at the current instant. Callable from anywhere
    (process or plain event callback). When the mailbox is full: under
    [Drop_newest] the message is counted dropped and discarded, under
    [Drop_oldest] queued messages are evicted from the head to make
    room, and under [Block] the value is parked in send order and
    admitted as receives free space (the caller is never suspended —
    use {!send_wait} from a process for true backpressure). *)

val send_wait : Engine.t -> 'a t -> 'a -> unit
(** Like {!send} but under the [Block] policy a full mailbox suspends
    the calling process until its value has been admitted. Only valid
    inside a {!Proc} body; under drop policies it behaves as {!send}. *)

val recv : 'a t -> 'a
(** Blocking receive; only valid inside a {!Proc} body. Multiple blocked
    receivers are served in FIFO order. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val length : 'a t -> int
(** Messages currently queued (not counting blocked receivers). *)

val bytes : 'a t -> int
(** Queued bytes per [size_of] (0 when no sizer was given). *)

val blocked_senders : 'a t -> int
(** Values parked by the [Block] policy, waiting for space. *)

val hwm : 'a t -> int
(** High-water mark of {!length} over the mailbox's lifetime. *)

val hwm_bytes : 'a t -> int
(** High-water mark of {!bytes}. *)

val dropped : 'a t -> int
(** Messages discarded by [Drop_newest]/[Drop_oldest] overflow. *)

val set_metrics : 'a t -> ?label:string -> rank:int -> Flux_trace.Metrics.t -> unit
(** Publish occupancy as gauges [<label>.depth] / [<label>.depth_hwm]
    and overflow as counter [<label>.dropped] under [rank] (label
    defaults to ["mailbox"]). *)
