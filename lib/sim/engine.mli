(** Deterministic discrete-event simulation engine.

    A single engine owns virtual time and a priority queue of pending
    events. Events scheduled for the same instant fire in scheduling
    order, so simulations are bit-for-bit reproducible. The engine is
    the substrate standing in for the paper's physical clusters. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

val create : unit -> t
(** A fresh engine with the clock at 0. *)

val now : t -> float
(** Current virtual time in seconds. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    drained or compacted away). *)

val cancelled_pending : t -> int
(** Cancelled entries still physically in the queue. The engine compacts
    the queue — dropping them in one O(n) pass — whenever they outnumber
    the live entries, so this is bounded by [pending t / 2] plus a small
    floor. *)

val compactions : t -> int
(** Number of compaction passes run since creation. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] fires [f] at [now t +. delay]. Negative delays
    raise [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] at absolute [time]; raises
    [Invalid_argument] if [time] is in the past. *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val every : t -> period:float -> (unit -> unit) -> handle
(** [every t ~period f] fires [f] every [period] seconds starting at
    [now + period] until cancelled. *)

val run : ?until:float -> t -> unit
(** [run t] executes events until the queue drains (or virtual time
    exceeds [until], leaving later events queued). Re-raises the first
    exception escaping an event callback. *)

val step : t -> bool
(** [step t] executes the single next event; [false] when none remain. *)

val events_executed : t -> int
(** Total callbacks fired since creation (a determinism fingerprint). *)
