module Heap = Flux_util.Heap

(* A handle knows how many copies of itself sit in the queue so that
   [cancel] can account for them without touching the heap. [every]
   reuses one handle across every tick it schedules. *)
type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable executed : int;
  mutable cancelled_pending : int;
  mutable compactions : int;
}

and handle = { mutable cancelled : bool; mutable in_heap : int; eng : t }

and event = { h : handle; fn : unit -> unit }

(* Below this size the lazy drain in [step] is already cheap; compacting
   would just churn the array. *)
let compact_floor = 64

let create () =
  (* The queue must exist before any handle can point back at the
     engine, so the record is built first and handles close over it. *)
  { queue = Heap.create (); clock = 0.0; executed = 0; cancelled_pending = 0; compactions = 0 }

let now t = t.clock

let pending t = Heap.length t.queue

let cancelled_pending t = t.cancelled_pending

let compactions t = t.compactions

(* Cancelled entries never advance the clock or the executed count (see
   [step]), so dropping them early is unobservable through the public
   API. Compact when they outnumber the live entries. *)
let maybe_compact t =
  let len = Heap.length t.queue in
  if len >= compact_floor && t.cancelled_pending > len - t.cancelled_pending then begin
    Heap.filter t.queue (fun ev ->
        if ev.h.cancelled then begin
          ev.h.in_heap <- ev.h.in_heap - 1;
          false
        end
        else true);
    t.cancelled_pending <- 0;
    t.compactions <- t.compactions + 1
  end

let push_event t ~time h fn =
  Heap.push t.queue time { h; fn };
  h.in_heap <- h.in_heap + 1

let schedule_at t ~time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  let h = { cancelled = false; in_heap = 0; eng = t } in
  push_event t ~time h fn;
  h

let schedule t ~delay fn =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) fn

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    let t = h.eng in
    t.cancelled_pending <- t.cancelled_pending + h.in_heap;
    maybe_compact t
  end

let every t ~period fn =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  (* A persistent handle: cancelling it stops the chain of reschedules.
     Each queued tick still rides its own fresh handle, so a tick already
     in flight when the chain is cancelled fires as a no-op — the clock
     and event count advance exactly as they always did. [tick] is the
     only closure this loop ever allocates; reschedules push it as-is. *)
  let h = { cancelled = false; in_heap = 0; eng = t } in
  let rec tick () =
    if not h.cancelled then begin
      fn ();
      if not h.cancelled then ignore (schedule t ~delay:period tick : handle)
    end
  in
  ignore (schedule t ~delay:period tick : handle);
  h

(* Cancelled events are drained without advancing the clock: a timer
   that was disarmed (e.g. an RPC deadline whose response arrived) must
   not distort the simulation's end time. *)
let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    ev.h.in_heap <- ev.h.in_heap - 1;
    if ev.h.cancelled then begin
      t.cancelled_pending <- t.cancelled_pending - 1;
      step t
    end
    else begin
      t.clock <- time;
      t.executed <- t.executed + 1;
      ev.fn ();
      true
    end

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (_, ev) when ev.h.cancelled ->
      ignore (Heap.pop t.queue : _ option);
      ev.h.in_heap <- ev.h.in_heap - 1;
      t.cancelled_pending <- t.cancelled_pending - 1
    | Some (time, _) -> (
      match until with
      | Some limit when time > limit ->
        t.clock <- limit;
        continue := false
      | _ -> ignore (step t : bool))
  done

let events_executed t = t.executed
