type digest = string

(* FIPS 180-1 compression implemented on native ints (32-bit words kept
   masked to [mask32]); avoids Int32 boxing, which matters because the
   KVS content-addresses every value it stores. *)

let mask32 = 0xFFFFFFFF

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

type state = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  w : int array; (* 80-word schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    w = Array.make 80 0;
  }

let process_block st block off =
  let w = st.w in
  for i = 0 to 15 do
    let base = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.unsafe_get block base) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (base + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (base + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (base + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl32 (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref st.h0 and b = ref st.h1 and c = ref st.h2 and d = ref st.h3 and e = ref st.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then ((!b land !c) lor (lnot !b land !d) land mask32, 0x5A827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if i < 60 then ((!b land !c) lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let temp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(i)) land mask32 in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := temp
  done;
  st.h0 <- (st.h0 + !a) land mask32;
  st.h1 <- (st.h1 + !b) land mask32;
  st.h2 <- (st.h2 + !c) land mask32;
  st.h3 <- (st.h3 + !d) land mask32;
  st.h4 <- (st.h4 + !e) land mask32

let digest_bytes_raw s =
  let st = init () in
  let len = String.length s in
  let full_blocks = len / 64 in
  let block = Bytes.create 64 in
  for i = 0 to full_blocks - 1 do
    Bytes.blit_string s (64 * i) block 0 64;
    process_block st block 0
  done;
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let rem = len - (64 * full_blocks) in
  let bit_len = 8 * len in
  let tail = Bytes.make (if rem < 56 then 64 else 128) '\000' in
  Bytes.blit_string s (64 * full_blocks) tail 0 rem;
  Bytes.set tail rem '\x80';
  let tlen = Bytes.length tail in
  for j = 0 to 7 do
    Bytes.set tail (tlen - 1 - j) (Char.chr ((bit_len lsr (8 * j)) land 0xFF))
  done;
  process_block st tail 0;
  if tlen = 128 then process_block st tail 64;
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  in
  put 0 st.h0;
  put 1 st.h1;
  put 2 st.h2;
  put 3 st.h3;
  put 4 st.h4;
  Bytes.unsafe_to_string out

let digest_string s = Flux_util.Hexs.encode (digest_bytes_raw s)

(* The KVS tree shares unchanged interior nodes across commits (only the
   rebuilt directory spine is fresh), so re-hashing a node the store has
   already digested is pure waste: memoize per physical value, exactly
   like git reuses the object id of an unchanged subtree. Weak keys let
   entries die with their value; [(==)] resolves the (bounded-prefix)
   structural-hash collisions exactly. Scalars are cheap to hash and
   rarely shared, so only containers are memoized. *)
module Digest_memo = Ephemeron.K1.Make (struct
  type t = Flux_json.Json.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let digest_memo : string Digest_memo.t = Digest_memo.create 256

(* Matches the size-memo policy in [Json]: small values are cheaper to
   re-hash than to track in the weak table. *)
let memo_threshold = 1024

let digest_json v =
  match v with
  | Flux_json.Json.List _ | Flux_json.Json.Obj _ -> (
    match Digest_memo.find_opt digest_memo v with
    | Some d -> d
    | None ->
      let s = Flux_json.Json.to_string v in
      let d = digest_string s in
      if String.length s >= memo_threshold then begin
        (* Same bucket-hygiene policy as the Json size memo: weak entries
           are swept lazily, so keep the table small. *)
        if Digest_memo.length digest_memo > 512 then begin
          Digest_memo.clean digest_memo;
          if Digest_memo.length digest_memo > 512 then Digest_memo.reset digest_memo
        end;
        Digest_memo.replace digest_memo v d
      end;
      d)
  | _ -> digest_string (Flux_json.Json.to_string v)

let of_hex s =
  if String.length s <> 40 || not (Flux_util.Hexs.is_hex s) then
    invalid_arg "Sha1.of_hex: expected 40 hex characters";
  String.lowercase_ascii s

let to_hex d = d
let equal = String.equal
let compare = String.compare
let pp ppf d = Format.pp_print_string ppf d
let short d = String.sub d 0 8
