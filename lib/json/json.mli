(** Minimal JSON values for CMB message payloads and KVS objects.

    The paper's prototype stores JSON objects in the KVS and frames every
    CMB message with a JSON payload. This module provides the value type,
    a compact printer, a strict parser, and a structural size model used
    by the network simulator to charge wire time. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Object fields are ordered; duplicate keys are not rejected but
          accessors return the first binding. *)

val equal : t -> t -> bool
(** Structural equality. [Int 1] and [Float 1.0] are distinct. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

(** {1 Constructors} *)

val null : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val list : t list -> t
val obj : (string * t) list -> t
val strings : string list -> t

(** {1 Accessors}

    Accessors raise [Type_error] with a descriptive message when the
    value has the wrong shape. *)

exception Type_error of string

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
(** [to_float] accepts both [Float] and [Int]. *)

val to_string_v : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list

val member : string -> t -> t
(** [member k v] is the field [k] of object [v]; raises [Type_error] when
    absent or [v] is not an object. *)

val member_opt : string -> t -> t option

val mem : string -> t -> bool

val set_member : string -> t -> t -> t
(** [set_member k x v] returns [v] with field [k] replaced or appended. *)

val remove_member : string -> t -> t

(** {1 Printing and parsing} *)

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, for use with [Fmt]. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parser for the output of {!to_string} (standard JSON). Raises
    [Parse_error] on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

(** {1 Size model} *)

val serialized_size : t -> int
(** [serialized_size v] is [String.length (to_string v)], computed
    without building the string. The simulator charges this many bytes
    of wire time for a payload. Container sizes are memoized per
    physical value (values are immutable and payloads are structurally
    shared across message hops), so repeated queries on a shared node
    are O(1). *)

(** {1 Miscellany} *)

val pad : int -> t
(** [pad n] is an opaque string value whose serialized size is exactly
    [n] bytes (n >= 2); used by workload generators to emulate values of
    a prescribed size. Raises [Invalid_argument] if [n < 2]. *)

val pad_unique : int -> int -> t
(** [pad_unique n salt] is like [pad n] but distinct for distinct
    [salt] values (used for the KAP unique-value mode). Requires
    [n >= 12]. *)
