type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let null = Null
let bool b = Bool b
let int i = Int i
let float f = Float f
let string s = String s
let list l = List l
let obj fields = Obj fields
let strings l = List (List.map string l)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | List _ -> 5
  | Obj _ -> 6

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | String x, String y -> String.compare x y
  | List x, List y -> List.compare compare x y
  | Obj x, Obj y ->
    List.compare
      (fun (k1, v1) (k2, v2) ->
        let c = String.compare k1 k2 in
        if c <> 0 then c else compare v1 v2)
      x y
  | _, _ -> Stdlib.compare (tag a) (tag b)

exception Type_error of string

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (type_name v)))

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int i -> i | v -> type_error "int" v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "float" v

let to_string_v = function String s -> s | v -> type_error "string" v
let to_list = function List l -> l | v -> type_error "list" v
let to_obj = function Obj fields -> fields | v -> type_error "object" v

let member_opt k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let member k v =
  match v with
  | Obj fields -> (
    match List.assoc_opt k fields with
    | Some x -> x
    | None -> raise (Type_error (Printf.sprintf "missing field %S" k)))
  | _ -> type_error "object" v

let mem k v = match member_opt k v with Some _ -> true | None -> false

let set_member k x v =
  let fields = to_obj v in
  if List.mem_assoc k fields then
    Obj (List.map (fun (k', v') -> if String.equal k k' then (k', x) else (k', v')) fields)
  else Obj (fields @ [ (k, x) ])

let remove_member k v =
  Obj (List.filter (fun (k', _) -> not (String.equal k k')) (to_obj v))

(* Printing ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* Size model --------------------------------------------------------- *)

let escaped_length s =
  let n = ref 2 in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' | '\n' | '\r' | '\t' | '\b' | '\012' -> n := !n + 2
      | c when Char.code c < 0x20 -> n := !n + 6
      | _ -> incr n)
    s;
  !n

(* Values are immutable and containers are structurally shared (a message
   payload keeps the same [Obj] across every tree hop; a rebuilt KVS
   directory shares all untouched children), so the size of a container is
   memoized by physical identity. Keys are held weakly: entries die with
   the value they describe. [Hashtbl.hash] only inspects a bounded prefix
   of the structure, and [(==)] resolves collisions exactly. *)
module Size_memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let size_memo : int Size_memo.t = Size_memo.create 1024

(* Small containers are cheaper to re-walk than to track: keeping every
   two-field RPC payload in the weak table just fills it with entries
   that die by the next GC, and the dead slots slow later lookups. Only
   payloads big enough for the walk itself to hurt are remembered. *)
let memo_threshold = 1024

let rec serialized_size v =
  match v with
  | Null -> 4
  | Bool true -> 4
  | Bool false -> 5
  | Int i -> String.length (string_of_int i)
  | Float f -> String.length (float_repr f)
  | String s -> escaped_length s
  | List _ | Obj _ -> (
    match Size_memo.find_opt size_memo v with
    | Some n -> n
    | None ->
      let n = container_size v in
      if n >= memo_threshold then begin
        (* Structurally similar containers (successive versions of one
           growing directory) share a bucket, and weak entries are only
           swept lazily — keep the table small so lookups stay O(1). *)
        if Size_memo.length size_memo > 512 then begin
          Size_memo.clean size_memo;
          if Size_memo.length size_memo > 512 then Size_memo.reset size_memo
        end;
        Size_memo.replace size_memo v n
      end;
      n)

and container_size = function
  | Null | Bool _ | Int _ | Float _ | String _ -> assert false
  | List l ->
    let inner = List.fold_left (fun acc v -> acc + serialized_size v) 0 l in
    let commas = Stdlib.max 0 (List.length l - 1) in
    2 + inner + commas
  | Obj fields ->
    let inner =
      List.fold_left
        (fun acc (k, v) -> acc + escaped_length k + 1 + serialized_size v)
        0 fields
    in
    let commas = Stdlib.max 0 (List.length fields - 1) in
    2 + inner + commas

(* Parsing ------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { input : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek_char st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek_char st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek_char st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %c, got %c" c c')
  | None -> fail st (Printf.sprintf "expected %c, got end of input" c)

let expect_keyword st kw value =
  let n = String.length kw in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = kw
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" kw)

let parse_hex4 st =
  if st.pos + 4 > String.length st.input then fail st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = st.input.[st.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek_char st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        let code = parse_hex4 st in
        (* Encode as UTF-8; we only fully round-trip codes < 0x80 (the
           printer only emits \u for control characters). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | Some c -> fail st (Printf.sprintf "bad escape \\%c" c)
      | None -> fail st "truncated escape");
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek_char st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st
    | _ -> continue := false
  done;
  let text = String.sub st.input start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek_char st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> expect_keyword st "null" Null
  | Some 't' -> expect_keyword st "true" (Bool true)
  | Some 'f' -> expect_keyword st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' -> parse_list st
  | Some '{' -> parse_obj st
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

and parse_list st =
  expect st '[';
  skip_ws st;
  match peek_char st with
  | Some ']' ->
    advance st;
    List []
  | _ ->
    let rec go acc =
      let v = parse_value st in
      skip_ws st;
      match peek_char st with
      | Some ',' ->
        advance st;
        go (v :: acc)
      | Some ']' ->
        advance st;
        List (List.rev (v :: acc))
      | _ -> fail st "expected , or ] in array"
    in
    go []

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek_char st with
  | Some '}' ->
    advance st;
    Obj []
  | _ ->
    let rec go acc =
      skip_ws st;
      let k = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek_char st with
      | Some ',' ->
        advance st;
        go ((k, v) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((k, v) :: acc))
      | _ -> fail st "expected , or } in object"
    in
    go []

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* Padding values ------------------------------------------------------ *)

let pad n =
  if n < 2 then invalid_arg "Json.pad: need at least 2 bytes";
  String (String.make (n - 2) 'x')

let pad_unique n salt =
  if n < 12 then invalid_arg "Json.pad_unique: need at least 12 bytes";
  let tag = Printf.sprintf "%010d" (salt mod 10_000_000_000) in
  String (tag ^ String.make (n - 2 - String.length tag) 'x')
