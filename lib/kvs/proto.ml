module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1

type tuple = { key : string; sha : Sha1.digest }

type obj = { osha : Sha1.digest; value : Json.t }

type flush = {
  fence : (string * int) option;
  count : int;
  fid : int; (* per-sender flush id for duplicate suppression; -1 = none *)
  tuples : tuple list;
  objects : obj list;
}

let tuple_to_json t =
  Json.obj [ ("k", Json.string t.key); ("s", Json.string (Sha1.to_hex t.sha)) ]

let tuple_of_json j =
  {
    key = Json.to_string_v (Json.member "k" j);
    sha = Sha1.of_hex (Json.to_string_v (Json.member "s" j));
  }

let obj_to_json o =
  Json.obj [ ("s", Json.string (Sha1.to_hex o.osha)); ("v", o.value) ]

let obj_of_json j =
  {
    osha = Sha1.of_hex (Json.to_string_v (Json.member "s" j));
    value = Json.member "v" j;
  }

let flush_to_json f =
  Json.obj
    (( "fence",
       match f.fence with
       | Some (name, nprocs) ->
         Json.obj [ ("name", Json.string name); ("nprocs", Json.int nprocs) ]
       | None -> Json.null )
    :: ("count", Json.int f.count)
    :: (if f.fid >= 0 then [ ("fid", Json.int f.fid) ] else [])
    @ [
        ("tuples", Json.list (List.map tuple_to_json f.tuples));
        ("objects", Json.list (List.map obj_to_json f.objects));
      ])

let flush_of_json j =
  {
    fence =
      (match Json.member "fence" j with
      | Json.Null -> None
      | fj ->
        Some
          ( Json.to_string_v (Json.member "name" fj),
            Json.to_int (Json.member "nprocs" fj) ));
    count = Json.to_int (Json.member "count" j);
    fid = (match Json.member_opt "fid" j with Some f -> Json.to_int f | None -> -1);
    tuples = List.map tuple_of_json (Json.to_list (Json.member "tuples" j));
    objects = List.map obj_of_json (Json.to_list (Json.member "objects" j));
  }

let tuples_to_json tuples = Json.list (List.map tuple_to_json tuples)
let tuples_of_json j = List.map tuple_of_json (Json.to_list j)

let put_reply sha = Json.obj [ ("s", Json.string (Sha1.to_hex sha)) ]
let put_reply_sha j = Sha1.of_hex (Json.to_string_v (Json.member "s" j))

type root_info = {
  ri_epoch : int;
  ri_master : int;
  ri_version : int;
  ri_root : Sha1.digest;
}

let root_info_fields ri =
  [
    ("version", Json.int ri.ri_version);
    ("rootref", Json.string (Sha1.to_hex ri.ri_root));
    ("epoch", Json.int ri.ri_epoch);
    ("master", Json.int ri.ri_master);
  ]

let root_info_to_json ri = Json.obj (root_info_fields ri)

let root_info_of_json j =
  {
    ri_version = Json.to_int (Json.member "version" j);
    ri_root = Sha1.of_hex (Json.to_string_v (Json.member "rootref" j));
    (* Pre-failover peers omit epoch/master: default to the first epoch
       with the conventional rank-0 master. *)
    ri_epoch = (match Json.member_opt "epoch" j with Some e -> Json.to_int e | None -> 0);
    ri_master = (match Json.member_opt "master" j with Some m -> Json.to_int m | None -> 0);
  }

let setroot_to_json ri ~objects =
  Json.obj
    (root_info_fields ri
    @
    if objects = [] then []
    else [ ("objects", Json.list (List.map obj_to_json objects)) ])

let setroot_of_json j =
  ( root_info_of_json j,
    match Json.member_opt "objects" j with
    | Some oj -> List.map obj_of_json (Json.to_list oj)
    | None -> [] )

(* --- Cross-shard fence (two-phase epoch-merge) ----------------------- *)

(* Phase 1: a shard master froze its proposed root for a named
   cross-shard fence and announces it to the coordinator plane. *)
type prepare = { px_name : string; px_vol : int; px_ri : root_info }

let prepare_to_json p =
  Json.obj
    (("name", Json.string p.px_name) :: ("vol", Json.int p.px_vol)
    :: root_info_fields p.px_ri)

let prepare_of_json j =
  {
    px_name = Json.to_string_v (Json.member "name" j);
    px_vol = Json.to_int (Json.member "vol" j);
    px_ri = root_info_of_json j;
  }

(* Phase 2's merged record: the N shard roots published under one
   cross-shard fence epoch — the atomic cut observers reason about. *)
type composite = { cx_name : string; cx_epoch : int; cx_roots : root_info array }

let composite_to_json c =
  Json.obj
    [
      ("name", Json.string c.cx_name);
      ("xepoch", Json.int c.cx_epoch);
      ( "roots",
        Json.list (Array.to_list (Array.map root_info_to_json c.cx_roots)) );
    ]

let composite_of_json j =
  {
    cx_name = Json.to_string_v (Json.member "name" j);
    cx_epoch = Json.to_int (Json.member "xepoch" j);
    cx_roots =
      Array.of_list (List.map root_info_of_json (Json.to_list (Json.member "roots" j)));
  }

let load_request sha = Json.obj [ ("s", Json.string (Sha1.to_hex sha)) ]
let load_request_sha j = Sha1.of_hex (Json.to_string_v (Json.member "s" j))
let load_reply v = Json.obj [ ("v", v) ]
let load_reply_value j = Json.member "v" j

let commit_reply = root_info_to_json
let commit_reply_decode = root_info_of_json
