module Json = Flux_json.Json
module Api = Flux_cmb.Api
module Proc = Flux_sim.Proc
module Ivar = Flux_sim.Ivar
module Engine = Flux_sim.Engine

type watch_state = {
  w_key : string;
  mutable w_last : Json.t option;
  mutable w_active : bool;
  w_cb : Json.t option -> unit;
}

type t = {
  api : Api.t;
  mutable pending : Proto.tuple list; (* this handle's transaction, reversed *)
  mutable watches : watch_state list;
  mutable watch_subscribed : bool;
}

let connect sess ~rank =
  { api = Api.connect sess ~rank; pending = []; watches = []; watch_subscribed = false }

let rank t = Api.rank t.api

let unit_reply = function Ok _ -> Ok () | Error e -> Error e

let put t ~key v =
  match Api.rpc t.api ~topic:"kvs.put" (Json.obj [ ("key", Json.string key); ("v", v) ]) with
  | Ok reply ->
    (* The broker returns the content address; the (key, sha) tuple
       stays in this handle's transaction until commit/fence. *)
    t.pending <- { Proto.key; sha = Proto.put_reply_sha reply } :: t.pending;
    Ok ()
  | Error e -> Error e

let get t ~key =
  (* Reads are side-effect free: retransmit on timeout so a parent dying
     mid-get resolves through the healed topology. *)
  match
    Api.rpc t.api ~idempotent:true ~topic:"kvs.get"
      (Json.obj [ ("key", Json.string key) ])
  with
  | Ok payload -> Ok (Proto.load_reply_value payload)
  | Error e -> Error e

let version_reply = function
  | Ok payload -> Ok (Json.to_int (Json.member "version" payload))
  | Error e -> Error e

let commit t =
  let tuples = List.rev t.pending in
  match
    version_reply
      (Api.rpc t.api ~topic:"kvs.commit"
         (Json.obj [ ("tuples", Proto.tuples_to_json tuples) ]))
  with
  | Ok v ->
    t.pending <- [];
    Ok v
  | Error e -> Error e

let abort t = t.pending <- []

let fence ?(timeout = infinity) t ~name ~nprocs =
  let tuples = List.rev t.pending in
  (* A fence blocks until all [nprocs] participants enter: no deadline by
     default. Fault-tolerant callers pass [timeout] so a fence whose
     aggregated contributions died with a master can be abandoned. *)
  match
    version_reply
      (Api.rpc t.api ~timeout ~topic:"kvs.fence"
         (Json.obj
            [
              ("name", Json.string name);
              ("nprocs", Json.int nprocs);
              ("tuples", Proto.tuples_to_json tuples);
            ]))
  with
  | Ok v ->
    t.pending <- [];
    Ok v
  | Error e ->
    (* This participant is abandoning the collective (typically its
       deadline fired), so the fence can never complete: clear the
       name's aggregation state up the tree — without the abort, this
       handle's contribution stays parked in the master's pending map
       and a retried fence under the same name collides with it.
       Asynchronous and best effort: if the fence in fact completed
       (only this reply was lost), the name is no longer registered
       anywhere and the abort is a no-op. *)
    Api.rpc_async t.api ~timeout:5.0 ~topic:"kvs.fenceabort"
      (Json.obj [ ("name", Json.string name) ])
      ~reply:(fun _ -> ());
    Error e

let get_version t =
  version_reply (Api.rpc t.api ~idempotent:true ~topic:"kvs.getversion" Json.null)

let get_root t =
  match Api.rpc t.api ~idempotent:true ~topic:"kvs.getroot" Json.null with
  | Ok payload -> Ok (Proto.commit_reply_decode payload)
  | Error e -> Error e

let wait_version t v =
  (* Blocks until the store reaches version [v]: no deadline. *)
  unit_reply
    (Api.rpc t.api ~timeout:infinity ~topic:"kvs.waitversion"
       (Json.obj [ ("version", Json.int v) ]))

(* Watches re-get the key on every root update; because of the hash-tree
   organization a watched directory changes whenever any key beneath it
   changes. *)
let refresh_watch t (w : watch_state) =
  Api.rpc_async t.api ~topic:"kvs.get"
    (Json.obj [ ("key", Json.string w.w_key) ])
    ~reply:(fun r ->
      if w.w_active then begin
        let current =
          match r with Ok payload -> Some (Proto.load_reply_value payload) | Error _ -> None
        in
        let changed =
          match (w.w_last, current) with
          | None, None -> false
          | Some a, Some b -> not (Json.equal a b)
          | None, Some _ | Some _, None -> true
        in
        if changed then begin
          w.w_last <- current;
          w.w_cb current
        end
      end)

let ensure_subscription t =
  if not t.watch_subscribed then begin
    t.watch_subscribed <- true;
    Api.subscribe t.api ~prefix:"kvs.setroot" (fun ~topic:_ _payload ->
        List.iter (fun w -> if w.w_active then refresh_watch t w) t.watches)
  end

let watch t ~key cb =
  ensure_subscription t;
  let initial =
    match get t ~key with Ok v -> Some v | Error _ -> None
  in
  let w = { w_key = key; w_last = initial; w_active = true; w_cb = cb } in
  t.watches <- w :: t.watches;
  cb initial;
  Ok ()

let unwatch t ~key =
  List.iter (fun w -> if String.equal w.w_key key then w.w_active <- false) t.watches;
  t.watches <- List.filter (fun w -> not (String.equal w.w_key key)) t.watches
