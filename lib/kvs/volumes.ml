module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Api = Flux_cmb.Api
module Treemath = Flux_util.Treemath
module Proc = Flux_sim.Proc
module Ivar = Flux_sim.Ivar

(* Per-rank coordination state of the cross-shard fence protocol.  The
   protocol is decentralized: phase-1 prepare announcements ride the
   sequenced event plane, so every live rank observes the same prepare
   order and computes the same composite — there is no coordinator rank
   to lose. *)
type xfence = {
  xf_roots : Proto.root_info option array; (* best prepare seen, per volume *)
  mutable xf_release : (unit -> unit) list; (* parked releases of local masters *)
  mutable xf_done : bool; (* every shard prepared; composite recorded *)
}

type coord = {
  co_fences : (string, xfence) Hashtbl.t; (* base fence name -> state *)
  mutable co_order : string list; (* completion order, newest first *)
  mutable co_epoch : int; (* cross-shard fence epoch: merges completed *)
  mutable co_last : Proto.composite option;
}

type t = {
  sess : Session.t;
  n_shards : int;
  masters : int array;
  instances : Kvs_module.t array array; (* [volume].[rank] *)
  coords : coord array; (* [rank] *)
  mutable next_cid : int; (* stamps client fan-out RPCs for dedup *)
}

let shards t = t.n_shards
let master_rank t i = t.masters.(i)
let instance t ~volume ~rank = t.instances.(volume).(rank)

let service_of i = Printf.sprintf "kvs-%d" i

(* The volume's aggregation tree is the session's k-ary tree relabeled
   so that the *current* master is rank 0 of the virtual numbering, and
   healed like the session tree: a dead interior rank's children attach
   to its nearest live virtual ancestor. Mastership moves the whole
   labeling (the routing closures receive the believed master), so a
   failed-over volume re-roots at its successor. *)
let volume_routing sess ~volume ~master:static_master rank =
  let n = Session.size sess in
  let k = Session.fanout sess in
  let virtual_of master r = ((r - master) mod n + n) mod n in
  let actual_of master v = (v + master) mod n in
  let live r = not (Session.is_down sess r) in
  let rec healed_parent master r =
    match Treemath.parent ~k (virtual_of master r) with
    | None -> None
    | Some pv ->
      let p = actual_of master pv in
      if live p then Some p else healed_parent master p
  in
  {
    Kvs_module.rt_service = service_of volume;
    rt_master = static_master;
    rt_parent =
      (fun ~master -> if rank = master then None else healed_parent master rank);
    rt_children =
      (fun ~master ->
        List.filter
          (fun c -> c <> rank && live c && healed_parent master c = Some rank)
          (List.init n Fun.id));
    rt_direct = true;
  }

(* --- Key routing ------------------------------------------------------------ *)

(* A key is legal when no path component is empty: an empty first
   component would hash every such key onto one fixed shard, and empty
   interior components are never resolvable in the hash tree anyway. *)
let check_key key =
  if String.length key = 0 then Error "volumes: empty key"
  else if List.exists (fun c -> String.length c = 0) (String.split_on_char '.' key)
  then Error (Printf.sprintf "volumes: key %S has an empty path component" key)
  else Ok ()

(* djb2 over the first path component: stable and spread. *)
let volume_for_key t key =
  match check_key key with
  | Error _ as e -> e
  | Ok () ->
    let first =
      match String.index_opt key '.' with
      | Some i -> String.sub key 0 i
      | None -> key
    in
    let h = ref 5381 in
    String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) first;
    Ok (!h mod t.n_shards)

let volume_of_key t key =
  match volume_for_key t key with Ok v -> v | Error e -> invalid_arg e

(* --- Cross-shard fence coordination ----------------------------------------- *)

let xprepare_topic = "kvsx.prepare"

let xname base vol = Printf.sprintf "%s-v%d" base vol

(* Parse "<base>-v<vol>" back; [None] when the name is not one of ours. *)
let parse_xname name =
  match String.rindex_opt name '-' with
  | None -> None
  | Some i ->
    let len = String.length name in
    if i + 2 < len && name.[i + 1] = 'v' then
      match int_of_string_opt (String.sub name (i + 2) (len - i - 2)) with
      | Some vol when vol >= 0 -> Some (String.sub name 0 i, vol)
      | _ -> None
    else None

let coord_fence c ~shards base =
  match Hashtbl.find_opt c.co_fences base with
  | Some xf -> xf
  | None ->
    let xf = { xf_roots = Array.make shards None; xf_release = []; xf_done = false } in
    Hashtbl.replace c.co_fences base xf;
    xf

(* A re-prepare from a successor master supersedes the dead master's
   proposal iff it is (epoch, version)-newer. *)
let supersedes (a : Proto.root_info) = function
  | None -> true
  | Some (b : Proto.root_info) ->
    a.Proto.ri_epoch > b.Proto.ri_epoch
    || (a.Proto.ri_epoch = b.Proto.ri_epoch && a.Proto.ri_version >= b.Proto.ri_version)

let coord_check c base xf =
  if Array.for_all Option.is_some xf.xf_roots then begin
    if not xf.xf_done then begin
      xf.xf_done <- true;
      c.co_epoch <- c.co_epoch + 1;
      c.co_last <-
        Some
          {
            Proto.cx_name = base;
            cx_epoch = c.co_epoch;
            cx_roots = Array.map Option.get xf.xf_roots;
          };
      c.co_order <- base :: c.co_order;
      (* Completed entries are kept for a while (a successor master
         re-preparing an old fence completes from this table), bounded
         so a long run cannot grow it without limit. *)
      if List.length c.co_order > 192 then begin
        match List.rev c.co_order with
        | oldest :: _ ->
          Hashtbl.remove c.co_fences oldest;
          c.co_order <- List.filter (fun x -> not (String.equal x oldest)) c.co_order
        | [] -> ()
      end
    end;
    let parked = xf.xf_release in
    xf.xf_release <- [];
    List.iter (fun release -> release ()) parked
  end

let coord_prepare t ~rank ~base ~vol ~ri ~release =
  let c = t.coords.(rank) in
  let xf = coord_fence c ~shards:t.n_shards base in
  if supersedes ri xf.xf_roots.(vol) then xf.xf_roots.(vol) <- Some ri;
  (match release with
  | Some r -> xf.xf_release <- r :: xf.xf_release
  | None -> ());
  coord_check c base xf

(* Install the phase-1 hook on every instance: when volume [vol]'s
   master (whichever rank that is by now) completes a named fence, it
   freezes its proposed root here and publishes the prepare; the parked
   release fires once this rank has seen all [n_shards] prepares. *)
let install_hooks t =
  Array.iteri
    (fun vol per_rank ->
      Array.iteri
        (fun rank inst ->
          Kvs_module.set_fence_hold inst
            (Some
               (fun ~name ~ri ~release ->
                 match parse_xname name with
                 | Some (base, v) when v = vol ->
                   coord_prepare t ~rank ~base ~vol ~ri ~release:(Some release);
                   Session.publish
                     (Session.broker t.sess rank)
                     ~topic:xprepare_topic
                     (Proto.prepare_to_json
                        { Proto.px_name = base; px_vol = vol; px_ri = ri })
                 | _ -> release ())))
        per_rank)
    t.instances

let subscribe_coords t =
  for r = 0 to Session.size t.sess - 1 do
    Session.subscribe (Session.broker t.sess r) ~prefix:xprepare_topic (fun ev ->
        let p = Proto.prepare_of_json ev.Message.payload in
        if p.Proto.px_vol >= 0 && p.Proto.px_vol < t.n_shards then
          coord_prepare t ~rank:r ~base:p.Proto.px_name ~vol:p.Proto.px_vol
            ~ri:p.Proto.px_ri ~release:None)
  done

let xfence_epoch t ~rank = t.coords.(rank).co_epoch
let last_composite t ~rank = t.coords.(rank).co_last

let load sess ?config ~shards () =
  let n = Session.size sess in
  if shards <= 0 || shards > n then
    invalid_arg "Volumes.load: shards must be in [1, session size]";
  let masters = Array.init shards (fun i -> i * n / shards) in
  let instances =
    Array.init shards (fun i ->
        Kvs_module.load_routed sess ?config
          ~routing:(fun rank -> volume_routing sess ~volume:i ~master:masters.(i) rank)
          ())
  in
  let coords =
    Array.init n (fun _ ->
        { co_fences = Hashtbl.create 16; co_order = []; co_epoch = 0; co_last = None })
  in
  let t = { sess; n_shards = shards; masters; instances; coords; next_cid = 0 } in
  (* The two-phase merge is pure overhead with one shard — and shards=1
     must preserve the single-volume phenomenology exactly — so the
     cross-shard machinery engages only when there is something to
     merge. *)
  if shards > 1 then begin
    install_hooks t;
    subscribe_coords t
  end;
  t

(* --- Snapshot / restore ----------------------------------------------------- *)

(* The instance currently holding a volume's authoritative store: a live
   rank believing itself master, preferring the highest epoch when a
   takeover has not fully settled. *)
let acting_master_instance t ~volume =
  let n = Session.size t.sess in
  let best = ref None in
  for r = 0 to n - 1 do
    let inst = t.instances.(volume).(r) in
    if (not (Session.is_down t.sess r)) && Kvs_module.is_master inst then
      match !best with
      | Some b when Kvs_module.epoch b >= Kvs_module.epoch inst -> ()
      | _ -> best := Some inst
  done;
  !best

(* One snapshot spanning every volume: each acting master's reachable
   object set, unioned (content addressing dedups shared objects), plus
   a composite record naming each volume's root — the same record shape
   the cross-shard fence publishes, so a restore re-establishes a
   consistent cut, not [n_shards] unrelated stores. *)
let snapshot t =
  let rec per_vol acc vol =
    if vol = t.n_shards then Ok (List.rev acc)
    else
      match acting_master_instance t ~volume:vol with
      | None ->
        Error (Printf.sprintf "%s: no live master to snapshot" (service_of vol))
      | Some inst -> (
        match Kvs_module.snapshot inst with
        | Ok s -> per_vol ((inst, s) :: acc) (vol + 1)
        | Error _ as e -> e)
  in
  match per_vol [] 0 with
  | Error e -> Error e
  | Ok per ->
    let seen = Hashtbl.create 256 in
    let objects =
      List.filter
        (fun (h, _) ->
          if Hashtbl.mem seen h then false
          else begin
            Hashtbl.replace seen h ();
            true
          end)
        (List.concat_map (fun (_, s) -> s.Snapshot.s_objects) per)
    in
    let roots =
      Array.of_list
        (List.map
           (fun (inst, (s : Snapshot.t)) ->
             {
               Proto.ri_epoch = s.Snapshot.s_epoch;
               ri_master = Kvs_module.master_rank inst;
               ri_version = s.Snapshot.s_version;
               ri_root = s.Snapshot.s_root;
             })
           per)
    in
    let cx_epoch =
      Array.fold_left (fun acc c -> max acc c.co_epoch) 0 t.coords
    in
    Ok
      {
        Snapshot.s_service = "kvsx";
        s_root = Tree.empty_dir_sha;
        s_version = Array.fold_left (fun a ri -> max a ri.Proto.ri_version) 0 roots;
        s_epoch = Array.fold_left (fun a ri -> max a ri.Proto.ri_epoch) 0 roots;
        s_composite = Some { Proto.cx_name = "snapshot"; cx_epoch; cx_roots = roots };
        s_objects = objects;
      }

(* Restore each volume's acting master from its composite member root.
   Every volume sees the unioned object set; content addressing makes
   the extra objects harmless and the per-volume root names what is
   reachable. *)
let restore t (snap : Snapshot.t) =
  match snap.Snapshot.s_composite with
  | None -> Error "volumes: snapshot carries no cross-shard composite record"
  | Some cx ->
    if Array.length cx.Proto.cx_roots <> t.n_shards then
      Error
        (Printf.sprintf "volumes: snapshot has %d volumes, store has %d"
           (Array.length cx.Proto.cx_roots) t.n_shards)
    else
      let rec go vol =
        if vol = t.n_shards then Ok ()
        else
          match acting_master_instance t ~volume:vol with
          | None ->
            Error (Printf.sprintf "%s: no live master to restore into" (service_of vol))
          | Some inst -> (
            let ri = cx.Proto.cx_roots.(vol) in
            let view =
              {
                snap with
                Snapshot.s_service = service_of vol;
                s_root = ri.Proto.ri_root;
                s_version = ri.Proto.ri_version;
                s_epoch = ri.Proto.ri_epoch;
                s_composite = None;
              }
            in
            match Kvs_module.restore inst view with
            | Ok () -> go (vol + 1)
            | Error _ as e -> e)
      in
      go 0

(* --- Client --------------------------------------------------------------- *)

type client = {
  vt : t;
  api : Api.t;
  pending : Proto.tuple list array; (* per volume, reversed *)
  mutable pending_dirty : bool array;
}

let client t ~rank =
  {
    vt = t;
    api = Api.connect t.sess ~rank;
    pending = Array.make t.n_shards [];
    pending_dirty = Array.make t.n_shards false;
  }

let put c ~key v =
  match volume_for_key c.vt key with
  | Error _ as e -> e
  | Ok vol -> (
    match
      Api.rpc c.api
        ~topic:(service_of vol ^ ".put")
        (Json.obj [ ("key", Json.string key); ("v", v) ])
    with
    | Ok reply ->
      c.pending.(vol) <- { Proto.key; sha = Proto.put_reply_sha reply } :: c.pending.(vol);
      c.pending_dirty.(vol) <- true;
      Ok ()
    | Error _ as e -> e)

let get c ~key =
  match volume_for_key c.vt key with
  | Error _ as e -> e
  | Ok vol -> (
    match
      Api.rpc c.api ~topic:(service_of vol ^ ".get")
        (Json.obj [ ("key", Json.string key) ])
    with
    | Ok payload -> Ok (Proto.load_reply_value payload)
    | Error _ as e -> e)

(* Issue one RPC per selected volume concurrently and await them all.
   The replies ride the same busy/backoff machinery as synchronous RPCs
   (an admission shed at one shard backs off and retries instead of
   aborting the whole cross-shard operation), and each RPC carries a
   fresh fid so a shard applies it exactly once even if a slow fence
   outlives one RPC deadline and the request is retransmitted. *)
let fan_out c ~select ~topic_of ~fields_of =
  let eng = Session.engine c.vt.sess in
  let calls =
    List.filter_map
      (fun vol ->
        if select vol then begin
          let fid = c.vt.next_cid in
          c.vt.next_cid <- c.vt.next_cid + 1;
          let iv = Ivar.create () in
          Api.rpc_async c.api ~timeout:30.0 ~attempts:8 ~idempotent:true
            ~topic:(topic_of vol)
            (Json.obj (("fid", Json.int fid) :: fields_of vol))
            ~reply:(fun r -> Ivar.fill eng iv r);
          Some (vol, iv)
        end
        else None)
      (List.init c.vt.n_shards Fun.id)
  in
  List.map (fun (vol, iv) -> (vol, Proc.await iv)) calls

(* Consume *every* per-volume result: volumes that succeeded clear their
   pending state even when another volume failed, so a caller's retry
   cannot re-send already-applied tuples (double version bump, duplicate
   fence contribution). Errors are aggregated, not first-wins. *)
let settle c results ~on_ok =
  let errs =
    List.fold_left
      (fun errs (vol, r) ->
        match r with
        | Ok payload ->
          c.pending.(vol) <- [];
          c.pending_dirty.(vol) <- false;
          on_ok vol payload;
          errs
        | Error e -> Printf.sprintf "%s: %s" (service_of vol) e :: errs)
      [] results
  in
  match errs with [] -> Ok () | _ -> Error (String.concat "; " (List.rev errs))

let commit c =
  let results =
    fan_out c
      ~select:(fun vol -> c.pending_dirty.(vol))
      ~topic_of:(fun vol -> service_of vol ^ ".commit")
      ~fields_of:(fun vol ->
        [ ("tuples", Proto.tuples_to_json (List.rev c.pending.(vol))) ])
  in
  let vmax = ref 0 in
  match
    settle c results ~on_ok:(fun _ payload ->
        vmax := max !vmax (Json.to_int (Json.member "version" payload)))
  with
  | Ok () -> Ok !vmax
  | Error _ as e -> e

let fence c ~name ~nprocs =
  let results =
    fan_out c
      ~select:(fun _ -> true)
      ~topic_of:(fun vol -> service_of vol ^ ".fence")
      ~fields_of:(fun vol ->
        [
          ("name", Json.string (xname name vol));
          ("nprocs", Json.int nprocs);
          ("tuples", Proto.tuples_to_json (List.rev c.pending.(vol)));
        ])
  in
  settle c results ~on_ok:(fun _ _ -> ())
