(* Durable serialized form of the content-addressed object store
   reachable from one root hash (plus, for a sharded namespace, the
   cross-shard composite record naming every volume's frozen root).

   The format is deliberately dumb and line-oriented — one header, one
   object per line, one trailing whole-store checksum — because the
   interesting property is not compactness but *checkability*: every
   object re-hashes to its recorded id on decode, the object count
   detects truncation, and the trailer checksum catches any single
   flipped byte the structural checks let through (say, inside the
   header's version field). Decode never raises; a damaged store comes
   back as a structured {!error}. *)

module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1
module Api = Flux_cmb.Api

type error =
  | Malformed of string  (** framing/JSON damage: the store cannot be parsed *)
  | Truncated of { expected : int; got : int }
      (** fewer objects (or no trailer) than the header promised *)
  | Corrupt_object of { recorded : string; actual : string }
      (** an object no longer re-hashes to its recorded id *)
  | Checksum_mismatch of { recorded : string; actual : string }
      (** the whole-store trailer checksum disagrees with the bytes *)
  | Missing_root of string
      (** the root (or a composite member root) is not among the objects *)

let error_to_string = function
  | Malformed m -> Printf.sprintf "snapshot malformed: %s" m
  | Truncated { expected; got } ->
    Printf.sprintf "snapshot truncated: header promises %d objects, found %d" expected got
  | Corrupt_object { recorded; actual } ->
    Printf.sprintf "snapshot object corrupt: recorded id %s, content hashes to %s" recorded
      actual
  | Checksum_mismatch { recorded; actual } ->
    Printf.sprintf "snapshot checksum mismatch: trailer %s, bytes hash to %s" recorded actual
  | Missing_root h -> Printf.sprintf "snapshot root %s not present in object set" h

type t = {
  s_service : string;
  s_root : Sha1.digest;
  s_version : int;
  s_epoch : int;
  s_composite : Proto.composite option;
      (** sharded stores: the per-volume roots of the atomic cut *)
  s_objects : (string * Json.t) list;  (** (sha-hex, value), walk order, deduplicated *)
}

let objects_bytes t =
  List.fold_left (fun acc (_, v) -> acc + Json.serialized_size v) 0 t.s_objects

(* --- Integrity ----------------------------------------------------------- *)

let roots_of t =
  let base = [ Sha1.to_hex t.s_root ] in
  match t.s_composite with
  | None -> base
  | Some cx ->
    Array.fold_left
      (fun acc (ri : Proto.root_info) -> Sha1.to_hex ri.Proto.ri_root :: acc)
      base cx.Proto.cx_roots

(* Every object must re-hash to its recorded id, and every root the
   snapshot names must be resolvable (present, or the well-known empty
   directory). This is what makes restore trustworthy: a store that
   passes [verify] is bit-for-bit the tree the root hash names. *)
let verify t =
  let bad =
    List.find_map
      (fun (h, v) ->
        let actual = Sha1.to_hex (Sha1.digest_json v) in
        if String.equal actual h then None
        else Some (Corrupt_object { recorded = h; actual }))
      t.s_objects
  in
  match bad with
  | Some e -> Error e
  | None ->
    let empty = Sha1.to_hex Tree.empty_dir_sha in
    let present h =
      String.equal h empty || List.exists (fun (oh, _) -> String.equal oh h) t.s_objects
    in
    (match List.find_opt (fun h -> not (present h)) (roots_of t) with
    | Some h -> Error (Missing_root h)
    | None -> Ok ())

(* --- Encode -------------------------------------------------------------- *)

let magic = "fluxsnap"
let format_version = 1

let encode t =
  let buf = Buffer.create (256 + (objects_bytes t * 2)) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %s %s %d %d %d\n" magic format_version t.s_service
       (Sha1.to_hex t.s_root) t.s_version t.s_epoch
       (List.length t.s_objects));
  (match t.s_composite with
  | Some cx ->
    Buffer.add_string buf
      (Printf.sprintf "composite %s\n" (Json.to_string (Proto.composite_to_json cx)))
  | None -> ());
  List.iter
    (fun (h, v) -> Buffer.add_string buf (Printf.sprintf "obj %s %s\n" h (Json.to_string v)))
    t.s_objects;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "end %s\n" (Sha1.to_hex (Sha1.digest_string body))

(* --- Decode -------------------------------------------------------------- *)

let sha_hex_len = String.length (Sha1.to_hex Tree.empty_dir_sha)

let parse_obj_line line =
  (* "obj <40-hex> <json>" *)
  let prefix = "obj " in
  let plen = String.length prefix in
  if
    String.length line < plen + sha_hex_len + 2
    || not (String.equal (String.sub line 0 plen) prefix)
    || line.[plen + sha_hex_len] <> ' '
  then Error (Malformed (Printf.sprintf "bad object line %S" (String.sub line 0 (min 40 (String.length line)))))
  else
    let h = String.sub line plen sha_hex_len in
    let js = String.sub line (plen + sha_hex_len + 1) (String.length line - plen - sha_hex_len - 1) in
    match Json.of_string_opt js with
    | Some v -> Ok (h, v)
    | None -> Error (Malformed (Printf.sprintf "unparseable object value for %s" h))

let decode s =
  let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e in
  let lines = String.split_on_char '\n' s in
  (* [encode] ends every line with '\n', so a well-formed store splits
     into its lines plus one trailing "". *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  match lines with
  | [] -> Error (Malformed "empty store")
  | header :: rest ->
    let* service, root, version, epoch, count =
      match String.split_on_char ' ' header with
      | [ m; fv; service; root_hex; version; epoch; count ]
        when String.equal m magic && String.equal fv (string_of_int format_version) -> (
        match
          ( Sha1.of_hex root_hex,
            int_of_string_opt version,
            int_of_string_opt epoch,
            int_of_string_opt count )
        with
        | root, Some version, Some epoch, Some count when count >= 0 ->
          Ok (service, root, version, epoch, count)
        | _ -> Error (Malformed "unparseable header fields")
        | exception Invalid_argument _ -> Error (Malformed "unparseable header fields"))
      | m :: _ when not (String.equal m magic) -> Error (Malformed "not a flux snapshot")
      | _ -> Error (Malformed "bad header shape")
    in
    let* composite, rest =
      match rest with
      | line :: more
        when String.length line > 10 && String.equal (String.sub line 0 10) "composite " -> (
        match Json.of_string_opt (String.sub line 10 (String.length line - 10)) with
        | Some j -> (
          match Proto.composite_of_json j with
          | cx -> Ok (Some cx, more)
          | exception (Json.Type_error _ | Invalid_argument _) ->
            Error (Malformed "unparseable composite record"))
        | None -> Error (Malformed "unparseable composite record"))
      | _ -> Ok (None, rest)
    in
    let rec take_objs acc n = function
      | rest when n = 0 -> Ok (List.rev acc, rest)
      | [] -> Error (Truncated { expected = count; got = count - n })
      | line :: _ when String.length line >= 4 && String.equal (String.sub line 0 4) "end " ->
        Error (Truncated { expected = count; got = count - n })
      | line :: more ->
        let* o = parse_obj_line line in
        take_objs (o :: acc) (n - 1) more
    in
    let* objects, rest = take_objs [] count rest in
    let* () =
      match rest with
      | [ trailer ] when String.length trailer = 4 + sha_hex_len
                         && String.equal (String.sub trailer 0 4) "end " ->
        let recorded = String.sub trailer 4 sha_hex_len in
        (* The checksummed region is every byte up to the trailer line:
           [encode] wrote lines joined by '\n' with a final '\n', so the
           reconstruction below is byte-identical to what it hashed. *)
        let nbody = 1 + count + (match composite with Some _ -> 1 | None -> 0) in
        let body_lines = List.filteri (fun i _ -> i < nbody) lines in
        let body = String.concat "\n" body_lines ^ "\n" in
        let actual = Sha1.to_hex (Sha1.digest_string body) in
        if String.equal recorded actual then Ok ()
        else Error (Checksum_mismatch { recorded; actual })
      | [] -> Error (Truncated { expected = count + 1; got = count })
      | _ -> Error (Malformed "trailing garbage after end record")
    in
    let t = { s_service = service; s_root = root; s_version = version; s_epoch = epoch;
              s_composite = composite; s_objects = objects }
    in
    let* () = verify t in
    Ok t

(* --- Client-side capture -------------------------------------------------- *)

(* Walk the store from the current root over ordinary client RPCs:
   [getroot] pins an (epoch, version, root) triple, then iterative
   idempotent [load]s fetch every reachable object. Because objects are
   immutable and content-addressed, the walk is consistent *at the
   pinned root* even if commits land — or the master fails over —
   while it runs: that is the git-store property the paper leans on,
   and exactly what the master-death-mid-snapshot chaos schedule
   exercises. Runs inside a {!Flux_sim.Proc} body. *)
let capture sess ~rank ?(service = "kvs") () =
  let api = Api.connect sess ~rank in
  match Api.rpc api ~idempotent:true ~timeout:30.0 ~topic:(service ^ ".getroot") Json.null with
  | Error e -> Error e
  | Ok reply ->
    let ri = Proto.commit_reply_decode reply in
    let seen = Hashtbl.create 256 in
    let objects = ref [] in
    let fetch sha =
      let h = Sha1.to_hex sha in
      match Hashtbl.find_opt seen h with
      | Some v -> Ok v
      | None -> (
        match
          Api.rpc api ~idempotent:true ~timeout:30.0 ~topic:(service ^ ".load")
            (Proto.load_request sha)
        with
        | Error e -> Error e
        | Ok payload ->
          let v = Proto.load_reply_value payload in
          Hashtbl.replace seen h v;
          objects := (h, v) :: !objects;
          Ok v)
    in
    let rec walk_dir sha =
      let first_visit = not (Hashtbl.mem seen (Sha1.to_hex sha)) in
      match fetch sha with
      | Error e -> Error e
      | Ok dir when first_visit ->
        let rec entries = function
          | [] -> Ok ()
          | (_, ent) :: more -> (
            let sub =
              match Tree.dirent_ref ent with
              | `Dir s -> walk_dir s
              | `File s -> (match fetch s with Ok _ -> Ok () | Error e -> Error e)
              | `Val _ -> Ok ()
              | exception Json.Type_error m -> Error ("malformed dirent: " ^ m)
            in
            match sub with Ok () -> entries more | Error e -> Error e)
        in
        entries (Tree.dir_entries dir)
      | Ok _ -> Ok ()
    in
    (match walk_dir ri.Proto.ri_root with
    | Error e -> Error e
    | Ok () ->
      Ok
        {
          s_service = service;
          s_root = ri.Proto.ri_root;
          s_version = ri.Proto.ri_version;
          s_epoch = ri.Proto.ri_epoch;
          s_composite = None;
          s_objects = List.rev !objects;
        })
