(** Durable serialized snapshots of the content-addressed KVS.

    A snapshot is the object store reachable from one root hash (the
    paper's git-style design makes the root hash itself the snapshot
    name), serialized with enough redundancy that any damage —
    truncation, a flipped byte, a missing subtree — decodes to a
    structured {!error} rather than a crash or a silently-wrong store:
    every object re-hashes to its recorded id, the header carries the
    object count, and a trailing whole-store checksum covers the rest.

    Sharded stores additionally carry the cross-shard composite record
    (the per-volume roots of one atomic cut, see {!Volumes}). *)

module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1

type error =
  | Malformed of string  (** framing/JSON damage: the store cannot be parsed *)
  | Truncated of { expected : int; got : int }
      (** fewer objects (or no trailer) than the header promised *)
  | Corrupt_object of { recorded : string; actual : string }
      (** an object no longer re-hashes to its recorded id *)
  | Checksum_mismatch of { recorded : string; actual : string }
      (** the whole-store trailer checksum disagrees with the bytes *)
  | Missing_root of string
      (** the root (or a composite member root) is not among the objects *)

val error_to_string : error -> string

type t = {
  s_service : string;  (** the KVS service this store belongs to, e.g. ["kvs"] *)
  s_root : Sha1.digest;
  s_version : int;
  s_epoch : int;
  s_composite : Proto.composite option;
      (** sharded stores: the per-volume roots of the atomic cut *)
  s_objects : (string * Json.t) list;
      (** (sha-hex, value) pairs in walk order, deduplicated *)
}

val objects_bytes : t -> int
(** Sum of the serialized sizes of every object payload. *)

val verify : t -> (unit, error) result
(** Re-hash every object against its recorded id and check that every
    root the snapshot names resolves. [decode] runs this; [restore]
    paths may re-run it on stores of unknown provenance. *)

val encode : t -> string
(** Serialize. [decode (encode t)] returns a snapshot equal to [t] up
    to object order (order is preserved). *)

val decode : string -> (t, error) result
(** Parse and fully verify a serialized store. Total: malformed input
    of any shape returns [Error], never raises. *)

val capture :
  Flux_cmb.Session.t -> rank:int -> ?service:string -> unit -> (t, string) result
(** [capture sess ~rank ()] snapshots the store through ordinary client
    RPCs from [rank]: one [getroot] pins an (epoch, version, root)
    triple, then idempotent [load]s walk every reachable object.
    Because objects are immutable and content-addressed the walk is
    consistent at the pinned root even if commits land — or the master
    fails over — while it runs. Only valid inside a
    {!Flux_sim.Proc} body. *)
