(** Client-side KVS API, mirroring the paper's function classes:
    putting, committing, getting, and synchronizing.

    All blocking calls must run inside a {!Flux_sim.Proc} body; they
    talk to the kvs comms module on the local broker over the modeled
    UNIX-socket hop. *)

module Json = Flux_json.Json

type t

val connect : Flux_cmb.Session.t -> rank:int -> t
(** Client bound to the broker at [rank]. *)

val rank : t -> int

val put : t -> key:string -> Json.t -> (unit, string) result
(** [put t ~key v] writes asynchronously in write-back mode: the value
    is hashed and cached locally, pending commit. *)

val get : t -> key:string -> (Json.t, string) result
(** [get t ~key] looks the key up from the current root snapshot,
    faulting missing objects in through the tree of slave caches. *)

val commit : t -> (int, string) result
(** Synchronously flush this node's dirty tuples and objects to the
    master; returns the new root version (read-your-writes: the local
    root is switched before returning). *)

val abort : t -> unit
(** Drop this handle's uncommitted tuples — after a failed commit or
    fence leaves the transaction in an indeterminate state, the caller
    can start the next one clean. *)

val fence : ?timeout:float -> t -> name:string -> nprocs:int -> (int, string) result
(** Collective commit: completes once [nprocs] processes have entered
    the fence named [name]; contributions aggregate up the tree. Fence
    names must be fresh (not reused by an earlier fence). By default a
    fence blocks forever; pass [timeout] to abandon one whose aggregated
    contributions were lost with a failed master (the transaction is
    then indeterminate — see {!abort}). An abandoned fence is aborted up
    the tree: the name's parked aggregation state is cleared at every
    hop (so the name may be retried fresh) and peers still blocked on it
    fail with a ["fence aborted"] error rather than hanging — if the
    fence had already completed, the abort is a no-op. *)

val get_version : t -> (int, string) result
(** Current root version at the local slave. *)

val get_root : t -> (Proto.root_info, string) result
(** The local broker's current (epoch, version, root) — the snapshot
    name a checkpoint manifest records. *)

val wait_version : t -> int -> (unit, string) result
(** Block until the local root version is at least the argument — the
    causal-consistency primitive. *)

val watch : t -> key:string -> (Json.t option -> unit) -> (unit, string) result
(** [watch t ~key f] calls [f] with the current value (or [None]), then
    again whenever the value changes — implemented as the paper
    describes, by re-getting the key on each root update and comparing.
    Watching a directory fires when anything beneath it changes. *)

val unwatch : t -> key:string -> unit
(** Stop firing callbacks registered for [key] by this client. *)
