(** Distributed KVS master — the paper's stated future-work direction
    ("we plan to address [KVS scalability] by distributing the KVS
    master itself").

    The key space is sharded across [shards] independent volumes, each a
    complete master-plus-caching-slaves store: volume [i]'s master sits
    at rank [i * size/shards], spreading the commit/apply work across
    the machine. Each volume aggregates fences and faults objects along
    its own tree, rooted at its current master, reached over the
    rank-addressed overlay (the session should be created with
    [~rank_topology:Direct]). Keys are routed to volumes by hashing
    their first path component, so a directory never straddles volumes
    and per-volume consistency matches the single-master store. Volume
    trees heal around dead brokers and fail over mastership in
    virtual-ring order, like the single-master store.

    Cross-volume fences are atomic via a two-phase epoch-merge: each
    volume's master freezes its proposed root for the named fence
    (phase 1, a [kvsx.prepare] event on the sequenced plane), and only
    once every volume has prepared do all of them adopt, answer
    participants, and publish their [setroot]s — recorded per rank as
    one {!Proto.composite} under a monotonically increasing cross-shard
    epoch (phase 2). Because the event plane is sequenced, every rank
    derives the identical composite and epoch. No client can observe
    volume A's post-fence state alongside volume B's pre-fence state:
    neither becomes visible until both are. With [shards = 1] none of
    this machinery is installed and behaviour is bit-for-bit the
    single-volume phenomenology. *)

module Json = Flux_json.Json

type t

val load :
  Flux_cmb.Session.t -> ?config:Kvs_module.config -> shards:int -> unit -> t
(** Raises [Invalid_argument] if [shards] is not positive or exceeds the
    session size. *)

val shards : t -> int

val master_rank : t -> int -> int
(** Rank initially hosting volume [i]'s master (failover may move it;
    see {!Kvs_module.master_rank} on the instance for the live view). *)

val volume_of_key : t -> string -> int
(** Deterministic shard choice from the key's first path component.
    Raises [Invalid_argument] on a key {!check_key} rejects. *)

val check_key : string -> (unit, string) result
(** A key is legal iff it is non-empty and no ['.']-separated path
    component is empty — such keys would otherwise silently collapse
    onto one shard or be unresolvable in the hash tree. *)

val volume_for_key : t -> string -> (int, string) result
(** Like {!volume_of_key} but returns the validation error instead of
    raising. *)

val instance : t -> volume:int -> rank:int -> Kvs_module.t
(** Introspection handle for one volume's instance at one rank. *)

val xfence_epoch : t -> rank:int -> int
(** Cross-shard fence epoch at [rank]: the number of cross-volume
    fences this rank has seen complete (all volumes prepared). Equal at
    every live rank after quiescence — the event plane sequences the
    prepares identically everywhere. *)

val last_composite : t -> rank:int -> Proto.composite option
(** The most recent merged setroot record [rank] derived: the frozen
    roots of all volumes under one cross-shard epoch. *)

(** {1 Snapshot / restore} *)

val snapshot : t -> (Snapshot.t, string) result
(** One serialized store spanning every volume: the union of each acting
    master's reachable object set (content addressing dedups shared
    objects) plus a {!Proto.composite} record naming each volume's
    (epoch, version, root) — the same record shape the cross-shard fence
    publishes, so the snapshot names one consistent cut. *)

val restore : t -> Snapshot.t -> (unit, string) result
(** Rebuild each volume's acting master from its composite member root
    (see {!Kvs_module.restore} for the verification and forward-only
    rules). Fails if the snapshot's volume count differs from this
    store's. *)

(** {1 Client} *)

type client
(** Tracks one transaction per volume; blocking calls need a
    {!Flux_sim.Proc} body. *)

val client : t -> rank:int -> client

val put : client -> key:string -> Json.t -> (unit, string) result
val get : client -> key:string -> (Json.t, string) result

val commit : client -> (int, string) result
(** Commits every volume this client has dirty tuples in, concurrently;
    returns the highest resulting volume version. Every per-volume
    result is consumed: volumes that succeeded clear their pending
    state even when another volume failed (their errors are
    aggregated), so a retry after a partial failure cannot re-send
    already-applied tuples. *)

val fence : client -> name:string -> nprocs:int -> (unit, string) result
(** Collective commit across {e all} volumes (each participant fences
    every volume; the sub-fences run concurrently, and the volumes'
    adoption of their new roots is atomic — see the two-phase
    epoch-merge above). Per-volume RPCs are idempotent and fid-stamped:
    a retransmit racing a slow fence is applied exactly once, and a
    busy shed from one volume's admission control backs off and
    retries rather than aborting the whole cross-shard fence. *)
