(** JSON wire encodings for the KVS protocol messages.

    Keeping these in one place pins down the exact bytes-on-the-wire the
    network model charges — tuple entries are ~55 B and object entries
    carry the full value, which is what makes fence aggregation behave
    as the paper reports (values reduce, tuples concatenate). *)

module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1

type tuple = { key : string; sha : Sha1.digest }

type obj = { osha : Sha1.digest; value : Json.t }

type flush = {
  fence : (string * int) option;  (** fence name and nprocs, [None] = plain commit *)
  count : int;  (** fence contributions aggregated into this message *)
  fid : int;  (** per-sender flush id: receivers suppress duplicates of
                  ([origin], [fid]) so retransmitted flushes are applied
                  exactly once; [-1] disables dedup *)
  tuples : tuple list;
  objects : obj list;
}

val flush_to_json : flush -> Json.t
val flush_of_json : Json.t -> flush

val tuples_to_json : tuple list -> Json.t
val tuples_of_json : Json.t -> tuple list

val put_reply : Sha1.digest -> Json.t
(** [{"s": sha}] — a put returns the content address so the client can
    track its own transaction's (key, sha) tuples. *)

val put_reply_sha : Json.t -> Sha1.digest

type root_info = {
  ri_epoch : int;
      (** mastership epoch: bumped by every takeover, so announcements
          from a deposed master are recognizably stale *)
  ri_master : int;  (** the rank announcing itself as master for [ri_epoch] *)
  ri_version : int;
  ri_root : Sha1.digest;
}
(** The epoch-stamped authoritative root. Ordering is lexicographic on
    ([ri_epoch], [ri_version]); decoders default missing [epoch]/[master]
    fields to [0] for compatibility with pre-failover peers. *)

val root_info_to_json : root_info -> Json.t
val root_info_of_json : Json.t -> root_info

val setroot_to_json : root_info -> objects:obj list -> Json.t
(** The [setroot] event payload: the new root plus the interior tree
    objects this commit created, so slaves can replicate them eagerly
    (a later takeover then finds them in surviving caches). *)

val setroot_of_json : Json.t -> root_info * obj list

(** {1 Cross-shard fence (two-phase epoch-merge)} *)

type prepare = { px_name : string; px_vol : int; px_ri : root_info }
(** Phase-1 announcement: volume [px_vol]'s master has gathered every
    contribution of cross-shard fence [px_name] and frozen [px_ri] as
    its proposed root — adoption and publication wait for phase 2. *)

val prepare_to_json : prepare -> Json.t
val prepare_of_json : Json.t -> prepare

type composite = { cx_name : string; cx_epoch : int; cx_roots : root_info array }
(** Phase-2 merged setroot record: the frozen roots of all shards,
    published under one cross-shard fence epoch [cx_epoch] — the atomic
    cut a reader can use to name a consistent state across volumes. *)

val composite_to_json : composite -> Json.t
val composite_of_json : Json.t -> composite

val load_request : Sha1.digest -> Json.t
val load_request_sha : Json.t -> Sha1.digest
val load_reply : Json.t -> Json.t
val load_reply_value : Json.t -> Json.t

val commit_reply : root_info -> Json.t
val commit_reply_decode : Json.t -> root_info
