module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Lru = Flux_util.Lru
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics

type config = {
  cache_capacity : int;
  fence_window : float;
  put_cpu : float;
  hash_cpu_per_byte : float;
  apply_cpu_per_tuple : float;
  dir_index_threshold : int;
  inline_threshold : int;
  setroot_delta_max : int;
  admission_max_intake : int;
  admission_retry_after : float;
}

let default_config =
  {
    cache_capacity = 100_000;
    fence_window = 200e-6;
    put_cpu = 1e-6;
    hash_cpu_per_byte = 1.5e-9;
    apply_cpu_per_tuple = 0.3e-6;
    dir_index_threshold = 64;
    inline_threshold = 256;
    setroot_delta_max = 0;
    admission_max_intake = 0;
    admission_retry_after = 1e-3;
  }

(* Fence aggregation state at a slave (or interior) instance. *)
type fence_state = {
  mutable fs_count : int; (* contributions accumulated, not yet forwarded *)
  mutable fs_tuples : Proto.tuple list; (* reversed *)
  fs_objects : (string, Json.t) Hashtbl.t; (* sha-hex -> value (deduplicated) *)
  mutable fs_heard : int list; (* child ranks heard from since fence start *)
  mutable fs_pending : Message.t list; (* requests awaiting fence completion *)
  mutable fs_timer_armed : bool;
  mutable fs_last_arrival : float;
  fs_nprocs : int;
  mutable fs_retries : int; (* upstream forwards that came back failed *)
  mutable fs_ctx : Tracer.ctx option; (* causal parent of this batch's flush *)
}

type master_fence = {
  mutable mf_count : int;
  mutable mf_tuples : Proto.tuple list;
  mf_objects : (string, Json.t) Hashtbl.t;
  mutable mf_pending : Message.t list;
  mf_nprocs : int;
  mutable mf_ctx : Tracer.ctx option; (* first contribution's span *)
}

type routing = {
  rt_service : string;
  rt_master : int;
  rt_parent : master:int -> int option;
  rt_children : master:int -> int list;
  rt_direct : bool;
}

(* Receiver-side duplicate suppression for retransmitted flushes.  The
   first arrival of ([origin], [fid]) registers an entry; retransmits
   that land while the original is still being processed wait on it, and
   retransmits after completion get the recorded result. *)
type flush_dup = {
  mutable fd_result : (Json.t, string) result option;
  mutable fd_waiting : Message.t list;
}

(* While frozen (a takeover or rejoin is reconstructing authoritative
   state) only pure read-side methods are served; everything else queues
   and replays once the instance thaws. *)
type freeze_reason = Takeover | Rejoin

type t = {
  b : Session.broker;
  cfg : config;
  eng : Engine.t;
  routing : routing;
  mutable master : bool;
  mutable epoch : int; (* mastership epoch; bumped by every takeover *)
  mutable master_rank : int; (* current believed master *)
  mutable service_ranks : int list; (* sorted ranks hosting this service *)
  mutable frozen : (freeze_reason * Message.t list ref) option;
  cache : Json.t Lru.t; (* slave object cache *)
  store : (string, Json.t) Hashtbl.t; (* master authoritative store *)
  mutable root : Sha1.digest;
  mutable version : int;
  dirty_objs : (string, Json.t) Hashtbl.t; (* objects pinned until flushed *)
  pending_loads : (string, ((unit, string) result -> unit) list ref) Hashtbl.t;
  fences : (string, fence_state) Hashtbl.t;
  master_fences : (string, master_fence) Hashtbl.t;
  mutable version_waiters : (int * Message.t) list;
  dir_index : (string, (string, Json.t) Hashtbl.t) Hashtbl.t;
  mutable cpu_free_at : float; (* serializes local put hashing *)
  mutable next_fid : int; (* stamps outgoing flushes for dedup *)
  flush_seen : (int * int, flush_dup) Hashtbl.t; (* (origin, fid) *)
  mutable bytes_held : int;
  mutable n_loads_issued : int;
  mutable apply_backlog : int; (* requests awaiting a scheduled master apply *)
  (* Cross-shard fence hold (two-phase epoch-merge, see {!Volumes}): when
     installed, a completed master fence freezes its proposed root and
     defers adoption/responses/setroot until [release] fires. *)
  mutable fence_hold :
    (name:string -> ri:Proto.root_info -> release:(unit -> unit) -> unit) option;
  mutable held : (string * int) option; (* held fence name, participants parked *)
  mutable held_applies : (unit -> unit) list; (* applies deferred behind the hold *)
  mutable intake_hwm : int; (* peak intake depth seen at the admission gate *)
  mutable admission_sheds : int;
  mutable tracer : Tracer.t option;
  mutable metrics : Metrics.t option;
}

let hex = Sha1.to_hex

let set_tracer t tr = t.tracer <- tr

let set_tracer_all instances tr =
  Array.iter (fun t -> set_tracer t (Some tr)) instances

let set_metrics t m = t.metrics <- m

let set_metrics_all instances m =
  Array.iter (fun t -> set_metrics t (Some m)) instances

let trace t ~name ?ctx ?fields () =
  match t.tracer with
  | Some tr -> Tracer.emit tr ~cat:"kvs" ~name ~rank:(Session.rank t.b) ?ctx ?fields ()
  | None -> ()

let metric_incr t name =
  match t.metrics with
  | Some m -> Metrics.incr m ~name ~rank:(Session.rank t.b)
  | None -> ()

let metric_observe t name v =
  match t.metrics with
  | Some m -> Metrics.observe m ~name ~rank:(Session.rank t.b) v
  | None -> ()

let metric_add t name n =
  match t.metrics with
  | Some m -> Metrics.add m ~name ~rank:(Session.rank t.b) n
  | None -> ()

(* A child span under [parent], when both a tracer and a parent exist. *)
let child_span t parent =
  match (t.tracer, parent) with
  | Some tr, Some c -> Some (Tracer.child_ctx tr c)
  | _ -> None

let set_fence_hold t hook = t.fence_hold <- hook
let is_master t = t.master
let epoch t = t.epoch
let master_rank t = t.master_rank
let version t = t.version
let root_ref t = t.root
let cached_objects t = if t.master then Hashtbl.length t.store else Lru.length t.cache
let store_bytes t = t.bytes_held
let dirty_count t = Hashtbl.length t.dirty_objs
let loads_issued t = t.n_loads_issued
let intake_hwm t = t.intake_hwm
let admission_sheds t = t.admission_sheds

(* --- Object access ----------------------------------------------------- *)

let cache_put t sha v =
  let h = hex sha in
  if t.master then begin
    if not (Hashtbl.mem t.store h) then begin
      Hashtbl.replace t.store h v;
      t.bytes_held <- t.bytes_held + Json.serialized_size v
    end
  end
  else if not (Lru.mem t.cache h) then begin
    t.bytes_held <- t.bytes_held + Json.serialized_size v;
    Lru.put t.cache h v
  end

let lookup_obj t sha =
  let h = hex sha in
  let r =
    if t.master then Hashtbl.find_opt t.store h
    else
      match Hashtbl.find_opt t.dirty_objs h with
      | Some v -> Some v
      | None -> Lru.find t.cache h
  in
  (match t.metrics with
  | None -> ()
  | Some _ ->
    metric_incr t (match r with Some _ -> "kvs.cache.hit" | None -> "kvs.cache.miss"));
  r

let expire_cache t =
  if not t.master then begin
    Lru.clear t.cache;
    Hashtbl.reset t.dir_index;
    t.bytes_held <- 0;
    (* Dirty objects are pinned until the next flush. *)
    Hashtbl.iter (fun _ v -> t.bytes_held <- t.bytes_held + Json.serialized_size v) t.dirty_objs
  end

(* Indexed directory-entry lookup for large directories: the linear scan
   over an 8k-entry directory object would otherwise dominate run time. *)
let find_entry t sha dir name =
  let h = hex sha in
  match Hashtbl.find_opt t.dir_index h with
  | Some idx -> Hashtbl.find_opt idx name
  | None ->
    let entries = Json.to_obj dir in
    if List.length entries < t.cfg.dir_index_threshold then Json.member_opt name dir
    else begin
      let idx = Hashtbl.create (List.length entries) in
      List.iter (fun (k, v) -> Hashtbl.replace idx k v) entries;
      if Hashtbl.length t.dir_index > 256 then Hashtbl.reset t.dir_index;
      Hashtbl.replace t.dir_index h idx;
      Hashtbl.find_opt idx name
    end

(* Service peers that are currently reachable (election candidates and
   fetch sources). *)
let live_peers t =
  let sess = Session.session_of t.b in
  let self = Session.rank t.b in
  List.filter (fun r -> r <> self && not (Session.is_down sess r)) t.service_ranks

(* Upstream transport: the session's RPC tree by default, or a direct
   rank-addressed hop along the volume's relabeled tree. *)
let send_up t ?timeout ?attempts ?idempotent ?trace_ctx ~method_ payload ~reply =
  let topic = t.routing.rt_service ^ "." ^ method_ in
  if t.routing.rt_direct then
    match t.routing.rt_parent ~master:t.master_rank with
    | Some p ->
      (* Retransmits re-resolve the parent, so a send outliving its
         first target follows the healed tree (or a new master). If the
         healed tree says we have no parent by then, loop back to self:
         either we were just elected (the local handler applies) or the
         belief is stale and the handler re-forwards once it updates. *)
      let route () =
        match t.routing.rt_parent ~master:t.master_rank with
        | Some p -> p
        | None -> Session.rank t.b
      in
      Session.rpc_rank t.b ?timeout ?attempts ?idempotent ?trace_ctx ~route ~dst:p ~topic
        payload ~reply
    | None ->
      if t.master then reply (Error (t.routing.rt_service ^ ": master has no parent"))
      else
        (* We believe the master is (or has become) ourselves but hold no
           mastership: a takeover is still in flight. Fail fast; callers
           on the fence path re-contribute and retry. *)
        reply (Error (t.routing.rt_service ^ ": no live master"))
  else
    match t.routing.rt_parent ~master:t.master_rank with
    | Some _ ->
      Session.request_from_module t.b ?timeout ?attempts ?idempotent ?trace_ctx ~topic
        payload ~reply
    | None ->
      (* This broker is the overlay root but not the master: the session
         re-rooted here (e.g. rank 0 revived) while mastership stayed
         with the elected successor. Hop straight to the master over the
         rank plane; a loop-back to self lands in our own handler, which
         queues it while a takeover is still in flight. *)
      if t.master then reply (Error (t.routing.rt_service ^ ": master has no parent"))
      else if t.master_rank = Session.rank t.b && t.frozen = None then
        reply (Error (t.routing.rt_service ^ ": no live master"))
      else
        Session.rpc_rank t.b ?timeout ?attempts ?idempotent ?trace_ctx ~dst:t.master_rank
          ~topic payload ~reply

(* --- Flush duplicate suppression ---------------------------------------- *)

let fresh_fid t =
  let fid = t.next_fid in
  t.next_fid <- t.next_fid + 1;
  fid

(* A flush may be retransmitted with the same fid while the first copy is
   in flight (the response was lost, or the fence it joined is slow), so
   applying it must be keyed on ([origin], [fid]).  [flush_dup_key]
   extracts that key from any request that carries one.  Client-issued
   commit and fence requests may carry a fid too (the Volumes fan-out
   stamps one): their retransmits — a fence reply is deferred until the
   whole collective completes, easily outliving one RPC deadline — must
   likewise contribute exactly once. *)
let flush_dup_key (req : Message.t) =
  match Topic.method_ req.Message.topic with
  | "flush" | "commit" | "fence" -> (
    match Json.member_opt "fid" req.Message.payload with
    | Some fj -> Some (req.Message.origin, Json.to_int fj)
    | None -> None)
  | _ -> None

(* Drop completed dedup entries when the table grows large; in-flight
   entries (waiters still queued) are kept so retransmits keep folding
   into the original request. *)
let flush_seen_compact t =
  if Hashtbl.length t.flush_seen > 8192 then begin
    let stale =
      Hashtbl.fold
        (fun key d acc ->
          if d.fd_result <> None && d.fd_waiting = [] then key :: acc else acc)
        t.flush_seen []
    in
    List.iter (Hashtbl.remove t.flush_seen) stale
  end

(* Respond to [req] and, if it carries a dedup key, record the result so
   retransmits that arrived meanwhile (or arrive later) are answered
   without being re-applied. *)
let respond_result t (req : Message.t) result =
  let answer q =
    match result with
    | Ok payload -> Session.respond t.b q payload
    | Error e -> Session.respond_error t.b q e
  in
  answer req;
  match flush_dup_key req with
  | None -> ()
  | Some key -> (
    match Hashtbl.find_opt t.flush_seen key with
    | Some d ->
      d.fd_result <- Some result;
      let waiting = d.fd_waiting in
      d.fd_waiting <- [];
      List.iter answer waiting
    | None -> ())

(* Retransmitted flushes (and fid-stamped commits/fences) must be applied
   exactly once: the first arrival of an ([origin], [fid]) pair registers
   a dedup entry and is processed; later copies are answered from the
   recorded result, or queued behind the in-flight original. Returns
   [true] when [req] was a duplicate. *)
let flush_duplicate t (req : Message.t) fid =
  fid >= 0
  &&
  let key = (req.Message.origin, fid) in
  match Hashtbl.find_opt t.flush_seen key with
  | Some d ->
    (match d.fd_result with
    | Some (Ok payload) -> Session.respond t.b req payload
    | Some (Error e) -> Session.respond_error t.b req e
    | None -> d.fd_waiting <- req :: d.fd_waiting);
    true
  | None ->
    flush_seen_compact t;
    Hashtbl.replace t.flush_seen key { fd_result = None; fd_waiting = [] };
    false

(* Client-stamped request id, used by commit/fence retransmit dedup. *)
let req_fid (req : Message.t) =
  match Json.member_opt "fid" req.Message.payload with
  | Some f -> Json.to_int f
  | None -> -1

(* --- Fault-in with coalescing ------------------------------------------- *)

let fault_in t ?trace_ctx sha k =
  let h = hex sha in
  match Hashtbl.find_opt t.pending_loads h with
  | Some waiters -> waiters := k :: !waiters
  | None ->
    Hashtbl.replace t.pending_loads h (ref [ k ]);
    t.n_loads_issued <- t.n_loads_issued + 1;
    metric_incr t "kvs.fault_in";
    let ctx = child_span t trace_ctx in
    let t0 = Engine.now t.eng in
    let finish outcome =
      (match t.tracer with
      | None -> ()
      | Some _ ->
        let dur = Engine.now t.eng -. t0 in
        trace t ~name:"fault_in" ?ctx
          ~fields:
            [
              ("sha", Json.string (Sha1.short sha));
              ("dur", Json.float dur);
              ("ok", Json.bool (match outcome with Ok () -> true | Error _ -> false));
            ]
          ());
      metric_observe t "kvs.fault_in.latency" (Engine.now t.eng -. t0);
      match Hashtbl.find_opt t.pending_loads h with
      | Some waiters ->
        Hashtbl.remove t.pending_loads h;
        List.iter (fun k -> k outcome) (List.rev !waiters)
      | None -> ()
    in
    if t.master then begin
      (* The master is authoritative yet a freshly elected one may hold
         an incomplete store: any replica of a content-addressed object
         is as good as another (the git-store property the paper leans
         on), so fault missing objects in from surviving slave caches. *)
      let topic = t.routing.rt_service ^ ".fetch" in
      let rec try_peers = function
        | [] -> finish (Error (Printf.sprintf "object %s lost" (Sha1.short sha)))
        | p :: rest ->
          Session.rpc_rank t.b ~idempotent:true ~timeout:1.0 ?trace_ctx:ctx ~dst:p ~topic
            (Proto.load_request sha) ~reply:(function
            | Ok payload ->
              cache_put t sha (Proto.load_reply_value payload);
              finish (Ok ())
            | Error _ -> try_peers rest)
      in
      try_peers (live_peers t)
    end
    else
      (* Loads are pure reads: retransmit on timeout so a parent dying
         mid-load resolves through the healed topology. *)
      send_up t ~idempotent:true ?trace_ctx:ctx ~method_:"load" (Proto.load_request sha)
        ~reply:(fun r ->
          match r with
          | Ok payload ->
            cache_put t sha (Proto.load_reply_value payload);
            finish (Ok ())
          | Error e -> finish (Error e))

(* --- Root/version management -------------------------------------------- *)

(* Step down to a caching slave: fail the collectives this master was
   aggregating (the participants' idempotent retransmits will find the
   successor) and fold the authoritative store back into the ordinary
   object cache. *)
let demote t =
  t.master <- false;
  (* A fence held for the cross-shard merge dies with the mastership:
     its parked participants time out and their idempotent retransmits
     re-aggregate at the successor, which re-prepares with the
     coordinator. Deferred applies behind the hold are dropped the same
     way (their senders retransmit too). *)
  t.held <- None;
  t.held_applies <- [];
  let mfs = Hashtbl.fold (fun name mf acc -> (name, mf) :: acc) t.master_fences [] in
  Hashtbl.reset t.master_fences;
  List.iter
    (fun (_, mf) ->
      List.iter (fun req -> respond_result t req (Error "kvs: master deposed")) mf.mf_pending)
    mfs;
  let entries = Hashtbl.fold (fun h v acc -> (h, v) :: acc) t.store [] in
  Hashtbl.reset t.store;
  t.bytes_held <- 0;
  Hashtbl.iter
    (fun _ v -> t.bytes_held <- t.bytes_held + Json.serialized_size v)
    t.dirty_objs;
  List.iter
    (fun (h, v) ->
      if not (Lru.mem t.cache h) then begin
        t.bytes_held <- t.bytes_held + Json.serialized_size v;
        Lru.put t.cache h v
      end)
    entries

(* Adopt an epoch-stamped root announcement. Ordering is lexicographic
   on (epoch, version): announcements from a stale epoch are ignored
   outright — that is the split-brain guard — and within the current
   epoch the version only moves forward, so reads at this rank are
   monotonic even across failovers. A master that learns of a newer
   epoch led by someone else demotes itself. *)
let apply_root t (ri : Proto.root_info) =
  if ri.Proto.ri_epoch >= t.epoch then begin
    if ri.Proto.ri_epoch > t.epoch then t.epoch <- ri.Proto.ri_epoch;
    if ri.Proto.ri_master >= 0 && ri.Proto.ri_master <> t.master_rank then begin
      t.master_rank <- ri.Proto.ri_master;
      if t.master && ri.Proto.ri_master <> Session.rank t.b then begin
        trace t ~name:"demote" ~fields:[ ("epoch", Json.int t.epoch) ] ();
        demote t
      end
    end;
    if ri.Proto.ri_version > t.version then begin
      t.version <- ri.Proto.ri_version;
      t.root <- ri.Proto.ri_root;
      let ready, waiting =
        List.partition (fun (v, _) -> v <= t.version) t.version_waiters
      in
      t.version_waiters <- waiting;
      List.iter (fun (_, req) -> Session.respond t.b req Json.null) ready
    end
  end

let current_ri t =
  {
    Proto.ri_epoch = t.epoch;
    ri_master = t.master_rank;
    ri_version = t.version;
    ri_root = t.root;
  }

(* --- Master: applying batches --------------------------------------------- *)

let master_store t v =
  let sha = Sha1.digest_json v in
  cache_put t sha v;
  sha

let master_apply t ?trace_ctx ?fence ~tuples ~objects ~respond_to () =
  List.iter (fun (o : Proto.obj) -> cache_put t o.Proto.osha o.Proto.value) objects;
  let ntuples = List.length tuples in
  metric_incr t "kvs.commits";
  metric_observe t "kvs.commit.tuples" (float_of_int ntuples);
  (* Small values are folded into the directory entry itself, so a
     reader of one small object must fault in the entire directory
     containing it (Figure 4a); larger values stay by-reference. *)
  let dirent_of (tp : Proto.tuple) =
    match lookup_obj t tp.Proto.sha with
    | Some v when Json.serialized_size v <= t.cfg.inline_threshold -> Tree.dirent_val v
    | Some _ | None -> Tree.dirent_file tp.Proto.sha
  in
  let nresp = List.length respond_to in
  t.apply_backlog <- t.apply_backlog + nresp;
  let rec finish () =
    if t.held <> None then
      (* A cross-shard fence has frozen this master's root: applying now
         would invalidate the frozen proposal. Park behind the hold and
         re-run at release, against the post-fence root. *)
      t.held_applies <- finish :: t.held_applies
    else begin
      t.apply_backlog <- t.apply_backlog - nresp;
      trace t ~name:"apply" ?ctx:trace_ctx ~fields:[ ("tuples", Json.int ntuples) ] ();
      let delta = ref [] in
      let delta_bytes = ref 0 in
      let new_root =
        if ntuples = 0 then t.root
        else
          Tree.apply_tuples
            ~fetch:(fun sha -> lookup_obj t sha)
            ~store:(fun v ->
              let sha = master_store t v in
              (* Record the interior objects this apply created so the
                 setroot event can replicate them to every live slave:
                 value objects already ride the flush path, and with the
                 interior nodes mirrored too a takeover finds everything
                 it needs in surviving caches. Capped so huge directories
                 do not turn every setroot into a bulk transfer. *)
              let sz = Json.serialized_size v in
              if !delta_bytes + sz <= t.cfg.setroot_delta_max then begin
                delta := { Proto.osha = sha; value = v } :: !delta;
                delta_bytes := !delta_bytes + sz
              end;
              sha)
            ~root:t.root
            (List.map (fun (tp : Proto.tuple) -> (tp.Proto.key, dirent_of tp)) tuples)
      in
      let proposed =
        {
          Proto.ri_epoch = t.epoch;
          ri_master = Session.rank t.b;
          ri_version = (if ntuples = 0 then t.version else t.version + 1);
          ri_root = new_root;
        }
      in
      let commit () =
        (* Adopting through [apply_root] bumps the version and wakes
           local wait_version callers in one place. *)
        if ntuples > 0 then apply_root t proposed;
        let ri = current_ri t in
        let payload = Proto.commit_reply ri in
        List.iter (fun req -> respond_result t req (Ok payload)) respond_to;
        if ntuples > 0 then begin
          (* The broadcast is its own span under the commit, so the
             descent shows up as a distinct segment of the fence
             critical path. *)
          let pub_ctx = child_span t trace_ctx in
          trace t ~name:"setroot.publish" ?ctx:pub_ctx
            ~fields:[ ("version", Json.int t.version) ]
            ();
          Session.publish t.b ?trace_ctx:pub_ctx
            ~topic:(t.routing.rt_service ^ ".setroot")
            (Proto.setroot_to_json ri ~objects:(List.rev !delta))
        end
      in
      match (t.fence_hold, fence) with
      | Some hook, Some name ->
        (* Phase 1 of the cross-shard fence: freeze the proposed root
           and hand it to the coordinator. Responses, adoption and the
           setroot all wait for phase 2 (the coordinator's release),
           so no participant — and no slave — can observe this shard's
           epoch-E data before every shard reached epoch E. *)
        t.held <- Some (name, nresp);
        trace t ~name:"fence.hold" ?ctx:trace_ctx
          ~fields:[ ("name", Json.string name); ("version", Json.int proposed.Proto.ri_version) ]
          ();
        hook ~name ~ri:proposed ~release:(fun () ->
            match t.held with
            | Some (n, _) when String.equal n name && t.master ->
              t.held <- None;
              trace t ~name:"fence.release" ~fields:[ ("name", Json.string name) ] ();
              commit ();
              let parked = List.rev t.held_applies in
              t.held_applies <- [];
              List.iter (fun k -> k ()) parked
            | _ -> ())
      | _ -> commit ()
    end
  in
  (* Charge the master CPU for tuple application, serialized across
     concurrent batches: this is the linear term that keeps the
     redundant-value fence short of logarithmic — and the queue that a
     distributed master (Volumes) divides. *)
  let cost = float_of_int ntuples *. t.cfg.apply_cpu_per_tuple in
  if cost > 0.0 then begin
    let start = Float.max (Engine.now t.eng) t.cpu_free_at in
    t.cpu_free_at <- start +. cost;
    ignore (Engine.schedule_at t.eng ~time:(start +. cost) (fun () -> finish ()) : Engine.handle)
  end
  else finish ()

(* --- Fence handling -------------------------------------------------------- *)

let fence_get t name nprocs =
  match Hashtbl.find_opt t.fences name with
  | Some fs -> fs
  | None ->
    let fs =
      {
        fs_count = 0;
        fs_tuples = [];
        fs_objects = Hashtbl.create 64;
        fs_heard = [];
        fs_pending = [];
        fs_timer_armed = false;
        fs_last_arrival = 0.0;
        fs_nprocs = nprocs;
        fs_retries = 0;
        fs_ctx = None;
      }
    in
    Hashtbl.replace t.fences name fs;
    fs

let master_fence_get t name nprocs =
  match Hashtbl.find_opt t.master_fences name with
  | Some mf -> mf
  | None ->
    let mf =
      {
        mf_count = 0;
        mf_tuples = [];
        mf_objects = Hashtbl.create 64;
        mf_pending = [];
        mf_nprocs = nprocs;
        mf_ctx = None;
      }
    in
    Hashtbl.replace t.master_fences name mf;
    mf

(* Resolve a client transaction's tuples to the pinned value objects,
   unpinning them (they remain in the ordinary cache). *)
let resolve_objects t tuples =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (tp : Proto.tuple) ->
      let h = hex tp.Proto.sha in
      if Hashtbl.mem seen h then None
      else begin
        Hashtbl.replace seen h ();
        match Hashtbl.find_opt t.dirty_objs h with
        | Some v ->
          Hashtbl.remove t.dirty_objs h;
          cache_put t tp.Proto.sha v;
          Some { Proto.osha = tp.Proto.sha; value = v }
        | None -> (
          (* Another transaction already unpinned it; the cache (or the
             master store) still holds it. *)
          match lookup_obj t tp.Proto.sha with
          | Some v -> Some { Proto.osha = tp.Proto.sha; value = v }
          | None -> None)
      end)
    tuples

let master_fence_check t name mf =
  if mf.mf_count >= mf.mf_nprocs then begin
    Hashtbl.remove t.master_fences name;
    trace t ~name:"commit.begin" ?ctx:mf.mf_ctx
      ~fields:
        [ ("name", Json.string name); ("tuples", Json.int (List.length mf.mf_tuples)) ]
      ();
    let objects =
      Hashtbl.fold (fun h v acc -> { Proto.osha = Sha1.of_hex h; value = v } :: acc)
        mf.mf_objects []
    in
    master_apply t ?trace_ctx:mf.mf_ctx ~fence:name ~tuples:(List.rev mf.mf_tuples)
      ~objects ~respond_to:mf.mf_pending ()
  end

let master_fence_contribute t ~name ~nprocs ~count ~tuples ~objects req =
  let mf = master_fence_get t name nprocs in
  mf.mf_count <- mf.mf_count + count;
  mf.mf_tuples <- List.rev_append tuples mf.mf_tuples;
  List.iter
    (fun (o : Proto.obj) ->
      if not (Hashtbl.mem mf.mf_objects (hex o.Proto.osha)) then
        Hashtbl.replace mf.mf_objects (hex o.Proto.osha) o.Proto.value)
    objects;
  (match req with
  | Some r ->
    mf.mf_pending <- r :: mf.mf_pending;
    if mf.mf_ctx = None then mf.mf_ctx <- r.Message.trace
  | None -> ());
  master_fence_check t name mf

(* A fence abort is terminal for the collective: the error must not be
   refolded into a retry loop (that would resurrect exactly the stale
   aggregation state the abort exists to clear), so every abort reply
   embeds this marker and the retry arms test for it. *)
let abort_marker = "fence aborted: "
let fence_abort_error name = abort_marker ^ name

let is_abort_error e =
  let n = String.length abort_marker and m = String.length e in
  let rec at i = i + n <= m && (String.equal (String.sub e i n) abort_marker || at (i + 1)) in
  at 0

let rec fence_forward t name fs =
  let tuples = List.rev fs.fs_tuples in
  let objects =
    Hashtbl.fold (fun h v acc -> { Proto.osha = Sha1.of_hex h; value = v } :: acc)
      fs.fs_objects []
  in
  let count = fs.fs_count in
  let pending = fs.fs_pending in
  let ctx = child_span t fs.fs_ctx in
  fs.fs_count <- 0;
  fs.fs_tuples <- [];
  Hashtbl.reset fs.fs_objects;
  fs.fs_pending <- [];
  fs.fs_ctx <- None;
  (* Fold the in-flight batch back into the open fence: used when a
     forward fails (dead parent, deposed master) so the contributions
     survive to be re-forwarded through the healed topology. *)
  let refold () =
    fs.fs_count <- fs.fs_count + count;
    fs.fs_tuples <- List.rev_append tuples fs.fs_tuples;
    List.iter
      (fun (o : Proto.obj) ->
        if not (Hashtbl.mem fs.fs_objects (hex o.Proto.osha)) then
          Hashtbl.replace fs.fs_objects (hex o.Proto.osha) o.Proto.value)
      objects;
    fs.fs_pending <- pending @ fs.fs_pending;
    fs.fs_last_arrival <- Engine.now t.eng
  in
  if t.master then begin
    (* Elected mid-fence: the contributions this instance was
       aggregating as a slave terminate here now. *)
    let mf = master_fence_get t name fs.fs_nprocs in
    mf.mf_count <- mf.mf_count + count;
    mf.mf_tuples <- List.rev_append tuples mf.mf_tuples;
    List.iter
      (fun (o : Proto.obj) ->
        if not (Hashtbl.mem mf.mf_objects (hex o.Proto.osha)) then
          Hashtbl.replace mf.mf_objects (hex o.Proto.osha) o.Proto.value)
      objects;
    mf.mf_pending <- pending @ mf.mf_pending;
    if fs.fs_count = 0 && fs.fs_pending = [] then Hashtbl.remove t.fences name;
    master_fence_check t name mf
  end
  else begin
    let payload =
      Proto.flush_to_json
        { Proto.fence = Some (name, fs.fs_nprocs); count; fid = fresh_fid t; tuples; objects }
    in
    trace t ~name:"flush.forward" ?ctx
      ~fields:[ ("name", Json.string name); ("count", Json.int count) ]
      ();
    (* The reply blocks until the whole fence completes, so the deadline
       must cover a slow collective; the fid lets the parent suppress the
       duplicate contribution if an attempt's response is lost. *)
    send_up t ~timeout:30.0 ~idempotent:true ?trace_ctx:ctx ~method_:"flush" payload
      ~reply:(fun r ->
        (match r with
        | Ok reply ->
          apply_root t (Proto.commit_reply_decode reply);
          List.iter (fun req -> respond_result t req (Ok reply)) pending
        | Error e when fs.fs_retries < 12 && not (is_abort_error e) ->
          (* Failover-transient errors (the parent died mid-collective,
             the master was deposed, the successor is still freezing, a
             busy budget ran out): keep the contributions and try again
             once the topology and mastership have settled — fences
             degrade to latency, not errors. (Abort errors are terminal:
             refolding them would re-register the very state the abort
             cleared.) *)
          fs.fs_retries <- fs.fs_retries + 1;
          refold ();
          trace t ~name:"flush.retry"
            ~fields:
              [
                ("name", Json.string name);
                ("attempt", Json.int fs.fs_retries);
                ("error", Json.string e);
              ]
            ();
          arm_fence_timer t name fs
            (Float.min 1.0 (0.005 *. (2.0 ** float_of_int fs.fs_retries)))
        | Error e -> List.iter (fun req -> respond_result t req (Error e)) pending);
        if fs.fs_count = 0 && fs.fs_pending = [] then Hashtbl.remove t.fences name)
  end

(* Forwarding policy: forward as soon as the subtree is known complete;
   otherwise wait until every live child has contributed and the fence
   has gone quiet for half a window (so locally staggered enters batch
   into one message); a subtree with silent children forwards after two
   full windows of quiet so sparse fences cannot deadlock. *)
and fence_check_ready t name fs =
  if fs.fs_count > 0 then begin
    let children = t.routing.rt_children ~master:t.master_rank in
    let all_heard = List.for_all (fun c -> List.mem c fs.fs_heard) children in
    let idle = Engine.now t.eng -. fs.fs_last_arrival in
    let complete = fs.fs_count >= fs.fs_nprocs in
    if
      complete
      || (all_heard && idle >= t.cfg.fence_window /. 2.0)
      || idle >= 2.0 *. t.cfg.fence_window
    then fence_forward t name fs
    else arm_fence_timer t name fs (t.cfg.fence_window /. 4.0)
  end

and arm_fence_timer t name fs delay =
  if not fs.fs_timer_armed then begin
    fs.fs_timer_armed <- true;
    ignore
      (Engine.schedule t.eng ~delay (fun () ->
           fs.fs_timer_armed <- false;
           fence_check_ready t name fs)
        : Engine.handle)
  end

let fence_contribute t ~name ~nprocs ~count ~tuples ~objects ~from_child req =
  if t.master then master_fence_contribute t ~name ~nprocs ~count ~tuples ~objects req
  else begin
    let fs = fence_get t name nprocs in
    fs.fs_count <- fs.fs_count + count;
    fs.fs_tuples <- List.rev_append tuples fs.fs_tuples;
    List.iter
      (fun (o : Proto.obj) ->
        (* Write-through caching: objects passing by stay in the cache. *)
        cache_put t o.Proto.osha o.Proto.value;
        if not (Hashtbl.mem fs.fs_objects (hex o.Proto.osha)) then
          Hashtbl.replace fs.fs_objects (hex o.Proto.osha) o.Proto.value)
      objects;
    (match from_child with
    | Some c -> if not (List.mem c fs.fs_heard) then fs.fs_heard <- c :: fs.fs_heard
    | None -> ());
    (match req with
    | Some r ->
      fs.fs_pending <- r :: fs.fs_pending;
      if fs.fs_ctx = None then fs.fs_ctx <- r.Message.trace
    | None -> ());
    fs.fs_last_arrival <- Engine.now t.eng;
    if fs.fs_count >= fs.fs_nprocs then fence_check_ready t name fs
    else arm_fence_timer t name fs (t.cfg.fence_window /. 2.0)
  end

(* --- Request handlers -------------------------------------------------------- *)

let handle_put t (req : Message.t) =
  let key = Json.to_string_v (Json.member "key" req.Message.payload) in
  let value = Json.member "v" req.Message.payload in
  let vsize = Json.serialized_size value in
  let now = Engine.now t.eng in
  let start = Float.max now t.cpu_free_at in
  let cost = t.cfg.put_cpu +. (float_of_int vsize *. t.cfg.hash_cpu_per_byte) in
  t.cpu_free_at <- start +. cost;
  let finish_at = start +. cost in
  ignore key;
  ignore
    (Engine.schedule_at t.eng ~time:finish_at (fun () ->
         let sha = Sha1.digest_json value in
         if not (Hashtbl.mem t.dirty_objs (hex sha)) then
           Hashtbl.replace t.dirty_objs (hex sha) value;
         cache_put t sha value;
         Session.respond t.b req (Proto.put_reply sha))
      : Engine.handle)

let handle_get t (req : Message.t) =
  let key = Json.to_string_v (Json.member "key" req.Message.payload) in
  let pinned_root = t.root in
  let rec walk () =
    match
      Tree.lookup
        ~fetch:(fun sha -> lookup_obj t sha)
        ~find_entry:(fun sha dir name -> find_entry t sha dir name)
        ~root:pinned_root ~key ()
    with
    | Tree.Found v -> Session.respond t.b req (Proto.load_reply v)
    | Tree.No_key -> Session.respond_error t.b req (Printf.sprintf "key not found: %s" key)
    | Tree.Need sha ->
      fault_in t ?trace_ctx:req.Message.trace sha (function
        | Ok () -> walk ()
        | Error e -> Session.respond_error t.b req e)
  in
  walk ()

let handle_load t (req : Message.t) =
  let sha = Proto.load_request_sha req.Message.payload in
  match lookup_obj t sha with
  | Some v -> Session.respond t.b req (Proto.load_reply v)
  | None ->
    (* A slave faults upstream; the master faults sideways into the
       surviving slave caches (see [fault_in]). *)
    fault_in t ?trace_ctx:req.Message.trace sha (function
      | Ok () -> (
        match lookup_obj t sha with
        | Some v -> Session.respond t.b req (Proto.load_reply v)
        | None ->
          (* Evicted between fault-in and reply: extremely unlikely;
             treat as a miss the client may retry. *)
          Session.respond_error t.b req "object evicted during load")
      | Error e -> Session.respond_error t.b req e)

(* Strictly local object lookup — the peer-fetch used by a newly elected
   master to reconstruct its store. Never recurses into [fault_in], so a
   fetch can never ping-pong between two incomplete replicas. *)
let handle_fetch t (req : Message.t) =
  let sha = Proto.load_request_sha req.Message.payload in
  match lookup_obj t sha with
  | Some v -> Session.respond t.b req (Proto.load_reply v)
  | None ->
    Session.respond_error t.b req
      (Printf.sprintf "object %s not cached" (Sha1.short sha))

let handle_commit t (req : Message.t) =
  if not (flush_duplicate t req (req_fid req)) then begin
    let tuples =
      match Json.member_opt "tuples" req.Message.payload with
      | Some tj -> Proto.tuples_of_json tj
      | None -> []
    in
    let objects = resolve_objects t tuples in
    if t.master then
      master_apply t ?trace_ctx:req.Message.trace ~tuples ~objects ~respond_to:[ req ] ()
    else
      let payload =
        Proto.flush_to_json
          { Proto.fence = None; count = 0; fid = fresh_fid t; tuples; objects }
      in
      send_up t ~idempotent:true ?trace_ctx:(child_span t req.Message.trace)
        ~method_:"flush" payload ~reply:(fun r ->
          match r with
          | Ok reply ->
            apply_root t (Proto.commit_reply_decode reply);
            respond_result t req (Ok reply)
          | Error e -> respond_result t req (Error e))
  end

let handle_fence t (req : Message.t) =
  if not (flush_duplicate t req (req_fid req)) then begin
    let name = Json.to_string_v (Json.member "name" req.Message.payload) in
    let nprocs = Json.to_int (Json.member "nprocs" req.Message.payload) in
    let tuples =
      match Json.member_opt "tuples" req.Message.payload with
      | Some tj -> Proto.tuples_of_json tj
      | None -> []
    in
    let objects = resolve_objects t tuples in
    trace t ~name:"fence.enter" ?ctx:req.Message.trace
      ~fields:[ ("name", Json.string name) ]
      ();
    fence_contribute t ~name ~nprocs ~count:1 ~tuples ~objects ~from_child:None (Some req)
  end

(* A participant abandoned the fence (its client-side deadline fired):
   clear the name's aggregation state at every hop so a retried fence
   with the same name cannot collide with the aborted instance's parked
   contributions, and fail the peers still parked on it — the fence is
   all-or-nothing, so once one participant is gone it can never
   complete. Best effort: if the fence in fact completed before the
   abort arrived, the name is no longer registered and this is a no-op
   (the abort can therefore never tear a committed fence). A fence
   frozen for the cross-shard merge is left alone — it has already
   aggregated completely and the coordinator will release it. *)
let handle_fenceabort t (req : Message.t) =
  let name = Json.to_string_v (Json.member "name" req.Message.payload) in
  let held_here = match t.held with Some (n, _) -> String.equal n name | None -> false in
  if not held_here then begin
    trace t ~name:"fence.abort" ?ctx:req.Message.trace ~fields:[ ("name", Json.string name) ] ();
    (match Hashtbl.find_opt t.fences name with
    | Some fs ->
      let parked = fs.fs_pending in
      fs.fs_count <- 0;
      fs.fs_tuples <- [];
      Hashtbl.reset fs.fs_objects;
      fs.fs_pending <- [];
      fs.fs_ctx <- None;
      Hashtbl.remove t.fences name;
      metric_incr t "kvs.fence.abort";
      List.iter (fun r -> respond_result t r (Error (fence_abort_error name))) parked
    | None -> ());
    if t.master then begin
      match Hashtbl.find_opt t.master_fences name with
      | Some mf ->
        Hashtbl.remove t.master_fences name;
        metric_incr t "kvs.fence.abort";
        List.iter (fun r -> respond_result t r (Error (fence_abort_error name))) mf.mf_pending
      | None -> ()
    end
  end;
  if t.master || held_here then Session.respond t.b req Json.null
  else
    (* Propagate toward the master so interior aggregates and the
       master's pending map clear too; answer once the upstream hop
       resolves either way. *)
    send_up t ~idempotent:true ~timeout:5.0 ~method_:"fenceabort"
      (Json.obj [ ("name", Json.string name) ])
      ~reply:(fun _ -> Session.respond t.b req Json.null)

(* Atomic put-and-commit of a binding list: used by services (mon,
   resvc, provenance) that have no client-side transaction state. *)
let handle_mput t (req : Message.t) =
  let bindings = Json.to_list (Json.member "bindings" req.Message.payload) in
  let tuples, objects =
    List.fold_left
      (fun (ts, os) b ->
        let key = Json.to_string_v (Json.member "key" b) in
        let v = Json.member "v" b in
        let sha = Sha1.digest_json v in
        cache_put t sha v;
        ({ Proto.key; sha } :: ts, { Proto.osha = sha; value = v } :: os))
      ([], []) bindings
  in
  let tuples = List.rev tuples and objects = List.rev objects in
  if t.master then
    master_apply t ?trace_ctx:req.Message.trace ~tuples ~objects ~respond_to:[ req ] ()
  else
    let payload =
      Proto.flush_to_json
        { Proto.fence = None; count = 0; fid = fresh_fid t; tuples; objects }
    in
    (* Through [send_up], not a hardcoded "kvs.flush" tree RPC: a routed
       family's flush must follow its own service topic and volume tree,
       or every slave-side mput to a volume black-holes. *)
    send_up t ~idempotent:true ?trace_ctx:(child_span t req.Message.trace)
      ~method_:"flush" payload ~reply:(fun r ->
        match r with
        | Ok reply ->
          apply_root t (Proto.commit_reply_decode reply);
          Session.respond t.b req reply
        | Error e -> Session.respond_error t.b req e)

let handle_flush t (req : Message.t) =
  let f = Proto.flush_of_json req.Message.payload in
  if not (flush_duplicate t req f.Proto.fid) then begin
    (* [origin] is the rank of the child kvs instance that forwarded. *)
    let from_child = Some req.Message.origin in
    match f.Proto.fence with
    | Some (name, nprocs) ->
      fence_contribute t ~name ~nprocs ~count:f.Proto.count ~tuples:f.Proto.tuples
        ~objects:f.Proto.objects ~from_child (Some req)
    | None ->
      if t.master then
        master_apply t ?trace_ctx:req.Message.trace ~tuples:f.Proto.tuples
          ~objects:f.Proto.objects ~respond_to:[ req ] ()
      else begin
        (* Plain commit: write objects through this cache and forward.
           Re-stamp with this instance's own fid — the child's fid is only
           unique per sender, and the next hop sees this rank as origin. *)
        List.iter
          (fun (o : Proto.obj) -> cache_put t o.Proto.osha o.Proto.value)
          f.Proto.objects;
        let fwd = Proto.flush_to_json { f with Proto.fid = fresh_fid t } in
        send_up t ~idempotent:true ?trace_ctx:(child_span t req.Message.trace)
          ~method_:"flush" fwd ~reply:(fun r ->
            match r with
            | Ok reply ->
              apply_root t (Proto.commit_reply_decode reply);
              respond_result t req (Ok reply)
            | Error e -> respond_result t req (Error e))
      end
  end

let handle_getversion t (req : Message.t) =
  Session.respond t.b req (Json.obj [ ("version", Json.int t.version) ])

let handle_waitversion t (req : Message.t) =
  let v = Json.to_int (Json.member "version" req.Message.payload) in
  if t.version >= v then Session.respond t.b req Json.null
  else t.version_waiters <- (v, req) :: t.version_waiters

let handle_getroot t (req : Message.t) =
  Session.respond t.b req (Proto.commit_reply (current_ri t))

(* --- Snapshot / restore ---------------------------------------------------------- *)

(* Serialize the object store reachable from this instance's current
   root. A master holds every reachable object by construction; a slave
   may not (its cache is lossy), in which case the walk reports the
   first unavailable object instead of fabricating a partial store.
   CPU-time metrics use host time, not virtual time: the walk happens
   between simulation events, so its real cost is what matters. *)
let snapshot t =
  let t0 = Sys.time () in
  let seen = Hashtbl.create 256 in
  let objects = ref [] in
  let missing = ref None in
  let rec walk ~dir sha =
    let h = hex sha in
    if not (Hashtbl.mem seen h) then begin
      match lookup_obj t sha with
      | None -> if !missing = None then missing := Some h
      | Some v ->
        Hashtbl.replace seen h ();
        objects := (h, v) :: !objects;
        if dir then
          List.iter
            (fun (_, ent) ->
              match Tree.dirent_ref ent with
              | `Dir s -> walk ~dir:true s
              | `File s -> walk ~dir:false s
              | `Val _ -> ())
            (Tree.dir_entries v)
    end
  in
  match walk ~dir:true t.root with
  | exception Json.Type_error m ->
    Error (Printf.sprintf "%s: snapshot: malformed directory object: %s" t.routing.rt_service m)
  | () -> (
    match !missing with
    | Some h ->
      Error
        (Printf.sprintf "%s: snapshot: object %s not held at rank %d" t.routing.rt_service h
           (Session.rank t.b))
    | None ->
      let snap =
        {
          Snapshot.s_service = t.routing.rt_service;
          s_root = t.root;
          s_version = t.version;
          s_epoch = t.epoch;
          s_composite = None;
          s_objects = List.rev !objects;
        }
      in
      metric_incr t "ckpt.snapshot";
      metric_add t "ckpt.bytes" (Snapshot.objects_bytes snap);
      metric_observe t "ckpt.snapshot.duration" (Sys.time () -. t0);
      Ok snap)

(* Rebuild this instance's store from a verified snapshot and announce
   the restored root to every slave. Only the acting master may restore
   (the authoritative store is what is being rebuilt), and only forward:
   a snapshot older than (or divergent from) the store's current version
   is refused rather than silently losing acked writes. *)
let restore t (snap : Snapshot.t) =
  let t0 = Sys.time () in
  if not t.master then
    Error (t.routing.rt_service ^ ": restore requires the acting master")
  else
    match Snapshot.verify snap with
    | Error e -> Error (Snapshot.error_to_string e)
    | Ok () ->
      if
        snap.Snapshot.s_version < t.version
        || (snap.Snapshot.s_version = t.version
            && t.version > 0
            && not (Sha1.equal snap.Snapshot.s_root t.root))
      then
        Error
          (Printf.sprintf "%s: refusing restore: snapshot v%d is behind or divergent from store v%d"
             t.routing.rt_service snap.Snapshot.s_version t.version)
      else begin
        List.iter (fun (h, v) -> cache_put t (Sha1.of_hex h) v) snap.Snapshot.s_objects;
        apply_root t
          {
            Proto.ri_epoch = Int.max t.epoch snap.Snapshot.s_epoch;
            ri_master = Session.rank t.b;
            ri_version = snap.Snapshot.s_version;
            ri_root = snap.Snapshot.s_root;
          };
        Session.publish t.b
          ~topic:(t.routing.rt_service ^ ".setroot")
          (Proto.setroot_to_json (current_ri t) ~objects:[]);
        trace t ~name:"restore"
          ~fields:
            [
              ("version", Json.int t.version);
              ("objects", Json.int (List.length snap.Snapshot.s_objects));
            ]
          ();
        metric_incr t "ckpt.restore";
        metric_add t "ckpt.bytes" (Snapshot.objects_bytes snap);
        metric_observe t "ckpt.restore.duration" (Sys.time () -. t0);
        Ok ()
      end

(* --- Freeze / dispatch ---------------------------------------------------------- *)

(* Methods safe to serve while frozen: pure local reads that can never
   recurse into a self-addressed RPC. ("get"/"load" are excluded — they
   may fault in through [send_up], which can loop back to this very
   instance mid-takeover.) *)
let pure_while_frozen = function
  | "getversion" | "getroot" | "fetch" | "waitversion" -> true
  | _ -> false

(* --- Master admission control ----------------------------------------------------

   The intake depth is the number of write-side requests the master has
   accepted but not yet answered: fence contributions parked on open
   aggregates plus batches queued behind the serial apply CPU. Past the
   configured threshold the master sheds new write traffic with a
   structured busy error carrying a [retry_after] hint sized to the
   apply backlog, so clients back off for roughly as long as the queue
   needs to drain instead of blind exponential guessing. *)

let intake_depth t =
  (* Participants parked behind a cross-shard hold, and applies deferred
     behind it, are accepted-but-unanswered work too: without counting
     them the gate would re-open while the coordinator is still merging
     and the hold queue could grow without bound. *)
  let held =
    (match t.held with Some (_, n) -> n | None -> 0) + List.length t.held_applies
  in
  Hashtbl.fold
    (fun _ mf acc -> acc + List.length mf.mf_pending)
    t.master_fences (t.apply_backlog + held)

let write_method = function
  | "commit" | "fence" | "mput" | "flush" -> true
  | _ -> false

let admission_shed t (req : Message.t) =
  t.admission_sheds <- t.admission_sheds + 1;
  let retry_after =
    Float.max t.cfg.admission_retry_after (t.cpu_free_at -. Engine.now t.eng)
  in
  metric_incr t "kvs.admission.shed";
  trace t ~name:"admission.shed" ?ctx:req.Message.trace
    ~fields:[ ("retry_after", Json.float retry_after) ]
    ();
  Session.respond_error t.b req (Session.busy_error ~retry_after)

(* Overloaded iff admission is enabled, we are the master, and the
   request is write-side. Also tracks the intake high-water mark (and a
   gauge when metrics are on) — sampling at the gate is enough because
   every accepted write passed through it. *)
let admission_overloaded t m =
  t.cfg.admission_max_intake > 0 && t.master && write_method m
  && begin
       let depth = intake_depth t in
       if depth > t.intake_hwm then t.intake_hwm <- depth;
       (match t.metrics with
       | Some mx ->
         let rank = Session.rank t.b in
         Metrics.set_gauge mx ~name:"kvs.intake" ~rank (float_of_int depth);
         Metrics.set_gauge mx ~name:"kvs.intake_hwm" ~rank (float_of_int t.intake_hwm)
       | None -> ());
       depth >= t.cfg.admission_max_intake
     end

(* A contribution to a fence this master has already opened is never
   shed: the parked peer contributions are what is pinning the intake
   count, and admitting the remaining participants is the only way that
   intake can drain — shedding a completer would wedge the fence at the
   admission limit. *)
let joins_open_fence t m (req : Message.t) =
  t.master
  &&
  match m with
  | "fence" -> (
    match Json.member_opt "name" req.Message.payload with
    | Some n -> Hashtbl.mem t.master_fences (Json.to_string_v n)
    | None -> false)
  | "flush" -> (
    match Json.member_opt "fence" req.Message.payload with
    | Some fj when fj <> Json.Null -> (
      match Json.member_opt "name" fj with
      | Some n -> Hashtbl.mem t.master_fences (Json.to_string_v n)
      | None -> false)
    | _ -> false)
  | _ -> false

let handle_request t (req : Message.t) =
  let m = Topic.method_ req.Message.topic in
  match t.frozen with
  | Some (_, q) when not (pure_while_frozen m) -> q := req :: !q
  | _ when admission_overloaded t m && not (joins_open_fence t m req) ->
    admission_shed t req
  | _ -> (
    match m with
    | "put" -> handle_put t req
    | "get" -> handle_get t req
    | "load" -> handle_load t req
    | "fetch" -> handle_fetch t req
    | "commit" -> handle_commit t req
    | "fence" -> handle_fence t req
    | "mput" -> handle_mput t req
    | "flush" -> handle_flush t req
    | "getversion" -> handle_getversion t req
    | "waitversion" -> handle_waitversion t req
    | "getroot" -> handle_getroot t req
    | "fenceabort" -> handle_fenceabort t req
    | m ->
      Session.respond_error t.b req
        (Printf.sprintf "%s: unknown method %S" t.routing.rt_service m))

let unfreeze t =
  match t.frozen with
  | None -> ()
  | Some (_, q) ->
    t.frozen <- None;
    trace t ~name:"unfreeze" ~fields:[ ("queued", Json.int (List.length !q)) ] ();
    let queued = List.rev !q in
    q := [];
    List.iter (fun req -> handle_request t req) queued

(* --- Failover: election, takeover, rejoin --------------------------------------- *)

(* Fold the object cache (and still-pinned dirty objects) into the
   authoritative store of a rank assuming mastership. *)
let promote t =
  t.master <- true;
  t.bytes_held <- 0;
  let adopt h v =
    if not (Hashtbl.mem t.store h) then begin
      Hashtbl.replace t.store h v;
      t.bytes_held <- t.bytes_held + Json.serialized_size v
    end
  in
  Lru.iter adopt t.cache;
  Lru.clear t.cache;
  Hashtbl.reset t.dir_index;
  Hashtbl.iter adopt t.dirty_objs

(* Deterministic, non-preemptive takeover: freeze, snapshot the newest
   (epoch, version, root) any surviving peer has seen, move to a fresh
   epoch above all of them, promote the local cache to the store, and
   re-announce via an epoch-stamped setroot. Objects the promoted cache
   is missing are faulted in lazily from surviving peers ([fault_in]). *)
let begin_takeover t =
  if not t.master then begin
    (match t.frozen with
    | Some _ -> ()
    | None -> t.frozen <- Some (Takeover, ref []));
    trace t ~name:"takeover" ~fields:[ ("epoch", Json.int t.epoch) ] ();
    let self = Session.rank t.b in
    t.master_rank <- self;
    let peers = live_peers t in
    let best = ref (t.epoch, t.version, t.root) in
    let remaining = ref (List.length peers) in
    let finish () =
      let e, v, root = !best in
      apply_root t
        { Proto.ri_epoch = e + 1; ri_master = self; ri_version = v; ri_root = root };
      promote t;
      let ri = current_ri t in
      Session.publish t.b
        ~topic:(t.routing.rt_service ^ ".setroot")
        (Proto.setroot_to_json ri ~objects:[]);
      trace t ~name:"master_elected"
        ~fields:[ ("epoch", Json.int t.epoch); ("version", Json.int t.version) ]
        ();
      unfreeze t
    in
    if peers = [] then finish ()
    else
      List.iter
        (fun p ->
          Session.rpc_rank t.b ~idempotent:true ~timeout:1.0 ~dst:p
            ~topic:(t.routing.rt_service ^ ".getroot")
            Json.null
            ~reply:(fun r ->
              (match r with
              | Ok payload ->
                let ri = Proto.commit_reply_decode payload in
                let be, bv, _ = !best in
                if
                  ri.Proto.ri_epoch > be
                  || (ri.Proto.ri_epoch = be && ri.Proto.ri_version > bv)
                then best := (ri.Proto.ri_epoch, ri.Proto.ri_version, ri.Proto.ri_root)
              | Error _ -> ());
              decr remaining;
              if !remaining = 0 then finish ()))
        peers
  end

(* A rank coming back from a blackout: everything it believed may be
   stale and, if it was the master, a successor has been elected in the
   meantime. Freeze, drop in-flight collective state (the participants
   timed out long ago), announce ourselves, and thaw once the incumbent
   master's epoch-stamped setroot arrives. With no surviving peer there
   is nobody to learn from: adopt what we have via a self-takeover. *)
let begin_rejoin t =
  if t.master then demote t;
  t.frozen <- Some (Rejoin, ref []);
  Hashtbl.reset t.fences;
  Hashtbl.reset t.master_fences;
  t.held <- None;
  t.held_applies <- [];
  let stale_loads = Hashtbl.fold (fun _ w acc -> List.rev !w @ acc) t.pending_loads [] in
  Hashtbl.reset t.pending_loads;
  List.iter (fun k -> k (Error "kvs: node rejoined")) stale_loads;
  match live_peers t with
  | [] -> begin_takeover t
  | _ :: _ ->
    trace t ~name:"rejoin" ();
    Session.publish t.b
      ~topic:(t.routing.rt_service ^ ".hello")
      (Json.obj [ ("rank", Json.int (Session.rank t.b)) ])

(* Liveness transitions, fed by the session's watch list. Election is
   deterministic (the lowest live service rank succeeds a dead master)
   and non-preemptive (mastership moves only when the master dies). *)
let on_liveness t r up =
  let sess = Session.session_of t.b in
  let self = Session.rank t.b in
  if up then begin
    if r = self then begin_rejoin t
  end
  else if r <> self && r = t.master_rank && not (Session.is_down sess self) then begin
    match List.filter (fun c -> not (Session.is_down sess c)) t.service_ranks with
    | [] -> ()
    | lowest :: _ ->
      t.master_rank <- lowest;
      if lowest = self then begin_takeover t
  end

(* --- Module wiring -------------------------------------------------------------- *)

let default_routing b =
  {
    rt_service = "kvs";
    rt_master = 0;
    (* The session tree re-roots itself on failover (heal), so the
       default routing ignores the believed master. *)
    rt_parent = (fun ~master:_ -> Session.tree_parent b);
    rt_children = (fun ~master:_ -> Session.tree_children b);
    rt_direct = false;
  }

let create_instance cfg ?routing b =
  let routing = match routing with Some r -> r | None -> default_routing b in
  let t =
    {
      b;
      cfg;
      eng = Session.b_engine b;
      routing;
      master = Session.rank b = routing.rt_master;
      epoch = 0;
      master_rank = routing.rt_master;
      service_ranks = [ routing.rt_master ];
      frozen = None;
      cache = Lru.create ~capacity:cfg.cache_capacity;
      store = Hashtbl.create 1024;
      root = Tree.empty_dir_sha;
      version = 0;
      dirty_objs = Hashtbl.create 64;
      pending_loads = Hashtbl.create 64;
      fences = Hashtbl.create 8;
      master_fences = Hashtbl.create 8;
      version_waiters = [];
      dir_index = Hashtbl.create 16;
      cpu_free_at = 0.0;
      fence_hold = None;
      held = None;
      held_applies = [];
      next_fid = 0;
      flush_seen = Hashtbl.create 64;
      bytes_held = 0;
      n_loads_issued = 0;
      apply_backlog = 0;
      intake_hwm = 0;
      admission_sheds = 0;
      tracer = None;
      metrics = None;
    }
  in
  (* Evicted cache entries must release their accounted bytes, or
     [bytes_held] creeps upward forever on a busy slave. *)
  Lru.set_on_evict t.cache (fun _h v ->
      t.bytes_held <- t.bytes_held - Json.serialized_size v);
  (* Seed the empty root directory everywhere. *)
  cache_put t Tree.empty_dir_sha Tree.empty_dir;
  t

let module_of t =
  {
    Session.mod_name = t.routing.rt_service;
    on_request =
      (fun (req : Message.t) ->
        trace t ~name:(Topic.method_ req.Message.topic) ?ctx:req.Message.trace ();
        handle_request t req;
        Session.Consumed);
    on_event =
      (fun (ev : Message.t) ->
        let svc = t.routing.rt_service in
        if String.equal ev.Message.topic (svc ^ ".setroot") then begin
          let ri, objects = Proto.setroot_of_json ev.Message.payload in
          trace t ~name:"setroot.deliver" ?ctx:ev.Message.trace
            ~fields:[ ("version", Json.int ri.Proto.ri_version) ]
            ();
          (* Replicate the commit's interior objects before adopting the
             root, so this cache can serve them to a future takeover. *)
          List.iter (fun (o : Proto.obj) -> cache_put t o.Proto.osha o.Proto.value) objects;
          apply_root t ri;
          match t.frozen with
          | Some (Rejoin, _)
            when ri.Proto.ri_master >= 0
                 && ri.Proto.ri_epoch >= t.epoch
                 && not (Session.is_down (Session.session_of t.b) ri.Proto.ri_master) ->
            (* The incumbent master answered our hello (or a fresh commit
               flowed past): we know who leads the current epoch and hold
               its root, so the rejoin is complete. *)
            unfreeze t
          | _ -> ()
        end
        else if String.equal ev.Message.topic (svc ^ ".hello") then begin
          (* A rejoiner asked for the current root: only the live master
             of the current epoch answers, with a fresh setroot. *)
          if t.master && t.frozen = None then
            Session.publish t.b ~topic:(svc ^ ".setroot")
              (Proto.setroot_to_json (current_ri t) ~objects:[])
        end);
  }

let ranks_to_depth sess d =
  let k = Session.fanout sess in
  List.filter
    (fun r -> Flux_util.Treemath.depth ~k r <= d)
    (List.init (Session.size sess) Fun.id)

let load sess ?(config = default_config) ?ranks () =
  let targets =
    match ranks with
    | Some rs ->
      if not (List.mem 0 rs) then invalid_arg "Kvs_module.load: ranks must include the master (0)";
      rs
    | None -> List.init (Session.size sess) Fun.id
  in
  let instances =
    Array.of_list (List.map (fun r -> create_instance config (Session.broker sess r)) targets)
  in
  let service_ranks = List.sort_uniq compare targets in
  Array.iter (fun t -> t.service_ranks <- service_ranks) instances;
  let by_rank = Hashtbl.create 64 in
  List.iteri (fun i r -> Hashtbl.replace by_rank r instances.(i)) targets;
  Session.load_module sess ~ranks:targets (fun b ->
      module_of (Hashtbl.find by_rank (Session.rank b)));
  (* Failover and rejoin are driven off the session's liveness
     transitions; each instance reacts independently so the election is
     symmetric (everyone computes the same lowest-live successor). *)
  Session.add_liveness_watch sess (fun r up ->
      Array.iter (fun t -> on_liveness t r up) instances);
  instances

(* Routed families (Volumes) fail over like the session store, but their
   election order follows the volume's *virtual ring*: successors are
   preferred in relabeled-tree order starting at the static master, so a
   dead master's role moves to the next rank of its own volume instead
   of piling every volume's mastership onto rank 0. [on_liveness] takes
   the first live rank of [service_ranks], which encodes that order. *)

let load_routed sess ?(config = default_config) ~routing () =
  let n = Session.size sess in
  let instances =
    Array.init n (fun r -> create_instance config ~routing:(routing r) (Session.broker sess r))
  in
  let m0 = instances.(0).routing.rt_master in
  let ring_order = List.init n (fun i -> (m0 + i) mod n) in
  Array.iter (fun t -> t.service_ranks <- ring_order) instances;
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  Session.add_liveness_watch sess (fun r up ->
      Array.iter (fun t -> on_liveness t r up) instances);
  instances
