(** Hash-tree directory structure for the content-addressed KVS.

    Following the paper (and ZFS/git): JSON objects live in a
    content-addressable store hashed by SHA-1; hierarchical key names
    ("a.b.c") are broken into path components referencing directory
    objects; a directory maps names to entries carrying the SHA-1 of a
    value object or of another directory. Any update produces a new
    root reference, so old and new snapshots coexist and the root switch
    is atomic. *)

module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1

(** {1 Directory objects} *)

val empty_dir : Json.t
val empty_dir_sha : Sha1.digest
(** Every store starts from the same empty root directory. *)

val dirent_file : Sha1.digest -> Json.t
(** Entry referencing a value object: [{"f": sha}]. *)

val dirent_dir : Sha1.digest -> Json.t
(** Entry referencing a subdirectory object: [{"d": sha}]. *)

val dirent_val : Json.t -> Json.t
(** Entry carrying a small value inline: [{"v": value}]. Small values
    live inside the directory object itself — which is why a consumer of
    one 8-byte object must fault in the whole directory containing it,
    the effect behind the paper's Figure 4(a). *)

val dirent_ref : Json.t -> [ `File of Sha1.digest | `Dir of Sha1.digest | `Val of Json.t ]
(** Decode an entry. Raises [Json.Type_error] on malformed entries. *)

val dir_entries : Json.t -> (string * Json.t) list
val dir_size : Json.t -> int
(** Number of entries in a directory object. *)

(** {1 Key paths} *)

val split_key : string -> string list
(** ["a.b.c"] -> [["a"; "b"; "c"]]. Raises [Invalid_argument] on the
    empty key or empty components. *)

(** {1 Lookup} *)

type lookup_result =
  | Found of Json.t  (** the value object *)
  | No_key  (** the path does not exist in this snapshot *)
  | Need of Sha1.digest
      (** an object on the path is not available from [fetch]; fault it
          in and retry (lookups are idempotent against a pinned root) *)

val lookup :
  fetch:(Sha1.digest -> Json.t option) ->
  ?find_entry:(Sha1.digest -> Json.t -> string -> Json.t option) ->
  root:Sha1.digest ->
  key:string ->
  unit ->
  lookup_result
(** [lookup ~fetch ~root ~key ()] walks the path from the directory at
    [root]. [find_entry] (default: linear scan) lets callers index
    large directory objects. *)

(** {1 Update (master side)} *)

val apply_tuples :
  fetch:(Sha1.digest -> Json.t option) ->
  store:(Json.t -> Sha1.digest) ->
  root:Sha1.digest ->
  (string * Json.t) list ->
  Sha1.digest
(** [apply_tuples ~fetch ~store ~root tuples] applies [(key, dirent)]
    bindings (build entries with {!dirent_file} or {!dirent_val}) and
    returns the new root reference, creating intermediate directories as
    needed and storing every new directory object via [store]. Later
    tuples win on duplicate keys. A path component that currently names
    a value is replaced by a directory when the update descends through
    it. [fetch] must succeed for every directory on the touched paths
    (the master's store is authoritative).

    The rebuild is git-style structural sharing: only the directory
    spine touched by [tuples] is reconstructed and re-stored; every
    unchanged sibling subtree keeps its existing entry, so its SHA-1 is
    carried over from the previous commit rather than recomputed (and
    {!Sha1.digest_json} additionally memoizes digests of the shared
    interior nodes themselves by physical identity). *)
