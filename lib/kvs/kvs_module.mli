(** The [kvs] comms module: a distributed key-value store with a single
    master (the session root) and caching slaves, as in the paper.

    Slaves cache content-addressed objects in write-back mode: a put is
    purely local (hash + cache + dirty tuple); a commit flushes the
    dirty set to the master through the tree of slave caches; a fence is
    the collective variant, aggregating contributions hop by hop up the
    tree — identical value objects are deduplicated at each hop while
    the [(key, sha)] tuples are concatenated, which is what produces the
    paper's Figure 3 behaviour. Gets walk the hash tree from the current
    root, faulting missing objects in from the CMB-tree parent
    (concurrent misses for one object coalesce into one upstream load),
    which yields the [log2(C) * T(G)] consumer latency of Figure 4.

    Consistency (Vogels' taxonomy, as in the paper): commit and fence
    replies carry the new root so writers read their writes; root
    references are versioned and never applied out of order (monotonic
    reads); [get_version]/[wait_version] give causal consistency across
    processes. *)

module Json = Flux_json.Json
module Sha1 = Flux_sha1.Sha1
module Session = Flux_cmb.Session

type config = {
  cache_capacity : int;  (** slave LRU capacity, in objects *)
  fence_window : float;  (** aggregation window, seconds *)
  put_cpu : float;  (** fixed local cost of a put *)
  hash_cpu_per_byte : float;  (** hashing/serialization cost per value byte *)
  apply_cpu_per_tuple : float;  (** master cost to apply one tuple *)
  dir_index_threshold : int;  (** index directories larger than this *)
  inline_threshold : int;
      (** values serialized to at most this many bytes are stored inline
          in their directory entry, as in the prototype — reading one
          small value then requires faulting in its whole directory *)
  setroot_delta_max : int;
      (** byte budget for replicating a commit's freshly created interior
          tree objects inside its [setroot] event: with the interiors
          mirrored into slave caches, a takeover after a master loss can
          rebuild the full store from survivors. The default [0] keeps
          the paper's fault-in phenomenology (slaves hold only what they
          pulled or wrote) — deployments that need acked commits to
          survive master loss set a budget, as the chaos harness does. *)
  admission_max_intake : int;
      (** master admission control: shed write-side requests
          (commit/fence/mput/flush) once the intake depth — fence
          contributions parked on open aggregates plus batches queued
          behind the serial apply CPU — reaches this threshold. Shed
          requests get a structured [Session.busy_error] whose
          [retry_after] hint is sized to the current apply backlog, so
          well-behaved clients (the Session RPC layer honours the hint)
          retry once the queue has had time to drain. [0] (the default)
          disables admission control. *)
  admission_retry_after : float;
      (** floor for the [retry_after] hint, seconds *)
}

val default_config : config

type t
(** Per-rank instance state (introspection handle for tests/benches). *)

val load : Session.t -> ?config:config -> ?ranks:int list -> unit -> t array
(** Load the module on every rank of the session (or only on [ranks],
    to load at a configurable tree depth: leaf brokers without an
    instance route KVS requests upstream to the nearest loaded one,
    conserving node resources for the application). Result index [i]
    holds the instance of the [i]-th listed rank (rank [i] when loading
    everywhere). [ranks] must include rank 0 — the master. *)

val ranks_to_depth : Session.t -> int -> int list
(** Ranks whose RPC-tree depth is at most the argument — convenience
    for depth-based loading. *)

(** {1 Routed loading (distributed masters)}

    The paper's stated future-work direction is distributing the KVS
    master. {!Volumes} builds on this hook: a store instance can serve a
    different topic namespace, put its master on any rank, and aggregate
    along a relabeled tree reached over the rank-addressed overlay. *)

type routing = {
  rt_service : string;  (** topic service component, e.g. ["kvs-2"] *)
  rt_master : int;  (** rank initially holding the authoritative store *)
  rt_parent : master:int -> int option;
      (** aggregation-tree parent of this rank, given the rank this
          instance currently believes is master — so a routed family can
          re-root (and heal) its relabeled tree after a failover *)
  rt_children : master:int -> int list;
  rt_direct : bool;
      (** send upstream over the rank-addressed plane (required when the
          aggregation tree differs from the session's RPC tree);
          retransmits re-resolve [rt_parent], following the healed tree *)
}

val load_routed :
  Session.t -> ?config:config -> routing:(int -> routing) -> unit -> t array
(** Load one store family under the given per-rank routing, on every
    rank. Registers a liveness watch like {!load}; the election order is
    the volume's virtual ring (static master first, then successive
    ranks modulo the session size), so a dead master's role stays inside
    its own volume's labeling instead of collapsing onto rank 0. *)

val set_fence_hold :
  t ->
  (name:string -> ri:Proto.root_info -> release:(unit -> unit) -> unit) option ->
  unit
(** Install the cross-shard fence hook (phase 1 of {!Volumes}' two-phase
    epoch-merge). When set, a master fence that has gathered all
    [nprocs] contributions computes — but does not adopt — its new root,
    then calls the hook with the fence [name] and the frozen proposal
    [ri]; participant responses, root adoption and the [setroot]
    broadcast all wait until [release] runs. Applies arriving while a
    fence is held are deferred behind it (and still counted by
    {!intake_depth}, so admission control keeps the hold queue bounded).
    A demotion or rejoin drops the hold: the parked participants'
    idempotent retransmits re-aggregate at the successor master, which
    re-prepares with the coordinator. *)

(** {1 Failover and rejoin}

    Loading via {!load} registers a session liveness watch. When the
    master is marked down, the lowest live service rank deterministically
    assumes mastership: it freezes non-pure requests, adopts the newest
    (epoch, version, root) any surviving peer has seen, bumps the epoch,
    promotes its object cache to the authoritative store (faulting
    missing objects in from peers), and re-announces via an epoch-stamped
    [setroot] — announcements from stale epochs are ignored everywhere,
    so a deposed master cannot split-brain. When a rank is marked up
    again it freezes, publishes a [hello], and thaws once the incumbent
    master's setroot brings it to the current epoch and version.
    Mastership is non-preemptive: a revived lower rank rejoins as a
    slave. {!load_routed} families fail over the same way, with the
    election preference in virtual-ring order (see {!load_routed}). *)

val is_master : t -> bool

val epoch : t -> int
(** Mastership epoch this instance has reached (0 until a failover). *)

val master_rank : t -> int
(** The rank this instance currently believes is master. *)

val version : t -> int
val root_ref : t -> Sha1.digest
val cached_objects : t -> int
(** Objects in the slave cache (or the master's authoritative store). *)

val store_bytes : t -> int
(** Total serialized bytes of objects held (cache or store). *)

val dirty_count : t -> int
(** Tuples awaiting commit on this node. *)

val loads_issued : t -> int
(** Upstream fault-in requests this instance has sent (coalescing means
    this can be far smaller than the number of local misses). *)

val intake_depth : t -> int
(** Write-side requests accepted but not yet answered: pending fence
    contributions plus the serialized apply backlog. The quantity
    {!config.admission_max_intake} bounds. *)

val intake_hwm : t -> int
(** Peak {!intake_depth} observed at the admission gate (tracked only
    while admission control is enabled). *)

val admission_sheds : t -> int
(** Requests rejected with a busy error by admission control. *)

val expire_cache : t -> unit
(** Drop every clean cached object (simulates the idle-expiry sweep). *)

(** {1 Snapshot / restore}

    The content-addressed design makes a snapshot *be* a root hash; these
    walk the reachable object set behind it into a durable serialized
    store and back (see {!Snapshot}). Both are instantaneous in virtual
    time — they model an out-of-band dump/load, not wire traffic; the
    wire-level equivalent is {!Snapshot.capture}. *)

val snapshot : t -> (Snapshot.t, string) result
(** Serialize every object reachable from this instance's current root.
    The master holds all of them by construction; on a slave the walk
    fails cleanly if its lossy cache is missing one. Updates the
    [ckpt.snapshot] / [ckpt.bytes] counters and the
    [ckpt.snapshot.duration] histogram when metrics are attached. *)

val restore : t -> Snapshot.t -> (unit, string) result
(** Rebuild the authoritative store from a verified snapshot, adopt its
    (epoch, version, root), and announce the restored root to every
    slave via [setroot]. Master only, forward only: a snapshot behind
    (or divergent from) the current version is refused — restoring must
    never silently lose acked writes. Re-verifies integrity, so a
    corrupt store of unknown provenance returns the structured error
    text rather than poisoning the store. Updates [ckpt.restore] /
    [ckpt.bytes] / [ckpt.restore.duration] when metrics are attached. *)

val set_tracer : t -> Flux_trace.Tracer.t option -> unit
(** Emit category ["kvs"] events: one per handled request method
    (put/get/commit/fence/flush/load/...) with the rank and the
    request's causal context, plus the fence/commit lifecycle —
    [fence.enter] at each client's broker, [flush.forward] per tree
    reduction hop, [commit.begin] when the master has heard every
    contribution, [apply], [setroot.publish] and per-rank
    [setroot.deliver] — and [fault_in] spans with their duration. These
    are the events {!Flux_trace.Export.fence_critical_path} consumes. *)

val set_tracer_all : t array -> Flux_trace.Tracer.t -> unit

val set_metrics : t -> Flux_trace.Metrics.t option -> unit
(** Per-rank numeric aggregation: [kvs.cache.hit]/[kvs.cache.miss]
    counters on every object lookup, [kvs.fault_in] counts with a
    [kvs.fault_in.latency] histogram, and at the master [kvs.commits]
    with a [kvs.commit.tuples] batch-size histogram. With admission
    control enabled the master also maintains [kvs.intake] /
    [kvs.intake_hwm] gauges and a [kvs.admission.shed] counter. *)

val set_metrics_all : t array -> Flux_trace.Metrics.t -> unit
