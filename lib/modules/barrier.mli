(** The [barrier] comms module: collective barriers across process
    groups (Table I).

    Processes enter a named barrier declaring the total participant
    count; enters are counted and aggregated hop by hop up the RPC tree
    (the reduction idiom); when the session root has seen [nprocs]
    enters, completion responses cascade back down, releasing every
    participant. Barrier names must be fresh per use. *)

type t

val load : Flux_cmb.Session.t -> ?window:float -> ?max_pending:int -> unit -> t array
(** Load on every rank. [window] is the aggregation window (default
    200 us). [max_pending] (default [0] = unbounded) caps the replies an
    instance will hold per barrier name: a direct client enter arriving
    past the cap is shed with a structured [Session.busy_error] (hint:
    the window) instead of being queued — aggregated contributions from
    child instances are never shed, since they carry whole-subtree
    counts. A shed enter was not counted; the client retries. *)

val enter : Flux_cmb.Api.t -> name:string -> nprocs:int -> (unit, string) result
(** Blocking enter; must run inside a {!Flux_sim.Proc} body. *)

val enters_seen : t -> int
(** Total enter contributions this instance has counted (diagnostics). *)

val sheds : t -> int
(** Direct client enters rejected busy under [max_pending]. *)

val set_tracer : t -> Flux_trace.Tracer.t option -> unit
(** Emit category ["barrier"] events: [enter] per client contribution
    (with the request's causal context), [forward] per aggregate hop up
    the tree (child span of the first latched contribution, threaded
    into the upstream RPC), and [exit] when the root releases the
    barrier (threaded into the [barrier.exit] publish). *)

val set_tracer_all : t array -> Flux_trace.Tracer.t -> unit
