module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Ring_buffer = Flux_util.Ring_buffer
module Metrics = Flux_trace.Metrics

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Debug
  | "info" -> Info
  | "warn" -> Warn
  | "error" -> Error
  | s -> invalid_arg (Printf.sprintf "Log_mod.level_of_string: %S" s)

type entry = { e_rank : int; e_level : level; e_text : string; e_count : int }

type t = {
  b : Session.broker;
  forward_level : level;
  window : float;
  master : bool;
  buffer : entry Ring_buffer.t;
  mutable batch : entry list; (* reversed; pending upstream flush *)
  mutable batch_timer_armed : bool;
  mutable root_entries : entry list; (* root only; reversed *)
  mutable metrics : Metrics.t option;
}

let root_log t = List.rev t.root_entries
let local_buffer t = Ring_buffer.to_list t.buffer

let set_metrics t m = t.metrics <- m
let set_metrics_all ts m = Array.iter (fun t -> set_metrics t (Some m)) ts

let metric_add t name n =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.add m ~name ~rank:(Session.rank t.b) n

let entry_to_json e =
  Json.obj
    [
      ("rank", Json.int e.e_rank);
      ("level", Json.string (level_to_string e.e_level));
      ("text", Json.string e.e_text);
      ("count", Json.int e.e_count);
    ]

let entry_of_json j =
  {
    e_rank = Json.to_int (Json.member "rank" j);
    e_level = level_of_string (Json.to_string_v (Json.member "level" j));
    e_text = Json.to_string_v (Json.member "text" j);
    e_count = Json.to_int (Json.member "count" j);
  }

(* Fold duplicate texts (same level and text) into one entry with a
   count — the "reduction" the paper mentions. The rank of the first
   occurrence is kept. *)
let reduce entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      let key = (level_rank e.e_level, e.e_text) in
      match Hashtbl.find_opt tbl key with
      | Some acc -> Hashtbl.replace tbl key { acc with e_count = acc.e_count + e.e_count }
      | None ->
        Hashtbl.replace tbl key e;
        order := key :: !order)
    entries;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order

let flush_batch t =
  if t.batch <> [] then begin
    let entries = reduce (List.rev t.batch) in
    t.batch <- [];
    if t.master then begin
      metric_add t "log.root_entries" (List.length entries);
      t.root_entries <- List.rev_append entries t.root_entries
    end
    else begin
      metric_add t "log.forwarded_entries" (List.length entries);
      Session.request_from_module t.b ~topic:"log.append"
        (Json.obj [ ("entries", Json.list (List.map entry_to_json entries)) ])
        ~reply:(fun _ -> ())
    end
  end

let arm_batch_timer t =
  if not t.batch_timer_armed then begin
    t.batch_timer_armed <- true;
    ignore
      (Engine.schedule (Session.b_engine t.b) ~delay:t.window (fun () ->
           t.batch_timer_armed <- false;
           flush_batch t)
        : Engine.handle)
  end

let ingest t e =
  Ring_buffer.push t.buffer e;
  if level_rank e.e_level >= level_rank t.forward_level then begin
    t.batch <- e :: t.batch;
    arm_batch_timer t
  end

let module_of t =
  {
    Session.mod_name = "log";
    on_request =
      (fun (req : Message.t) ->
        (match Topic.method_ req.Message.topic with
        | "msg" ->
          let p = req.Message.payload in
          ingest t
            {
              e_rank = req.Message.origin;
              e_level = level_of_string (Json.to_string_v (Json.member "level" p));
              e_text = Json.to_string_v (Json.member "text" p);
              e_count = 1;
            };
          Session.respond t.b req Json.null
        | "append" ->
          (* Aggregated entries from a child: merge into our batch so
             successive hops keep reducing. *)
          let entries =
            List.map entry_of_json (Json.to_list (Json.member "entries" req.Message.payload))
          in
          List.iter (fun e -> t.batch <- e :: t.batch) entries;
          arm_batch_timer t;
          Session.respond t.b req Json.null
        | m -> Session.respond_error t.b req (Printf.sprintf "log: unknown method %S" m));
        Session.Consumed);
    on_event =
      (fun (ev : Message.t) ->
        if String.equal ev.Message.topic "log.fault" then begin
          (* Dump the circular buffer toward the root for post-mortem
             context. *)
          let entries = Ring_buffer.to_list t.buffer in
          if t.master then begin
            metric_add t "log.root_entries" (List.length entries);
            t.root_entries <- List.rev_append entries t.root_entries
          end
          else if entries <> [] then begin
            metric_add t "log.forwarded_entries" (List.length entries);
            Session.request_from_module t.b ~topic:"log.append"
              (Json.obj [ ("entries", Json.list (List.map entry_to_json entries)) ])
              ~reply:(fun _ -> ())
          end
        end);
  }

let load sess ?(forward_level = Info) ?(window = 1e-3) ?(buffer_capacity = 128) () =
  let instances =
    Array.init (Session.size sess) (fun r ->
        {
          b = Session.broker sess r;
          forward_level;
          window;
          master = r = 0;
          buffer = Ring_buffer.create ~capacity:buffer_capacity;
          batch = [];
          batch_timer_armed = false;
          root_entries = [];
          metrics = None;
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  instances

let log api ~level text =
  Flux_cmb.Api.rpc_async api ~topic:"log.msg"
    (Json.obj [ ("level", Json.string (level_to_string level)); ("text", Json.string text) ])
    ~reply:(fun _ -> ())

let dump_buffers api = Flux_cmb.Api.publish api ~topic:"log.fault" Json.null
