(** The [log] comms module (Table I): log messages are reduced and
    filtered before being placed in a log "file" at the session root; a
    circular debug buffer at every rank provides context in response to
    a fault event. *)

type level = Debug | Info | Warn | Error

type entry = {
  e_rank : int;  (** originating rank *)
  e_level : level;
  e_text : string;
  e_count : int;  (** duplicates folded by the reduction *)
}

type t

val load :
  Flux_cmb.Session.t ->
  ?forward_level:level ->
  ?window:float ->
  ?buffer_capacity:int ->
  unit ->
  t array
(** Messages below [forward_level] (default [Info]) stay in the local
    circular buffer only; others are batched for [window] seconds
    (default 1 ms), duplicates folded, and forwarded to the root log. *)

val log : Flux_cmb.Api.t -> level:level -> string -> unit
(** Fire-and-forget log call for clients. *)

val root_log : t -> entry list
(** The accumulated session log (meaningful at rank 0), oldest first. *)

val local_buffer : t -> entry list
(** This rank's circular debug buffer, oldest first. *)

val dump_buffers : Flux_cmb.Api.t -> unit
(** Publish a fault event asking every rank to dump its debug buffer to
    the root log. *)

val level_to_string : level -> string
val level_of_string : string -> level

val set_metrics : t -> Flux_trace.Metrics.t option -> unit
(** Registry wiring: entries appended to the root log bump
    [log.root_entries] (at rank 0); entries a non-root instance
    forwards upstream (batch flushes and fault dumps) bump
    [log.forwarded_entries] at that rank. *)

val set_metrics_all : t array -> Flux_trace.Metrics.t -> unit
