module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic

type t = {
  b : Session.broker;
  groups : (string, (int * string) list ref) Hashtbl.t; (* root only; reversed *)
}

(* Mastership follows the overlay root dynamically so the service
   survives a root failover: after rank 0 dies, join/leave/members
   resolve at the new root. Its table starts empty — membership does not
   migrate, members must re-join (a membership epoch, in effect). *)
let is_root t = Session.tree_parent t.b = None

let group_of t name =
  match Hashtbl.find_opt t.groups name with
  | Some g -> g
  | None ->
    let g = ref [] in
    Hashtbl.replace t.groups name g;
    g

let module_of t =
  {
    Session.mod_name = "group";
    on_request =
      (fun (req : Message.t) ->
        if not (is_root t) then
          (* Non-root instances pass membership operations upstream so
             the root holds the authoritative view. *)
          Session.Pass
        else begin
          (let p = req.Message.payload in
           match Topic.method_ req.Message.topic with
           | "join" ->
             let name = Json.to_string_v (Json.member "group" p) in
             let rank = Json.to_int (Json.member "rank" p) in
             let tag = Json.to_string_v (Json.member "tag" p) in
             let g = group_of t name in
             if not (List.mem (rank, tag) !g) then g := (rank, tag) :: !g;
             Session.respond t.b req (Json.obj [ ("size", Json.int (List.length !g)) ])
           | "leave" ->
             let name = Json.to_string_v (Json.member "group" p) in
             let rank = Json.to_int (Json.member "rank" p) in
             let tag = Json.to_string_v (Json.member "tag" p) in
             let g = group_of t name in
             g := List.filter (fun m -> m <> (rank, tag)) !g;
             Session.respond t.b req (Json.obj [ ("size", Json.int (List.length !g)) ])
           | "members" ->
             let name = Json.to_string_v (Json.member "group" p) in
             let g = group_of t name in
             let l =
               List.rev_map
                 (fun (r, tag) -> Json.obj [ ("rank", Json.int r); ("tag", Json.string tag) ])
                 !g
             in
             Session.respond t.b req (Json.obj [ ("members", Json.list l) ])
           | m -> Session.respond_error t.b req (Printf.sprintf "group: unknown method %S" m));
          Session.Consumed
        end);
    on_event = (fun _ -> ());
  }

let load sess () =
  let instances =
    Array.init (Session.size sess) (fun r ->
        { b = Session.broker sess r; groups = Hashtbl.create 8 })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  (* A dead rank's processes cannot leave their groups; purge them so
     group sizes (and the barriers sized from them) reflect the
     survivors. *)
  Session.add_liveness_watch sess (fun r up ->
      if not up then
        Array.iter
          (fun t ->
            Hashtbl.iter (fun _ g -> g := List.filter (fun (mr, _) -> mr <> r) !g) t.groups)
          instances);
  instances

let join api ~group ~tag =
  match
    Flux_cmb.Api.rpc api ~topic:"group.join"
      (Json.obj
         [
           ("group", Json.string group);
           ("rank", Json.int (Flux_cmb.Api.rank api));
           ("tag", Json.string tag);
         ])
  with
  | Ok p -> Ok (Json.to_int (Json.member "size" p))
  | Error e -> Error e

let leave api ~group ~tag =
  match
    Flux_cmb.Api.rpc api ~topic:"group.leave"
      (Json.obj
         [
           ("group", Json.string group);
           ("rank", Json.int (Flux_cmb.Api.rank api));
           ("tag", Json.string tag);
         ])
  with
  | Ok p -> Ok (Json.to_int (Json.member "size" p))
  | Error e -> Error e

let members api ~group =
  match
    Flux_cmb.Api.rpc api ~topic:"group.members" (Json.obj [ ("group", Json.string group) ])
  with
  | Ok p ->
    Ok
      (List.map
         (fun m -> (Json.to_int (Json.member "rank" m), Json.to_string_v (Json.member "tag" m)))
         (Json.to_list (Json.member "members" p)))
  | Error e -> Error e

let group_size api ~group =
  match members api ~group with Ok l -> Ok (List.length l) | Error e -> Error e

let barrier api ~group ~name =
  match group_size api ~group with
  | Error e -> Error e
  | Ok 0 -> Error (Printf.sprintf "group %S is empty" group)
  | Ok n -> Barrier.enter api ~name ~nprocs:n
