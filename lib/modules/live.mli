(** The [live] comms module: liveness detection (Table I).

    Each tree node receives heartbeat-synchronized hello messages from
    its children; after a configurable number of missed heartbeats a
    liveness event ([live.down]) is issued for the dead child and the
    session overlays are rewired around it.

    Rejoin: when a rank is marked up again ({!Flux_cmb.Session.mark_up})
    a [live.up] event is published, the rank is removed from every
    instance's declared-down list, and its hello history is reset so its
    liveness clock restarts at the current heartbeat epoch. *)

type t

val load :
  Flux_cmb.Session.t -> hb:Hb.t array -> ?max_missed:int -> unit -> t array
(** Requires the [hb] module to be loaded first. A child is declared
    dead after [max_missed] (default 3) heartbeats without a hello. *)

val hellos_received : t -> int

val declared_down : t -> int list
(** Ranks this instance has declared dead (root aggregates all). *)
