module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic

type t = {
  b : Session.broker;
  max_missed : int;
  period : float; (* heartbeat period, for replay-burst detection *)
  last_hello : (int, int) Hashtbl.t; (* child rank -> epoch of last hello *)
  mutable last_epoch : int; (* last heartbeat processed here *)
  mutable last_pulse_at : float;
  mutable hellos : int;
  mutable down : int list;
}

let hellos_received t = t.hellos
let declared_down t = t.down

let send_hello t epoch =
  match Session.tree_parent t.b with
  | None -> ()
  | Some _ ->
    (* A hello unanswered for two heartbeat periods is stale — the next
       pulse carries a fresh epoch anyway, so bound the deadline rather
       than retransmit and let the pending entry be reclaimed. *)
    Session.request_from_module t.b ~timeout:(2.0 *. t.period) ~attempts:1
      ~topic:"live.hello"
      (Json.obj [ ("rank", Json.int (Session.rank t.b)); ("epoch", Json.int epoch) ])
      ~reply:(fun _ -> ())

let check_children t epoch =
  let sess = Session.session_of t.b in
  (* Grace after a gap: if we ourselves missed heartbeats (our parent
     died and the backlog is being replayed after healing — recognizable
     because replayed pulses arrive much faster than the period), or a
     child was newly adopted, restart its liveness clock at the current
     epoch rather than declaring it on stale history. *)
  let now = Flux_sim.Engine.now (Session.b_engine t.b) in
  let gap =
    epoch > t.last_epoch + 1 || now -. t.last_pulse_at < 0.5 *. t.period
  in
  t.last_epoch <- epoch;
  t.last_pulse_at <- now;
  List.iter
    (fun child ->
      match Hashtbl.find_opt t.last_hello child with
      | None -> Hashtbl.replace t.last_hello child epoch
      | Some last ->
        if gap then Hashtbl.replace t.last_hello child epoch
        else if
          epoch - last > t.max_missed
          && (not (Session.is_down sess child))
          && not (List.mem child t.down)
        then begin
          t.down <- child :: t.down;
          Session.publish t.b ~topic:"live.down" (Json.obj [ ("rank", Json.int child) ]);
          Session.mark_down sess child
        end)
    (Session.tree_children t.b)

(* Keep hello history bounded to the current children: adoption and
   rejoin both change the child set, and a stale entry would otherwise
   let an old epoch count against a rank we no longer parent (or leak
   entries forever). *)
let prune_hello_history t =
  let children = Session.tree_children t.b in
  let stale =
    Hashtbl.fold
      (fun c _ acc -> if List.mem c children then acc else c :: acc)
      t.last_hello []
  in
  List.iter (Hashtbl.remove t.last_hello) stale

let module_of t =
  {
    Session.mod_name = "live";
    on_request =
      (fun (req : Message.t) ->
        (match Topic.method_ req.Message.topic with
        | "hello" ->
          let rank = Json.to_int (Json.member "rank" req.Message.payload) in
          let epoch = Json.to_int (Json.member "epoch" req.Message.payload) in
          t.hellos <- t.hellos + 1;
          Hashtbl.replace t.last_hello rank epoch;
          Session.respond t.b req Json.null
        | m -> Session.respond_error t.b req (Printf.sprintf "live: unknown method %S" m));
        Session.Consumed);
    on_event = (fun _ -> ());
  }

let load sess ~(hb : Hb.t array) ?(max_missed = 3) () =
  let instances =
    Array.init (Session.size sess) (fun r ->
        {
          b = Session.broker sess r;
          max_missed;
          period = Hb.period hb.(r);
          last_hello = Hashtbl.create 8;
          last_epoch = 0;
          last_pulse_at = neg_infinity;
          hellos = 0;
          down = [];
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  Array.iteri
    (fun r t ->
      Hb.on_pulse hb.(r) (fun epoch ->
          (* Grace period: treat load time as epoch 0 for every child. *)
          send_hello t epoch;
          check_children t epoch))
    instances;
  (* Rejoin handling: a revived rank gets a fresh liveness clock — it
     drops off every declared-down list and its hello history is erased,
     so its first post-rejoin pulse re-registers it at the then-current
     epoch instead of being judged on pre-blackout history. *)
  Session.add_liveness_watch sess (fun r up ->
      Array.iter
        (fun t ->
          Hashtbl.remove t.last_hello r;
          if up then t.down <- List.filter (fun x -> x <> r) t.down;
          prune_hello_history t)
        instances;
      if up then
        Session.publish instances.(r).b ~topic:"live.up"
          (Json.obj [ ("rank", Json.int r) ]));
  instances
