module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Metrics = Flux_trace.Metrics
module Series = Flux_trace.Series
module Detect = Flux_trace.Detect
module Flight = Flux_trace.Flight
module Tracer = Flux_trace.Tracer

(* Live telemetry plane: in-band TBON metric rollups.

   [mon] ships one scripted scalar per heartbeat; this module
   generalizes its epoch scheme to whole {!Metrics} registry slices.
   Every [interval] sim-seconds each rank snapshots its own slice of
   the registry, diffs it against the previous epoch's snapshot, and
   sends the delta up the tree. Interior ranks merge child deltas with
   their own (dedup'd per child, partial-forwarded on a window
   timeout, exactly [mon]'s accumulator discipline) so the root
   receives one merged cross-rank delta per epoch over O(log n) hops —
   the paper's reduction network carrying the center's run-time
   information instead of a side channel.

   At the root the merged delta lands in a bounded {!Series} store and
   the {!Detect} detectors run: stragglers, queue-growth trends,
   silent ranks. Alerts become [telem.alert] trace events, counters,
   and (first occurrence per rank and cause) {!Flight} dumps, so the
   plane closes the loop from raw metric to preserved evidence.

   Everything is opt-in: nothing samples until {!start}, and a session
   that never loads the module is bit-for-bit unchanged. *)

type config = {
  interval : float; (* sim-seconds between rollup epochs *)
  window : int; (* series ring capacity and trend window *)
  straggler_k : float; (* flag beyond median + k * MAD *)
  slope_threshold : float; (* queue-growth units/epoch *)
  straggler_metrics : string list;
  queue_metrics : string list;
  reduce_window : float; (* partial-forward timeout; <= 0 -> interval / 2 *)
}

let default_config =
  {
    interval = 0.1;
    window = 64;
    straggler_k = 4.0;
    slope_threshold = 1.0;
    straggler_metrics = [];
    queue_metrics = [];
    reduce_window = 0.0;
  }

(* One hop's payload: the merged delta plus the ranks it covers. The
   rank list is carried explicitly because a live rank with a
   zero-change epoch still has an empty delta — coverage cannot be
   inferred from the snap itself, and the silent-rank detector needs
   exactly that distinction. *)
type contribution = { c_ranks : int list; c_snap : Metrics.snap }

let contrib_merge a b =
  {
    c_ranks = List.sort_uniq compare (a.c_ranks @ b.c_ranks);
    c_snap = Metrics.merge a.c_snap b.c_snap;
  }

type epoch_acc = {
  mutable acc : contribution option;
  mutable heard : int list;
  mutable timer_armed : bool;
}

type t = {
  b : Session.broker;
  master : bool;
  cfg : config;
  epochs : (int, epoch_acc) Hashtbl.t;
  mutable forwarded_upto : int; (* late contributions for <= this are dropped *)
  mutable epoch : int; (* local epoch counter, advances every tick *)
  mutable last_snap : Metrics.snap;
  mutable metrics : Metrics.t option;
  mutable tracer : Tracer.t option;
  mutable flight : Flight.t option;
  mutable timer : Engine.handle option;
  mutable sent_bytes : int;
  mutable late : int;
  (* master-only state *)
  series : Series.t;
  mutable alerts : Detect.alert list; (* newest first *)
  mutable rollups : int;
  mutable alert_subs : (Detect.alert -> unit) list; (* registration order *)
  mutable rollup_subs : (int -> unit) list;
}

let reduce_window t =
  if t.cfg.reduce_window > 0.0 then t.cfg.reduce_window else t.cfg.interval /. 2.0

let set_metrics t m = t.metrics <- m
let set_metrics_all ts m = Array.iter (fun t -> set_metrics t (Some m)) ts

(* Subscriptions live on the rollup master (rank 0): that is where
   epochs finalize and alerts are raised. Callbacks run synchronously
   inside the finalize, in registration order, so a same-seed run
   replays the identical alert->action sequence. *)
let on_alert ts f = ts.(0).alert_subs <- ts.(0).alert_subs @ [ f ]
let on_rollup ts f = ts.(0).rollup_subs <- ts.(0).rollup_subs @ [ f ]
let set_tracer_all ts tr = Array.iter (fun t -> t.tracer <- Some tr) ts
let set_flight_all ts f = Array.iter (fun t -> t.flight <- Some f) ts

let acc_get t epoch =
  match Hashtbl.find_opt t.epochs epoch with
  | Some a -> a
  | None ->
    let a = { acc = None; heard = []; timer_armed = false } in
    Hashtbl.replace t.epochs epoch a;
    a

(* Per-rank values the straggler detector compares: histogram means
   from this epoch's delta when the metric has one (latency-style
   metrics), the per-rank gauge last-values otherwise. *)
let straggler_values snap ~metric =
  let from_hists =
    Metrics.snap_hists_of snap ~name:metric
    |> List.filter_map (fun (r, hs) ->
           if hs.Metrics.hs_count > 0 then
             Some (r, hs.Metrics.hs_sum /. float_of_int hs.Metrics.hs_count)
           else None)
  in
  if from_hists <> [] then from_hists else Metrics.snap_gauges_of snap ~name:metric

let handle_alert t al =
  t.alerts <- al :: t.alerts;
  (match t.tracer with
  | Some tr ->
    Tracer.emit tr ~cat:"telem" ~name:"alert" ~rank:al.Detect.al_rank
      ~fields:(Detect.alert_fields al) ()
  | None -> ());
  (match t.metrics with
  | Some m ->
    Metrics.incr m
      ~name:("telem.alert." ^ Detect.kind_to_string al.Detect.al_kind)
      ~rank:(Session.rank t.b)
  | None -> ());
  (* First alert per (rank, kind:metric) preserves the evidence: the
     flight recorder dumps the rank's recent events exactly once even
     when a persistent straggler re-fires every epoch. *)
  (match t.flight with
  | Some f when al.Detect.al_rank >= 0 ->
    ignore
      (Flight.dump_once f ~rank:al.Detect.al_rank
         ~tag:(Detect.kind_to_string al.Detect.al_kind ^ ":" ^ al.Detect.al_metric)
         ~reason:(Format.asprintf "%a" Detect.pp_alert al)
        : Flight.dump option)
  | _ -> ());
  List.iter (fun f -> f al) t.alert_subs

let finalize t epoch c =
  t.rollups <- t.rollups + 1;
  Series.record t.series ~epoch c.c_snap;
  let sess = Session.session_of t.b in
  let stragglers =
    List.concat_map
      (fun metric ->
        Detect.stragglers ~k:t.cfg.straggler_k ~epoch ~metric
          (straggler_values c.c_snap ~metric))
      t.cfg.straggler_metrics
  in
  let growth =
    List.concat_map
      (fun metric ->
        Detect.queue_growth ~slope_threshold:t.cfg.slope_threshold ~epoch ~metric
          (Series.tail_scalars t.series ~name:metric ~n:t.cfg.window))
      t.cfg.queue_metrics
  in
  let expected = List.init (Session.size sess) Fun.id in
  let down = List.filter (Session.is_down sess) expected in
  let silent = Detect.silent_ranks ~epoch ~expected ~heard:c.c_ranks ~down in
  let alerts = stragglers @ growth @ silent in
  (match t.tracer with
  | Some tr ->
    Tracer.emit tr ~cat:"telem" ~name:"rollup" ~rank:(Session.rank t.b)
      ~fields:
        [
          ("epoch", Json.int epoch);
          ("ranks", Json.int (List.length c.c_ranks));
          ("alerts", Json.int (List.length alerts));
        ]
      ()
  | None -> ());
  List.iter (handle_alert t) alerts;
  List.iter (fun f -> f epoch) t.rollup_subs

let forward t epoch a =
  match a.acc with
  | None -> Hashtbl.remove t.epochs epoch
  | Some c ->
    a.acc <- None;
    Hashtbl.remove t.epochs epoch;
    if epoch > t.forwarded_upto then t.forwarded_upto <- epoch;
    if t.master then finalize t epoch c
    else begin
      let payload =
        Json.obj
          [
            ("epoch", Json.int epoch);
            ("ranks", Json.list (List.map Json.int c.c_ranks));
            ("snap", Metrics.snap_to_json c.c_snap);
          ]
      in
      (* The rollup's own cost is part of the telemetry it carries:
         wire bytes are charged per sending rank, so the overhead of
         the plane shows up in its own series. *)
      let bytes = Json.serialized_size payload in
      t.sent_bytes <- t.sent_bytes + bytes;
      (match t.metrics with
      | Some m ->
        let rank = Session.rank t.b in
        Metrics.add m ~name:"telem.rollup.bytes" ~rank bytes;
        Metrics.incr m ~name:"telem.rollup.msgs" ~rank
      | None -> ());
      (* Safe to retransmit: the parent folds at most one contribution
         per (child, epoch) — the [heard] guard in [contribute]. *)
      Session.request_from_module t.b ~idempotent:true ~topic:"telem.reduce" payload
        ~reply:(fun _ -> ())
    end

let check_ready t epoch a =
  let sess = Session.session_of t.b in
  let children = Session.tree_children t.b in
  (* A dead child will never report; waiting for it would stall every
     epoch until the window timeout. Known-down children are excused —
     the root's silent-rank detector still sees the coverage gap. *)
  let all_heard =
    List.for_all (fun c -> Session.is_down sess c || List.mem c a.heard) children
  in
  if all_heard then forward t epoch a

(* Partial-forward timeouts must fire child-before-parent or a slow
   subtree's partial arrives just after its parent already forwarded
   and is dropped as late all the way up. Scale each node's window by
   how far it is from the leaves (approximated from the static tree
   shape), so deeper accumulators give up first and their partials
   still make the next hop's deadline. *)
let levels t =
  let sess = Session.session_of t.b in
  let f = max 2 (Session.fanout sess) in
  let n = Session.size sess in
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log (float_of_int f)))

let depth_of t =
  let sess = Session.session_of t.b in
  let rec go b acc =
    match Session.tree_parent b with
    | None -> acc
    | Some p -> go (Session.broker sess p) (acc + 1)
  in
  go t.b 0

let arm_timer t epoch a =
  if not a.timer_armed then begin
    a.timer_armed <- true;
    let mult = max 1 (1 + levels t - depth_of t) in
    ignore
      (Engine.schedule (Session.b_engine t.b)
         ~delay:(reduce_window t *. float_of_int mult)
         (fun () -> forward t epoch a)
        : Engine.handle)
  end

let contribute t ~epoch ~from_child c =
  if epoch <= t.forwarded_upto then begin
    (* This epoch already left: merging now would double-report the
       subtree in a second partial. Drop and count; the root flags the
       gap as a silent rank if the straggling subtree matters. *)
    t.late <- t.late + 1;
    match t.metrics with
    | Some m -> Metrics.incr m ~name:"telem.late_drop" ~rank:(Session.rank t.b)
    | None -> ()
  end
  else begin
    let duplicate =
      match from_child with
      | Some ch -> List.mem ch (acc_get t epoch).heard
      | None -> false
    in
    if not duplicate then begin
      let a = acc_get t epoch in
      a.acc <- (match a.acc with None -> Some c | Some prev -> Some (contrib_merge prev c));
      (match from_child with
      | Some ch -> a.heard <- ch :: a.heard
      | None -> ());
      arm_timer t epoch a;
      check_ready t epoch a
    end
  end

let on_tick t =
  (* The epoch counter advances even while this rank is down so a
     revived rank rejoins the cluster-wide epoch numbering instead of
     contributing stale epochs forever. *)
  t.epoch <- t.epoch + 1;
  let sess = Session.session_of t.b in
  let rank = Session.rank t.b in
  if not (Session.is_down sess rank) then begin
    (match t.metrics with
    | Some m -> Metrics.incr m ~name:"telem.ticks" ~rank
    | None -> ());
    let next =
      match t.metrics with None -> Metrics.snap_empty | Some m -> Metrics.snapshot ~rank m
    in
    let delta = Metrics.diff ~base:t.last_snap next in
    t.last_snap <- next;
    contribute t ~epoch:t.epoch ~from_child:None { c_ranks = [ rank ]; c_snap = delta }
  end

let module_of t =
  {
    Session.mod_name = "telem";
    on_request =
      (fun (req : Message.t) ->
        (match Topic.method_ req.Message.topic with
        | "reduce" ->
          let p = req.Message.payload in
          let epoch = Json.to_int (Json.member "epoch" p) in
          let ranks = List.map Json.to_int (Json.to_list (Json.member "ranks" p)) in
          let snap = Metrics.snap_of_json (Json.member "snap" p) in
          contribute t ~epoch ~from_child:(Some req.Message.origin)
            { c_ranks = ranks; c_snap = snap };
          Session.respond t.b req Json.null
        | m -> Session.respond_error t.b req (Printf.sprintf "telem: unknown method %S" m));
        Session.Consumed);
    on_event = (fun _ -> ());
  }

let load sess ?(config = default_config) () =
  if config.interval <= 0.0 then invalid_arg "Telem.load: interval must be positive";
  if config.window <= 0 then invalid_arg "Telem.load: window must be positive";
  let instances =
    Array.init (Session.size sess) (fun r ->
        {
          b = Session.broker sess r;
          master = r = 0;
          cfg = config;
          epochs = Hashtbl.create 8;
          forwarded_upto = 0;
          epoch = 0;
          last_snap = Metrics.snap_empty;
          metrics = None;
          tracer = None;
          flight = None;
          timer = None;
          sent_bytes = 0;
          late = 0;
          series = Series.create ~window:config.window ();
          alerts = [];
          rollups = 0;
          alert_subs = [];
          rollup_subs = [];
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  (* The moment a rank is marked down its recent history is still in
     the flight ring; dump it before the trace moves on. *)
  Session.add_liveness_watch sess (fun r up ->
      if not up then
        match instances.(0).flight with
        | Some f -> ignore (Flight.dump f ~rank:r ~reason:"mark_down" : Flight.dump)
        | None -> ());
  instances

(* Fault injection for harnesses: the rank's telemetry agent dies
   while its broker stays up — exactly the "expected sample missing
   without a mark_down" case the silent-rank detector exists for. *)
let mute ts ~rank =
  let t = ts.(rank) in
  match t.timer with
  | None -> ()
  | Some h ->
    Engine.cancel h;
    t.timer <- None

let stop ts =
  Array.iter
    (fun t ->
      match t.timer with
      | None -> ()
      | Some h ->
        Engine.cancel h;
        t.timer <- None)
    ts

let start ?until ts =
  Array.iter
    (fun t ->
      match t.timer with
      | Some _ -> ()
      | None ->
        t.timer <-
          Some (Engine.every (Session.b_engine t.b) ~period:t.cfg.interval (fun () -> on_tick t)))
    ts;
  match until with
  | None -> ()
  | Some d ->
    if d <= 0.0 then invalid_arg "Telem.start: until must be positive";
    ignore
      (Engine.schedule (Session.b_engine ts.(0).b) ~delay:d (fun () -> stop ts)
        : Engine.handle)

let series ts = ts.(0).series
let alerts ts = List.rev ts.(0).alerts
let epochs_completed ts = ts.(0).rollups
let rollup_bytes ts = Array.fold_left (fun acc t -> acc + t.sent_bytes) 0 ts
let late_drops ts = Array.fold_left (fun acc t -> acc + t.late) 0 ts
let local_epoch t = t.epoch
