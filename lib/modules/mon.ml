module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Metrics = Flux_trace.Metrics

type sample = { s_min : float; s_max : float; s_sum : float; s_count : int }

let sample_of_value v = { s_min = v; s_max = v; s_sum = v; s_count = 1 }

let sample_merge a b =
  {
    s_min = Float.min a.s_min b.s_min;
    s_max = Float.max a.s_max b.s_max;
    s_sum = a.s_sum +. b.s_sum;
    s_count = a.s_count + b.s_count;
  }

let sample_to_json s =
  Json.obj
    [
      ("min", Json.float s.s_min);
      ("max", Json.float s.s_max);
      ("sum", Json.float s.s_sum);
      ("count", Json.int s.s_count);
    ]

let sample_of_json j =
  {
    s_min = Json.to_float (Json.member "min" j);
    s_max = Json.to_float (Json.member "max" j);
    s_sum = Json.to_float (Json.member "sum" j);
    s_count = Json.to_int (Json.member "count" j);
  }

let samplers : (string, rank:int -> epoch:int -> float) Hashtbl.t = Hashtbl.create 8

let register_sampler name f = Hashtbl.replace samplers name f

(* Per-epoch reduction state. *)
type epoch_acc = {
  mutable acc : sample option;
  mutable heard : int list;
  mutable timer_armed : bool;
}

type t = {
  b : Session.broker;
  master : bool;
  mutable script : string option; (* from conf.mon.script via KVS watch *)
  epochs : (int, epoch_acc) Hashtbl.t;
  mutable latest : (int * sample) option;
  mutable taken : int;
  window : float;
  mutable metrics : Metrics.t option;
}

let latest_aggregate t = t.latest
let samples_taken t = t.taken

let set_metrics t m = t.metrics <- m
let set_metrics_all ts m = Array.iter (fun t -> set_metrics t (Some m)) ts

let acc_get t epoch =
  match Hashtbl.find_opt t.epochs epoch with
  | Some a -> a
  | None ->
    let a = { acc = None; heard = []; timer_armed = false } in
    Hashtbl.replace t.epochs epoch a;
    a

let kvs_put_root t ~key value =
  (* The root stores the aggregate under mon.<script>.<epoch> through
     its local kvs module's atomic put-and-commit. *)
  Session.request_up t.b ~topic:"kvs.mput"
    (Json.obj
       [ ("bindings", Json.list [ Json.obj [ ("key", Json.string key); ("v", value) ] ]) ])
    ~reply:(fun _ -> ())

let forward t epoch a =
  match a.acc with
  | None -> ()
  | Some s ->
    a.acc <- None;
    Hashtbl.remove t.epochs epoch;
    if t.master then begin
      t.latest <- Some (epoch, s);
      (match t.metrics with
      | None -> ()
      | Some m ->
        let rank = Session.rank t.b in
        Metrics.incr m ~name:"mon.aggregates" ~rank;
        Metrics.set_gauge m ~name:"mon.epoch" ~rank (float_of_int epoch);
        if s.s_count > 0 then
          Metrics.observe m ~name:"mon.aggregate.mean" ~rank
            (s.s_sum /. float_of_int s.s_count));
      match t.script with
      | Some name ->
        kvs_put_root t ~key:(Printf.sprintf "mon.%s.%d" name epoch) (sample_to_json s)
      | None -> ()
    end
    else
      (* Safe to retransmit: the parent folds at most one contribution
         per (child, epoch) — see the [heard] guard in [contribute]. *)
      Session.request_from_module t.b ~idempotent:true ~topic:"mon.reduce"
        (Json.obj [ ("epoch", Json.int epoch); ("sample", sample_to_json s) ])
        ~reply:(fun _ -> ())

let check_ready t epoch a =
  let children = Session.tree_children t.b in
  let all_heard = List.for_all (fun c -> List.mem c a.heard) children in
  if all_heard then forward t epoch a

let arm_timer t epoch a =
  if not a.timer_armed then begin
    a.timer_armed <- true;
    ignore
      (Engine.schedule (Session.b_engine t.b) ~delay:t.window (fun () -> forward t epoch a)
        : Engine.handle)
  end

let contribute t ~epoch ~from_child s =
  (* Each child forwards once per epoch, so a second arrival from the
     same child is a retransmitted duplicate: drop it instead of
     double-merging its sample. *)
  let duplicate =
    match from_child with Some c -> List.mem c (acc_get t epoch).heard | None -> false
  in
  if not duplicate then begin
    let a = acc_get t epoch in
    a.acc <- (match a.acc with None -> Some s | Some prev -> Some (sample_merge prev s));
    (match from_child with
    | Some c -> if not (List.mem c a.heard) then a.heard <- c :: a.heard
    | None -> ());
    arm_timer t epoch a;
    check_ready t epoch a
  end

let on_heartbeat t epoch =
  match t.script with
  | None -> ()
  | Some name -> (
    match Hashtbl.find_opt samplers name with
    | None -> ()
    | Some f ->
      t.taken <- t.taken + 1;
      let v = f ~rank:(Session.rank t.b) ~epoch in
      (match t.metrics with
      | None -> ()
      | Some m -> Metrics.incr m ~name:"mon.samples" ~rank:(Session.rank t.b));
      contribute t ~epoch ~from_child:None (sample_of_value v))

let module_of t =
  {
    Session.mod_name = "mon";
    on_request =
      (fun (req : Message.t) ->
        (match Topic.method_ req.Message.topic with
        | "reduce" ->
          let epoch = Json.to_int (Json.member "epoch" req.Message.payload) in
          let s = sample_of_json (Json.member "sample" req.Message.payload) in
          contribute t ~epoch ~from_child:(Some req.Message.origin) s;
          Session.respond t.b req Json.null
        | m -> Session.respond_error t.b req (Printf.sprintf "mon: unknown method %S" m));
        Session.Consumed);
    on_event =
      (fun (ev : Message.t) ->
        (* Activation rides the KVS: every setroot, re-read the config
           key (cheap: it is cached after the first fault-in). *)
        if String.equal ev.Message.topic "kvs.setroot" then
          Session.request_up t.b ~idempotent:true ~topic:"kvs.get"
            (Json.obj [ ("key", Json.string "conf.mon.script") ])
            ~reply:(fun r ->
              match r with
              | Ok payload -> (
                match Json.member "v" payload with
                | Json.String s when s <> "" -> t.script <- Some s
                | _ -> t.script <- None)
              | Error _ -> t.script <- None))
  }

let load sess ~(hb : Hb.t array) () =
  let instances =
    Array.init (Session.size sess) (fun r ->
        {
          b = Session.broker sess r;
          master = r = 0;
          script = None;
          epochs = Hashtbl.create 8;
          latest = None;
          taken = 0;
          window = Hb.period hb.(r) /. 2.0;
          metrics = None;
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  Array.iteri (fun r t -> Hb.on_pulse hb.(r) (fun epoch -> on_heartbeat t epoch)) instances;
  instances

let set_script api value =
  match
    Flux_cmb.Api.rpc api ~topic:"kvs.mput"
      (Json.obj
         [
           ( "bindings",
             Json.list
               [ Json.obj [ ("key", Json.string "conf.mon.script"); ("v", value) ] ] );
         ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let activate api ~script = set_script api (Json.string script)
let deactivate api = set_script api (Json.string "")
