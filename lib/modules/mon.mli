(** The [mon] comms module (Table I): sampling "scripts" stored in the
    KVS activate heartbeat-synchronized sampling; samples are reduced up
    the tree and the aggregate is stored back into the KVS.

    In the prototype the scripts are Linux shell snippets; here a
    sampler is an OCaml function registered by name — the activation
    path (name under [conf.mon.script] in the KVS, picked up by every
    rank on the heartbeat) is preserved. *)

type sample = { s_min : float; s_max : float; s_sum : float; s_count : int }

type t

val register_sampler : string -> (rank:int -> epoch:int -> float) -> unit
(** Globally register a sampler implementation. *)

val load : Flux_cmb.Session.t -> hb:Hb.t array -> unit -> t array

val activate : Flux_cmb.Api.t -> script:string -> (unit, string) result
(** Store the sampler name in the KVS ([conf.mon.script]) and commit;
    sampling starts at the next heartbeat on every rank. Blocking. *)

val deactivate : Flux_cmb.Api.t -> (unit, string) result

val latest_aggregate : t -> (int * sample) option
(** Root only: last (epoch, aggregate) written to the KVS under
    [mon.<script>.<epoch>]. *)

val samples_taken : t -> int

val set_metrics : t -> Flux_trace.Metrics.t option -> unit
(** Per-rank registry wiring: every heartbeat sample bumps
    [mon.samples]; each completed epoch at the root bumps
    [mon.aggregates], sets the [mon.epoch] gauge and feeds the epoch
    mean into the [mon.aggregate.mean] histogram. *)

val set_metrics_all : t array -> Flux_trace.Metrics.t -> unit
