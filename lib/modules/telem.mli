(** Live telemetry plane: in-band TBON metric rollups.

    Generalizes {!Mon}'s epoch scheme from one scripted scalar to
    whole {!Flux_trace.Metrics} registry slices. Every [interval]
    sim-seconds each rank diffs its own slice against the previous
    epoch and ships the delta up the tree; interior ranks merge child
    deltas with their own (per-child dedup, partial forward on a
    window timeout) so the root sees one merged cross-rank delta per
    epoch over O(log n) hops — run-time information flowing through
    the paper's reduction network rather than a side channel.

    The root folds each epoch into a bounded {!Flux_trace.Series}
    store and runs the {!Flux_trace.Detect} detectors (stragglers,
    queue-growth trends, silent ranks). Alerts surface as
    [telem.alert] trace events, [telem.alert.*] counters, and — once
    per (rank, cause) — {!Flux_trace.Flight} dumps. Marked-down ranks
    are flight-dumped at the instant of the mark.

    Everything is opt-in: nothing samples until {!start}, and runs
    that never load the module are bit-for-bit unchanged. *)

module Metrics = Flux_trace.Metrics
module Series = Flux_trace.Series
module Detect = Flux_trace.Detect

type config = {
  interval : float;  (** sim-seconds between rollup epochs *)
  window : int;  (** series ring capacity and trend window *)
  straggler_k : float;  (** flag ranks beyond median + k * MAD *)
  slope_threshold : float;  (** queue-growth alert slope, units/epoch *)
  straggler_metrics : string list;
      (** metrics scanned for cross-rank outliers (histogram mean per
          rank when present, else per-rank gauge values) *)
  queue_metrics : string list;
      (** metrics trend-checked at the root over the last [window]
          epochs *)
  reduce_window : float;
      (** partial-forward timeout for an epoch's reduction; [<= 0]
          means [interval /. 2] *)
}

val default_config : config
(** interval 0.1 s, window 64, k 4.0, slope 1.0/epoch, no metrics
    watched (detectors idle until told what matters). *)

type t

val load : Flux_cmb.Session.t -> ?config:config -> unit -> t array
(** Load the module on every rank (index = rank; index 0 is the
    rollup master). Registers a liveness watch that flight-dumps any
    rank at the moment it is marked down (once a recorder is attached
    via {!set_flight_all}). Sampling does not begin until {!start}.
    Raises [Invalid_argument] on a non-positive [interval] or
    [window]. *)

val set_metrics_all : t array -> Metrics.t -> unit
(** Attach the registry the plane samples (and records its own
    counters into: [telem.ticks], [telem.rollup.bytes/msgs],
    [telem.late_drop], [telem.alert.*]). Without a registry ticks
    still run but deltas are empty. *)

val set_tracer_all : t array -> Flux_trace.Tracer.t -> unit
(** Root emits [telem.rollup] per epoch and [telem.alert] per alert. *)

val set_flight_all : t array -> Flux_trace.Flight.t -> unit
(** Attach the flight recorder alert- and mark_down-triggered dumps go
    to. *)

val start : ?until:float -> t array -> unit
(** Arm every rank's rollup timer (period [interval], first tick one
    interval from now). [?until] schedules {!stop} that many
    sim-seconds from now so a harness's engine can drain; without it
    the recurring timers keep the engine alive until {!stop} is
    called. Idempotent while running. *)

val stop : t array -> unit
(** Cancel the rollup timers. In-flight epoch reductions complete. *)

val mute : t array -> rank:int -> unit
(** Fault injection: kill one rank's telemetry agent while its broker
    stays up — the silent-rank case the detector exists for. *)

val on_alert : t array -> (Detect.alert -> unit) -> unit
(** Subscribe to the root's [telem.alert] stream. Callbacks run
    synchronously as each alert is raised (after the trace event,
    counter, and flight dump), in registration order — the hook an
    elasticity controller hangs its grow trigger on. Same-seed runs
    replay the identical callback sequence. *)

val on_rollup : t array -> (int -> unit) -> unit
(** Subscribe to epoch finalization at the root: called with the epoch
    number after its delta is folded into {!series} and its detectors
    have run. The liveness signal controllers use to tell "telemetry is
    quiet" from "telemetry is dead". *)

val series : t array -> Series.t
(** The root's per-metric time series. *)

val alerts : t array -> Detect.alert list
(** Every alert the root raised, in emission order. Same-seed runs
    produce identical sequences. *)

val epochs_completed : t array -> int
(** Rollup epochs the root finalized. *)

val rollup_bytes : t array -> int
(** Total in-band payload bytes sent up the tree (sum over edges). *)

val late_drops : t array -> int
(** Contributions that arrived after their epoch was forwarded. *)

val local_epoch : t -> int
(** One rank's tick count (advances even while the rank is down). *)
