module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Tracer = Flux_trace.Tracer

type barrier_state = {
  mutable bs_count : int; (* not yet forwarded *)
  mutable bs_heard : int list;
  mutable bs_pending : Message.t list;
  mutable bs_timer_armed : bool;
  mutable bs_last_arrival : float;
  mutable bs_ctx : Tracer.ctx option; (* causal parent for the next forward *)
  bs_nprocs : int;
}

(* Receiver-side duplicate suppression for retransmitted aggregate
   enters, keyed ([origin], [bid]); mirrors the KVS flush dedup. *)
type enter_dup = {
  mutable ed_result : (Json.t, string) result option;
  mutable ed_waiting : Message.t list;
}

type t = {
  b : Session.broker;
  eng : Engine.t;
  window : float;
  max_pending : int; (* 0 = unbounded; else shed direct enters past this *)
  master : bool;
  states : (string, barrier_state) Hashtbl.t;
  master_counts : (string, int * Message.t list) Hashtbl.t;
  mutable next_bid : int; (* stamps forwarded aggregates for dedup *)
  seen : (int * int, enter_dup) Hashtbl.t; (* (origin, bid) *)
  mutable total_enters : int;
  mutable shed_enters : int;
  mutable tracer : Tracer.t option;
}

let enters_seen t = t.total_enters
let sheds t = t.shed_enters

let set_tracer t tr = t.tracer <- tr
let set_tracer_all ts tr = Array.iter (fun t -> set_tracer t (Some tr)) ts

let trace t ~name ?ctx ?(fields = []) () =
  match t.tracer with
  | None -> ()
  | Some tr ->
    Tracer.emit tr ~cat:"barrier" ~name ~rank:(Session.rank t.b) ?ctx ~fields ()

let child_span t parent =
  match (t.tracer, parent) with
  | Some tr, Some c -> Some (Tracer.child_ctx tr c)
  | _ -> None

let state_get t name nprocs =
  match Hashtbl.find_opt t.states name with
  | Some s -> s
  | None ->
    let s =
      {
        bs_count = 0;
        bs_heard = [];
        bs_pending = [];
        bs_timer_armed = false;
        bs_last_arrival = 0.0;
        bs_ctx = None;
        bs_nprocs = nprocs;
      }
    in
    Hashtbl.replace t.states name s;
    s

(* Respond to [req] and, if it was a deduplicated aggregate, record the
   result so retransmits are answered without being re-counted. *)
let respond_enter t (req : Message.t) result =
  let answer q =
    match result with
    | Ok payload -> Session.respond t.b q payload
    | Error e -> Session.respond_error t.b q e
  in
  answer req;
  match Json.member_opt "bid" req.Message.payload with
  | None -> ()
  | Some bj -> (
    match Hashtbl.find_opt t.seen (req.Message.origin, Json.to_int bj) with
    | Some d ->
      d.ed_result <- Some result;
      let waiting = d.ed_waiting in
      d.ed_waiting <- [];
      List.iter answer waiting
    | None -> ())

let forward t name s =
  let count = s.bs_count in
  let pending = s.bs_pending in
  s.bs_count <- 0;
  s.bs_pending <- [];
  let bid = t.next_bid in
  t.next_bid <- t.next_bid + 1;
  let ctx = child_span t s.bs_ctx in
  s.bs_ctx <- None;
  trace t ~name:"forward" ?ctx
    ~fields:
      [ ("name", Json.string name); ("count", Json.int count); ("bid", Json.int bid) ]
    ();
  let payload =
    Json.obj
      [
        ("name", Json.string name);
        ("nprocs", Json.int s.bs_nprocs);
        ("count", Json.int count);
        ("bid", Json.int bid);
      ]
  in
  (* The reply blocks until the whole barrier completes, so the deadline
     must cover a slow collective; the bid lets the parent suppress the
     duplicate count if an attempt's response is lost. *)
  Session.request_from_module t.b ~timeout:30.0 ~idempotent:true ?trace_ctx:ctx
    ~topic:"barrier.enter" payload ~reply:(fun r ->
      (match r with
      | Ok _ -> List.iter (fun req -> respond_enter t req (Ok Json.null)) pending
      | Error e -> List.iter (fun req -> respond_enter t req (Error e)) pending);
      if s.bs_count = 0 && s.bs_pending = [] then Hashtbl.remove t.states name)

let rec check_ready t name s =
  if s.bs_count > 0 then begin
    let children = Session.tree_children t.b in
    let all_heard = List.for_all (fun c -> List.mem c s.bs_heard) children in
    let idle = Engine.now t.eng -. s.bs_last_arrival in
    if
      s.bs_count >= s.bs_nprocs
      || (all_heard && idle >= t.window /. 2.0)
      || idle >= 2.0 *. t.window
    then forward t name s
    else arm t name s (t.window /. 4.0)
  end

and arm t name s delay =
  if not s.bs_timer_armed then begin
    s.bs_timer_armed <- true;
    ignore
      (Engine.schedule t.eng ~delay (fun () ->
           s.bs_timer_armed <- false;
           check_ready t name s)
        : Engine.handle)
  end

let master_contribute t name nprocs count req =
  let total, pending =
    match Hashtbl.find_opt t.master_counts name with
    | Some (c, p) -> (c + count, req :: p)
    | None -> (count, [ req ])
  in
  if total >= nprocs then begin
    Hashtbl.remove t.master_counts name;
    let ctx = child_span t req.Message.trace in
    trace t ~name:"exit" ?ctx
      ~fields:[ ("name", Json.string name); ("nprocs", Json.int nprocs) ]
      ();
    List.iter (fun r -> respond_enter t r (Ok Json.null)) pending;
    Session.publish t.b ?trace_ctx:ctx ~topic:"barrier.exit"
      (Json.obj [ ("name", Json.string name) ])
  end
  else Hashtbl.replace t.master_counts name (total, pending)

(* Replies this instance is already holding for [name]. Aggregation
   merges counts as they arrive, so the only per-enter state that grows
   without bound under overload is this reply list. *)
let pending_depth t name =
  if t.master then
    match Hashtbl.find_opt t.master_counts name with
    | Some (_, p) -> List.length p
    | None -> 0
  else
    match Hashtbl.find_opt t.states name with
    | Some s -> List.length s.bs_pending
    | None -> 0

let contribute t ~name ~nprocs ~count ~from_child req =
  if from_child = None && t.max_pending > 0 && pending_depth t name >= t.max_pending then begin
    (* Shed only direct client enters: an aggregate from a child carries
       its whole subtree's counts, and dropping it would wedge the
       collective. A shed client was never counted, so it can simply
       re-enter after the hinted delay. *)
    t.shed_enters <- t.shed_enters + 1;
    trace t ~name:"shed" ?ctx:req.Message.trace ~fields:[ ("name", Json.string name) ] ();
    Session.respond_error t.b req (Session.busy_error ~retry_after:t.window)
  end
  else begin
  t.total_enters <- t.total_enters + count;
  (match from_child with
  | None ->
    trace t ~name:"enter" ?ctx:req.Message.trace
      ~fields:[ ("name", Json.string name); ("nprocs", Json.int nprocs) ]
      ()
  | Some _ -> ());
  if t.master then master_contribute t name nprocs count req
  else begin
    let s = state_get t name nprocs in
    s.bs_count <- s.bs_count + count;
    s.bs_pending <- req :: s.bs_pending;
    (match (s.bs_ctx, req.Message.trace) with
    | None, (Some _ as c) -> s.bs_ctx <- c
    | _ -> ());
    (match from_child with
    | Some c -> if not (List.mem c s.bs_heard) then s.bs_heard <- c :: s.bs_heard
    | None -> ());
    s.bs_last_arrival <- Engine.now t.eng;
    if s.bs_count >= s.bs_nprocs then check_ready t name s
    else arm t name s (t.window /. 2.0)
  end
  end

let module_of t =
  {
    Session.mod_name = "barrier";
    on_request =
      (fun (req : Message.t) ->
        (match Topic.method_ req.Message.topic with
        | "enter" ->
          let p = req.Message.payload in
          let duplicate =
            match Json.member_opt "bid" p with
            | None -> false
            | Some bj -> (
              let key = (req.Message.origin, Json.to_int bj) in
              match Hashtbl.find_opt t.seen key with
              | Some d ->
                (match d.ed_result with
                | Some (Ok payload) -> Session.respond t.b req payload
                | Some (Error e) -> Session.respond_error t.b req e
                | None -> d.ed_waiting <- req :: d.ed_waiting);
                true
              | None ->
                Hashtbl.replace t.seen key { ed_result = None; ed_waiting = [] };
                false)
          in
          if not duplicate then begin
            let name = Json.to_string_v (Json.member "name" p) in
            let nprocs = Json.to_int (Json.member "nprocs" p) in
            let count =
              match Json.member_opt "count" p with Some c -> Json.to_int c | None -> 1
            in
            let from_child =
              (* Aggregated contributions come from a child instance; a
                 client enter originates at this very rank. *)
              if req.Message.origin = Session.rank t.b then None else Some req.Message.origin
            in
            contribute t ~name ~nprocs ~count ~from_child req
          end
        | m -> Session.respond_error t.b req (Printf.sprintf "barrier: unknown method %S" m));
        Session.Consumed);
    on_event = (fun _ -> ());
  }

let load sess ?(window = 200e-6) ?(max_pending = 0) () =
  if max_pending < 0 then invalid_arg "Barrier.load: max_pending must be >= 0";
  let instances =
    Array.init (Session.size sess) (fun r ->
        let b = Session.broker sess r in
        {
          b;
          eng = Session.b_engine b;
          window;
          max_pending;
          master = r = 0;
          states = Hashtbl.create 8;
          master_counts = Hashtbl.create 8;
          next_bid = 0;
          seen = Hashtbl.create 16;
          total_enters = 0;
          shed_enters = 0;
          tracer = None;
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  instances

let enter api ~name ~nprocs =
  (* A barrier blocks until all [nprocs] participants enter: no deadline. *)
  match
    Flux_cmb.Api.rpc api ~timeout:infinity ~topic:"barrier.enter"
      (Json.obj [ ("name", Json.string name); ("nprocs", Json.int nprocs) ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error e
