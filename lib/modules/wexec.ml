module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Message = Flux_cmb.Message
module Topic = Flux_cmb.Topic
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Api = Flux_cmb.Api
module Client = Flux_kvs.Client
module Kproto = Flux_kvs.Proto
module Sha1 = Flux_sha1.Sha1
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics

type proc_ctx = {
  px_rank : int;
  px_local_index : int;
  px_global_index : int;
  px_ntasks : int;
  px_jobid : string;
  px_args : Json.t;
  px_api : Api.t;
  px_kvs : Client.t;
  px_printf : string -> unit;
}

exception Task_failure of string

let programs : (string, proc_ctx -> unit) Hashtbl.t = Hashtbl.create 16

let register_program name f = Hashtbl.replace programs name f

type job_local = {
  mutable jl_pids : Proc.pid list;
  mutable jl_remaining : int;
  mutable jl_failed : int;
  mutable jl_killed : bool;
}

type master_job = {
  mj_total : int; (* expected task completions *)
  mutable mj_done : int;
  mutable mj_failed : int;
  mj_per_rank : int;
  mj_ranks : int list; (* participant ranks at launch *)
  mj_rank_done : (int, int) Hashtbl.t; (* completions attributed per rank *)
  mj_ctx : Tracer.ctx option; (* causal ctx of the launching RPC *)
}

type t = {
  b : Session.broker;
  master : bool;
  jobs : (string, job_local) Hashtbl.t;
  master_jobs : (string, master_job) Hashtbl.t;
  mutable wx_tracer : Tracer.t option;
  mutable wx_metrics : Metrics.t option;
}

let running_tasks t =
  Hashtbl.fold (fun _ jl acc -> acc + jl.jl_remaining) t.jobs 0

let set_tracer_all ts tr = Array.iter (fun t -> t.wx_tracer <- tr) ts
let set_metrics_all ts m = Array.iter (fun t -> t.wx_metrics <- Some m) ts

(* Lifecycle events ride the tracer ctx carried out-of-band in message
   envelopes, so enabling them never perturbs payload sizes or simulated
   timing: trace on/off is bit-for-bit unobservable to the run. *)
let wemit t ~name ?parent ?fields () =
  match t.wx_tracer with
  | None -> ()
  | Some tr ->
    let ctx = Option.map (Tracer.child_ctx tr) parent in
    Tracer.emit tr ~cat:"wexec" ~name ~rank:(Session.rank t.b) ?ctx ?fields ()

let wchild t parent =
  match (t.wx_tracer, parent) with
  | Some tr, Some c -> Some (Tracer.child_ctx tr c)
  | _ -> None

let wcount t ~name n =
  match t.wx_metrics with
  | Some m -> Metrics.add m ~name ~rank:(Session.rank t.b) n
  | None -> ()

(* Report local completions to the root (Pass-chains up the tree). The
   reporting rank rides along so the master can attribute completions
   per rank — the bookkeeping that lets a dead rank's unreported tasks
   be accounted as failures exactly once. *)
let report_done t ~jobid ~count ~failed =
  Session.request_from_module t.b ~topic:"wexec.done"
    (Json.obj
       [
         ("jobid", Json.string jobid);
         ("count", Json.int count);
         ("failed", Json.int failed);
         ("rank", Json.int (Session.rank t.b));
       ])
    ~reply:(fun _ -> ())

(* When the reporting rank is known, its contribution is clamped to the
   per-rank task count: a completion report racing the same rank's
   death-accounting (either order) can then never double-count, so the
   job completes exactly once with consistent totals. *)
let master_account t ~jobid ?rank ~count ~failed () =
  match Hashtbl.find_opt t.master_jobs jobid with
  | None -> () (* unknown job: stale completion after kill cleanup *)
  | Some mj ->
    let count, failed =
      match rank with
      | None -> (count, failed)
      | Some r ->
        let prior = Option.value ~default:0 (Hashtbl.find_opt mj.mj_rank_done r) in
        let take = min count (mj.mj_per_rank - prior) in
        Hashtbl.replace mj.mj_rank_done r (prior + take);
        (take, min failed take)
    in
    mj.mj_done <- mj.mj_done + count;
    mj.mj_failed <- mj.mj_failed + failed;
    if mj.mj_done >= mj.mj_total then begin
      Hashtbl.remove t.master_jobs jobid;
      wcount t ~name:"wexec.jobs.completed" 1;
      let ctx = wchild t mj.mj_ctx in
      (match t.wx_tracer with
      | Some tr ->
        Tracer.emit tr ~cat:"wexec" ~name:"complete" ~rank:(Session.rank t.b) ?ctx
          ~fields:
            [
              ("jobid", Json.string jobid);
              ("ntasks", Json.int mj.mj_total);
              ("failed", Json.int mj.mj_failed);
            ]
          ()
      | None -> ());
      Session.publish t.b ?trace_ctx:ctx ~topic:("wexec.complete." ^ jobid)
        (Json.obj
           [
             ("jobid", Json.string jobid);
             ("ntasks", Json.int mj.mj_total);
             ("failed", Json.int mj.mj_failed);
           ])
    end

let task_finished t ~jobid ~failed =
  match Hashtbl.find_opt t.jobs jobid with
  | None -> ()
  | Some jl ->
    jl.jl_remaining <- jl.jl_remaining - 1;
    wcount t ~name:(if failed then "wexec.tasks.failed" else "wexec.tasks.done") 1;
    if failed then jl.jl_failed <- jl.jl_failed + 1;
    if jl.jl_remaining = 0 then begin
      let count = List.length jl.jl_pids in
      let failed_n = jl.jl_failed in
      Hashtbl.remove t.jobs jobid;
      if t.master then
        master_account t ~jobid ~rank:(Session.rank t.b) ~count ~failed:failed_n ()
      else report_done t ~jobid ~count ~failed:failed_n
    end

let start_local_tasks t ~jobid ~prog ~args ~per_rank ~rank_index ~ntasks =
  let eng = Session.b_engine t.b in
  let sess = Session.session_of t.b in
  let rank = Session.rank t.b in
  match Hashtbl.find_opt programs prog with
  | None ->
    (* Unknown program: report all local tasks as failed. *)
    if t.master then
      master_account t ~jobid ~rank:(Session.rank t.b) ~count:per_rank ~failed:per_rank ()
    else report_done t ~jobid ~count:per_rank ~failed:per_rank
  | Some body ->
    let jl = { jl_pids = []; jl_remaining = per_rank; jl_failed = 0; jl_killed = false } in
    Hashtbl.replace t.jobs jobid jl;
    for i = 0 to per_rank - 1 do
      let stdout_buf = Buffer.create 64 in
      let ctx =
        {
          px_rank = rank;
          px_local_index = i;
          px_global_index = (rank_index * per_rank) + i;
          px_ntasks = ntasks;
          px_jobid = jobid;
          px_args = args;
          px_api = Api.connect sess ~rank;
          px_kvs = Client.connect sess ~rank;
          px_printf =
            (fun line ->
              Buffer.add_string stdout_buf line;
              Buffer.add_char stdout_buf '\n');
        }
      in
      let pid =
        Proc.spawn eng ~name:(Printf.sprintf "%s.%d-%d" jobid rank i) (fun () ->
            let failed =
              try
                body ctx;
                false
              with
              | Task_failure _ -> true
              | Proc.Stopped -> true
            in
            (* Capture stdout and exit status in the KVS, as the paper
               describes for wexec. *)
            let base = Printf.sprintf "lwj.%s.%d-%d" jobid rank i in
            ignore
              (Client.put ctx.px_kvs ~key:(base ^ ".stdout")
                 (Json.string (Buffer.contents stdout_buf))
                : (unit, string) result);
            ignore
              (Client.put ctx.px_kvs ~key:(base ^ ".exit")
                 (Json.int (if failed then 1 else 0))
                : (unit, string) result);
            ignore (Client.commit ctx.px_kvs : (int, string) result);
            task_finished t ~jobid ~failed)
      in
      jl.jl_pids <- pid :: jl.jl_pids
    done

let handle_exec t (ev : Message.t) =
  let payload = ev.Message.payload in
  let jobid = Json.to_string_v (Json.member "jobid" payload) in
  let prog = Json.to_string_v (Json.member "prog" payload) in
  let args = Json.member "args" payload in
  let per_rank = Json.to_int (Json.member "per_rank" payload) in
  let ranks = List.map Json.to_int (Json.to_list (Json.member "ranks" payload)) in
  let rank = Session.rank t.b in
  match List.find_index (fun r -> r = rank) ranks with
  | Some rank_index ->
    wemit t ~name:"start" ?parent:ev.Message.trace
      ~fields:[ ("jobid", Json.string jobid); ("ntasks", Json.int per_rank) ]
      ();
    wcount t ~name:"wexec.tasks.started" per_rank;
    start_local_tasks t ~jobid ~prog ~args ~per_rank ~rank_index
      ~ntasks:(per_rank * List.length ranks)
  | None -> ()

(* The master has closed this job: any task still running locally is a
   straggler whose work can no longer be acknowledged. The canonical
   case is a revived broker replaying the event backlog it missed while
   down — the replayed [wexec.exec] spawns tasks for a job the master
   death-accounted long ago, and without this teardown they would
   execute side effects AFTER the job's completion was acked (the
   requeued copy having run elsewhere). The [wexec.complete] event sits
   later in the same backlog, so replay kills the zombies in the same
   engine step that spawned them, before their first suspension point
   resumes. Silent on purpose: the accounting is already final. *)
let handle_complete_event t jobid =
  match Hashtbl.find_opt t.jobs jobid with
  | None -> ()
  | Some jl ->
    jl.jl_killed <- true;
    let eng = Session.b_engine t.b in
    List.iter (fun pid -> Proc.kill eng pid) jl.jl_pids;
    if jl.jl_remaining > 0 then wcount t ~name:"wexec.tasks.stale_killed" jl.jl_remaining;
    Hashtbl.remove t.jobs jobid

let handle_kill t jobid =
  match Hashtbl.find_opt t.jobs jobid with
  | None -> ()
  | Some jl ->
    if not jl.jl_killed then begin
      jl.jl_killed <- true;
      let eng = Session.b_engine t.b in
      (* Tasks raise Stopped at their next suspension point; account for
         them here rather than waiting for the unwinding, since a killed
         task performs no further KVS bookkeeping. *)
      List.iter (fun pid -> Proc.kill eng pid) jl.jl_pids;
      wcount t ~name:"wexec.tasks.killed" jl.jl_remaining;
      let count = List.length jl.jl_pids in
      let failed = jl.jl_failed + jl.jl_remaining in
      Hashtbl.remove t.jobs jobid;
      if t.master then master_account t ~jobid ~rank:(Session.rank t.b) ~count ~failed ()
      else report_done t ~jobid ~count ~failed
    end

(* A rank was marked down. At the master: account the dead rank's
   not-yet-reported tasks of every job it participates in as failures —
   without this, [run] blocks forever on a completion total that can no
   longer be reached. At the dead rank itself: destroy local tasks
   silently (its broker is gone; nothing can be reported), so a later
   revival cannot resume them and double-report. *)
let on_rank_down t r =
  let self = Session.rank t.b in
  if r = self then begin
    let eng = Session.b_engine t.b in
    Hashtbl.iter
      (fun _ jl ->
        jl.jl_killed <- true;
        List.iter (fun pid -> Proc.kill eng pid) jl.jl_pids)
      t.jobs;
    Hashtbl.reset t.jobs
  end
  else if t.master && not (Session.is_down (Session.session_of t.b) self) then begin
    let affected =
      Hashtbl.fold
        (fun jobid mj acc -> if List.mem r mj.mj_ranks then (jobid, mj) :: acc else acc)
        t.master_jobs []
    in
    List.iter
      (fun (jobid, mj) ->
        let prior = Option.value ~default:0 (Hashtbl.find_opt mj.mj_rank_done r) in
        let missing = mj.mj_per_rank - prior in
        if missing > 0 then begin
          wemit t ~name:"death_account" ?parent:mj.mj_ctx
            ~fields:
              [
                ("jobid", Json.string jobid);
                ("rank", Json.int r);
                ("missing", Json.int missing);
              ]
            ();
          wcount t ~name:"wexec.tasks.death_accounted" missing;
          master_account t ~jobid ~rank:r ~count:missing ~failed:missing ()
        end)
      affected
  end

let module_of t =
  {
    Session.mod_name = "wexec";
    on_request =
      (fun (req : Message.t) ->
        match Topic.method_ req.Message.topic with
        | "run" ->
          if t.master then begin
            let p = req.Message.payload in
            let jobid = Json.to_string_v (Json.member "jobid" p) in
            let per_rank = Json.to_int (Json.member "per_rank" p) in
            let ranks = List.map Json.to_int (Json.to_list (Json.member "ranks" p)) in
            let nranks = List.length ranks in
            if Hashtbl.mem t.master_jobs jobid then begin
              Session.respond_error t.b req (Printf.sprintf "job %S already running" jobid);
              Session.Consumed
            end
            else begin
              Hashtbl.replace t.master_jobs jobid
                {
                  mj_total = per_rank * nranks;
                  mj_done = 0;
                  mj_failed = 0;
                  mj_per_rank = per_rank;
                  mj_ranks = ranks;
                  mj_rank_done = Hashtbl.create 8;
                  mj_ctx = req.Message.trace;
                };
              wcount t ~name:"wexec.jobs.launched" 1;
              (* Broadcast the launch over the event plane, carrying the
                 launching RPC's causal ctx so per-rank starts chain off
                 the job's sched.submit -> sched.match spans. *)
              Session.publish t.b ?trace_ctx:req.Message.trace
                ~topic:("wexec.exec." ^ jobid) p;
              Session.respond t.b req Json.null;
              (* Ranks already dead at launch never start their tasks:
                 account them as failed now so the completion total is
                 reachable. *)
              let sess = Session.session_of t.b in
              List.iter
                (fun r ->
                  if Session.is_down sess r then
                    master_account t ~jobid ~rank:r ~count:per_rank ~failed:per_rank ())
                ranks;
              Session.Consumed
            end
          end
          else Session.Pass
        | "done" ->
          if t.master then begin
            let p = req.Message.payload in
            let rank =
              match Json.member_opt "rank" p with Some r -> Some (Json.to_int r) | None -> None
            in
            master_account t
              ~jobid:(Json.to_string_v (Json.member "jobid" p))
              ?rank
              ~count:(Json.to_int (Json.member "count" p))
              ~failed:(Json.to_int (Json.member "failed" p))
              ();
            Session.respond t.b req Json.null;
            Session.Consumed
          end
          else Session.Pass
        | m ->
          Session.respond_error t.b req (Printf.sprintf "wexec: unknown method %S" m);
          Session.Consumed);
    on_event =
      (fun (ev : Message.t) ->
        if Topic.prefixed ~prefix:"wexec.exec" ev.Message.topic then handle_exec t ev
        else if Topic.prefixed ~prefix:"wexec.kill" ev.Message.topic then
          handle_kill t (Json.to_string_v (Json.member "jobid" ev.Message.payload))
        else if Topic.prefixed ~prefix:"wexec.complete" ev.Message.topic then
          handle_complete_event t
            (Json.to_string_v (Json.member "jobid" ev.Message.payload)));
  }

let load sess () =
  let instances =
    Array.init (Session.size sess) (fun r ->
        {
          b = Session.broker sess r;
          master = r = 0;
          jobs = Hashtbl.create 8;
          master_jobs = Hashtbl.create 8;
          wx_tracer = None;
          wx_metrics = None;
        })
  in
  Session.load_module sess (fun b -> module_of instances.(Session.rank b));
  (* Down-node detection rides the session's liveness transitions (fed
     by {!Live} heartbeats or injected by a harness): the master
     accounts a dead rank's unfinished tasks as failures so completion
     events still fire, and a dead rank destroys its local tasks. *)
  Session.add_liveness_watch sess (fun r up ->
      if not up then Array.iter (fun t -> on_rank_down t r) instances);
  instances

type completion = { c_jobid : string; c_ntasks : int; c_failed : int }

let run api ~jobid ~prog ?(args = Json.null) ?(per_rank = 1) ?trace_ctx ~ranks () =
  if not (Topic.is_valid ("wexec.complete." ^ jobid)) then
    Error (Printf.sprintf "invalid job id %S" jobid)
  else begin
    let payload =
      Json.obj
        [
          ("jobid", Json.string jobid);
          ("prog", Json.string prog);
          ("args", args);
          ("per_rank", Json.int per_rank);
          ("ranks", Json.list (List.map Json.int ranks));
        ]
    in
    (* Subscribe to the completion event before launching to avoid the
       obvious race on very short jobs. *)
    let eng = Session.engine (Api.session api) in
    let done_iv = Flux_sim.Ivar.create () in
    Api.subscribe api ~prefix:("wexec.complete." ^ jobid) (fun ~topic:_ p ->
        ignore (Flux_sim.Ivar.try_fill eng done_iv p : bool));
    match Api.rpc api ?trace_ctx ~topic:"wexec.run" payload with
    | Error e -> Error e
    | Ok _ ->
      let p = Proc.await done_iv in
      Ok
        {
          c_jobid = jobid;
          c_ntasks = Json.to_int (Json.member "ntasks" p);
          c_failed = Json.to_int (Json.member "failed" p);
        }
  end

let kill api ~jobid =
  Api.publish api ~topic:("wexec.kill." ^ jobid) (Json.obj [ ("jobid", Json.string jobid) ])

(* ------------------------------------------------------------------ *)
(* Checkpoint manifests                                                *)

type manifest = { m_job : string; m_epoch : int; m_version : int; m_root : string }

let manifest_key jobid epoch = Printf.sprintf "ckpt.%s.e%d" jobid epoch
let latest_key jobid = Printf.sprintf "ckpt.%s.latest" jobid

let manifest_to_json m =
  Json.obj
    [
      ("job", Json.string m.m_job);
      ("epoch", Json.int m.m_epoch);
      ("version", Json.int m.m_version);
      ("root", Json.string m.m_root);
    ]

let manifest_of_json j =
  match
    {
      m_job = Json.to_string_v (Json.member "job" j);
      m_epoch = Json.to_int (Json.member "epoch" j);
      m_version = Json.to_int (Json.member "version" j);
      m_root = Json.to_string_v (Json.member "root" j);
    }
  with
  | m -> Some m
  | exception Json.Type_error _ -> None

let checkpoint ?timeout ctx ~epoch =
  (* The fence name doubles as the manifest key, so each (job, epoch)
     pair fences under a fresh name — the freshness rule fences require.
     Synchronize first; then exactly one task records the fence's root
     as the manifest. Because tasks only mutate the store through the
     checkpoint fences, the root read just after the fence IS the fence
     root: the manifest names a cut every task has agreed on. *)
  let name = manifest_key ctx.px_jobid epoch in
  match Client.fence ?timeout ctx.px_kvs ~name ~nprocs:ctx.px_ntasks with
  | Error e -> Error e
  | Ok v when ctx.px_global_index <> 0 -> Ok v
  | Ok _ -> (
    match Client.get_root ctx.px_kvs with
    | Error e -> Error e
    | Ok ri ->
      let m =
        {
          m_job = ctx.px_jobid;
          m_epoch = epoch;
          m_version = ri.Kproto.ri_version;
          m_root = Sha1.to_hex ri.Kproto.ri_root;
        }
      in
      let payload = manifest_to_json m in
      let ( let* ) r f = match r with Ok () -> f () | Error e -> Error e in
      let* () = Client.put ctx.px_kvs ~key:name payload in
      let* () = Client.put ctx.px_kvs ~key:(latest_key ctx.px_jobid) payload in
      Client.commit ctx.px_kvs)

let newest_manifest kvs ~jobid ~max_epoch =
  (* Walk candidate epochs newest-first, verifying each: the [latest]
     pointer may be torn (rank 0 died between the epoch-key commit and
     the next fence), so trust only a manifest that parses, names its
     own epoch, carries a well-formed root hash, and does not claim a
     version from the future of the store being consulted. *)
  let current_version = match Client.get_version kvs with Ok v -> v | Error _ -> max_int in
  let verified e =
    match Client.get kvs ~key:(manifest_key jobid e) with
    | Error _ -> None
    | Ok j -> (
      match manifest_of_json j with
      | None -> None
      | Some m ->
        if
          m.m_epoch = e
          && m.m_version <= current_version
          && (match Sha1.of_hex m.m_root with
             | (_ : Sha1.digest) -> true
             | exception Invalid_argument _ -> false)
        then Some m
        else None)
  in
  let rec scan e = if e < 0 then None else match verified e with Some m -> Some m | None -> scan (e - 1) in
  scan max_epoch
