(** The [wexec] comms module (Table I): remote processes are launched in
    bulk, monitored, can receive signals, and have their standard output
    captured in the KVS.

    "Programs" are OCaml functions registered by name (the simulated
    equivalent of executables); each launched task runs as a simulated
    process and may sleep, use the KVS, enter barriers, etc. Task output
    written through {!printf} lands in the KVS under
    [lwj.<jobid>.<rank>-<index>.stdout] when the task finishes, along
    with its exit code. *)

type proc_ctx = {
  px_rank : int;  (** rank the task runs on *)
  px_local_index : int;  (** task index on this rank *)
  px_global_index : int;  (** task index across the job *)
  px_ntasks : int;  (** total tasks in the job *)
  px_jobid : string;
  px_args : Flux_json.Json.t;
  px_api : Flux_cmb.Api.t;  (** CMB access from inside the task *)
  px_kvs : Flux_kvs.Client.t;  (** KVS access from inside the task *)
  px_printf : string -> unit;  (** captured standard output *)
}

exception Task_failure of string
(** Raise inside a program to exit non-zero. *)

val register_program : string -> (proc_ctx -> unit) -> unit

type t

val load : Flux_cmb.Session.t -> unit -> t array
(** Installs the module at every rank (rank 0 is the job master) and
    registers a liveness watch: when a rank goes down, its unreported
    tasks are accounted as failures at the master — so a job spanning a
    dead node still completes — and the dead rank's local tasks are
    destroyed so a later revival cannot double-report. *)

val set_tracer_all : t array -> Flux_trace.Tracer.t option -> unit
(** Emit category ["wexec"] task-lifecycle events: ["start"] when a rank
    begins its local tasks (child span of the launching RPC's ctx, which
    rides the message envelope out-of-band — enabling tracing never
    perturbs payload sizes or simulated timing), ["complete"] at the
    master when the job's completion total is reached, and
    ["death_account"] when a dead rank's unreported tasks are written
    off. Together with {!Flux_core.Instance.set_tracer} this yields the
    per-job [sched.submit -> sched.match -> wexec.start ->
    wexec.complete] span chain. *)

val set_metrics_all : t array -> Flux_trace.Metrics.t -> unit
(** Per-rank counters: [wexec.jobs.launched] / [wexec.jobs.completed],
    [wexec.tasks.started] / [.done] / [.failed] / [.killed] /
    [.death_accounted]. *)

type completion = {
  c_jobid : string;
  c_ntasks : int;
  c_failed : int;  (** tasks that raised *)
}

val run :
  Flux_cmb.Api.t ->
  jobid:string ->
  prog:string ->
  ?args:Flux_json.Json.t ->
  ?per_rank:int ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  ranks:int list ->
  unit ->
  (completion, string) result
(** Launch [per_rank] (default 1) tasks of [prog] on each listed rank
    and block until the whole job completes. Must run inside a
    {!Flux_sim.Proc} body. Job ids must be fresh and form a valid topic
    component (letters, digits, [-], [_]). [trace_ctx] links the whole
    launch (run RPC, per-rank starts, completion event) into the
    caller's causal trace. *)

val kill : Flux_cmb.Api.t -> jobid:string -> unit
(** Deliver a kill signal: every task of the job is terminated; the job
    then completes with the killed tasks counted as failed. *)

val running_tasks : t -> int
(** Tasks currently executing on this rank. *)

(** {1 Checkpoint manifests}

    The SCR-style application pattern: tasks periodically fence, and one
    task records the fence's root hash as a {e manifest} under a
    reserved [ckpt.] KVS directory. Because KVS objects are immutable
    and content-addressed, the recorded root names a complete,
    consistent cut of the job's state for free — restart is "resume
    from the newest verified manifest". *)

type manifest = {
  m_job : string;
  m_epoch : int;  (** checkpoint ordinal within the job *)
  m_version : int;  (** KVS root version at the fence *)
  m_root : string;  (** root hash (hex) at the fence *)
}

val manifest_key : string -> int -> string
(** [manifest_key jobid epoch] — the manifest's KVS key, also used as
    the checkpoint fence name. *)

val latest_key : string -> string
(** Convenience pointer to the most recent manifest (may be torn if the
    writer died mid-sequence; {!newest_manifest} never trusts it). *)

val manifest_to_json : manifest -> Flux_json.Json.t
val manifest_of_json : Flux_json.Json.t -> manifest option

val checkpoint : ?timeout:float -> proc_ctx -> epoch:int -> (int, string) result
(** Collective checkpoint: all [px_ntasks] tasks fence under
    [manifest_key px_jobid epoch]; task 0 then writes the manifest at
    that key (and at {!latest_key}) and commits. Returns the resulting
    root version. Pass [timeout] so tasks survive a fence stranded by a
    dead participant — the fence is then aborted up the tree and the
    caller may retry or give up (see {!Flux_kvs.Client.fence}). *)

val newest_manifest :
  Flux_kvs.Client.t -> jobid:string -> max_epoch:int -> manifest option
(** Scan epochs [max_epoch] down to [0] and return the first manifest
    that verifies: it parses, names its own epoch, carries a well-formed
    root hash, and does not claim a version newer than the store serving
    the lookup. *)
