module Json = Flux_json.Json
module Session = Flux_cmb.Session
module Engine = Flux_sim.Engine
module Telem = Flux_modules.Telem
module Detect = Flux_trace.Detect
module Series = Flux_trace.Series
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics
module Flight = Flux_trace.Flight

(* {1 Pure control law} *)

type policy = {
  p_metric : string;
  p_high : float;
  p_low : float;
  p_step : int;
  p_min_nodes : int;
  p_max_nodes : int;
  p_cooldown : float;
  p_period : float;
  p_require_alert : bool;
  p_silence : float;
}

let default_policy =
  {
    p_metric = "elastic.queue";
    p_high = 32.0;
    p_low = 4.0;
    p_step = 2;
    p_min_nodes = 1;
    p_max_nodes = 64;
    p_cooldown = 1.0;
    p_period = 0.25;
    p_require_alert = true;
    p_silence = 1.0;
  }

let validate_policy p =
  if p.p_metric = "" then Error "p_metric must be non-empty"
  else if not (p.p_low < p.p_high) then Error "p_low must be < p_high"
  else if p.p_step <= 0 then Error "p_step must be positive"
  else if p.p_min_nodes <= 0 then Error "p_min_nodes must be positive"
  else if p.p_max_nodes < p.p_min_nodes then Error "p_max_nodes must be >= p_min_nodes"
  else if p.p_cooldown <= 0.0 then Error "p_cooldown must be positive"
  else if p.p_period <= 0.0 then Error "p_period must be positive"
  else if p.p_silence < 0.0 then Error "p_silence must be non-negative"
  else Ok ()

type decision = Grow of int | Shrink of int | Hold of string

let decision_to_string = function
  | Grow n -> Printf.sprintf "grow %d" n
  | Shrink n -> Printf.sprintf "shrink %d" n
  | Hold r -> Printf.sprintf "hold (%s)" r

type inputs = {
  in_now : float;
  in_pressure : float option;
  in_nodes : int;
  in_alert : bool;
  in_fresh : bool;
}

type memory = { m_last_action : float }

let fresh_memory = { m_last_action = neg_infinity }

(* The whole anti-flap story lives in the ordering here: the silence
   and no-data guards come first (never act blind), then the full
   cooldown (any recent action holds everything, so no reversal can fit
   inside one window), and only then the hysteresis band with its step
   and min/max clamps. *)
let decide p mem inp =
  if not inp.in_fresh then Hold "telemetry-silent"
  else
    match inp.in_pressure with
    | None -> Hold "no-data"
    | Some pressure ->
      if inp.in_now -. mem.m_last_action < p.p_cooldown then Hold "cooldown"
      else if pressure >= p.p_high then
        if p.p_require_alert && not inp.in_alert then Hold "awaiting-alert"
        else
          let step = min p.p_step (p.p_max_nodes - inp.in_nodes) in
          if step <= 0 then Hold "at-max" else Grow step
      else if pressure <= p.p_low then
        let step = min p.p_step (inp.in_nodes - p.p_min_nodes) in
        if step <= 0 then Hold "at-min" else Shrink step
      else Hold "in-band"

let remember mem ~now = function Hold _ -> mem | Grow _ | Shrink _ -> { m_last_action = now }

(* {1 Driver} *)

type t = {
  e_sess : Session.t;
  e_inst : Instance.t;
  e_tmod : Telem.t array;
  e_pol : policy;
  mutable e_mem : memory;
  mutable e_armed : Detect.alert option;  (** alert arming the next tick *)
  mutable e_last_rollup : float;  (** sim time a rollup last landed *)
  mutable e_fallback : bool;
  mutable e_fallback_entries : int;
  mutable e_decisions : (float * decision) list;  (** newest first *)
  mutable e_denied : int;
  mutable e_drains : int;
  mutable e_timer : Engine.handle option;
  mutable e_stop_at : Engine.handle option;
  mutable e_tracer : Tracer.t option;
  mutable e_metrics : Metrics.t option;
  mutable e_flight : Flight.t option;
}

let engine t = Session.engine t.e_sess

let create sess ~instance ~telem ?(policy = default_policy) () =
  (match validate_policy policy with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Elastic.create: %s" e));
  let t =
    {
      e_sess = sess;
      e_inst = instance;
      e_tmod = telem;
      e_pol = policy;
      e_mem = fresh_memory;
      e_armed = None;
      e_last_rollup = neg_infinity;
      e_fallback = false;
      e_fallback_entries = 0;
      e_decisions = [];
      e_denied = 0;
      e_drains = 0;
      e_timer = None;
      e_stop_at = None;
      e_tracer = None;
      e_metrics = None;
      e_flight = None;
    }
  in
  Telem.on_alert telem (fun al ->
      if al.Detect.al_kind = Detect.Queue_growth && al.Detect.al_metric = policy.p_metric
      then t.e_armed <- Some al);
  Telem.on_rollup telem (fun _epoch -> t.e_last_rollup <- Engine.now (engine t));
  t

let set_tracer t tr = t.e_tracer <- Some tr
let set_metrics t m = t.e_metrics <- Some m
let set_flight t f = t.e_flight <- Some f

let trace t ~name fields =
  match t.e_tracer with
  | None -> ()
  | Some tr -> Tracer.emit tr ~cat:"elastic" ~name ~rank:0 ~fields ()

let count t name =
  match t.e_metrics with None -> () | Some m -> Metrics.incr m ~name ~rank:0

let trigger_label t =
  match t.e_armed with
  | Some al ->
    Printf.sprintf "alert:%s@%d" (Detect.kind_to_string al.Detect.al_kind)
      al.Detect.al_epoch
  | None -> "pressure"

let flight_dump t ~decision ~trigger =
  match t.e_flight with
  | None -> ()
  | Some f ->
    ignore
      (Flight.dump f ~rank:0
         ~reason:(Printf.sprintf "elastic: %s trigger=%s" decision trigger))

let apply t d =
  match d with
  | Hold _ -> count t "elastic.hold"
  | Grow n -> (
    let trigger = trigger_label t in
    match Instance.request_grow t.e_inst ~nnodes:n with
    | Ok got ->
      count t "elastic.grow";
      trace t ~name:"grow" [ ("req", Json.int n); ("got", Json.int got) ];
      flight_dump t ~decision:(decision_to_string d) ~trigger
    | Error e ->
      t.e_denied <- t.e_denied + 1;
      count t "elastic.denied";
      trace t ~name:"deny"
        [ ("req", Json.int n); ("error", Json.string (Instance.resize_error_to_string e)) ])
  | Shrink n -> (
    let trigger = trigger_label t in
    match Instance.request_shrink t.e_inst ~nnodes:n with
    | Ok got ->
      count t "elastic.shrink";
      trace t ~name:"shrink" [ ("req", Json.int n); ("got", Json.int got) ];
      flight_dump t ~decision:(decision_to_string d) ~trigger
    | Error (Instance.Resize_draining d') ->
      t.e_drains <- t.e_drains + 1;
      count t "elastic.shrink";
      trace t ~name:"drain" [ ("req", Json.int n); ("draining", Json.int d') ];
      flight_dump t ~decision:(decision_to_string d) ~trigger
    | Error e ->
      t.e_denied <- t.e_denied + 1;
      count t "elastic.denied";
      trace t ~name:"deny"
        [ ("req", Json.int n); ("error", Json.string (Instance.resize_error_to_string e)) ])

let tick t =
  let now = Engine.now (engine t) in
  let fresh = now -. t.e_last_rollup <= t.e_pol.p_silence in
  (* Fallback edges are traced once per transition, not per held tick. *)
  (if (not fresh) && not t.e_fallback then begin
     t.e_fallback <- true;
     t.e_fallback_entries <- t.e_fallback_entries + 1;
     trace t ~name:"fallback" [ ("last_rollup", Json.float t.e_last_rollup) ];
     count t "elastic.fallback"
   end
   else if fresh && t.e_fallback then begin
     t.e_fallback <- false;
     trace t ~name:"recover" []
   end);
  let pressure =
    Option.map snd (Series.latest_scalar (Telem.series t.e_tmod) ~name:t.e_pol.p_metric)
  in
  let nodes = Pool.total_nodes (Instance.pool t.e_inst) in
  let inp =
    {
      in_now = now;
      in_pressure = pressure;
      in_nodes = nodes;
      in_alert = t.e_armed <> None;
      in_fresh = fresh;
    }
  in
  let d = decide t.e_pol t.e_mem inp in
  t.e_decisions <- (now, d) :: t.e_decisions;
  trace t ~name:"decision"
    [
      ("decision", Json.string (decision_to_string d));
      ("pressure", Json.float (Option.value pressure ~default:nan));
      ("nodes", Json.int nodes);
      ("trigger", Json.string (trigger_label t));
    ];
  apply t d;
  (* Denied actions still stamp the cooldown: hammering a parent that
     just said no is the grow-storm failure mode. *)
  t.e_mem <- remember t.e_mem ~now d;
  t.e_armed <- None;
  match t.e_metrics with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m ~name:"elastic.nodes" ~rank:0
      (float_of_int (Pool.total_nodes (Instance.pool t.e_inst)))

let rec stop t =
  (match t.e_timer with None -> () | Some h -> Engine.cancel h);
  t.e_timer <- None;
  (match t.e_stop_at with None -> () | Some h -> Engine.cancel h);
  t.e_stop_at <- None

and start ?until t =
  if t.e_timer = None then begin
    (* A rollup may already have landed before the controller started;
       don't begin life in fallback unless telemetry truly is silent. *)
    if t.e_last_rollup = neg_infinity then t.e_last_rollup <- Engine.now (engine t);
    t.e_timer <- Some (Engine.every (engine t) ~period:t.e_pol.p_period (fun () -> tick t))
  end;
  match until with
  | None -> ()
  | Some d ->
    if t.e_stop_at = None then
      t.e_stop_at <- Some (Engine.schedule (engine t) ~delay:d (fun () -> stop t))

(* {1 Introspection} *)

let decisions t = List.rev t.e_decisions

let actions t =
  List.filter (fun (_, d) -> match d with Grow _ | Shrink _ -> true | Hold _ -> false)
    (decisions t)

let denied t = t.e_denied
let drains t = t.e_drains
let fallback t = t.e_fallback
let fallback_entries t = t.e_fallback_entries

let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (ts, d) -> Buffer.add_string buf (Printf.sprintf "%.6f %s\n" ts (decision_to_string d)))
    (decisions t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
