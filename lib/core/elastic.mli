(** Closed-loop elasticity: an autoscale controller that turns the
    telemetry plane's alerts and rolled-up queue gauges into
    {!Instance.request_grow}/{!Instance.request_shrink} calls under the
    paper's parental-consent rule.

    The control law is a pure function ({!decide}) over an explicit
    {!memory} — hysteresis band, per-decision step limit, min/max node
    clamps, and a full cooldown (any action freezes {e all} actions for
    [p_cooldown] sim-seconds, so a grow can never be reversed by a
    shrink inside one cooldown window). The driver around it is thin:
    an {!Flux_sim.Engine.every} tick that reads the latest rolled-up
    pressure from the root's {!Flux_trace.Series}, consumes the
    alert-armed flag set by {!Flux_modules.Telem.on_alert}, applies the
    decision, and records it (trace event, metrics, flight dump).

    Degradation is explicit: when the rollup stream goes silent for
    longer than [p_silence] the controller holds every decision
    ("telemetry-silent") rather than acting on stale data — the system
    falls back to whatever static protection (admission control,
    submission-side shedding) the instance already runs, and resumes
    automatically when rollups return. Everything is opt-in: a session
    that never creates a controller is bit-for-bit unchanged. *)

module Telem = Flux_modules.Telem
module Detect = Flux_trace.Detect

(** {1 Pure control law} *)

type policy = {
  p_metric : string;
      (** the rolled-up gauge watched as pressure (e.g. a queue-depth
          gauge the workload publishes) — also the metric whose
          [Queue_growth] alerts arm grow decisions *)
  p_high : float;  (** pressure at or above this is grow territory *)
  p_low : float;
      (** pressure at or below this is shrink territory; the dead band
          [p_low < pressure < p_high] holds (hysteresis) *)
  p_step : int;  (** max nodes moved per decision *)
  p_min_nodes : int;  (** never shrink the instance below this *)
  p_max_nodes : int;  (** never grow the instance above this *)
  p_cooldown : float;
      (** sim-seconds after {e any} action during which every further
          action is held — the anti-flap guarantee *)
  p_period : float;  (** decision tick period, sim-seconds *)
  p_require_alert : bool;
      (** when true a grow fires only on a tick armed by a
          [Queue_growth] alert on [p_metric]; raw pressure alone holds
          ("awaiting-alert") *)
  p_silence : float;
      (** rollups older than this many sim-seconds mean telemetry is
          silent: hold everything and fall back to static protection *)
}

val default_policy : policy
(** metric ["elastic.queue"], band 4..32, step 2, nodes 1..64,
    cooldown 1.0 s, period 0.25 s, alert-gated grows, silence 1.0 s. *)

val validate_policy : policy -> (unit, string) result
(** Structural checks: [p_low < p_high], positive step/period/cooldown,
    [0 < p_min_nodes <= p_max_nodes], non-negative silence. *)

type decision =
  | Grow of int  (** ask the parent for this many nodes *)
  | Shrink of int  (** return this many nodes to the parent *)
  | Hold of string  (** do nothing; the reason is the interesting part *)

val decision_to_string : decision -> string

type inputs = {
  in_now : float;  (** sim time of the decision tick *)
  in_pressure : float option;
      (** latest rolled-up value of [p_metric]; [None] before the first
          rollup carrying it *)
  in_nodes : int;  (** instance pool size right now *)
  in_alert : bool;  (** a matching alert armed this tick *)
  in_fresh : bool;  (** a rollup landed within the last [p_silence] s *)
}

type memory = { m_last_action : float  (** sim time of the last applied action *) }

val fresh_memory : memory
(** No action yet ([m_last_action = neg_infinity]): the first decision
    is never cooldown-held. *)

val decide : policy -> memory -> inputs -> decision
(** The control law. Pure and total: same policy, memory and inputs
    always produce the same decision. Grow/Shrink steps are clamped so
    applying them keeps the pool inside [p_min_nodes .. p_max_nodes]
    and never moves more than [p_step] nodes. Within [p_cooldown] of
    [m_last_action] the answer is always a [Hold]. *)

val remember : memory -> now:float -> decision -> memory
(** Fold a decision into the memory: actions (including denied ones —
    a parent that said no is backoff-worthy) stamp [m_last_action];
    holds leave it alone. *)

(** {1 Driver} *)

type t

val create :
  Flux_cmb.Session.t ->
  instance:Instance.t ->
  telem:Telem.t array ->
  ?policy:policy ->
  unit ->
  t
(** Wire a controller to [instance], watching [telem]'s root rollups.
    Registers an alert subscriber (arms the next tick on a
    [Queue_growth] alert for [p_metric]) and a rollup subscriber (the
    freshness watchdog). Decisions do not begin until {!start}. Raises
    [Invalid_argument] on a policy that fails {!validate_policy}. *)

val set_tracer : t -> Flux_trace.Tracer.t -> unit
(** Emit category ["elastic"] events: [decision] on every tick (with
    the decision, pressure, node count and trigger), plus
    [fallback]/[recover] edges on telemetry-silence transitions. *)

val set_metrics : t -> Flux_trace.Metrics.t -> unit
(** Count decisions into [elastic.grow] / [elastic.shrink] /
    [elastic.hold] / [elastic.denied] and track the pool size in the
    [elastic.nodes] gauge (rank 0). *)

val set_flight : t -> Flux_trace.Flight.t -> unit
(** Dump the flight recorder on every applied grow/shrink decision,
    with the triggering alert (or raw pressure) in the reason — the
    post-hoc answer to "why did the controller act here?". *)

val start : ?until:float -> t -> unit
(** Arm the decision timer (period [p_period], first tick one period
    from now). [?until] schedules {!stop} that many sim-seconds from
    now. Idempotent while running. *)

val stop : t -> unit

(** {1 Introspection} *)

val decisions : t -> (float * decision) list
(** Every decision in tick order, stamped with its sim time. Same-seed
    runs produce identical lists. *)

val actions : t -> (float * decision) list
(** Just the applied [Grow]/[Shrink] decisions, in order. *)

val denied : t -> int
(** Resizes the parent chain refused ([Resize_exhausted] on grow — the
    structured fallback path when capacity is denied). *)

val drains : t -> int
(** Shrinks answered with [Resize_draining] (preemption in progress). *)

val fallback : t -> bool
(** Currently holding because telemetry went silent. *)

val fallback_entries : t -> int
(** Times the controller entered telemetry-silent fallback. *)

val fingerprint : t -> string
(** Digest of the full timed decision sequence — equal across
    same-seed runs, the determinism witness harnesses compare. *)
