module Rng = Flux_util.Rng

let duration_of_payload = function
  | Job.Sleep d -> d
  | Job.App { duration; _ } -> duration
  | Job.Child _ | Job.Nested _ -> 0.0

let poisson_arrivals rng ~rate ~n =
  (* Cumulative exponential gaps; rate <= 0 means everything at t=0. *)
  let t = ref 0.0 in
  List.init n (fun _ ->
      if rate <= 0.0 then 0.0
      else begin
        t := !t +. Rng.exponential rng (1.0 /. rate);
        !t
      end)

let uq_ensemble rng ~n ?(nodes_each = 1) ?(mean_duration = 60.0) ?(arrival_rate = 0.0) () =
  let arrivals = poisson_arrivals rng ~rate:arrival_rate ~n in
  List.map
    (fun at ->
      let d = Float.max 1.0 (Rng.exponential rng mean_duration) in
      {
        Job.sub_after = at;
        sub_spec = Jobspec.make ~nnodes:nodes_each ~walltime_est:(2.0 *. d) ();
        sub_payload = Job.Sleep d;
      })
    arrivals

let log_uniform rng ~max_value =
  (* 1 .. max_value with log-uniform mass. *)
  let bits = int_of_float (Float.log2 (float_of_int max_value)) in
  let b = Rng.int rng (bits + 1) in
  let lo = 1 lsl b in
  let hi = min max_value (2 * lo) in
  lo + Rng.int rng (max 1 (hi - lo))

let batch_mix rng ~n ~max_nodes ?(mean_duration = 120.0) ?(arrival_rate = 0.0)
    ?(overestimate = 2.0) () =
  let arrivals = poisson_arrivals rng ~rate:arrival_rate ~n in
  List.map
    (fun at ->
      let nnodes = min max_nodes (log_uniform rng ~max_value:max_nodes) in
      let d = Float.max 1.0 (Rng.exponential rng mean_duration) in
      {
        Job.sub_after = at;
        sub_spec = Jobspec.make ~nnodes ~walltime_est:(overestimate *. d) ();
        sub_payload = Job.Sleep d;
      })
    arrivals

let io_phased rng ~n ~max_nodes ~fs_bandwidth_each ?(mean_duration = 120.0) () =
  List.init n (fun _ ->
      let nnodes = min max_nodes (log_uniform rng ~max_value:max_nodes) in
      let d = Float.max 1.0 (Rng.exponential rng mean_duration) in
      {
        Job.sub_after = 0.0;
        sub_spec =
          Jobspec.make ~nnodes ~walltime_est:(2.0 *. d) ~fs_bandwidth:fs_bandwidth_each ();
        sub_payload = Job.Sleep d;
      })

let pilot_tasks rng ~n ?(prog = "") ?(mean_duration = 0.1) ?(min_duration = 0.01)
    ?(arrival_rate = 0.0) () =
  (* Merzky-style pilot stream: many single-node sub-second tasks,
     submitted open-loop. With [prog] the tasks are wexec launches
     (args carry a stable logical task id for exactly-once accounting
     across requeues); without, synthetic [Sleep]s with the identical
     duration/arrival draws — so a baseline can consume the same stream
     shape without a wexec stack. *)
  let arrivals = poisson_arrivals rng ~rate:arrival_rate ~n in
  List.mapi
    (fun i at ->
      let d = Float.max min_duration (Rng.exponential rng mean_duration) in
      let payload =
        if prog = "" then Job.Sleep d
        else
          Job.App
            {
              prog;
              args = Flux_json.Json.obj [ ("tid", Flux_json.Json.int i) ];
              per_rank = 1;
              duration = d;
            }
      in
      {
        Job.sub_after = at;
        sub_spec = Jobspec.make ~nnodes:1 ~walltime_est:(2.0 *. d) ();
        sub_payload = payload;
      })
    arrivals

let split_round_robin k subs =
  if k <= 0 then invalid_arg "Workload.split_round_robin: k must be positive";
  let buckets = Array.make k [] in
  List.iteri (fun i s -> buckets.(i mod k) <- s :: buckets.(i mod k)) subs;
  Array.to_list (Array.map List.rev buckets)

let rec nest ~depth ~children ~policy ~nnodes tasks =
  (* Wrap a task stream into [depth] levels of child instances, each
     level fanning out [children] ways and carving the node set evenly
     (the paper's recursive hierarchy: every level is itself a full
     Flux instance running [policy]). depth = 0 feeds the stream
     unwrapped. *)
  if depth < 0 then invalid_arg "Workload.nest: depth must be >= 0";
  if depth = 0 then tasks
  else begin
    if children <= 1 then invalid_arg "Workload.nest: children must be >= 2";
    let child_nodes = nnodes / children in
    if child_nodes < 1 then invalid_arg "Workload.nest: not enough nodes to split";
    List.map
      (fun group ->
        {
          Job.sub_after = 0.0;
          sub_spec = Jobspec.make ~nnodes:child_nodes ();
          sub_payload =
            Job.Child
              {
                policy;
                workload = nest ~depth:(depth - 1) ~children ~policy ~nnodes:child_nodes group;
              };
        })
      (split_round_robin children tasks)
  end

let total_node_seconds subs =
  List.fold_left
    (fun acc (s : Job.submission) ->
      acc
      +. (float_of_int s.Job.sub_spec.Jobspec.nnodes *. duration_of_payload s.Job.sub_payload))
    0.0 subs
