module Json = Flux_json.Json
module Api = Flux_cmb.Api
module Session = Flux_cmb.Session
module Wexec = Flux_modules.Wexec
module Client = Flux_kvs.Client
module Metrics = Flux_trace.Metrics

type outcome = {
  o_jobid : string;
  o_attempts : int;
  o_completion : Wexec.completion;
  o_resumed_from : Wexec.manifest option;
}

let attempt_jobid base k = if k = 0 then base else Printf.sprintf "%s.r%d" base k

(* Merge a resume manifest into object args; wrap anything else so
   non-object args still round-trip under "base". Shared by the requeue
   driver below and by {!Instance.request_shrink}'s preemption requeue. *)
let with_resume args m =
  match m with
  | None -> args
  | Some m -> (
    let mjson = Wexec.manifest_to_json m in
    match args with
    | Json.Null -> Json.obj [ ("resume", mjson) ]
    | Json.Obj _ -> Json.set_member "resume" mjson args
    | _ -> Json.obj [ ("base", args); ("resume", mjson) ])

(* The newest verified manifest across the attempt chain: attempts write
   manifests under their own jobid (each attempt fences under fresh
   names — see {!Wexec.checkpoint}), so scan past attempts newest-first
   and keep the highest epoch found. *)
let newest_across kvs ~jobids ~max_epoch =
  List.fold_left
    (fun best j ->
      match Wexec.newest_manifest kvs ~jobid:j ~max_epoch with
      | None -> best
      | Some m -> (
        match best with
        | Some b when b.Wexec.m_epoch >= m.Wexec.m_epoch -> best
        | _ -> Some m))
    None jobids

let run_resilient api ~kvs ?metrics ?(max_requeues = 3) ?(max_epoch = 64) ~jobid ~prog
    ?(args = Json.null) ?(per_rank = 1) ~ranks () =
  let sess = Api.session api in
  let active = ref true in
  let cur_jobid = ref (attempt_jobid jobid 0) in
  let cur_ranks = ref ranks in
  (* Down-node detection: the wexec master accounts the dead rank's
     tasks as failures, but surviving tasks may be parked in a
     checkpoint fence that can no longer complete — kill the attempt so
     [Wexec.run] returns and the requeue path takes over. *)
  Session.add_liveness_watch sess (fun r up ->
      if !active && (not up) && List.mem r !cur_ranks then Wexec.kill api ~jobid:!cur_jobid);
  let requeue_metric () =
    match metrics with
    | Some m -> Metrics.incr m ~name:"ckpt.requeue" ~rank:(Api.rank api)
    | None -> ()
  in
  let rec go k ~past ~resumed =
    let this = attempt_jobid jobid k in
    cur_jobid := this;
    let live = List.filter (fun r -> not (Session.is_down sess r)) ranks in
    cur_ranks := live;
    if live = [] then begin
      active := false;
      Error (Printf.sprintf "job %S: no live ranks left to requeue on" jobid)
    end
    else begin
      let args = with_resume args resumed in
      match Wexec.run api ~jobid:this ~prog ~args ~per_rank ~ranks:live () with
      | Error e ->
        active := false;
        Error e
      | Ok c when c.Wexec.c_failed = 0 || k >= max_requeues ->
        active := false;
        Ok { o_jobid = this; o_attempts = k + 1; o_completion = c; o_resumed_from = resumed }
      | Ok _ ->
        requeue_metric ();
        let past = this :: past in
        (* Resume from the newest manifest any past attempt recorded;
           an attempt that died before its first checkpoint restarts
           from the previous attempt's manifest (or from scratch). *)
        let resumed = newest_across kvs ~jobids:past ~max_epoch in
        go (k + 1) ~past ~resumed
    end
  in
  go 0 ~past:[] ~resumed:None
