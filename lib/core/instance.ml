module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Wexec = Flux_modules.Wexec

type cost_model = {
  decision_base : float;
  decision_per_node : float;
  decision_per_job : float;
  start_cost : float;
  bootstrap_base : float;
  bootstrap_per_node : float;
}

let default_cost_model =
  {
    decision_base = 500e-6;
    decision_per_node = 2e-6;
    decision_per_job = 20e-6;
    start_cost = 10e-3;
    bootstrap_base = 2e-3;
    bootstrap_per_node = 100e-6;
  }

type t = {
  i_name : string;
  eng : Engine.t;
  sess : Session.t;
  i_pool : Pool.t;
  mutable i_policy : (module Policy.S);
  cost : cost_model;
  provenance : bool;
  i_parent : t option;
  mutable i_children : t list;
  mutable queue : Job.t list; (* pending, submission order *)
  mutable running : (Job.t * Pool.grant) list;
  mutable all_jobs : Job.t list; (* reversed *)
  mutable pending_submissions : int;
  mutable sched_armed : bool;
  mutable cpu_free_at : float; (* the instance's scheduler CPU *)
  mutable sched_cycles : int;
  mutable idle_cbs : (unit -> unit) list;
  jids : Flux_util.Idgen.t;
  (* Child bookkeeping: the parent-side job that a child instance
     realizes, so completion releases the right grant. *)
  mutable child_grant : Pool.grant option;
  mutable child_job : Job.t option;
  i_nested : bool; (* owns a dedicated comms session; pool ranks are session-local *)
  mutable tracer : Flux_trace.Tracer.t option;
  (* Live span per non-terminal job: rooted at sched.submit, re-spanned
     at sched.match, threaded through wexec for App payloads. *)
  job_ctxs : (string, Flux_trace.Tracer.ctx) Hashtbl.t;
  (* Failure hooks: fired on every transition to Failed, here and
     bubbled up the ancestor chain — the instance-resident requeue
     policy (jobs preempted by a shrink are excluded; the instance
     requeues those itself). *)
  mutable fail_hooks : (t -> Job.t -> unit) list;
  (* Drain-before-shrink bookkeeping: jobs killed to free their nodes
     for a pending donation, the attempt chain of requeued jobs
     (jid -> base, attempt), and nodes still owed to the parent. *)
  preempted : (string, unit) Hashtbl.t;
  origins : (string, string * int) Hashtbl.t;
  mutable pending_donation : int;
}

let name t = t.i_name
let pool t = t.i_pool
let parent t = t.i_parent
let children t = t.i_children

let rec depth t = match t.i_parent with None -> 0 | Some p -> 1 + depth p

let policy_name t =
  let module P = (val t.i_policy) in
  P.name

let jobs t = List.rev t.all_jobs
let queue_length t = List.length t.queue
let running_count t = List.length t.running

(* --- Provenance ------------------------------------------------------- *)

let record_state t (job : Job.t) =
  if t.provenance then begin
    let b = Session.broker t.sess 0 in
    Session.request_up b ~topic:"kvs.mput"
      (Json.obj
         [
           ( "bindings",
             Json.list
               [
                 Json.obj
                   [
                     ("key", Json.string (Printf.sprintf "lwj.%s.state" job.Job.jid));
                     ("v", Json.string (Job.state_to_string job.Job.jstate));
                   ];
               ] );
         ])
      ~reply:(fun _ -> ())
  end

let set_tracer t tr = t.tracer <- tr

let trace t ~name ?ctx ?fields () =
  match t.tracer with
  | Some tr -> Flux_trace.Tracer.emit tr ~cat:"sched" ~name ?ctx ?fields ()
  | None -> ()

let job_ctx t (job : Job.t) = Hashtbl.find_opt t.job_ctxs job.Job.jid

(* Open a fresh span for [job]: the root span at submit, then a child
   span per causal step (match). Terminal states drop the entry. *)
let span_job t (job : Job.t) ~name ?(fields = []) () =
  match t.tracer with
  | None -> ()
  | Some tr ->
    let ctx =
      match Hashtbl.find_opt t.job_ctxs job.Job.jid with
      | None -> Flux_trace.Tracer.root_ctx tr
      | Some parent -> Flux_trace.Tracer.child_ctx tr parent
    in
    Hashtbl.replace t.job_ctxs job.Job.jid ctx;
    Flux_trace.Tracer.emit tr ~cat:"sched" ~name ~ctx
      ~fields:
        ([
           ("jid", Flux_json.Json.string job.Job.jid);
           ("depth", Flux_json.Json.int (depth t));
         ]
        @ fields)
      ()

(* Failure hooks bubble: a leaf job's failure is visible to the leaf's
   own hooks and to every ancestor's, so a center-level requeue policy
   registers once at the root and still sees the whole tree. *)
let rec fire_fail_hooks t ~owner job =
  List.iter (fun f -> f owner job) t.fail_hooks;
  match t.i_parent with Some p -> fire_fail_hooks p ~owner job | None -> ()

let on_job_failed t f = t.fail_hooks <- t.fail_hooks @ [ f ]

let transition t job s =
  Job.set_state job ~now:(Engine.now t.eng) s;
  trace t
    ~name:("job." ^ (match s with
          | Job.Pending -> "pending"
          | Job.Allocated -> "allocated"
          | Job.Running -> "running"
          | Job.Complete -> "complete"
          | Job.Failed _ -> "failed"
          | Job.Cancelled -> "cancelled"))
    ?ctx:(job_ctx t job)
    ~fields:
      [
        ("jid", Flux_json.Json.string job.Job.jid);
        ("nodes", Flux_json.Json.int (List.length job.Job.granted_nodes));
      ]
    ();
  if Job.is_terminal s then Hashtbl.remove t.job_ctxs job.Job.jid;
  record_state t job;
  match s with
  | Job.Failed _ when not (Hashtbl.mem t.preempted job.Job.jid) ->
    fire_fail_hooks t ~owner:t job
  | _ -> ()

(* --- Idle detection ------------------------------------------------------ *)

let is_idle t = t.queue = [] && t.running = [] && t.pending_submissions = 0

let check_idle t = if is_idle t then List.iter (fun f -> f ()) t.idle_cbs

let on_idle t f = t.idle_cbs <- t.idle_cbs @ [ f ]

(* --- Scheduling cycle ------------------------------------------------------ *)

let rec kick t =
  if not t.sched_armed then begin
    t.sched_armed <- true;
    let cost =
      t.cost.decision_base
      +. (t.cost.decision_per_node *. float_of_int (Pool.total_nodes t.i_pool))
      +. (t.cost.decision_per_job *. float_of_int (List.length t.queue))
    in
    let start = Float.max (Engine.now t.eng) t.cpu_free_at in
    t.cpu_free_at <- start +. cost;
    ignore
      (Engine.schedule_at t.eng ~time:(start +. cost) (fun () ->
           t.sched_armed <- false;
           cycle t)
        : Engine.handle)
  end

and cycle t =
  t.sched_cycles <- t.sched_cycles + 1;
  trace t ~name:"cycle" ~fields:[ ("queue", Flux_json.Json.int (List.length t.queue)) ] ();
  adjust_malleable t;
  let module P = (val t.i_policy) in
  let starts =
    P.schedule ~now:(Engine.now t.eng) ~pool:t.i_pool ~queue:t.queue ~running:t.running
  in
  let started_any = ref false in
  List.iter
    (fun { Policy.s_job = job; s_nnodes } ->
      if job.Job.jstate = Job.Pending then
        match Pool.try_grant t.i_pool ~spec:job.Job.spec ~nnodes:s_nnodes with
        | Some grant ->
          started_any := true;
          t.cpu_free_at <-
            Float.max (Engine.now t.eng) t.cpu_free_at +. t.cost.start_cost;
          t.queue <- List.filter (fun j -> j != job) t.queue;
          job.Job.granted_nodes <- grant.Pool.g_nodes;
          span_job t job ~name:"match"
            ~fields:
              [
                ("nodes", Flux_json.Json.int (List.length grant.Pool.g_nodes));
                ("wait", Flux_json.Json.float (Engine.now t.eng -. job.Job.submit_time));
              ]
            ();
          transition t job Job.Allocated;
          launch t job grant
        | None -> ())
    starts;
  (* After placement, grow malleable jobs into whatever stayed idle. *)
  adjust_malleable t;
  if !started_any then () else check_idle t

(* Multilevel resource elasticity (Challenge 3): malleable running jobs
   shrink toward their minimum when other work is queued, and grow
   toward their maximum when the pool would otherwise sit idle. *)
and adjust_malleable t =
  let adjust (job, grant) =
    match job.Job.spec.Jobspec.elasticity with
    | Jobspec.Malleable (min_n, max_n) when job.Job.jstate = Job.Running ->
      let cur = List.length grant.Pool.g_nodes in
      let grant' =
        if t.queue <> [] && cur > min_n then
          Pool.shrink_grant t.i_pool grant ~spec:job.Job.spec ~release:(cur - min_n)
        else if t.queue = [] && cur < max_n then
          match
            Pool.expand_grant t.i_pool grant ~spec:job.Job.spec ~extra:(max_n - cur)
          with
          | Some g -> g
          | None -> grant
        else grant
      in
      job.Job.granted_nodes <- grant'.Pool.g_nodes;
      (job, grant')
    | _ -> (job, grant)
  in
  t.running <- List.map adjust t.running

and finish t job grant outcome =
  (* A job cancelled while its completion timer was in flight has
     already been torn down; ignore the stale event. *)
  if not (Job.is_terminal job.Job.jstate) then begin
    (match outcome with
    | Ok () -> transition t job Job.Complete
    | Error e -> transition t job (Job.Failed e));
    (* Malleable jobs may have traded nodes since launch: release the
       grant currently on record, not the one captured at launch. *)
    let current =
      match List.find_opt (fun (j, _) -> j == job) t.running with
      | Some (_, g) -> g
      | None -> grant
    in
    t.running <- List.filter (fun (j, _) -> j != job) t.running;
    Pool.release t.i_pool current;
    (* Nodes owed to the parent from a draining shrink leave before the
       scheduler can re-grant them to queued work. *)
    settle_pending_donation t;
    if Hashtbl.mem t.preempted job.Job.jid then begin
      Hashtbl.remove t.preempted job.Job.jid;
      requeue_preempted t job
    end;
    kick t;
    check_idle t
  end

and settle_pending_donation t =
  if t.pending_donation > 0 then begin
    match t.i_parent with
    | None -> t.pending_donation <- 0
    | Some p ->
      let moved = Pool.donate_nodes t.i_pool t.pending_donation in
      if moved <> [] then begin
        t.pending_donation <- t.pending_donation - List.length moved;
        Pool.absorb_nodes p.i_pool moved;
        trace t ~name:"shrink.donate"
          ~fields:[ ("nodes", Flux_json.Json.int (List.length moved)) ]
          ();
        kick p
      end
  end

(* A job killed to free its nodes for a shrink is requeued, not
   stranded: it re-enters this instance's queue under a fresh attempt
   jobid (wexec requires fresh ids, and the Checkpoint convention keeps
   its fence names from colliding with state stranded by the killed
   attempt), resuming from the newest checkpoint manifest any prior
   attempt recorded. A job the shrunken pool can no longer hold is
   handed to the {!on_job_failed} chain instead — the center-level
   policy decides where it goes. *)
and requeue_preempted t job =
  let base, k =
    match Hashtbl.find_opt t.origins job.Job.jid with
    | Some (b, k) -> (b, k)
    | None -> (job.Job.jid, 0)
  in
  let fresh = Checkpoint.attempt_jobid base (k + 1) in
  Hashtbl.replace t.origins fresh (base, k + 1);
  match job.Job.job_payload with
  | Job.App { prog; args; per_rank; duration } ->
    if Jobspec.min_nodes job.Job.spec > Pool.total_nodes t.i_pool then
      fire_fail_hooks t ~owner:t job
    else
      ignore
        (Proc.spawn t.eng ~name:("requeue-" ^ fresh) (fun () ->
             let kvs = Flux_kvs.Client.connect t.sess ~rank:0 in
             let past = List.init (k + 1) (Checkpoint.attempt_jobid base) in
             let resumed = Checkpoint.newest_across kvs ~jobids:past ~max_epoch:16 in
             let args = Checkpoint.with_resume args resumed in
             ignore
               (submit ~jid:fresh t ~spec:job.Job.spec
                  ~payload:(Job.App { prog; args; per_rank; duration })
                 : Job.t))
          : Proc.pid)
  | Job.Sleep _ | Job.Child _ | Job.Nested _ -> fire_fail_hooks t ~owner:t job

and launch t job grant =
  t.running <- (job, grant) :: t.running;
  transition t job Job.Running;
  match job.Job.job_payload with
  | Job.Sleep d ->
    ignore
      (Engine.schedule t.eng ~delay:d (fun () -> finish t job grant (Ok ()))
        : Engine.handle)
  | Job.App { prog; args; per_rank; duration } ->
    (* Watch the launch from rank 0 (the wexec master's broker), not a
       granted worker: a worker that dies mid-job stops receiving
       events, and a completion watch parked on it would strand the job
       in Running forever — the enclosing instance must observe the
       failure to requeue the work. *)
    let api = Api.connect t.sess ~rank:0 in
    let trace_ctx = job_ctx t job in
    let args =
      match args with
      | Json.Obj fields -> Json.obj (fields @ [ ("duration", Json.float duration) ])
      | Json.Null -> Json.obj [ ("duration", Json.float duration) ]
      | other -> other
    in
    ignore
      (Proc.spawn t.eng ~name:("launch-" ^ job.Job.jid) (fun () ->
           match
             Wexec.run api ~jobid:job.Job.jid ~prog ~args ~per_rank ?trace_ctx
               ~ranks:grant.Pool.g_nodes ()
           with
           | Ok c ->
             if c.Wexec.c_failed = 0 then finish t job grant (Ok ())
             else
               finish t job grant
                 (Error (Printf.sprintf "%d/%d tasks failed" c.Wexec.c_failed c.Wexec.c_ntasks))
           | Error e -> finish t job grant (Error e))
        : Proc.pid)
  | Job.Child { policy; workload } ->
    (* Parent-bounding: the granted nodes leave this pool entirely and
       become the child's pool; power travels with the grant. *)
    Pool.remove_granted_nodes t.i_pool grant;
    let child =
      create_child t ~policy ~sess:t.sess ~nested:false
        ~nodes:grant.Pool.g_nodes
        ~power_budget:(if grant.Pool.g_power > 0.0 then grant.Pool.g_power else infinity)
        ~job ~grant
    in
    boot_child t child ~grant ~workload
  | Job.Nested { policy; workload } ->
    Pool.remove_granted_nodes t.i_pool grant;
    (* The child gets its own comms session over its nodes, with the
       standard service modules — an independent RJMS instance whose
       traffic and KVS are isolated from the parent's. Its pool is in
       the new session's rank space (0..k-1). *)
    let k = List.length grant.Pool.g_nodes in
    let sub_sess = Session.create_child t.sess ~nodes:grant.Pool.g_nodes () in
    ignore (Flux_kvs.Kvs_module.load sub_sess () : Flux_kvs.Kvs_module.t array);
    ignore (Flux_modules.Barrier.load sub_sess () : Flux_modules.Barrier.t array);
    ignore (Flux_modules.Wexec.load sub_sess () : Flux_modules.Wexec.t array);
    let child =
      create_child t ~policy ~sess:sub_sess ~nested:true
        ~nodes:(List.init k Fun.id)
        ~power_budget:(if grant.Pool.g_power > 0.0 then grant.Pool.g_power else infinity)
        ~job ~grant
    in
    boot_child t child ~grant ~workload

and boot_child t child ~grant ~workload =
    let boot =
      t.cost.bootstrap_base
      +. (t.cost.bootstrap_per_node *. float_of_int (List.length grant.Pool.g_nodes))
    in
    ignore
      (Engine.schedule t.eng ~delay:boot (fun () ->
           submit_plan child workload;
           (* An empty (or fully delayed) workload must still be able to
              complete the child job once everything drains. *)
           check_idle child)
        : Engine.handle)

and create_child t ~policy ~sess ~nested ~nodes ~power_budget ~job ~grant =
  let child =
    {
      i_name = Printf.sprintf "%s/%s" t.i_name job.Job.jid;
      eng = t.eng;
      sess;
      i_pool = Pool.create ~nodes ~power_budget ();
      i_policy = Policy.by_name policy;
      cost = t.cost;
      provenance = t.provenance;
      i_parent = Some t;
      i_children = [];
      queue = [];
      running = [];
      all_jobs = [];
      pending_submissions = 0;
      sched_armed = false;
      cpu_free_at = Engine.now t.eng;
      sched_cycles = 0;
      idle_cbs = [];
      jids = Flux_util.Idgen.create ~prefix:(job.Job.jid ^ ".") ();
      child_grant = Some grant;
      child_job = Some job;
      i_nested = nested;
      tracer = t.tracer;
      job_ctxs = Hashtbl.create 16;
      fail_hooks = [];
      preempted = Hashtbl.create 8;
      origins = Hashtbl.create 8;
      pending_donation = 0;
    }
  in
  t.i_children <- child :: t.i_children;
  (* Child-job completion: when the child instance drains, its nodes
     flow back to the parent and the parent job completes. *)
  on_idle child (fun () ->
      match (child.child_job, child.child_grant) with
      | Some j, Some g when not (Job.is_terminal j.Job.jstate) ->
        (* A nested child's pool lives in its own session's rank space;
           the parent gets back the original grant and the dedicated
           comms session is torn down. A shared child's pool is in
           parent space and may have grown or shrunk. *)
        let current_nodes =
          if child.i_nested then begin
            Session.destroy child.sess;
            g.Pool.g_nodes
          end
          else Pool.free_node_list child.i_pool
        in
        Pool.absorb_nodes t.i_pool current_nodes;
        Pool.release_consumables t.i_pool g;
        t.running <- List.filter (fun (rj, _) -> rj != j) t.running;
        transition t j Job.Complete;
        kick t;
        check_idle t
      | _ -> ());
  child

and submit_plan t subs =
  List.iter
    (fun (s : Job.submission) ->
      t.pending_submissions <- t.pending_submissions + 1;
      ignore
        (Engine.schedule t.eng ~delay:s.Job.sub_after (fun () ->
             t.pending_submissions <- t.pending_submissions - 1;
             ignore (submit t ~spec:s.Job.sub_spec ~payload:s.Job.sub_payload : Job.t))
          : Engine.handle))
    subs

and submit ?jid t ~spec ~payload =
  (match Jobspec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Instance.submit: %s" e));
  if Jobspec.min_nodes spec > Pool.total_nodes t.i_pool then
    invalid_arg
      (Printf.sprintf "Instance.submit: job needs %d nodes, instance owns %d"
         (Jobspec.min_nodes spec) (Pool.total_nodes t.i_pool));
  let jid =
    match jid with Some j -> j | None -> Flux_util.Idgen.next t.jids
  in
  let job = Job.create ~jid ~spec ~payload ~now:(Engine.now t.eng) in
  t.all_jobs <- job :: t.all_jobs;
  t.queue <- t.queue @ [ job ];
  span_job t job ~name:"submit"
    ~fields:[ ("queue", Flux_json.Json.int (List.length t.queue)) ]
    ();
  record_state t job;
  kick t;
  job

(* --- Elasticity --------------------------------------------------------------- *)

type resize_error =
  | Resize_invalid of int  (** non-positive node count requested *)
  | Resize_nested  (** a dedicated comms session cannot be resized *)
  | Resize_root  (** the root has no parent to trade nodes with *)
  | Resize_exhausted  (** the parent chain had no free node to move *)
  | Resize_draining of int
      (** no node moved yet, but this many are being drained: running
          tasks were preempted (and requeued) and their nodes flow to
          the parent as the grants release *)

let resize_error_to_string = function
  | Resize_invalid n -> Printf.sprintf "invalid node count %d (must be positive)" n
  | Resize_nested -> "nested instance: a dedicated comms session cannot be resized"
  | Resize_root -> "root instance: no parent to trade nodes with"
  | Resize_exhausted -> "no free nodes available to move"
  | Resize_draining n ->
    Printf.sprintf "draining: %d node%s freeing as preempted tasks requeue" n
      (if n = 1 then "" else "s")

(* A resize that moves zero nodes is an error, not Ok 0: callers that
   treated the old bare-int no-op as success silently stalled the
   elasticity loop (the roadmap's autoscaler needs the distinction). *)
let resize_guard t ~nnodes k =
  if nnodes <= 0 then Error (Resize_invalid nnodes)
  else if t.i_nested then Error Resize_nested
  else match t.i_parent with None -> Error Resize_root | Some p -> k p

let rec request_grow t ~nnodes =
  resize_guard t ~nnodes (fun p ->
      (* Parental consent: the parent serves from its free pool, asking
         its own parent for the shortfall first. *)
      let shortfall = nnodes - Pool.free_nodes p.i_pool in
      if shortfall > 0 then
        ignore (request_grow p ~nnodes:shortfall : (int, resize_error) result);
      let granted = Pool.donate_nodes p.i_pool nnodes in
      Pool.absorb_nodes t.i_pool granted;
      if granted = [] then Error Resize_exhausted
      else begin
        kick t;
        Ok (List.length granted)
      end)

(* Drain-before-shrink: when free nodes cannot cover the request, kill
   running wexec jobs (newest launch first — the least work lost) and
   requeue them under fresh attempt ids; their nodes flow to the parent
   as the grants release. Sleep jobs are pure timers that cannot be
   interrupted and Child/Nested jobs own their nodes outright, so only
   App payloads are preemptible. Returns the node count being drained. *)
let preempt_for_shrink t ~need =
  let victims =
    let rec pick covered acc = function
      | [] -> List.rev acc
      | (job, grant) :: rest ->
        if covered >= need then List.rev acc
        else begin
          match job.Job.job_payload with
          | Job.App _
            when job.Job.jstate = Job.Running
                 && not (Hashtbl.mem t.preempted job.Job.jid) ->
            pick (covered + List.length grant.Pool.g_nodes) ((job, grant) :: acc) rest
          | _ -> pick covered acc rest
        end
    in
    pick 0 [] t.running
  in
  let covered =
    List.fold_left (fun acc (_, g) -> acc + List.length g.Pool.g_nodes) 0 victims
  in
  let draining = min covered need in
  if draining > 0 then begin
    t.pending_donation <- t.pending_donation + draining;
    let api = Api.connect t.sess ~rank:0 in
    List.iter
      (fun ((job : Job.t), _) ->
        Hashtbl.replace t.preempted job.Job.jid ();
        trace t ~name:"job.preempt" ?ctx:(job_ctx t job)
          ~fields:
            [
              ("jid", Flux_json.Json.string job.Job.jid);
              ("nodes", Flux_json.Json.int (List.length job.Job.granted_nodes));
            ]
          ();
        Wexec.kill api ~jobid:job.Job.jid)
      victims
  end;
  draining

let request_shrink t ~nnodes =
  resize_guard t ~nnodes (fun p ->
      let returned = Pool.donate_nodes t.i_pool nnodes in
      Pool.absorb_nodes p.i_pool returned;
      let moved = List.length returned in
      let shortfall = nnodes - moved in
      let draining = if shortfall > 0 then preempt_for_shrink t ~need:shortfall else 0 in
      if moved > 0 then begin
        kick p;
        Ok moved
      end
      else if draining > 0 then Error (Resize_draining draining)
      else Error Resize_exhausted)

let set_power_cap t w =
  let old = Pool.power_budget t.i_pool in
  Pool.set_power_budget t.i_pool w;
  if w > old then kick t

(* --- Construction ----------------------------------------------------------------- *)

let create_root sess ?(policy = "fcfs") ?(cost_model = default_cost_model)
    ?(power_budget = infinity) ?(fs_bandwidth = infinity) ?(provenance = false) ~name () =
  {
    i_name = name;
    eng = Session.engine sess;
    sess;
    i_pool =
      Pool.create ~nodes:(List.init (Session.size sess) Fun.id) ~power_budget
        ~fs_bandwidth ();
    i_policy = Policy.by_name policy;
    cost = cost_model;
    provenance;
    i_parent = None;
    i_children = [];
    queue = [];
    running = [];
    all_jobs = [];
    pending_submissions = 0;
    sched_armed = false;
    cpu_free_at = 0.0;
    sched_cycles = 0;
    idle_cbs = [];
    jids = Flux_util.Idgen.create ~prefix:(name ^ ".") ();
    child_grant = None;
    child_job = None;
    i_nested = false;
    tracer = None;
    job_ctxs = Hashtbl.create 16;
    fail_hooks = [];
    preempted = Hashtbl.create 8;
    origins = Hashtbl.create 8;
    pending_donation = 0;
  }

(* --- Cancellation ----------------------------------------------------------------- *)

let cancel t ~jid =
  match List.find_opt (fun (j : Job.t) -> String.equal j.Job.jid jid) (jobs t) with
  | None -> false
  | Some job -> (
    match job.Job.jstate with
    | Job.Pending ->
      t.queue <- List.filter (fun j -> j != job) t.queue;
      transition t job Job.Cancelled;
      check_idle t;
      true
    | Job.Running | Job.Allocated -> (
      match job.Job.job_payload with
      | Job.Child _ | Job.Nested _ ->
        (* A running child instance owns its nodes outright; cancelling
           the wrapper under it is not supported — drain or cancel the
           child's own jobs instead. *)
        false
      | Job.Sleep _ | Job.App _ -> (
        match List.find_opt (fun (j, _) -> j == job) t.running with
        | Some (_, grant) ->
          (match job.Job.job_payload with
          | Job.App _ ->
            let api = Api.connect t.sess ~rank:0 in
            Wexec.kill api ~jobid:jid
          | Job.Sleep _ | Job.Child _ | Job.Nested _ -> ());
          t.running <- List.filter (fun (j, _) -> j != job) t.running;
          transition t job Job.Cancelled;
          Pool.release t.i_pool grant;
          kick t;
          check_idle t;
          true
        | None -> false))
    | Job.Complete | Job.Failed _ | Job.Cancelled -> false)

(* --- Metrics --------------------------------------------------------------------- *)

type stats = {
  st_completed : int;
  st_failed : int;
  st_cancelled : int;
  st_sched_cycles : int;
  st_mean_wait : float;
  st_makespan : float;
  st_node_seconds : float;
}

let stats t =
  let all = jobs t in
  let completed = List.filter (fun (j : Job.t) -> j.Job.jstate = Job.Complete) all in
  let failed =
    List.filter (fun (j : Job.t) -> match j.Job.jstate with Job.Failed _ -> true | _ -> false) all
  in
  let cancelled = List.filter (fun (j : Job.t) -> j.Job.jstate = Job.Cancelled) all in
  let waits = List.map Job.wait_time completed in
  let first_submit =
    List.fold_left (fun acc (j : Job.t) -> Float.min acc j.Job.submit_time) infinity all
  in
  let last_end =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.Job.end_time) neg_infinity completed
  in
  {
    st_completed = List.length completed;
    st_failed = List.length failed;
    st_cancelled = List.length cancelled;
    st_sched_cycles = t.sched_cycles;
    st_mean_wait =
      (if waits = [] then 0.0
       else List.fold_left ( +. ) 0.0 waits /. float_of_int (List.length waits));
    st_makespan = (if completed = [] then 0.0 else last_end -. first_submit);
    st_node_seconds =
      List.fold_left
        (fun acc (j : Job.t) ->
          acc +. (Job.runtime j *. float_of_int (List.length j.Job.granted_nodes)))
        0.0 completed;
  }

let rec stats_recursive t =
  let mine = stats t in
  List.fold_left
    (fun acc child ->
      let s = stats_recursive child in
      {
        st_completed = acc.st_completed + s.st_completed;
        st_failed = acc.st_failed + s.st_failed;
        st_cancelled = acc.st_cancelled + s.st_cancelled;
        st_sched_cycles = acc.st_sched_cycles + s.st_sched_cycles;
        st_mean_wait =
          (* weighted by completions *)
          (let a = acc.st_mean_wait *. float_of_int acc.st_completed
           and b = s.st_mean_wait *. float_of_int s.st_completed in
           let n = acc.st_completed + s.st_completed in
           if n = 0 then 0.0 else (a +. b) /. float_of_int n);
        st_makespan = Float.max acc.st_makespan s.st_makespan;
        st_node_seconds = acc.st_node_seconds +. s.st_node_seconds;
      })
    mine t.i_children
