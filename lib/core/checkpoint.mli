(** Checkpoint/requeue driver — the SCR-style resilience workload run as
    a first-class pattern: launch a job whose tasks checkpoint through
    {!Flux_modules.Wexec.checkpoint}, detect node death through the
    session's liveness plane, and requeue the job on the surviving ranks
    pinned to the newest verified manifest.

    Programs run under this driver should read the ["resume"] member of
    their args: when present it is a {!Flux_modules.Wexec.manifest}
    (as JSON) and the program should resume from epoch [m_epoch + 1],
    reading its state back from the keys the manifest's fence covered.
    Non-object args are wrapped as [{"base": args, "resume": ...}] on
    requeue. *)

val attempt_jobid : string -> int -> string
(** [attempt_jobid base k] — the jobid of requeue attempt [k]: [base]
    itself for [k = 0], [<base>.r<k>] after. Fresh per attempt so a
    requeued job's checkpoint fences cannot collide with aggregation
    state stranded by the attempt it replaces. *)

val with_resume :
  Flux_json.Json.t -> Flux_modules.Wexec.manifest option -> Flux_json.Json.t
(** Merge a resume manifest into a job's args under the ["resume"]
    member (non-object args are wrapped as [{"base": args; ...}]);
    identity when the manifest is [None]. *)

val newest_across :
  Flux_kvs.Client.t ->
  jobids:string list ->
  max_epoch:int ->
  Flux_modules.Wexec.manifest option
(** The newest verified manifest found across an attempt chain: each
    jobid is scanned with {!Flux_modules.Wexec.newest_manifest} and the
    highest epoch wins. Blocking — must run inside a
    {!Flux_sim.Proc} body. *)

type outcome = {
  o_jobid : string;  (** jobid of the attempt that completed *)
  o_attempts : int;  (** total attempts, including the first *)
  o_completion : Flux_modules.Wexec.completion;
  o_resumed_from : Flux_modules.Wexec.manifest option;
      (** the manifest the final attempt resumed from, if any *)
}

val run_resilient :
  Flux_cmb.Api.t ->
  kvs:Flux_kvs.Client.t ->
  ?metrics:Flux_trace.Metrics.t ->
  ?max_requeues:int ->
  ?max_epoch:int ->
  jobid:string ->
  prog:string ->
  ?args:Flux_json.Json.t ->
  ?per_rank:int ->
  ranks:int list ->
  unit ->
  (outcome, string) result
(** Run [prog] to completion, requeueing up to [max_requeues] (default
    3) times. Each requeue runs under a fresh jobid ([<jobid>.r<k>], so
    its checkpoint fences cannot collide with aggregation state stranded
    by the dead attempt), restricted to ranks live at resubmission, with
    args carrying the newest manifest found across all prior attempts
    (epochs scanned down from [max_epoch], default 64).

    A liveness watch kills the running attempt when one of its ranks
    goes down: the wexec master's death accounting completes the job
    with failures, and tasks parked in a fence the dead rank can no
    longer join are destroyed rather than left hanging. Each requeue
    increments the ["ckpt.requeue"] counter on [metrics] when given.

    Returns the final attempt's completion — with [c_failed = 0] if the
    job eventually ran clean, or the failing completion once the requeue
    budget is exhausted. Must run inside a {!Flux_sim.Proc} body. *)
