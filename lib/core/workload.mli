(** Synthetic workload generators for scheduler studies.

    The paper motivates the hierarchy with diverse, dynamic workloads —
    in particular ensembles (Uncertainty Quantification, scale-bridging)
    of many small jobs rather than single monolithic ones. These
    generators produce such streams deterministically from a seed. *)

module Rng = Flux_util.Rng

val uq_ensemble :
  Rng.t ->
  n:int ->
  ?nodes_each:int ->
  ?mean_duration:float ->
  ?arrival_rate:float ->
  unit ->
  Job.submission list
(** [n] single-or-few-node jobs with exponential durations arriving as a
    Poisson stream ([arrival_rate] jobs/s, default: all at t=0). *)

val batch_mix :
  Rng.t ->
  n:int ->
  max_nodes:int ->
  ?mean_duration:float ->
  ?arrival_rate:float ->
  ?overestimate:float ->
  unit ->
  Job.submission list
(** A classic batch mix: node counts log-uniform in [1, max_nodes],
    exponential durations, walltime estimates [overestimate] x the true
    duration (default 2.0 — users overestimate). *)

val io_phased :
  Rng.t ->
  n:int ->
  max_nodes:int ->
  fs_bandwidth_each:float ->
  ?mean_duration:float ->
  unit ->
  Job.submission list
(** Jobs that also consume shared-filesystem bandwidth while running —
    used to demonstrate co-scheduling compute with the global file
    system. *)

val pilot_tasks :
  Rng.t ->
  n:int ->
  ?prog:string ->
  ?mean_duration:float ->
  ?min_duration:float ->
  ?arrival_rate:float ->
  unit ->
  Job.submission list
(** A pilot-style many-task stream (Merzky et al.): [n] single-node
    tasks with exponential sub-second durations (default mean 0.1 s,
    floor 0.01 s) arriving open-loop at [arrival_rate] tasks/s (default:
    all at t=0). With [prog] each task is a wexec [App] launch whose
    args carry a stable logical task id ([tid] = stream index) for
    exactly-once accounting across requeues; without, [Sleep] payloads
    drawn from the identical random sequence — the same stream shape for
    baselines with no wexec stack. *)

val nest :
  depth:int ->
  children:int ->
  policy:string ->
  nnodes:int ->
  Job.submission list ->
  Job.submission list
(** Wrap a task stream into [depth] levels of child instances fanning
    out [children] ways per level, splitting [nnodes] evenly; the tasks
    are dealt round-robin across the [children ^ depth] leaves.
    [depth = 0] returns the stream unchanged. *)

val split_round_robin : int -> Job.submission list -> Job.submission list list
(** Deal a stream across [k] child instances (for two-level setups). *)

val total_node_seconds : Job.submission list -> float
(** Work contained in a stream (sum of nnodes x duration). *)
