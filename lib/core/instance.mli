(** A Flux instance: an independent RJMS that owns a resource pool,
    runs a scheduler over it, and can recursively host child instances
    (Section III's job hierarchy model).

    The three hierarchy rules are enforced here:
    - {e parent bounding}: a child's pool is carved out of its parent's
      grant and can never exceed it;
    - {e child empowerment}: within those bounds the child schedules
      independently, with its own policy and its own (modeled) scheduler
      CPU — sibling instances schedule concurrently;
    - {e parental consent}: a child grows or shrinks only by asking its
      parent, which may recursively ask {e its} parent.

    Instances launch [App] payloads through the wexec comms module on
    the shared center session (the session must have kvs, barrier and
    wexec loaded); [Sleep] payloads model synthetic work for scheduler
    studies; [Child] payloads create nested instances. *)

type t

type cost_model = {
  decision_base : float;  (** seconds per scheduling cycle *)
  decision_per_node : float;  (** + this x pool size *)
  decision_per_job : float;  (** + this x queue length *)
  start_cost : float;
      (** serialized controller work per job start (launch bureaucracy:
          prolog, credential, RPCs) — the per-job throughput limit of a
          monolithic controller *)
  bootstrap_base : float;  (** creating a child instance *)
  bootstrap_per_node : float;  (** + this x child nodes *)
}

val default_cost_model : cost_model

val create_root :
  Flux_cmb.Session.t ->
  ?policy:string ->
  ?cost_model:cost_model ->
  ?power_budget:float ->
  ?fs_bandwidth:float ->
  ?provenance:bool ->
  name:string ->
  unit ->
  t
(** Root instance owning every rank of the session. [provenance]
    (default false) records job state transitions in the KVS under
    [lwj.<jid>.state]. *)

(** {1 Identity and introspection} *)

val name : t -> string
val pool : t -> Pool.t
val parent : t -> t option
val children : t -> t list
val depth : t -> int
val policy_name : t -> string
val jobs : t -> Job.t list
(** Every job ever submitted to this instance, in submission order. *)

val queue_length : t -> int
val running_count : t -> int

(** {1 Workload} *)

val submit : ?jid:string -> t -> spec:Jobspec.t -> payload:Job.payload -> Job.t
(** Enqueue a job now. Raises [Invalid_argument] on an invalid spec or
    a spec whose minimum node count exceeds the instance pool. *)

val submit_plan : t -> Job.submission list -> unit
(** Enqueue each submission after its [sub_after] delay. *)

val cancel : t -> jid:string -> bool
(** Cancel a pending or running job; false if unknown or terminal. *)

val on_idle : t -> (unit -> unit) -> unit
(** [f] fires whenever the instance drains (empty queue, nothing
    running, no submissions pending). *)

val on_job_failed : t -> (t -> Job.t -> unit) -> unit
(** [on_job_failed t f] calls [f owner job] whenever a job transitions
    to [Failed] — in this instance or any descendant ([owner] is the
    instance the job belongs to; failures bubble up the ancestor
    chain), so a center-level requeue policy registers once at the root
    and sees the whole tree. Hooks run synchronously at the transition,
    in registration order, before the dying job's grant is released.
    Jobs preempted by a draining {!request_shrink} are excluded: the
    instance requeues those itself. *)

(** {1 Elasticity (parental-consent rule)} *)

type resize_error =
  | Resize_invalid of int  (** non-positive node count requested *)
  | Resize_nested  (** a dedicated comms session cannot be resized *)
  | Resize_root  (** the root has no parent to trade nodes with *)
  | Resize_exhausted  (** the parent chain had no free node to move *)
  | Resize_draining of int
      (** no node moved yet, but this many are being drained: running
          wexec jobs were preempted (killed and requeued under fresh
          attempt ids) and their nodes flow to the parent as the grants
          release — the caller should treat this as an action in
          progress, not a refusal *)

val resize_error_to_string : resize_error -> string

val request_grow : t -> nnodes:int -> (int, resize_error) result
(** Ask the parent chain for more nodes; [Ok n] means [n >= 1] nodes
    were granted and absorbed into this instance's pool (possibly fewer
    than requested). A resize that cannot move a single node is a
    structured error — never [Ok 0] — so elasticity controllers can
    distinguish a partial grant from a silent no-op. *)

val request_shrink : t -> nnodes:int -> (int, resize_error) result
(** Return up to [nnodes] nodes to the parent. Free nodes move
    immediately ([Ok n], [n >= 1] counting only those). A shortfall is
    covered by {e drain-before-shrink}: running wexec jobs are
    preempted newest-first — killed, then requeued on this instance
    under fresh Checkpoint-style attempt jobids ([<jid>.r<k>]) resuming
    from the newest verified manifest any prior attempt recorded — and
    their nodes are donated as the grants release. When nothing is free
    but a drain started, the result is [Error (Resize_draining n)];
    when not even a drain is possible, [Error Resize_exhausted]. A
    preempted job the shrunken pool can no longer hold is handed to the
    {!on_job_failed} chain instead of silently stranding. *)

(** {1 Power (site-wide constraint)} *)

val set_power_cap : t -> float -> unit
(** Impose a power cap on this instance; it also bounds every future
    child. Lowering below current draw stalls new starts until jobs
    finish. A new scheduling cycle is kicked automatically when the cap
    rises. *)

val set_tracer : t -> Flux_trace.Tracer.t option -> unit
(** Emit category ["sched"] events: [job.<state>] on every transition
    (with the job id and node count) and [cycle] per scheduling cycle
    (with queue length). Each job also carries a causal span chain —
    ["submit"] opens a root span (fields [jid], [depth], [queue]) and
    ["match"] a child span when the grant lands (fields [jid], [depth],
    [nodes], [wait]) — which [App] payloads thread through wexec, so a
    traced run decomposes per-level scheduler-hop latency
    ([sched.submit -> sched.match -> wexec.start -> wexec.complete]).
    Children created later inherit the tracer. *)

(** {1 Metrics} *)

type stats = {
  st_completed : int;
  st_failed : int;
  st_cancelled : int;
  st_sched_cycles : int;
  st_mean_wait : float;  (** over completed jobs *)
  st_makespan : float;  (** last completion - first submission *)
  st_node_seconds : float;  (** sum of runtime x nodes over completed jobs *)
}

val stats : t -> stats

val stats_recursive : t -> stats
(** Aggregated over this instance and all descendants. *)
