module Json = Flux_json.Json

(* Pure anomaly detection over one rollup epoch (plus a short series
   window for trends). Everything here is a function from data to
   alerts — no clocks, no state — so detection is trivially
   deterministic and unit-testable against hand-built distributions. *)

type kind = Straggler | Queue_growth | Silent

type alert = {
  al_kind : kind;
  al_epoch : int;
  al_rank : int; (* -1 for center-level alerts (queue growth) *)
  al_metric : string;
  al_value : float; (* the offending observation *)
  al_threshold : float; (* the bound it crossed *)
  al_detail : string;
}

let kind_to_string = function
  | Straggler -> "straggler"
  | Queue_growth -> "queue_growth"
  | Silent -> "silent"

let alert_fields a =
  [
    ("kind", Json.string (kind_to_string a.al_kind));
    ("epoch", Json.int a.al_epoch);
    ("alert_rank", Json.int a.al_rank);
    ("metric", Json.string a.al_metric);
    ("value", Json.float a.al_value);
    ("threshold", Json.float a.al_threshold);
    ("detail", Json.string a.al_detail);
  ]

let alert_to_json a = Json.obj (alert_fields a)

let pp_alert ppf a =
  Format.fprintf ppf "epoch %d %s %s rank=%d value=%.6g threshold=%.6g (%s)" a.al_epoch
    (kind_to_string a.al_kind) a.al_metric a.al_rank a.al_value a.al_threshold a.al_detail

(* --- Stragglers: k·MAD outliers over the cross-rank distribution ------- *)

let median sorted =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n mod 2 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

(* Median absolute deviation: robust to the very outliers we hunt —
   one straggler cannot inflate the spread estimate the way it would a
   standard deviation. *)
let mad ~center values =
  let devs = Array.map (fun v -> Float.abs (v -. center)) values in
  Array.sort compare devs;
  median devs

(* A rank straggles when its value exceeds median + k * MAD (one-sided:
   being fast is not an anomaly). Degenerate epochs where every rank
   agrees make MAD 0; [min_spread] (default 1% of |median|, floored at
   1 ns) keeps noise-level jitter from flagging the whole cluster. *)
let stragglers ?min_spread ~k ~epoch ~metric values =
  if List.length values < 3 then [] (* no meaningful distribution *)
  else begin
    let arr = Array.of_list (List.map snd values) in
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    let med = median sorted in
    let spread =
      let floor_ =
        match min_spread with Some s -> s | None -> Float.max 1e-9 (0.01 *. Float.abs med)
      in
      Float.max floor_ (mad ~center:med arr)
    in
    let threshold = med +. (k *. spread) in
    List.filter_map
      (fun (rank, v) ->
        if v > threshold then
          Some
            {
              al_kind = Straggler;
              al_epoch = epoch;
              al_rank = rank;
              al_metric = metric;
              al_value = v;
              al_threshold = threshold;
              al_detail =
                Printf.sprintf "%.6g > median %.6g + %.3g*MAD %.6g" v med k spread;
            }
        else None)
      (List.sort compare values)
  end

(* --- Queue growth: gauge slope over the last w epochs ------------------ *)

(* Least-squares slope in value-per-epoch of (epoch, value) points.
   Epochs need not be contiguous (a partial rollup skips epochs). *)
let trend_slope points =
  let n = List.length points in
  if n < 2 then 0.0
  else begin
    let nf = float_of_int n in
    let sx, sy =
      List.fold_left (fun (sx, sy) (e, v) -> (sx +. float_of_int e, sy +. v)) (0.0, 0.0) points
    in
    let mx = sx /. nf and my = sy /. nf in
    let num, den =
      List.fold_left
        (fun (num, den) (e, v) ->
          let dx = float_of_int e -. mx in
          (num +. (dx *. (v -. my)), den +. (dx *. dx)))
        (0.0, 0.0) points
    in
    if den = 0.0 then 0.0 else num /. den
  end

(* The shed *precursor*: a queue-depth gauge climbing steadily is the
   signal an elasticity controller acts on before admission control
   starts rejecting work. Fires when the slope over the window exceeds
   [slope_threshold] (units/epoch) and the window is fully observed. *)
let queue_growth ?(min_points = 3) ~slope_threshold ~epoch ~metric points =
  if List.length points < min_points then []
  else begin
    let slope = trend_slope points in
    if slope > slope_threshold then
      [
        {
          al_kind = Queue_growth;
          al_epoch = epoch;
          al_rank = -1;
          al_metric = metric;
          al_value = slope;
          al_threshold = slope_threshold;
          al_detail =
            Printf.sprintf "slope %.6g/epoch over %d epochs" slope (List.length points);
        };
      ]
    else []
  end

(* --- Silent ranks: expected sample missing without a mark_down --------- *)

let silent_ranks ~epoch ~expected ~heard ~down =
  List.filter_map
    (fun r ->
      if List.mem r heard || List.mem r down then None
      else
        Some
          {
            al_kind = Silent;
            al_epoch = epoch;
            al_rank = r;
            al_metric = "telem.sample";
            al_value = 0.0;
            al_threshold = 1.0;
            al_detail = "expected rollup contribution missing and rank not marked down";
          })
    (List.sort compare expected)
