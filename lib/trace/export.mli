(** Rendering trace streams for humans and tools. *)

val to_jsonl : Tracer.t -> string
(** One JSON object per line (ts, cat, name, rank, fields) — the format
    external analysis tools would ingest. *)

val event_to_json : Tracer.event -> Flux_json.Json.t
(** One event as the {!to_jsonl} row object. *)

val event_of_json : Flux_json.Json.t -> Tracer.event
(** Parse one line back (inverse of the {!to_jsonl} row encoding). *)

val to_text : Tracer.t -> string
(** Human-readable listing, one event per line, time-ordered. *)

val summary : Tracer.t -> string
(** Per-(category, name) table: occurrence count and, where spans were
    recorded, total virtual duration. *)

val counters_csv : Tracer.t -> string
(** {!summary} as machine-readable CSV:
    [category,name,count,total_dur_s]. *)

val to_perfetto : Tracer.t -> string
(** Chrome / Perfetto trace-event JSON ([{"traceEvents": [...]}]).
    Ranks map to processes, categories to named threads; events with a
    ["dur"] field become complete ("X") slices anchored at span start,
    others thread-scoped instants. Load with ui.perfetto.dev or
    chrome://tracing. *)

val events_to_perfetto : Tracer.event list -> string
(** Same rendering over an explicit event list — what a flight-recorder
    dump (a slice of one rank's recent history) exports. *)

type fence_breakdown = {
  fb_name : string;
  fb_start : float;  (** earliest [kvs fence.enter] *)
  fb_commit_begin : float;  (** root saw the last contribution *)
  fb_publish : float;  (** root finished applying, published setroot *)
  fb_end : float;
      (** last fence [rpc.done] (the client release); the last
          [setroot.deliver] when ["cmb"] events were not retained *)
  fb_ascent : float;
  fb_commit : float;
  fb_broadcast : float;
  fb_total : float;  (** = ascent + commit + broadcast, telescoping *)
}

val fence_critical_path : Tracer.t -> name:string -> (fence_breakdown, string) result
(** Decompose one traced fence into the paper's Fig. 4 components:
    tree ascent, root commit, and setroot broadcast + client release.
    Requires the run to have been traced with the ["kvs"] category
    retained (and ["cmb"] for the precise client-release endpoint);
    [Error] names the missing event otherwise. *)

val pp_fence_breakdown : Format.formatter -> fence_breakdown -> unit

val fault_counters_csv :
  ?extra:(string * int) list ->
  rpc_timeouts:int ->
  rpc_retries:int ->
  dead_letters:int ->
  dropped:int ->
  unit ->
  string
(** The failure-diagnosis counters (session RPC lifecycle + Net
    accounting) as a [metric,value] CSV. Takes plain integers so this
    library stays independent of the simulator; callers feed it
    [Session.rpc_timeouts], [Net.stats ...] etc., plus any [extra]
    rows (e.g. takeover counts). *)

val fault_counters_csv_of : ?extra:(string * int) list -> Tracer.t -> string
(** Same CSV, sourced from the tracer's counter table
    ([cmb.rpc.timeout], [cmb.rpc.retry], [net.dead_letter],
    [net.drop]) — no hand-threaded integers. *)
