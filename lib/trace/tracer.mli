(** Structured run-time tracing.

    The paper's Challenge 1 calls for "managing a drastically increased
    amount of run-time information that must be monitored, traced, and
    stored". This tracer is the common sink: subsystems emit typed
    events (category + name + rank + fields), the tracer filters,
    counts, bounds memory, and can notify subscribers; {!Export} renders
    the stream for humans or machines.

    One tracer serves one simulation; it is driven by the virtual clock
    supplied at creation, so traces are as deterministic as the runs
    that produce them. *)

module Json = Flux_json.Json

type event = {
  ev_ts : float;  (** virtual time *)
  ev_cat : string;  (** subsystem: "cmb", "kvs", "sched", ... *)
  ev_name : string;  (** e.g. "send", "commit", "job.start" *)
  ev_rank : int;  (** originating rank, -1 when not rank-bound *)
  ev_fields : (string * Json.t) list;
}

type ctx = { tc_trace : int; tc_span : int; tc_parent : int }
(** Dapper-style causal context carried in message envelopes: every
    span belongs to a trace ([tc_trace], the root span's id), has its
    own id ([tc_span]) and points at the span that caused it
    ([tc_parent], 0 for roots). Ids come from a per-tracer monotonic
    counter, so traced runs stay deterministic. *)

type t

val create : ?capacity:int -> now:(unit -> float) -> unit -> t
(** [capacity] bounds retained events (default 100_000, oldest dropped);
    counters are never dropped. *)

val now : t -> float
(** The tracer's clock (virtual time in a simulation). *)

val root_ctx : t -> ctx
(** Start a new trace: a fresh root span whose id doubles as the
    trace id. *)

val child_ctx : t -> ctx -> ctx
(** A fresh span caused by [parent], in the same trace. *)

val ctx_fields : ctx -> (string * Json.t) list
(** The ["trace"]/["span"]/["parent"] fields {!emit} attaches for
    [?ctx]; exposed for code that assembles field lists by hand. *)

val enable : t -> cats:string list -> unit
(** Retain events only for the listed categories ([[]] = everything,
    the default). Filtering also suppresses subscriber callbacks. *)

val emit :
  t ->
  cat:string ->
  name:string ->
  ?rank:int ->
  ?ctx:ctx ->
  ?fields:(string * Json.t) list ->
  unit ->
  unit
(** Record one event (subject to the category filter) and bump the
    [cat.name] counter (always). [?ctx] prepends the causal
    trace/span/parent fields (only when the event is retained, so
    filtered categories stay allocation-free). *)

val add_count : t -> cat:string -> name:string -> int -> unit
(** Bump the [cat.name] counter by [n] without recording an event.
    Lets subsystems fold pre-existing integer counters (fault counts,
    byte totals) into the one counter namespace. *)

val span : t -> cat:string -> name:string -> ?rank:int -> (unit -> 'a) -> 'a
(** [span t ~cat ~name f] runs [f], emitting one event carrying the
    elapsed virtual duration in field ["dur"]. For blocking protocol
    code inside {!Flux_sim.Proc} bodies. Exceptions propagate after the
    event is recorded with field ["raised"] = true and the
    [cat.name.raised] counter bumped, so failures show up in
    {!Export.counters_csv} too. *)

val subscribe : t -> (event -> unit) -> unit
(** Called for every retained event. *)

val events : t -> event list
(** Retained events, oldest first. *)

val dropped : t -> int
(** Events discarded by the capacity bound. Each drop also bumps the
    [trace.dropped] counter, so truncation shows up in
    {!Export.counters_csv} and {!Export.summary} alongside every other
    signal. *)

val capacity : t -> int
(** The retained-event bound this tracer was created with. *)

val count : t -> cat:string -> name:string -> int
(** Occurrences of [cat.name] since creation (includes filtered ones). *)

val counters : t -> ((string * string) * int) list
(** All counters, sorted by key. *)

val total_duration : t -> cat:string -> name:string -> float
(** Sum of ["dur"] fields recorded by {!span} for this key. *)

val clear : t -> unit
(** Drop retained events and reset counters. *)
