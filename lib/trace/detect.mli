(** Pure anomaly detectors over telemetry rollup epochs.

    Each detector is a function from data to structured alerts — no
    clocks, no hidden state — so the telemetry plane's alert stream is
    exactly as deterministic as the rollups feeding it. The three
    detectors cover the paper's center-scale monitoring concerns:
    cross-rank outliers (stragglers), queue-depth trends (the overload
    precursor an elasticity controller acts on), and ranks that went
    quiet without the failure detector noticing. *)

module Json = Flux_json.Json

type kind = Straggler | Queue_growth | Silent

type alert = {
  al_kind : kind;
  al_epoch : int;
  al_rank : int;  (** -1 for center-level alerts (queue growth) *)
  al_metric : string;
  al_value : float;  (** the offending observation *)
  al_threshold : float;  (** the bound it crossed *)
  al_detail : string;
}

val kind_to_string : kind -> string

val alert_fields : alert -> (string * Json.t) list
(** The field list a [telem.alert] trace event carries. *)

val alert_to_json : alert -> Json.t
val pp_alert : Format.formatter -> alert -> unit

val stragglers :
  ?min_spread:float ->
  k:float ->
  epoch:int ->
  metric:string ->
  (int * float) list ->
  alert list
(** [stragglers ~k ~epoch ~metric per_rank] flags every rank whose
    value exceeds [median + k * MAD] of the cross-rank distribution
    (one-sided — fast ranks are not anomalies). MAD is floored at
    [min_spread] (default 1% of |median|, at least 1 ns) so degenerate
    all-equal epochs never flag noise. Fewer than 3 ranks yields no
    alerts (no meaningful distribution). Output is rank-ascending. *)

val trend_slope : (int * float) list -> float
(** Least-squares slope (value per epoch) of the points; 0 with fewer
    than two points or a degenerate epoch axis. *)

val queue_growth :
  ?min_points:int ->
  slope_threshold:float ->
  epoch:int ->
  metric:string ->
  (int * float) list ->
  alert list
(** One alert when the slope over the window exceeds [slope_threshold]
    units/epoch and at least [min_points] (default 3) epochs were
    observed. *)

val silent_ranks :
  epoch:int -> expected:int list -> heard:int list -> down:int list -> alert list
(** One alert per expected rank that neither contributed to the epoch
    nor is known-down — the "expected sample missing without a
    mark_down" case. Output is rank-ascending. *)
