module Json = Flux_json.Json

let event_to_json (e : Tracer.event) =
  Json.obj
    [
      ("ts", Json.float e.Tracer.ev_ts);
      ("cat", Json.string e.Tracer.ev_cat);
      ("name", Json.string e.Tracer.ev_name);
      ("rank", Json.int e.Tracer.ev_rank);
      ("fields", Json.obj e.Tracer.ev_fields);
    ]

let event_of_json j =
  {
    Tracer.ev_ts = Json.to_float (Json.member "ts" j);
    ev_cat = Json.to_string_v (Json.member "cat" j);
    ev_name = Json.to_string_v (Json.member "name" j);
    ev_rank = Json.to_int (Json.member "rank" j);
    ev_fields = Json.to_obj (Json.member "fields" j);
  }

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (Tracer.events t);
  Buffer.contents buf

let to_text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Tracer.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%12.6f %-6s %-20s %s%s\n" e.Tracer.ev_ts e.Tracer.ev_cat
           e.Tracer.ev_name
           (if e.Tracer.ev_rank >= 0 then Printf.sprintf "rank=%d " e.Tracer.ev_rank else "")
           (match e.Tracer.ev_fields with
           | [] -> ""
           | fields -> Json.to_string (Json.obj fields))))
    (Tracer.events t);
  Buffer.contents buf

let counters_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "category,name,count,total_dur_s\n";
  List.iter
    (fun ((cat, name), count) ->
      let dur = Tracer.total_duration t ~cat ~name in
      Buffer.add_string buf (Printf.sprintf "%s,%s,%d,%.9f\n" cat name count dur))
    (Tracer.counters t);
  Buffer.contents buf

(* Chrome / Perfetto trace-event JSON. One process per rank; one
   thread per category (named via "M" metadata rows). Events carrying a
   "dur" field were emitted at span end, so the complete-event start is
   ts - dur; everything else becomes a thread-scoped instant. Times are
   microseconds per the format. *)
let events_to_perfetto events =
  let us s = s *. 1e6 in
  let tids = Hashtbl.create 8 in
  let metadata = ref [] in
  let tid_of pid cat =
    match Hashtbl.find_opt tids (pid, cat) with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tids in
      Hashtbl.add tids (pid, cat) i;
      metadata :=
        Json.obj
          [
            ("name", Json.string "thread_name");
            ("ph", Json.string "M");
            ("pid", Json.int pid);
            ("tid", Json.int i);
            ("args", Json.obj [ ("name", Json.string cat) ]);
          ]
        :: !metadata;
      i
  in
  let rows =
    List.map
      (fun (e : Tracer.event) ->
        let pid = if e.Tracer.ev_rank >= 0 then e.Tracer.ev_rank else 0 in
        let tid = tid_of pid e.Tracer.ev_cat in
        let dur =
          match List.assoc_opt "dur" e.Tracer.ev_fields with
          | Some d -> (try Some (Json.to_float d) with Json.Type_error _ -> None)
          | None -> None
        in
        let common =
          [
            ("name", Json.string e.Tracer.ev_name);
            ("cat", Json.string e.Tracer.ev_cat);
            ("pid", Json.int pid);
            ("tid", Json.int tid);
            ("args", Json.obj e.Tracer.ev_fields);
          ]
        in
        match dur with
        | Some d ->
          Json.obj
            (("ph", Json.string "X")
            :: ("ts", Json.float (us (e.Tracer.ev_ts -. d)))
            :: ("dur", Json.float (us d))
            :: common)
        | None ->
          Json.obj
            (("ph", Json.string "i")
            :: ("ts", Json.float (us e.Tracer.ev_ts))
            :: ("s", Json.string "t")
            :: common))
      events
  in
  Json.to_string
    (Json.obj
       [
         ("traceEvents", Json.list (List.rev_append !metadata rows));
         ("displayTimeUnit", Json.string "ms");
       ])

let to_perfetto t = events_to_perfetto (Tracer.events t)

(* Critical path of one traced fence (the paper's Fig. 4 components):

     ascent     = first kvs fence.enter          -> kvs commit.begin
     root commit = commit.begin                  -> kvs setroot.publish
     broadcast  = setroot.publish -> last fence rpc.done / setroot.deliver

   The three segments telescope, so their sum equals the end-to-end
   fence latency by construction. Assumes the named fence is the only
   one committing in its window (true for the KAP workloads and the
   [flux_cli trace] demo). *)
type fence_breakdown = {
  fb_name : string;
  fb_start : float;
  fb_commit_begin : float;
  fb_publish : float;
  fb_end : float;
  fb_ascent : float;
  fb_commit : float;
  fb_broadcast : float;
  fb_total : float;
}

let field_string k (e : Tracer.event) =
  match List.assoc_opt k e.Tracer.ev_fields with
  | Some (Json.String s) -> Some s
  | _ -> None

let fence_critical_path t ~name =
  let events = Tracer.events t in
  let fence_named e = field_string "name" e = Some name in
  let min_ts acc (e : Tracer.event) =
    match acc with Some m when m <= e.Tracer.ev_ts -> acc | _ -> Some e.Tracer.ev_ts
  in
  let start =
    List.fold_left
      (fun acc (e : Tracer.event) ->
        if e.Tracer.ev_cat = "kvs" && e.Tracer.ev_name = "fence.enter" && fence_named e then
          min_ts acc e
        else acc)
      None events
  in
  let commit_begin =
    List.fold_left
      (fun acc (e : Tracer.event) ->
        if acc = None && e.Tracer.ev_cat = "kvs" && e.Tracer.ev_name = "commit.begin"
           && fence_named e
        then Some e.Tracer.ev_ts
        else acc)
      None events
  in
  match (start, commit_begin) with
  | None, _ -> Error (Printf.sprintf "no kvs fence.enter event for fence %S" name)
  | _, None -> Error (Printf.sprintf "no kvs commit.begin event for fence %S" name)
  | Some start, Some commit_begin ->
    let publish =
      List.fold_left
        (fun acc (e : Tracer.event) ->
          if acc = None && e.Tracer.ev_cat = "kvs" && e.Tracer.ev_name = "setroot.publish"
             && e.Tracer.ev_ts >= commit_begin
          then Some e.Tracer.ev_ts
          else acc)
        None events
    in
    (match publish with
    | None -> Error (Printf.sprintf "no kvs setroot.publish event after fence %S commit" name)
    | Some publish ->
      let fence_done (e : Tracer.event) =
        e.Tracer.ev_cat = "cmb" && e.Tracer.ev_name = "rpc.done"
        && (match field_string "topic" e with
           | Some topic ->
             String.length topic >= 6 && String.sub topic (String.length topic - 6) 6 = ".fence"
           | None -> false)
      in
      (* The client-release endpoint is the last fence RPC completing;
         when the ["cmb"] category was filtered out, the last
         [setroot.deliver] approximates it (the deliver tail can extend
         past the release, so prefer the RPC view when present). *)
      let max_ts pred =
        List.fold_left
          (fun acc (e : Tracer.event) ->
            if e.Tracer.ev_ts >= publish && pred e && e.Tracer.ev_ts > acc then e.Tracer.ev_ts
            else acc)
          publish events
      in
      let finish =
        let released = max_ts fence_done in
        if released > publish then released
        else
          max_ts (fun e -> e.Tracer.ev_cat = "kvs" && e.Tracer.ev_name = "setroot.deliver")
      in
      Ok
        {
          fb_name = name;
          fb_start = start;
          fb_commit_begin = commit_begin;
          fb_publish = publish;
          fb_end = finish;
          fb_ascent = commit_begin -. start;
          fb_commit = publish -. commit_begin;
          fb_broadcast = finish -. publish;
          fb_total = finish -. start;
        })

let pp_fence_breakdown ppf fb =
  let pct x = if fb.fb_total > 0.0 then 100.0 *. x /. fb.fb_total else 0.0 in
  Format.fprintf ppf "fence %S critical path (virtual time):@\n" fb.fb_name;
  Format.fprintf ppf "  ascent (leaf flush -> root)    %12.6f s  %5.1f%%@\n" fb.fb_ascent
    (pct fb.fb_ascent);
  Format.fprintf ppf "  root commit (apply + hash)     %12.6f s  %5.1f%%@\n" fb.fb_commit
    (pct fb.fb_commit);
  Format.fprintf ppf "  setroot broadcast + release    %12.6f s  %5.1f%%@\n" fb.fb_broadcast
    (pct fb.fb_broadcast);
  Format.fprintf ppf "  total                          %12.6f s@\n" fb.fb_total

let fault_counters_csv ?(extra = []) ~rpc_timeouts ~rpc_retries ~dead_letters ~dropped () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "metric,value\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" name v))
    ([
       ("rpc_timeouts", rpc_timeouts);
       ("rpc_retries", rpc_retries);
       ("dead_letters", dead_letters);
       ("dropped", dropped);
     ]
    @ extra);
  Buffer.contents buf

(* Same CSV, but derived from the tracer's own counter table: Session
   bumps cmb.rpc.timeout/rpc.retry, Net bumps net.drop/net.dead_letter,
   so nobody has to thread the four integers by hand any more. *)
let fault_counters_csv_of ?extra t =
  fault_counters_csv ?extra
    ~rpc_timeouts:(Tracer.count t ~cat:"cmb" ~name:"rpc.timeout")
    ~rpc_retries:(Tracer.count t ~cat:"cmb" ~name:"rpc.retry")
    ~dead_letters:(Tracer.count t ~cat:"net" ~name:"dead_letter")
    ~dropped:(Tracer.count t ~cat:"net" ~name:"drop")
    ()

let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-24s %10s %14s\n" "category" "name" "count" "total dur (s)");
  List.iter
    (fun ((cat, name), count) ->
      let dur = Tracer.total_duration t ~cat ~name in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-24s %10d %14s\n" cat name count
           (if dur > 0.0 then Printf.sprintf "%.6f" dur else "-")))
    (Tracer.counters t);
  (if Tracer.dropped t > 0 then
     Buffer.add_string buf
       (Printf.sprintf "(!) %d events dropped by the %d-event capacity: the stream is truncated\n"
          (Tracer.dropped t) (Tracer.capacity t)));
  Buffer.contents buf
