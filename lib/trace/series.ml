module Json = Flux_json.Json
module Ring_buffer = Flux_util.Ring_buffer

(* Center-level time series: the root of the telemetry plane folds each
   completed rollup epoch (a merged cross-rank Metrics.snap) into one
   bounded ring per metric name. Per-rank detail is deliberately not
   retained here — the series is the "flux top" view; detectors run on
   the full snap before it is summarized away. *)

type gauge_point = { gp_min : float; gp_max : float; gp_sum : float; gp_n : int }

type point =
  | P_counter of int (* per-epoch delta, summed across ranks *)
  | P_gauge of gauge_point (* rollup of per-rank last-values *)
  | P_hist of Metrics.summary (* bucket-merged across ranks *)

type t = {
  window : int;
  series : (string, (int * point) Ring_buffer.t) Hashtbl.t;
  mutable last_epoch : int;
  mutable epochs_recorded : int;
}

let create ?(window = 256) () =
  if window <= 0 then invalid_arg "Series.create: window must be positive";
  { window; series = Hashtbl.create 64; last_epoch = -1; epochs_recorded = 0 }

let window t = t.window
let last_epoch t = t.last_epoch
let epochs_recorded t = t.epochs_recorded

let ring t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = Ring_buffer.create ~capacity:t.window in
    Hashtbl.replace t.series name r;
    r

let gauge_rollup values =
  List.fold_left
    (fun acc (_, v) ->
      {
        gp_min = Float.min acc.gp_min v;
        gp_max = Float.max acc.gp_max v;
        gp_sum = acc.gp_sum +. v;
        gp_n = acc.gp_n + 1;
      })
    { gp_min = infinity; gp_max = neg_infinity; gp_sum = 0.0; gp_n = 0 }
    values

let record t ~epoch (snap : Metrics.snap) =
  t.last_epoch <- max t.last_epoch epoch;
  t.epochs_recorded <- t.epochs_recorded + 1;
  List.iter
    (fun name ->
      Ring_buffer.push (ring t name)
        (epoch, P_counter (Metrics.snap_counter_total snap ~name)))
    (Metrics.snap_counter_names snap);
  List.iter
    (fun name ->
      Ring_buffer.push (ring t name)
        (epoch, P_gauge (gauge_rollup (Metrics.snap_gauges_of snap ~name))))
    (Metrics.snap_gauge_names snap);
  List.iter
    (fun name ->
      match Metrics.snap_hist_merged snap ~name with
      | Some s -> Ring_buffer.push (ring t name) (epoch, P_hist s)
      | None -> ())
    (Metrics.snap_hist_names snap)

let names t =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.series [])

let points t ~name =
  match Hashtbl.find_opt t.series name with
  | Some r -> Ring_buffer.to_list r
  | None -> []

let latest t ~name =
  match points t ~name with [] -> None | l -> Some (List.nth l (List.length l - 1))

(* Numeric view of a series for trend analysis: the scalar the
   queue-growth detector watches (counter delta, gauge max, hist p95). *)
let scalar_of = function
  | P_counter n -> float_of_int n
  | P_gauge g -> if g.gp_n = 0 then 0.0 else g.gp_max
  | P_hist s -> s.Metrics.p95

let latest_scalar t ~name =
  Option.map (fun (e, p) -> (e, scalar_of p)) (latest t ~name)

let tail_scalars t ~name ~n =
  let pts = points t ~name in
  let len = List.length pts in
  let pts = if len <= n then pts else List.filteri (fun i _ -> i >= len - n) pts in
  List.map (fun (e, p) -> (e, scalar_of p)) pts

(* --- Export ------------------------------------------------------------ *)

let fmt_f v = Printf.sprintf "%.9g" v

let csv_cells = function
  | P_counter n -> [ "counter"; string_of_int n; ""; ""; ""; ""; ""; "" ]
  | P_gauge g ->
    [ "gauge"; string_of_int g.gp_n; fmt_f g.gp_sum; fmt_f g.gp_min; fmt_f g.gp_max; ""; ""; "" ]
  | P_hist s ->
    [
      "hist"; string_of_int s.Metrics.n; fmt_f s.Metrics.sum; fmt_f s.Metrics.mn;
      fmt_f s.Metrics.mx; fmt_f s.Metrics.p50; fmt_f s.Metrics.p95; fmt_f s.Metrics.p99;
    ]

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "metric,epoch,kind,count,sum,min,max,p50,p95,p99\n";
  List.iter
    (fun name ->
      List.iter
        (fun (epoch, p) ->
          Buffer.add_string b
            (Printf.sprintf "%s,%d,%s\n" name epoch (String.concat "," (csv_cells p))))
        (points t ~name))
    (names t);
  Buffer.contents b

let point_to_json = function
  | P_counter n -> Json.obj [ ("kind", Json.string "counter"); ("delta", Json.int n) ]
  | P_gauge g ->
    Json.obj
      [
        ("kind", Json.string "gauge");
        ("ranks", Json.int g.gp_n);
        ("min", Json.float g.gp_min);
        ("max", Json.float g.gp_max);
        ("sum", Json.float g.gp_sum);
      ]
  | P_hist s ->
    Json.obj
      [
        ("kind", Json.string "hist");
        ("count", Json.int s.Metrics.n);
        ("sum", Json.float s.Metrics.sum);
        ("min", Json.float s.Metrics.mn);
        ("max", Json.float s.Metrics.mx);
        ("p50", Json.float s.Metrics.p50);
        ("p95", Json.float s.Metrics.p95);
        ("p99", Json.float s.Metrics.p99);
      ]

let to_json t =
  Json.obj
    [
      ("window", Json.int t.window);
      ("last_epoch", Json.int t.last_epoch);
      ( "series",
        Json.obj
          (List.map
             (fun name ->
               ( name,
                 Json.list
                   (List.map
                      (fun (e, p) -> Json.obj [ ("epoch", Json.int e); ("point", point_to_json p) ])
                      (points t ~name)) ))
             (names t)) );
    ]

(* The "flux top" view: one row per metric at the newest epoch it
   reported in, newest-first column semantics kept simple (fixed-width
   text, deterministic order). *)
let render_top t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "telemetry @ epoch %d (%d metrics, window %d)\n" t.last_epoch
       (Hashtbl.length t.series) t.window);
  Buffer.add_string b
    (Printf.sprintf "%-32s %-8s %6s %12s %12s %12s\n" "metric" "kind" "epoch" "value/p50"
       "max" "sum");
  List.iter
    (fun name ->
      match latest t ~name with
      | None -> ()
      | Some (epoch, p) ->
        let kind, v, mx, sum =
          match p with
          | P_counter n -> ("counter", float_of_int n, nan, float_of_int n)
          | P_gauge g -> ("gauge", g.gp_max, g.gp_max, g.gp_sum)
          | P_hist s -> ("hist", s.Metrics.p50, s.Metrics.mx, s.Metrics.sum)
        in
        let f x = if Float.is_nan x then "-" else Printf.sprintf "%.6g" x in
        Buffer.add_string b
          (Printf.sprintf "%-32s %-8s %6d %12s %12s %12s\n" name kind epoch (f v) (f mx) (f sum)))
    (names t);
  Buffer.contents b
