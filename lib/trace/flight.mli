(** Crash flight recorder: per-rank rings of recent trace events.

    The tracer's global buffer on a long run is dominated by
    healthy-rank chatter and may have rotated a victim's history out
    long before anyone asks what it was doing. The flight recorder
    subscribes to the tracer and keeps an independent fixed-capacity
    ring per rank, so the last [capacity] events of {e every} rank are
    dumpable at the moment it dies, an alert fires on it, or a harness
    guarantee trips — every chaos/soak failure then comes with the last
    events on the ranks involved. *)

module Json = Flux_json.Json

type dump = {
  d_ts : float;  (** virtual time of the dump *)
  d_rank : int;
  d_reason : string;
  d_events : Tracer.event list;  (** oldest first *)
}

type t

val create : ?capacity:int -> ?max_dumps:int -> Tracer.t -> t
(** Subscribe to the tracer. [capacity] (default 256) bounds each
    rank's ring; [max_dumps] (default 64) bounds retained dumps.
    Category filters apply: the recorder sees the retained stream.
    Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : t -> int

val recent : t -> rank:int -> Tracer.event list
(** The rank's ring contents right now, oldest first (no dump taken). *)

val dump : t -> rank:int -> reason:string -> dump
(** Snapshot the rank's ring, record the dump (up to [max_dumps]), and
    tag a [flight.dump] instant into the tracer carrying the reason. *)

val dump_once : t -> rank:int -> tag:string -> reason:string -> dump option
(** Like {!dump} but at most once per (rank, [tag]) — alert-triggered
    dumps fire every epoch for a persistent straggler; only the first
    is kept. *)

val dumps : t -> dump list
(** Recorded dumps, oldest first. *)

val dump_to_perfetto : dump -> string
(** The dump as Chrome/Perfetto trace-event JSON. *)

val dump_to_json : dump -> Json.t
val pp_dump : Format.formatter -> dump -> unit
