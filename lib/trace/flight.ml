module Json = Flux_json.Json
module Ring_buffer = Flux_util.Ring_buffer

(* Crash flight recorder: a small per-rank ring of the most recent
   trace events, independent of the tracer's global capacity. The
   global buffer on a long run is dominated by healthy-rank chatter and
   may have rotated a victim's history out long before anyone asks what
   it was doing; the per-rank ring guarantees the last [capacity]
   events of *every* rank survive until dumped.

   The recorder subscribes to the tracer, so it sees exactly the
   retained event stream (category filters apply) and costs one ring
   push per event. Dumps are taken on demand — the telemetry plane
   triggers them on mark_down and on alerts, harnesses on guarantee
   trips — and are tagged back into the tracer as [flight.dump] events
   so the trigger is visible in the main trace too. *)

type dump = {
  d_ts : float; (* virtual time of the dump *)
  d_rank : int;
  d_reason : string;
  d_events : Tracer.event list; (* oldest first *)
}

type t = {
  tracer : Tracer.t;
  ring_capacity : int;
  max_dumps : int;
  rings : (int, Tracer.event Ring_buffer.t) Hashtbl.t;
  mutable dumps : dump list; (* newest first *)
  mutable ndumps : int;
  seen_reasons : (int * string, unit) Hashtbl.t;
}

let create ?(capacity = 256) ?(max_dumps = 64) tracer =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  let t =
    {
      tracer;
      ring_capacity = capacity;
      max_dumps;
      rings = Hashtbl.create 64;
      dumps = [];
      ndumps = 0;
      seen_reasons = Hashtbl.create 16;
    }
  in
  Tracer.subscribe tracer (fun (ev : Tracer.event) ->
      if ev.Tracer.ev_rank >= 0 then begin
        let ring =
          match Hashtbl.find_opt t.rings ev.Tracer.ev_rank with
          | Some r -> r
          | None ->
            let r = Ring_buffer.create ~capacity:t.ring_capacity in
            Hashtbl.replace t.rings ev.Tracer.ev_rank r;
            r
        in
        Ring_buffer.push ring ev
      end);
  t

let capacity t = t.ring_capacity

let recent t ~rank =
  match Hashtbl.find_opt t.rings rank with
  | Some r -> Ring_buffer.to_list r
  | None -> []

let dump t ~rank ~reason =
  let events = recent t ~rank in
  let d =
    { d_ts = Tracer.now t.tracer; d_rank = rank; d_reason = reason; d_events = events }
  in
  (* Tag the dump into the main trace: the [flight.dump] instant marks
     when and why, and carries enough to find the full dump. *)
  Tracer.emit t.tracer ~cat:"flight" ~name:"dump" ~rank
    ~fields:
      [
        ("reason", Json.string reason);
        ("events", Json.int (List.length events));
        ("capacity", Json.int t.ring_capacity);
      ]
    ();
  if t.ndumps < t.max_dumps then begin
    t.dumps <- d :: t.dumps;
    t.ndumps <- t.ndumps + 1
  end;
  d

(* Triggered dumps can repeat (an alert firing every epoch for the same
   straggler); [dump_once] keeps the first per (rank, tag) so a noisy
   alert cannot flood the dump store. *)
let dump_once t ~rank ~tag ~reason =
  if Hashtbl.mem t.seen_reasons (rank, tag) then None
  else begin
    Hashtbl.replace t.seen_reasons (rank, tag) ();
    Some (dump t ~rank ~reason)
  end

let dumps t = List.rev t.dumps

let dump_to_perfetto d = Export.events_to_perfetto d.d_events

let dump_to_json d =
  Json.obj
    [
      ("ts", Json.float d.d_ts);
      ("rank", Json.int d.d_rank);
      ("reason", Json.string d.d_reason);
      ("events", Json.list (List.map Export.event_to_json d.d_events));
    ]

let pp_dump ppf d =
  Format.fprintf ppf "flight dump rank=%d t=%.6f %S (%d events)" d.d_rank d.d_ts d.d_reason
    (List.length d.d_events)
