(** Always-on numeric aggregation (LDMS-style), complementing the
    event-oriented {!Tracer}.

    A registry holds per-(metric, rank) counters, gauges, and
    log-bucketed latency histograms. Subsystems guard every update with
    a [match metrics with None -> ...] so an unattached registry costs
    nothing on hot paths; when attached, each update is one hashtable
    operation and no allocation beyond first touch of a key.

    Histograms bucket geometrically (ratio [growth] = 2^(1/4), lowest
    boundary 1 ns), so p50/p95/p99 are reported to within ~one bucket
    ratio of the exact sample quantile while storing only 256 ints. *)

module Json = Flux_json.Json

type t

type summary = {
  n : int;
  sum : float;
  mn : float;
  mx : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val growth : float
(** Histogram bucket ratio: reported quantiles are within a factor
    [growth] of the true sample quantile (modulo range clamping). *)

val create : unit -> t

(** {1 Counters} *)

val incr : t -> name:string -> rank:int -> unit
val add : t -> name:string -> rank:int -> int -> unit
val counter : t -> name:string -> rank:int -> int
val counter_total : t -> name:string -> int
(** Sum of the named counter across all ranks. *)

(** {1 Gauges} *)

val set_gauge : t -> name:string -> rank:int -> float -> unit
val gauge : t -> name:string -> rank:int -> float option

(** {1 Histograms} *)

val observe : t -> name:string -> rank:int -> float -> unit
(** Record one observation (typically a latency in seconds; any
    non-negative magnitude works). *)

(** {1 Family handles — amortizing the name lookup}

    The registry is stored name-major: each metric name owns a rank
    table. A family handle is that inner table, resolved once; updates
    through it skip hashing the name string entirely. Subsystems that
    fire several updates per message (the RPC net, the broker's latency
    instrumentation) resolve their families when a registry is attached
    and pay one int-keyed lookup per update thereafter. Handles stay
    valid for the registry's lifetime. *)

type counter_family
type gauge_family
type hist_family

val counter_family : t -> name:string -> counter_family
val gauge_family : t -> name:string -> gauge_family
val hist_family : t -> name:string -> hist_family

val family_add : counter_family -> rank:int -> int -> unit
val family_incr : counter_family -> rank:int -> unit
val family_set_gauge : gauge_family -> rank:int -> float -> unit
val family_gauge : gauge_family -> rank:int -> float option
val family_observe : hist_family -> rank:int -> float -> unit

val summary : t -> name:string -> rank:int -> summary option
(** [None] when the histogram has no observations. *)

val summary_merged : t -> name:string -> summary option
(** Bucket-wise merge of the named histogram across all ranks. *)

val hist_names : t -> string list
(** Sorted names of histograms with at least one registration. *)

(** {1 Export} *)

val to_csv : t -> string
(** [metric,rank,value] rows, sorted by (metric, rank). Histograms
    expand to [name.count/.sum/.min/.max/.p50/.p95/.p99] rows. *)

val to_json : t -> Json.t
(** Counters summed across ranks, gauges per rank, histogram summaries
    merged across ranks — the shape embedded in BENCH_*.json. *)

(** {1 Snapshots — the unit of in-band telemetry}

    A snapshot is an immutable, key-sorted view of (a rank slice of) a
    registry. The telemetry plane samples one per rollup epoch, ships
    the {!diff} against the previous epoch up the TBON, and {!merge}s
    sibling deltas at every level — counters sum, gauges carry the
    freshest per-rank last-value, histograms merge bucket-wise — so the
    root reassembles an exact center-wide delta for the epoch. *)

type hist_snap = {
  hs_buckets : (int * int) list;
      (** (bucket index, count) for non-empty buckets, ascending *)
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

type snap = {
  sn_counters : ((string * int) * int) list;
  sn_gauges : ((string * int) * float) list;
  sn_hists : ((string * int) * hist_snap) list;
}
(** All three binding lists are sorted by (name, rank) key. *)

val snap_empty : snap
val snap_is_empty : snap -> bool

val snapshot : ?rank:int -> t -> snap
(** Capture the registry (or just one rank's slice — what a broker's
    telemetry module contributes). *)

val diff : base:snap -> snap -> snap
(** [diff ~base next] is the per-key delta: counters and histogram
    buckets subtract (zero entries dropped), gauges keep [next]'s value
    but omit keys unchanged since [base]. [merge base (diff ~base next)]
    reconstructs [next] exactly for counters and histogram contents
    (histogram min/max are over-approximated by [next]'s range — they
    are not invertible). *)

val merge : snap -> snap -> snap
(** Keyed union: counters sum, gauges right-biased (the second operand
    is the fresher contribution), histograms add bucket-wise. *)

val snap_record : t -> snap -> unit
(** Fold a snapshot into a registry (counters add, gauges set,
    histogram buckets accumulate) — the restore side of the round-trip,
    used by tests and by tools replaying a rollup stream. *)

val hist_snap_summary : hist_snap -> summary option
(** Percentile summary of one histogram snapshot ([None] when empty). *)

(** {2 Snapshot accessors} *)

val snap_counter_names : snap -> string list
val snap_gauge_names : snap -> string list
val snap_hist_names : snap -> string list

val snap_counters_of : snap -> name:string -> (int * int) list
(** Per-rank (rank, count) bindings of one counter, rank-ascending. *)

val snap_gauges_of : snap -> name:string -> (int * float) list
val snap_hists_of : snap -> name:string -> (int * hist_snap) list
val snap_counter_total : snap -> name:string -> int
val snap_hist_merged : snap -> name:string -> summary option
val snap_ranks : snap -> int list
(** Ranks contributing at least one binding, ascending. *)

(** {2 Wire codec} *)

val snap_to_json : snap -> Json.t
(** Deterministic (key-sorted) compact encoding; the payload the
    telemetry module ships up the tree. *)

val snap_of_json : Json.t -> snap
(** Raises [Json.Type_error] on malformed input. *)
