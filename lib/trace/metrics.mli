(** Always-on numeric aggregation (LDMS-style), complementing the
    event-oriented {!Tracer}.

    A registry holds per-(metric, rank) counters, gauges, and
    log-bucketed latency histograms. Subsystems guard every update with
    a [match metrics with None -> ...] so an unattached registry costs
    nothing on hot paths; when attached, each update is one hashtable
    operation and no allocation beyond first touch of a key.

    Histograms bucket geometrically (ratio [growth] = 2^(1/4), lowest
    boundary 1 ns), so p50/p95/p99 are reported to within ~one bucket
    ratio of the exact sample quantile while storing only 256 ints. *)

module Json = Flux_json.Json

type t

type summary = {
  n : int;
  sum : float;
  mn : float;
  mx : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val growth : float
(** Histogram bucket ratio: reported quantiles are within a factor
    [growth] of the true sample quantile (modulo range clamping). *)

val create : unit -> t

(** {1 Counters} *)

val incr : t -> name:string -> rank:int -> unit
val add : t -> name:string -> rank:int -> int -> unit
val counter : t -> name:string -> rank:int -> int
val counter_total : t -> name:string -> int
(** Sum of the named counter across all ranks. *)

(** {1 Gauges} *)

val set_gauge : t -> name:string -> rank:int -> float -> unit
val gauge : t -> name:string -> rank:int -> float option

(** {1 Histograms} *)

val observe : t -> name:string -> rank:int -> float -> unit
(** Record one observation (typically a latency in seconds; any
    non-negative magnitude works). *)

val summary : t -> name:string -> rank:int -> summary option
(** [None] when the histogram has no observations. *)

val summary_merged : t -> name:string -> summary option
(** Bucket-wise merge of the named histogram across all ranks. *)

val hist_names : t -> string list
(** Sorted names of histograms with at least one registration. *)

(** {1 Export} *)

val to_csv : t -> string
(** [metric,rank,value] rows, sorted by (metric, rank). Histograms
    expand to [name.count/.sum/.min/.max/.p50/.p95/.p99] rows. *)

val to_json : t -> Json.t
(** Counters summed across ranks, gauges per rank, histogram summaries
    merged across ranks — the shape embedded in BENCH_*.json. *)
