module Json = Flux_json.Json
module Ring_buffer = Flux_util.Ring_buffer

type event = {
  ev_ts : float;
  ev_cat : string;
  ev_name : string;
  ev_rank : int;
  ev_fields : (string * Json.t) list;
}

type ctx = { tc_trace : int; tc_span : int; tc_parent : int }

type t = {
  now : unit -> float;
  buf : event Ring_buffer.t;
  mutable cats : string list; (* [] = all *)
  counts : (string * string, int) Hashtbl.t;
  durations : (string * string, float) Hashtbl.t;
  mutable subscribers : (event -> unit) list;
  mutable next_id : int; (* span/trace id allocator, deterministic *)
}

let create ?(capacity = 100_000) ~now () =
  {
    now;
    buf = Ring_buffer.create ~capacity;
    cats = [];
    counts = Hashtbl.create 64;
    durations = Hashtbl.create 16;
    subscribers = [];
    next_id = 1;
  }

let now t = t.now ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let root_ctx t =
  let id = fresh_id t in
  { tc_trace = id; tc_span = id; tc_parent = 0 }

let child_ctx t parent =
  { tc_trace = parent.tc_trace; tc_span = fresh_id t; tc_parent = parent.tc_span }

let ctx_fields c =
  [
    ("trace", Json.int c.tc_trace);
    ("span", Json.int c.tc_span);
    ("parent", Json.int c.tc_parent);
  ]

let enable t ~cats = t.cats <- cats

let retained t cat = t.cats = [] || List.mem cat t.cats

let bump t key =
  Hashtbl.replace t.counts key
    (1 + match Hashtbl.find_opt t.counts key with Some c -> c | None -> 0)

let add_count t ~cat ~name n =
  Hashtbl.replace t.counts (cat, name)
    (n + match Hashtbl.find_opt t.counts (cat, name) with Some c -> c | None -> 0)

let emit t ~cat ~name ?(rank = -1) ?ctx ?(fields = []) () =
  bump t (cat, name);
  if retained t cat then begin
    let fields = match ctx with None -> fields | Some c -> ctx_fields c @ fields in
    let ev = { ev_ts = t.now (); ev_cat = cat; ev_name = name; ev_rank = rank; ev_fields = fields } in
    let dropped_before = Ring_buffer.dropped t.buf in
    Ring_buffer.push t.buf ev;
    (* Capacity truncation is itself an observable: exports surface the
       [trace.dropped] counter so a truncated stream can never be
       mistaken for a complete one. *)
    if Ring_buffer.dropped t.buf > dropped_before then bump t ("trace", "dropped");
    List.iter (fun f -> f ev) t.subscribers
  end

let add_duration t key d =
  Hashtbl.replace t.durations key
    (d +. match Hashtbl.find_opt t.durations key with Some x -> x | None -> 0.0)

let span t ~cat ~name ?rank f =
  let t0 = t.now () in
  let finish ~raised =
    let dur = t.now () -. t0 in
    add_duration t (cat, name) dur;
    if raised then bump t (cat, name ^ ".raised");
    let fields =
      ("dur", Json.float dur) :: (if raised then [ ("raised", Json.bool true) ] else [])
    in
    emit t ~cat ~name ?rank ~fields ()
  in
  match f () with
  | v ->
    finish ~raised:false;
    v
  | exception e ->
    finish ~raised:true;
    raise e

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let events t = Ring_buffer.to_list t.buf

let dropped t = Ring_buffer.dropped t.buf

let capacity t = Ring_buffer.capacity t.buf

let count t ~cat ~name =
  match Hashtbl.find_opt t.counts (cat, name) with Some c -> c | None -> 0

let counters t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts [])

let total_duration t ~cat ~name =
  match Hashtbl.find_opt t.durations (cat, name) with Some d -> d | None -> 0.0

let clear t =
  Ring_buffer.clear t.buf;
  Hashtbl.reset t.counts;
  Hashtbl.reset t.durations
