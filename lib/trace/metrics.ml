module Json = Flux_json.Json

(* Log-bucketed histogram. Bucket boundaries grow geometrically by
   [growth] starting at [lo]; bucket 0 holds everything <= lo, the last
   bucket everything past the top boundary. With growth = 2^(1/4) the
   relative quantization error of a reported quantile is bounded by
   ~ +/-9%, and 256 buckets span lo * 2^63 — nanoseconds to centuries
   when observations are seconds. *)

let growth = 1.189207115002721 (* 2 ** 0.25 *)
let log_growth = log growth
let lo = 1e-9
let nbuckets = 256

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type summary = {
  n : int;
  sum : float;
  mn : float;
  mx : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type t = {
  counters : (string * int, int) Hashtbl.t;
  gauges : (string * int, float) Hashtbl.t;
  hists : (string * int, hist) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; hists = Hashtbl.create 64 }

let add t ~name ~rank n =
  let key = (name, rank) in
  Hashtbl.replace t.counters key
    (n + match Hashtbl.find_opt t.counters key with Some c -> c | None -> 0)

let incr t ~name ~rank = add t ~name ~rank 1

let counter t ~name ~rank =
  match Hashtbl.find_opt t.counters (name, rank) with Some c -> c | None -> 0

let counter_total t ~name =
  Hashtbl.fold (fun (n, _) v acc -> if String.equal n name then acc + v else acc) t.counters 0

let set_gauge t ~name ~rank v = Hashtbl.replace t.gauges (name, rank) v

let gauge t ~name ~rank = Hashtbl.find_opt t.gauges (name, rank)

let bucket_of v =
  if v <= lo then 0
  else
    let i = 1 + int_of_float (log (v /. lo) /. log_growth) in
    if i >= nbuckets then nbuckets - 1 else i

(* Representative value for bucket [i]: the geometric midpoint of its
   boundaries, so a reported quantile is within one growth ratio of the
   true sample. *)
let bucket_value i =
  if i = 0 then lo else lo *. (growth ** (float_of_int i -. 0.5))

let observe t ~name ~rank v =
  let key = (name, rank) in
  let h =
    match Hashtbl.find_opt t.hists key with
    | Some h -> h
    | None ->
      let h =
        { buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity }
      in
      Hashtbl.add t.hists key h;
      h
  in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if x < 1 then 1 else if x > h.h_count then h.h_count else x
    in
    let rec go i cum =
      if i >= nbuckets then h.h_max
      else
        let cum = cum + h.buckets.(i) in
        if cum >= target then
          (* Clamp to the observed range so degenerate histograms
             (single bucket) report sane values. *)
          let v = bucket_value i in
          if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
        else go (i + 1) cum
    in
    go 0 0
  end

let summarize h =
  { n = h.h_count; sum = h.h_sum; mn = h.h_min; mx = h.h_max;
    p50 = quantile h 0.50; p95 = quantile h 0.95; p99 = quantile h 0.99 }

let summary t ~name ~rank =
  match Hashtbl.find_opt t.hists (name, rank) with
  | Some h when h.h_count > 0 -> Some (summarize h)
  | _ -> None

let merge_into dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  if src.h_min < dst.h_min then dst.h_min <- src.h_min;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max

let summary_merged t ~name =
  let acc =
    { buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity }
  in
  Hashtbl.iter (fun (n, _) h -> if String.equal n name then merge_into acc h) t.hists;
  if acc.h_count = 0 then None else Some (summarize acc)

let hist_names t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun (n, _) _ -> Hashtbl.replace seen n ()) t.hists;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

(* CSV: one [metric,rank,value] row per counter/gauge, and one row per
   summary statistic per histogram, sorted for determinism. *)
let to_csv t =
  let rows = ref [] in
  let row name rank v = rows := (name, rank, v) :: !rows in
  Hashtbl.iter (fun (n, r) v -> row n r (string_of_int v)) t.counters;
  Hashtbl.iter (fun (n, r) v -> row n r (Printf.sprintf "%.9g" v)) t.gauges;
  Hashtbl.iter
    (fun (n, r) h ->
      if h.h_count > 0 then begin
        let s = summarize h in
        row (n ^ ".count") r (string_of_int s.n);
        row (n ^ ".sum") r (Printf.sprintf "%.9g" s.sum);
        row (n ^ ".min") r (Printf.sprintf "%.9g" s.mn);
        row (n ^ ".max") r (Printf.sprintf "%.9g" s.mx);
        row (n ^ ".p50") r (Printf.sprintf "%.9g" s.p50);
        row (n ^ ".p95") r (Printf.sprintf "%.9g" s.p95);
        row (n ^ ".p99") r (Printf.sprintf "%.9g" s.p99)
      end)
    t.hists;
  let b = Buffer.create 1024 in
  Buffer.add_string b "metric,rank,value\n";
  List.iter
    (fun (n, r, v) -> Buffer.add_string b (Printf.sprintf "%s,%d,%s\n" n r v))
    (List.sort compare !rows);
  Buffer.contents b

let summary_json s =
  Json.obj
    [
      ("count", Json.int s.n);
      ("sum", Json.float s.sum);
      ("min", Json.float s.mn);
      ("max", Json.float s.mx);
      ("p50", Json.float s.p50);
      ("p95", Json.float s.p95);
      ("p99", Json.float s.p99);
    ]

(* JSON view: counters summed across ranks, gauges per rank, histograms
   merged across ranks (per-rank detail lives in the CSV). *)
let to_json t =
  let counter_names =
    let seen = Hashtbl.create 16 in
    Hashtbl.iter (fun (n, _) _ -> Hashtbl.replace seen n ()) t.counters;
    List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])
  in
  let counters =
    List.map (fun n -> (n, Json.int (counter_total t ~name:n))) counter_names
  in
  let gauges =
    List.sort compare (Hashtbl.fold (fun (n, r) v acc -> ((n, r), v) :: acc) t.gauges [])
    |> List.map (fun ((n, r), v) -> (Printf.sprintf "%s[%d]" n r, Json.float v))
  in
  let hists =
    List.filter_map
      (fun n ->
        match summary_merged t ~name:n with
        | Some s -> Some (n, summary_json s)
        | None -> None)
      (hist_names t)
  in
  Json.obj
    [ ("counters", Json.obj counters); ("gauges", Json.obj gauges); ("histograms", Json.obj hists) ]
