module Json = Flux_json.Json

(* Log-bucketed histogram. Bucket boundaries grow geometrically by
   [growth] starting at [lo]; bucket 0 holds everything <= lo, the last
   bucket everything past the top boundary. With growth = 2^(1/4) the
   relative quantization error of a reported quantile is bounded by
   ~ +/-9%, and 256 buckets span lo * 2^63 — nanoseconds to centuries
   when observations are seconds. *)

let growth = 1.189207115002721 (* 2 ** 0.25 *)
let log_growth = log growth
let lo = 1e-9
let nbuckets = 256

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type summary = {
  n : int;
  sum : float;
  mn : float;
  mx : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Two-level storage: metric name -> (rank -> cell). Hot paths hash a
   short interned string plus an int instead of allocating a
   [(string, int)] tuple key per update, and callers that update the
   same metric once per message can resolve the name level once
   ({!counter_family} and friends) leaving an int-keyed table lookup as
   the whole per-update cost. *)

type counter_family = (int, int ref) Hashtbl.t

(* Single-float records are flat in OCaml, so gauge stores never box:
   a [float ref]'s contents would be re-boxed on every [:=]. *)
type gauge_cell = { mutable g : float }

type gauge_family = (int, gauge_cell) Hashtbl.t
type hist_family = (int, hist) Hashtbl.t

type t = {
  counters : (string, counter_family) Hashtbl.t;
  gauges : (string, gauge_family) Hashtbl.t;
  hists : (string, hist_family) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; hists = Hashtbl.create 64 }

let family tbl name =
  match Hashtbl.find tbl name with
  | f -> f
  | exception Not_found ->
    let f = Hashtbl.create 16 in
    Hashtbl.add tbl name f;
    f

let counter_family t ~name = family t.counters name
let gauge_family t ~name = family t.gauges name
let hist_family t ~name = family t.hists name

(* [find]+[exception] rather than [find_opt]: these run several times
   per simulated message, and [find_opt] allocates an option per hit. *)
let family_add (f : counter_family) ~rank n =
  match Hashtbl.find f rank with
  | c -> c := !c + n
  | exception Not_found -> Hashtbl.add f rank (ref n)

let family_incr f ~rank = family_add f ~rank 1

let family_set_gauge (f : gauge_family) ~rank v =
  match Hashtbl.find f rank with
  | c -> c.g <- v
  | exception Not_found -> Hashtbl.add f rank { g = v }

let family_gauge (f : gauge_family) ~rank =
  match Hashtbl.find_opt f rank with Some c -> Some c.g | None -> None

let add t ~name ~rank n = family_add (counter_family t ~name) ~rank n
let incr t ~name ~rank = add t ~name ~rank 1

let counter t ~name ~rank =
  match Hashtbl.find_opt t.counters name with
  | None -> 0
  | Some f -> ( match Hashtbl.find_opt f rank with Some c -> !c | None -> 0)

let counter_total t ~name =
  match Hashtbl.find_opt t.counters name with
  | None -> 0
  | Some f -> Hashtbl.fold (fun _ v acc -> acc + !v) f 0

let set_gauge t ~name ~rank v = family_set_gauge (gauge_family t ~name) ~rank v

let gauge t ~name ~rank =
  match Hashtbl.find_opt t.gauges name with
  | None -> None
  | Some f -> family_gauge f ~rank

let bucket_of v =
  if v <= lo then 0
  else
    let i = 1 + int_of_float (log (v /. lo) /. log_growth) in
    if i >= nbuckets then nbuckets - 1 else i

(* Representative value for bucket [i]: the geometric midpoint of its
   boundaries, so a reported quantile is within one growth ratio of the
   true sample. *)
let bucket_value i =
  if i = 0 then lo else lo *. (growth ** (float_of_int i -. 0.5))

let fresh_hist () =
  { buckets = Array.make nbuckets 0; h_count = 0; h_sum = 0.0;
    h_min = infinity; h_max = neg_infinity }

let family_hist (f : hist_family) ~rank =
  match Hashtbl.find f rank with
  | h -> h
  | exception Not_found ->
    let h = fresh_hist () in
    Hashtbl.add f rank h;
    h

let hist_observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let family_observe f ~rank v = hist_observe (family_hist f ~rank) v

let observe t ~name ~rank v = family_observe (hist_family t ~name) ~rank v

let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if x < 1 then 1 else if x > h.h_count then h.h_count else x
    in
    let rec go i cum =
      if i >= nbuckets then h.h_max
      else
        let cum = cum + h.buckets.(i) in
        if cum >= target then
          (* Clamp to the observed range so degenerate histograms
             (single bucket) report sane values. *)
          let v = bucket_value i in
          if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
        else go (i + 1) cum
    in
    go 0 0
  end

let summarize h =
  { n = h.h_count; sum = h.h_sum; mn = h.h_min; mx = h.h_max;
    p50 = quantile h 0.50; p95 = quantile h 0.95; p99 = quantile h 0.99 }

let summary t ~name ~rank =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some f -> (
    match Hashtbl.find_opt f rank with
    | Some h when h.h_count > 0 -> Some (summarize h)
    | _ -> None)

let merge_into dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.h_count <- dst.h_count + src.h_count;
  dst.h_sum <- dst.h_sum +. src.h_sum;
  if src.h_min < dst.h_min then dst.h_min <- src.h_min;
  if src.h_max > dst.h_max then dst.h_max <- src.h_max

let summary_merged t ~name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some f ->
    let acc = fresh_hist () in
    Hashtbl.iter (fun _ h -> merge_into acc h) f;
    if acc.h_count = 0 then None else Some (summarize acc)

let hist_names t =
  List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.hists [])

(* Flatten a two-level table back to ((name, rank), value) folds — the
   shape snapshots and exports are defined over. *)
let fold_flat tbl f acc =
  Hashtbl.fold
    (fun name by_rank acc ->
      Hashtbl.fold (fun rank v acc -> f (name, rank) v acc) by_rank acc)
    tbl acc

(* --- Snapshots: the unit of in-band telemetry ------------------------- *)

(* A snapshot is an immutable, key-sorted view of (a rank slice of) a
   registry. Histograms are stored sparsely — only non-empty buckets —
   so the serialized form stays proportional to what actually changed,
   not to the 256-bucket array. *)

type hist_snap = {
  hs_buckets : (int * int) list; (* (bucket index, count), ascending, counts <> 0 *)
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
}

type snap = {
  sn_counters : ((string * int) * int) list;
  sn_gauges : ((string * int) * float) list;
  sn_hists : ((string * int) * hist_snap) list;
}

let snap_empty = { sn_counters = []; sn_gauges = []; sn_hists = [] }

let snap_is_empty s = s.sn_counters = [] && s.sn_gauges = [] && s.sn_hists = []

let hist_snap_of h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) <> 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  { hs_buckets = !buckets; hs_count = h.h_count; hs_sum = h.h_sum; hs_min = h.h_min; hs_max = h.h_max }

let hist_of_snap hs =
  let h =
    { buckets = Array.make nbuckets 0; h_count = hs.hs_count; h_sum = hs.hs_sum;
      h_min = hs.hs_min; h_max = hs.hs_max }
  in
  List.iter (fun (i, n) -> h.buckets.(i) <- n) hs.hs_buckets;
  h

let hist_snap_summary hs =
  if hs.hs_count <= 0 then None else Some (summarize (hist_of_snap hs))

let snapshot ?rank t =
  (* The one-rank slice — what a broker contributes every rollup epoch —
     walks the name level only and probes each family for that rank,
     instead of enumerating every (name, rank) cell in the registry. *)
  let sorted_bindings tbl f =
    (match rank with
    | Some want ->
      Hashtbl.fold
        (fun name by_rank acc ->
          match Hashtbl.find_opt by_rank want with
          | Some v -> ((name, want), f v) :: acc
          | None -> acc)
        tbl []
    | None -> fold_flat tbl (fun k v acc -> (k, f v) :: acc) [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    sn_counters = sorted_bindings t.counters (fun c -> !c);
    sn_gauges = sorted_bindings t.gauges (fun c -> c.g);
    sn_hists =
      sorted_bindings t.hists hist_snap_of
      |> List.filter (fun (_, hs) -> hs.hs_count > 0);
  }

(* Merge two key-sorted assoc lists with [combine] on shared keys,
   dropping combined values [drop] says are dead weight. *)
let rec merge_assoc combine drop a b =
  match (a, b) with
  | [], rest | rest, [] -> List.filter (fun (_, v) -> not (drop v)) rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c < 0 then
      if drop va then merge_assoc combine drop ta b
      else (ka, va) :: merge_assoc combine drop ta b
    else if c > 0 then
      if drop vb then merge_assoc combine drop a tb
      else (kb, vb) :: merge_assoc combine drop a tb
    else
      let v = combine va vb in
      if drop v then merge_assoc combine drop ta tb
      else (ka, v) :: merge_assoc combine drop ta tb

let hist_snap_add a b =
  {
    hs_buckets = merge_assoc ( + ) (fun n -> n = 0) a.hs_buckets b.hs_buckets;
    hs_count = a.hs_count + b.hs_count;
    hs_sum = a.hs_sum +. b.hs_sum;
    hs_min = Float.min a.hs_min b.hs_min;
    hs_max = Float.max a.hs_max b.hs_max;
  }

(* Bucket-wise subtraction for the delta path. min/max are not
   invertible, so the delta keeps [next]'s observed range — a sound
   over-approximation of the window's range (the merged center-level
   min/max stay bounds on real observations). *)
let hist_snap_sub ~base next =
  {
    hs_buckets = merge_assoc ( + ) (fun n -> n = 0) next.hs_buckets
        (List.map (fun (i, n) -> (i, -n)) base.hs_buckets);
    hs_count = next.hs_count - base.hs_count;
    hs_sum = next.hs_sum -. base.hs_sum;
    hs_min = next.hs_min;
    hs_max = next.hs_max;
  }

let merge a b =
  {
    sn_counters = merge_assoc ( + ) (fun n -> n = 0) a.sn_counters b.sn_counters;
    (* Gauges are last-value: on a shared key the right operand (the
       fresher contribution) wins. *)
    sn_gauges = merge_assoc (fun _ vb -> vb) (fun _ -> false) a.sn_gauges b.sn_gauges;
    sn_hists =
      merge_assoc hist_snap_add (fun hs -> hs.hs_count = 0 && hs.hs_buckets = [])
        a.sn_hists b.sn_hists;
  }

let diff ~base next =
  let counters =
    merge_assoc ( + ) (fun n -> n = 0) next.sn_counters
      (List.map (fun (k, n) -> (k, -n)) base.sn_counters)
  in
  (* A gauge unchanged since [base] is omitted: merge is right-biased,
     so [merge base (diff ~base next)] still reconstructs [next]. *)
  let gauges =
    List.filter
      (fun (k, v) ->
        match List.assoc_opt k base.sn_gauges with
        | Some prev -> not (Float.equal prev v)
        | None -> true)
      next.sn_gauges
  in
  let hists =
    merge_assoc
      (fun next_hs neg_base -> hist_snap_sub ~base:{ neg_base with hs_count = -neg_base.hs_count } next_hs)
      (fun hs -> hs.hs_count = 0 && hs.hs_buckets = [])
      next.sn_hists
      (List.map (fun (k, hs) -> (k, { hs with hs_count = -hs.hs_count })) base.sn_hists)
  in
  (* The combine above only fires on shared keys; a base-only key would
     survive as a negated orphan. Registries never remove keys, so a
     base-only key cannot happen on a well-formed (base, next) pair —
     but guard anyway so a malformed pair degrades to dropping it. *)
  let hists = List.filter (fun (_, hs) -> hs.hs_count >= 0) hists in
  { sn_counters = counters; sn_gauges = gauges; sn_hists = hists }

let snap_record t s =
  List.iter (fun ((name, rank), n) -> add t ~name ~rank n) s.sn_counters;
  List.iter (fun ((name, rank), v) -> set_gauge t ~name ~rank v) s.sn_gauges;
  List.iter
    (fun ((name, rank), hs) ->
      let h = family_hist (hist_family t ~name) ~rank in
      merge_into h (hist_of_snap hs))
    s.sn_hists

(* --- Snapshot accessors (what the detectors and series consume) ------- *)

let names_of bindings =
  let seen = Hashtbl.create 16 in
  List.iter (fun ((n, _), _) -> Hashtbl.replace seen n ()) bindings;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let snap_counter_names s = names_of s.sn_counters
let snap_gauge_names s = names_of s.sn_gauges
let snap_hist_names s = names_of s.sn_hists

let per_rank bindings name =
  List.filter_map
    (fun ((n, r), v) -> if String.equal n name then Some (r, v) else None)
    bindings

let snap_counters_of s ~name = per_rank s.sn_counters name
let snap_gauges_of s ~name = per_rank s.sn_gauges name
let snap_hists_of s ~name = per_rank s.sn_hists name

let snap_counter_total s ~name =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (snap_counters_of s ~name)

let snap_hist_merged s ~name =
  match snap_hists_of s ~name with
  | [] -> None
  | (_, h0) :: rest ->
    hist_snap_summary (List.fold_left (fun acc (_, h) -> hist_snap_add acc h) h0 rest)

let snap_ranks s =
  let seen = Hashtbl.create 16 in
  let see ((_, r), _) = Hashtbl.replace seen r () in
  List.iter see s.sn_counters;
  List.iter see s.sn_gauges;
  List.iter see s.sn_hists;
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) seen [])

(* --- Snapshot wire codec ---------------------------------------------- *)

(* Compact JSON rows: ["name", rank, v]. Key order is the sorted
   snapshot order, so serialization is deterministic. *)

let snap_to_json s =
  let counter ((n, r), v) = Json.list [ Json.string n; Json.int r; Json.int v ] in
  let gauge ((n, r), v) = Json.list [ Json.string n; Json.int r; Json.float v ] in
  let hist ((n, r), hs) =
    Json.list
      [
        Json.string n;
        Json.int r;
        Json.list (List.map (fun (i, c) -> Json.list [ Json.int i; Json.int c ]) hs.hs_buckets);
        Json.int hs.hs_count;
        Json.float hs.hs_sum;
        Json.float hs.hs_min;
        Json.float hs.hs_max;
      ]
  in
  Json.obj
    [
      ("c", Json.list (List.map counter s.sn_counters));
      ("g", Json.list (List.map gauge s.sn_gauges));
      ("h", Json.list (List.map hist s.sn_hists));
    ]

let snap_of_json j =
  let triple f row =
    match Json.to_list row with
    | [ n; r; v ] -> ((Json.to_string_v n, Json.to_int r), f v)
    | _ -> raise (Json.Type_error "snap_of_json: expected [name, rank, value]")
  in
  let hist row =
    match Json.to_list row with
    | [ n; r; buckets; count; sum; mn; mx ] ->
      ( (Json.to_string_v n, Json.to_int r),
        {
          hs_buckets =
            List.map
              (fun b ->
                match Json.to_list b with
                | [ i; c ] -> (Json.to_int i, Json.to_int c)
                | _ -> raise (Json.Type_error "snap_of_json: expected [bucket, count]"))
              (Json.to_list buckets);
          hs_count = Json.to_int count;
          hs_sum = Json.to_float sum;
          hs_min = Json.to_float mn;
          hs_max = Json.to_float mx;
        } )
    | _ -> raise (Json.Type_error "snap_of_json: malformed histogram row")
  in
  {
    sn_counters = List.map (triple Json.to_int) (Json.to_list (Json.member "c" j));
    sn_gauges = List.map (triple Json.to_float) (Json.to_list (Json.member "g" j));
    sn_hists = List.map hist (Json.to_list (Json.member "h" j));
  }

(* CSV: one [metric,rank,value] row per counter/gauge, and one row per
   summary statistic per histogram, sorted for determinism. *)
let to_csv t =
  let rows = ref [] in
  let row name rank v = rows := (name, rank, v) :: !rows in
  fold_flat t.counters (fun (n, r) v () -> row n r (string_of_int !v)) ();
  fold_flat t.gauges (fun (n, r) v () -> row n r (Printf.sprintf "%.9g" v.g)) ();
  fold_flat t.hists
    (fun (n, r) h () ->
      if h.h_count > 0 then begin
        let s = summarize h in
        row (n ^ ".count") r (string_of_int s.n);
        row (n ^ ".sum") r (Printf.sprintf "%.9g" s.sum);
        row (n ^ ".min") r (Printf.sprintf "%.9g" s.mn);
        row (n ^ ".max") r (Printf.sprintf "%.9g" s.mx);
        row (n ^ ".p50") r (Printf.sprintf "%.9g" s.p50);
        row (n ^ ".p95") r (Printf.sprintf "%.9g" s.p95);
        row (n ^ ".p99") r (Printf.sprintf "%.9g" s.p99)
      end)
    ();
  let b = Buffer.create 1024 in
  Buffer.add_string b "metric,rank,value\n";
  List.iter
    (fun (n, r, v) -> Buffer.add_string b (Printf.sprintf "%s,%d,%s\n" n r v))
    (List.sort compare !rows);
  Buffer.contents b

let summary_json s =
  Json.obj
    [
      ("count", Json.int s.n);
      ("sum", Json.float s.sum);
      ("min", Json.float s.mn);
      ("max", Json.float s.mx);
      ("p50", Json.float s.p50);
      ("p95", Json.float s.p95);
      ("p99", Json.float s.p99);
    ]

(* JSON view: counters summed across ranks, gauges per rank, histograms
   merged across ranks (per-rank detail lives in the CSV). *)
let to_json t =
  let counter_names =
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.counters [])
  in
  let counters =
    List.map (fun n -> (n, Json.int (counter_total t ~name:n))) counter_names
  in
  let gauges =
    List.sort compare (fold_flat t.gauges (fun (n, r) v acc -> ((n, r), v.g) :: acc) [])
    |> List.map (fun ((n, r), v) -> (Printf.sprintf "%s[%d]" n r, Json.float v))
  in
  let hists =
    List.filter_map
      (fun n ->
        match summary_merged t ~name:n with
        | Some s -> Some (n, summary_json s)
        | None -> None)
      (hist_names t)
  in
  Json.obj
    [ ("counters", Json.obj counters); ("gauges", Json.obj gauges); ("histograms", Json.obj hists) ]
