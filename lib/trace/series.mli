(** Center-level telemetry time series.

    The root of the telemetry plane folds each completed rollup epoch —
    a cross-rank merged {!Metrics.snap} delta — into one bounded ring
    per metric name: counters keep the per-epoch delta summed across
    ranks, gauges a min/max/sum rollup of per-rank last-values,
    histograms the bucket-merged percentile summary. Memory is bounded
    by [window] points per name regardless of run length. *)

module Json = Flux_json.Json

type gauge_point = { gp_min : float; gp_max : float; gp_sum : float; gp_n : int }

type point =
  | P_counter of int  (** per-epoch delta, summed across ranks *)
  | P_gauge of gauge_point  (** rollup of per-rank last-values *)
  | P_hist of Metrics.summary  (** bucket-merged across ranks *)

type t

val create : ?window:int -> unit -> t
(** [window] (default 256) bounds retained points per metric; raises
    [Invalid_argument] when non-positive. *)

val window : t -> int

val record : t -> epoch:int -> Metrics.snap -> unit
(** Fold one epoch's merged delta into the store. *)

val last_epoch : t -> int
(** Newest epoch recorded; -1 before the first. *)

val epochs_recorded : t -> int

val names : t -> string list
(** Sorted metric names with at least one point. *)

val points : t -> name:string -> (int * point) list
(** Retained (epoch, point) history, oldest first. *)

val latest : t -> name:string -> (int * point) option

val latest_scalar : t -> name:string -> (int * float) option
(** Newest point reduced to its trend scalar (counter delta, gauge max,
    histogram p95) — the instantaneous pressure reading an elasticity
    controller polls between trend alerts. *)

val tail_scalars : t -> name:string -> n:int -> (int * float) list
(** The last [n] points reduced to the trend scalar (counter delta,
    gauge max, histogram p95) — the queue-growth detector's input. *)

val to_csv : t -> string
(** [metric,epoch,kind,count,sum,min,max,p50,p95,p99] rows, sorted by
    metric then epoch. *)

val to_json : t -> Json.t

val render_top : t -> string
(** A [flux top]-style fixed-width table of every metric at its latest
    epoch. *)
