module Json = Flux_json.Json

type kind = Request | Response | Event

type t = {
  kind : kind;
  topic : string;
  nonce : int;
  origin : int;
  dst : int option;
  seq : int;
  route : int list;
  error : string option;
  payload : Json.t;
  trace : Flux_trace.Tracer.ctx option;
      (* Causal context; out-of-band instrumentation, so it is excluded
         from [size] and must never influence routing or delivery. *)
}

let check_topic topic =
  if not (Topic.is_valid topic) then
    invalid_arg (Printf.sprintf "Message: invalid topic %S" topic)

let request ?dst ~topic ~origin ~nonce payload =
  check_topic topic;
  {
    kind = Request;
    topic;
    nonce;
    origin;
    dst;
    seq = 0;
    route = [];
    error = None;
    payload;
    trace = None;
  }

let response ~of_ payload =
  { of_ with kind = Response; payload; error = None }

let error_response ~of_ err =
  { of_ with kind = Response; payload = Json.null; error = Some err }

let event ~topic ~origin payload =
  check_topic topic;
  {
    kind = Event;
    topic;
    nonce = 0;
    origin;
    dst = None;
    seq = 0;
    route = [];
    error = None;
    payload;
    trace = None;
  }

(* Fixed header: kind tag, nonce, origin, dst, seq (4 B each on the wire
   in the prototype's binary framing) plus the topic string and 4 B per
   route hop. *)
let size m =
  20 + String.length m.topic
  + (4 * List.length m.route)
  + (match m.error with Some e -> String.length e | None -> 0)
  + Json.serialized_size m.payload

let with_trace m ctx = { m with trace = Some ctx }

let push_hop m rank = { m with route = rank :: m.route }

let pop_hop m =
  match m.route with [] -> None | hop :: rest -> Some (hop, { m with route = rest })

let kind_to_string = function
  | Request -> "request"
  | Response -> "response"
  | Event -> "event"

let pp ppf m =
  Format.fprintf ppf "%s %s nonce=%d origin=%d%s%s" (kind_to_string m.kind) m.topic
    m.nonce m.origin
    (match m.dst with Some d -> Printf.sprintf " dst=%d" d | None -> "")
    (match m.error with Some e -> Printf.sprintf " error=%S" e | None -> "")
