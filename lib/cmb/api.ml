module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Ivar = Flux_sim.Ivar
module Proc = Flux_sim.Proc

type t = { sess : Session.t; r : int; ipc : float }

let connect sess ~rank =
  let cfg = Flux_sim.Net.default_config in
  { sess; r = rank; ipc = cfg.Flux_sim.Net.local_delivery }

let rank t = t.r
let session t = t.sess

let broker t = Session.broker t.sess t.r

let rpc_async t ?timeout ?attempts ?idempotent ?trace_ctx ~topic payload ~reply =
  let eng = Session.engine t.sess in
  (* Model the UNIX-domain-socket hop in both directions. *)
  ignore
    (Engine.schedule eng ~delay:t.ipc (fun () ->
         Session.request_up (broker t) ?timeout ?attempts ?idempotent ?trace_ctx ~topic
           payload ~reply:(fun r ->
             ignore (Engine.schedule eng ~delay:t.ipc (fun () -> reply r) : Engine.handle)))
      : Engine.handle)

let rpc t ?timeout ?attempts ?idempotent ?trace_ctx ~topic payload =
  let iv = Ivar.create () in
  let eng = Session.engine t.sess in
  rpc_async t ?timeout ?attempts ?idempotent ?trace_ctx ~topic payload ~reply:(fun r ->
      Ivar.fill eng iv r);
  Proc.await iv

let rpc_rank t ?timeout ?attempts ?idempotent ~dst ~topic payload =
  let iv = Ivar.create () in
  let eng = Session.engine t.sess in
  ignore
    (Engine.schedule eng ~delay:t.ipc (fun () ->
         Session.rpc_rank (broker t) ?timeout ?attempts ?idempotent ~dst ~topic payload
           ~reply:(fun r ->
             ignore
               (Engine.schedule eng ~delay:t.ipc (fun () -> Ivar.fill eng iv r)
                 : Engine.handle)))
      : Engine.handle);
  Proc.await iv

let publish t ~topic payload =
  let eng = Session.engine t.sess in
  ignore
    (Engine.schedule eng ~delay:t.ipc (fun () -> Session.publish (broker t) ~topic payload)
      : Engine.handle)

let subscribe t ~prefix cb =
  Session.subscribe (broker t) ~prefix (fun (ev : Message.t) ->
      let eng = Session.engine t.sess in
      ignore
        (Engine.schedule eng ~delay:t.ipc (fun () ->
             cb ~topic:ev.Message.topic ev.Message.payload)
          : Engine.handle))

let next_event t ~prefix =
  let iv = Ivar.create () in
  let eng = Session.engine t.sess in
  let armed = ref true in
  Session.subscribe (broker t) ~prefix (fun ev ->
      if !armed then begin
        armed := false;
        ignore
          (Engine.schedule eng ~delay:t.ipc (fun () ->
               Ivar.fill eng iv (ev.Message.topic, ev.Message.payload))
            : Engine.handle)
      end);
  Proc.await iv
