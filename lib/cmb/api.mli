(** Client access to a local CMB broker.

    In the prototype, external programs (the [flux] utility, PMI
    libraries, tools) talk to the broker on their node over a UNIX
    domain socket; this module models that hop with the configured
    local-delivery cost and exposes blocking RPC wrappers for use inside
    {!Flux_sim.Proc} process bodies. *)

type t
(** A client connection to the broker at one rank. *)

val connect : Session.t -> rank:int -> t
val rank : t -> int
val session : t -> Session.t

val rpc :
  t ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  topic:string ->
  Flux_json.Json.t ->
  Session.reply
(** Blocking RPC injected at the local broker and routed upstream. Only
    valid inside a process body. Returns [Error "timeout"] if the
    deadline (see {!Session.rpc_config}) expires; [timeout]/[attempts]/
    [idempotent]/[trace_ctx] are forwarded to {!Session.request_up}
    ([trace_ctx] rides the message envelope out-of-band, so it never
    perturbs payload sizes or simulated timing). *)

val rpc_async :
  t ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  topic:string ->
  Flux_json.Json.t ->
  reply:(Session.reply -> unit) ->
  unit

val rpc_rank :
  t ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  dst:int ->
  topic:string ->
  Flux_json.Json.t ->
  Session.reply
(** Blocking rank-addressed RPC over the ring plane. *)

val publish : t -> topic:string -> Flux_json.Json.t -> unit

val subscribe : t -> prefix:string -> (topic:string -> Flux_json.Json.t -> unit) -> unit
(** Register an event callback; fires for every event whose topic has
    the given component-wise prefix. *)

val next_event : t -> prefix:string -> string * Flux_json.Json.t
(** Block until the next matching event; returns (topic, payload). *)
