(** A comms session: one CMB broker per node, interconnected by three
    persistent overlay planes.

    Mirrors the paper's Figure 1 wire-up:
    - an event plane (modeled PGM bus) carrying publish-subscribe events
      with guaranteed, in-order delivery;
    - a request-response tree (configurable fan-out) for scalable RPCs,
      barriers and reductions — requests travel upstream to the first
      comms module that matches their topic, responses retrace the hops;
    - a ring overlay for rank-addressed RPCs reaching any rank without
      routing tables.

    Comms modules are plugins loaded into a broker; they receive the
    requests and events that arrive at their broker and may respond,
    aggregate-and-forward (reductions), or publish. *)

type t
(** A comms session over ranks [0 .. size-1]. *)

type broker
(** Per-rank broker state. *)

type reply = (Flux_json.Json.t, string) result
(** RPC outcome: payload of the response, or the error string. *)

type handled = Consumed | Pass
(** A module's verdict on a request: [Consumed] stops routing (the
    module owns the eventual response); [Pass] lets the request continue
    upstream. *)

type module_instance = {
  mod_name : string;  (** must equal the topic service component it serves *)
  on_request : Message.t -> handled;
  on_event : Message.t -> unit;
}

type module_factory = broker -> module_instance

(** {1 RPC lifecycle configuration}

    Every RPC registered in a broker's pending table carries a deadline
    scheduled on the engine: if no response arrives in time the
    continuation fires with [Error "timeout"] and the table entry is
    removed, so requests addressed to a rank that dies in flight never
    dangle. Idempotent requests are additionally retransmitted (same
    nonce, so duplicate responses are ignored) with exponential backoff,
    re-routed through whatever topology is in effect at retransmit time
    — a slave whose parent died retries through its new parent once the
    overlay heals. *)

type rpc_config = {
  rpc_timeout : float;  (** per-attempt deadline, seconds; [infinity]
                            disables the timer (for RPCs that block by
                            design, e.g. a fence) *)
  rpc_attempts : int;  (** default max transmissions for idempotent
                           requests; non-idempotent requests always use 1 *)
  rpc_backoff_base : float;  (** delay before the first retransmit *)
  rpc_backoff_cap : float;  (** upper bound on the backoff delay *)
  rpc_jitter : float;
      (** fraction of the backoff randomized away per retry, drawn from
          a deterministic hash of (rank, nonce, attempt) — seeded
          jitter that desynchronizes retransmit stampedes without
          making runs irreproducible; 0 restores pure exponential
          backoff *)
}

val default_rpc_config : rpc_config
(** 2 s per-attempt timeout, 4 attempts, 50 ms base backoff doubling up
    to a 1 s cap, 10% retransmit jitter. *)

(** {1 Overload protection}

    Servers under admission control shed requests with the structured
    error [busy retry_after=<seconds>] instead of queueing without
    bound; the retry machinery recognizes it and reschedules the
    retransmit (hint floored into the backoff schedule, capped and
    jittered) rather than surfacing the failure, so clients degrade to
    higher latency, not errors. Only requests with retransmit budget
    left (idempotent, attempts remaining) are retried — others see the
    busy error directly.

    Independently, a session can run credit-based flow control on the
    request tree: each broker spends one credit per in-flight upstream
    request and wins it back when the response passes down through it.
    An exhausted window defers sends into a bounded per-broker stash;
    a full stash sheds with the busy error above — so fan-in pressure
    propagates down the TBON hop by hop instead of accumulating at the
    root, bounding memory at every level while preserving the paper's
    commit-aggregation semantics. *)

type flow_config = {
  flow_credits : int;  (** in-flight upstream requests allowed per broker *)
  flow_stash : int;  (** deferred sends held per broker before shedding *)
  flow_timeout : float;
      (** seconds before an unanswered credit is considered leaked and
          reclaimed (responses lost to drops or dead parents) *)
}

val default_flow_config : flow_config
(** 64 credits, 256 stashed sends, 4 s credit expiry. *)

val busy_error : retry_after:float -> string
(** The structured shed error: [busy retry_after=<seconds>]. *)

val busy_retry_after : string -> float option
(** Parse the hint back out of an error string; [None] when the error
    is not a busy rejection. *)

(** {1 Session lifecycle} *)

type rank_topology =
  | Ring  (** store-and-forward around a ring: trivial routing, O(n) hops
              (the prototype's choice, fine for debugging tools) *)
  | Direct  (** a full point-to-point overlay: one hop to any rank (the
                "configurable topology" knob of the secondary overlay) *)

val create :
  Flux_sim.Engine.t ->
  ?net_config:Flux_sim.Net.config ->
  ?fanout:int ->
  ?rank_topology:rank_topology ->
  ?rpc_config:rpc_config ->
  ?flow:flow_config ->
  size:int ->
  unit ->
  t
(** [create eng ~size ()] wires up a session of [size] brokers with the
    given RPC-tree fan-out (default 2, the paper's binary tree),
    rank-addressed overlay topology (default {!Ring}), and RPC deadline
    policy (default {!default_rpc_config}). [flow] (default off) turns
    on credit-based flow control on the request tree; children created
    with {!create_child} inherit it. Raises [Invalid_argument] on
    non-positive flow bounds. *)

val engine : t -> Flux_sim.Engine.t
val size : t -> int
val fanout : t -> int
val broker : t -> int -> broker

val load_module : t -> ?ranks:int list -> module_factory -> unit
(** [load_module t f] instantiates the module on every rank (or on
    [ranks] only, to load at a configurable tree depth). *)

(** {1 Broker context — used by modules and the client API} *)

val rank : broker -> int
val session_of : broker -> t
val b_engine : broker -> Flux_sim.Engine.t
val b_size : broker -> int

val tree_parent : broker -> int option
(** Effective parent after healing; [None] at the root. *)

val tree_children : broker -> int list
(** Effective children after healing. *)

val find_module : broker -> string -> module_instance option

val respond : broker -> Message.t -> Flux_json.Json.t -> unit
(** [respond b req payload] sends the response back along [req]'s
    recorded route. *)

val respond_error : broker -> Message.t -> string -> unit

val request_up :
  broker ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  topic:string ->
  Flux_json.Json.t ->
  reply:(reply -> unit) ->
  unit
(** Inject a request at this broker destined upstream: local modules are
    consulted first, then it ascends hop by hop. [reply] always fires
    exactly once: with the response, or with [Error "timeout"] after the
    deadline (and any retransmits) are exhausted. [timeout] and
    [attempts] override the session {!rpc_config}; [idempotent] (default
    [false]) opts into retransmission with the configured attempt
    budget. With a tracer attached the RPC becomes a span: a fresh root
    context unless [trace_ctx] supplies the causal parent (a module
    forwarding work it received); the context rides the message through
    every hop, retransmit and the response. *)

val request_from_module :
  broker ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  topic:string ->
  Flux_json.Json.t ->
  reply:(reply -> unit) ->
  unit
(** Like {!request_up} but skips this broker's own modules — used by a
    module instance forwarding aggregated work toward its upstream peer. *)

val rpc_rank :
  broker ->
  ?timeout:float ->
  ?attempts:int ->
  ?idempotent:bool ->
  ?trace_ctx:Flux_trace.Tracer.ctx ->
  ?route:(unit -> int) ->
  dst:int ->
  topic:string ->
  Flux_json.Json.t ->
  reply:(reply -> unit) ->
  unit
(** Rank-addressed RPC over the ring plane. Deadline semantics as in
    {!request_up}. When [route] is given, every (re)transmission calls
    it to resolve the destination, so idempotent retries follow the
    current topology (a healed volume tree, a newly elected master)
    instead of retransmitting to the rank first addressed; [dst] is
    then only the first attempt's target. *)

val publish : broker -> ?trace_ctx:Flux_trace.Tracer.ctx -> topic:string -> Flux_json.Json.t -> unit
(** Publish an event: it ascends to the session root, receives a session
    sequence number, and is multicast down the event plane to every
    live broker. Delivery at each broker is in sequence order.
    [trace_ctx] links the event into a causal trace (e.g. the KVS
    commit that caused a setroot). *)

val subscribe : broker -> prefix:string -> (Message.t -> unit) -> unit
(** Local event subscription with component-wise topic prefix match. *)

val last_event_seq : broker -> int

(** {1 Session hierarchy}

    New comms sessions are created, destroyed and monitored by existing
    ones in a parent-child relationship: a child session covers a
    subset of the parent's nodes (the parent's session assists its
    bootstrap, which is why nested-instance creation is charged only a
    small cost), and destroying a parent tears down its descendants. *)

val create_child : t -> ?fanout:int -> ?rank_topology:rank_topology -> nodes:int list -> unit -> t
(** [create_child parent ~nodes ()] builds a session over the given
    parent ranks (child rank [i] runs on parent rank [List.nth nodes i]).
    Raises [Invalid_argument] on an empty list, duplicate ranks, ranks
    out of range, or dead parent ranks. *)

val parent_session : t -> t option
val child_sessions : t -> t list
(** Live children, in creation order. *)

val session_depth : t -> int
(** 0 at the root session. *)

val hosted_on : t -> int -> int
(** [hosted_on child r] is the parent-session rank carrying child rank
    [r] (identity for a root session). *)

val destroy : t -> unit
(** Tear a session down: every broker stops (all traffic dropped), its
    descendants are destroyed recursively, and it is unlinked from its
    parent. Idempotent. *)

val is_destroyed : t -> bool

(** {1 Failure injection and healing} *)

val crash : t -> int -> unit
(** [crash t r] makes rank [r] drop all traffic (the node has died) but
    does {e not} rewire: detection is the live module's job. *)

val mark_down : t -> int -> unit
(** [mark_down t r] records [r] as dead and rewires the overlays: orphan
    subtrees reattach to their nearest live ancestor (or, when the whole
    ancestor chain is dead, directly to the new overlay root — the
    lowest live rank); brokers whose parent changed resynchronize their
    event streams. Registered liveness watchers fire after the heal.
    Idempotent. *)

val mark_up : t -> int -> unit
(** [mark_up t r] reverses {!mark_down}: the rank's network endpoints
    are revived on all three planes, the overlay re-heals (the static
    topology is restored once every rank is back), the revived broker
    pulls the event backlog it missed (the overlay root pulls from a
    live child over the rank plane), and liveness watchers fire with
    [is_up = true]. Idempotent; a no-op on destroyed sessions. *)

val heal : t -> unit
(** Recompute effective topology from liveness (called by {!mark_down}
    and {!mark_up}). *)

val is_down : t -> int -> bool

val alive_ranks : t -> int list

val root_rank : t -> int
(** The current overlay root: the lowest live rank (-1 if every rank is
    down). Deterministic, which is what services use for leader
    election. *)

val topology_epoch : t -> int
(** Bumped by every {!mark_down} / {!mark_up}; lets modules detect that
    the overlay changed under them. *)

val add_liveness_watch : t -> (int -> bool -> unit) -> unit
(** [add_liveness_watch t f] registers [f rank is_up] to run after every
    {!mark_down} ([is_up = false]) and {!mark_up} ([is_up = true]), once
    the topology has healed. Watchers run in registration order and are
    how services (kvs election, live, group) react to membership
    changes. *)

(** {1 Observability} *)

val set_tracer : t -> Flux_trace.Tracer.t option -> unit
(** Attach a tracer: the session emits category ["cmb"] events —
    [rpc.send]/[rpc.done] (with [topic], [dur] and the span context) for
    every client RPC, [rpc.retry]/[rpc.timeout] on the deadline path,
    [hop.up]/[hop.down]/[hop.ring] per forwarding hop, [event.publish]
    and [event.deliver] on the event plane, and [mark_down]/[mark_up] on
    topology changes. Also attached to the three Net planes, which fold
    their drop accounting into the same counter table. *)

val set_metrics : t -> Flux_trace.Metrics.t option -> unit
(** Attach a metrics registry: client RPC latencies feed
    [cmb.rpc.latency] (plus a [.depth<d>] histogram keyed by the
    origin's RPC-tree depth), and the three Net planes record per-hop
    queue/transit histograms under labels [net.rpc]/[net.event]/
    [net.ring]. *)

val metrics : t -> Flux_trace.Metrics.t option

(** {1 Accounting} *)

val rpc_timeouts : t -> int
(** RPCs that completed with [Error "timeout"] across all brokers. *)

val rpc_retries : t -> int
(** Retransmissions performed across all brokers. *)

val rpc_busy_retries : t -> int
(** Retries rescheduled because a server shed with
    [busy retry_after=...] (a subset of {!rpc_retries} outcomes). *)

val pending_rpc_count : t -> int -> int
(** In-flight RPCs registered at one rank's broker (dangling entries
    would show up here). *)

val flow_defers : t -> int
(** Upstream sends deferred into a broker stash by exhausted credit. *)

val flow_sheds : t -> int
(** Upstream sends rejected with the busy error by a full stash. *)

val flow_stash_hwm : t -> int
(** Highest stash occupancy any broker reached — the bound the overload
    harness asserts against [flow_stash]. *)

val flow_stash_depth : t -> int -> int
(** Requests currently stashed at one rank's broker. *)

val flow_inflight : t -> int -> int
(** Credits currently spent (in-flight upstream requests) at one rank. *)

val rpc_net : t -> Message.t Flux_sim.Net.t
(** The RPC-tree fabric — exposed so tests and benchmarks can inject
    faults ({!Flux_sim.Net.set_loss}, {!Flux_sim.Net.cut_link}, ...). *)

val event_net : t -> Message.t Flux_sim.Net.t
val ring_net : t -> Message.t Flux_sim.Net.t

val rpc_net_stats : t -> Flux_sim.Net.stats
val event_net_stats : t -> Flux_sim.Net.stats
val ring_net_stats : t -> Flux_sim.Net.stats

val root_rpc_ingress_bytes : t -> int
(** Payload bytes that crossed the links into rank 0 on the RPC plane —
    the fence bottleneck the paper analyzes. *)
