(** CMB messages.

    All CMB messages have a uniform multi-part format: a header frame
    (kind, topic, routing metadata) and a JSON payload frame. The
    [size] model mirrors what the prototype would put on the wire and is
    what the network simulator charges. *)

type kind = Request | Response | Event

type t = {
  kind : kind;
  topic : string;
  nonce : int;  (** matches a response to its request; 0 for events *)
  origin : int;  (** rank where the request entered the CMB *)
  dst : int option;  (** rank-addressed (ring plane) messages only *)
  seq : int;  (** event sequence number assigned by the session root *)
  route : int list;
      (** broker ranks traversed upstream, most recent first; responses
          pop this stack to retrace the path *)
  error : string option;  (** set on error responses *)
  payload : Flux_json.Json.t;
  trace : Flux_trace.Tracer.ctx option;
      (** causal trace context, propagated to responses (record
          inheritance) and across retransmits (same message value);
          [None] unless a tracer is attached. Excluded from [size] —
          instrumentation must not perturb the simulation. *)
}

val request : ?dst:int -> topic:string -> origin:int -> nonce:int -> Flux_json.Json.t -> t
(** Raises [Invalid_argument] on an invalid topic. *)

val response : of_:t -> Flux_json.Json.t -> t
(** [response ~of_:req payload] builds the matching response, inheriting
    topic, nonce, origin and route. *)

val error_response : of_:t -> string -> t

val event : topic:string -> origin:int -> Flux_json.Json.t -> t

val size : t -> int
(** Serialized size in bytes: header estimate plus JSON payload size. *)

val with_trace : t -> Flux_trace.Tracer.ctx -> t

val push_hop : t -> int -> t
val pop_hop : t -> (int * t) option

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
