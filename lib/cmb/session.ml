module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Net = Flux_sim.Net
module Treemath = Flux_util.Treemath
module Ring_buffer = Flux_util.Ring_buffer
module Idgen = Flux_util.Idgen
module Rng = Flux_util.Rng
module Tracer = Flux_trace.Tracer
module Metrics = Flux_trace.Metrics

type rank_topology = Ring | Direct

type reply = (Json.t, string) result

(* --- RPC lifecycle configuration ----------------------------------- *)

type rpc_config = {
  rpc_timeout : float;
  rpc_attempts : int;
  rpc_backoff_base : float;
  rpc_backoff_cap : float;
  rpc_jitter : float;
}

let default_rpc_config =
  {
    rpc_timeout = 2.0;
    rpc_attempts = 4;
    rpc_backoff_base = 0.05;
    rpc_backoff_cap = 1.0;
    rpc_jitter = 0.1;
  }

(* --- Credit-based flow control ------------------------------------- *)

type flow_config = { flow_credits : int; flow_stash : int; flow_timeout : float }

let default_flow_config = { flow_credits = 64; flow_stash = 256; flow_timeout = 4.0 }

(* Structured overload rejection: servers shed with
   [Error "busy retry_after=<seconds>"] and the RPC retry machinery
   honors the hint instead of surfacing the failure. *)

let busy_error ~retry_after = Printf.sprintf "busy retry_after=%.6f" retry_after

let busy_retry_after e =
  let n = String.length e in
  if n >= 4 && String.sub e 0 4 = "busy" && (n = 4 || e.[4] = ' ') then
    match String.index_opt e '=' with
    | Some i -> (
      try Some (float_of_string (String.sub e (i + 1) (n - i - 1))) with _ -> Some 0.0)
    | None -> Some 0.0
  else None

type handled = Consumed | Pass

type module_instance = {
  mod_name : string;
  on_request : Message.t -> handled;
  on_event : Message.t -> unit;
}

type t = {
  eng : Engine.t;
  n : int;
  k : int; (* RPC tree fan-out *)
  rank_topo : rank_topology;
  rpc_net : Message.t Net.t;
  event_net : Message.t Net.t;
  ring_net : Message.t Net.t;
  mutable brokers : broker array;
  down : bool array;
  parent_of : int option array; (* effective topology, recomputed by heal *)
  children_of : int list array;
  mutable next_seq : int; (* event sequence, assigned at the root *)
  mutable tracer : Tracer.t option;
  mutable metrics : Metrics.t option;
  (* (overall, per-depth) RPC latency histogram families, resolved once
     when a registry attaches — [instrument_reply] runs per RPC. *)
  mutable lat_fams : (Metrics.hist_family * Metrics.hist_family array) option;
  mutable parent : (t * int list) option; (* parent session + host ranks *)
  mutable children : t list; (* creation order, live only *)
  mutable destroyed : bool;
  rpc : rpc_config;
  flow : flow_config option;
  mutable rpc_timeouts : int;
  mutable rpc_retries : int;
  mutable rpc_busy_retries : int;
  mutable flow_defers : int;
  mutable flow_sheds : int;
  mutable flow_stash_hwm : int;
  mutable root_rank : int; (* lowest live rank; overlay root after heal *)
  mutable topo_epoch : int; (* bumped on every mark_down / mark_up *)
  mutable on_liveness : (int -> bool -> unit) list; (* rank, is_up *)
  static_parent : int option array; (* k-ary tree parents, fixed at create *)
  mutable alive_cache : int list; (* memoized [alive_ranks], valid for... *)
  mutable alive_cache_epoch : int; (* ...this topology epoch (-1 = stale) *)
}

and broker = {
  b_rank : int;
  b_session : t;
  mutable modules : module_instance list; (* in load order *)
  mod_index : (string, module_instance) Hashtbl.t; (* name -> instance *)
  pending : (int, pending_rpc) Hashtbl.t;
  mutable subs : (string * (Message.t -> unit)) list;
  mutable last_seq : int;
  event_log : Message.t Ring_buffer.t;
  stashed : (int, Message.t) Hashtbl.t; (* out-of-order events by seq *)
  mutable resync_in_flight : bool;
  nonces : Idgen.t;
  (* Credit-based flow control toward the parent, active only when the
     session carries a [flow_config]. [fc_charges] holds the send time
     of each in-flight upstream request (its length is the spent
     credit); [fc_stash] holds requests deferred by an exhausted
     window. *)
  fc_charges : float Queue.t;
  fc_stash : Message.t Queue.t;
  mutable fc_timer : bool;
}

(* One in-flight RPC at its origin broker. The deadline timer is re-armed
   on every retransmit; completing the RPC (response, timeout, or final
   failure) cancels it and removes the table entry, so nothing dangles. *)
and pending_rpc = {
  pr_reply : reply -> unit;
  mutable pr_timer : Engine.handle option;
  mutable pr_sends : int;
  pr_timeout : float;
  pr_attempts : int; (* max total transmissions; 1 = no retry *)
  pr_resend : (unit -> unit) option; (* re-route via the current topology *)
  pr_ctx : Tracer.ctx option; (* causal span, shared by all transmissions *)
}

and module_factory = broker -> module_instance

let set_tracer t tr =
  t.tracer <- tr;
  (* Net folds its drop accounting into the same counter table. *)
  Net.set_tracer t.rpc_net tr;
  Net.set_tracer t.event_net tr;
  Net.set_tracer t.ring_net tr

let depth_latency_names = Array.init 64 (Printf.sprintf "cmb.rpc.latency.depth%d")

let set_metrics t m =
  t.metrics <- m;
  t.lat_fams <-
    Option.map
      (fun m ->
        ( Metrics.hist_family m ~name:"cmb.rpc.latency",
          Array.map (fun n -> Metrics.hist_family m ~name:n) depth_latency_names ))
      m;
  Net.set_metrics t.rpc_net ~label:"net.rpc" m;
  Net.set_metrics t.event_net ~label:"net.event" m;
  Net.set_metrics t.ring_net ~label:"net.ring" m

let metrics t = t.metrics

let trace t ~name ?rank ?ctx ?fields () =
  match t.tracer with
  | Some tr -> Tracer.emit tr ~cat:"cmb" ~name ?rank ?ctx ?fields ()
  | None -> ()

(* A request entering the CMB starts a fresh root span unless the caller
   (a module forwarding work it received) supplies the causal parent.
   Without a tracer this is [None] end to end: no ids are allocated and
   messages carry no context. *)
let request_ctx t supplied =
  match t.tracer with
  | None -> None
  | Some tr ->
    Some (match supplied with Some c -> c | None -> Tracer.root_ctx tr)

let engine t = t.eng
let size t = t.n
let fanout t = t.k
let broker t r = t.brokers.(r)
let rank b = b.b_rank
let session_of b = b.b_session
let b_engine b = b.b_session.eng
let b_size b = b.b_session.n

let tree_parent b = b.b_session.parent_of.(b.b_rank)
let tree_children b = b.b_session.children_of.(b.b_rank)

let find_module b name = Hashtbl.find_opt b.mod_index name

(* Event dispatch iterates [b.modules] (load order matters); the index
   only serves name lookups, so both structures must stay in sync. *)
let install_module b m =
  b.modules <- b.modules @ [ m ];
  Hashtbl.replace b.mod_index m.mod_name m

let last_event_seq b = b.last_seq

let is_down t r = t.down.(r)

let alive_ranks t =
  if t.alive_cache_epoch <> t.topo_epoch then begin
    let acc = ref [] in
    for r = t.n - 1 downto 0 do
      if not t.down.(r) then acc := r :: !acc
    done;
    t.alive_cache <- !acc;
    t.alive_cache_epoch <- t.topo_epoch
  end;
  t.alive_cache

let root_rank t = t.root_rank
let topology_epoch t = t.topo_epoch

let add_liveness_watch t f = t.on_liveness <- t.on_liveness @ [ f ]

(* Effective topology: the overlay re-roots at the lowest live rank, and
   each other live rank's parent is its nearest live ancestor in the
   static k-ary tree. A live rank whose whole static ancestor chain is
   dead (the root's death orphans its other subtrees) attaches directly
   to the overlay root, keeping the session a single connected tree. In
   heap numbering ancestors are always lower-ranked, so the lowest live
   rank has no live ancestor and attachment stays acyclic. *)
let heal t =
  Array.fill t.children_of 0 t.n [];
  let root = ref (-1) in
  (try
     for r = 0 to t.n - 1 do
       if not t.down.(r) then begin
         root := r;
         raise Exit
       end
     done
   with Exit -> ());
  t.root_rank <- !root;
  for r = 0 to t.n - 1 do
    if t.down.(r) || r = !root then t.parent_of.(r) <- None
    else begin
      let rec find_live_ancestor rank =
        match t.static_parent.(rank) with
        | None -> None
        | Some p -> if t.down.(p) then find_live_ancestor p else Some p
      in
      t.parent_of.(r) <-
        (match find_live_ancestor r with
        | Some p -> Some p
        | None -> Some !root)
    end
  done;
  for r = t.n - 1 downto 0 do
    if not t.down.(r) then
      match t.parent_of.(r) with
      | Some p -> t.children_of.(p) <- r :: t.children_of.(p)
      | None -> ()
  done

(* --- Sending primitives ------------------------------------------- *)

let send_on net ~src ~dst msg = Net.send net ~src ~dst ~size:(Message.size msg) msg

(* --- Event serialization (for resync payloads) --------------------- *)

let event_to_json (m : Message.t) =
  Json.obj
    [
      ("topic", Json.string m.Message.topic);
      ("origin", Json.int m.Message.origin);
      ("seq", Json.int m.Message.seq);
      ("payload", m.Message.payload);
    ]

let event_of_json j =
  let open Message in
  {
    kind = Event;
    topic = Json.to_string_v (Json.member "topic" j);
    nonce = 0;
    origin = Json.to_int (Json.member "origin" j);
    dst = None;
    seq = Json.to_int (Json.member "seq" j);
    route = [];
    error = None;
    payload = Json.member "payload" j;
    trace = None;
  }

(* --- Ring hop selection ---------------------------------------------- *)

let ring_next_live t from =
  let rec go r steps =
    if steps > t.n then None
    else
      let nxt = Treemath.ring_next ~size:t.n r in
      if t.down.(nxt) then go nxt (steps + 1) else Some nxt
  in
  go from 0

(* --- RPC deadlines and retransmission --------------------------------- *)

let fresh_nonce b =
  (* Nonces are unique per originating broker; responses are matched in
     the origin broker's pending table only. Retransmits reuse the nonce
     of the original send, so a late response to any attempt completes
     the RPC and later duplicates are ignored. *)
  Idgen.next_int b.nonces + 1

let cancel_deadline pr =
  match pr.pr_timer with
  | Some h ->
    Engine.cancel h;
    pr.pr_timer <- None
  | None -> ()

(* Deterministic, seeded retransmit jitter: a pure hash of
   (rank, nonce, attempt) spreads simultaneous retries over
   [backoff * (1 - jitter), backoff] without a shared RNG, so the draw
   cannot depend on event ordering and runs stay bit-for-bit
   reproducible. Pure exponential backoff would retransmit a
   simultaneous-entry fence in lockstep — the classic synchronized-retry
   stampede. *)
let jitter_factor t ~rank ~nonce ~sends =
  let j = t.rpc.rpc_jitter in
  if j <= 0.0 then 1.0
  else begin
    let seed =
      0x6a746a72 lxor (rank * 0x9e3779b1) lxor (nonce * 0x85ebca77) lxor (sends * 0xc2b2ae3d)
    in
    1.0 -. (j *. Rng.float (Rng.create seed) 1.0)
  end

let backoff_delay t ~rank ~nonce ~sends ~floor =
  let backoff =
    Float.min t.rpc.rpc_backoff_cap
      (Float.max floor (t.rpc.rpc_backoff_base *. (2.0 ** float_of_int (sends - 1))))
  in
  backoff *. jitter_factor t ~rank ~nonce ~sends

let rec arm_deadline b nonce pr =
  if pr.pr_timeout < infinity then
    pr.pr_timer <-
      Some
        (Engine.schedule b.b_session.eng ~delay:pr.pr_timeout (fun () ->
             expire_pending b nonce pr))

and retry_pending b nonce pr ~delay =
  pr.pr_timer <-
    Some
      (Engine.schedule b.b_session.eng ~delay (fun () ->
           if Hashtbl.mem b.pending nonce then begin
             let t = b.b_session in
             pr.pr_sends <- pr.pr_sends + 1;
             t.rpc_retries <- t.rpc_retries + 1;
             trace t ~name:"rpc.retry" ~rank:b.b_rank ?ctx:pr.pr_ctx
               ~fields:[ ("attempt", Json.int pr.pr_sends) ]
               ();
             arm_deadline b nonce pr;
             match pr.pr_resend with Some resend -> resend () | None -> ()
           end))

and expire_pending b nonce pr =
  if Hashtbl.mem b.pending nonce then begin
    pr.pr_timer <- None;
    let t = b.b_session in
    match pr.pr_resend with
    | Some _ when pr.pr_sends < pr.pr_attempts ->
      (* Exponential backoff, then retransmit through whatever topology
         is in effect by then (a healed overlay routes via the new
         parent). *)
      retry_pending b nonce pr
        ~delay:(backoff_delay t ~rank:b.b_rank ~nonce ~sends:pr.pr_sends ~floor:0.0)
    | _ ->
      Hashtbl.remove b.pending nonce;
      t.rpc_timeouts <- t.rpc_timeouts + 1;
      trace t ~name:"rpc.timeout" ~rank:b.b_rank ?ctx:pr.pr_ctx ();
      pr.pr_reply (Error "timeout")
  end

let complete_pending b nonce r =
  match Hashtbl.find_opt b.pending nonce with
  | None -> ()
  | Some pr -> (
    let t = b.b_session in
    let busy = match r with Error e -> busy_retry_after e | Ok _ -> None in
    match busy with
    | Some after when pr.pr_resend <> None && pr.pr_sends < pr.pr_attempts ->
      (* The server shed us under load: honor the retry_after hint
         (floored into the exponential-backoff schedule, capped and
         jittered) instead of failing — clients degrade to higher
         latency, not errors. *)
      cancel_deadline pr;
      t.rpc_busy_retries <- t.rpc_busy_retries + 1;
      trace t ~name:"rpc.busy" ~rank:b.b_rank ?ctx:pr.pr_ctx
        ~fields:[ ("retry_after", Json.float after) ]
        ();
      retry_pending b nonce pr
        ~delay:(backoff_delay t ~rank:b.b_rank ~nonce ~sends:pr.pr_sends ~floor:after)
    | _ ->
      Hashtbl.remove b.pending nonce;
      cancel_deadline pr;
      pr.pr_reply r)

let register_pending b ~nonce ~timeout ~attempts ?resend ?ctx reply =
  let pr =
    {
      pr_reply = reply;
      pr_timer = None;
      pr_sends = 1;
      pr_timeout = timeout;
      pr_attempts = attempts;
      pr_resend = resend;
      pr_ctx = ctx;
    }
  in
  Hashtbl.replace b.pending nonce pr;
  arm_deadline b nonce pr

let rpc_opts t ?timeout ?attempts ~idempotent () =
  let timeout = match timeout with Some x -> x | None -> t.rpc.rpc_timeout in
  let attempts =
    match attempts with
    | Some a when a < 1 -> invalid_arg "Session: rpc attempts must be >= 1"
    | Some a -> a
    | None -> if idempotent then t.rpc.rpc_attempts else 1
  in
  (timeout, attempts)

(* --- Request routing ------------------------------------------------ *)

let rec route_request b (msg : Message.t) =
  match find_module b (Topic.service msg.Message.topic) with
  | Some m -> (
    match m.on_request msg with Consumed -> () | Pass -> forward_up b msg)
  | None -> forward_up b msg

and forward_up b msg =
  match tree_parent b with
  | Some p -> (
    let t = b.b_session in
    match t.flow with
    | None -> send_parent b p msg
    | Some fc ->
      (* Credit window toward the parent: each in-flight upstream
         request spends one credit, replenished when its response
         passes back down through this broker (see {!flow_release}).
         Exhausted credit defers into a bounded stash; a full stash
         sheds with a structured busy error that propagates pressure
         down the TBON instead of accumulating bytes at the root. *)
      expire_charges b fc;
      if Queue.length b.fc_charges < fc.flow_credits then begin
        Queue.add (Engine.now t.eng) b.fc_charges;
        send_parent b p msg
      end
      else if Queue.length b.fc_stash < fc.flow_stash then begin
        Queue.add msg b.fc_stash;
        t.flow_defers <- t.flow_defers + 1;
        let depth = Queue.length b.fc_stash in
        if depth > t.flow_stash_hwm then t.flow_stash_hwm <- depth;
        (match t.metrics with
        | None -> ()
        | Some m ->
          Metrics.incr m ~name:"cmb.flow.defer" ~rank:b.b_rank;
          Metrics.set_gauge m ~name:"cmb.flow.stash" ~rank:b.b_rank (float_of_int depth);
          Metrics.set_gauge m ~name:"cmb.flow.stash_hwm" ~rank:b.b_rank
            (float_of_int t.flow_stash_hwm));
        trace t ~name:"flow.defer" ~rank:b.b_rank ?ctx:msg.Message.trace
          ~fields:[ ("depth", Json.int depth) ]
          ();
        arm_flow_timer b fc
      end
      else begin
        t.flow_sheds <- t.flow_sheds + 1;
        (match t.metrics with
        | None -> ()
        | Some m -> Metrics.incr m ~name:"cmb.flow.shed" ~rank:b.b_rank);
        trace t ~name:"flow.shed" ~rank:b.b_rank ?ctx:msg.Message.trace ();
        deliver_response b
          (Message.error_response ~of_:msg (busy_error ~retry_after:fc.flow_timeout))
      end)
  | None ->
    (* At the root with no matching module: fail the RPC. *)
    deliver_response b
      (Message.error_response ~of_:msg
         (Printf.sprintf "unknown service %S" (Topic.service msg.Message.topic)))

and send_parent b p msg =
  trace b.b_session ~name:"hop.up" ~rank:b.b_rank ?ctx:msg.Message.trace
    ~fields:[ ("dst", Json.int p) ] ();
  send_on b.b_session.rpc_net ~src:b.b_rank ~dst:p (Message.push_hop msg b.b_rank)

(* Credits older than [flow_timeout] belong to requests whose response
   was lost (drops, failed parents): expire them so the window cannot
   leak shut. *)
and expire_charges b fc =
  let now = Engine.now b.b_session.eng in
  let rec go () =
    match Queue.peek_opt b.fc_charges with
    | Some t0 when now -. t0 > fc.flow_timeout ->
      ignore (Queue.take b.fc_charges : float);
      go ()
    | _ -> ()
  in
  go ()

and flow_drain b fc =
  expire_charges b fc;
  let rec go () =
    if Queue.length b.fc_charges < fc.flow_credits then
      match Queue.take_opt b.fc_stash with
      | None -> ()
      | Some msg ->
        (match tree_parent b with
        | Some p ->
          Queue.add (Engine.now b.b_session.eng) b.fc_charges;
          send_parent b p msg
        | None ->
          (* Healed into the root while stashed: dispatch locally. *)
          route_request b msg);
        go ()
  in
  go ();
  match b.b_session.metrics with
  | None -> ()
  | Some m ->
    Metrics.set_gauge m ~name:"cmb.flow.stash" ~rank:b.b_rank
      (float_of_int (Queue.length b.fc_stash))

(* A stash with no response traffic to drain it (everything upstream
   lost) still empties: a timer re-runs the drain after charge expiry. *)
and arm_flow_timer b fc =
  if not b.fc_timer then begin
    b.fc_timer <- true;
    ignore
      (Engine.schedule b.b_session.eng ~delay:(fc.flow_timeout /. 2.0) (fun () ->
           b.fc_timer <- false;
           flow_drain b fc;
           if not (Queue.is_empty b.fc_stash) then arm_flow_timer b fc)
        : Engine.handle)
  end

(* A response arriving over the rpc plane answers a request this broker
   previously forwarded up: replenish one credit and release any
   deferred sends. *)
and flow_release b =
  match b.b_session.flow with
  | None -> ()
  | Some fc ->
    ignore (Queue.take_opt b.fc_charges : float option);
    if not (Queue.is_empty b.fc_stash) then flow_drain b fc

and deliver_response b (resp : Message.t) =
  match Message.pop_hop resp with
  | Some (hop, resp') ->
    trace b.b_session ~name:"hop.down" ~rank:b.b_rank ?ctx:resp.Message.trace
      ~fields:[ ("dst", Json.int hop) ] ();
    send_on b.b_session.rpc_net ~src:b.b_rank ~dst:hop resp'
  | None ->
    if resp.Message.origin <> b.b_rank then
      (* No route back yet the origin is remote: the request arrived
         over the ring plane, so the response circulates forward around
         the ring to its origin. *)
      ring_forward b { resp with Message.dst = Some resp.Message.origin }
    else
      (* Route exhausted at the origin: complete the local RPC. A
         duplicate response (from a retransmitted request) finds no
         pending entry and is dropped here. *)
      complete_pending b resp.Message.nonce
        (match resp.Message.error with
        | Some e -> Error e
        | None -> Ok resp.Message.payload)

and ring_forward b msg =
  (* A ring message is only consumable at its destination: if that rank
     is down (it may have died while the message was mid-circulation),
     drop the message here — hop-by-hop forwarding skips dead ranks, so
     it would otherwise circle the live ring forever. The originator's
     RPC deadline recovers. *)
  match msg.Message.dst with
  | None -> ()
  | Some d when b.b_session.down.(d) -> ()
  | Some d -> (
    match b.b_session.rank_topo with
    | Direct ->
      (* One hop straight to the destination. *)
      send_on b.b_session.ring_net ~src:b.b_rank ~dst:d msg
    | Ring -> (
      match ring_next_live b.b_session b.b_rank with
      | Some nxt ->
        trace b.b_session ~name:"hop.ring" ~rank:b.b_rank ?ctx:msg.Message.trace
          ~fields:[ ("dst", Json.int nxt) ] ();
        send_on b.b_session.ring_net ~src:b.b_rank ~dst:nxt msg
      | None -> ()))

let respond b req payload = deliver_response b (Message.response ~of_:req payload)
let respond_error b req err = deliver_response b (Message.error_response ~of_:req err)

(* Wrap [reply] to record the RPC completion: an [rpc.done] event in
   the request's span and a latency histogram keyed by the origin's
   depth in the RPC tree (the paper's per-level latency view). The
   histogram families were resolved at [set_metrics]: this runs once
   per RPC, where a name lookup (let alone a sprintf) would rival the
   histogram update it labels. *)
let instrument_reply b ~topic ~ctx reply =
  let t = b.b_session in
  match (t.tracer, t.metrics) with
  | None, None -> reply
  | _ ->
    let t0 = Engine.now t.eng in
    fun r ->
      let dur = Engine.now t.eng -. t0 in
      (match t.lat_fams with
      | None -> ()
      | Some (overall, by_depth) ->
        Metrics.family_observe overall ~rank:b.b_rank dur;
        let d = Treemath.depth ~k:t.k b.b_rank in
        if d < Array.length by_depth then
          Metrics.family_observe by_depth.(d) ~rank:b.b_rank dur);
      trace t ~name:"rpc.done" ~rank:b.b_rank ?ctx
        ~fields:
          [
            ("topic", Json.string topic);
            ("dur", Json.float dur);
            ("ok", Json.bool (match r with Ok _ -> true | Error _ -> false));
          ]
        ();
      reply r

let request_up b ?timeout ?attempts ?(idempotent = false) ?trace_ctx ~topic payload ~reply =
  let t = b.b_session in
  let timeout, attempts = rpc_opts t ?timeout ?attempts ~idempotent () in
  let ctx = request_ctx t trace_ctx in
  let reply = instrument_reply b ~topic ~ctx reply in
  let nonce = fresh_nonce b in
  let msg = Message.request ~topic ~origin:b.b_rank ~nonce payload in
  let msg = match ctx with Some c -> Message.with_trace msg c | None -> msg in
  trace t ~name:"rpc.send" ~rank:b.b_rank ?ctx ~fields:[ ("topic", Json.string topic) ] ();
  let resend = if attempts > 1 then Some (fun () -> route_request b msg) else None in
  register_pending b ~nonce ~timeout ~attempts ?resend ?ctx reply;
  route_request b msg

let request_from_module b ?timeout ?attempts ?(idempotent = false) ?trace_ctx ~topic payload
    ~reply =
  let t = b.b_session in
  let timeout, attempts = rpc_opts t ?timeout ?attempts ~idempotent () in
  let ctx = request_ctx t trace_ctx in
  let reply = instrument_reply b ~topic ~ctx reply in
  let nonce = fresh_nonce b in
  let msg = Message.request ~topic ~origin:b.b_rank ~nonce payload in
  let msg = match ctx with Some c -> Message.with_trace msg c | None -> msg in
  trace t ~name:"rpc.send" ~rank:b.b_rank ?ctx ~fields:[ ("topic", Json.string topic) ] ();
  let resend = if attempts > 1 then Some (fun () -> forward_up b msg) else None in
  register_pending b ~nonce ~timeout ~attempts ?resend ?ctx reply;
  forward_up b msg

(* --- Ring plane ------------------------------------------------------ *)

let rec rpc_rank b ?timeout ?attempts ?(idempotent = false) ?trace_ctx ?route ~dst ~topic
    payload ~reply =
  let t = b.b_session in
  let timeout, attempts = rpc_opts t ?timeout ?attempts ~idempotent () in
  let ctx = request_ctx t trace_ctx in
  let reply = instrument_reply b ~topic ~ctx reply in
  let nonce = fresh_nonce b in
  trace t ~name:"rpc.send" ~rank:b.b_rank ?ctx ~fields:[ ("topic", Json.string topic) ] ();
  (* Each (re)transmission resolves its destination afresh: with [route]
     a retransmit follows the *current* topology (e.g. a volume tree
     healed around a dead parent, or a freshly elected master) instead
     of hammering the original, possibly dead, rank. *)
  let transmit () =
    let dst = match route with Some f -> f () | None -> dst in
    let msg = Message.request ~dst ~topic ~origin:b.b_rank ~nonce payload in
    let msg = match ctx with Some c -> Message.with_trace msg c | None -> msg in
    if dst = b.b_rank then
      (* Loop-back: deliver to the local module directly. *)
      ignore
        (Engine.schedule b.b_session.eng
           ~delay:(Net.config b.b_session.ring_net).Net.local_delivery (fun () ->
             handle_ring_arrival b msg)
          : Engine.handle)
    else ring_forward b msg
  in
  let resend = if attempts > 1 then Some transmit else None in
  register_pending b ~nonce ~timeout ~attempts ?resend ?ctx reply;
  transmit ()

and handle_ring_arrival b (msg : Message.t) =
  match msg.Message.kind with
  | Message.Request ->
    if msg.Message.dst = Some b.b_rank then begin
      match find_module b (Topic.service msg.Message.topic) with
      | Some m -> (
        match m.on_request msg with
        | Consumed -> ()
        | Pass -> deliver_response b (Message.error_response ~of_:msg "not handled"))
      | None ->
        deliver_response b
          (Message.error_response ~of_:msg
             (Printf.sprintf "no module %S at rank %d"
                (Topic.service msg.Message.topic)
                b.b_rank))
    end
    else ring_forward b msg
  | Message.Response ->
    if msg.Message.dst = Some b.b_rank then
      deliver_response b { msg with Message.route = [] }
    else ring_forward b msg
  | Message.Event -> ()

(* --- Event plane ----------------------------------------------------- *)

let dispatch_event_local b (ev : Message.t) =
  List.iter (fun m -> m.on_event ev) b.modules;
  List.iter
    (fun (prefix, cb) -> if Topic.prefixed ~prefix ev.Message.topic then cb ev)
    b.subs

let rec deliver_event b (ev : Message.t) =
  let seq = ev.Message.seq in
  if seq > b.last_seq then begin
    if seq = b.last_seq + 1 then begin
      b.last_seq <- seq;
      Ring_buffer.push b.event_log ev;
      trace b.b_session ~name:"event.deliver" ~rank:b.b_rank ?ctx:ev.Message.trace
        ~fields:[ ("topic", Json.string ev.Message.topic); ("seq", Json.int seq) ]
        ();
      dispatch_event_local b ev;
      List.iter
        (fun c -> send_on b.b_session.event_net ~src:b.b_rank ~dst:c ev)
        (tree_children b);
      drain_stash b
    end
    else begin
      Hashtbl.replace b.stashed seq ev;
      request_resync b
    end
  end

and drain_stash b =
  match Hashtbl.find_opt b.stashed (b.last_seq + 1) with
  | Some ev ->
    Hashtbl.remove b.stashed (b.last_seq + 1);
    deliver_event b ev
  | None -> ()

and request_resync b =
  if not b.resync_in_flight then begin
    b.resync_in_flight <- true;
    (* Resync is a pure read of the provider's event log: safe to
       retransmit, and a timeout clears [resync_in_flight] so a later
       gap can trigger a fresh attempt. *)
    let before = b.last_seq in
    let on_reply r =
      b.resync_in_flight <- false;
      match r with
      | Ok payload ->
        let evs = List.map event_of_json (Json.to_list (Json.member "events" payload)) in
        List.iter (deliver_event b) evs;
        drain_stash b;
        if Hashtbl.length b.stashed > 0 then
          if b.last_seq > before then
            (* Progress was made; keep asking for the remaining gap. *)
            request_resync b
          else begin
            (* The provider's log has been trimmed past our cursor, so
               the gap can never be filled. Accept the loss and
               fast-forward to the oldest stashed event; modules
               tolerate gaps (version/epoch-guarded state). *)
            let oldest = Hashtbl.fold (fun s _ acc -> min s acc) b.stashed max_int in
            trace b.b_session ~name:"event.gap" ~rank:b.b_rank
              ~fields:[ ("from", Json.int (b.last_seq + 1)); ("upto", Json.int oldest) ]
              ();
            b.last_seq <- oldest - 1;
            drain_stash b
          end
      | Error _ -> ()
    in
    let payload = Json.obj [ ("from", Json.int (b.last_seq + 1)) ] in
    match tree_parent b with
    | Some _ -> request_from_module b ~idempotent:true ~topic:"cmb.resync" payload ~reply:on_reply
    | None -> (
      (* The session root itself can be behind: a revived broker
         re-rooted here missed events its children kept delivering while
         it was dark. Pull the backlog from the first live child over
         the rank plane. *)
      match tree_children b with
      | c :: _ -> rpc_rank b ~idempotent:true ~dst:c ~topic:"cmb.resync" payload ~reply:on_reply
      | [] -> b.resync_in_flight <- false)
  end

let publish_msg b (ev : Message.t) =
  match tree_parent b with
  | Some p -> send_on b.b_session.event_net ~src:b.b_rank ~dst:p ev
  | None ->
    (* This broker is the session root: stamp and multicast. *)
    let t = b.b_session in
    t.next_seq <- t.next_seq + 1;
    deliver_event b { ev with Message.seq = t.next_seq }

let publish b ?trace_ctx ~topic payload =
  trace b.b_session ~name:"event.publish" ~rank:b.b_rank ?ctx:trace_ctx
    ~fields:[ ("topic", Json.string topic) ]
    ();
  let ev = Message.event ~topic ~origin:b.b_rank payload in
  let ev = match trace_ctx with Some c -> Message.with_trace ev c | None -> ev in
  publish_msg b ev

let subscribe b ~prefix cb = b.subs <- b.subs @ [ (prefix, cb) ]

(* --- Plane dispatch --------------------------------------------------- *)

let on_rpc_plane b ~src:_ (msg : Message.t) =
  match msg.Message.kind with
  | Message.Request -> route_request b msg
  | Message.Response ->
    flow_release b;
    deliver_response b msg
  | Message.Event -> ()

let on_event_plane b ~src:_ (msg : Message.t) =
  match msg.Message.kind with
  | Message.Event ->
    if msg.Message.seq = 0 then publish_msg b msg (* still ascending *)
    else deliver_event b msg
  | Message.Request | Message.Response -> ()

let on_ring_plane b ~src:_ msg = handle_ring_arrival b msg

(* --- Built-in cmb module ---------------------------------------------- *)

let cmb_module b =
  let handle (msg : Message.t) =
    match Topic.method_ msg.Message.topic with
    | "ping" ->
      respond b msg (Json.obj [ ("rank", Json.int b.b_rank) ]);
      Consumed
    | "resync" ->
      (* Serve from our event log. Requests for our own resync must come
         from children, never loop locally (they use request_from_module). *)
      let from = Json.to_int (Json.member "from" msg.Message.payload) in
      let evs =
        List.filter
          (fun (e : Message.t) -> e.Message.seq >= from)
          (Ring_buffer.to_list b.event_log)
      in
      respond b msg (Json.obj [ ("events", Json.list (List.map event_to_json evs)) ]);
      Consumed
    | "topo" ->
      respond b msg
        (Json.obj
           [
             ("rank", Json.int b.b_rank);
             ("size", Json.int b.b_session.n);
             ("fanout", Json.int b.b_session.k);
             ( "parent",
               match tree_parent b with Some p -> Json.int p | None -> Json.null );
             ("children", Json.list (List.map Json.int (tree_children b)));
           ]);
      Consumed
    | _ -> Pass
  in
  { mod_name = "cmb"; on_request = handle; on_event = (fun _ -> ()) }

(* --- Session construction --------------------------------------------- *)

let create eng ?net_config ?(fanout = 2) ?(rank_topology = Ring)
    ?(rpc_config = default_rpc_config) ?flow ~size () =
  (match flow with
  | Some fc when fc.flow_credits < 1 || fc.flow_stash < 1 || fc.flow_timeout <= 0.0 ->
    invalid_arg "Session.create: flow_config bounds must be positive"
  | _ -> ());
  if size <= 0 then invalid_arg "Session.create: size must be positive";
  if fanout < 2 then invalid_arg "Session.create: fanout must be >= 2";
  let mk_net () =
    match net_config with
    | Some config -> Net.create eng ~config ~nodes:size ()
    | None -> Net.create eng ~nodes:size ()
  in
  let t =
    {
      eng;
      n = size;
      k = fanout;
      rank_topo = rank_topology;
      rpc_net = mk_net ();
      event_net = mk_net ();
      ring_net = mk_net ();
      brokers = [||];
      down = Array.make size false;
      parent_of = Array.make size None;
      children_of = Array.make size [];
      next_seq = 0;
      tracer = None;
      metrics = None;
      lat_fams = None;
      parent = None;
      children = [];
      destroyed = false;
      rpc = rpc_config;
      flow;
      rpc_timeouts = 0;
      rpc_retries = 0;
      rpc_busy_retries = 0;
      flow_defers = 0;
      flow_sheds = 0;
      flow_stash_hwm = 0;
      root_rank = 0;
      topo_epoch = 0;
      on_liveness = [];
      static_parent = Array.init size (fun r -> Treemath.parent ~k:fanout r);
      alive_cache = [];
      alive_cache_epoch = -1;
    }
  in
  t.brokers <-
    Array.init size (fun r ->
        {
          b_rank = r;
          b_session = t;
          modules = [];
          mod_index = Hashtbl.create 8;
          pending = Hashtbl.create 16;
          subs = [];
          last_seq = 0;
          event_log = Ring_buffer.create ~capacity:4096;
          stashed = Hashtbl.create 8;
          resync_in_flight = false;
          nonces = Idgen.create ();
          fc_charges = Queue.create ();
          fc_stash = Queue.create ();
          fc_timer = false;
        });
  heal t;
  Array.iteri
    (fun r b ->
      Net.set_handler t.rpc_net r (on_rpc_plane b);
      Net.set_handler t.event_net r (on_event_plane b);
      Net.set_handler t.ring_net r (on_ring_plane b);
      install_module b (cmb_module b))
    t.brokers;
  t

let load_module t ?ranks factory =
  let targets = match ranks with Some rs -> rs | None -> List.init t.n Fun.id in
  List.iter
    (fun r ->
      let b = t.brokers.(r) in
      let m = factory b in
      if find_module b m.mod_name <> None then
        invalid_arg (Printf.sprintf "Session.load_module: %S already loaded at rank %d" m.mod_name r);
      install_module b m)
    targets

(* --- Session hierarchy --------------------------------------------------- *)

let parent_session t = match t.parent with Some (p, _) -> Some p | None -> None

let child_sessions t = List.rev t.children

let rec session_depth t =
  match t.parent with Some (p, _) -> 1 + session_depth p | None -> 0

let hosted_on t r =
  if r < 0 || r >= t.n then invalid_arg "Session.hosted_on: rank out of range";
  match t.parent with Some (_, hosts) -> List.nth hosts r | None -> r

let create_child parent ?fanout ?rank_topology ~nodes () =
  if parent.destroyed then invalid_arg "Session.create_child: parent destroyed";
  if nodes = [] then invalid_arg "Session.create_child: empty node list";
  if List.length (List.sort_uniq compare nodes) <> List.length nodes then
    invalid_arg "Session.create_child: duplicate ranks";
  List.iter
    (fun r ->
      if r < 0 || r >= parent.n then
        invalid_arg (Printf.sprintf "Session.create_child: rank %d out of range" r);
      if parent.down.(r) then
        invalid_arg (Printf.sprintf "Session.create_child: parent rank %d is down" r))
    nodes;
  let fanout = match fanout with Some k -> k | None -> 2 in
  let rank_topology = match rank_topology with Some rt -> rt | None -> Ring in
  let child =
    create parent.eng ~fanout ~rank_topology ~rpc_config:parent.rpc ?flow:parent.flow
      ~size:(List.length nodes) ()
  in
  child.parent <- Some (parent, nodes);
  parent.children <- child :: parent.children;
  child

let rec destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    List.iter destroy t.children;
    t.children <- [];
    for r = 0 to t.n - 1 do
      crash_rank t r
    done;
    match t.parent with
    | Some (p, _) ->
      p.children <- List.filter (fun c -> c != t) p.children;
      t.parent <- None
    | None -> ()
  end

and crash_rank t r =
  Net.fail_node t.rpc_net r;
  Net.fail_node t.event_net r;
  Net.fail_node t.ring_net r

let is_destroyed t = t.destroyed

(* --- Failure injection ------------------------------------------------- *)

let crash t r = crash_rank t r

let mark_down t r =
  if not t.down.(r) then begin
    trace t ~name:"mark_down" ~rank:r ();
    crash t r;
    t.down.(r) <- true;
    t.topo_epoch <- t.topo_epoch + 1;
    let old_parents = Array.copy t.parent_of in
    heal t;
    (* Brokers adopted by a new parent may have missed events; resync. *)
    Array.iteri
      (fun rr b ->
        if (not t.down.(rr)) && old_parents.(rr) <> t.parent_of.(rr) && t.parent_of.(rr) <> None
        then request_resync b)
      t.brokers;
    List.iter (fun f -> f r false) t.on_liveness
  end

let mark_up t r =
  if t.down.(r) && not t.destroyed then begin
    trace t ~name:"mark_up" ~rank:r ();
    Net.revive_node t.rpc_net r;
    Net.revive_node t.event_net r;
    Net.revive_node t.ring_net r;
    t.down.(r) <- false;
    t.topo_epoch <- t.topo_epoch + 1;
    let old_parents = Array.copy t.parent_of in
    heal t;
    (* The revived broker rejoins with a stale event cursor: drop any
       resync latched before it went dark and pull the backlog through
       the healed topology (the overlay root pulls from a child). *)
    let b = t.brokers.(r) in
    b.resync_in_flight <- false;
    request_resync b;
    Array.iteri
      (fun rr br ->
        if rr <> r
           && (not t.down.(rr))
           && old_parents.(rr) <> t.parent_of.(rr)
           && t.parent_of.(rr) <> None
        then request_resync br)
      t.brokers;
    List.iter (fun f -> f r true) t.on_liveness
  end

(* --- Accounting --------------------------------------------------------- *)

let rpc_timeouts t = t.rpc_timeouts
let rpc_retries t = t.rpc_retries
let rpc_busy_retries t = t.rpc_busy_retries
let pending_rpc_count t r = Hashtbl.length t.brokers.(r).pending
let flow_defers t = t.flow_defers
let flow_sheds t = t.flow_sheds
let flow_stash_hwm t = t.flow_stash_hwm
let flow_stash_depth t r = Queue.length t.brokers.(r).fc_stash
let flow_inflight t r = Queue.length t.brokers.(r).fc_charges

let rpc_net t = t.rpc_net
let event_net t = t.event_net
let ring_net t = t.ring_net

let rpc_net_stats t = Net.stats t.rpc_net
let event_net_stats t = Net.stats t.event_net
let ring_net_stats t = Net.stats t.ring_net

let root_rpc_ingress_bytes t =
  let total = ref 0 in
  for src = 1 to t.n - 1 do
    total := !total + Net.link_bytes t.rpc_net ~src ~dst:0
  done;
  !total
