(** Binary min-heap with stable ordering.

    Elements inserted with equal priority are popped in insertion order,
    which makes simulations built on the heap fully deterministic. *)

type 'a t
(** Mutable heap of elements of type ['a], prioritized by a float key. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. Smaller priorities
    pop first; ties pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum element, or [None] if empty. *)

val peek : 'a t -> (float * 'a) option
(** [peek h] returns the minimum element without removing it. *)

val clear : 'a t -> unit
(** [clear h] removes all elements. *)

val pop_exn : 'a t -> float * 'a
(** [pop_exn h] is [pop h] but raises [Invalid_argument] on an empty heap. *)

val filter : 'a t -> ('a -> bool) -> unit
(** [filter h keep] removes every element for which [keep] is false, in
    O(n). Survivors keep their insertion rank, so their relative pop
    order — including ties — is exactly what it would have been. *)
