type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 16 None; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let entry_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> invalid_arg "Heap: internal hole"

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.size && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h prio value =
  if h.size = Array.length h.arr then grow h;
  h.arr.(h.size) <- Some { prio; seq = h.next_seq; value };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = get h 0 in
    Some (e.prio, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let e = get h 0 in
    h.size <- h.size - 1;
    h.arr.(0) <- h.arr.(h.size);
    h.arr.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    Some (e.prio, e.value)
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  Array.fill h.arr 0 h.size None;
  h.size <- 0

(* Survivors keep their original {prio; seq}, and pop order is a pure
   function of (prio, seq), so an O(n) compact-and-heapify cannot be
   observed through pop/peek. *)
let filter h keep =
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    let e = get h i in
    if keep e.value then begin
      h.arr.(!j) <- h.arr.(i);
      incr j
    end
  done;
  Array.fill h.arr !j (h.size - !j) None;
  h.size <- !j;
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done
