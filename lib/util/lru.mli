(** LRU cache keyed by strings.

    Used by the KVS slave object caches: entries unused for a while are
    expired to bound memory, as in the paper's prototype. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty cache holding at most [capacity]
    entries; inserting beyond that evicts the least recently used one.
    Raises [Invalid_argument] if [capacity <= 0]. *)

val length : 'a t -> int

val mem : 'a t -> string -> bool
(** [mem c k] tests presence without touching recency. *)

val find : 'a t -> string -> 'a option
(** [find c k] returns the value and marks [k] most recently used. *)

val put : 'a t -> string -> 'a -> unit
(** [put c k v] inserts or replaces, marking [k] most recently used and
    evicting the LRU entry if over capacity. *)

val remove : 'a t -> string -> unit

val set_on_evict : 'a t -> (string -> 'a -> unit) -> unit
(** [set_on_evict c f] registers [f] to run whenever an entry leaves the
    cache via capacity eviction or {!remove} — the hook byte-accounting
    callers need to keep their totals honest. Not fired by {!clear}
    (bulk invalidation resets accounting wholesale). *)

val evictions : 'a t -> int
(** [evictions c] counts entries evicted by capacity pressure so far. *)

val clear : 'a t -> unit
(** Empties the cache without firing the eviction hook. *)

val iter : (string -> 'a -> unit) -> 'a t -> unit
(** [iter f c] applies [f] to every binding, most recent first. *)
