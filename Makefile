.PHONY: all build test fmt check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is best-effort: the check must stay runnable on boxes
# without ocamlformat (the build container does not ship it).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not found: skipping fmt"; \
	fi

# The pre-merge gate: format (when available), build with warnings
# promoted to errors under lib/ (see lib/dune), and run every test.
check: fmt build test

clean:
	dune clean
