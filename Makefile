.PHONY: all build test fmt chaos overload shard ckpt sched telem elastic check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting is best-effort: the check must stay runnable on boxes
# without ocamlformat (the build container does not ship it).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not found: skipping fmt"; \
	fi

# Chaos sweep: seeded randomized fault schedules (kills and revives,
# including the KVS master mid-commit) with every consistency guarantee
# asserted per run. The alcotest suite covers 24 seeds; the bench sweep
# adds 10 more and prints per-seed fault counters.
chaos:
	dune exec test/test_chaos.exe -- -q
	dune exec bench/main.exe -- chaos

# Overload soak: open-loop producers drive the KVS write path past the
# master's capacity with bounded queues, TBON credits and admission
# control engaged; every run asserts bounded occupancy, zero acked-write
# loss, monotonic reads and eventual drain. The alcotest suite covers
# 8 seeds; the bench sweep adds the goodput-vs-offered-rate table
# (BENCH_OVERLOAD.json).
overload:
	dune exec test/test_overload.exe -- -q
	dune exec bench/main.exe -- overload

# Sharded-KVS sweep: 16 seeded cross-shard fence chaos schedules (a
# shard master killed mid-fence; zero lost acked writes, monotonic
# reads, fence atomicity, same-seed determinism) plus the
# goodput-vs-shards soak at 2x one master's capacity
# (BENCH_SHARD.json — the distributed-master scaling claim).
shard:
	dune exec test/test_shard.exe -- -q
	dune exec bench/main.exe -- shard

# Checkpoint/requeue sweep: 16 seeded kill schedules (worker mid-job,
# KVS master mid-snapshot, worker between a committed checkpoint and
# the next fence) with zero acked-write loss, restart-equivalent reads,
# monotonic recovery points and same-seed determinism asserted per run,
# plus the checkpoint-overhead and recovery-vs-depth bench
# (BENCH_CKPT.json).
ckpt:
	dune exec test/test_ckpt.exe -- -q
	dune exec bench/main.exe -- ckpt

# Scheduling ablation: the hierarchical instance tree vs the
# centralized baseline under a pilot-style many-task workload, with
# per-level scheduler-hop latency decomposed from the trace span chain
# (sched.submit -> sched.match -> wexec.start -> wexec.complete). The
# alcotest suite asserts exactly-once task accounting across an
# 8-seed leaf-kill sweep; the bench writes the throughput-vs-depth and
# throughput-vs-fanout tables (BENCH_SCHED.json).
sched:
	dune exec test/test_sched.exe -- -q
	dune exec bench/main.exe -- sched

# Live telemetry plane: the snapshot-algebra qcheck oracle, the
# Series/Detect/Flight unit suites, the four fault scenarios (straggler,
# kill, silent, growth — each asserting the plane catches its fault in
# time), the mon-module reduction suite, and the rollup-overhead bench
# (BENCH_TELEM.json — telem-off fingerprint stability and on/off
# events/s at two cadences).
telem:
	dune exec test/test_telem.exe -- -q
	dune exec test/test_mon.exe -- -q
	dune exec bench/main.exe -- telem

# Closed-loop elasticity: control-law qcheck properties (cooldown
# freeze, step/min/max bounds, no-flap over random input sequences),
# the drain-before-shrink and on_job_failed regression suites, and the
# three-regime bursty soak (unprotected collapses, protected plateaus,
# elastic recovers >= 1.5x protected goodput; zero acked-write loss
# across every rescale; same-seed determinism — BENCH_ELASTIC.json).
elastic:
	dune exec test/test_elastic.exe -- -q
	dune exec bench/main.exe -- elastic

# The pre-merge gate: format (when available), build with warnings
# promoted to errors under lib/ (see lib/dune), and run every test,
# then the chaos, overload, shard, ckpt, sched, telem and elastic
# sweeps.
check: fmt build test chaos overload shard ckpt sched telem elastic

clean:
	dune clean
