(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V) plus the ablations called out in DESIGN.md.

   Usage: main.exe [experiment...] where experiment is one of
     table1 fig2 fig3 fig4a fig4b sweep model ablate-sched ablate-fanout
     ablate-shards faults chaos micro overload shard ckpt sched observe telem
     elastic perf
   No arguments runs everything. Scales can be reduced with
   BENCH_FAST=1 for a quick pass. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Net = Flux_sim.Net
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Tree = Flux_kvs.Tree
module Sha1 = Flux_sha1.Sha1
module Kap = Flux_kap.Kap
module Rng = Flux_util.Rng
module Heap = Flux_util.Heap
module Center = Flux_core.Center
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Workload = Flux_core.Workload
module Central = Flux_baseline.Central
module Chaos = Flux_kap.Chaos
module Overload = Flux_kap.Overload
module Shard = Flux_kap.Shard
module Ckpt = Flux_kap.Ckpt
module Sched = Flux_kap.Sched
module KTelem = Flux_kap.Telem
module KElastic = Flux_kap.Elastic
module Export = Flux_trace.Export

let fast = Sys.getenv_opt "BENCH_FAST" <> None

(* Machine-readable one-line summary of a fault experiment: the
   lifecycle/accounting counters as JSON, for downstream scraping. *)
let fault_summary ~experiment sess ?(extra = []) () =
  let rpc = Session.rpc_net_stats sess in
  let ev = Session.event_net_stats sess in
  let ring = Session.ring_net_stats sess in
  Printf.printf "  summary %s\n%!"
    (Json.to_string
       (Json.obj
          ([
             ("experiment", Json.string experiment);
             ("rpc_timeouts", Json.int (Session.rpc_timeouts sess));
             ("rpc_retries", Json.int (Session.rpc_retries sess));
             ( "dead_letters",
               Json.int (rpc.Net.dead_letters + ev.Net.dead_letters + ring.Net.dead_letters) );
             ("dropped", Json.int (rpc.Net.dropped + ev.Net.dropped + ring.Net.dropped));
           ]
          @ extra)))

let node_scales = if fast then [ 16; 32; 64 ] else [ 64; 128; 256; 512 ]
let vsizes = if fast then [ 8; 512; 8192 ] else [ 8; 32; 128; 512; 2048; 8192; 32768 ]

let header title = Printf.printf "\n=== %s ===\n%!" title

(* --- Table I: the comms-module inventory, exercised ------------------- *)

let table1 () =
  header "Table I: prototyped comms modules (all loaded and exercised in one session)";
  let eng = Engine.create () in
  let sess = Session.create eng ~size:16 () in
  ignore (Kvs.load sess () : Kvs.t array);
  ignore (Flux_modules.Barrier.load sess () : Flux_modules.Barrier.t array);
  ignore (Flux_modules.Wexec.load sess () : Flux_modules.Wexec.t array);
  ignore (Flux_modules.Group.load sess () : Flux_modules.Group.t array);
  ignore (Flux_modules.Resvc.load sess () : Flux_modules.Resvc.t array);
  let logm = Flux_modules.Log_mod.load sess () in
  let hb = Flux_modules.Hb.load sess ~period:0.05 () in
  let live = Flux_modules.Live.load sess ~hb () in
  let mon = Flux_modules.Mon.load sess ~hb () in
  Flux_modules.Mon.register_sampler "load" (fun ~rank ~epoch:_ -> float_of_int rank);
  Flux_modules.Wexec.register_program "noop" (fun ctx -> ctx.Flux_modules.Wexec.px_printf "ok");
  let results : (string * string) list ref = ref [] in
  let ok name detail = results := (name, detail) :: !results in
  ignore
    (Proc.spawn eng (fun () ->
         let api = Api.connect sess ~rank:13 in
         let c = Client.connect sess ~rank:13 in
         (* hb + mon *)
         (match Flux_modules.Mon.activate api ~script:"load" with
         | Ok () -> ()
         | Error e -> failwith e);
         Proc.sleep 0.4;
         ok "hb"
           (Printf.sprintf "heartbeat epoch %d multicast to all 16 ranks"
              (Flux_modules.Hb.epoch hb.(13)));
         (match Flux_modules.Mon.latest_aggregate mon.(0) with
         | Some (_, s) ->
           ok "mon"
             (Printf.sprintf "sampled %d ranks, min/max/sum = %g/%g/%g -> stored in KVS"
                s.Flux_modules.Mon.s_count s.Flux_modules.Mon.s_min s.Flux_modules.Mon.s_max
                s.Flux_modules.Mon.s_sum)
         | None -> ok "mon" "NO AGGREGATE");
         (* log *)
         Flux_modules.Log_mod.log api ~level:Flux_modules.Log_mod.Warn "bench message";
         Flux_modules.Log_mod.log api ~level:Flux_modules.Log_mod.Warn "bench message";
         Proc.sleep 0.05;
         ok "log"
           (Printf.sprintf "root log holds %d reduced entries"
              (List.length (Flux_modules.Log_mod.root_log logm.(0))));
         (* group + barrier *)
         ignore (Flux_modules.Group.join api ~group:"g" ~tag:"bench" : (int, string) result);
         ok "group" "membership tracked at session root";
         ok "barrier" "collective barriers gate every KAP phase below";
         (* kvs *)
         (match Client.put c ~key:"bench.k" (Json.int 1) with Ok () -> () | Error e -> failwith e);
         (match Client.commit c with
         | Ok v -> ok "kvs" (Printf.sprintf "put+commit -> version %d, setroot multicast" v)
         | Error e -> failwith e);
         (* wexec *)
         (match Flux_modules.Wexec.run api ~jobid:"t1-job" ~prog:"noop" ~ranks:[ 1; 2; 3 ] () with
         | Ok comp ->
           ok "wexec"
             (Printf.sprintf "bulk-launched %d tasks, stdout captured in KVS"
                comp.Flux_modules.Wexec.c_ntasks)
         | Error e -> failwith e);
         (* resvc *)
         (match Flux_modules.Resvc.alloc api ~jobid:"t1-alloc" ~nnodes:4 with
         | Ok ranks ->
           ok "resvc"
             (Printf.sprintf "allocated nodes [%s] from the KVS-enumerated pool"
                (String.concat ";" (List.map string_of_int ranks)))
         | Error e -> failwith e);
         (* live: crash a leaf and wait for detection *)
         Session.crash sess 9;
         Proc.sleep 0.4;
         ok "live"
           (Printf.sprintf "rank 9 declared dead by its parent after missed hellos (%s)"
              (if Session.is_down sess 9 then "overlays rewired" else "NOT DETECTED"));
         Flux_modules.Hb.stop hb)
      : Proc.pid);
  Engine.run eng;
  ignore live;
  List.iter (fun (m, d) -> Printf.printf "  %-8s %s\n" m d) (List.rev !results)

(* --- Figure 2: producer (kvs_put) max latency --------------------------- *)

let fig2 () =
  header "Figure 2: producer-phase max latency (s) vs producers, by value size";
  Printf.printf "%-10s %-8s" "producers" "nodes";
  List.iter (fun v -> Printf.printf " vsize-%-8d" v) vsizes;
  print_newline ();
  List.iter
    (fun nodes ->
      let cfg = Kap.fully_populated ~nodes in
      Printf.printf "%-10d %-8d" (nodes * 16) nodes;
      List.iter
        (fun vsize ->
          let r = Kap.run { cfg with Kap.value_size = vsize } in
          Printf.printf " %-14.6f" r.Kap.r_producer.Kap.ph_max)
        vsizes;
      Printf.printf "\n%!")
    node_scales

(* --- Figure 3: fence max latency, unique vs redundant -------------------- *)

let fig3 () =
  header "Figure 3: synchronization (kvs_fence) max latency (s) vs producers";
  List.iter
    (fun kind ->
      let label, prefix =
        match kind with
        | Kap.Unique -> ("unique values", "vsize-")
        | Kap.Redundant -> ("redundant values", "red-vs-")
      in
      Printf.printf "-- %s --\n" label;
      Printf.printf "%-10s %-8s" "producers" "nodes";
      List.iter (fun v -> Printf.printf " %s%-8d" prefix v) vsizes;
      print_newline ();
      List.iter
        (fun nodes ->
          let cfg = Kap.fully_populated ~nodes in
          Printf.printf "%-10d %-8d" (nodes * 16) nodes;
          List.iter
            (fun vsize ->
              let r = Kap.run { cfg with Kap.value_size = vsize; value_kind = kind } in
              Printf.printf " %-14.6f" r.Kap.r_sync.Kap.ph_max)
            vsizes;
          Printf.printf "\n%!")
        node_scales)
    [ Kap.Unique; Kap.Redundant ]

(* --- Figure 4: consumer (kvs_get) max latency ------------------------------ *)

let fig4 layout label =
  header label;
  let accesses = [ 1; 4; 16 ] in
  Printf.printf "%-10s %-8s" "consumers" "nodes";
  List.iter (fun a -> Printf.printf " access-%-7d" a) accesses;
  Printf.printf " loads\n";
  List.iter
    (fun nodes ->
      let cfg = Kap.fully_populated ~nodes in
      Printf.printf "%-10d %-8d" (nodes * 16) nodes;
      let loads = ref 0 in
      List.iter
        (fun ngets ->
          let r = Kap.run { cfg with Kap.ngets; dir_layout = layout; access_stride = 7 } in
          loads := r.Kap.r_loads_issued;
          Printf.printf " %-14.6f" r.Kap.r_consumer.Kap.ph_max)
        accesses;
      Printf.printf " %d\n%!" !loads)
    node_scales

let fig4a () =
  fig4 Kap.Single_dir
    "Figure 4a: consumer max latency (s), all objects in a single KVS directory"

let fig4b () =
  fig4 (Kap.Multi_dir 128)
    "Figure 4b: consumer max latency (s), directories limited to 128 objects"

(* --- Asymmetric role sweeps (Section V.A method) -------------------------------- *)

let sweep () =
  header
    "Role sweep: varying producer or consumer count while the other stays at all cores";
  let nodes = if fast then 32 else 128 in
  let total = nodes * 16 in
  let fractions = [ 8; 4; 2; 1 ] in
  Printf.printf "(%d nodes, %d procs, vsize 512, unique values, single dir)\n" nodes total;
  Printf.printf "-- producers varied, consumers = %d --\n" total;
  Printf.printf "%-10s %-14s %-14s %-14s\n" "producers" "put_max(s)" "fence_max(s)" "get_max(s)";
  List.iter
    (fun frac ->
      let cfg =
        { (Kap.fully_populated ~nodes) with Kap.value_size = 512; producers = total / frac }
      in
      let r = Kap.run cfg in
      Printf.printf "%-10d %-14.6f %-14.6f %-14.6f\n%!" (total / frac)
        r.Kap.r_producer.Kap.ph_max r.Kap.r_sync.Kap.ph_max r.Kap.r_consumer.Kap.ph_max)
    fractions;
  Printf.printf "-- consumers varied, producers = %d --\n" total;
  Printf.printf "%-10s %-14s %-14s %-14s\n" "consumers" "put_max(s)" "fence_max(s)" "get_max(s)";
  List.iter
    (fun frac ->
      let cfg =
        { (Kap.fully_populated ~nodes) with Kap.value_size = 512; consumers = total / frac }
      in
      let r = Kap.run cfg in
      Printf.printf "%-10d %-14.6f %-14.6f %-14.6f\n%!" (total / frac)
        r.Kap.r_producer.Kap.ph_max r.Kap.r_sync.Kap.ph_max r.Kap.r_consumer.Kap.ph_max)
    fractions

(* --- The analytic model: log2(C) x T(G) -------------------------------------- *)

let model () =
  header "Consumer-latency model: measured vs log2(nodes) x T(G) (Section V.B)";
  Printf.printf "%-8s %-10s %-12s %-12s %-8s\n" "nodes" "G" "measured(s)" "model(s)" "ratio";
  let netc = Net.default_config in
  List.iter
    (fun nodes ->
      let cfg = Kap.fully_populated ~nodes in
      let r = Kap.run { cfg with Kap.ngets = 1 } in
      let g = r.Kap.r_total_objects in
      (* One 8-byte object inlined in a directory entry is ~26 bytes of
         serialized JSON; T(G) is one hop's transfer of the directory. *)
      let dir_bytes = float_of_int g *. 26.0 in
      let t_g =
        netc.Net.link_latency
        +. (dir_bytes /. netc.Net.bandwidth)
        +. netc.Net.host_cpu_per_msg
        +. (dir_bytes *. netc.Net.host_cpu_per_byte)
      in
      let depth = Float.log2 (float_of_int nodes) in
      let predicted = depth *. t_g in
      Printf.printf "%-8d %-10d %-12.6f %-12.6f %-8.2f\n%!" nodes g
        r.Kap.r_consumer.Kap.ph_max predicted
        (r.Kap.r_consumer.Kap.ph_max /. predicted))
    node_scales;
  Printf.printf
    "(ratios near 1: the replication wave down the slave-cache tree dominates, as the paper models)\n"

(* --- Ablation: hierarchical vs centralized scheduling ------------------------ *)

let ablate_sched () =
  header "Ablation: scheduler parallelism — centralized controller vs Flux hierarchy";
  let nodes = if fast then 32 else 64 in
  let n_jobs = if fast then 600 else 2000 in
  let mk_wl () =
    List.map
      (fun (s : Job.submission) ->
        match s.Job.sub_payload with
        | Job.Sleep d -> { s with Job.sub_payload = Job.Sleep (Float.max 0.05 (d /. 10.0)) }
        | _ -> s)
      (Workload.uq_ensemble (Rng.create 42) ~n:n_jobs ~mean_duration:2.0 ())
  in
  Printf.printf "%d one-node ensemble jobs on %d nodes (10 ms controller cost per start)\n"
    n_jobs nodes;
  Printf.printf "%-22s %-10s %-10s %-10s\n" "configuration" "makespan" "jobs/s" "mean_wait";
  let eng = Engine.create () in
  let central = Central.create eng ~nnodes:nodes () in
  Central.submit_plan central (mk_wl ());
  Engine.run eng;
  let cs = Central.stats central in
  Printf.printf "%-22s %-10.1f %-10.1f %-10.1f\n%!" "centralized (1 ctrl)" cs.Central.bs_makespan
    (float_of_int cs.Central.bs_completed /. cs.Central.bs_makespan)
    cs.Central.bs_mean_wait;
  List.iter
    (fun k ->
      let c = Center.create ~nodes () in
      let parts = Workload.split_round_robin k (mk_wl ()) in
      List.iter
        (fun workload ->
          ignore
            (Instance.submit c.Center.root
               ~spec:(Jobspec.make ~nnodes:(nodes / k) ())
               ~payload:(Job.Child { policy = "fcfs"; workload })
              : Job.t))
        parts;
      Center.run c;
      let fs = Instance.stats_recursive c.Center.root in
      Printf.printf "%-22s %-10.1f %-10.1f %-10.1f\n%!"
        (Printf.sprintf "flux 2-level (%d kids)" k)
        fs.Instance.st_makespan
        (float_of_int (fs.Instance.st_completed - k) /. fs.Instance.st_makespan)
        fs.Instance.st_mean_wait)
    [ 2; 4; 8; 16 ]

(* --- Ablation: RPC-tree fan-out ------------------------------------------------ *)

let ablate_fanout () =
  header "Ablation: CMB tree fan-out vs fence and get latency";
  let nodes = if fast then 64 else 256 in
  Printf.printf "(%d nodes, %d procs, vsize 512, unique values)\n" nodes (nodes * 16);
  Printf.printf "%-8s %-12s %-12s %-12s\n" "fanout" "fence(s)" "get(s)" "tree-depth";
  List.iter
    (fun k ->
      let cfg = { (Kap.fully_populated ~nodes) with Kap.value_size = 512; fanout = k } in
      let r = Kap.run cfg in
      Printf.printf "%-8d %-12.6f %-12.6f %-12d\n%!" k r.Kap.r_sync.Kap.ph_max
        r.Kap.r_consumer.Kap.ph_max
        (Flux_util.Treemath.tree_height ~k ~size:nodes))
    [ 2; 4; 8; 16 ]

(* --- Ablation: distributed KVS master (the paper's future work) ---------------- *)

let ablate_shards () =
  header "Future work implemented: distributing the KVS master (sharded volumes)";
  let nodes = if fast then 32 else 128 in
  let ppn = 16 in
  let nputs = 4 in
  let total = nodes * ppn in
  Printf.printf
    "%d procs on %d nodes; each puts %d unique 512 B values (hashed across volumes) then joins one fence\n"
    total nodes nputs;
  Printf.printf "%-8s %-14s %-14s %-16s\n" "shards" "fence_max(s)" "get_max(s)" "max master bytes";
  List.iter
    (fun shards ->
      let eng = Engine.create () in
      let sess = Session.create eng ~rank_topology:Session.Direct ~size:nodes () in
      let vt = Flux_kvs.Volumes.load sess ~shards () in
      let fence_s = Flux_util.Stats.create () in
      let get_s = Flux_util.Stats.create () in
      let remaining = ref total in
      for p = 0 to total - 1 do
        let node = p mod nodes in
        ignore
          (Proc.spawn eng (fun () ->
               let c = Flux_kvs.Volumes.client vt ~rank:node in
               let expect label = function
                 | Ok v -> v
                 | Error e -> failwith (label ^ ": " ^ e)
               in
               for j = 0 to nputs - 1 do
                 let idx = (p * nputs) + j in
                 expect "put"
                   (Flux_kvs.Volumes.put c
                      ~key:(Printf.sprintf "d%d.k%d" (idx mod 997) idx)
                      (Json.pad_unique 512 idx))
               done;
               let t0 = Engine.now eng in
               expect "fence" (Flux_kvs.Volumes.fence c ~name:"shard-bench" ~nprocs:total);
               Flux_util.Stats.add fence_s (Engine.now eng -. t0);
               let t1 = Engine.now eng in
               let idx = (p * nputs) mod (total * nputs) in
               ignore
                 (expect "get"
                    (Flux_kvs.Volumes.get c ~key:(Printf.sprintf "d%d.k%d" (idx mod 997) idx))
                   : Json.t);
               Flux_util.Stats.add get_s (Engine.now eng -. t1);
               decr remaining)
            : Proc.pid)
      done;
      Engine.run eng;
      if !remaining <> 0 then failwith "shard bench clients stuck";
      let max_master_bytes =
        List.fold_left max 0
          (List.init shards (fun v ->
               Flux_kvs.Kvs_module.store_bytes
                 (Flux_kvs.Volumes.instance vt ~volume:v
                    ~rank:(Flux_kvs.Volumes.master_rank vt v))))
      in
      Printf.printf "%-8d %-14.6f %-14.6f %-16d\n%!" shards
        (Flux_util.Stats.max fence_s) (Flux_util.Stats.max get_s) max_master_bytes)
    [ 1; 2; 4; 8 ]

(* --- Bechamel micro-benchmarks --------------------------------------------------- *)

let micro () =
  header "Micro-benchmarks (bechamel, per-run cost of the hot primitives)";
  let open Bechamel in
  let payload = String.make 4096 'x' in
  let json_val = Json.obj [ ("key", Json.string "kap.o123"); ("v", Json.pad 256) ] in
  let tree_store = Hashtbl.create 64 in
  let store v =
    let sha = Sha1.digest_json v in
    Hashtbl.replace tree_store (Sha1.to_hex sha) v;
    sha
  in
  let fetch sha = Hashtbl.find_opt tree_store (Sha1.to_hex sha) in
  ignore (store Tree.empty_dir : Sha1.digest);
  let base_root =
    Tree.apply_tuples ~fetch ~store ~root:Tree.empty_dir_sha
      (List.init 128 (fun i -> (Printf.sprintf "d.k%d" i, Tree.dirent_val (Json.int i))))
  in
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"sha1-4KiB"
        (Staged.stage (fun () -> ignore (Sha1.digest_string payload : Sha1.digest)));
      Test.make ~name:"json-print+parse"
        (Staged.stage (fun () -> ignore (Json.of_string (Json.to_string json_val) : Json.t)));
      Test.make ~name:"json-size-model"
        (Staged.stage (fun () -> ignore (Json.serialized_size json_val : int)));
      Test.make ~name:"hashtree-apply-1-tuple"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Tree.apply_tuples ~fetch ~store ~root:base_root
                  [
                    ( Printf.sprintf "d.k%d" (!counter mod 128),
                      Tree.dirent_val (Json.int !counter) );
                  ]
                 : Sha1.digest)));
      Test.make ~name:"heap-push-pop"
        (Staged.stage
           (let h = Heap.create () in
            fun () ->
              Heap.push h 1.0 ();
              ignore (Heap.pop h : (float * unit) option)));
      Test.make ~name:"kap-4nodes-end-to-end"
        (Staged.stage (fun () -> ignore (Kap.run { Kap.default with Kap.nodes = 4 } : Kap.result)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-26s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-26s (no estimate)\n%!" name)
        ols)
    tests

(* --- Fault injection: the RPC lifecycle under loss and parent death ------ *)

let faults () =
  header "Fault injection: fence under message loss, and a parent death mid-fence";
  (* (a) an 8-leaf fence on a 15-node tree with increasing injected loss:
     lost flushes/responses are recovered by the deadline + retransmit
     machinery at the cost of backoff latency. *)
  List.iter
    (fun loss ->
      let eng = Engine.create () in
      let sess = Session.create eng ~size:15 () in
      ignore (Kvs.load sess () : Kvs.t array);
      Net.set_loss (Session.rpc_net sess) loss;
      let nprocs = 8 in
      let released = ref 0 in
      let t_done = ref 0.0 in
      for r = 7 to 14 do
        ignore
          (Proc.spawn eng (fun () ->
               let c = Client.connect sess ~rank:r in
               (match Client.put c ~key:(Printf.sprintf "fl.%d" r) (Json.int r) with
               | Ok () -> ()
               | Error e -> failwith e);
               match Client.fence c ~name:"bench-loss" ~nprocs with
               | Ok _ ->
                 incr released;
                 t_done := Float.max !t_done (Engine.now eng)
               | Error _ -> ())
            : Proc.pid)
      done;
      Engine.run eng;
      let st = Net.stats (Session.rpc_net sess) in
      Printf.printf
        "  loss %3.0f%%: released %d/%d in %8.5f s, retries %3d, timeouts %2d, dead letters %3d\n%!"
        (100.0 *. loss) !released nprocs !t_done (Session.rpc_retries sess)
        (Session.rpc_timeouts sess) st.Net.dead_letters;
      fault_summary ~experiment:"faults-loss" sess
        ~extra:[ ("loss", Json.float loss); ("released", Json.int !released) ]
        ())
    [ 0.0; 0.02; 0.05; 0.10 ];
  (* (b) the EXPERIMENTS.md scenario: rank 6 (parent of 13 and 14) dies
     before their flushes arrive and is marked down a second later; the
     retransmits route through the healed parent and release the fence. *)
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  ignore (Kvs.load sess () : Kvs.t array);
  Session.crash sess 6;
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Session.mark_down sess 6) : Engine.handle);
  let released = ref 0 in
  let t_done = ref 0.0 in
  List.iter
    (fun r ->
      ignore
        (Proc.spawn eng (fun () ->
             let c = Client.connect sess ~rank:r in
             (match Client.put c ~key:(Printf.sprintf "pd.%d" r) (Json.int r) with
             | Ok () -> ()
             | Error e -> failwith e);
             match Client.fence c ~name:"bench-pdeath" ~nprocs:3 with
             | Ok _ ->
               incr released;
               t_done := Float.max !t_done (Engine.now eng)
             | Error _ -> ())
          : Proc.pid))
    [ 5; 13; 14 ];
  Engine.run eng;
  Printf.printf
    "  parent death mid-fence: released %d/3 in %.3f s via the healed parent (retries %d, timeouts %d)\n%!"
    !released !t_done (Session.rpc_retries sess) (Session.rpc_timeouts sess);
  fault_summary ~experiment:"faults-parent-death" sess
    ~extra:[ ("released", Json.int !released) ]
    ();
  Printf.printf "%s" (Export.fault_counters_csv
    ~rpc_timeouts:(Session.rpc_timeouts sess)
    ~rpc_retries:(Session.rpc_retries sess)
    ~dead_letters:(Session.rpc_net_stats sess).Net.dead_letters
    ~dropped:(Session.rpc_net_stats sess).Net.dropped ())

let chaos () =
  header "Chaos: seeded fault schedules over a live workload (consistency proved per run)";
  let seeds = if fast then [ 1; 2; 3 ] else List.init 10 (fun i -> 1 + i) in
  let total_viol = ref 0 in
  List.iter
    (fun seed ->
      let r = Chaos.run { Chaos.default with Chaos.seed } in
      total_viol := !total_viol + List.length r.Chaos.violations;
      Printf.printf
        "  seed %2d: commits %3d (+%d indet), fences %2d (+%d indet), kills %2d (%d master), \
         takeovers %d, final v%d, violations %d\n%!"
        seed r.Chaos.commits_ok r.Chaos.commits_indeterminate r.Chaos.fences_ok
        r.Chaos.fences_indeterminate r.Chaos.kills r.Chaos.master_kills r.Chaos.takeovers
        r.Chaos.final_version
        (List.length r.Chaos.violations);
      List.iter (fun v -> Printf.printf "    violation: %s\n%!" v) r.Chaos.violations;
      Printf.printf "  summary %s\n%!"
        (Json.to_string
           (Json.obj
              [
                ("experiment", Json.string "chaos");
                ("seed", Json.int seed);
                ("rpc_timeouts", Json.int r.Chaos.rpc_timeouts);
                ("rpc_retries", Json.int r.Chaos.rpc_retries);
                ("dead_letters", Json.int r.Chaos.dead_letters);
                ("dropped", Json.int r.Chaos.dropped);
                ("master_kills", Json.int r.Chaos.master_kills);
                ("takeovers", Json.int r.Chaos.takeovers);
                ("keys_checked", Json.int r.Chaos.keys_checked);
                ("violations", Json.int (List.length r.Chaos.violations));
              ])))
    seeds;
  Printf.printf "  %d seeds, %d total violations%s\n%!" (List.length seeds) !total_viol
    (if !total_viol = 0 then " — all consistency guarantees held" else " — INVARIANT BREACH")

(* --- Overload: open-loop soak past master capacity ------------------------ *)

let overload () =
  header "Overload: open-loop soak past master capacity (bounded queues, credits, admission)";
  let size = if fast then 64 else 512 in
  let nproducers = if fast then 8 else 16 in
  let producers = List.init nproducers (fun i -> size - nproducers + i) in
  let duration = if fast then 0.3 else 0.5 in
  let base = { Overload.default with Overload.size; producers; duration } in
  let cap = Overload.master_capacity base in
  Printf.printf "(%d nodes, %d producers, %.1fs window, master capacity %.0f ops/s)\n%!"
    size nproducers duration cap;
  Printf.printf "%-10s %8s %8s %8s %8s %10s %10s %6s %6s %6s %5s\n" "profile" "x-cap"
    "offered" "acked" "shed" "goodput" "p99(s)" "stash" "link" "intake" "viol";
  let scenarios =
    [
      ("sustained", 0.5, Overload.Sustained, false);
      ("sustained", 1.0, Overload.Sustained, false);
      ("sustained", 2.0, Overload.Sustained, false);
      ("bursty", 2.0, Overload.Bursty, false);
      ("chaos", 1.0, Overload.Sustained, true);
    ]
  in
  let rows =
    List.map
      (fun (label, mult, profile, chaos_kill) ->
        let cfg = { base with Overload.rate = cap *. mult; profile; chaos_kill } in
        let r = Overload.run cfg in
        Printf.printf "%-10s %8.1f %8d %8d %8d %10.0f %10.6f %6d %6d %6d %5d\n%!" label
          mult r.Overload.offered r.Overload.acked r.Overload.shed r.Overload.goodput
          r.Overload.ack_p99 r.Overload.flow_stash_hwm r.Overload.link_depth_hwm
          r.Overload.intake_hwm
          (List.length r.Overload.violations);
        List.iter (fun v -> Printf.printf "    violation: %s\n%!" v) r.Overload.violations;
        ( (label, mult, r),
          Json.obj
            [
              ("profile", Json.string label);
              ("capacity_multiple", Json.float mult);
              ("rate", Json.float cfg.Overload.rate);
              ("offered", Json.int r.Overload.offered);
              ("acked", Json.int r.Overload.acked);
              ("shed", Json.int r.Overload.shed);
              ("failed", Json.int r.Overload.failed);
              ("goodput", Json.float r.Overload.goodput);
              ("ack_p50", Json.float r.Overload.ack_p50);
              ("ack_p99", Json.float r.Overload.ack_p99);
              ("admission_sheds", Json.int r.Overload.admission_sheds);
              ("intake_hwm", Json.int r.Overload.intake_hwm);
              ("flow_stash_hwm", Json.int r.Overload.flow_stash_hwm);
              ("link_depth_hwm", Json.int r.Overload.link_depth_hwm);
              ("lost_acks", Json.int r.Overload.lost_acks);
              ("drained", Json.bool r.Overload.drained);
              ("sim_events", Json.int r.Overload.sim_events);
              ("violations", Json.int (List.length r.Overload.violations));
            ] ))
      scenarios
  in
  (* The shape the protection stack must produce: goodput at 2x capacity
     plateaus near the 1x level instead of collapsing under retry storms
     and unbounded queueing. *)
  let goodput_at m =
    List.filter_map
      (fun ((label, mult, r), _) ->
        if label = "sustained" && mult = m then Some r.Overload.goodput else None)
      rows
    |> function g :: _ -> g | [] -> 0.0
  in
  let g1 = goodput_at 1.0 and g2 = goodput_at 2.0 in
  Printf.printf "  goodput at 2x capacity retains %.0f%% of the 1x level (%s)\n%!"
    (if g1 > 0.0 then 100.0 *. g2 /. g1 else 0.0)
    (if g2 >= 0.5 *. g1 then "plateau — protected" else "COLLAPSE");
  let doc =
    Json.obj
      [
        ("experiment", Json.string "overload");
        ("nodes", Json.int size);
        ("producers", Json.int nproducers);
        ("duration", Json.float duration);
        ("master_capacity", Json.float cap);
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
        ("rows", Json.list (List.map snd rows));
      ]
  in
  let oc = open_out "BENCH_OVERLOAD.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_OVERLOAD.json (%d scenarios)\n%!" (List.length rows)

(* --- Shard: goodput vs shard count at 2x offered load --------------------- *)

let shard () =
  header "Shard: goodput vs shards at 2x one master's capacity (distributed KVS master)";
  let duration = if fast then 0.25 else 0.4 in
  let base = { Shard.soak_default with Shard.duration } in
  let cap = Shard.soak_capacity base in
  Printf.printf
    "(%d nodes, %d producers, %.2fs window, per-master capacity %.0f ops/s, offered %.0f)\n%!"
    base.Shard.size
    (List.length base.Shard.producers)
    duration cap base.Shard.rate;
  Printf.printf "%-7s %8s %8s %8s %10s %8s %6s %5s\n" "shards" "offered" "acked" "shed"
    "goodput" "intake" "lost" "viol";
  let rows =
    List.map
      (fun shards ->
        let r = Shard.soak { base with Shard.shards } in
        Printf.printf "%-7d %8d %8d %8d %10.0f %8d %6d %5d\n%!" shards
          r.Shard.offered r.Shard.acked r.Shard.shed r.Shard.goodput r.Shard.intake_hwm
          r.Shard.lost_acks
          (List.length r.Shard.violations);
        List.iter (fun v -> Printf.printf "    violation: %s\n%!" v) r.Shard.violations;
        ( r,
          Json.obj
            [
              ("shards", Json.int shards);
              ("offered", Json.int r.Shard.offered);
              ("acked", Json.int r.Shard.acked);
              ("shed", Json.int r.Shard.shed);
              ("failed", Json.int r.Shard.failed);
              ("goodput", Json.float r.Shard.goodput);
              ("ack_p50", Json.float r.Shard.ack_p50);
              ("ack_p99", Json.float r.Shard.ack_p99);
              ("admission_sheds", Json.int r.Shard.admission_sheds);
              ("intake_hwm", Json.int r.Shard.intake_hwm);
              ("lost_acks", Json.int r.Shard.lost_acks);
              ("drained", Json.bool r.Shard.drained);
              ("sim_events", Json.int r.Shard.sim_events);
              ("violations", Json.int (List.length r.Shard.violations));
            ] ))
      [ 1; 2; 4 ]
  in
  let goodput_of n =
    List.filter_map
      (fun (r, _) -> if r.Shard.shards = n then Some r.Shard.goodput else None)
      rows
    |> function g :: _ -> g | [] -> 0.0
  in
  let g1 = goodput_of 1 and g4 = goodput_of 4 in
  let ratio = if g1 > 0.0 then g4 /. g1 else 0.0 in
  Printf.printf "  goodput scales %.2fx from 1 to 4 shards (%s)\n%!" ratio
    (if ratio >= 1.8 then "distributed master relieves the bottleneck"
     else "BELOW the 1.8x bar");
  let doc =
    Json.obj
      [
        ("experiment", Json.string "shard");
        ("nodes", Json.int base.Shard.size);
        ("producers", Json.int (List.length base.Shard.producers));
        ("duration", Json.float duration);
        ("per_master_capacity", Json.float cap);
        ("offered_rate", Json.float base.Shard.rate);
        ("scaling_1_to_4", Json.float ratio);
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
        ("rows", Json.list (List.map snd rows));
      ]
  in
  let oc = open_out "BENCH_SHARD.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_SHARD.json (%d shard counts)\n%!" (List.length rows)

(* --- Ckpt: checkpoint overhead + recovery time vs snapshot depth ---------- *)

let ckpt () =
  header "Ckpt: checkpoint overhead vs plain fences, recovery time vs checkpoint depth";
  let pr_violations label r =
    List.iter (fun v -> Printf.printf "    %s violation: %s\n%!" label v) r.Ckpt.r_violations
  in
  (* Curve 1: fault-free runs, manifests on vs off. The manifest put +
     commit after each checkpoint fence is the whole overhead of making
     the fence a durable recovery point. *)
  let epochs = if fast then 4 else 8 in
  let base = { Ckpt.default with Ckpt.kill = None; epochs } in
  let plain = Ckpt.run { base with Ckpt.manifests = false } in
  let durable = Ckpt.run { base with Ckpt.manifests = true } in
  pr_violations "plain" plain;
  pr_violations "durable" durable;
  let overhead_pct =
    if plain.Ckpt.r_ckpt_mean > 0.0 then
      100.0 *. ((durable.Ckpt.r_ckpt_mean /. plain.Ckpt.r_ckpt_mean) -. 1.0)
    else 0.0
  in
  Printf.printf "%-10s %14s %14s\n" "fences" "mean(s)" "p50(s)";
  Printf.printf "%-10s %14.6f %14.6f\n" "plain" plain.Ckpt.r_ckpt_mean plain.Ckpt.r_ckpt_p50;
  Printf.printf "%-10s %14.6f %14.6f\n%!" "durable" durable.Ckpt.r_ckpt_mean
    durable.Ckpt.r_ckpt_p50;
  Printf.printf "  checkpoint overhead over a plain fence: %+.1f%%\n%!" overhead_pct;
  (* Curve 2: kill a worker right after epoch [epochs-1] commits its
     manifest and measure first-kill-to-completion as checkpoint depth
     grows. Because a recovery point is just a root hash, resuming from
     a deep manifest costs the same as a shallow one — recovery time
     should stay flat while the snapshot grows. The seed is chosen so
     the window assassin's target epoch is [epochs - 1]. *)
  let depths = if fast then [ 2; 4 ] else [ 2; 4; 8 ] in
  Printf.printf "%-8s %12s %10s %12s %10s %10s\n" "epochs" "recovery(s)" "attempts"
    "resume_from" "snap_objs" "snap_bytes";
  let rows =
    List.map
      (fun epochs ->
        let r =
          Ckpt.run
            { Ckpt.default with
              Ckpt.kill = Some Ckpt.Between_ckpt_and_fence;
              epochs;
              seed = (2 * epochs) - 3
            }
        in
        pr_violations (Printf.sprintf "depth-%d" epochs) r;
        let resume_from =
          match List.rev r.Ckpt.r_resume_epochs with e :: _ -> e | [] -> 0
        in
        Printf.printf "%-8d %12.3f %10d %12d %10d %10d\n%!" epochs r.Ckpt.r_recovery_time
          r.Ckpt.r_attempts resume_from r.Ckpt.r_snapshot_objects r.Ckpt.r_snapshot_bytes;
        Json.obj
          [
            ("epochs", Json.int epochs);
            ("recovery_time", Json.float r.Ckpt.r_recovery_time);
            ("attempts", Json.int r.Ckpt.r_attempts);
            ("requeues", Json.int r.Ckpt.r_requeues);
            ("resume_from", Json.int resume_from);
            ("acked_epoch", Json.int r.Ckpt.r_acked_epoch);
            ("snapshot_objects", Json.int r.Ckpt.r_snapshot_objects);
            ("snapshot_bytes", Json.int r.Ckpt.r_snapshot_bytes);
            ("violations", Json.int (List.length r.Ckpt.r_violations));
          ])
      depths
  in
  let doc =
    Json.obj
      [
        ("experiment", Json.string "ckpt");
        ("nodes", Json.int Ckpt.default.Ckpt.size);
        ("workers", Json.int (List.length Ckpt.default.Ckpt.workers));
        ("overhead_epochs", Json.int epochs);
        ("plain_fence_mean", Json.float plain.Ckpt.r_ckpt_mean);
        ("plain_fence_p50", Json.float plain.Ckpt.r_ckpt_p50);
        ("durable_ckpt_mean", Json.float durable.Ckpt.r_ckpt_mean);
        ("durable_ckpt_p50", Json.float durable.Ckpt.r_ckpt_p50);
        ("overhead_pct", Json.float overhead_pct);
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
        ("recovery_rows", Json.list rows);
      ]
  in
  let oc = open_out "BENCH_CKPT.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_CKPT.json (%d depths)\n%!" (List.length depths)

(* --- Sched: hierarchical vs centralized under a pilot-style task storm ---- *)

let sched () =
  header "Sched: hierarchical vs centralized scheduling of a pilot-style task storm";
  let nodes = if fast then 16 else 32 in
  let tasks = if fast then 400 else 1200 in
  let base =
    { Sched.default with
      Sched.nodes;
      tasks;
      fanout = 2;
      children = 2;
      mean_duration = 0.1;
      min_duration = 0.01;
      task_kind = Sched.Wexec_tasks;
      trace = true
    }
  in
  let level_row lv =
    Json.obj
      [
        ("level", Json.int lv.Sched.lv_depth);
        ("jobs", Json.int lv.Sched.lv_jobs);
        ("submit_match_mean", Json.float lv.Sched.lv_submit_match_mean);
        ("submit_match_p95", Json.float lv.Sched.lv_submit_match_p95);
      ]
  in
  let report_row ~label (r : Sched.report) =
    List.iter (fun v -> Printf.printf "    %s violation: %s\n%!" label v) r.Sched.r_violations;
    Json.obj
      [
        ("config", Json.string label);
        ("depth", Json.int r.Sched.r_depth);
        ("children", Json.int r.Sched.r_children);
        ("leaves", Json.int r.Sched.r_leaves);
        ("tasks", Json.int r.Sched.r_tasks);
        ("acked", Json.int r.Sched.r_acked);
        ("jobs_per_s", Json.float r.Sched.r_jobs_per_s);
        ("makespan", Json.float r.Sched.r_makespan);
        ("mean_wait", Json.float r.Sched.r_mean_wait);
        ("sched_cycles", Json.int r.Sched.r_sched_cycles);
        ("hop_match_start_mean", Json.float r.Sched.r_hop_match_start_mean);
        ("hop_start_complete_mean", Json.float r.Sched.r_hop_start_complete_mean);
        ("levels", Json.list (List.map level_row r.Sched.r_levels));
        ("requeues", Json.int r.Sched.r_requeues);
        ("kills", Json.int r.Sched.r_kills);
        ("violations", Json.int (List.length r.Sched.r_violations));
      ]
  in
  (* Curve 1: throughput vs hierarchy depth at fixed fanout 2 — the
     paper's log2(C)*T(G) argument. Depth 0 is one flat Flux instance;
     the centralized baseline is the traditional monolithic scheduler
     with the same decision-cost model. *)
  Printf.printf "%-14s %8s %10s %12s %10s %12s\n" "config" "acked" "jobs/s" "makespan(s)"
    "cycles" "mean_wait(s)";
  let central = Sched.run_central base in
  Printf.printf "%-14s %8d %10.1f %12.3f %10d %12.4f\n%!" "central" central.Sched.c_completed
    central.Sched.c_jobs_per_s central.Sched.c_makespan central.Sched.c_sched_cycles
    central.Sched.c_mean_wait;
  let depth_rows =
    List.map
      (fun depth ->
        let r = Sched.run { base with Sched.depth } in
        let label = Printf.sprintf "depth-%d" depth in
        Printf.printf "%-14s %8d %10.1f %12.3f %10d %12.4f\n%!" label r.Sched.r_acked
          r.Sched.r_jobs_per_s r.Sched.r_makespan r.Sched.r_sched_cycles r.Sched.r_mean_wait;
        List.iter
          (fun lv ->
            Printf.printf "    level %d: %6d jobs  submit->match mean %.5fs  p95 %.5fs\n%!"
              lv.Sched.lv_depth lv.Sched.lv_jobs lv.Sched.lv_submit_match_mean
              lv.Sched.lv_submit_match_p95)
          r.Sched.r_levels;
        (depth, r, report_row ~label r))
      [ 0; 1; 2; 3 ]
  in
  (* Curve 2: throughput vs hierarchy fanout at depth 1 — wider trees
     shrink T(G) per level but shorten the tree; the sweet spot moves
     with the task grain, which is the tunability argument. *)
  let fanout_rows =
    List.filter_map
      (fun children ->
        if nodes / children < 1 then None
        else begin
          let r = Sched.run { base with Sched.depth = 1; children } in
          let label = Printf.sprintf "fanout-%d" children in
          Printf.printf "%-14s %8d %10.1f %12.3f %10d %12.4f\n%!" label r.Sched.r_acked
            r.Sched.r_jobs_per_s r.Sched.r_makespan r.Sched.r_sched_cycles
            r.Sched.r_mean_wait;
          Some (report_row ~label r)
        end)
      [ 2; 4; 8 ]
  in
  (* Curve 3: the chaos row — kill a worker rank of leaf 0 mid-batch and
     let the surviving siblings drain the backlog via requeues. The
     invariant set (no lost task, no double ack, no exec-after-ack) must
     hold with zero violations. *)
  let chaos_cfg =
    { base with
      Sched.depth = 2;
      children = 2;
      kill_leaf = true;
      tasks = (if fast then 200 else 600)
    }
  in
  let chaos_r = Sched.run chaos_cfg in
  Printf.printf "%-14s %8d %10.1f %12.3f %10d %12.4f  (kills %d, requeues %d)\n%!"
    "chaos-leaf" chaos_r.Sched.r_acked chaos_r.Sched.r_jobs_per_s chaos_r.Sched.r_makespan
    chaos_r.Sched.r_sched_cycles chaos_r.Sched.r_mean_wait chaos_r.Sched.r_kills
    chaos_r.Sched.r_requeues;
  let chaos_row = report_row ~label:"chaos-leaf" chaos_r in
  (* Headline: the hierarchy must beat the monolithic controller once
     it is at least two levels deep. *)
  let speedup_at d =
    List.filter_map
      (fun (depth, r, _) ->
        if depth = d && central.Sched.c_jobs_per_s > 0.0 then
          Some (r.Sched.r_jobs_per_s /. central.Sched.c_jobs_per_s)
        else None)
      depth_rows
  in
  (match speedup_at 2 with
  | [ s ] ->
    Printf.printf "  hierarchical depth-2 vs central: %.2fx jobs/s (%s)\n%!" s
      (if s > 1.0 then "hierarchy wins" else "UNEXPECTED: central wins")
  | _ -> ());
  let doc =
    Json.obj
      [
        ("experiment", Json.string "sched");
        ("nodes", Json.int nodes);
        ("tasks", Json.int tasks);
        ("mean_duration", Json.float base.Sched.mean_duration);
        ("policy", Json.string base.Sched.policy);
        ( "central",
          Json.obj
            [
              ("completed", Json.int central.Sched.c_completed);
              ("jobs_per_s", Json.float central.Sched.c_jobs_per_s);
              ("makespan", Json.float central.Sched.c_makespan);
              ("mean_wait", Json.float central.Sched.c_mean_wait);
              ("sched_cycles", Json.int central.Sched.c_sched_cycles);
            ] );
        ("depth_rows", Json.list (List.map (fun (_, _, j) -> j) depth_rows));
        ("fanout_rows", Json.list fanout_rows);
        ("chaos", chaos_row);
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
      ]
  in
  let oc = open_out "BENCH_SCHED.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_SCHED.json (%d depth rows, %d fanout rows)\n%!"
    (List.length depth_rows) (List.length fanout_rows)

(* --- Observe: traced fence critical path + metrics registry export -------- *)

let observe () =
  header "Observe: traced put-fence critical path (Fig. 4 decomposition) and metrics";
  let nodes = if fast then 16 else 64 in
  let cfg = { (Kap.fully_populated ~nodes) with Kap.value_size = 512; trace = true } in
  let r = Kap.run cfg in
  let tr = match r.Kap.r_trace with Some tr -> tr | None -> failwith "observe: no tracer" in
  let m = match r.Kap.r_metrics with Some m -> m | None -> failwith "observe: no metrics" in
  match Export.fence_critical_path tr ~name:"kap-sync" with
  | Error e -> failwith ("observe: " ^ e)
  | Ok fb ->
    Format.printf "%a@." Export.pp_fence_breakdown fb;
    Printf.printf "  measured sync phase max %.6f s (mean %.6f s)\n" r.Kap.r_sync.Kap.ph_max
      r.Kap.r_sync.Kap.ph_mean;
    let doc =
      Json.obj
        [
          ("experiment", Json.string "observe");
          ("nodes", Json.int nodes);
          ("procs", Json.int (nodes * cfg.Kap.procs_per_node));
          ("fence", Json.string "kap-sync");
          ("ascent_s", Json.float fb.Export.fb_ascent);
          ("commit_s", Json.float fb.Export.fb_commit);
          ("broadcast_s", Json.float fb.Export.fb_broadcast);
          ("total_s", Json.float fb.Export.fb_total);
          ("sync_max_s", Json.float r.Kap.r_sync.Kap.ph_max);
          ("trace_events", Json.int (List.length (Flux_trace.Tracer.events tr)));
          ("trace_dropped", Json.int (Flux_trace.Tracer.dropped tr));
          ("metrics", Flux_trace.Metrics.to_json m);
        ]
    in
    let oc = open_out "BENCH_TRACE.json" in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    let oc = open_out "METRICS.csv" in
    output_string oc (Flux_trace.Metrics.to_csv m);
    close_out oc;
    Printf.printf "  wrote BENCH_TRACE.json and METRICS.csv (%d nodes x %d procs)\n%!" nodes
      cfg.Kap.procs_per_node

(* --- Telem: telemetry-plane overhead and rollup footprint ----------------- *)

(* Two questions the telemetry plane must answer before it is allowed
   on by default anywhere: (a) what does running it in-band cost — the
   overload soak with [telem] off twice (proving the fingerprint is
   untouched when disabled) and once with it on, comparing wall-clock
   events/s; (b) how much TBON traffic do rollups generate per epoch as
   the interval shrinks — a fault-free Telem harness sweep. Rows land
   in BENCH_TELEM.json. *)

let telem () =
  header "Telem: in-band rollup overhead (off vs on) and bytes/epoch vs interval";
  let size = if fast then 48 else 256 in
  let nproducers = if fast then 6 else 12 in
  let producers = List.init nproducers (fun i -> size - nproducers + i) in
  let duration = if fast then 0.25 else 0.4 in
  let base = { Overload.default with Overload.size; producers; duration } in
  let cap = Overload.master_capacity base in
  let base = { base with Overload.rate = cap } in
  let timed cfg =
    Gc.compact ();
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let r = Overload.run cfg in
    let wall = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    let alloc = s1.Gc.minor_words +. s1.Gc.major_words -. s1.Gc.promoted_words
                -. (s0.Gc.minor_words +. s0.Gc.major_words -. s0.Gc.promoted_words) in
    (wall, alloc, r)
  in
  Printf.printf "(%d nodes, %d producers, %.2fs soak at 1x capacity)\n%!" size nproducers
    duration;
  Printf.printf "%-12s %10s %12s %12s %10s %8s %8s %8s\n" "run" "wall(s)" "sim-events"
    "events/s" "alloc(Mw)" "epochs" "alerts" "dumps";
  (* Discard a warm-up run so the first timed row doesn't pay code and
     allocator warm-up that the later rows don't. *)
  ignore (Overload.run { base with Overload.telem = false });
  let w_off1, a_off1, off1 = timed { base with Overload.telem = false } in
  let w_off2, a_off2, off2 = timed { base with Overload.telem = false } in
  (* Two cadences: coarse (2 rollup epochs over the window — the
     realistic regime, where a soak window is a fraction of one
     telemetry epoch) and aggressive (10 epochs — oversampling, to make
     the plane's marginal cost visible). *)
  let w_on, a_on, on =
    timed
      { base with Overload.telem = true; telem_interval = base.Overload.duration /. 2.0 }
  in
  let w_fast, a_fast, on_fast =
    timed
      { base with Overload.telem = true; telem_interval = base.Overload.duration /. 10.0 }
  in
  let rate_of wall (r : Overload.report) = float_of_int r.Overload.sim_events /. wall in
  let soak_row name wall alloc (r : Overload.report) =
    Printf.printf "%-12s %10.2f %12d %12.0f %10.1f %8d %8d %8d\n%!" name wall
      r.Overload.sim_events (rate_of wall r) (alloc /. 1e6) r.Overload.telem_epochs
      r.Overload.telem_alerts r.Overload.telem_dumps;
    Json.obj
      [
        ("run", Json.string name);
        ("wall_s", Json.float wall);
        ("sim_events", Json.int r.Overload.sim_events);
        ("events_per_s", Json.float (rate_of wall r));
        ("alloc_words", Json.float alloc);
        ("acked", Json.int r.Overload.acked);
        ("telem_epochs", Json.int r.Overload.telem_epochs);
        ("telem_alerts", Json.int r.Overload.telem_alerts);
        ("telem_dumps", Json.int r.Overload.telem_dumps);
        ("violations", Json.int (List.length r.Overload.violations));
      ]
  in
  let row1 = soak_row "telem-off/1" w_off1 a_off1 off1 in
  let row2 = soak_row "telem-off/2" w_off2 a_off2 off2 in
  let row3 = soak_row "telem-on" w_on a_on on in
  let row4 = soak_row "telem-on/10x" w_fast a_fast on_fast in
  let soak_rows = [ row1; row2; row3; row4 ] in
  let fingerprint_stable = off1.Overload.sim_events = off2.Overload.sim_events in
  (* Wall-clock is noisy; take the faster of the two off runs as the
     baseline so measured overhead is conservative (an upper bound),
     and record the off-run spread as the noise floor the overhead
     should be judged against. *)
  let off_rate = Float.max (rate_of w_off1 off1) (rate_of w_off2 off2) in
  let off_spread_pct =
    100.0
    *. ((off_rate /. Float.min (rate_of w_off1 off1) (rate_of w_off2 off2)) -. 1.0)
  in
  let overhead_of wall r =
    let rate = rate_of wall r in
    if rate > 0.0 then 100.0 *. ((off_rate /. rate) -. 1.0) else 0.0
  in
  let overhead_pct = overhead_of w_on on in
  let overhead_fast_pct = overhead_of w_fast on_fast in
  Printf.printf
    "  telem-off fingerprint %s (%d = %d); off-run spread %.1f%%\n\
    \  telem-on overhead %+.1f%% events/s (%d epochs); %+.1f%% oversampled (%d epochs)\n\
     %!"
    (if fingerprint_stable then "IDENTICAL" else "DIVERGED")
    off1.Overload.sim_events off2.Overload.sim_events off_spread_pct overhead_pct
    on.Overload.telem_epochs overhead_fast_pct on_fast.Overload.telem_epochs;
  Printf.printf "%-10s %8s %12s %12s %8s %8s %6s\n" "interval" "epochs" "bytes" "bytes/ep"
    "alerts" "late" "viol";
  let intervals = if fast then [ 0.025; 0.05; 0.1 ] else [ 0.0125; 0.025; 0.05; 0.1 ] in
  let sweep_rows =
    List.map
      (fun interval ->
        let cfg =
          {
            KTelem.default with
            KTelem.straggler = None;
            interval;
            epochs = (if fast then 10 else 20);
            size = (if fast then 16 else 32);
          }
        in
        let r = KTelem.run cfg in
        let per_epoch =
          if r.KTelem.t_epochs > 0 then
            float_of_int r.KTelem.t_rollup_bytes /. float_of_int r.KTelem.t_epochs
          else 0.0
        in
        Printf.printf "%-10.4f %8d %12d %12.0f %8d %8d %6d\n%!" interval r.KTelem.t_epochs
          r.KTelem.t_rollup_bytes per_epoch
          (List.length r.KTelem.t_alerts)
          r.KTelem.t_late_drops
          (List.length r.KTelem.t_violations);
        List.iter
          (fun v -> Printf.printf "    violation: %s\n%!" v)
          r.KTelem.t_violations;
        Json.obj
          [
            ("interval", Json.float interval);
            ("epochs", Json.int r.KTelem.t_epochs);
            ("rollup_bytes", Json.int r.KTelem.t_rollup_bytes);
            ("bytes_per_epoch", Json.float per_epoch);
            ("alerts", Json.int (List.length r.KTelem.t_alerts));
            ("late_drops", Json.int r.KTelem.t_late_drops);
            ("sim_events", Json.int r.KTelem.t_events);
            ("violations", Json.int (List.length r.KTelem.t_violations));
          ])
      intervals
  in
  let doc =
    Json.obj
      [
        ("experiment", Json.string "telem");
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
        ("soak_nodes", Json.int size);
        ("soak_duration", Json.float duration);
        ("fingerprint_stable", Json.bool fingerprint_stable);
        ("off_spread_pct", Json.float off_spread_pct);
        ("telem_overhead_pct", Json.float overhead_pct);
        ("telem_overhead_oversampled_pct", Json.float overhead_fast_pct);
        ("soak", Json.list soak_rows);
        ("interval_sweep", Json.list sweep_rows);
      ]
  in
  let oc = open_out "BENCH_TELEM.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_TELEM.json (%d soak runs, %d sweep points)\n%!"
    (List.length soak_rows) (List.length sweep_rows)

(* --- Elasticity: three-regime bursty soak --------------------------------- *)

(* One seeded bursty task stream against a small child instance under
   the three protection regimes: unprotected (the queue grows without
   bound and scheduler-cycle cost collapses goodput), protected (PR 5's
   static shed bounds the queue; goodput plateaus at the child's fixed
   capacity), and elastic (the closed-loop controller buys nodes from
   the root's headroom while the burst lasts and returns them after).
   The headline number is the recovery ratio — elastic goodput over
   protected goodput at the same (over-capacity) offered load — plus
   the safety counters: zero acked-write loss across every rescale and
   a same-seed fingerprint match over a double run. Rows land in
   BENCH_ELASTIC.json. *)

let elastic () =
  header "Elastic: unprotected collapse vs static shed vs closed-loop autoscale";
  let base =
    if fast then { KElastic.default with KElastic.duration = 3.0; drain = 1.5 }
    else KElastic.default
  in
  let row mode =
    let r = KElastic.run { base with KElastic.mode } in
    Printf.printf
      "  %-12s goodput %6.1f/s  acked %4d/%-4d shed %4d  queue^ %4d  nodes %2d^%-2d  \
       grows %d shrinks %d denied %d  viol %d\n\
       %!"
      (KElastic.mode_to_string r.KElastic.e_mode)
      r.KElastic.e_goodput r.KElastic.e_acked r.KElastic.e_offered r.KElastic.e_shed
      r.KElastic.e_queue_peak r.KElastic.e_nodes_final r.KElastic.e_nodes_peak
      r.KElastic.e_grows r.KElastic.e_shrinks r.KElastic.e_denied
      (List.length r.KElastic.e_violations);
    List.iter (fun v -> Printf.printf "      violation: %s\n%!" v) r.KElastic.e_violations;
    r
  in
  Printf.printf "(%d ranks, child of %d, %.1fs arrivals + %.1fs drain, cap %d)\n%!"
    base.KElastic.size base.KElastic.child_nodes base.KElastic.duration
    base.KElastic.drain base.KElastic.queue_cap;
  let unprot = row KElastic.Unprotected in
  let prot = row KElastic.Protected in
  let elas = row KElastic.Elastic in
  let recovery =
    if prot.KElastic.e_goodput > 0.0 then elas.KElastic.e_goodput /. prot.KElastic.e_goodput
    else 0.0
  in
  let elas2 = KElastic.run { base with KElastic.mode = KElastic.Elastic } in
  let deterministic = String.equal elas.KElastic.e_fingerprint elas2.KElastic.e_fingerprint in
  Printf.printf "  recovery ratio (elastic/protected): %.2fx\n%!" recovery;
  Printf.printf "  same-seed double run: %s\n%!"
    (if deterministic then "fingerprints match" else "FINGERPRINT MISMATCH");
  let regime_json (r : KElastic.report) =
    Json.obj
      [
        ("mode", Json.string (KElastic.mode_to_string r.KElastic.e_mode));
        ("offered", Json.int r.KElastic.e_offered);
        ("submitted", Json.int r.KElastic.e_submitted);
        ("shed", Json.int r.KElastic.e_shed);
        ("acked", Json.int r.KElastic.e_acked);
        ("failed", Json.int r.KElastic.e_failed);
        ("cancelled", Json.int r.KElastic.e_cancelled);
        ("goodput_per_s", Json.float r.KElastic.e_goodput);
        ("queue_peak", Json.int r.KElastic.e_queue_peak);
        ("nodes_final", Json.int r.KElastic.e_nodes_final);
        ("nodes_peak", Json.int r.KElastic.e_nodes_peak);
        ("grows", Json.int r.KElastic.e_grows);
        ("shrinks", Json.int r.KElastic.e_shrinks);
        ("denied", Json.int r.KElastic.e_denied);
        ("drains", Json.int r.KElastic.e_drains);
        ("decisions", Json.int r.KElastic.e_decisions);
        ("telem_epochs", Json.int r.KElastic.e_telem_epochs);
        ("alerts", Json.int r.KElastic.e_alerts);
        ("write_loss", Json.int r.KElastic.e_write_loss);
        ( "node_trajectory",
          Json.list
            (List.map
               (fun (t, n) -> Json.obj [ ("t", Json.float t); ("nodes", Json.int n) ])
               r.KElastic.e_trajectory) );
        ("fingerprint", Json.string r.KElastic.e_fingerprint);
        ("violations", Json.strings r.KElastic.e_violations);
        ("sim_events", Json.int r.KElastic.e_events);
      ]
  in
  let doc =
    Json.obj
      [
        ("bench", Json.string "elastic");
        ("fast", Json.int (if fast then 1 else 0));
        ("regimes", Json.list (List.map regime_json [ unprot; prot; elas ]));
        ("recovery_ratio", Json.float recovery);
        ("deterministic", Json.int (if deterministic then 1 else 0));
      ]
  in
  let oc = open_out "BENCH_ELASTIC.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_ELASTIC.json (3 regimes, recovery %.2fx)\n%!" recovery

(* --- Perf tier: paper-scale workloads with a machine-readable baseline ---- *)

(* Runs fig2/fig4-shaped KAP workloads at the paper's largest published
   tier (512 nodes x 16 cores; Section V) and records, per scenario:
   real wall-clock seconds, simulated events per real second (the
   engine-throughput figure the tentpole optimizations target), total
   allocation (minor+major words from [Gc.quick_stat]), and the
   simulated clock + event count (the determinism fingerprint every
   future PR must preserve). The rows land in BENCH_PERF.json so the
   perf trajectory survives across PRs. *)

let perf () =
  header "Perf: paper-scale tier (wall s, simulated events/s, allocation words)";
  let nodes = if fast then 64 else 512 in
  let scenarios =
    [
      ( "fig2-put-fence",
        fun () ->
          Kap.run { (Kap.fully_populated ~nodes) with Kap.value_size = 512 } );
      ( "fig2-redundant",
        fun () ->
          Kap.run
            {
              (Kap.fully_populated ~nodes) with
              Kap.value_size = 512;
              value_kind = Kap.Redundant;
            } );
      ( "fig4-multi-dir-get",
        fun () ->
          Kap.run
            {
              (Kap.fully_populated ~nodes) with
              Kap.ngets = 4;
              dir_layout = Kap.Multi_dir 128;
              access_stride = 7;
            } );
    ]
  in
  Printf.printf "(%d nodes x 16 procs per scenario)\n" nodes;
  Printf.printf "%-20s %10s %14s %14s %16s %12s\n" "scenario" "wall(s)" "sim-events"
    "events/s" "alloc(Mwords)" "sim-clock";
  let rows =
    List.map
      (fun (name, f) ->
        (* Collect the previous scenario's garbage (dead sessions, caches,
           memo tables) so each row measures its own workload, not its
           predecessor's heap. *)
        Gc.compact ();
        let s0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        let r = f () in
        let wall = Unix.gettimeofday () -. t0 in
        let s1 = Gc.quick_stat () in
        let alloc_words =
          s1.Gc.minor_words +. s1.Gc.major_words -. s1.Gc.promoted_words
          -. (s0.Gc.minor_words +. s0.Gc.major_words -. s0.Gc.promoted_words)
        in
        let events_per_s = float_of_int r.Kap.r_events /. wall in
        Printf.printf "%-20s %10.2f %14d %14.0f %16.1f %12.6f\n%!" name wall
          r.Kap.r_events events_per_s (alloc_words /. 1e6) r.Kap.r_wallclock;
        Json.obj
          [
            ("scenario", Json.string name);
            ("nodes", Json.int nodes);
            ("procs", Json.int (nodes * 16));
            ("wall_s", Json.float wall);
            ("sim_events", Json.int r.Kap.r_events);
            ("sim_events_per_s", Json.float events_per_s);
            ("alloc_words", Json.float alloc_words);
            ("sim_clock", Json.float r.Kap.r_wallclock);
            ("rpc_messages", Json.int r.Kap.r_rpc_messages);
            ("put_max_s", Json.float r.Kap.r_producer.Kap.ph_max);
            ("fence_max_s", Json.float r.Kap.r_sync.Kap.ph_max);
            ("get_max_s", Json.float r.Kap.r_consumer.Kap.ph_max);
          ])
      scenarios
  in
  let doc =
    Json.obj
      [
        ("tier", Json.string (if fast then "fast" else "paper-scale"));
        ("scenarios", Json.list rows);
      ]
  in
  let oc = open_out "BENCH_PERF.json" in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_PERF.json (%d scenarios, %s tier)\n%!" (List.length rows)
    (if fast then "fast" else "paper-scale")

(* --- Driver -------------------------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("sweep", sweep);
    ("model", model);
    ("ablate-sched", ablate_sched);
    ("ablate-fanout", ablate_fanout);
    ("ablate-shards", ablate_shards);
    ("faults", faults);
    ("chaos", chaos);
    ("micro", micro);
    ("overload", overload);
    ("shard", shard);
    ("ckpt", ckpt);
    ("sched", sched);
    ("observe", observe);
    ("telem", telem);
    ("elastic", elastic);
    ("perf", perf);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested;
  Printf.printf "\nall requested experiments done in %.1fs (real time)\n"
    (Unix.gettimeofday () -. t0)
