(* Tests for the live telemetry plane: Metrics snapshot algebra against
   a brute-force oracle (qcheck), the Series/Detect/Flight building
   blocks, and the end-to-end Flux_kap.Telem fault scenarios the plane
   exists to catch. *)

module Json = Flux_json.Json
module Tracer = Flux_trace.Tracer
module Export = Flux_trace.Export
module Metrics = Flux_trace.Metrics
module Series = Flux_trace.Series
module Detect = Flux_trace.Detect
module Flight = Flux_trace.Flight
module KTelem = Flux_kap.Telem

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* --- Snapshot algebra vs a brute-force oracle ----------------------------- *)

(* Registry operations with dyadic-rational float values (k / 16): float
   addition over them is exact at these magnitudes, so oracle sums and
   merged sums agree bit-for-bit regardless of association order. *)
type op =
  | Add of string * int * int
  | Gauge of string * int * float
  | Obs of string * int * float

let apply m = function
  | Add (name, rank, n) -> Metrics.add m ~name ~rank n
  | Gauge (name, rank, v) -> Metrics.set_gauge m ~name ~rank v
  | Obs (name, rank, v) -> Metrics.observe m ~name ~rank v

let op_gen =
  QCheck.Gen.(
    let name = map (Printf.sprintf "m%d") (int_range 0 3) in
    let rank = int_range 0 3 in
    (* Observation magnitudes straddle the histogram's lowest bucket
       boundary (~1 ns) so bucket-edge cases are exercised; both scales
       are dyadic (k * 2^-4 and k * 2^-30) so mixed-scale sums stay
       exact — 2^-30 sits well inside a double's 52-bit mantissa even
       against the ~2^8 totals these lists reach. *)
    let mag =
      oneof
        [
          map (fun k -> float_of_int k /. 16.0) (int_range 0 64);
          map (fun k -> Float.ldexp (float_of_int k) (-30)) (int_range 0 8);
        ]
    in
    oneof
      [
        map3 (fun n r v -> Add (n, r, v)) name rank (int_range 0 100);
        map3 (fun n r v -> Gauge (n, r, v)) name rank mag;
        map3 (fun n r v -> Obs (n, r, v)) name rank mag;
      ])

let ops_arb = QCheck.make QCheck.Gen.(list_size (int_range 0 80) op_gen)

let snap_of_ops ops =
  let m = Metrics.create () in
  List.iter (apply m) ops;
  Metrics.snapshot m

let hist_snap_eq (a : Metrics.hist_snap) (b : Metrics.hist_snap) =
  a.Metrics.hs_buckets = b.Metrics.hs_buckets
  && a.Metrics.hs_count = b.Metrics.hs_count
  && a.Metrics.hs_sum = b.Metrics.hs_sum
  && a.Metrics.hs_min = b.Metrics.hs_min
  && a.Metrics.hs_max = b.Metrics.hs_max

(* The algebra suppresses zero counters (a zero delta is noise on the
   wire), while a raw registry snapshot keeps any cell ever touched —
   compare modulo that normalization. *)
let strip_zeros (s : Metrics.snap) =
  { s with Metrics.sn_counters = List.filter (fun (_, v) -> v <> 0) s.Metrics.sn_counters }

let snap_eq a b =
  let a = strip_zeros a and b = strip_zeros b in
  a.Metrics.sn_counters = b.Metrics.sn_counters
  && a.Metrics.sn_gauges = b.Metrics.sn_gauges
  && List.length a.Metrics.sn_hists = List.length b.Metrics.sn_hists
  && List.for_all2
       (fun (ka, ha) (kb, hb) -> ka = kb && hist_snap_eq ha hb)
       a.Metrics.sn_hists b.Metrics.sn_hists

let prop_merge_matches_oracle =
  QCheck.Test.make ~name:"merge a b = snapshot of (ops_a; ops_b)" ~count:300
    (QCheck.pair ops_arb ops_arb)
    (fun (ops_a, ops_b) ->
      (* Counters sum, gauges right-biased, histograms bucket-add: all
         three are exactly what one registry fed both op streams (b
         after a) reports. *)
      let merged = Metrics.merge (snap_of_ops ops_a) (snap_of_ops ops_b) in
      let oracle = snap_of_ops (ops_a @ ops_b) in
      snap_eq merged oracle)

let prop_diff_then_merge_roundtrips =
  QCheck.Test.make ~name:"merge base (diff ~base next) = next" ~count:300
    (QCheck.pair ops_arb ops_arb)
    (fun (ops_base, ops_more) ->
      let base = snap_of_ops ops_base in
      let next = snap_of_ops (ops_base @ ops_more) in
      snap_eq (Metrics.merge base (Metrics.diff ~base next)) next)

let prop_codec_roundtrips =
  QCheck.Test.make ~name:"snap_of_json (snap_to_json s) = s" ~count:300 ops_arb
    (fun ops ->
      let s = snap_of_ops ops in
      snap_eq (Metrics.snap_of_json (Json.of_string (Json.to_string (Metrics.snap_to_json s)))) s)

let prop_snap_record_roundtrips =
  QCheck.Test.make ~name:"snapshot (snap_record fresh s) = s" ~count:300 ops_arb
    (fun ops ->
      let s = snap_of_ops ops in
      let m = Metrics.create () in
      Metrics.snap_record m s;
      (* Histogram min/max are not carried by buckets alone: restored
         extremes are bucket-boundary approximations, so compare the
         invertible parts. *)
      let r = Metrics.snapshot m in
      r.Metrics.sn_counters = s.Metrics.sn_counters
      && r.Metrics.sn_gauges = s.Metrics.sn_gauges
      && List.for_all2
           (fun (ka, (ha : Metrics.hist_snap)) (kb, (hb : Metrics.hist_snap)) ->
             ka = kb
             && ha.Metrics.hs_buckets = hb.Metrics.hs_buckets
             && ha.Metrics.hs_count = hb.Metrics.hs_count)
           r.Metrics.sn_hists s.Metrics.sn_hists)

let test_rank_slice_snapshot () =
  let m = Metrics.create () in
  Metrics.add m ~name:"c" ~rank:1 5;
  Metrics.add m ~name:"c" ~rank:2 7;
  Metrics.observe m ~name:"h" ~rank:2 0.5;
  let s = Metrics.snapshot ~rank:2 m in
  check (Alcotest.list (Alcotest.pair (Alcotest.pair string int) int)) "only rank 2 counters"
    [ (("c", 2), 7) ]
    s.Metrics.sn_counters;
  check (Alcotest.list int) "ranks" [ 2 ] (Metrics.snap_ranks s)

let test_family_handles_alias_named_api () =
  let m = Metrics.create () in
  let c = Metrics.counter_family m ~name:"c" in
  let g = Metrics.gauge_family m ~name:"g" in
  let h = Metrics.hist_family m ~name:"h" in
  Metrics.family_add c ~rank:3 4;
  Metrics.family_incr c ~rank:3;
  Metrics.incr m ~name:"c" ~rank:3;
  check int "family and named updates share cells" 6 (Metrics.counter m ~name:"c" ~rank:3);
  Metrics.family_set_gauge g ~rank:1 2.5;
  check (Alcotest.option (Alcotest.float 0.0)) "gauge through handle" (Some 2.5)
    (Metrics.gauge m ~name:"g" ~rank:1);
  check (Alcotest.option (Alcotest.float 0.0)) "family_gauge reads back" (Some 2.5)
    (Metrics.family_gauge g ~rank:1);
  Metrics.family_observe h ~rank:0 1.0;
  Metrics.observe m ~name:"h" ~rank:0 1.0;
  match Metrics.summary m ~name:"h" ~rank:0 with
  | Some s -> check int "observations share the histogram" 2 s.Metrics.n
  | None -> Alcotest.fail "no summary"

(* --- Series ---------------------------------------------------------------- *)

let snap_counter name rank v =
  { Metrics.snap_empty with Metrics.sn_counters = [ ((name, rank), v) ] }

let test_series_bounded_window () =
  let s = Series.create ~window:4 () in
  for e = 1 to 10 do
    Series.record s ~epoch:e (snap_counter "tx" 0 e)
  done;
  check int "last epoch" 10 (Series.last_epoch s);
  check int "epochs recorded" 10 (Series.epochs_recorded s);
  let pts = Series.points s ~name:"tx" in
  check int "window bounds retention" 4 (List.length pts);
  (match pts with
  | (e, Series.P_counter v) :: _ ->
    check int "oldest retained epoch" 7 e;
    check int "counter delta kept" 7 v
  | _ -> Alcotest.fail "expected counter points");
  check
    (Alcotest.list (Alcotest.pair int (Alcotest.float 0.0)))
    "tail scalars"
    [ (9, 9.0); (10, 10.0) ]
    (Series.tail_scalars s ~name:"tx" ~n:2)

let test_series_gauge_rollup_and_render () =
  let s = Series.create () in
  Series.record s ~epoch:1
    { Metrics.snap_empty with Metrics.sn_gauges = [ (("q", 1), 2.0); (("q", 2), 6.0) ] };
  (match Series.latest s ~name:"q" with
  | Some (1, Series.P_gauge g) ->
    check (Alcotest.float 0.0) "gauge min" 2.0 g.Series.gp_min;
    check (Alcotest.float 0.0) "gauge max" 6.0 g.Series.gp_max;
    check int "gauge n" 2 g.Series.gp_n
  | _ -> Alcotest.fail "expected gauge point");
  let csv = Series.to_csv s in
  check bool "csv has header" true
    (String.length csv > 0 && String.sub csv 0 6 = "metric");
  check bool "render_top mentions the metric" true
    (try
       ignore (Str.search_forward (Str.regexp_string "q") (Series.render_top s) 0);
       true
     with Not_found -> false)

(* --- Detectors ------------------------------------------------------------- *)

let test_detect_stragglers () =
  (* Median 1.0, MAD 0.0 floored at 1% of median: rank 7 at 10x is far
     beyond median + 4 * 0.01. *)
  let per_rank = [ (1, 1.0); (2, 1.0); (3, 1.0); (4, 1.0); (7, 10.0) ] in
  (match Detect.stragglers ~k:4.0 ~epoch:5 ~metric:"work" per_rank with
  | [ a ] ->
    check int "rank flagged" 7 a.Detect.al_rank;
    check int "epoch carried" 5 a.Detect.al_epoch;
    check string "metric carried" "work" a.Detect.al_metric;
    check bool "value above threshold" true (a.Detect.al_value > a.Detect.al_threshold)
  | l -> Alcotest.failf "expected one straggler, got %d" (List.length l));
  (* One-sided: a fast outlier is not an anomaly. *)
  check int "fast rank not flagged" 0
    (List.length
       (Detect.stragglers ~k:4.0 ~epoch:1 ~metric:"work"
          [ (1, 1.0); (2, 1.0); (3, 1.0); (4, 0.01) ]));
  (* Fewer than 3 ranks: no distribution, no alerts. *)
  check int "two ranks never alert" 0
    (List.length (Detect.stragglers ~k:4.0 ~epoch:1 ~metric:"work" [ (1, 1.0); (2, 100.0) ]))

let test_detect_queue_growth () =
  let rising = [ (1, 1.0); (2, 3.0); (3, 5.0); (4, 7.0) ] in
  check (Alcotest.float 1e-9) "least-squares slope" 2.0 (Detect.trend_slope rising);
  (match Detect.queue_growth ~slope_threshold:1.5 ~epoch:4 ~metric:"q" rising with
  | [ a ] ->
    check int "center-level rank" (-1) a.Detect.al_rank;
    check (Alcotest.float 1e-9) "slope reported" 2.0 a.Detect.al_value
  | l -> Alcotest.failf "expected one growth alert, got %d" (List.length l));
  check int "below threshold quiet" 0
    (List.length (Detect.queue_growth ~slope_threshold:2.5 ~epoch:4 ~metric:"q" rising));
  check int "too few points quiet" 0
    (List.length
       (Detect.queue_growth ~slope_threshold:0.1 ~epoch:2 ~metric:"q" [ (1, 0.0); (2, 9.0) ]))

let test_detect_silent_ranks () =
  match
    Detect.silent_ranks ~epoch:3 ~expected:[ 0; 1; 2; 3; 4 ] ~heard:[ 0; 2; 4 ] ~down:[ 3 ]
  with
  | [ a ] ->
    check int "unheard not-down rank" 1 a.Detect.al_rank;
    check bool "is silent kind" true (a.Detect.al_kind = Detect.Silent)
  | l -> Alcotest.failf "expected one silent alert, got %d" (List.length l)

(* --- Flight recorder -------------------------------------------------------- *)

let test_flight_ring_and_dedup () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  let f = Flight.create ~capacity:3 tr in
  for i = 1 to 5 do
    clock := float_of_int i;
    Tracer.emit tr ~cat:"w" ~name:"item" ~rank:2 ~fields:[ ("i", Json.int i) ] ();
    Tracer.emit tr ~cat:"w" ~name:"item" ~rank:4 ~fields:[ ("i", Json.int i) ] ()
  done;
  (* Per-rank rings are independent and capacity-bounded, oldest first. *)
  let ring = Flight.recent f ~rank:2 in
  check int "ring holds capacity" 3 (List.length ring);
  check int "oldest retained is i=3" 3
    (Json.to_int (List.assoc "i" (List.hd ring).Tracer.ev_fields));
  let d = Flight.dump f ~rank:4 ~reason:"test" in
  check int "dump rank" 4 d.Flight.d_rank;
  check int "dump events" 3 (List.length d.Flight.d_events);
  (* dump tags a flight.dump instant back into the tracer. *)
  check int "dump traced" 1 (Tracer.count tr ~cat:"flight" ~name:"dump");
  (* dump_once dedups per (rank, tag). *)
  check bool "first dump_once taken" true
    (Flight.dump_once f ~rank:2 ~tag:"straggler" ~reason:"alert" <> None);
  check bool "second dump_once suppressed" true
    (Flight.dump_once f ~rank:2 ~tag:"straggler" ~reason:"alert" = None);
  check bool "other tag still dumps" true
    (Flight.dump_once f ~rank:2 ~tag:"silent" ~reason:"alert" <> None);
  check int "dumps recorded" 3 (List.length (Flight.dumps f));
  (* The Perfetto export is well-formed JSON with one row per event. *)
  let doc = Json.of_string (Flight.dump_to_perfetto d) in
  check bool "perfetto rows" true
    (List.length (Json.to_list (Json.member "traceEvents" doc)) >= 3)

let test_tracer_overflow_surfaces_in_summary () =
  let tr = Tracer.create ~capacity:5 ~now:(fun () -> 0.0) () in
  for i = 1 to 9 do
    Tracer.emit tr ~cat:"c" ~name:"n" ~fields:[ ("i", Json.int i) ] ()
  done;
  (* Overflow is a first-class counter, not just a buffer statistic... *)
  check int "trace.dropped counter" 4 (Tracer.count tr ~cat:"trace" ~name:"dropped");
  (* ...and the human-facing summary warns that the stream is truncated. *)
  let s = Export.summary tr in
  check bool "summary flags the drop" true
    (try
       ignore (Str.search_forward (Str.regexp "4 events dropped") s 0);
       true
     with Not_found -> false)

(* --- End-to-end: the harness's fault scenarios ------------------------------ *)

let run_quiet cfg = KTelem.run cfg

let check_clean label (r : KTelem.report) =
  if r.KTelem.t_violations <> [] then
    Alcotest.failf "%s violations: %s" label (String.concat "; " r.KTelem.t_violations)

let test_harness_straggler_alert_within_two_epochs () =
  let r = run_quiet KTelem.straggler_case in
  check_clean "straggler" r;
  check bool "straggler alerts fired" true (r.KTelem.t_stragglers >= 1);
  check bool "alert within 2 epochs of onset" true
    (r.KTelem.t_first_straggler_epoch >= r.KTelem.t_onset_epoch
    && r.KTelem.t_first_straggler_epoch <= r.KTelem.t_onset_epoch + 2);
  check bool "rollups flowed in-band" true (r.KTelem.t_rollup_bytes > 0);
  check int "no late contributions dropped" 0 r.KTelem.t_late_drops

let test_harness_killed_rank_flight_dump () =
  let r = run_quiet KTelem.kill_case in
  check_clean "kill" r;
  check bool "victim dump captured its last events" true (r.KTelem.t_victim_dump_events > 0);
  check bool "a dump was recorded" true (r.KTelem.t_dumps >= 1)

let test_harness_silent_rank_detected () =
  let r = run_quiet KTelem.silent_case in
  check_clean "silent" r;
  check bool "silent alerts fired" true (r.KTelem.t_silent >= 1)

let test_harness_queue_growth_detected () =
  let r = run_quiet KTelem.growth_case in
  check_clean "growth" r;
  check bool "growth alerts fired" true (r.KTelem.t_growth >= 1)

let test_harness_deterministic () =
  let a = run_quiet KTelem.straggler_case in
  let b = run_quiet KTelem.straggler_case in
  check string "alert fingerprint identical" a.KTelem.t_alert_fingerprint
    b.KTelem.t_alert_fingerprint;
  check int "engine fingerprint identical" a.KTelem.t_events b.KTelem.t_events;
  check string "rollup series identical" (Series.to_csv a.KTelem.t_series)
    (Series.to_csv b.KTelem.t_series)

let test_harness_rejects_bad_config () =
  let expect_invalid label cfg =
    match KTelem.run cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "size" { KTelem.default with KTelem.size = 3 };
  expect_invalid "interval" { KTelem.default with KTelem.interval = 0.0 };
  expect_invalid "straggler rank" { KTelem.default with KTelem.straggler = Some (99, 10.0) };
  expect_invalid "straggler factor" { KTelem.default with KTelem.straggler = Some (5, 1.0) };
  expect_invalid "onset" { KTelem.default with KTelem.onset_frac = 1.0 };
  expect_invalid "kill rank" { KTelem.default with KTelem.kill = Some 0 }

let () =
  Alcotest.run "flux_telem"
    [
      ( "snapshot-algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_matches_oracle;
            prop_diff_then_merge_roundtrips;
            prop_codec_roundtrips;
            prop_snap_record_roundtrips;
          ]
        @ [
            Alcotest.test_case "rank-slice snapshot" `Quick test_rank_slice_snapshot;
            Alcotest.test_case "family handles alias named api" `Quick
              test_family_handles_alias_named_api;
          ] );
      ( "series",
        [
          Alcotest.test_case "bounded window" `Quick test_series_bounded_window;
          Alcotest.test_case "gauge rollup and render" `Quick test_series_gauge_rollup_and_render;
        ] );
      ( "detect",
        [
          Alcotest.test_case "stragglers" `Quick test_detect_stragglers;
          Alcotest.test_case "queue growth" `Quick test_detect_queue_growth;
          Alcotest.test_case "silent ranks" `Quick test_detect_silent_ranks;
        ] );
      ( "flight",
        [
          Alcotest.test_case "per-rank rings and dedup" `Quick test_flight_ring_and_dedup;
          Alcotest.test_case "tracer overflow in summary" `Quick
            test_tracer_overflow_surfaces_in_summary;
        ] );
      ( "harness",
        [
          Alcotest.test_case "straggler alert within 2 epochs" `Quick
            test_harness_straggler_alert_within_two_epochs;
          Alcotest.test_case "killed rank flight dump" `Quick test_harness_killed_rank_flight_dump;
          Alcotest.test_case "silent rank detected" `Quick test_harness_silent_rank_detected;
          Alcotest.test_case "queue growth detected" `Quick test_harness_queue_growth_detected;
          Alcotest.test_case "same seed, same alerts" `Quick test_harness_deterministic;
          Alcotest.test_case "config validation" `Quick test_harness_rejects_bad_config;
        ] );
    ]
