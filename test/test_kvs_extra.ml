(* Additional KVS coverage: mput, inline-vs-reference storage, watches,
   version waiters, and fence edge cases. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Ivar = Flux_sim.Ivar
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let json_t = Alcotest.testable Json.pp Json.equal

let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

let make_world ?(size = 15) () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size () in
  let kvs = Kvs.load sess () in
  (eng, sess, kvs)

let run_clients eng bodies =
  let remaining = ref (List.length bodies) in
  List.iter
    (fun body ->
      ignore
        (Proc.spawn eng (fun () ->
             body ();
             decr remaining)))
    bodies;
  Engine.run eng;
  if !remaining <> 0 then Alcotest.failf "%d clients did not complete" !remaining

(* --- mput ------------------------------------------------------------------ *)

let test_mput_atomic_batch () =
  let eng, sess, kvs = make_world () in
  run_clients eng
    [
      (fun () ->
        let api = Api.connect sess ~rank:9 in
        let bindings =
          Json.list
            (List.init 5 (fun i ->
                 Json.obj
                   [
                     ("key", Json.string (Printf.sprintf "mp.k%d" i)); ("v", Json.int (i * i));
                   ]))
        in
        (match Api.rpc api ~topic:"kvs.mput" (Json.obj [ ("bindings", bindings) ]) with
        | Ok reply -> check int "single version bump" 1 (Json.to_int (Json.member "version" reply))
        | Error e -> Alcotest.failf "mput: %s" e);
        let c = Client.connect sess ~rank:3 in
        expect_ok "wait" (Client.wait_version c 1);
        for i = 0 to 4 do
          check json_t
            (Printf.sprintf "mp.k%d" i)
            (Json.int (i * i))
            (expect_ok "get" (Client.get c ~key:(Printf.sprintf "mp.k%d" i)))
        done);
    ];
  check int "master version" 1 (Kvs.version kvs.(0))

(* --- Inline vs by-reference storage ------------------------------------------- *)

let test_inline_threshold_behaviour () =
  (* Small values live inside directory entries (reading them costs only
     the directory fault); large values are separate objects (one more
     fault). Observed through the slave's load counter. *)
  let count_loads vsize =
    let eng, sess, kvs = make_world ~size:7 () in
    run_clients eng
      [
        (fun () ->
          let w = Client.connect sess ~rank:0 in
          expect_ok "put" (Client.put w ~key:"t.k" (Json.pad vsize));
          ignore (expect_ok "commit" (Client.commit w) : int);
          let r = Client.connect sess ~rank:6 in
          expect_ok "wait" (Client.wait_version r 1);
          check json_t "value intact" (Json.pad vsize) (expect_ok "get" (Client.get r ~key:"t.k")));
      ];
    Kvs.loads_issued kvs.(6)
  in
  let small = count_loads 64 in
  let large = count_loads 4096 in
  check int "small value: root + t dir only" 2 small;
  check int "large value: one extra fault for the object" 3 large

(* --- getroot and versions -------------------------------------------------------- *)

let test_getroot_reports_master_state () =
  let eng, sess, _ = make_world ~size:3 () in
  run_clients eng
    [
      (fun () ->
        let api = Api.connect sess ~rank:2 in
        let before =
          match Api.rpc api ~topic:"kvs.getroot" Json.null with
          | Ok p -> Json.to_string_v (Json.member "rootref" p)
          | Error e -> Alcotest.failf "getroot: %s" e
        in
        let c = Client.connect sess ~rank:2 in
        expect_ok "put" (Client.put c ~key:"gr.k" (Json.int 1));
        ignore (expect_ok "commit" (Client.commit c) : int);
        let after =
          match Api.rpc api ~topic:"kvs.getroot" Json.null with
          | Ok p -> Json.to_string_v (Json.member "rootref" p)
          | Error e -> Alcotest.failf "getroot: %s" e
        in
        check bool "root reference changed" true (before <> after));
    ]

let test_multiple_version_waiters () =
  let eng, sess, _ = make_world ~size:7 () in
  let woken = ref [] in
  let bodies =
    List.map
      (fun target () ->
        let c = Client.connect sess ~rank:5 in
        expect_ok "wait" (Client.wait_version c target);
        woken := target :: !woken)
      [ 1; 2; 3 ]
    @ [
        (fun () ->
          let c = Client.connect sess ~rank:1 in
          for i = 1 to 3 do
            Proc.sleep 0.01;
            expect_ok "put" (Client.put c ~key:(Printf.sprintf "vw.k%d" i) (Json.int i));
            ignore (expect_ok "commit" (Client.commit c) : int)
          done);
      ]
  in
  run_clients eng bodies;
  check (Alcotest.list int) "waiters woken in version order" [ 1; 2; 3 ] (List.rev !woken)

(* --- Watches ------------------------------------------------------------------------ *)

let test_unwatch_stops_callbacks () =
  let eng, sess, _ = make_world ~size:3 () in
  let fired = ref 0 in
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:2 in
        expect_ok "watch" (Client.watch c ~key:"uw.k" (fun _ -> incr fired));
        Proc.sleep 0.3;
        Client.unwatch c ~key:"uw.k";
        Proc.sleep 0.3);
      (fun () ->
        let c = Client.connect sess ~rank:1 in
        Proc.sleep 0.1;
        expect_ok "put1" (Client.put c ~key:"uw.k" (Json.int 1));
        ignore (expect_ok "commit1" (Client.commit c) : int);
        (* This change lands after the unwatch. *)
        Proc.sleep 0.4;
        expect_ok "put2" (Client.put c ~key:"uw.k" (Json.int 2));
        ignore (expect_ok "commit2" (Client.commit c) : int));
    ];
  (* initial None + first change only *)
  check int "no callbacks after unwatch" 2 !fired

(* --- Fence edge cases ------------------------------------------------------------------ *)

let test_fence_single_participant () =
  let eng, sess, _ = make_world ~size:7 () in
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:6 in
        expect_ok "put" (Client.put c ~key:"solo.k" (Json.int 1));
        let v = expect_ok "fence" (Client.fence c ~name:"solo" ~nprocs:1) in
        check int "committed" 1 v;
        check json_t "visible" (Json.int 1) (expect_ok "get" (Client.get c ~key:"solo.k")));
    ]

let test_two_fences_interleaved () =
  (* Two independent fences with different participant sets complete
     independently and both data sets land. *)
  let eng, sess, _ = make_world ~size:7 () in
  let bodies =
    List.map
      (fun r () ->
        let c = Client.connect sess ~rank:r in
        expect_ok "put" (Client.put c ~key:(Printf.sprintf "fa.k%d" r) (Json.int r));
        ignore (expect_ok "fence" (Client.fence c ~name:"fa" ~nprocs:3) : int))
      [ 0; 2; 4 ]
    @ List.map
        (fun r () ->
          let c = Client.connect sess ~rank:r in
          expect_ok "put" (Client.put c ~key:(Printf.sprintf "fb.k%d" r) (Json.int (100 + r)));
          ignore (expect_ok "fence" (Client.fence c ~name:"fb" ~nprocs:3) : int))
        [ 1; 3; 5 ]
  in
  run_clients eng bodies;
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:6 in
        expect_ok "wait" (Client.wait_version c 2);
        List.iter
          (fun r ->
            check json_t "fa data" (Json.int r)
              (expect_ok "get" (Client.get c ~key:(Printf.sprintf "fa.k%d" r))))
          [ 0; 2; 4 ];
        List.iter
          (fun r ->
            check json_t "fb data"
              (Json.int (100 + r))
              (expect_ok "get" (Client.get c ~key:(Printf.sprintf "fb.k%d" r))))
          [ 1; 3; 5 ]);
    ]

let test_fence_abort_then_retry () =
  (* A timed-out fence is aborted up the tree, clearing the name's
     parked aggregation state at every hop — so once all participants
     are actually ready, the same name completes fresh. *)
  let eng, sess, _ = make_world ~size:7 () in
  let release = Ivar.create () in
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:3 in
        expect_ok "put" (Client.put c ~key:"ar.k3" (Json.int 3));
        (match Client.fence c ~name:"ar.fence" ~nprocs:2 ~timeout:0.5 with
        | Ok _ -> Alcotest.fail "fence completed without its peer"
        | Error _ -> Client.abort c);
        (* Let the abort finish propagating before reusing the name. *)
        Proc.sleep 0.1;
        Ivar.fill eng release ();
        expect_ok "put again" (Client.put c ~key:"ar.k3" (Json.int 3));
        ignore (expect_ok "retry fence" (Client.fence c ~name:"ar.fence" ~nprocs:2) : int));
      (fun () ->
        Proc.await release;
        let c = Client.connect sess ~rank:5 in
        expect_ok "put" (Client.put c ~key:"ar.k5" (Json.int 5));
        ignore (expect_ok "peer fence" (Client.fence c ~name:"ar.fence" ~nprocs:2) : int));
    ];
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:1 in
        expect_ok "wait" (Client.wait_version c 1);
        check json_t "k3 committed" (Json.int 3) (expect_ok "get" (Client.get c ~key:"ar.k3"));
        check json_t "k5 committed" (Json.int 5) (expect_ok "get" (Client.get c ~key:"ar.k5")));
    ]

let test_fence_abort_unparks_peer () =
  (* When one participant abandons the fence, peers parked on it get a
     structured "fence aborted" error instead of hanging forever. *)
  let eng, sess, _ = make_world ~size:7 () in
  let peer_result = ref None in
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:3 in
        expect_ok "put" (Client.put c ~key:"au.k3" (Json.int 3));
        (match Client.fence c ~name:"au.fence" ~nprocs:3 ~timeout:0.5 with
        | Ok _ -> Alcotest.fail "fence completed without its peers"
        | Error _ -> Client.abort c));
      (fun () ->
        let c = Client.connect sess ~rank:5 in
        expect_ok "put" (Client.put c ~key:"au.k5" (Json.int 5));
        (* No timeout: only the propagated abort can release this one. *)
        peer_result := Some (Client.fence c ~name:"au.fence" ~nprocs:3));
    ];
  let contains_abort e =
    let marker = "fence aborted" in
    let n = String.length marker and m = String.length e in
    let rec at i = i + n <= m && (String.equal (String.sub e i n) marker || at (i + 1)) in
    at 0
  in
  match !peer_result with
  | Some (Error e) ->
    check bool (Printf.sprintf "abort error surfaced (got %S)" e) true (contains_abort e)
  | Some (Ok _) -> Alcotest.fail "parked peer completed a fence that was aborted"
  | None -> Alcotest.fail "parked peer still blocked after abort"

let test_snapshot_isolation_during_update () =
  (* A get pinned to the old root mid-commit still resolves from the old
     snapshot: old and new objects coexist (atomic root switch). *)
  let eng, sess, _ = make_world ~size:7 () in
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:4 in
        expect_ok "put" (Client.put c ~key:"si.k" (Json.int 1));
        ignore (expect_ok "commit" (Client.commit c) : int);
        check json_t "v1" (Json.int 1) (expect_ok "get" (Client.get c ~key:"si.k"));
        expect_ok "put2" (Client.put c ~key:"si.k" (Json.int 2));
        ignore (expect_ok "commit2" (Client.commit c) : int);
        check json_t "v2" (Json.int 2) (expect_ok "get" (Client.get c ~key:"si.k")));
    ]

let () =
  Alcotest.run "flux_kvs_extra"
    [
      ("mput", [ Alcotest.test_case "atomic batch" `Quick test_mput_atomic_batch ]);
      ( "storage",
        [ Alcotest.test_case "inline threshold" `Quick test_inline_threshold_behaviour ] );
      ( "versions",
        [
          Alcotest.test_case "getroot" `Quick test_getroot_reports_master_state;
          Alcotest.test_case "multiple waiters" `Quick test_multiple_version_waiters;
        ] );
      ("watch", [ Alcotest.test_case "unwatch" `Quick test_unwatch_stops_callbacks ]);
      ( "fence",
        [
          Alcotest.test_case "single participant" `Quick test_fence_single_participant;
          Alcotest.test_case "two fences interleaved" `Quick test_two_fences_interleaved;
          Alcotest.test_case "abort then retry same name" `Quick test_fence_abort_then_retry;
          Alcotest.test_case "abort unparks peer" `Quick test_fence_abort_unparks_peer;
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation_during_update;
        ] );
    ]
