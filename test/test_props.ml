(* Model-checked property tests for the structures the engine's hot
   paths lean on: the stable heap (now with in-place filtering), the LRU
   cache with its eviction-hook byte accounting, and the tree-rank
   arithmetic. Each structure is driven with random operation sequences
   and compared against a transparent reference implementation. *)

module Heap = Flux_util.Heap
module Lru = Flux_util.Lru
module Treemath = Flux_util.Treemath

(* --- Heap vs stable-sort reference ----------------------------------- *)

(* Reference: the pop order of a stable heap is exactly the stable sort
   of the pushed elements by priority (ties broken by insertion order).
   Priorities are drawn from a tiny range so ties are common. *)

type heap_op = Push of float | Pop

let heap_op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun p -> Push (float_of_int p)) (int_range 0 4)); (1, return Pop) ])

let heap_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Push p -> Printf.sprintf "push %g" p | Pop -> "pop") ops))
    QCheck.Gen.(list_size (int_range 0 200) heap_op_gen)

(* The reference holds (prio, seq) pairs; the minimum under lexicographic
   order is what a stable heap must pop. *)
let ref_pop entries =
  match List.sort compare entries with
  | [] -> (None, entries)
  | ((_, _, _) as e) :: _ -> (Some e, List.filter (fun x -> x <> e) entries)

let prop_heap_matches_stable_sort =
  QCheck.Test.make ~name:"heap pop order = stable sort under push/pop interleaving"
    ~count:500 heap_ops_arb (fun ops ->
      let h = Heap.create () in
      let seq = ref 0 in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (function
          | Push p ->
            Heap.push h p !seq;
            model := (p, !seq, !seq) :: !model;
            incr seq
          | Pop -> (
            let expected, rest = ref_pop !model in
            model := rest;
            match (Heap.pop h, expected) with
            | None, None -> ()
            | Some (p, v), Some (ep, _, ev) -> if not (p = ep && v = ev) then ok := false
            | Some _, None | None, Some _ -> ok := false))
        ops;
      (* Drain whatever is left; order must still match. *)
      let rec drain () =
        let expected, rest = ref_pop !model in
        model := rest;
        match (Heap.pop h, expected) with
        | None, None -> ()
        | Some (p, v), Some (ep, _, ev) ->
          if p = ep && v = ev then drain () else ok := false
        | Some _, None | None, Some _ -> ok := false
      in
      drain ();
      !ok)

let prop_heap_filter_preserves_order =
  QCheck.Test.make
    ~name:"heap filter keeps survivors' stable pop order" ~count:300
    QCheck.(list (pair (int_range 0 4) small_nat))
    (fun pushes ->
      let h = Heap.create () in
      List.iteri (fun i (p, v) -> Heap.push h (float_of_int p) (i, v)) pushes;
      let keep (_, v) = v mod 2 = 0 in
      Heap.filter h keep;
      let expected =
        (* stable sort of the kept entries by (prio, insertion index) *)
        List.mapi (fun i (p, v) -> (float_of_int p, i, v)) pushes
        |> List.filter (fun (_, _, v) -> v mod 2 = 0)
        |> List.sort compare
        |> List.map (fun (p, i, v) -> (p, (i, v)))
      in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some e -> drain (e :: acc)
      in
      drain [] = expected)

(* --- Lru vs assoc-list reference -------------------------------------- *)

(* Reference model: an assoc list in most-recent-first order, plus the
   byte accounting the KVS slave caches layer on top of the eviction
   hook — bytes_held must always equal the sum over the live entries. *)

type lru_op = L_put of string * int | L_find of string | L_mem of string | L_rem of string

let lru_key_gen = QCheck.Gen.(map (fun i -> Printf.sprintf "k%d" i) (int_range 0 9))

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> L_put (k, v)) lru_key_gen (int_range 1 100));
        (2, map (fun k -> L_find k) lru_key_gen);
        (1, map (fun k -> L_mem k) lru_key_gen);
        (1, map (fun k -> L_rem k) lru_key_gen);
      ])

let lru_ops_arb =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "cap=%d [%s]" cap
        (String.concat ";"
           (List.map
              (function
                | L_put (k, v) -> Printf.sprintf "put %s %d" k v
                | L_find k -> "find " ^ k
                | L_mem k -> "mem " ^ k
                | L_rem k -> "rem " ^ k)
              ops)))
    QCheck.Gen.(pair (int_range 1 6) (list_size (int_range 0 120) lru_op_gen))

let prop_lru_model =
  QCheck.Test.make ~name:"lru matches assoc-list model (incl. byte accounting)"
    ~count:500 lru_ops_arb (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      let bytes = ref 0 in
      Lru.set_on_evict c (fun _k v -> bytes := !bytes - v);
      (* most-recent-first assoc list *)
      let model = ref [] in
      let model_bytes = ref 0 in
      let ok = ref true in
      let model_evictions = ref 0 in
      let model_put k v =
        (match List.assoc_opt k !model with
        | Some old ->
          model_bytes := !model_bytes - old;
          model := List.remove_assoc k !model
        | None -> ());
        model := (k, v) :: !model;
        model_bytes := !model_bytes + v;
        if List.length !model > cap then begin
          match List.rev !model with
          | (lk, lv) :: _ ->
            model := List.remove_assoc lk !model;
            model_bytes := !model_bytes - lv;
            incr model_evictions
          | [] -> ()
        end
      in
      List.iter
        (function
          | L_put (k, v) ->
            (* Mirror the KVS cache_put accounting: subtract the replaced
               value up front, add the new one; the eviction hook covers
               the capacity-eviction path. *)
            (match Lru.find c k with
            | Some old -> bytes := !bytes - old
            | None -> ());
            (match List.assoc_opt k !model with
            | Some _ ->
              (* the probe above refreshed recency in both worlds *)
              let v0 = List.assoc k !model in
              model := (k, v0) :: List.remove_assoc k !model
            | None -> ());
            Lru.put c k v;
            bytes := !bytes + v;
            model_put k v
          | L_find k -> (
            let got = Lru.find c k in
            let want = List.assoc_opt k !model in
            if got <> want then ok := false;
            match want with
            | Some v -> model := (k, v) :: List.remove_assoc k !model
            | None -> ())
          | L_mem k -> if Lru.mem c k <> List.mem_assoc k !model then ok := false
          | L_rem k ->
            Lru.remove c k;
            (match List.assoc_opt k !model with
            | Some v -> model_bytes := !model_bytes - v
            | None -> ());
            model := List.remove_assoc k !model)
        ops;
      (* Final-state agreement: contents, recency order, counters, bytes. *)
      let contents = ref [] in
      Lru.iter (fun k v -> contents := (k, v) :: !contents) c;
      let contents = List.rev !contents in
      !ok && contents = !model
      && Lru.length c = List.length !model
      && Lru.evictions c = !model_evictions
      && !bytes = !model_bytes
      && !model_bytes = List.fold_left (fun a (_, v) -> a + v) 0 !model)

(* --- Treemath round trips ---------------------------------------------- *)

let tree_arb =
  QCheck.make
    ~print:(fun (k, size) -> Printf.sprintf "k=%d size=%d" k size)
    QCheck.Gen.(pair (int_range 2 9) (int_range 1 400))

let prop_tree_children_of_parent =
  QCheck.Test.make ~name:"every rank appears in its parent's child list"
    ~count:200 tree_arb (fun (k, size) ->
      List.for_all
        (fun r ->
          match Treemath.parent ~k r with
          | None -> r = 0
          | Some p -> List.mem r (Treemath.children ~k ~size p))
        (List.init size Fun.id))

let prop_tree_parent_of_children =
  QCheck.Test.make ~name:"every child's parent points back" ~count:200 tree_arb
    (fun (k, size) ->
      List.for_all
        (fun r ->
          List.for_all
            (fun c -> c < size && c > r && Treemath.parent ~k c = Some r)
            (Treemath.children ~k ~size r))
        (List.init size Fun.id))

let prop_tree_partition =
  QCheck.Test.make ~name:"child lists partition ranks 1..size-1" ~count:100 tree_arb
    (fun (k, size) ->
      let seen = Array.make size 0 in
      List.iter
        (fun r ->
          List.iter (fun c -> seen.(c) <- seen.(c) + 1) (Treemath.children ~k ~size r))
        (List.init size Fun.id);
      seen.(0) = 0 && Array.for_all (fun n -> n = 1) (Array.sub seen 1 (size - 1)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "flux_props"
    [
      qsuite "heap-model" [ prop_heap_matches_stable_sort; prop_heap_filter_preserves_order ];
      qsuite "lru-model" [ prop_lru_model ];
      qsuite "treemath-model"
        [ prop_tree_children_of_parent; prop_tree_parent_of_children; prop_tree_partition ];
    ]
