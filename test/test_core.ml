(* Tests for the Flux core: resource model, jobspecs, jobs, pools,
   policies, hierarchical instances, elasticity, power capping, PMI and
   the centralized baseline. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Rng = Flux_util.Rng
module Resource = Flux_core.Resource
module Jobspec = Flux_core.Jobspec
module Job = Flux_core.Job
module Pool = Flux_core.Pool
module Policy = Flux_core.Policy
module Instance = Flux_core.Instance
module Center = Flux_core.Center
module Workload = Flux_core.Workload
module Pmi = Flux_core.Pmi
module Central = Flux_baseline.Central
module Wexec = Flux_modules.Wexec

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let flt = Alcotest.float 1e-9

(* --- Resource model ----------------------------------------------------- *)

let sample_center () =
  Resource.center ~name:"llnl"
    [
      Resource.cluster ~nnodes:64 ~power_watts:50_000.0 ~name:"zin" ();
      Resource.cluster ~nnodes:32 ~name:"cab" ();
      Resource.filesystem ~bandwidth_gbs:500.0 ~name:"lscratch" ();
    ]

let test_resource_counts () =
  let c = sample_center () in
  check int "nodes" 96 (Resource.count Resource.Node c);
  check int "clusters" 2 (Resource.count Resource.Cluster c);
  check int "cores" (96 * 16) (Resource.count Resource.Core c);
  check flt "power" 50_000.0 (Resource.total_quantity Resource.Power c);
  check flt "fs bandwidth" 500.0 (Resource.total_quantity Resource.Bandwidth c);
  check flt "memory" (96.0 *. 32.0) (Resource.total_quantity Resource.Memory c);
  check bool "depth >= 4" true (Resource.depth c >= 4)

let test_resource_find () =
  let c = sample_center () in
  (match Resource.find_by_name "zin12" c with
  | Some v -> check bool "found a node" true (v.Resource.rtype = Resource.Node)
  | None -> Alcotest.fail "zin12 missing");
  check int "nodes_of" 96 (List.length (Resource.nodes_of c))

let test_resource_unique_ids () =
  let c = sample_center () in
  let ids = List.map (fun v -> v.Resource.id) (Resource.find_all (fun _ -> true) c) in
  check int "ids unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_resource_json_roundtrip () =
  let c = sample_center () in
  let c' = Resource.of_json (Resource.to_json c) in
  check int "same node count" (Resource.count Resource.Node c)
    (Resource.count Resource.Node c');
  check flt "same power" 50_000.0 (Resource.total_quantity Resource.Power c')

(* --- Jobspec -------------------------------------------------------------- *)

let test_jobspec () =
  let s = Jobspec.make ~nnodes:4 ~power_per_node:100.0 () in
  check flt "power needed" 400.0 (Jobspec.power_needed s ~nnodes:4);
  check int "min rigid" 4 (Jobspec.min_nodes s);
  let m = Jobspec.make ~nnodes:4 ~elasticity:(Jobspec.Moldable (2, 8)) () in
  check int "min moldable" 2 (Jobspec.min_nodes m);
  check int "max moldable" 8 (Jobspec.max_nodes m);
  (match Jobspec.validate (Jobspec.make ~nnodes:0 ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid");
  match Jobspec.validate (Jobspec.make ~nnodes:10 ~elasticity:(Jobspec.Moldable (2, 8)) ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "nnodes outside bounds must fail"

(* --- Job state machine ------------------------------------------------------ *)

let test_job_transitions () =
  let j =
    Job.create ~jid:"t1" ~spec:(Jobspec.make ~nnodes:1 ()) ~payload:(Job.Sleep 1.0) ~now:0.0
  in
  Job.set_state j ~now:1.0 Job.Allocated;
  Job.set_state j ~now:2.0 Job.Running;
  Job.set_state j ~now:10.0 Job.Complete;
  check flt "wait" 2.0 (Job.wait_time j);
  check flt "turnaround" 10.0 (Job.turnaround j);
  check flt "runtime" 8.0 (Job.runtime j);
  let j2 =
    Job.create ~jid:"t2" ~spec:(Jobspec.make ~nnodes:1 ()) ~payload:(Job.Sleep 1.0) ~now:0.0
  in
  Alcotest.check_raises "illegal transition"
    (Invalid_argument "Job.set_state: illegal transition pending -> complete for t2")
    (fun () -> Job.set_state j2 ~now:1.0 Job.Complete)

(* --- Pool --------------------------------------------------------------------- *)

let test_pool_grant_release () =
  let p = Pool.create ~nodes:[ 0; 1; 2; 3 ] () in
  let spec = Jobspec.make ~nnodes:3 () in
  (match Pool.try_grant p ~spec ~nnodes:3 with
  | Some g ->
    check int "granted" 3 (List.length g.Pool.g_nodes);
    check int "free after" 1 (Pool.free_nodes p);
    (match Pool.try_grant p ~spec ~nnodes:2 with
    | Some _ -> Alcotest.fail "overallocation"
    | None -> ());
    Pool.release p g;
    check int "free restored" 4 (Pool.free_nodes p)
  | None -> Alcotest.fail "grant failed")

let test_pool_power_constraint () =
  let p = Pool.create ~nodes:[ 0; 1; 2; 3 ] ~power_budget:500.0 () in
  let spec = Jobspec.make ~nnodes:2 ~power_per_node:200.0 () in
  (match Pool.try_grant p ~spec ~nnodes:2 with
  | Some _ -> check flt "power used" 400.0 (Pool.power_in_use p)
  | None -> Alcotest.fail "should fit");
  (* 2 nodes free but only 100 W headroom. *)
  match Pool.try_grant p ~spec ~nnodes:2 with
  | Some _ -> Alcotest.fail "power overcommitted"
  | None -> ()

let test_pool_bandwidth_constraint () =
  let p = Pool.create ~nodes:[ 0; 1; 2; 3 ] ~fs_bandwidth:10.0 () in
  let spec = Jobspec.make ~nnodes:1 ~fs_bandwidth:6.0 () in
  (match Pool.try_grant p ~spec ~nnodes:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "first io job fits");
  match Pool.try_grant p ~spec ~nnodes:1 with
  | Some _ -> Alcotest.fail "bandwidth overcommitted"
  | None -> ()

let test_pool_double_release () =
  let p = Pool.create ~nodes:[ 0; 1 ] () in
  match Pool.try_grant p ~spec:(Jobspec.make ~nnodes:1 ()) ~nnodes:1 with
  | Some g ->
    Pool.release p g;
    Alcotest.check_raises "double release"
      (Invalid_argument "Pool.release: node 0 not outstanding") (fun () -> Pool.release p g)
  | None -> Alcotest.fail "grant failed"

let test_pool_donate_absorb () =
  let p = Pool.create ~nodes:[ 0; 1; 2; 3 ] () in
  let got = Pool.donate_nodes p 2 in
  check int "donated" 2 (List.length got);
  check int "membership shrank" 2 (Pool.total_nodes p);
  Pool.absorb_nodes p got;
  check int "membership restored" 4 (Pool.total_nodes p);
  check int "free restored" 4 (Pool.free_nodes p)

(* --- Policies -------------------------------------------------------------------- *)

let mk_job jid nnodes est =
  Job.create ~jid ~spec:(Jobspec.make ~nnodes ~walltime_est:est ())
    ~payload:(Job.Sleep est) ~now:0.0

let test_fcfs_strict () =
  let pool = Pool.create ~nodes:[ 0; 1; 2; 3 ] () in
  let q = [ mk_job "a" 2 10.0; mk_job "b" 8 10.0; mk_job "c" 1 10.0 ] in
  let starts = Policy.Fcfs.schedule ~now:0.0 ~pool ~queue:q ~running:[] in
  (* "a" fits; "b" blocks; "c" must NOT overtake. *)
  check (Alcotest.list Alcotest.string) "only head run"
    [ "a" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

let test_easy_backfill_jumps () =
  let pool = Pool.create ~nodes:[ 0; 1; 2; 3 ] () in
  (* Running job holds 2 nodes until t=100 (estimate). Head job wants
     4 nodes -> shadow at t=100. A 30s 2-node job can backfill; a 200s
     2-node job would delay the head and must not start. *)
  let running_job = mk_job "r" 2 100.0 in
  Job.set_state running_job ~now:0.0 Job.Allocated;
  Job.set_state running_job ~now:0.0 Job.Running;
  let grant =
    match Pool.try_grant pool ~spec:running_job.Job.spec ~nnodes:2 with
    | Some g -> g
    | None -> Alcotest.fail "setup grant"
  in
  let head = mk_job "head" 4 50.0 in
  let short = mk_job "short" 2 30.0 in
  let long = mk_job "long" 2 200.0 in
  let starts =
    Policy.Easy_backfill.schedule ~now:0.0 ~pool ~queue:[ head; long; short ]
      ~running:[ (running_job, grant) ]
  in
  check (Alcotest.list Alcotest.string) "short backfills, long does not"
    [ "short" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

let test_moldable_shrinks () =
  let pool = Pool.create ~nodes:[ 0; 1; 2 ] () in
  let j =
    Job.create ~jid:"m"
      ~spec:(Jobspec.make ~nnodes:8 ~elasticity:(Jobspec.Moldable (2, 8)) ())
      ~payload:(Job.Sleep 10.0) ~now:0.0
  in
  let starts = Policy.Fcfs_moldable.schedule ~now:0.0 ~pool ~queue:[ j ] ~running:[] in
  match starts with
  | [ s ] -> check int "shrunk to fit" 3 s.Policy.s_nnodes
  | _ -> Alcotest.fail "expected one start"

let test_easy_backfill_spare_nodes () =
  (* Beyond the reservation, spare capacity at shadow time may run jobs
     that outlive the shadow. 8 nodes; 4 running till t=100; head wants
     6 -> shadow at 100 with 8-6=2 spare; a 2-node 500s job may start. *)
  let pool = Pool.create ~nodes:(List.init 8 Fun.id) () in
  let running_job = mk_job "r" 4 100.0 in
  Job.set_state running_job ~now:0.0 Job.Allocated;
  Job.set_state running_job ~now:0.0 Job.Running;
  let grant =
    match Pool.try_grant pool ~spec:running_job.Job.spec ~nnodes:4 with
    | Some g -> g
    | None -> Alcotest.fail "setup grant"
  in
  let head = mk_job "head" 6 50.0 in
  let long_small = mk_job "long-small" 2 500.0 in
  let long_big = mk_job "long-big" 4 500.0 in
  let starts =
    Policy.Easy_backfill.schedule ~now:0.0 ~pool ~queue:[ head; long_big; long_small ]
      ~running:[ (running_job, grant) ]
  in
  check (Alcotest.list Alcotest.string) "only the spare-sized job backfills"
    [ "long-small" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

let test_easy_backfill_empty_pool_no_starts () =
  let pool = Pool.create ~nodes:[ 0 ] () in
  let head = mk_job "head" 1 10.0 in
  let g =
    match Pool.try_grant pool ~spec:(Jobspec.make ~nnodes:1 ()) ~nnodes:1 with
    | Some g -> g
    | None -> Alcotest.fail "setup"
  in
  let holder = mk_job "holder" 1 50.0 in
  Job.set_state holder ~now:0.0 Job.Allocated;
  Job.set_state holder ~now:0.0 Job.Running;
  let starts =
    Policy.Easy_backfill.schedule ~now:0.0 ~pool ~queue:[ head ] ~running:[ (holder, g) ]
  in
  check int "nothing can start" 0 (List.length starts)

let test_policy_unknown_name () =
  Alcotest.check_raises "unknown policy" (Invalid_argument "Policy.by_name: unknown policy \"lifo\"")
    (fun () -> ignore (Policy.by_name "lifo"))

let test_priority_policy () =
  let pool = Pool.create ~nodes:[ 0; 1 ] () in
  let mk jid pr =
    Job.create ~jid ~spec:(Jobspec.make ~nnodes:2 ~priority:pr ()) ~payload:(Job.Sleep 1.0)
      ~now:0.0
  in
  let starts =
    Policy.Priority.schedule ~now:0.0 ~pool
      ~queue:[ mk "low" 0; mk "urgent" 10; mk "mid" 5 ]
      ~running:[]
  in
  check (Alcotest.list Alcotest.string) "highest priority first" [ "urgent" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

let test_priority_stable_ties () =
  let pool = Pool.create ~nodes:[ 0; 1; 2; 3 ] () in
  let mk jid = mk_job jid 1 10.0 in
  let starts =
    Policy.Priority.schedule ~now:0.0 ~pool ~queue:[ mk "a"; mk "b"; mk "c" ] ~running:[]
  in
  check (Alcotest.list Alcotest.string) "submission order kept" [ "a"; "b"; "c" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

let test_fair_share_policy () =
  let pool = Pool.create ~nodes:(List.init 8 Fun.id) () in
  (* alice already holds 4 nodes; queued: alice then bob (2 nodes each);
     only bob's fits fairness-first ordering. *)
  let alice_running =
    Job.create ~jid:"ar" ~spec:(Jobspec.make ~nnodes:4 ~user:"alice" ())
      ~payload:(Job.Sleep 100.0) ~now:0.0
  in
  Job.set_state alice_running ~now:0.0 Job.Allocated;
  Job.set_state alice_running ~now:0.0 Job.Running;
  let grant =
    match Pool.try_grant pool ~spec:alice_running.Job.spec ~nnodes:4 with
    | Some g -> g
    | None -> Alcotest.fail "setup"
  in
  let q_alice =
    Job.create ~jid:"qa" ~spec:(Jobspec.make ~nnodes:4 ~user:"alice" ())
      ~payload:(Job.Sleep 1.0) ~now:0.0
  in
  let q_bob =
    Job.create ~jid:"qb" ~spec:(Jobspec.make ~nnodes:4 ~user:"bob" ())
      ~payload:(Job.Sleep 1.0) ~now:0.0
  in
  let starts =
    Policy.Fair_share.schedule ~now:0.0 ~pool ~queue:[ q_alice; q_bob ]
      ~running:[ (alice_running, grant) ]
  in
  check (Alcotest.list Alcotest.string) "bob jumps the hogging user" [ "qb" ]
    (List.map (fun s -> s.Policy.s_job.Job.jid) starts)

(* --- Resource matching ------------------------------------------------------------- *)

module Rmatch = Flux_core.Rmatch

let hetero_center () =
  (* One rack of 4 fat nodes (64 GB) and two racks of 4 thin nodes. *)
  Resource.center ~name:"hc"
    [
      Resource.rack
        ~nodes:
          (List.init 4 (fun i ->
               Resource.node ~memory_gb:64.0 ~name:(Printf.sprintf "fat%d" i) ()))
        ~name:"rack-fat" ();
      Resource.rack
        ~nodes:
          (List.init 4 (fun i ->
               Resource.node ~memory_gb:16.0 ~name:(Printf.sprintf "thin%d" i) ()))
        ~name:"rack-thin0" ();
      Resource.rack
        ~nodes:
          (List.init 4 (fun i ->
               Resource.node ~memory_gb:16.0 ~name:(Printf.sprintf "thin%d" (4 + i)) ()))
        ~name:"rack-thin1" ();
    ]

let test_rmatch_memory_constraint () =
  let c = hetero_center () in
  let spec = Jobspec.make ~nnodes:3 ~memory_per_node_gb:32.0 () in
  (match Rmatch.select c ~spec Rmatch.First_fit with
  | Some sel ->
    check int "three nodes" 3 (List.length sel.Rmatch.sel_nodes);
    List.iter
      (fun n -> check bool "fat node chosen" true (Rmatch.node_memory_gb n >= 32.0))
      sel.Rmatch.sel_nodes
  | None -> Alcotest.fail "should fit");
  (* Five big-memory nodes do not exist. *)
  let spec5 = Jobspec.make ~nnodes:5 ~memory_per_node_gb:32.0 () in
  (match Rmatch.select c ~spec:spec5 Rmatch.First_fit with
  | None -> ()
  | Some _ -> Alcotest.fail "must not fit");
  check Alcotest.string "shortfall explained" "only 4 nodes also have >= 32 GB memory"
    (Rmatch.explain_shortfall c ~spec:spec5)

let test_rmatch_best_fit_preserves_fat_nodes () =
  let c = hetero_center () in
  let spec = Jobspec.make ~nnodes:2 ~memory_per_node_gb:8.0 () in
  match Rmatch.select c ~spec Rmatch.Best_fit with
  | Some sel ->
    List.iter
      (fun n ->
        check bool "thin nodes preferred" true (Rmatch.node_memory_gb n <= 16.0))
      sel.Rmatch.sel_nodes
  | None -> Alcotest.fail "should fit"

let test_rmatch_pack_by_rack () =
  let c = hetero_center () in
  let spec = Jobspec.make ~nnodes:4 () in
  match Rmatch.select c ~spec Rmatch.Pack_by_rack with
  | Some sel -> check int "single rack suffices" 1 (List.length sel.Rmatch.sel_racks)
  | None -> Alcotest.fail "should fit"

let test_rmatch_core_constraint () =
  let c =
    Resource.center ~name:"cc"
      [
        Resource.rack
          ~nodes:
            [
              Resource.node ~sockets:4 ~cores_per_socket:8 ~name:"big" ();
              Resource.node ~name:"small0" ();
              Resource.node ~name:"small1" ();
            ]
          ~name:"r0" ();
      ]
  in
  let spec = Jobspec.make ~nnodes:1 ~cores_per_node:32 () in
  match Rmatch.select c ~spec Rmatch.First_fit with
  | Some sel ->
    check Alcotest.string "the 32-core node" "big"
      (List.hd sel.Rmatch.sel_nodes).Resource.name
  | None -> Alcotest.fail "should fit"

(* --- Instance ---------------------------------------------------------------------- *)

let drain c = Center.run c

let test_instance_runs_jobs () =
  let c = Center.create ~nodes:8 () in
  let submit n d =
    ignore
      (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:n ~walltime_est:(2.0 *. d) ())
         ~payload:(Job.Sleep d)
        : Job.t)
  in
  submit 4 10.0;
  submit 4 20.0;
  submit 8 5.0;
  drain c;
  let st = Instance.stats c.Center.root in
  check int "all complete" 3 st.Instance.st_completed;
  check int "none failed" 0 st.Instance.st_failed;
  (* Two 4-node jobs run together; the 8-node job follows the longer. *)
  check bool "makespan about 25s" true
    (st.Instance.st_makespan > 24.9 && st.Instance.st_makespan < 25.5);
  check flt "node-seconds" ((4.0 *. 10.0) +. (4.0 *. 20.0) +. (8.0 *. 5.0))
    st.Instance.st_node_seconds

let test_instance_fcfs_wait_order () =
  let c = Center.create ~nodes:4 () in
  let j1 =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ()) ~payload:(Job.Sleep 10.0)
  in
  let j2 =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ()) ~payload:(Job.Sleep 10.0)
  in
  drain c;
  check bool "j2 started after j1 finished" true (j2.Job.start_time >= j1.Job.end_time)

let test_instance_app_payload () =
  Wexec.register_program "core-test-app" (fun ctx ->
      let d = Json.to_float (Json.member "duration" ctx.Wexec.px_args) in
      Proc.sleep d;
      ctx.Wexec.px_printf "computed");
  let c = Center.create ~nodes:4 () in
  let j =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:2 ())
      ~payload:
        (Job.App { prog = "core-test-app"; args = Json.null; per_rank = 2; duration = 5.0 })
  in
  drain c;
  check bool "complete" true (j.Job.jstate = Job.Complete);
  check bool "ran for its duration" true (Job.runtime j >= 5.0 && Job.runtime j < 6.0);
  (* Stdout of task (rank, local 0) captured in KVS by wexec. *)
  let got = ref None in
  ignore
    (Proc.spawn c.Center.eng (fun () ->
         let kvs = Center.kvs_client c ~rank:0 in
         let key = Printf.sprintf "lwj.%s.%d-0.stdout" j.Job.jid (List.hd j.Job.granted_nodes) in
         got := Some (Flux_kvs.Client.get kvs ~key)));
  drain c;
  match !got with
  | Some (Ok (Json.String s)) -> check bool "has output" true (String.length s > 0)
  | _ -> Alcotest.fail "stdout not captured"

let test_instance_hierarchy () =
  let c = Center.create ~nodes:16 () in
  (* A child instance gets 8 nodes and schedules 4 jobs of 4 nodes with
     its own FCFS queue; parent keeps the other 8 busy. *)
  let sub d n = { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:n (); sub_payload = Job.Sleep d } in
  let child_job =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:8 ())
      ~payload:(Job.Child { policy = "fcfs"; workload = [ sub 10.0 4; sub 10.0 4; sub 10.0 4; sub 10.0 4 ] })
  in
  let p1 =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:8 ()) ~payload:(Job.Sleep 30.0)
  in
  drain c;
  check bool "child job complete" true (child_job.Job.jstate = Job.Complete);
  check bool "parent job complete" true (p1.Job.jstate = Job.Complete);
  (* Child ran two waves of two 4-node jobs: ~20s + overheads. *)
  check bool "child duration about 20s" true
    (Job.runtime child_job >= 20.0 && Job.runtime child_job < 22.0);
  check int "pool restored" 16 (Pool.total_nodes (Instance.pool c.Center.root));
  let st = Instance.stats_recursive c.Center.root in
  check int "six jobs total" 6 st.Instance.st_completed

let test_instance_nested_two_levels () =
  let c = Center.create ~nodes:8 () in
  let leaf d = { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:1 (); sub_payload = Job.Sleep d } in
  let mid =
    {
      Job.sub_after = 0.0;
      sub_spec = Jobspec.make ~nnodes:2 ();
      sub_payload = Job.Child { policy = "fcfs"; workload = [ leaf 5.0; leaf 5.0 ] };
    }
  in
  let top =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
      ~payload:(Job.Child { policy = "fcfs"; workload = [ mid ] })
  in
  drain c;
  check bool "grandchild hierarchy completes" true (top.Job.jstate = Job.Complete);
  (* depth check through the recorded children *)
  match Instance.children c.Center.root with
  | [ child ] -> (
    check int "child depth" 1 (Instance.depth child);
    match Instance.children child with
    | [ grandchild ] -> check int "grandchild depth" 2 (Instance.depth grandchild)
    | _ -> Alcotest.fail "expected one grandchild")
  | _ -> Alcotest.fail "expected one child"

let test_instance_nested_session_isolation () =
  (* A Nested child owns a dedicated comms session: its wexec jobs run
     there and its KVS is invisible from the parent session. *)
  Wexec.register_program "nested-writer" (fun ctx ->
      (match Flux_kvs.Client.put ctx.Wexec.px_kvs ~key:"nested.secret" (Json.int 7) with
      | Ok () -> ()
      | Error e -> failwith e);
      match Flux_kvs.Client.commit ctx.Wexec.px_kvs with
      | Ok _ -> ()
      | Error e -> failwith e);
  let c = Center.create ~nodes:8 () in
  let inner =
    {
      Job.sub_after = 0.0;
      sub_spec = Jobspec.make ~nnodes:2 ();
      sub_payload =
        Job.App { prog = "nested-writer"; args = Json.null; per_rank = 1; duration = 0.1 };
    }
  in
  let top =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
      ~payload:(Job.Nested { policy = "fcfs"; workload = [ inner ] })
  in
  drain c;
  check bool "nested job complete" true (top.Job.jstate = Job.Complete);
  check int "parent pool restored" 8 (Pool.total_nodes (Instance.pool c.Center.root));
  (* The write went to the CHILD session's KVS, not the center's. *)
  let from_parent = ref None in
  ignore
    (Proc.spawn c.Center.eng (fun () ->
         let kvs = Center.kvs_client c ~rank:0 in
         from_parent := Some (Flux_kvs.Client.get kvs ~key:"nested.secret")));
  drain c;
  (match !from_parent with
  | Some (Error _) -> () (* correctly invisible *)
  | Some (Ok _) -> Alcotest.fail "nested KVS leaked into the parent session"
  | None -> Alcotest.fail "probe did not run");
  (* The nested session was registered as a child of the center session
     and torn down when the job completed. *)
  check int "child session unlinked after completion" 0
    (List.length (Flux_cmb.Session.child_sessions c.Center.sess));
  (* And the nested instance cannot be resized (dedicated session). *)
  match Instance.children c.Center.root with
  | [ child ] ->
    check bool "nested grow denied" true
      (Instance.request_grow child ~nnodes:2 = Error Instance.Resize_nested)
  | _ -> Alcotest.fail "expected one child"

(* Regression: resizes that move nothing used to return a bare 0 that
   read as success. Every no-op path must now name its reason. *)
let test_instance_resize_structured_errors () =
  let c = Center.create ~nodes:8 () in
  (* The root has no parent: both directions are structural errors. *)
  check bool "root grow" true
    (Instance.request_grow c.Center.root ~nnodes:2 = Error Instance.Resize_root);
  check bool "root shrink" true
    (Instance.request_shrink c.Center.root ~nnodes:2 = Error Instance.Resize_root);
  (* The keepalive pins all 4 child nodes, so the child has no free
     node to give back either. *)
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:4 (); sub_payload = Job.Sleep 10.0 }
  in
  ignore
    (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
       ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
      : Job.t);
  (* Parent's remaining 4 nodes are pinned by a long job: the child's
     grow request finds nothing to take. *)
  ignore
    (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ()) ~payload:(Job.Sleep 50.0)
      : Job.t);
  ignore
    (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
         match Instance.children c.Center.root with
         | [ child ] ->
           check bool "invalid nnodes" true
             (Instance.request_grow child ~nnodes:0 = Error (Instance.Resize_invalid 0));
           check bool "negative nnodes" true
             (Instance.request_shrink child ~nnodes:(-3)
             = Error (Instance.Resize_invalid (-3)));
           check bool "grow exhausted" true
             (Instance.request_grow child ~nnodes:2 = Error Instance.Resize_exhausted);
           (* The child's own 4 nodes are all held by its running job:
              shrink has no free node to return either. *)
           check bool "shrink exhausted" true
             (Instance.request_shrink child ~nnodes:2 = Error Instance.Resize_exhausted);
           check bool "error strings are distinct" true
             (List.length
                (List.sort_uniq compare
                   (List.map Instance.resize_error_to_string
                      [
                        Instance.Resize_invalid 0;
                        Instance.Resize_nested;
                        Instance.Resize_root;
                        Instance.Resize_exhausted;
                      ]))
             = 4)
         | _ -> Alcotest.fail "expected one child")
      : Engine.handle);
  drain c

let test_instance_grow_shrink () =
  let c = Center.create ~nodes:16 () in
  (* The child runs a long job so it is still alive when elasticity is
     exercised at t=1. *)
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:2 (); sub_payload = Job.Sleep 10.0 }
  in
  let child_job =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
      ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
  in
  ignore child_job;
  (* Let the child boot, then drive elasticity from a timer. *)
  let grew = ref (-1) and shrunk = ref (-1) in
  ignore
    (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
         match Instance.children c.Center.root with
         | [ child ] ->
           (match Instance.request_grow child ~nnodes:4 with
           | Ok n -> grew := n
           | Error e -> Alcotest.fail (Instance.resize_error_to_string e));
           check int "child pool grew" 8 (Pool.total_nodes (Instance.pool child));
           (match Instance.request_shrink child ~nnodes:2 with
           | Ok n -> shrunk := n
           | Error e -> Alcotest.fail (Instance.resize_error_to_string e));
           check int "child pool shrank" 6 (Pool.total_nodes (Instance.pool child))
         | _ -> Alcotest.fail "expected one child")
      : Engine.handle);
  drain c;
  check int "grow granted" 4 !grew;
  check int "shrink returned" 2 !shrunk;
  (* All nodes back home at the end. *)
  check int "root whole again" 16 (Pool.total_nodes (Instance.pool c.Center.root));
  check int "root all free" 16 (Pool.free_nodes (Instance.pool c.Center.root))

let test_instance_grow_bounded_by_parent () =
  let c = Center.create ~nodes:8 () in
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:2 (); sub_payload = Job.Sleep 10.0 }
  in
  ignore
    (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
       ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
      : Job.t);
  (* Parent keeps its other 4 nodes busy; the child can grow by at most
     what is free (parent-bounding rule). *)
  ignore
    (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:3 ()) ~payload:(Job.Sleep 50.0)
      : Job.t);
  let granted = ref (-1) in
  ignore
    (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
         match Instance.children c.Center.root with
         | [ child ] ->
           granted :=
             (match Instance.request_grow child ~nnodes:10 with Ok n -> n | Error _ -> 0)
         | _ -> Alcotest.fail "expected one child")
      : Engine.handle);
  drain c;
  check int "grow limited to free nodes" 1 !granted

let test_instance_power_cap () =
  let c = Center.create ~nodes:8 ~power_budget:800.0 () in
  let spec = Jobspec.make ~nnodes:4 ~power_per_node:200.0 () in
  let j1 = Instance.submit c.Center.root ~spec ~payload:(Job.Sleep 10.0) in
  let j2 = Instance.submit c.Center.root ~spec ~payload:(Job.Sleep 10.0) in
  drain c;
  (* 8 nodes are free but 800 W only feeds one 4-node 200 W/node job at
     a time: j2 must wait for j1. *)
  check bool "power serialized the jobs" true (j2.Job.start_time >= j1.Job.end_time)

let test_instance_power_cap_dynamic () =
  let c = Center.create ~nodes:8 ~power_budget:400.0 () in
  let spec = Jobspec.make ~nnodes:2 ~power_per_node:200.0 () in
  ignore (Instance.submit c.Center.root ~spec ~payload:(Job.Sleep 10.0) : Job.t);
  let j2 = Instance.submit c.Center.root ~spec ~payload:(Job.Sleep 10.0) in
  (* Raising the cap mid-run lets j2 start immediately instead of
     waiting for j1. *)
  ignore
    (Engine.schedule c.Center.eng ~delay:2.0 (fun () ->
         Instance.set_power_cap c.Center.root 1000.0)
      : Engine.handle);
  drain c;
  check bool "j2 started when cap rose" true
    (j2.Job.start_time >= 2.0 && j2.Job.start_time < 5.0)

let test_instance_io_coscheduling () =
  let c = Center.create ~nodes:8 ~fs_bandwidth:100.0 () in
  let io_spec = Jobspec.make ~nnodes:2 ~fs_bandwidth:60.0 () in
  let j1 = Instance.submit c.Center.root ~spec:io_spec ~payload:(Job.Sleep 10.0) in
  let j2 = Instance.submit c.Center.root ~spec:io_spec ~payload:(Job.Sleep 10.0) in
  drain c;
  (* Both fit node-wise, but 60+60 > 100 GB/s: the file system is a
     scheduled resource, so the jobs serialize instead of thrashing. *)
  check bool "io jobs serialized" true (j2.Job.start_time >= j1.Job.end_time)

let test_instance_malleable_grows_when_idle () =
  let c = Center.create ~nodes:8 () in
  let j =
    Instance.submit c.Center.root
      ~spec:(Jobspec.make ~nnodes:2 ~elasticity:(Jobspec.Malleable (2, 8)) ())
      ~payload:(Job.Sleep 10.0)
  in
  (* Probe mid-run: with nothing queued, the job expands to its max. *)
  let mid = ref 0 in
  ignore
    (Engine.schedule c.Center.eng ~delay:5.0 (fun () ->
         mid := List.length j.Job.granted_nodes)
      : Engine.handle);
  drain c;
  check int "grown to max" 8 !mid;
  check int "pool restored" 8 (Pool.free_nodes (Instance.pool c.Center.root))

let test_instance_malleable_shrinks_under_pressure () =
  let c = Center.create ~nodes:8 () in
  let malleable =
    Instance.submit c.Center.root
      ~spec:(Jobspec.make ~nnodes:8 ~elasticity:(Jobspec.Malleable (2, 8)) ())
      ~payload:(Job.Sleep 20.0)
  in
  (* A rigid 6-node job arrives at t=5; the malleable job must shed
     nodes so it can start well before the malleable one ends. *)
  let rigid = ref None in
  let mid_size = ref 99 in
  ignore
    (Engine.schedule c.Center.eng ~delay:5.0 (fun () ->
         rigid :=
           Some
             (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:6 ())
                ~payload:(Job.Sleep 5.0)))
      : Engine.handle);
  ignore
    (Engine.schedule c.Center.eng ~delay:7.0 (fun () ->
         mid_size := List.length malleable.Job.granted_nodes)
      : Engine.handle);
  drain c;
  (match !rigid with
  | Some r -> check bool "rigid started during malleable run" true (r.Job.start_time < 10.0)
  | None -> Alcotest.fail "rigid job not submitted");
  check int "malleable shrank to its minimum while rigid ran" 2 !mid_size;
  (* After the rigid job finishes, the malleable job grows back. *)
  check int "regrown by completion" 8 (List.length malleable.Job.granted_nodes);
  check int "all nodes home" 8 (Pool.free_nodes (Instance.pool c.Center.root))

let test_instance_cancel () =
  let c = Center.create ~nodes:4 () in
  let j1 = Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ()) ~payload:(Job.Sleep 10.0) in
  let j2 = Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ()) ~payload:(Job.Sleep 10.0) in
  ignore
    (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
         check bool "cancel pending" true (Instance.cancel c.Center.root ~jid:j2.Job.jid);
         check bool "cancel running" true (Instance.cancel c.Center.root ~jid:j1.Job.jid);
         check bool "cancel again fails" false (Instance.cancel c.Center.root ~jid:j1.Job.jid))
      : Engine.handle);
  drain c;
  check bool "j1 cancelled" true (j1.Job.jstate = Job.Cancelled);
  check bool "j2 cancelled" true (j2.Job.jstate = Job.Cancelled);
  check int "nodes free" 4 (Pool.free_nodes (Instance.pool c.Center.root))

let test_instance_cancel_child_refused () =
  let c = Center.create ~nodes:8 () in
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:2 (); sub_payload = Job.Sleep 5.0 }
  in
  let child_job =
    Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:4 ())
      ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
  in
  ignore
    (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
         check bool "cancel of running child refused" false
           (Instance.cancel c.Center.root ~jid:child_job.Job.jid))
      : Engine.handle);
  drain c;
  check bool "child completed normally" true (child_job.Job.jstate = Job.Complete);
  check int "pool intact" 8 (Pool.free_nodes (Instance.pool c.Center.root))

let test_instance_rejects_oversized () =
  let c = Center.create ~nodes:4 () in
  Alcotest.check_raises "too big"
    (Invalid_argument "Instance.submit: job needs 8 nodes, instance owns 4") (fun () ->
      ignore
        (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:8 ())
           ~payload:(Job.Sleep 1.0)
          : Job.t))

let test_instance_provenance () =
  let c = Center.create ~nodes:4 ~provenance:true () in
  let j = Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:2 ()) ~payload:(Job.Sleep 3.0) in
  drain c;
  let got = ref None in
  ignore
    (Proc.spawn c.Center.eng (fun () ->
         let kvs = Center.kvs_client c ~rank:1 in
         got := Some (Flux_kvs.Client.get kvs ~key:(Printf.sprintf "lwj.%s.state" j.Job.jid))));
  drain c;
  match !got with
  | Some (Ok (Json.String s)) -> check Alcotest.string "final state recorded" "complete" s
  | _ -> Alcotest.fail "no provenance in KVS"

(* --- PMI -------------------------------------------------------------------------- *)

let test_pmi_exchange () =
  let c = Center.create ~nodes:4 () in
  let size = 8 in
  let fails = ref 0 in
  for r = 0 to size - 1 do
    ignore
      (Proc.spawn c.Center.eng (fun () ->
           let pmi = Pmi.init c.Center.sess ~jobid:"mpi0" ~rank:r ~node:(r mod 4) ~size in
           (match Pmi.put pmi ~key:"addr" (Printf.sprintf "ib0:%d" (7000 + r)) with
           | Ok () -> ()
           | Error _ -> incr fails);
           (match Pmi.exchange pmi with Ok () -> () | Error _ -> incr fails);
           (* Read every peer's business card. *)
           for peer = 0 to size - 1 do
             match Pmi.get pmi ~from_rank:peer ~key:"addr" with
             | Ok v -> if v <> Printf.sprintf "ib0:%d" (7000 + peer) then incr fails
             | Error _ -> incr fails
           done;
           match Pmi.finalize pmi with Ok () -> () | Error _ -> incr fails)
        : Proc.pid)
  done;
  drain c;
  check int "no failures" 0 !fails

(* --- Workload generators ------------------------------------------------------------ *)

let test_workload_determinism () =
  let a = Workload.batch_mix (Rng.create 5) ~n:50 ~max_nodes:32 () in
  let b = Workload.batch_mix (Rng.create 5) ~n:50 ~max_nodes:32 () in
  check int "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Job.submission) (y : Job.submission) ->
      check int "same nodes" x.Job.sub_spec.Jobspec.nnodes y.Job.sub_spec.Jobspec.nnodes)
    a b

let test_workload_bounds () =
  let subs = Workload.batch_mix (Rng.create 7) ~n:200 ~max_nodes:16 () in
  List.iter
    (fun (s : Job.submission) ->
      let n = s.Job.sub_spec.Jobspec.nnodes in
      check bool "nodes in range" true (n >= 1 && n <= 16))
    subs;
  check bool "positive work" true (Workload.total_node_seconds subs > 0.0)

let test_workload_io_phased () =
  let subs = Workload.io_phased (Rng.create 2) ~n:20 ~max_nodes:8 ~fs_bandwidth_each:12.5 () in
  check int "count" 20 (List.length subs);
  List.iter
    (fun (s : Job.submission) ->
      check flt "bandwidth attached" 12.5 s.Job.sub_spec.Jobspec.fs_bandwidth)
    subs

let test_workload_split () =
  let subs = Workload.uq_ensemble (Rng.create 3) ~n:10 () in
  let parts = Workload.split_round_robin 3 subs in
  check int "three parts" 3 (List.length parts);
  check int "all jobs kept" 10 (List.fold_left (fun a p -> a + List.length p) 0 parts)

(* --- Baseline ------------------------------------------------------------------------- *)

let test_central_completes_workload () =
  let eng = Engine.create () in
  let central = Central.create eng ~nnodes:32 () in
  let wl = Workload.batch_mix (Rng.create 11) ~n:60 ~max_nodes:16 ~mean_duration:30.0 () in
  Central.submit_plan central wl;
  Engine.run eng;
  let st = Central.stats central in
  check int "all completed" 60 st.Central.bs_completed;
  check bool "nonzero makespan" true (st.Central.bs_makespan > 0.0)

let test_hierarchy_beats_central_on_ensembles () =
  (* Same ensemble of tiny jobs; the centralized controller serializes
     all decisions, the two-level Flux splits them across 8 children. *)
  (* High-throughput ensemble: demand (320 starts/s) far exceeds the
     ~100 jobs/s a 10 ms/start monolithic controller can push, while
     eight parallel child schedulers absorb it easily. *)
  let n_jobs = 2000 and nnodes = 64 in
  let mk_wl () =
    List.map
      (fun (s : Job.submission) ->
        match s.Job.sub_payload with
        | Job.Sleep d ->
          let d = Float.max 0.05 (d /. 10.0) in
          { s with Job.sub_payload = Job.Sleep d; sub_spec = Jobspec.make ~nnodes:1 ~walltime_est:(2.0 *. d) () }
        | _ -> s)
      (Workload.uq_ensemble (Rng.create 42) ~n:n_jobs ~mean_duration:2.0 ())
  in
  (* centralized *)
  let eng1 = Engine.create () in
  let central = Central.create eng1 ~nnodes () in
  Central.submit_plan central (mk_wl ());
  Engine.run eng1;
  let cs = Central.stats central in
  (* two-level flux *)
  let c = Center.create ~nodes:nnodes () in
  let parts = Workload.split_round_robin 8 (mk_wl ()) in
  List.iter
    (fun workload ->
      ignore
        (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:8 ())
           ~payload:(Job.Child { policy = "fcfs"; workload })
          : Job.t))
    parts;
  drain c;
  let fs = Instance.stats_recursive c.Center.root in
  check int "central completed" n_jobs cs.Central.bs_completed;
  check int "flux completed" (n_jobs + 8) fs.Instance.st_completed;
  check bool
    (Printf.sprintf "flux makespan (%.1f) < central (%.1f)" fs.Instance.st_makespan
       cs.Central.bs_makespan)
    true
    (fs.Instance.st_makespan < cs.Central.bs_makespan)

let () =
  Alcotest.run "flux_core"
    [
      ( "resource",
        [
          Alcotest.test_case "counts" `Quick test_resource_counts;
          Alcotest.test_case "find" `Quick test_resource_find;
          Alcotest.test_case "unique ids" `Quick test_resource_unique_ids;
          Alcotest.test_case "json roundtrip" `Quick test_resource_json_roundtrip;
        ] );
      ("jobspec", [ Alcotest.test_case "validation and bounds" `Quick test_jobspec ]);
      ("job", [ Alcotest.test_case "state machine" `Quick test_job_transitions ]);
      ( "pool",
        [
          Alcotest.test_case "grant/release" `Quick test_pool_grant_release;
          Alcotest.test_case "power constraint" `Quick test_pool_power_constraint;
          Alcotest.test_case "bandwidth constraint" `Quick test_pool_bandwidth_constraint;
          Alcotest.test_case "double release" `Quick test_pool_double_release;
          Alcotest.test_case "donate/absorb" `Quick test_pool_donate_absorb;
        ] );
      ( "policy",
        [
          Alcotest.test_case "fcfs strict" `Quick test_fcfs_strict;
          Alcotest.test_case "easy backfill" `Quick test_easy_backfill_jumps;
          Alcotest.test_case "moldable shrinks" `Quick test_moldable_shrinks;
          Alcotest.test_case "easy spare-node backfill" `Quick test_easy_backfill_spare_nodes;
          Alcotest.test_case "easy nothing fits" `Quick test_easy_backfill_empty_pool_no_starts;
          Alcotest.test_case "unknown policy" `Quick test_policy_unknown_name;
          Alcotest.test_case "priority" `Quick test_priority_policy;
          Alcotest.test_case "priority stable ties" `Quick test_priority_stable_ties;
          Alcotest.test_case "fair share" `Quick test_fair_share_policy;
        ] );
      ( "instance",
        [
          Alcotest.test_case "runs jobs" `Quick test_instance_runs_jobs;
          Alcotest.test_case "fcfs order" `Quick test_instance_fcfs_wait_order;
          Alcotest.test_case "app payload via wexec" `Quick test_instance_app_payload;
          Alcotest.test_case "hierarchy" `Quick test_instance_hierarchy;
          Alcotest.test_case "two levels" `Quick test_instance_nested_two_levels;
          Alcotest.test_case "nested session isolation" `Quick
            test_instance_nested_session_isolation;
          Alcotest.test_case "grow/shrink" `Quick test_instance_grow_shrink;
          Alcotest.test_case "resize structured errors" `Quick
            test_instance_resize_structured_errors;
          Alcotest.test_case "grow bounded" `Quick test_instance_grow_bounded_by_parent;
          Alcotest.test_case "power cap" `Quick test_instance_power_cap;
          Alcotest.test_case "dynamic power cap" `Quick test_instance_power_cap_dynamic;
          Alcotest.test_case "io co-scheduling" `Quick test_instance_io_coscheduling;
          Alcotest.test_case "malleable grows" `Quick test_instance_malleable_grows_when_idle;
          Alcotest.test_case "malleable shrinks" `Quick
            test_instance_malleable_shrinks_under_pressure;
          Alcotest.test_case "cancel" `Quick test_instance_cancel;
          Alcotest.test_case "oversized rejected" `Quick test_instance_rejects_oversized;
          Alcotest.test_case "cancel child refused" `Quick test_instance_cancel_child_refused;
          Alcotest.test_case "provenance" `Quick test_instance_provenance;
        ] );
      ( "rmatch",
        [
          Alcotest.test_case "memory constraint" `Quick test_rmatch_memory_constraint;
          Alcotest.test_case "best fit" `Quick test_rmatch_best_fit_preserves_fat_nodes;
          Alcotest.test_case "pack by rack" `Quick test_rmatch_pack_by_rack;
          Alcotest.test_case "core constraint" `Quick test_rmatch_core_constraint;
        ] );
      ("pmi", [ Alcotest.test_case "bootstrap exchange" `Quick test_pmi_exchange ]);
      ( "workload",
        [
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "bounds" `Quick test_workload_bounds;
          Alcotest.test_case "split" `Quick test_workload_split;
          Alcotest.test_case "io phased" `Quick test_workload_io_phased;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "central completes" `Quick test_central_completes_workload;
          Alcotest.test_case "hierarchy beats central" `Quick
            test_hierarchy_beats_central_on_ensembles;
        ] );
    ]
