(* Unit and property tests for Flux_util. *)

module Heap = Flux_util.Heap
module Rng = Flux_util.Rng
module Lru = Flux_util.Lru
module Stats = Flux_util.Stats
module Hexs = Flux_util.Hexs
module Ring_buffer = Flux_util.Ring_buffer
module Treemath = Flux_util.Treemath
module Idgen = Flux_util.Idgen

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* --- Heap ----------------------------------------------------------- *)

let test_heap_basic () =
  let h = Heap.create () in
  check bool "empty" true (Heap.is_empty h);
  Heap.push h 3.0 "c";
  Heap.push h 1.0 "a";
  Heap.push h 2.0 "b";
  check int "length" 3 (Heap.length h);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) string)) "peek"
    (Some (1.0, "a")) (Heap.peek h);
  let order = List.init 3 (fun _ -> snd (Heap.pop_exn h)) in
  check (Alcotest.list string) "pop order" [ "a"; "b"; "c" ] order;
  check bool "empty again" true (Heap.is_empty h)

let test_heap_stability () =
  let h = Heap.create () in
  List.iteri (fun i name -> Heap.push h (float_of_int (i mod 2)) name)
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  (* prio 0: a c e (insertion order); prio 1: b d f *)
  let popped = List.init 6 (fun _ -> snd (Heap.pop_exn h)) in
  check (Alcotest.list string) "stable ties" [ "a"; "c"; "e"; "b"; "d"; "f" ] popped

let test_heap_pop_empty () =
  let h : int Heap.t = Heap.create () in
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) int)) "pop empty" None
    (Heap.pop h);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h (float_of_int i) i
  done;
  Heap.clear h;
  check int "cleared" 0 (Heap.length h);
  Heap.push h 5.0 42;
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) int)) "usable after clear"
    (Some (5.0, 42)) (Heap.pop h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) prios;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      List.sort compare prios = out)

let prop_heap_grow =
  QCheck.Test.make ~name:"heap handles growth beyond initial capacity" ~count:20
    QCheck.(int_bound 500)
    (fun n ->
      let h = Heap.create () in
      for i = n downto 1 do
        Heap.push h (float_of_int i) i
      done;
      Heap.length h = n
      && (n = 0 || snd (Heap.pop_exn h) = 1))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check bool "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check bool "int in range" true (x >= 0 && x < 10);
    let f = Rng.float r 3.0 in
    check bool "float in range" true (f >= 0.0 && f < 3.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.int64 parent) in
  let ys = List.init 10 (fun _ -> Rng.int64 child) in
  check bool "streams differ" true (xs <> ys)

let test_rng_exponential_positive () =
  let r = Rng.create 3 in
  for _ = 1 to 100 do
    check bool "exponential >= 0" true (Rng.exponential r 5.0 >= 0.0)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array int) "permutation" (Array.init 50 Fun.id) sorted

(* --- Lru -------------------------------------------------------------- *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check (Alcotest.option int) "find a" (Some 1) (Lru.find c "a");
  Lru.put c "c" 3;
  (* "b" was least recently used (a was touched by find) *)
  check (Alcotest.option int) "b evicted" None (Lru.find c "b");
  check (Alcotest.option int) "a kept" (Some 1) (Lru.find c "a");
  check (Alcotest.option int) "c kept" (Some 3) (Lru.find c "c");
  check int "evictions" 1 (Lru.evictions c)

let test_lru_update_in_place () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "a" 10;
  check int "no duplicate" 1 (Lru.length c);
  check (Alcotest.option int) "updated" (Some 10) (Lru.find c "a")

let test_lru_remove () =
  let c = Lru.create ~capacity:4 in
  Lru.put c "x" 1;
  Lru.remove c "x";
  check (Alcotest.option int) "removed" None (Lru.find c "x");
  Lru.remove c "x" (* idempotent *)

let test_lru_mem_no_touch () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check bool "mem a" true (Lru.mem c "a");
  Lru.put c "c" 3;
  (* mem must not refresh recency, so "a" is the eviction victim *)
  check bool "a evicted" false (Lru.mem c "a")

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (small_list (string_of_size Gen.(return 3))))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.put c k ()) keys;
      Lru.length c <= cap)

(* --- Stats ------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median s);
  check (Alcotest.float 1e-6) "stddev" 1.2909944487358056 (Stats.stddev s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s 1.0);
  check (Alcotest.float 1e-6) "p50" 50.5 (Stats.percentile s 0.5)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: no samples") (fun () ->
      ignore (Stats.min s))

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

(* --- Hexs -------------------------------------------------------------- *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff flux" in
  check string "roundtrip" s (Hexs.decode (Hexs.encode s));
  check string "encode" "00" (Hexs.encode "\x00")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hexs.decode: odd length")
    (fun () -> ignore (Hexs.decode "abc"));
  check bool "is_hex" true (Hexs.is_hex "deadBEEF");
  check bool "not hex" false (Hexs.is_hex "xyz1")

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hexs.decode (Hexs.encode s) = s)

(* --- Ring_buffer -------------------------------------------------------- *)

let test_ring_basic () =
  let b = Ring_buffer.create ~capacity:3 in
  List.iter (Ring_buffer.push b) [ 1; 2; 3 ];
  check (Alcotest.list int) "full" [ 1; 2; 3 ] (Ring_buffer.to_list b);
  Ring_buffer.push b 4;
  check (Alcotest.list int) "wrapped" [ 2; 3; 4 ] (Ring_buffer.to_list b);
  check int "dropped" 1 (Ring_buffer.dropped b);
  Ring_buffer.clear b;
  check int "cleared" 0 (Ring_buffer.length b)

let test_ring_capacity_one () =
  let b = Ring_buffer.create ~capacity:1 in
  check int "capacity" 1 (Ring_buffer.capacity b);
  check (Alcotest.list int) "empty" [] (Ring_buffer.to_list b);
  Ring_buffer.push b 7;
  check (Alcotest.list int) "holds one" [ 7 ] (Ring_buffer.to_list b);
  Ring_buffer.push b 8;
  Ring_buffer.push b 9;
  check (Alcotest.list int) "keeps newest only" [ 9 ] (Ring_buffer.to_list b);
  check int "length pinned" 1 (Ring_buffer.length b);
  check int "dropped" 2 (Ring_buffer.dropped b)

let test_ring_multi_wrap () =
  (* Wrap the write cursor several full revolutions; to_list must stay
     oldest-first and dropped must count every overwritten element. *)
  let b = Ring_buffer.create ~capacity:4 in
  for i = 1 to 19 do
    Ring_buffer.push b i
  done;
  check (Alcotest.list int) "oldest-first after wraps" [ 16; 17; 18; 19 ]
    (Ring_buffer.to_list b);
  check int "length" 4 (Ring_buffer.length b);
  check int "dropped = pushed - capacity" 15 (Ring_buffer.dropped b)

let test_ring_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring_buffer.create: capacity must be positive") (fun () ->
      ignore (Ring_buffer.create ~capacity:0 : int Ring_buffer.t));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Ring_buffer.create: capacity must be positive") (fun () ->
      ignore (Ring_buffer.create ~capacity:(-3) : int Ring_buffer.t))

let test_ring_clear_then_reuse () =
  let b = Ring_buffer.create ~capacity:3 in
  List.iter (Ring_buffer.push b) [ 1; 2; 3; 4; 5 ];
  Ring_buffer.clear b;
  check (Alcotest.list int) "empty after clear" [] (Ring_buffer.to_list b);
  (* The buffer must be fully usable again, with oldest-first ordering
     across a fresh wrap after the clear. *)
  List.iter (Ring_buffer.push b) [ 10; 11; 12; 13 ];
  check (Alcotest.list int) "reused after clear" [ 11; 12; 13 ] (Ring_buffer.to_list b)

let prop_ring_dropped_counts =
  QCheck.Test.make ~name:"dropped = max 0 (pushed - capacity)" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (cap, xs) ->
      let b = Ring_buffer.create ~capacity:cap in
      List.iter (Ring_buffer.push b) xs;
      Ring_buffer.dropped b = max 0 (List.length xs - cap)
      && Ring_buffer.length b = min cap (List.length xs))

let prop_ring_keeps_latest =
  QCheck.Test.make ~name:"ring keeps the most recent k" ~count:100
    QCheck.(pair (int_range 1 10) (small_list small_int))
    (fun (cap, xs) ->
      let b = Ring_buffer.create ~capacity:cap in
      List.iter (Ring_buffer.push b) xs;
      let expect =
        let n = List.length xs in
        if n <= cap then xs else List.filteri (fun i _ -> i >= n - cap) xs
      in
      Ring_buffer.to_list b = expect)

(* --- Treemath ------------------------------------------------------------ *)

let test_tree_binary () =
  check (Alcotest.option int) "root parent" None (Treemath.parent ~k:2 0);
  check (Alcotest.option int) "parent 1" (Some 0) (Treemath.parent ~k:2 1);
  check (Alcotest.option int) "parent 2" (Some 0) (Treemath.parent ~k:2 2);
  check (Alcotest.option int) "parent 5" (Some 2) (Treemath.parent ~k:2 5);
  check (Alcotest.list int) "children 0" [ 1; 2 ] (Treemath.children ~k:2 ~size:6 0);
  check (Alcotest.list int) "children 2 truncated" [ 5 ]
    (Treemath.children ~k:2 ~size:6 2);
  check int "depth 0" 0 (Treemath.depth ~k:2 0);
  check int "depth 5" 2 (Treemath.depth ~k:2 5);
  check (Alcotest.list int) "ancestors 5" [ 2; 0 ] (Treemath.ancestors ~k:2 5)

let test_tree_kary () =
  check (Alcotest.list int) "children k=4" [ 1; 2; 3; 4 ]
    (Treemath.children ~k:4 ~size:100 0);
  check (Alcotest.option int) "parent k=4" (Some 0) (Treemath.parent ~k:4 4);
  check (Alcotest.option int) "parent k=4 of 5" (Some 1) (Treemath.parent ~k:4 5)

let test_tree_subtree () =
  check (Alcotest.list int) "subtree of 1 in 7-node binary tree" [ 1; 3; 4 ]
    (Treemath.subtree ~k:2 ~size:7 1);
  check (Alcotest.list int) "whole tree" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Treemath.subtree ~k:2 ~size:7 0)

let test_tree_on_path () =
  check bool "0 on path of 5" true (Treemath.on_path ~k:2 ~ancestor:0 5);
  check bool "2 on path of 5" true (Treemath.on_path ~k:2 ~ancestor:2 5);
  check bool "1 not on path of 5" false (Treemath.on_path ~k:2 ~ancestor:1 5)

let test_ring_math () =
  check int "next" 0 (Treemath.ring_next ~size:4 3);
  check int "distance forward" 3 (Treemath.ring_distance ~size:4 3 2);
  check int "distance zero" 0 (Treemath.ring_distance ~size:4 1 1)

let prop_tree_parent_child =
  QCheck.Test.make ~name:"child lists are inverse of parent" ~count:100
    QCheck.(pair (int_range 2 5) (int_range 1 200))
    (fun (k, size) ->
      List.for_all
        (fun r ->
          List.for_all
            (fun c -> Treemath.parent ~k c = Some r)
            (Treemath.children ~k ~size r))
        (List.init size Fun.id))

let prop_tree_height_log =
  QCheck.Test.make ~name:"binary tree height is ~log2" ~count:50
    QCheck.(int_range 1 4096)
    (fun size ->
      let h = Treemath.tree_height ~k:2 ~size in
      let lg = int_of_float (Float.log2 (float_of_int size)) in
      h >= lg - 1 && h <= lg + 1)

(* --- Idgen ---------------------------------------------------------------- *)

let test_idgen () =
  let g = Idgen.create ~prefix:"job-" () in
  check string "first" "job-0" (Idgen.next g);
  check string "second" "job-1" (Idgen.next g);
  check int "counter" 2 (Idgen.current g)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "flux_util"
    [
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "stable ties" `Quick test_heap_stability;
          Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      qsuite "heap-props" [ prop_heap_sorted; prop_heap_grow ];
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic eviction" `Quick test_lru_basic;
          Alcotest.test_case "update in place" `Quick test_lru_update_in_place;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "mem does not touch" `Quick test_lru_mem_no_touch;
        ] );
      qsuite "lru-props" [ prop_lru_capacity ];
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds ];
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "invalid" `Quick test_hex_invalid;
        ] );
      qsuite "hex-props" [ prop_hex_roundtrip ];
      ( "ring_buffer",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "capacity one" `Quick test_ring_capacity_one;
          Alcotest.test_case "multiple wraps" `Quick test_ring_multi_wrap;
          Alcotest.test_case "invalid capacity" `Quick test_ring_invalid_capacity;
          Alcotest.test_case "clear then reuse" `Quick test_ring_clear_then_reuse;
        ] );
      qsuite "ring-props" [ prop_ring_keeps_latest; prop_ring_dropped_counts ];
      ( "treemath",
        [
          Alcotest.test_case "binary" `Quick test_tree_binary;
          Alcotest.test_case "k-ary" `Quick test_tree_kary;
          Alcotest.test_case "subtree" `Quick test_tree_subtree;
          Alcotest.test_case "on_path" `Quick test_tree_on_path;
          Alcotest.test_case "ring math" `Quick test_ring_math;
        ] );
      qsuite "treemath-props" [ prop_tree_parent_child; prop_tree_height_log ];
      ("idgen", [ Alcotest.test_case "sequence" `Quick test_idgen ]);
    ]
