(* Property tests over the scheduling policies: safety invariants that
   must hold for every policy on arbitrary queues. *)

module Rng = Flux_util.Rng
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Pool = Flux_core.Pool
module Policy = Flux_core.Policy

let policies =
  [
    (module Policy.Fcfs : Policy.S);
    (module Policy.Easy_backfill : Policy.S);
    (module Policy.Fcfs_moldable : Policy.S);
    (module Policy.Priority : Policy.S);
    (module Policy.Fair_share : Policy.S);
  ]

(* Generate a random scheduling scene: a pool with some running jobs and
   a pending queue. *)
let gen_scene =
  QCheck.Gen.(
    let* nnodes = 4 -- 32 in
    let* n_running = 0 -- 3 in
    let* n_queue = 0 -- 10 in
    let* seed = 0 -- 100000 in
    return (nnodes, n_running, n_queue, seed))

let build_scene (nnodes, n_running, n_queue, seed) =
  let rng = Rng.create seed in
  let pool = Pool.create ~nodes:(List.init nnodes Fun.id) () in
  let running =
    List.filter_map
      (fun i ->
        let want = 1 + Rng.int rng (max 1 (nnodes / 2)) in
        let spec =
          Jobspec.make ~nnodes:want
            ~walltime_est:(10.0 +. Rng.float rng 100.0)
            ~user:(Printf.sprintf "u%d" (Rng.int rng 3))
            ()
        in
        match Pool.try_grant pool ~spec ~nnodes:want with
        | Some g ->
          let j =
            Job.create ~jid:(Printf.sprintf "r%d" i) ~spec ~payload:(Job.Sleep 1.0) ~now:0.0
          in
          Job.set_state j ~now:0.0 Job.Allocated;
          Job.set_state j ~now:0.0 Job.Running;
          Some (j, g)
        | None -> None)
      (List.init n_running Fun.id)
  in
  let queue =
    List.init n_queue (fun i ->
        let want = 1 + Rng.int rng nnodes in
        Job.create
          ~jid:(Printf.sprintf "q%d" i)
          ~spec:
            (Jobspec.make ~nnodes:want
               ~walltime_est:(10.0 +. Rng.float rng 100.0)
               ~user:(Printf.sprintf "u%d" (Rng.int rng 3))
               ~priority:(Rng.int rng 5) ())
          ~payload:(Job.Sleep 1.0) ~now:0.0)
  in
  (pool, queue, running)

let for_all_policies scene check_one =
  let pool, queue, running = build_scene scene in
  List.for_all
    (fun (module P : Policy.S) ->
      let starts = P.schedule ~now:0.0 ~pool ~queue ~running in
      check_one (module P : Policy.S) pool queue starts)
    policies

let prop_no_overcommit =
  QCheck.Test.make ~name:"starts never exceed free nodes" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      for_all_policies scene (fun _ pool _ starts ->
          let total = List.fold_left (fun a s -> a + s.Policy.s_nnodes) 0 starts in
          total <= Pool.free_nodes pool))

let prop_starts_from_queue =
  QCheck.Test.make ~name:"only queued pending jobs start, each at most once" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      for_all_policies scene (fun _ _ queue starts ->
          let jids = List.map (fun s -> s.Policy.s_job.Job.jid) starts in
          List.length (List.sort_uniq compare jids) = List.length jids
          && List.for_all (fun s -> List.memq s.Policy.s_job queue) starts))

let prop_node_counts_within_spec =
  QCheck.Test.make ~name:"chosen node counts respect elasticity bounds" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      for_all_policies scene (fun _ _ _ starts ->
          List.for_all
            (fun s ->
              s.Policy.s_nnodes >= Jobspec.min_nodes s.Policy.s_job.Job.spec
              && s.Policy.s_nnodes <= Jobspec.max_nodes s.Policy.s_job.Job.spec)
            starts))

let prop_fcfs_head_priority =
  QCheck.Test.make ~name:"fcfs never starts anything while the head is blocked" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      let pool, queue, running = build_scene scene in
      let starts = Policy.Fcfs.schedule ~now:0.0 ~pool ~queue ~running in
      match queue with
      | [] -> starts = []
      | head :: _ ->
        if head.Job.spec.Jobspec.nnodes > Pool.free_nodes pool then starts = []
        else (
          match starts with s :: _ -> s.Policy.s_job == head | [] -> false))

let prop_easy_backfill_protects_head =
  QCheck.Test.make ~name:"easy backfill never delays the head reservation" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      let pool, queue, running = build_scene scene in
      match queue with
      | [] -> true
      | head :: _ ->
        let free = Pool.free_nodes pool in
        let head_want = head.Job.spec.Jobspec.nnodes in
        if head_want <= free then true
        else begin
          let starts = Policy.Easy_backfill.schedule ~now:0.0 ~pool ~queue ~running in
          (* Recompute the shadow time from the running set only. *)
          let by_end =
            List.sort compare
              (List.map
                 (fun ((j : Job.t), (g : Pool.grant)) ->
                   ( j.Job.start_time +. j.Job.spec.Jobspec.walltime_est,
                     List.length g.Pool.g_nodes ))
                 running)
          in
          let rec shadow avail = function
            | [] -> (infinity, avail)
            | (t, n) :: rest ->
              let avail = avail + n in
              if avail >= head_want then (t, avail) else shadow avail rest
          in
          let shadow_time, avail_at_shadow = shadow free by_end in
          let spare = avail_at_shadow - head_want in
          (* Every backfilled job either ends before the shadow or fits
             in the spare capacity. *)
          let ok =
            let spare_used = ref 0 in
            List.for_all
              (fun s ->
                let est_end = s.Policy.s_job.Job.spec.Jobspec.walltime_est in
                if est_end <= shadow_time then true
                else begin
                  spare_used := !spare_used + s.Policy.s_nnodes;
                  !spare_used <= spare
                end)
              starts
          in
          ok
        end)

let prop_no_double_allocation =
  QCheck.Test.make ~name:"granting every start yields pairwise-disjoint node sets"
    ~count:300 (QCheck.make gen_scene) (fun scene ->
      for_all_policies scene (fun _ pool _ starts ->
          (* Actually apply the schedule: every start must be grantable
             in order, and no node may appear in two grants (or in a
             grant and a running job's allocation — the pool state
             already excludes running nodes, so a grant containing one
             would be the overlap). *)
          let grants =
            List.map
              (fun s ->
                match
                  Pool.try_grant pool ~spec:s.Policy.s_job.Job.spec ~nnodes:s.Policy.s_nnodes
                with
                | Some g -> g.Pool.g_nodes
                | None -> Alcotest.fail "scheduled start not grantable")
              starts
          in
          let all = List.concat grants in
          List.length (List.sort_uniq compare all) = List.length all))

let prop_grant_release_roundtrip =
  QCheck.Test.make ~name:"allocate then free restores the pool exactly" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      for_all_policies scene (fun _ pool _ starts ->
          let before = List.sort compare (Pool.free_node_list pool) in
          let grants =
            List.filter_map
              (fun s ->
                Pool.try_grant pool ~spec:s.Policy.s_job.Job.spec ~nnodes:s.Policy.s_nnodes)
              starts
          in
          List.iter (Pool.release pool) grants;
          List.sort compare (Pool.free_node_list pool) = before))

let prop_deterministic =
  QCheck.Test.make ~name:"same seed, same scene, same schedule" ~count:300
    (QCheck.make gen_scene) (fun scene ->
      List.for_all
        (fun (module P : Policy.S) ->
          let run () =
            let pool, queue, running = build_scene scene in
            List.map
              (fun s -> (s.Policy.s_job.Job.jid, s.Policy.s_nnodes))
              (P.schedule ~now:0.0 ~pool ~queue ~running)
          in
          run () = run ())
        policies)

let () =
  Alcotest.run "flux_policy_props"
    [
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_no_overcommit;
            prop_starts_from_queue;
            prop_node_counts_within_spec;
            prop_fcfs_head_priority;
            prop_easy_backfill_protects_head;
            prop_no_double_allocation;
            prop_grant_release_roundtrip;
            prop_deterministic;
          ] );
    ]
