(* Checkpoint/requeue kill schedules, snapshot store round-trips, and
   the damage model: a killed worker, a master lost mid-snapshot, or a
   death in the checkpoint/fence window must cost no acked write; a
   store rebuilt from serialized bytes must read back identically; and
   any single flipped byte must decode to a structured error. *)

module Ckpt = Flux_kap.Ckpt
module Snapshot = Flux_kvs.Snapshot
module Tree = Flux_kvs.Tree
module Kvs = Flux_kvs.Kvs_module
module Volumes = Flux_kvs.Volumes
module Client = Flux_kvs.Client
module Wexec = Flux_modules.Wexec
module Sha1 = Flux_sha1.Sha1
module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session

let check = Alcotest.check
let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

(* --- Kill schedules -------------------------------------------------------- *)

let seeds = List.init 16 (fun i -> 1 + (13 * i))

let kind_of_seed seed =
  match seed mod 3 with
  | 0 -> Ckpt.Node_mid_job
  | 1 -> Ckpt.Master_mid_snapshot
  | _ -> Ckpt.Between_ckpt_and_fence

let kind_name = function
  | Ckpt.Node_mid_job -> "node-mid-job"
  | Ckpt.Master_mid_snapshot -> "master-mid-snapshot"
  | Ckpt.Between_ckpt_and_fence -> "between-ckpt-and-fence"

let run_seed seed =
  Ckpt.run { Ckpt.default with Ckpt.seed; kill = Some (kind_of_seed seed) }

let test_schedule seed () =
  let r = run_seed seed in
  (match r.Ckpt.r_violations with
  | [] -> ()
  | vs ->
    Alcotest.failf "seed %d: %d violations:\n%s" seed (List.length vs)
      (String.concat "\n" vs));
  check Alcotest.int
    (Printf.sprintf "seed %d: every epoch checkpointed" seed)
    Ckpt.default.Ckpt.epochs r.Ckpt.r_acked_epoch;
  (* Master schedules kill twice: the pre-phase deposes rank 0, then the
     assassin strikes the acting master while the capture is in flight. *)
  let min_kills =
    match kind_of_seed seed with Ckpt.Master_mid_snapshot -> 2 | _ -> 1
  in
  check Alcotest.bool
    (Printf.sprintf "seed %d: the schedule killed someone" seed)
    true
    (r.Ckpt.r_kills >= min_kills);
  check Alcotest.int
    (Printf.sprintf "seed %d: everyone killed was revived" seed)
    r.Ckpt.r_kills r.Ckpt.r_revives;
  check Alcotest.bool
    (Printf.sprintf "seed %d: the job completed" seed)
    true (r.Ckpt.r_attempts >= 1);
  check Alcotest.bool
    (Printf.sprintf "seed %d: readback exercised" seed)
    true (r.Ckpt.r_keys_checked > 0);
  check Alcotest.bool
    (Printf.sprintf "seed %d: final snapshot non-empty" seed)
    true
    (r.Ckpt.r_snapshot_objects > 0)

let test_deterministic kind () =
  let cfg = { Ckpt.default with Ckpt.seed = 7; kill = Some kind } in
  let a = Ckpt.run cfg and b = Ckpt.run cfg in
  if Ckpt.fingerprint a <> Ckpt.fingerprint b then
    Alcotest.failf "%s: same seed produced different runs" (kind_name kind);
  if a <> b then
    Alcotest.failf "%s: same seed produced different reports" (kind_name kind)

let test_requeue_happens () =
  (* Node death mid-job must actually exercise the requeue path on at
     least one seed of the sweep. *)
  let requeued =
    List.exists
      (fun seed ->
        let r =
          Ckpt.run { Ckpt.default with Ckpt.seed = seed; kill = Some Ckpt.Node_mid_job }
        in
        r.Ckpt.r_requeues >= 1)
      [ 1; 3; 6; 9 ]
  in
  check Alcotest.bool "some schedule requeued" true requeued

(* --- Snapshot store round-trips -------------------------------------------- *)

(* Build a store by hand with interior directories, referenced leaf
   objects, and inline values — every dirent kind the walk must follow. *)
let build_store () =
  let tbl : (string, Json.t) Hashtbl.t = Hashtbl.create 16 in
  let store o =
    let sha = Sha1.digest_json o in
    Hashtbl.replace tbl (Sha1.to_hex sha) o;
    sha
  in
  let fetch sha = Hashtbl.find_opt tbl (Sha1.to_hex sha) in
  ignore (store Tree.empty_dir : Sha1.digest);
  let leaf = Json.obj [ ("payload", Json.string (String.make 64 'q')) ] in
  let leaf_sha = store leaf in
  let root =
    Tree.apply_tuples ~fetch ~store ~root:Tree.empty_dir_sha
      [
        ("a.b.c", Tree.dirent_file leaf_sha);
        ("a.b.d", Tree.dirent_val (Json.int 42));
        ("a.e", Tree.dirent_val (Json.string "inline"));
        ("x", Tree.dirent_file leaf_sha);
      ]
  in
  let objects = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  ( {
      Snapshot.s_service = "kvs";
      s_root = root;
      s_version = 1;
      s_epoch = 0;
      s_composite = None;
      s_objects = List.sort (fun (a, _) (b, _) -> String.compare a b) objects;
    },
    leaf )

let lookup_through snap key =
  let fetch sha =
    List.assoc_opt (Sha1.to_hex sha) snap.Snapshot.s_objects
  in
  Tree.lookup ~fetch ~root:snap.Snapshot.s_root ~key ()

let test_tree_roundtrip () =
  let snap, leaf = build_store () in
  expect_ok "verify" (Result.map_error Snapshot.error_to_string (Snapshot.verify snap));
  let decoded =
    expect_ok "decode"
      (Result.map_error Snapshot.error_to_string (Snapshot.decode (Snapshot.encode snap)))
  in
  check Alcotest.string "encode is a fixed point" (Snapshot.encode snap)
    (Snapshot.encode decoded);
  check Alcotest.bool "root preserved" true
    (Sha1.equal snap.Snapshot.s_root decoded.Snapshot.s_root);
  check Alcotest.int "version preserved" snap.Snapshot.s_version decoded.Snapshot.s_version;
  (* Interior directories and leaves both resolve through the decoded
     object set alone. *)
  (match lookup_through decoded "a.b.c" with
  | Tree.Found v -> check (Alcotest.testable Json.pp Json.equal) "leaf" leaf v
  | _ -> Alcotest.fail "a.b.c did not resolve from decoded store");
  (match lookup_through decoded "a.b.d" with
  | Tree.Found v -> check (Alcotest.testable Json.pp Json.equal) "inline" (Json.int 42) v
  | _ -> Alcotest.fail "a.b.d did not resolve from decoded store");
  match lookup_through decoded "a.nope" with
  | Tree.No_key -> ()
  | _ -> Alcotest.fail "phantom key resolved"

let test_rehash_detects_tamper () =
  let snap, _ = build_store () in
  let tampered =
    {
      snap with
      Snapshot.s_objects =
        (match snap.Snapshot.s_objects with
        | (sha, _) :: rest -> (sha, Json.string "swapped") :: rest
        | [] -> assert false);
    }
  in
  match Snapshot.verify tampered with
  | Error (Snapshot.Corrupt_object _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
  | Ok () -> Alcotest.fail "tampered object passed verification"

let test_missing_root () =
  let snap, _ = build_store () in
  let orphan = { snap with Snapshot.s_root = Sha1.digest_string "nowhere" } in
  match Snapshot.verify orphan with
  | Error (Snapshot.Missing_root _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
  | Ok () -> Alcotest.fail "unresolvable root passed verification"

let test_truncation () =
  let snap, _ = build_store () in
  let s = Snapshot.encode snap in
  (* Every proper prefix must decode to a structured error. *)
  List.iter
    (fun frac ->
      let cut = String.length s * frac / 10 in
      match Snapshot.decode (String.sub s 0 cut) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "prefix of %d bytes decoded as a full store" cut)
    [ 1; 3; 5; 7; 9 ]

let corrupt_byte_prop =
  QCheck.Test.make ~count:300
    ~name:"one flipped byte decodes to a structured error, never a crash"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos, delta) ->
      let snap, _ = build_store () in
      let s = Bytes.of_string (Snapshot.encode snap) in
      let i = pos mod Bytes.length s in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor delta));
      match Snapshot.decode (Bytes.to_string s) with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "flip at %d (xor %d) still decoded" i delta
      | exception e ->
        QCheck.Test.fail_reportf "flip at %d (xor %d) raised %s" i delta
          (Printexc.to_string e))

(* --- Manifests -------------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m =
    { Wexec.m_job = "j1"; m_epoch = 3; m_version = 17; m_root = String.make 40 'a' }
  in
  (match Wexec.manifest_of_json (Wexec.manifest_to_json m) with
  | Some m' -> check Alcotest.bool "round trip" true (m = m')
  | None -> Alcotest.fail "manifest did not round-trip");
  (match Wexec.manifest_of_json Json.null with
  | None -> ()
  | Some _ -> Alcotest.fail "null parsed as a manifest");
  match Wexec.manifest_of_json (Json.obj [ ("job", Json.string "j") ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "partial object parsed as a manifest"

(* --- Sharded snapshot/restore ---------------------------------------------- *)

let test_sharded_roundtrip () =
  let eng = Engine.create () in
  let sess =
    Session.create eng ~fanout:2 ~rank_topology:Session.Direct ~size:8 ()
  in
  let vt = Volumes.load sess ~shards:2 () in
  (* First components chosen to land one on each volume. *)
  let comp vol =
    let rec find i =
      let c = Printf.sprintf "s%d" i in
      match Volumes.volume_for_key vt c with Ok v when v = vol -> c | _ -> find (i + 1)
    in
    find 0
  in
  let keys =
    List.concat_map
      (fun vol -> List.init 3 (fun i -> Printf.sprintf "%s.k%d" (comp vol) i))
      [ 0; 1 ]
  in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Volumes.client vt ~rank:5 in
         List.iter
           (fun k -> expect_ok "put" (Volumes.put c ~key:k (Json.string ("v-" ^ k))))
           keys;
         ignore (expect_ok "commit" (Volumes.commit c) : int))
      : Proc.pid);
  Engine.run eng;
  let snap = expect_ok "snapshot" (Volumes.snapshot vt) in
  expect_ok "verify" (Result.map_error Snapshot.error_to_string (Snapshot.verify snap));
  (match snap.Snapshot.s_composite with
  | Some cx -> check Alcotest.int "composite spans both volumes" 2 (Array.length cx.Flux_kvs.Proto.cx_roots)
  | None -> Alcotest.fail "sharded snapshot lacks its composite record");
  let decoded =
    expect_ok "decode"
      (Result.map_error Snapshot.error_to_string (Snapshot.decode (Snapshot.encode snap)))
  in
  (* Restore into a brand-new sharded session and read every key back. *)
  let eng2 = Engine.create () in
  let sess2 =
    Session.create eng2 ~fanout:2 ~rank_topology:Session.Direct ~size:8 ()
  in
  let vt2 = Volumes.load sess2 ~shards:2 () in
  expect_ok "restore" (Volumes.restore vt2 decoded);
  ignore
    (Proc.spawn eng2 (fun () ->
         (* Wait for the restored setroots to reach rank 3's slaves
            before reading through them. *)
         (match decoded.Snapshot.s_composite with
         | None -> ()
         | Some cx ->
           Array.iteri
             (fun vol (ri : Flux_kvs.Proto.root_info) ->
               while
                 Kvs.version (Volumes.instance vt2 ~volume:vol ~rank:3)
                 < ri.Flux_kvs.Proto.ri_version
               do
                 Proc.sleep 0.005
               done)
             cx.Flux_kvs.Proto.cx_roots);
         let c = Volumes.client vt2 ~rank:3 in
         List.iter
           (fun k ->
             let v = expect_ok ("get " ^ k) (Volumes.get c ~key:k) in
             check
               (Alcotest.testable Json.pp Json.equal)
               k
               (Json.string ("v-" ^ k))
               v)
           keys)
      : Proc.pid);
  Engine.run eng2

let () =
  Alcotest.run "ckpt"
    [
      ( "schedules",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d: %s, 0 violations" seed
                 (kind_name (kind_of_seed seed)))
              `Quick (test_schedule seed))
          seeds
        @ [
            Alcotest.test_case "node-mid-job deterministic" `Quick
              (test_deterministic Ckpt.Node_mid_job);
            Alcotest.test_case "master-mid-snapshot deterministic" `Quick
              (test_deterministic Ckpt.Master_mid_snapshot);
            Alcotest.test_case "ckpt-fence-window deterministic" `Quick
              (test_deterministic Ckpt.Between_ckpt_and_fence);
            Alcotest.test_case "requeue path exercised" `Quick test_requeue_happens;
          ] );
      ( "store",
        [
          Alcotest.test_case "interior+leaf round-trip" `Quick test_tree_roundtrip;
          Alcotest.test_case "re-hash catches tampering" `Quick test_rehash_detects_tamper;
          Alcotest.test_case "missing root detected" `Quick test_missing_root;
          Alcotest.test_case "truncation detected" `Quick test_truncation;
          QCheck_alcotest.to_alcotest corrupt_byte_prop;
        ] );
      ( "manifests",
        [ Alcotest.test_case "json round-trip is total" `Quick test_manifest_roundtrip ] );
      ( "sharded",
        [
          Alcotest.test_case "snapshot/restore round-trip across volumes" `Quick
            test_sharded_roundtrip;
        ] );
    ]
