(* Checkpoint/requeue kill schedules, snapshot store round-trips, and
   the damage model: a killed worker, a master lost mid-snapshot, or a
   death in the checkpoint/fence window must cost no acked write; a
   store rebuilt from serialized bytes must read back identically; and
   any single flipped byte must decode to a structured error. *)

module Ckpt = Flux_kap.Ckpt
module Snapshot = Flux_kvs.Snapshot
module Tree = Flux_kvs.Tree
module Kvs = Flux_kvs.Kvs_module
module Volumes = Flux_kvs.Volumes
module Client = Flux_kvs.Client
module Wexec = Flux_modules.Wexec
module Sha1 = Flux_sha1.Sha1
module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Metrics = Flux_trace.Metrics

let check = Alcotest.check
let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

(* --- Kill schedules -------------------------------------------------------- *)

let seeds = List.init 16 (fun i -> 1 + (13 * i))

let kind_of_seed seed =
  match seed mod 3 with
  | 0 -> Ckpt.Node_mid_job
  | 1 -> Ckpt.Master_mid_snapshot
  | _ -> Ckpt.Between_ckpt_and_fence

let kind_name = function
  | Ckpt.Node_mid_job -> "node-mid-job"
  | Ckpt.Master_mid_snapshot -> "master-mid-snapshot"
  | Ckpt.Between_ckpt_and_fence -> "between-ckpt-and-fence"

let run_seed seed =
  Ckpt.run { Ckpt.default with Ckpt.seed; kill = Some (kind_of_seed seed) }

let test_schedule seed () =
  let r = run_seed seed in
  (match r.Ckpt.r_violations with
  | [] -> ()
  | vs ->
    Alcotest.failf "seed %d: %d violations:\n%s" seed (List.length vs)
      (String.concat "\n" vs));
  check Alcotest.int
    (Printf.sprintf "seed %d: every epoch checkpointed" seed)
    Ckpt.default.Ckpt.epochs r.Ckpt.r_acked_epoch;
  (* Master schedules kill twice: the pre-phase deposes rank 0, then the
     assassin strikes the acting master while the capture is in flight. *)
  let min_kills =
    match kind_of_seed seed with Ckpt.Master_mid_snapshot -> 2 | _ -> 1
  in
  check Alcotest.bool
    (Printf.sprintf "seed %d: the schedule killed someone" seed)
    true
    (r.Ckpt.r_kills >= min_kills);
  check Alcotest.int
    (Printf.sprintf "seed %d: everyone killed was revived" seed)
    r.Ckpt.r_kills r.Ckpt.r_revives;
  check Alcotest.bool
    (Printf.sprintf "seed %d: the job completed" seed)
    true (r.Ckpt.r_attempts >= 1);
  check Alcotest.bool
    (Printf.sprintf "seed %d: readback exercised" seed)
    true (r.Ckpt.r_keys_checked > 0);
  check Alcotest.bool
    (Printf.sprintf "seed %d: final snapshot non-empty" seed)
    true
    (r.Ckpt.r_snapshot_objects > 0)

let test_deterministic kind () =
  let cfg = { Ckpt.default with Ckpt.seed = 7; kill = Some kind } in
  let a = Ckpt.run cfg and b = Ckpt.run cfg in
  if Ckpt.fingerprint a <> Ckpt.fingerprint b then
    Alcotest.failf "%s: same seed produced different runs" (kind_name kind);
  if a <> b then
    Alcotest.failf "%s: same seed produced different reports" (kind_name kind)

let test_requeue_happens () =
  (* Node death mid-job must actually exercise the requeue path on at
     least one seed of the sweep. *)
  let requeued =
    List.exists
      (fun seed ->
        let r =
          Ckpt.run { Ckpt.default with Ckpt.seed = seed; kill = Some Ckpt.Node_mid_job }
        in
        r.Ckpt.r_requeues >= 1)
      [ 1; 3; 6; 9 ]
  in
  check Alcotest.bool "some schedule requeued" true requeued

(* --- Snapshot store round-trips -------------------------------------------- *)

(* Build a store by hand with interior directories, referenced leaf
   objects, and inline values — every dirent kind the walk must follow. *)
let build_store () =
  let tbl : (string, Json.t) Hashtbl.t = Hashtbl.create 16 in
  let store o =
    let sha = Sha1.digest_json o in
    Hashtbl.replace tbl (Sha1.to_hex sha) o;
    sha
  in
  let fetch sha = Hashtbl.find_opt tbl (Sha1.to_hex sha) in
  ignore (store Tree.empty_dir : Sha1.digest);
  let leaf = Json.obj [ ("payload", Json.string (String.make 64 'q')) ] in
  let leaf_sha = store leaf in
  let root =
    Tree.apply_tuples ~fetch ~store ~root:Tree.empty_dir_sha
      [
        ("a.b.c", Tree.dirent_file leaf_sha);
        ("a.b.d", Tree.dirent_val (Json.int 42));
        ("a.e", Tree.dirent_val (Json.string "inline"));
        ("x", Tree.dirent_file leaf_sha);
      ]
  in
  let objects = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  ( {
      Snapshot.s_service = "kvs";
      s_root = root;
      s_version = 1;
      s_epoch = 0;
      s_composite = None;
      s_objects = List.sort (fun (a, _) (b, _) -> String.compare a b) objects;
    },
    leaf )

let lookup_through snap key =
  let fetch sha =
    List.assoc_opt (Sha1.to_hex sha) snap.Snapshot.s_objects
  in
  Tree.lookup ~fetch ~root:snap.Snapshot.s_root ~key ()

let test_tree_roundtrip () =
  let snap, leaf = build_store () in
  expect_ok "verify" (Result.map_error Snapshot.error_to_string (Snapshot.verify snap));
  let decoded =
    expect_ok "decode"
      (Result.map_error Snapshot.error_to_string (Snapshot.decode (Snapshot.encode snap)))
  in
  check Alcotest.string "encode is a fixed point" (Snapshot.encode snap)
    (Snapshot.encode decoded);
  check Alcotest.bool "root preserved" true
    (Sha1.equal snap.Snapshot.s_root decoded.Snapshot.s_root);
  check Alcotest.int "version preserved" snap.Snapshot.s_version decoded.Snapshot.s_version;
  (* Interior directories and leaves both resolve through the decoded
     object set alone. *)
  (match lookup_through decoded "a.b.c" with
  | Tree.Found v -> check (Alcotest.testable Json.pp Json.equal) "leaf" leaf v
  | _ -> Alcotest.fail "a.b.c did not resolve from decoded store");
  (match lookup_through decoded "a.b.d" with
  | Tree.Found v -> check (Alcotest.testable Json.pp Json.equal) "inline" (Json.int 42) v
  | _ -> Alcotest.fail "a.b.d did not resolve from decoded store");
  match lookup_through decoded "a.nope" with
  | Tree.No_key -> ()
  | _ -> Alcotest.fail "phantom key resolved"

let test_rehash_detects_tamper () =
  let snap, _ = build_store () in
  let tampered =
    {
      snap with
      Snapshot.s_objects =
        (match snap.Snapshot.s_objects with
        | (sha, _) :: rest -> (sha, Json.string "swapped") :: rest
        | [] -> assert false);
    }
  in
  match Snapshot.verify tampered with
  | Error (Snapshot.Corrupt_object _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
  | Ok () -> Alcotest.fail "tampered object passed verification"

let test_missing_root () =
  let snap, _ = build_store () in
  let orphan = { snap with Snapshot.s_root = Sha1.digest_string "nowhere" } in
  match Snapshot.verify orphan with
  | Error (Snapshot.Missing_root _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Snapshot.error_to_string e)
  | Ok () -> Alcotest.fail "unresolvable root passed verification"

let test_truncation () =
  let snap, _ = build_store () in
  let s = Snapshot.encode snap in
  (* Every proper prefix must decode to a structured error. *)
  List.iter
    (fun frac ->
      let cut = String.length s * frac / 10 in
      match Snapshot.decode (String.sub s 0 cut) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "prefix of %d bytes decoded as a full store" cut)
    [ 1; 3; 5; 7; 9 ]

let corrupt_byte_prop =
  QCheck.Test.make ~count:300
    ~name:"one flipped byte decodes to a structured error, never a crash"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos, delta) ->
      let snap, _ = build_store () in
      let s = Bytes.of_string (Snapshot.encode snap) in
      let i = pos mod Bytes.length s in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor delta));
      match Snapshot.decode (Bytes.to_string s) with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "flip at %d (xor %d) still decoded" i delta
      | exception e ->
        QCheck.Test.fail_reportf "flip at %d (xor %d) raised %s" i delta
          (Printexc.to_string e))

(* --- Manifests -------------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m =
    { Wexec.m_job = "j1"; m_epoch = 3; m_version = 17; m_root = String.make 40 'a' }
  in
  (match Wexec.manifest_of_json (Wexec.manifest_to_json m) with
  | Some m' -> check Alcotest.bool "round trip" true (m = m')
  | None -> Alcotest.fail "manifest did not round-trip");
  (match Wexec.manifest_of_json Json.null with
  | None -> ()
  | Some _ -> Alcotest.fail "null parsed as a manifest");
  match Wexec.manifest_of_json (Json.obj [ ("job", Json.string "j") ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "partial object parsed as a manifest"

(* --- Wexec lifecycle edges -------------------------------------------------- *)

(* A small center with wexec loaded and metrics attached, plus a ledger
   of which rank executed how many task bodies to completion. *)
let wexec_rig ~size =
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:2 ~size () in
  ignore (Kvs.load sess () : Kvs.t array);
  ignore (Flux_modules.Barrier.load sess () : Flux_modules.Barrier.t array);
  let wx = Wexec.load sess () in
  let metrics = Metrics.create () in
  Wexec.set_metrics_all wx metrics;
  let execs = Array.make size 0 in
  (eng, sess, metrics, execs)

let counter m name = Metrics.counter_total m ~name

let test_die_before_ack () =
  (* A worker dies mid-task: the master must death-account its share
     exactly once, the job must still complete (with the failure), and
     the killed task body must never reach its final statement. *)
  let eng, sess, metrics, execs = wexec_rig ~size:4 in
  Wexec.register_program "life.slow" (fun ctx ->
      Proc.sleep 0.5;
      execs.(ctx.Wexec.px_rank) <- execs.(ctx.Wexec.px_rank) + 1);
  let result = ref None in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         let api = Api.connect sess ~rank:0 in
         result :=
           Some (Wexec.run api ~jobid:"j-die" ~prog:"life.slow" ~ranks:[ 1; 3 ] ()))
      : Proc.pid);
  ignore
    (Proc.spawn eng ~name:"assassin" (fun () ->
         Proc.sleep 0.1;
         Session.mark_down sess 3;
         Proc.sleep 0.5;
         Session.mark_up sess 3)
      : Proc.pid);
  Engine.run eng;
  (match !result with
  | Some (Ok c) ->
    check Alcotest.int "both tasks accounted" 2 c.Wexec.c_ntasks;
    check Alcotest.int "the dead rank's task failed" 1 c.Wexec.c_failed
  | Some (Error e) -> Alcotest.failf "run failed outright: %s" e
  | None -> Alcotest.fail "run never returned");
  check Alcotest.int "survivor executed" 1 execs.(1);
  check Alcotest.int "dead rank never finished its body" 0 execs.(3);
  check Alcotest.int "death-accounted exactly once" 1
    (counter metrics "wexec.tasks.death_accounted");
  check Alcotest.int "job completed exactly once" 1 (counter metrics "wexec.jobs.completed")

let test_no_zombie_after_revival () =
  (* Regression for the event-backlog zombie: a rank that is down at
     launch gets death-accounted immediately, but the wexec.exec event
     sits in the global log — on revival the backlog replays and, with
     no teardown, the revived rank would execute side effects for a job
     whose failure was acked (and whose work was requeued) long ago.
     The replayed wexec.complete must kill the replayed launch in the
     same engine step. *)
  let eng, sess, metrics, execs = wexec_rig ~size:4 in
  Wexec.register_program "life.tiny" (fun ctx ->
      Proc.sleep 0.05;
      execs.(ctx.Wexec.px_rank) <- execs.(ctx.Wexec.px_rank) + 1);
  let result = ref None in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         Session.mark_down sess 3;
         Proc.sleep 0.05;
         let api = Api.connect sess ~rank:0 in
         result :=
           Some (Wexec.run api ~jobid:"j-zombie" ~prog:"life.tiny" ~ranks:[ 1; 3 ] ());
         (* Job is over (rank 3 death-accounted). Now revive: the
            backlog replay must not resurrect rank 3's task. *)
         Proc.sleep 0.2;
         Session.mark_up sess 3;
         Proc.sleep 1.0)
      : Proc.pid);
  Engine.run eng;
  (match !result with
  | Some (Ok c) -> check Alcotest.int "dead-at-launch share failed" 1 c.Wexec.c_failed
  | Some (Error e) -> Alcotest.failf "run failed outright: %s" e
  | None -> Alcotest.fail "run never returned");
  check Alcotest.int "live rank executed" 1 execs.(1);
  check Alcotest.int "revived rank executed nothing" 0 execs.(3);
  check Alcotest.int "replayed launch was torn down" 1
    (counter metrics "wexec.tasks.stale_killed")

let test_duplicate_done_idempotent () =
  (* Completion accounting must be idempotent per rank: a duplicate (or
     forged) wexec.done for a rank already at its per-rank quota is
     clamped to zero during the run and ignored entirely after it. *)
  let eng, sess, metrics, execs = wexec_rig ~size:4 in
  Wexec.register_program "life.quick" (fun ctx ->
      Proc.sleep 0.2;
      execs.(ctx.Wexec.px_rank) <- execs.(ctx.Wexec.px_rank) + 1);
  let forged r =
    Json.obj
      [
        ("jobid", Json.string "j-dup");
        ("count", Json.int 1);
        ("failed", Json.int 1);
        ("rank", Json.int r);
      ]
  in
  let result = ref None in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         let api = Api.connect sess ~rank:0 in
         result :=
           Some (Wexec.run api ~jobid:"j-dup" ~prog:"life.quick" ~ranks:[ 1; 2 ] ()))
      : Proc.pid);
  ignore
    (Proc.spawn eng ~name:"forger" (fun () ->
         let api = Api.connect sess ~rank:2 in
         (* Mid-run: rank 2 has not reported yet; the forged failure
            claims its quota. The real report must then be clamped, not
            double-counted. *)
         Proc.sleep 0.1;
         (match Api.rpc api ~topic:"wexec.done" (forged 2) with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "mid-run duplicate rejected: %s" e);
         (* Post-completion: the job is gone from the master's table;
            the stale report must be ignored without error. *)
         Proc.sleep 0.5;
         match Api.rpc api ~topic:"wexec.done" (forged 1) with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "post-run duplicate rejected: %s" e)
      : Proc.pid);
  Engine.run eng;
  (match !result with
  | Some (Ok c) ->
    check Alcotest.int "totals reach exactly ntasks" 2 c.Wexec.c_ntasks;
    (* The forged failure won rank 2's quota slot; the real success was
       clamped. What matters is the totals are exact, not inflated. *)
    check Alcotest.int "failures never exceed the forgery" 1 c.Wexec.c_failed
  | Some (Error e) -> Alcotest.failf "run failed outright: %s" e
  | None -> Alcotest.fail "run never returned");
  check Alcotest.int "both bodies still executed" 2 (execs.(1) + execs.(2));
  check Alcotest.int "job completed exactly once" 1 (counter metrics "wexec.jobs.completed")

let test_requeue_resumes_from_manifest () =
  (* Death mid-epoch, then a requeue of the same logical job: the second
     attempt must find the first attempt's newest durable manifest and
     resume past it, interleaving the wexec failure path with the
     checkpoint machinery. *)
  let eng, sess, metrics, execs = wexec_rig ~size:4 in
  ignore metrics;
  let resumes = ref [] in
  let epochs_done = ref [] in
  Wexec.register_program "life.ckpt" (fun ctx ->
      let resume =
        match Wexec.newest_manifest ctx.Wexec.px_kvs ~jobid:ctx.Wexec.px_jobid ~max_epoch:2 with
        | Some m -> m.Wexec.m_epoch
        | None -> 0
      in
      if ctx.Wexec.px_global_index = 0 then resumes := resume :: !resumes;
      for e = resume + 1 to 2 do
        Proc.sleep 0.2;
        match Wexec.checkpoint ~timeout:1.0 ctx ~epoch:e with
        | Ok _ ->
          if ctx.Wexec.px_global_index = 0 then epochs_done := e :: !epochs_done
        | Error er -> raise (Wexec.Task_failure er)
      done;
      execs.(ctx.Wexec.px_rank) <- execs.(ctx.Wexec.px_rank) + 1);
  let first = ref None and second = ref None in
  ignore
    (Proc.spawn eng ~name:"driver" (fun () ->
         let api = Api.connect sess ~rank:0 in
         first := Some (Wexec.run api ~jobid:"j-rq" ~prog:"life.ckpt" ~ranks:[ 1; 2 ] ());
         (* The worker died mid-epoch-2; requeue the same logical job
            once the rank is back. *)
         Proc.sleep 0.5;
         second := Some (Wexec.run api ~jobid:"j-rq" ~prog:"life.ckpt" ~ranks:[ 1; 2 ] ()))
      : Proc.pid);
  ignore
    (Proc.spawn eng ~name:"assassin" (fun () ->
         (* Epoch 1 fences at ~0.2; strike during epoch 2's work phase,
            then revive well before the requeue. *)
         Proc.sleep 0.3;
         Session.mark_down sess 2;
         Proc.sleep 0.3;
         Session.mark_up sess 2)
      : Proc.pid);
  Engine.run eng;
  (match !first with
  | Some (Ok c) -> check Alcotest.bool "first attempt failed tasks" true (c.Wexec.c_failed > 0)
  | Some (Error e) -> Alcotest.failf "first attempt errored: %s" e
  | None -> Alcotest.fail "first attempt never returned");
  (match !second with
  | Some (Ok c) -> check Alcotest.int "requeue completed clean" 0 c.Wexec.c_failed
  | Some (Error e) -> Alcotest.failf "requeue errored: %s" e
  | None -> Alcotest.fail "requeue never returned");
  (match List.rev !resumes with
  | [ 0; r2 ] ->
    check Alcotest.int "requeue resumed from the epoch-1 manifest" 1 r2
  | rs -> Alcotest.failf "unexpected resume trail: [%s]"
            (String.concat "; " (List.map string_of_int rs)));
  check Alcotest.bool "epoch 2 eventually checkpointed" true (List.mem 2 !epochs_done);
  (* The epoch-2 manifest from the successful attempt must verify. *)
  ignore
    (Proc.spawn eng ~name:"reader" (fun () ->
         let kvs = Client.connect sess ~rank:0 in
         match Wexec.newest_manifest kvs ~jobid:"j-rq" ~max_epoch:2 with
         | Some m -> check Alcotest.int "newest manifest is epoch 2" 2 m.Wexec.m_epoch
         | None -> Alcotest.fail "no manifest after successful requeue")
      : Proc.pid);
  Engine.run eng

(* --- Sharded snapshot/restore ---------------------------------------------- *)

let test_sharded_roundtrip () =
  let eng = Engine.create () in
  let sess =
    Session.create eng ~fanout:2 ~rank_topology:Session.Direct ~size:8 ()
  in
  let vt = Volumes.load sess ~shards:2 () in
  (* First components chosen to land one on each volume. *)
  let comp vol =
    let rec find i =
      let c = Printf.sprintf "s%d" i in
      match Volumes.volume_for_key vt c with Ok v when v = vol -> c | _ -> find (i + 1)
    in
    find 0
  in
  let keys =
    List.concat_map
      (fun vol -> List.init 3 (fun i -> Printf.sprintf "%s.k%d" (comp vol) i))
      [ 0; 1 ]
  in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Volumes.client vt ~rank:5 in
         List.iter
           (fun k -> expect_ok "put" (Volumes.put c ~key:k (Json.string ("v-" ^ k))))
           keys;
         ignore (expect_ok "commit" (Volumes.commit c) : int))
      : Proc.pid);
  Engine.run eng;
  let snap = expect_ok "snapshot" (Volumes.snapshot vt) in
  expect_ok "verify" (Result.map_error Snapshot.error_to_string (Snapshot.verify snap));
  (match snap.Snapshot.s_composite with
  | Some cx -> check Alcotest.int "composite spans both volumes" 2 (Array.length cx.Flux_kvs.Proto.cx_roots)
  | None -> Alcotest.fail "sharded snapshot lacks its composite record");
  let decoded =
    expect_ok "decode"
      (Result.map_error Snapshot.error_to_string (Snapshot.decode (Snapshot.encode snap)))
  in
  (* Restore into a brand-new sharded session and read every key back. *)
  let eng2 = Engine.create () in
  let sess2 =
    Session.create eng2 ~fanout:2 ~rank_topology:Session.Direct ~size:8 ()
  in
  let vt2 = Volumes.load sess2 ~shards:2 () in
  expect_ok "restore" (Volumes.restore vt2 decoded);
  ignore
    (Proc.spawn eng2 (fun () ->
         (* Wait for the restored setroots to reach rank 3's slaves
            before reading through them. *)
         (match decoded.Snapshot.s_composite with
         | None -> ()
         | Some cx ->
           Array.iteri
             (fun vol (ri : Flux_kvs.Proto.root_info) ->
               while
                 Kvs.version (Volumes.instance vt2 ~volume:vol ~rank:3)
                 < ri.Flux_kvs.Proto.ri_version
               do
                 Proc.sleep 0.005
               done)
             cx.Flux_kvs.Proto.cx_roots);
         let c = Volumes.client vt2 ~rank:3 in
         List.iter
           (fun k ->
             let v = expect_ok ("get " ^ k) (Volumes.get c ~key:k) in
             check
               (Alcotest.testable Json.pp Json.equal)
               k
               (Json.string ("v-" ^ k))
               v)
           keys)
      : Proc.pid);
  Engine.run eng2

let () =
  Alcotest.run "ckpt"
    [
      ( "schedules",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d: %s, 0 violations" seed
                 (kind_name (kind_of_seed seed)))
              `Quick (test_schedule seed))
          seeds
        @ [
            Alcotest.test_case "node-mid-job deterministic" `Quick
              (test_deterministic Ckpt.Node_mid_job);
            Alcotest.test_case "master-mid-snapshot deterministic" `Quick
              (test_deterministic Ckpt.Master_mid_snapshot);
            Alcotest.test_case "ckpt-fence-window deterministic" `Quick
              (test_deterministic Ckpt.Between_ckpt_and_fence);
            Alcotest.test_case "requeue path exercised" `Quick test_requeue_happens;
          ] );
      ( "store",
        [
          Alcotest.test_case "interior+leaf round-trip" `Quick test_tree_roundtrip;
          Alcotest.test_case "re-hash catches tampering" `Quick test_rehash_detects_tamper;
          Alcotest.test_case "missing root detected" `Quick test_missing_root;
          Alcotest.test_case "truncation detected" `Quick test_truncation;
          QCheck_alcotest.to_alcotest corrupt_byte_prop;
        ] );
      ( "manifests",
        [ Alcotest.test_case "json round-trip is total" `Quick test_manifest_roundtrip ] );
      ( "lifecycle",
        [
          Alcotest.test_case "rank dies before completion ack" `Quick test_die_before_ack;
          Alcotest.test_case "no zombie execution after revival" `Quick
            test_no_zombie_after_revival;
          Alcotest.test_case "duplicate completion reports are idempotent" `Quick
            test_duplicate_done_idempotent;
          Alcotest.test_case "requeue resumes from the newest manifest" `Quick
            test_requeue_resumes_from_manifest;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "snapshot/restore round-trip across volumes" `Quick
            test_sharded_roundtrip;
        ] );
    ]
