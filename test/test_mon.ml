(* Focused tests for the mon comms module's distributed machinery: the
   KVS-watch activation path, exact root aggregation across epochs, and
   partial-forward liveness when a sampler dies mid-epoch. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Hb = Flux_modules.Hb
module Mon = Flux_modules.Mon

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

let run_clients eng bodies =
  let remaining = ref (List.length bodies) in
  List.iter (fun body -> ignore (Proc.spawn eng (fun () -> body (); decr remaining))) bodies;
  Engine.run eng;
  if !remaining <> 0 then Alcotest.failf "%d clients did not complete" !remaining

(* Activation is a KVS write, not an RPC to the module: any client
   writing conf.mon.script directly must start sampling on every rank
   via the setroot watch — the script-install path the prototype used
   for its Linux snippets. *)
let test_script_install_via_kvs_watch () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  ignore (Kvs.load sess () : Kvs.t array);
  let hb = Hb.load sess ~period:0.05 () in
  let mon = Mon.load sess ~hb () in
  Mon.register_sampler "watch-probe" (fun ~rank:_ ~epoch:_ -> 1.0);
  run_clients eng
    [
      (fun () ->
        let c = Client.connect sess ~rank:4 in
        (* A few idle heartbeats first: nothing samples before install. *)
        Proc.sleep 0.2;
        check bool "no samples before install" true
          (Array.for_all (fun t -> Mon.samples_taken t = 0) mon);
        expect_ok "raw kvs put"
          (Client.put c ~key:"conf.mon.script" (Json.string "watch-probe"));
        ignore (expect_ok "commit" (Client.commit c) : int);
        Proc.sleep 0.5;
        Hb.stop hb);
    ];
  check bool "every rank picked the script up off the watch" true
    (Array.for_all (fun t -> Mon.samples_taken t > 0) mon);
  check bool "root aggregated" true (Mon.latest_aggregate mon.(0) <> None)

(* The root's aggregate is the exact tree reduction: with sampler value
   = rank, count/sum/min/max are closed-form, and successive epochs keep
   re-proving it (state from epoch e must not leak into e+1). *)
let test_root_aggregation_exact_across_epochs () =
  let eng = Engine.create () in
  let size = 9 in
  let sess = Session.create eng ~size () in
  ignore (Kvs.load sess () : Kvs.t array);
  let hb = Hb.load sess ~period:0.05 () in
  let mon = Mon.load sess ~hb () in
  Mon.register_sampler "rankval" (fun ~rank ~epoch:_ -> float_of_int rank);
  let seen = ref [] in
  run_clients eng
    [
      (fun () ->
        let api = Api.connect sess ~rank:2 in
        expect_ok "activate" (Mon.activate api ~script:"rankval");
        (* Sample the root's aggregate after each settled epoch. *)
        for _ = 1 to 6 do
          Proc.sleep 0.05;
          match Mon.latest_aggregate mon.(0) with
          | Some (e, s) when not (List.mem_assoc e !seen) -> seen := (e, s) :: !seen
          | _ -> ()
        done;
        Hb.stop hb);
    ];
  let complete = List.filter (fun (_, s) -> s.Mon.s_count = size) !seen in
  check bool "at least two complete epochs observed" true (List.length complete >= 2);
  List.iter
    (fun (e, s) ->
      check (Alcotest.float 1e-9) (Printf.sprintf "epoch %d min" e) 0.0 s.Mon.s_min;
      check (Alcotest.float 1e-9) (Printf.sprintf "epoch %d max" e) 8.0 s.Mon.s_max;
      check (Alcotest.float 1e-9) (Printf.sprintf "epoch %d sum" e) 36.0 s.Mon.s_sum)
    complete;
  (* Distinct epochs produced distinct aggregates (no stale reuse). *)
  let epochs = List.map fst complete in
  check int "epochs are distinct" (List.length epochs) (List.length (List.sort_uniq compare epochs))

(* A rank dying between its sample and the epoch's completion must not
   wedge the reduction: the window timer forwards the partial, the root
   still aggregates the survivors, and the engine drains (the test
   finishing at all is the no-hang proof). *)
let test_sampler_dying_mid_epoch_no_hang () =
  let eng = Engine.create () in
  let size = 7 in
  let sess = Session.create eng ~size () in
  ignore (Kvs.load sess () : Kvs.t array);
  let hb = Hb.load sess ~period:0.05 () in
  let mon = Mon.load sess ~hb () in
  Mon.register_sampler "steady" (fun ~rank:_ ~epoch:_ -> 1.0);
  let victim = 1 in
  (* An interior rank: its own sample is lost and its children's
     contributions dead-end, the hardest partial-forward case. *)
  run_clients eng
    [
      (fun () ->
        let api = Api.connect sess ~rank:3 in
        expect_ok "activate" (Mon.activate api ~script:"steady");
        Proc.sleep 0.3;
        Session.mark_down sess victim;
        Proc.sleep 0.4;
        Hb.stop hb);
    ];
  (* Reaching here is the point: Engine.run returned with a mid-epoch
     death in the tree. The root must still have aggregated afterwards,
     with fewer contributions than a full epoch. *)
  match Mon.latest_aggregate mon.(0) with
  | None -> Alcotest.fail "no aggregate at root after the death"
  | Some (_, s) ->
    check bool "partial epoch forwarded" true (s.Mon.s_count >= 1 && s.Mon.s_count < size);
    check (Alcotest.float 1e-9) "survivor samples intact" (float_of_int s.Mon.s_count) s.Mon.s_sum

let () =
  Alcotest.run "flux_mon"
    [
      ( "mon",
        [
          Alcotest.test_case "script install via kvs watch" `Quick
            test_script_install_via_kvs_watch;
          Alcotest.test_case "root aggregation exact across epochs" `Quick
            test_root_aggregation_exact_across_epochs;
          Alcotest.test_case "sampler dying mid-epoch no hang" `Quick
            test_sampler_dying_mid_epoch_no_hang;
        ] );
    ]
