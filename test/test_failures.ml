(* Failure-path coverage for the RPC lifecycle: injected faults on the
   fabric (loss, blackouts), deadline/retransmit behaviour, fence
   liveness with dead or silent children, and cache byte accounting
   under eviction pressure. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Net = Flux_sim.Net
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let json_t = Alcotest.testable Json.pp Json.equal

let expect_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

let echo_module b =
  {
    Session.mod_name = "echo";
    on_request =
      (fun msg ->
        Session.respond b msg (Json.obj [ ("rank", Json.int (Session.rank b)) ]);
        Session.Consumed);
    on_event = (fun _ -> ());
  }

(* --- Retransmission through a healed link ------------------------------- *)

let test_retry_succeeds_after_blackout () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:8 () in
  Session.load_module sess ~ranks:[ 0 ] echo_module;
  (* Black out the uplink before the request goes out: the first attempt
     becomes a dead letter, the deadline fires, and the retransmit (same
     nonce) goes through once the link has healed itself. *)
  Net.blackout (Session.rpc_net sess) ~src:1 ~dst:0 ~duration:1.0;
  let got = ref None in
  Session.request_up (Session.broker sess 1) ~idempotent:true ~topic:"echo.run"
    Json.null ~reply:(fun r -> got := Some r);
  Engine.run eng;
  (match !got with
  | Some (Ok p) -> check int "answered by the root" 0 (Json.to_int (Json.member "rank" p))
  | Some (Error e) -> Alcotest.failf "rpc failed: %s" e
  | None -> Alcotest.fail "rpc never completed");
  check bool "retransmitted at least once" true (Session.rpc_retries sess >= 1);
  check bool "first attempt was a dead letter" true
    ((Net.stats (Session.rpc_net sess)).Net.dead_letters >= 1);
  check int "no dangling pending entry" 0 (Session.pending_rpc_count sess 1)

let test_non_idempotent_rpc_fails_fast () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:8 () in
  Session.load_module sess ~ranks:[ 0 ] echo_module;
  Net.cut_link (Session.rpc_net sess) ~src:1 ~dst:0;
  let got = ref None in
  (* Without [idempotent] there is exactly one attempt: the deadline
     reports the loss instead of silently re-executing the request. *)
  Session.request_up (Session.broker sess 1) ~topic:"echo.run" Json.null
    ~reply:(fun r -> got := Some r);
  Engine.run eng;
  (match !got with
  | Some (Error "timeout") -> ()
  | Some _ -> Alcotest.fail "expected Error timeout"
  | None -> Alcotest.fail "rpc never completed");
  check int "no retransmissions" 0 (Session.rpc_retries sess);
  check int "timeout counted" 1 (Session.rpc_timeouts sess)

(* --- KVS get under injected loss through a healed parent ----------------- *)

let test_kvs_get_under_loss_via_healed_parent () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let _kvs = Kvs.load sess () in
  let big = Json.string (String.make 400 'x') in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:0 in
         expect_ok "put" (Client.put c ~key:"deep.a.b" big);
         ignore (expect_ok "commit" (Client.commit c) : int)));
  Engine.run eng;
  (* Kill rank 13's parent (rank 6) and degrade the fabric: every load
     the get faults in must now survive 10% message loss while routing
     through the healed parent (rank 2). *)
  Session.mark_down sess 6;
  Net.set_loss (Session.rpc_net sess) 0.10;
  let result = ref None in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         result := Some (Client.get c ~key:"deep.a.b")));
  Engine.run eng;
  (match !result with
  | Some (Ok v) -> check json_t "value survives loss + reparenting" big v
  | Some (Error e) -> Alcotest.failf "get failed under loss: %s" e
  | None -> Alcotest.fail "get never completed");
  check int "no dangling pending entries" 0
    (List.fold_left
       (fun acc r -> acc + Session.pending_rpc_count sess r)
       0
       (List.init 15 Fun.id))

(* --- Fence liveness ------------------------------------------------------- *)

let test_sparse_fence_with_dead_child () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let kvs = Kvs.load sess () in
  ignore kvs;
  let window = Kvs.default_config.Kvs.fence_window in
  (* Rank 6 is dead but never marked down: its parent (rank 2) keeps it
     in the children list and must give up waiting for it after two quiet
     windows instead of deadlocking the fence. *)
  Session.crash sess 6;
  let elapsed = ref infinity in
  let done_count = ref 0 in
  List.iter
    (fun i ->
      ignore
        (Proc.spawn eng (fun () ->
             let c = Client.connect sess ~rank:5 in
             expect_ok "put" (Client.put c ~key:(Printf.sprintf "sf.%d" i) (Json.int i));
             let t0 = Engine.now eng in
             ignore (expect_ok "fence" (Client.fence c ~name:"sparse" ~nprocs:2) : int);
             elapsed := Float.min !elapsed (Engine.now eng -. t0);
             incr done_count)))
    [ 0; 1 ];
  Engine.run eng;
  check int "both participants released" 2 !done_count;
  (* Per-hop the forwarding policy waits at most two windows of quiet;
     with one silent-sibling hop on the path the whole fence stays within
     three windows end to end. *)
  check bool "completed within the sparse-fence deadline" true
    (!elapsed <= 3.0 *. window)

let test_fence_survives_parent_death () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let _kvs = Kvs.load sess () in
  (* Rank 6 (parent of 13 and 14) is dead from the start but only marked
     down later: the slaves' fence flushes are swallowed by the dead
     host, time out, and the retransmit must route through the healed
     parent (rank 2) and complete the collective exactly once. *)
  Session.crash sess 6;
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Session.mark_down sess 6) : Engine.handle);
  let versions = ref [] in
  let bodies = [ 5; 13; 14 ] in
  List.iter
    (fun r ->
      ignore
        (Proc.spawn eng (fun () ->
             let c = Client.connect sess ~rank:r in
             expect_ok "put" (Client.put c ~key:(Printf.sprintf "pf.%d" r) (Json.int r));
             let v = expect_ok "fence" (Client.fence c ~name:"pdeath" ~nprocs:3) in
             versions := v :: !versions;
             (* After the fence every participant's write is visible. *)
             List.iter
               (fun r' ->
                 check json_t
                   (Printf.sprintf "pf.%d visible at %d" r' r)
                   (Json.int r')
                   (expect_ok "get" (Client.get c ~key:(Printf.sprintf "pf.%d" r'))))
               bodies)))
    bodies;
  Engine.run eng;
  check int "all participants released" 3 (List.length !versions);
  (match !versions with
  | v :: rest -> List.iter (fun v' -> check int "same fence version" v v') rest
  | [] -> ());
  check bool "flushes were retransmitted" true (Session.rpc_retries sess >= 1);
  check int "exactly one version bump" 1
    (match !versions with v :: _ -> v | [] -> 0)

(* --- Heal edge cases: root death, cascades, wide fan-outs, rejoin -------- *)

let subscribe_counters sess ranks =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.replace counts r 0;
      let api = Api.connect sess ~rank:r in
      Api.subscribe api ~prefix:"hx" (fun ~topic:_ _ ->
          Hashtbl.replace counts r (Hashtbl.find counts r + 1)))
    ranks;
  counts

let test_root_death_reroots () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let live = [ 1; 2; 3; 4; 5; 6 ] in
  let counts = subscribe_counters sess live in
  Session.mark_down sess 0;
  Engine.run eng;
  check int "lowest live rank is the new root" 1 (Session.root_rank sess);
  (* Rank 2's only static ancestor (0) is dead: the whole orphaned
     subtree attaches to the new root. *)
  check (Alcotest.option int) "rank 2 adopted by new root" (Some 1)
    (Session.tree_parent (Session.broker sess 2));
  check (Alcotest.option int) "new root has no parent" None
    (Session.tree_parent (Session.broker sess 1));
  (* The root-stamped sequence survives: events published after the root
     death still reach every live rank. *)
  let api = Api.connect sess ~rank:5 in
  Api.publish api ~topic:"hx.a" (Json.int 1);
  Engine.run eng;
  List.iter
    (fun r -> check int (Printf.sprintf "rank %d got the event" r) 1 (Hashtbl.find counts r))
    live

let test_cascading_ancestor_deaths () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  (* Rank 13's full static ancestor chain is 6 -> 2 -> 0; kill it bottom
     to top so each heal must look further up, ending at the new root. *)
  List.iter (fun r -> Session.mark_down sess r) [ 6; 2; 0 ];
  Engine.run eng;
  check int "new root" 1 (Session.root_rank sess);
  check (Alcotest.option int) "rank 13 falls through to the root" (Some 1)
    (Session.tree_parent (Session.broker sess 13));
  check (Alcotest.option int) "rank 14 falls through to the root" (Some 1)
    (Session.tree_parent (Session.broker sess 14));
  (* Rank 5 still has its live static ancestor path cut at 2: adopts root. *)
  check (Alcotest.option int) "rank 5 adopted by root" (Some 1)
    (Session.tree_parent (Session.broker sess 5));
  let live = Session.alive_ranks sess in
  let counts = subscribe_counters sess live in
  let api = Api.connect sess ~rank:14 in
  Api.publish api ~topic:"hx.c" (Json.int 1);
  Engine.run eng;
  List.iter
    (fun r -> check int (Printf.sprintf "rank %d got the event" r) 1 (Hashtbl.find counts r))
    live

let test_fanout3_root_death () =
  let eng = Engine.create () in
  let sess = Session.create eng ~fanout:3 ~size:13 () in
  Session.mark_down sess 0;
  Engine.run eng;
  check int "new root" 1 (Session.root_rank sess);
  (* All three static children of rank 0 must end up under the new root
     (rank 1 by promotion, 2 and 3 by adoption). *)
  let kids = List.sort compare (Session.tree_children (Session.broker sess 1)) in
  check bool "rank 2 under new root" true (List.mem 2 kids);
  check bool "rank 3 under new root" true (List.mem 3 kids);
  (* Rank 1's own static children are still there. *)
  List.iter (fun c -> check bool "static child kept" true (List.mem c kids)) [ 4; 5; 6 ]

let test_heal_then_rejoin_roundtrip () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let epoch0 = Session.topology_epoch sess in
  Session.mark_down sess 6;
  Session.mark_down sess 0;
  Engine.run eng;
  check int "re-rooted at 1" 1 (Session.root_rank sess);
  Session.mark_up sess 6;
  Session.mark_up sess 0;
  Engine.run eng;
  (* Pristine static topology restored. *)
  check int "rank 0 is root again" 0 (Session.root_rank sess);
  check bool "topology epoch advanced" true (Session.topology_epoch sess > epoch0);
  for r = 1 to 14 do
    check (Alcotest.option int)
      (Printf.sprintf "rank %d static parent restored" r)
      (Some ((r - 1) / 2))
      (Session.tree_parent (Session.broker sess r))
  done;
  (* Revived ranks receive post-rejoin events. *)
  let all = List.init 15 Fun.id in
  let counts = subscribe_counters sess all in
  let api = Api.connect sess ~rank:13 in
  Api.publish api ~topic:"hx.r" (Json.int 1);
  Engine.run eng;
  List.iter
    (fun r -> check int (Printf.sprintf "rank %d got the event" r) 1 (Hashtbl.find counts r))
    all

let test_live_rejoin_clears_declared_down () =
  let module Hb = Flux_modules.Hb in
  let module Live = Flux_modules.Live in
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let hb = Hb.load sess ~period:0.05 () in
  let live = Live.load sess ~hb ~max_missed:3 () in
  (* Crash leaf 5 silently; its parent (rank 2) declares it. *)
  ignore (Engine.schedule eng ~delay:0.3 (fun () -> Session.crash sess 5) : Engine.handle);
  ignore
    (Engine.schedule eng ~delay:1.0 (fun () ->
         check bool "declared down before rejoin" true (List.mem 5 (Live.declared_down live.(2)));
         Session.mark_up sess 5)
      : Engine.handle);
  ignore
    (Engine.schedule eng ~delay:1.5 (fun () ->
         (* Rejoin cleared the declaration and restarted 5's liveness
            clock: no immediate re-declaration from the stale history. *)
         check (Alcotest.list int) "declaration cleared on rejoin" []
           (Live.declared_down live.(2));
         check bool "session up" false (Session.is_down sess 5);
         (* A second silent crash must be detected afresh. *)
         Session.crash sess 5)
      : Engine.handle);
  ignore (Engine.schedule eng ~delay:2.5 (fun () -> Hb.stop hb) : Engine.handle);
  Engine.run eng;
  check bool "second crash re-detected" true (List.mem 5 (Live.declared_down live.(2)));
  check bool "session marked down again" true (Session.is_down sess 5)

(* --- Watch / wait_version across a master failover ----------------------- *)

(* Full replication so a takeover can adopt the newest root from any
   surviving peer — same config the chaos harness runs under. *)
let replicated_cfg = { Kvs.default_config with Kvs.setroot_delta_max = max_int }

let test_watch_fires_after_takeover () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let kvs = Kvs.load sess ~config:replicated_cfg () in
  let seen = ref [] in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         expect_ok "watch" (Client.watch c ~key:"wf.k" (fun v -> seen := v :: !seen)))
      : Proc.pid);
  Engine.run eng;
  check bool "initial callback saw the key absent" true (!seen = [ None ]);
  (* Kill the master, then write through a survivor: the watcher must be
     driven by the NEW master's epoch-stamped setroot announcement. *)
  Session.mark_down sess 0;
  Engine.run eng;
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:5 in
         expect_ok "put" (Client.put c ~key:"wf.k" (Json.int 42));
         ignore (expect_ok "commit" (Client.commit c) : int))
      : Proc.pid);
  Engine.run eng;
  check bool "takeover happened" true (Kvs.epoch kvs.(1) >= 1);
  (match !seen with
  | Some v :: _ -> check json_t "watch fired with the post-takeover value" (Json.int 42) v
  | _ -> Alcotest.fail "watch did not fire after the failover commit")

let test_wait_version_crosses_failover () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let _kvs = Kvs.load sess ~config:replicated_cfg () in
  let woke_at = ref None in
  (* Park a waiter on a version that does not exist yet. *)
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         expect_ok "wait_version" (Client.wait_version c 1);
         woke_at := Some (expect_ok "get_version" (Client.get_version c)))
      : Proc.pid);
  (* The master dies before any commit; the version the waiter needs can
     only ever arrive via the new master's announcement. *)
  ignore (Engine.schedule eng ~delay:0.001 (fun () -> Session.mark_down sess 0) : Engine.handle);
  ignore
    (Engine.schedule eng ~delay:0.05 (fun () ->
         ignore
           (Proc.spawn eng (fun () ->
                let c = Client.connect sess ~rank:5 in
                expect_ok "put" (Client.put c ~key:"wv.k" (Json.int 1));
                ignore (expect_ok "commit" (Client.commit c) : int))
             : Proc.pid))
      : Engine.handle);
  Engine.run eng;
  match !woke_at with
  | Some v -> check bool "waiter woke at the committed version" true (v >= 1)
  | None -> Alcotest.fail "wait_version never completed after the failover"

let test_unwatch_stops_across_failover () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let _kvs = Kvs.load sess ~config:replicated_cfg () in
  let fired = ref 0 in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         expect_ok "watch" (Client.watch c ~key:"uw.k" (fun _ -> incr fired));
         Client.unwatch c ~key:"uw.k")
      : Proc.pid);
  Engine.run eng;
  check int "only the initial callback fired" 1 !fired;
  Session.mark_down sess 0;
  Engine.run eng;
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:5 in
         expect_ok "put" (Client.put c ~key:"uw.k" (Json.int 7));
         ignore (expect_ok "commit" (Client.commit c) : int))
      : Proc.pid);
  Engine.run eng;
  (* The new value did reach the watcher's slave — so silence below is
     the unwatch working, not a dead link. *)
  let got = ref None in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         got := Some (expect_ok "get" (Client.get c ~key:"uw.k")))
      : Proc.pid);
  Engine.run eng;
  (match !got with
  | Some v -> check json_t "slave observed the post-takeover value" (Json.int 7) v
  | None -> Alcotest.fail "get via watcher rank failed");
  check int "no callbacks after unwatch, even across failover" 1 !fired

(* --- Cache byte accounting under eviction -------------------------------- *)

let test_lru_eviction_bounds_store_bytes () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:3 () in
  let cfg = { Kvs.default_config with Kvs.cache_capacity = 4 } in
  let kvs = Kvs.load sess ~config:cfg () in
  let rounds = 20 in
  let value_bytes = 400 in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:1 in
         for i = 1 to rounds do
           expect_ok "put"
             (Client.put c ~key:(Printf.sprintf "ev.k%d" i)
                (Json.string (String.make value_bytes (Char.chr (97 + (i mod 26))))));
           ignore (expect_ok "commit" (Client.commit c) : int)
         done));
  Engine.run eng;
  let slave = kvs.(1) in
  check int "no dirty leftovers" 0 (Kvs.dirty_count slave);
  check bool "cache bounded by capacity" true (Kvs.cached_objects slave <= 4);
  (* Without the eviction hook the slave would still account all
     [rounds] values (> 8000 B); with it, [store_bytes] tracks only what
     the cache actually holds. *)
  let held = Kvs.store_bytes slave in
  check bool "bytes released on eviction" true
    (held <= (4 + 1) * (value_bytes + 16));
  check bool "accounting never goes negative" true (held >= 0)

let () =
  Alcotest.run "failures"
    [
      ( "rpc",
        [
          Alcotest.test_case "retry succeeds after blackout heals" `Quick
            test_retry_succeeds_after_blackout;
          Alcotest.test_case "non-idempotent fails fast" `Quick
            test_non_idempotent_rpc_fails_fast;
        ] );
      ( "kvs",
        [
          Alcotest.test_case "get under 10% loss via healed parent" `Quick
            test_kvs_get_under_loss_via_healed_parent;
          Alcotest.test_case "lru eviction bounds store bytes" `Quick
            test_lru_eviction_bounds_store_bytes;
        ] );
      ( "fence",
        [
          Alcotest.test_case "sparse fence with dead child" `Quick
            test_sparse_fence_with_dead_child;
          Alcotest.test_case "fence survives parent death" `Quick
            test_fence_survives_parent_death;
        ] );
      ( "watch",
        [
          Alcotest.test_case "watch fires on post-takeover setroot" `Quick
            test_watch_fires_after_takeover;
          Alcotest.test_case "wait_version crosses failover" `Quick
            test_wait_version_crosses_failover;
          Alcotest.test_case "unwatch stops across failover" `Quick
            test_unwatch_stops_across_failover;
        ] );
      ( "heal",
        [
          Alcotest.test_case "root death re-roots the overlay" `Quick test_root_death_reroots;
          Alcotest.test_case "cascading ancestor deaths" `Quick test_cascading_ancestor_deaths;
          Alcotest.test_case "fanout-3 root death" `Quick test_fanout3_root_death;
          Alcotest.test_case "heal then rejoin round-trip" `Quick test_heal_then_rejoin_roundtrip;
          Alcotest.test_case "live rejoin clears declared_down" `Quick
            test_live_rejoin_clears_declared_down;
        ] );
    ]
