(* Cross-shard fence chaos schedules and the goodput-vs-shards soak:
   killing a shard master mid-fence must not cost an acked write, break
   monotonic reads, or let any client observe one shard's post-fence
   state alongside another's pre-fence state. *)

module Shard = Flux_kap.Shard

let check = Alcotest.check

let chaos_seeds = List.init 16 (fun i -> 1 + (13 * i))

let run_chaos seed =
  Shard.chaos { Shard.chaos_default with Shard.cseed = seed }

let test_chaos_schedule seed () =
  let r = run_chaos seed in
  (match r.Shard.cviolations with
  | [] -> ()
  | vs ->
    Alcotest.failf "seed %d: %d violations:\n%s" seed (List.length vs)
      (String.concat "\n" vs));
  check Alcotest.int "no fence failed" 0 r.Shard.fences_failed;
  check Alcotest.bool "completed all rounds"
    true
    (r.Shard.fences_ok
    = Shard.chaos_default.Shard.crounds
      * List.length Shard.chaos_default.Shard.cclients);
  check Alcotest.bool "the schedule killed someone" true (r.Shard.kills >= 1);
  check Alcotest.int "everyone killed was revived" r.Shard.kills r.Shard.revives;
  (* Every completed cross-shard fence bumped the merge epoch once. *)
  check Alcotest.int "xepoch counts the merges" Shard.chaos_default.Shard.crounds
    r.Shard.xepoch;
  check Alcotest.bool "readback exercised" true (r.Shard.keys_checked > 0)

let fingerprint (r : Shard.chaos_report) =
  ( ( r.Shard.fences_ok,
      r.Shard.kills,
      r.Shard.takeovers,
      r.Shard.xepoch,
      r.Shard.keys_checked ),
    (r.Shard.final_versions, r.Shard.final_roots),
    (r.Shard.cfinal_clock, r.Shard.csim_events) )

let test_chaos_deterministic () =
  let a = run_chaos 5 and b = run_chaos 5 in
  if fingerprint a <> fingerprint b then
    Alcotest.fail "same seed produced different chaos runs"

let test_chaos_master_killed () =
  (* At least one even and one odd seed actually kill the target
     volume's acting master (takeover epoch > 0 on some volume). *)
  List.iter
    (fun seed ->
      let r = run_chaos seed in
      check Alcotest.bool
        (Printf.sprintf "seed %d: a takeover happened" seed)
        true (r.Shard.takeovers >= 1))
    [ 2; 3 ]

(* --- Soak ------------------------------------------------------------------ *)

let soak_cfg shards =
  { Shard.soak_default with Shard.shards; duration = 0.2 }

let test_soak_scaling () =
  let r1 = Shard.soak (soak_cfg 1) in
  let r4 = Shard.soak (soak_cfg 4) in
  List.iter
    (fun (r : Shard.soak_report) ->
      (match r.Shard.violations with
      | [] -> ()
      | vs -> Alcotest.failf "shards=%d: %s" r.Shard.shards (String.concat "; " vs));
      check Alcotest.int
        (Printf.sprintf "shards=%d zero lost acks" r.Shard.shards)
        0 r.Shard.lost_acks;
      check Alcotest.bool
        (Printf.sprintf "shards=%d drained" r.Shard.shards)
        true r.Shard.drained)
    [ r1; r4 ];
  let ratio = r4.Shard.goodput /. r1.Shard.goodput in
  if ratio < 1.8 then
    Alcotest.failf "goodput scaled only %.2fx from 1 to 4 shards (want >= 1.8)" ratio

let test_soak_deterministic () =
  let a = Shard.soak (soak_cfg 2) and b = Shard.soak (soak_cfg 2) in
  if a <> b then Alcotest.fail "same seed produced different soak reports"

let () =
  Alcotest.run "shard"
    [
      ( "chaos",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d: master kill mid-fence, 0 violations" seed)
              `Quick (test_chaos_schedule seed))
          chaos_seeds
        @ [
            Alcotest.test_case "same seed, same run" `Quick test_chaos_deterministic;
            Alcotest.test_case "takeovers happen" `Quick test_chaos_master_killed;
          ] );
      ( "soak",
        [
          Alcotest.test_case "goodput scales >= 1.8x at 4 shards" `Quick
            test_soak_scaling;
          Alcotest.test_case "same seed, same report" `Quick test_soak_deterministic;
        ] );
    ]
