(* Scheduler ablation correctness: the hierarchical pilot-job harness
   must account every task exactly once — with and without a leaf
   instance losing a worker mid-batch — and the trace span chain must
   decompose scheduler-hop latency per hierarchy level. *)

module Sched = Flux_kap.Sched
module Workload = Flux_core.Workload
module Rng = Flux_util.Rng
module Job = Flux_core.Job

let check = Alcotest.check

let base =
  { Sched.default with Sched.nodes = 16; depth = 2; children = 2; tasks = 120 }

(* --- Fault-free ablation --------------------------------------------------- *)

let test_all_tasks_acked () =
  let r = Sched.run base in
  (match r.Sched.r_violations with
  | [] -> ()
  | vs -> Alcotest.failf "%d violations:\n%s" (List.length vs) (String.concat "\n" vs));
  check Alcotest.int "every task acked" base.Sched.tasks r.Sched.r_acked;
  check Alcotest.int "leaves" 4 r.Sched.r_leaves;
  check Alcotest.bool "throughput measured" true (r.Sched.r_jobs_per_s > 0.0);
  (* wexec saw every task exactly once. *)
  check Alcotest.int "wexec started = tasks" base.Sched.tasks r.Sched.r_wexec_started;
  check Alcotest.int "wexec done = tasks" base.Sched.tasks r.Sched.r_wexec_done

let test_span_chain_complete () =
  let r = Sched.run base in
  let count name =
    match List.assoc_opt name r.Sched.r_spans with
    | Some n -> n
    | None -> Alcotest.failf "span counter %s missing" name
  in
  (* Every task job traverses submit -> match; child-instance jobs add
     their own submits/matches at the upper levels (2 at depth 1 under
     the root, 4 at depth 2). *)
  check Alcotest.int "sched.submit spans" (base.Sched.tasks + 6) (count "sched.submit");
  check Alcotest.int "sched.match spans" (base.Sched.tasks + 6) (count "sched.match");
  check Alcotest.int "wexec.start spans" base.Sched.tasks (count "wexec.start");
  check Alcotest.int "wexec.complete spans" base.Sched.tasks (count "wexec.complete");
  (* The decomposition must report every level of the tree, and the
     leaf level must carry exactly the task matches. *)
  let depths = List.map (fun lv -> lv.Sched.lv_depth) r.Sched.r_levels in
  check (Alcotest.list Alcotest.int) "levels present" [ 0; 1; 2 ] depths;
  (match List.rev r.Sched.r_levels with
  | leaf :: _ -> check Alcotest.int "leaf-level matches" base.Sched.tasks leaf.Sched.lv_jobs
  | [] -> Alcotest.fail "no level decomposition");
  check Alcotest.bool "match->start hop measured" true (r.Sched.r_hop_match_start_mean > 0.0);
  check Alcotest.bool "start->complete hop measured" true
    (r.Sched.r_hop_start_complete_mean > 0.0)

let test_hierarchy_beats_central () =
  (* At depth 2 the leaf schedulers decide in parallel over small pools;
     the centralized controller pays the full start cost serially. The
     crossover is the paper's core claim, so it is a test, not just a
     bench observation. *)
  let cfg = { base with Sched.tasks = 300 } in
  let h = Sched.run cfg in
  let c = Sched.run_central cfg in
  check Alcotest.int "central completed everything" cfg.Sched.tasks c.Sched.c_completed;
  if h.Sched.r_jobs_per_s <= c.Sched.c_jobs_per_s then
    Alcotest.failf "hierarchy %.1f jobs/s did not beat central %.1f jobs/s"
      h.Sched.r_jobs_per_s c.Sched.c_jobs_per_s

let test_sleep_tasks_mode () =
  (* The synthetic mode must produce the same stream shape without a
     wexec stack — used by baselines and quick sweeps. *)
  let r = Sched.run { base with Sched.task_kind = Sched.Sleep_tasks; tasks = 60 } in
  check Alcotest.int "every task acked" 60 r.Sched.r_acked;
  check Alcotest.int "no wexec launches" 0 r.Sched.r_wexec_started;
  check (Alcotest.list Alcotest.string) "no violations" [] r.Sched.r_violations

let test_pilot_stream_shapes () =
  (* Same seed: the App stream and the Sleep stream draw identical
     durations and arrivals — the fairness precondition for the
     central-vs-hierarchical comparison. *)
  let durs prog =
    List.map
      (fun (s : Job.submission) ->
        match s.Job.sub_payload with
        | Job.Sleep d -> d
        | Job.App { duration; _ } -> duration
        | _ -> Alcotest.fail "unexpected payload in pilot stream")
      (Workload.pilot_tasks (Rng.create 5) ~n:40 ~prog ~arrival_rate:100.0 ())
  in
  check (Alcotest.list (Alcotest.float 0.0)) "durations identical" (durs "") (durs "p");
  (* Round-robin nesting conserves the stream. *)
  let stream = Workload.pilot_tasks (Rng.create 5) ~n:40 ~prog:"p" ()
  and rebuilt = ref 0 in
  let rec count (subs : Job.submission list) =
    List.iter
      (fun (s : Job.submission) ->
        match s.Job.sub_payload with
        | Job.Child { workload; _ } -> count workload
        | Job.App _ -> incr rebuilt
        | _ -> ())
      subs
  in
  count (Workload.nest ~depth:2 ~children:2 ~policy:"fcfs" ~nnodes:16 stream);
  check Alcotest.int "nesting conserves tasks" 40 !rebuilt

(* --- Leaf-kill chaos sweep ------------------------------------------------- *)

let chaos_base =
  { base with
    Sched.tasks = 160;
    kill_leaf = true;
    kill_frac = 0.25;
    revive_after = 1.0
  }

let chaos_seeds = List.init 8 (fun i -> 1 + (7 * i))

let test_chaos_seed seed () =
  let r = Sched.run { chaos_base with Sched.seed } in
  (match r.Sched.r_violations with
  | [] -> ()
  | vs ->
    Alcotest.failf "seed %d: %d violations:\n%s" seed (List.length vs)
      (String.concat "\n" vs));
  check Alcotest.int
    (Printf.sprintf "seed %d: zero lost tasks" seed)
    chaos_base.Sched.tasks r.Sched.r_acked;
  check Alcotest.int (Printf.sprintf "seed %d: the assassin struck" seed) 1 r.Sched.r_kills;
  check Alcotest.int
    (Printf.sprintf "seed %d: the victim revived" seed)
    r.Sched.r_kills r.Sched.r_revives

let test_chaos_requeues_exercised () =
  (* At least one seed of the sweep must actually route work around the
     dead rank — otherwise the sweep proves nothing. *)
  let requeued =
    List.exists
      (fun seed ->
        let r = Sched.run { chaos_base with Sched.seed } in
        r.Sched.r_requeues >= 1 && r.Sched.r_failed_jobs >= 1)
      chaos_seeds
  in
  check Alcotest.bool "some seed exercised the requeue path" true requeued

let test_chaos_deterministic () =
  let cfg = { chaos_base with Sched.seed = 15 } in
  let a = Sched.run cfg and b = Sched.run cfg in
  if Sched.fingerprint a <> Sched.fingerprint b then
    Alcotest.fail "chaos run fingerprint drifted across same-seed runs";
  check Alcotest.int "requeues repeat" a.Sched.r_requeues b.Sched.r_requeues

let () =
  Alcotest.run "flux_sched"
    [
      ( "ablation",
        [
          Alcotest.test_case "every task acked exactly once" `Quick test_all_tasks_acked;
          Alcotest.test_case "span chain covers every level" `Quick test_span_chain_complete;
          Alcotest.test_case "hierarchy beats central at depth 2" `Quick
            test_hierarchy_beats_central;
          Alcotest.test_case "sleep-task mode" `Quick test_sleep_tasks_mode;
          Alcotest.test_case "pilot stream shapes agree" `Quick test_pilot_stream_shapes;
        ] );
      ( "chaos",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d: leaf kill, zero lost or double-acked" seed)
              `Quick (test_chaos_seed seed))
          chaos_seeds
        @ [
            Alcotest.test_case "requeue path exercised" `Quick test_chaos_requeues_exercised;
            Alcotest.test_case "chaos seed repeats exactly" `Quick test_chaos_deterministic;
          ] );
    ]
