(* The chaos harness and targeted failover scenarios: the paper's
   consistency guarantees (Vogels' taxonomy — monotonic reads,
   read-your-writes, causal consistency) plus fence atomicity must hold
   while ranks, including the KVS master, are killed and revived under
   seeded randomized schedules. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Chaos = Flux_kap.Chaos

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let expect_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

let replicated_cfg = { Kvs.default_config with Kvs.setroot_delta_max = max_int }

(* --- Deterministic failover scenarios ------------------------------------ *)

let test_master_failover_mid_commit () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let kvs = Kvs.load sess ~config:replicated_cfg () in
  let versions = ref [] in
  let commit_errors = ref 0 in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         for i = 1 to 6 do
           expect_ok "put" (Client.put c ~key:(Printf.sprintf "mf.k%d" i) (Json.int i));
           match Client.commit c with
           | Ok v -> versions := v :: !versions
           | Error _ ->
             incr commit_errors;
             Client.abort c
         done)
      : Proc.pid);
  (* Strike the master while the commit stream is in flight. *)
  ignore (Engine.schedule eng ~delay:0.002 (fun () -> Session.mark_down sess 0) : Engine.handle);
  Engine.run eng;
  check bool "commits succeeded after failover" true (List.length !versions >= 3);
  (match !versions with
  | [] -> ()
  | vs ->
    let rec mono = function
      | a :: (b :: _ as rest) -> a > b && mono rest
      | _ -> true
    in
    (* [versions] is reversed: newest first, strictly decreasing. *)
    check bool "acked versions strictly monotonic" true (mono vs));
  check int "lowest live rank took over" 1 (Kvs.master_rank kvs.(1));
  check bool "new master is master" true (Kvs.is_master kvs.(1));
  check bool "takeover bumped the epoch" true (Kvs.epoch kvs.(1) >= 1);
  (* Every acked commit survived the master loss. *)
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:5 in
         for i = 1 to 6 - !commit_errors do
           check bool
             (Printf.sprintf "mf.k%d readable after failover" i)
             true
             (match Client.get c ~key:(Printf.sprintf "mf.k%d" i) with
             | Ok v -> Json.equal v (Json.int i)
             | Error _ -> false)
         done)
      : Proc.pid);
  Engine.run eng

let test_rejoin_reaches_current_version () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let kvs = Kvs.load sess ~config:replicated_cfg () in
  let commit_n c n =
    for i = 1 to n do
      expect_ok "put" (Client.put c ~key:(Printf.sprintf "rj.k%d" i) (Json.int i));
      ignore (expect_ok "commit" (Client.commit c) : int)
    done
  in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         commit_n c 3)
      : Proc.pid);
  Engine.run eng;
  Session.mark_down sess 5;
  Engine.run eng;
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:13 in
         for i = 4 to 8 do
           expect_ok "put" (Client.put c ~key:(Printf.sprintf "rj.k%d" i) (Json.int i));
           ignore (expect_ok "commit" (Client.commit c) : int)
         done)
      : Proc.pid);
  Engine.run eng;
  let current = Kvs.version kvs.(0) in
  check bool "writes advanced the version" true (current >= 8);
  check bool "dead rank is behind" true (Kvs.version kvs.(5) < current);
  Session.mark_up sess 5;
  Engine.run eng;
  (* Acceptance: the revived rank reaches the current version... *)
  check int "revived rank caught up" current (Kvs.version kvs.(5));
  check int "revived rank at current epoch" (Kvs.epoch kvs.(0)) (Kvs.epoch kvs.(5));
  (* ...and serves reads (rank 11 routes through rank 5). *)
  let loads_before = Kvs.loads_issued kvs.(5) in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:11 in
         for i = 1 to 8 do
           check bool
             (Printf.sprintf "rj.k%d readable via rejoined rank" i)
             true
             (Json.equal (expect_ok "get" (Client.get c ~key:(Printf.sprintf "rj.k%d" i))) (Json.int i))
         done)
      : Proc.pid);
  Engine.run eng;
  ignore loads_before

let test_fence_atomicity_under_master_kill () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:15 () in
  let _kvs = Kvs.load sess ~config:replicated_cfg () in
  let bodies = [ 9; 11; 13 ] in
  let outcomes = ref [] in
  List.iter
    (fun r ->
      ignore
        (Proc.spawn eng (fun () ->
             let c = Client.connect sess ~rank:r in
             expect_ok "put" (Client.put c ~key:(Printf.sprintf "fa.c%d" r) (Json.int r));
             let res = Client.fence ~timeout:6.0 c ~name:"atomic" ~nprocs:3 in
             outcomes := (r, res) :: !outcomes;
             if Result.is_error res then Client.abort c)
          : Proc.pid))
    bodies;
  ignore (Engine.schedule eng ~delay:0.001 (fun () -> Session.mark_down sess 0) : Engine.handle);
  Engine.run eng;
  check int "all participants released" 3 (List.length !outcomes);
  (* All-or-nothing: however the fence resolved, either every
     contribution is visible or none is. *)
  let visible = ref 0 in
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:11 in
         List.iter
           (fun r ->
             match Client.get c ~key:(Printf.sprintf "fa.c%d" r) with
             | Ok v when Json.equal v (Json.int r) -> incr visible
             | Ok _ | Error _ -> ())
           bodies)
      : Proc.pid);
  Engine.run eng;
  check bool
    (Printf.sprintf "fence applied atomically (visible=%d)" !visible)
    true
    (!visible = 0 || !visible = 3);
  (* If any participant got an ack, the fence completed everywhere. *)
  if List.exists (fun (_, res) -> Result.is_ok res) !outcomes then
    check int "acked fence fully visible" 3 !visible

(* --- Seeded randomized schedules ----------------------------------------- *)

let n_schedules = 24

let run_schedule seed =
  Chaos.run { Chaos.default with Chaos.seed }

let test_chaos_schedule seed () =
  let r = run_schedule seed in
  List.iter (fun v -> Printf.printf "seed %d violation: %s\n%!" seed v) r.Chaos.violations;
  check int (Printf.sprintf "seed %d: no consistency violations" seed) 0
    (List.length r.Chaos.violations);
  check bool
    (Printf.sprintf "seed %d: master killed mid-run (got %d)" seed r.Chaos.master_kills)
    true (r.Chaos.master_kills >= 1);
  check bool
    (Printf.sprintf "seed %d: workload made progress (%d commits)" seed r.Chaos.commits_ok)
    true
    (r.Chaos.commits_ok > 0);
  check bool "keys verified in final phase" true (r.Chaos.keys_checked > 0);
  check bool "takeover happened" true (r.Chaos.takeovers >= 1)

let test_chaos_deterministic () =
  (* Same seed, same schedule: the whole report must reproduce. *)
  let a = run_schedule 42 and b = run_schedule 42 in
  check int "commits" a.Chaos.commits_ok b.Chaos.commits_ok;
  check int "fences" a.Chaos.fences_ok b.Chaos.fences_ok;
  check int "kills" a.Chaos.kills b.Chaos.kills;
  check int "takeovers" a.Chaos.takeovers b.Chaos.takeovers;
  check int "final version" a.Chaos.final_version b.Chaos.final_version

let () =
  let schedules =
    List.init n_schedules (fun i ->
        let seed = 1000 + (7 * i) in
        Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (test_chaos_schedule seed))
  in
  Alcotest.run "chaos"
    [
      ( "failover",
        [
          Alcotest.test_case "master killed mid-commit" `Quick test_master_failover_mid_commit;
          Alcotest.test_case "rejoin reaches current version" `Quick
            test_rejoin_reaches_current_version;
          Alcotest.test_case "fence atomic under master kill" `Quick
            test_fence_atomicity_under_master_kill;
        ] );
      ("determinism", [ Alcotest.test_case "same seed, same report" `Quick test_chaos_deterministic ]);
      ("schedules", schedules);
    ]
