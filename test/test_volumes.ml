(* Tests for the distributed-master KVS (sharded volumes) and the Direct
   rank-addressed overlay it relies on. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Ivar = Flux_sim.Ivar
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Volumes = Flux_kvs.Volumes

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let json_t = Alcotest.testable Json.pp Json.equal

let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

let make_world ?(size = 16) ~shards () =
  let eng = Engine.create () in
  let sess = Session.create eng ~rank_topology:Session.Direct ~size () in
  let vt = Volumes.load sess ~shards () in
  (eng, sess, vt)

let run_clients eng bodies =
  let remaining = ref (List.length bodies) in
  List.iter
    (fun body ->
      ignore
        (Proc.spawn eng (fun () ->
             body ();
             decr remaining)))
    bodies;
  Engine.run eng;
  if !remaining <> 0 then Alcotest.failf "%d clients did not complete" !remaining

(* --- Direct rank plane ---------------------------------------------------- *)

let test_direct_overlay_rpc () =
  let eng = Engine.create () in
  let sess = Session.create eng ~rank_topology:Session.Direct ~size:8 () in
  let api = Api.connect sess ~rank:6 in
  let got = ref None in
  ignore
    (Proc.spawn eng (fun () -> got := Some (Api.rpc_rank api ~dst:3 ~topic:"cmb.ping" Json.null)));
  Engine.run eng;
  (match !got with
  | Some (Ok p) -> check int "reached rank 3" 3 (Json.to_int (Json.member "rank" p))
  | _ -> Alcotest.fail "direct rpc failed");
  (* One hop out, one hop back: exactly two messages on the plane. *)
  check int "two messages" 2 (Session.ring_net_stats sess).Flux_sim.Net.messages

(* --- Volume layout ----------------------------------------------------------- *)

let test_masters_spread () =
  let _, _, vt = make_world ~size:16 ~shards:4 () in
  check (Alcotest.list int) "masters spread across the machine" [ 0; 4; 8; 12 ]
    (List.init 4 (Volumes.master_rank vt));
  List.iteri
    (fun v m ->
      check bool
        (Printf.sprintf "volume %d master flag at rank %d" v m)
        true
        (Kvs.is_master (Volumes.instance vt ~volume:v ~rank:m)))
    [ 0; 4; 8; 12 ]

let test_volume_of_key_stable () =
  let _, _, vt = make_world ~size:8 ~shards:4 () in
  let v1 = Volumes.volume_of_key vt "alpha.x" in
  check int "same first component, same volume" v1 (Volumes.volume_of_key vt "alpha.y.z");
  let spread =
    List.sort_uniq compare
      (List.init 64 (fun i -> Volumes.volume_of_key vt (Printf.sprintf "dir%d.k" i)))
  in
  check bool "keys spread over several volumes" true (List.length spread >= 3)

(* --- Read/write through volumes ------------------------------------------------ *)

let test_volumes_put_commit_get () =
  let eng, _, vt = make_world ~size:16 ~shards:4 () in
  run_clients eng
    [
      (fun () ->
        let c = Volumes.client vt ~rank:13 in
        (* Keys landing in different volumes. *)
        for i = 0 to 15 do
          expect_ok "put" (Volumes.put c ~key:(Printf.sprintf "dir%d.k" i) (Json.int i))
        done;
        ignore (expect_ok "commit" (Volumes.commit c) : int);
        for i = 0 to 15 do
          check json_t
            (Printf.sprintf "dir%d.k" i)
            (Json.int i)
            (expect_ok "get" (Volumes.get c ~key:(Printf.sprintf "dir%d.k" i)))
        done);
    ]

let test_volumes_cross_rank_visibility () =
  let eng, _, vt = make_world ~size:16 ~shards:4 () in
  let committed = Ivar.create () in
  run_clients eng
    [
      (fun () ->
        let c = Volumes.client vt ~rank:3 in
        for i = 0 to 7 do
          expect_ok "put" (Volumes.put c ~key:(Printf.sprintf "vis%d.k" i) (Json.int i))
        done;
        ignore (expect_ok "commit" (Volumes.commit c) : int);
        Ivar.fill eng committed ());
      (fun () ->
        Proc.await committed;
        (* Give the setroot events a moment to multicast. *)
        Proc.sleep 0.01;
        let c = Volumes.client vt ~rank:14 in
        for i = 0 to 7 do
          check json_t "remote read" (Json.int i)
            (expect_ok "get" (Volumes.get c ~key:(Printf.sprintf "vis%d.k" i)))
        done);
    ]

let test_volumes_fence () =
  let eng, _, vt = make_world ~size:8 ~shards:2 () in
  let nprocs = 16 in
  let bodies =
    List.concat_map
      (fun r ->
        List.map
          (fun i () ->
            let c = Volumes.client vt ~rank:r in
            let key = Printf.sprintf "f%d-%d.k" r i in
            expect_ok "put" (Volumes.put c ~key (Json.int ((10 * r) + i)));
            expect_ok "fence" (Volumes.fence c ~name:"vf" ~nprocs);
            (* Every participant's write is visible afterwards. *)
            for r' = 0 to 7 do
              for i' = 0 to 1 do
                check json_t "post-fence read"
                  (Json.int ((10 * r') + i'))
                  (expect_ok "get" (Volumes.get c ~key:(Printf.sprintf "f%d-%d.k" r' i')))
              done
            done)
          [ 0; 1 ])
      (List.init 8 Fun.id)
  in
  run_clients eng bodies

let test_volumes_commit_only_touches_dirty () =
  let eng, _, vt = make_world ~size:8 ~shards:4 () in
  run_clients eng
    [
      (fun () ->
        let c = Volumes.client vt ~rank:5 in
        expect_ok "put" (Volumes.put c ~key:"only.k" (Json.int 1));
        let vol = Volumes.volume_of_key vt "only.k" in
        ignore (expect_ok "commit" (Volumes.commit c) : int);
        (* Only the touched volume advanced its version. *)
        List.iteri
          (fun v m ->
            let inst = Volumes.instance vt ~volume:v ~rank:m in
            if v = vol then check int "touched volume committed" 1 (Kvs.version inst)
            else check int "untouched volume still v0" 0 (Kvs.version inst))
          (List.init 4 (Volumes.master_rank vt)))
    ]

let test_single_shard_equivalence () =
  (* shards=1 behaves like the plain store (master at rank 0). *)
  let eng, _, vt = make_world ~size:8 ~shards:1 () in
  run_clients eng
    [
      (fun () ->
        let c = Volumes.client vt ~rank:7 in
        expect_ok "put" (Volumes.put c ~key:"a.b" (Json.int 9));
        ignore (expect_ok "commit" (Volumes.commit c) : int);
        check json_t "read back" (Json.int 9) (expect_ok "get" (Volumes.get c ~key:"a.b")));
    ]

let test_volumes_invalid_shards () =
  let eng = Engine.create () in
  let sess = Session.create eng ~rank_topology:Session.Direct ~size:4 () in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Volumes.load: shards must be in [1, session size]") (fun () ->
      ignore (Volumes.load sess ~shards:0 () : Volumes.t));
  Alcotest.check_raises "too many shards"
    (Invalid_argument "Volumes.load: shards must be in [1, session size]") (fun () ->
      ignore (Volumes.load sess ~shards:5 () : Volumes.t))

let test_sharding_distributes_master_bytes () =
  (* The point of the exercise: with 4 volumes, no single master node
     ingests all committed bytes. Compare the biggest per-master store
     against a single-master run. *)
  let run shards =
    let eng, _, vt = make_world ~size:16 ~shards () in
    run_clients eng
      [
        (fun () ->
          let c = Volumes.client vt ~rank:9 in
          for i = 0 to 63 do
            expect_ok "put"
              (Volumes.put c ~key:(Printf.sprintf "load%d.k" i) (Json.pad 512))
          done;
          ignore (expect_ok "commit" (Volumes.commit c) : int));
      ];
    let per_master =
      List.init shards (fun v ->
          Kvs.store_bytes (Volumes.instance vt ~volume:v ~rank:(Volumes.master_rank vt v)))
    in
    List.fold_left max 0 per_master
  in
  let single = run 1 and sharded = run 4 in
  check bool
    (Printf.sprintf "max master bytes shrink (1 shard %d, 4 shards %d)" single sharded)
    true
    (sharded < single)

(* --- Key validation and routing properties --------------------------------- *)

let test_key_validation () =
  let _, _, vt = make_world ~size:8 ~shards:4 () in
  List.iter
    (fun bad ->
      (match Volumes.check_key bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "check_key accepted %S" bad);
      (match Volumes.volume_for_key vt bad with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "volume_for_key routed %S to %d" bad v);
      match Volumes.volume_of_key vt bad with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "volume_of_key routed %S to %d" bad v)
    [ ""; "."; ".x"; "x."; "a..b"; ".a.b"; "a.b." ];
  (* A put with an illegal key is a structured error, not a silent
     routing onto one fixed shard. *)
  let eng, _, vt = make_world ~size:8 ~shards:4 () in
  run_clients eng
    [
      (fun () ->
        let c = Volumes.client vt ~rank:5 in
        match Volumes.put c ~key:".oops.k" (Json.int 1) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "put accepted a key with an empty component");
    ]

let prop_legal_keys_route =
  let _, _, vt = make_world ~size:8 ~shards:3 () in
  let component = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 8)) in
  let key_gen =
    QCheck.Gen.(map (String.concat ".") (list_size (1 -- 4) component))
  in
  let arb = QCheck.make ~print:(fun k -> k) key_gen in
  QCheck.Test.make ~name:"every legal key routes to exactly one stable shard"
    ~count:500 arb (fun key ->
      match (Volumes.volume_for_key vt key, Volumes.volume_for_key vt key) with
      | Ok a, Ok b ->
        a = b && a >= 0
        && a < Volumes.shards vt
        (* …and only the first component decides. *)
        && Volumes.volume_for_key vt (key ^ ".suffix") = Ok a
      | _ -> false)

(* --- Admission sheds on the fan-out path ------------------------------------ *)

(* Regression: a busy shed from one volume's admission control must ride
   the Session busy/backoff machinery and retry — not abort the whole
   cross-shard fence. The client sits on volume 0's master, floods its
   apply queue past [admission_max_intake], then fences all volumes:
   volume 1 completes first and holds (phase 1) while volume 0 sheds,
   backs off, retries, and completes — then both release. *)
let test_fence_retries_admission_shed () =
  let eng = Engine.create () in
  let sess = Session.create eng ~rank_topology:Session.Direct ~size:8 () in
  let config =
    {
      Kvs.default_config with
      Kvs.apply_cpu_per_tuple = 5e-3;
      admission_max_intake = 2;
    }
  in
  let vt = Volumes.load sess ~config ~shards:2 () in
  run_clients eng
    [
      (fun () ->
        let api = Api.connect sess ~rank:0 in
        (* Build an apply backlog at volume 0's master (this rank). *)
        for i = 0 to 11 do
          Api.rpc_async api ~timeout:5.0 ~attempts:1 ~topic:"kvs-0.mput"
            (Json.obj
               [
                 ( "bindings",
                   Json.list
                     [
                       Json.obj
                         [
                           ("key", Json.string (Printf.sprintf "flood.k%d" i));
                           ("v", Json.int i);
                         ];
                     ] );
               ])
            ~reply:(fun _ -> ());
          Proc.sleep 1e-4
        done;
        let c = Volumes.client vt ~rank:0 in
        expect_ok "put" (Volumes.put c ~key:"flood.fk" (Json.int 99));
        expect_ok "fence under admission pressure"
          (Volumes.fence c ~name:"shedf" ~nprocs:1));
    ];
  check bool "the fan-out was shed and retried through the busy machinery" true
    (Session.rpc_busy_retries sess > 0);
  check bool "volume 0 did shed" true
    (Kvs.admission_sheds (Volumes.instance vt ~volume:0 ~rank:0) > 0)

(* --- Partial failure must not strand applied volumes ------------------------ *)

(* Regression for the fold bug: when one volume's commit fails, volumes
   that succeeded must still clear their pending tuples, so the caller's
   retry re-sends only the failed volume's work (no double apply). A
   fence parked at volume 0 (nprocs=2, one contribution) pins its intake
   at the admission limit, so a concurrent commit touching volumes 0 and
   1 fails on 0 (attempts exhausted against the shed) and succeeds on 1;
   the second fence participant then unblocks everything and the retry
   commits volume 0 alone. *)
let test_partial_commit_failure_clears_applied () =
  let eng = Engine.create () in
  let sess = Session.create eng ~rank_topology:Session.Direct ~size:8 () in
  let config = { Kvs.default_config with Kvs.admission_max_intake = 1 } in
  let vt = Volumes.load sess ~config ~shards:2 () in
  let comp_of vol =
    (* First path components landing on each volume. *)
    let rec find i =
      let c = Printf.sprintf "s%d" i in
      if Volumes.volume_of_key vt (c ^ ".k") = vol then c else find (i + 1)
    in
    find 0
  in
  let c0 = comp_of 0 and c1 = comp_of 1 in
  let fence_parked = Ivar.create () in
  let commit_failed = Ivar.create () in
  run_clients eng
    [
      (fun () ->
        (* Participant 1 of 2: contributes at volume 0's master and
           parks, pinning intake at the limit. *)
        let c = Volumes.client vt ~rank:0 in
        expect_ok "put" (Volumes.put c ~key:(c0 ^ ".p1") (Json.int 1));
        Ivar.fill eng fence_parked ();
        expect_ok "parked fence" (Volumes.fence c ~name:"park" ~nprocs:2));
      (fun () ->
        Proc.await fence_parked;
        Proc.sleep 0.05;
        let c = Volumes.client vt ~rank:2 in
        expect_ok "put v0" (Volumes.put c ~key:(c0 ^ ".b") (Json.int 10));
        expect_ok "put v1" (Volumes.put c ~key:(c1 ^ ".b") (Json.int 11));
        (match Volumes.commit c with
        | Ok _ -> Alcotest.fail "commit should fail while volume 0 is pinned"
        | Error e ->
          check bool "error names the failing volume" true
            (try
               ignore (Str.search_forward (Str.regexp_string "kvs-0") e 0);
               true
             with Not_found -> false));
        Ivar.fill eng commit_failed ();
        (* Retry after the fence unparks: only volume 0's tuples are
           re-sent (volume 1 cleared on its success). *)
        Proc.sleep 0.2;
        ignore (expect_ok "retry commit" (Volumes.commit c) : int);
        check json_t "v0 write readable" (Json.int 10)
          (expect_ok "get" (Volumes.get c ~key:(c0 ^ ".b")));
        check json_t "v1 write readable" (Json.int 11)
          (expect_ok "get" (Volumes.get c ~key:(c1 ^ ".b"))));
      (fun () ->
        Proc.await commit_failed;
        (* Participant 2 of 2 completes the parked fence. *)
        let c = Volumes.client vt ~rank:4 in
        expect_ok "unpark fence" (Volumes.fence c ~name:"park" ~nprocs:2));
    ];
  (* Volume 1 applied the commit exactly once — the retry must not have
     re-sent its already-applied tuple (a fence with no tuples does not
     bump the version). *)
  let v1 = Volumes.instance vt ~volume:1 ~rank:(Volumes.master_rank vt 1) in
  check int "volume 1 applied the commit exactly once" 1 (Kvs.version v1)

(* --- Cross-shard fence accessors -------------------------------------------- *)

let test_cross_shard_composite () =
  let eng, sess, vt = make_world ~size:8 ~shards:2 () in
  let clients = [ 3; 6 ] in
  let bodies =
    List.map
      (fun r () ->
        let c = Volumes.client vt ~rank:r in
        expect_ok "put" (Volumes.put c ~key:(Printf.sprintf "x%d.k" r) (Json.int r));
        expect_ok "fence" (Volumes.fence c ~name:"merge" ~nprocs:2))
      clients
  in
  run_clients eng bodies;
  (* Every rank derived the same composite under the same epoch. *)
  for r = 0 to Session.size sess - 1 do
    check int (Printf.sprintf "xfence epoch at rank %d" r) 1
      (Volumes.xfence_epoch vt ~rank:r);
    match Volumes.last_composite vt ~rank:r with
    | None -> Alcotest.failf "rank %d has no composite" r
    | Some cx ->
      check Alcotest.string "composite names the fence" "merge"
        cx.Flux_kvs.Proto.cx_name;
      check int "composite spans both shards" 2
        (Array.length cx.Flux_kvs.Proto.cx_roots);
      Array.iteri
        (fun vol (ri : Flux_kvs.Proto.root_info) ->
          let m = Volumes.instance vt ~volume:vol ~rank:(Volumes.master_rank vt vol) in
          check int
            (Printf.sprintf "composite root %d matches volume version" vol)
            (Kvs.version m) ri.Flux_kvs.Proto.ri_version)
        cx.Flux_kvs.Proto.cx_roots
  done

let () =
  Alcotest.run "flux_volumes"
    [
      ("direct-plane", [ Alcotest.test_case "one-hop rpc" `Quick test_direct_overlay_rpc ]);
      ( "layout",
        [
          Alcotest.test_case "masters spread" `Quick test_masters_spread;
          Alcotest.test_case "stable key routing" `Quick test_volume_of_key_stable;
          Alcotest.test_case "invalid shards" `Quick test_volumes_invalid_shards;
          Alcotest.test_case "key validation" `Quick test_key_validation;
          QCheck_alcotest.to_alcotest prop_legal_keys_route;
        ] );
      ( "operations",
        [
          Alcotest.test_case "put/commit/get" `Quick test_volumes_put_commit_get;
          Alcotest.test_case "cross-rank visibility" `Quick test_volumes_cross_rank_visibility;
          Alcotest.test_case "fence across volumes" `Quick test_volumes_fence;
          Alcotest.test_case "commit touches dirty only" `Quick
            test_volumes_commit_only_touches_dirty;
          Alcotest.test_case "single shard equivalence" `Quick test_single_shard_equivalence;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "master bytes divided" `Quick
            test_sharding_distributes_master_bytes;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "fence retries through admission sheds" `Quick
            test_fence_retries_admission_shed;
          Alcotest.test_case "partial commit failure clears applied volumes" `Quick
            test_partial_commit_failure_clears_applied;
          Alcotest.test_case "composite epoch-merge record" `Quick
            test_cross_shard_composite;
        ] );
    ]
