(* Tests for the tracing subsystem and its integrations. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Net = Flux_sim.Net
module Stats = Flux_util.Stats
module Tracer = Flux_trace.Tracer
module Export = Flux_trace.Export
module Metrics = Flux_trace.Metrics
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Center = Flux_core.Center
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let expect_ok label = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" label e

(* --- Tracer mechanics ----------------------------------------------------- *)

let test_emit_and_count () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  Tracer.emit tr ~cat:"a" ~name:"x" ();
  clock := 1.5;
  Tracer.emit tr ~cat:"a" ~name:"x" ~rank:3 ~fields:[ ("k", Json.int 1) ] ();
  Tracer.emit tr ~cat:"b" ~name:"y" ();
  check int "count a.x" 2 (Tracer.count tr ~cat:"a" ~name:"x");
  check int "count b.y" 1 (Tracer.count tr ~cat:"b" ~name:"y");
  check int "count missing" 0 (Tracer.count tr ~cat:"z" ~name:"z");
  match Tracer.events tr with
  | [ e1; e2; _ ] ->
    check (Alcotest.float 1e-9) "first ts" 0.0 e1.Tracer.ev_ts;
    check (Alcotest.float 1e-9) "second ts" 1.5 e2.Tracer.ev_ts;
    check int "rank recorded" 3 e2.Tracer.ev_rank
  | _ -> Alcotest.fail "expected three events"

let test_category_filter () =
  let tr = Tracer.create ~now:(fun () -> 0.0) () in
  Tracer.enable tr ~cats:[ "keep" ];
  Tracer.emit tr ~cat:"keep" ~name:"a" ();
  Tracer.emit tr ~cat:"drop" ~name:"b" ();
  check int "retained only filtered" 1 (List.length (Tracer.events tr));
  (* Counters still see everything. *)
  check int "counter unaffected" 1 (Tracer.count tr ~cat:"drop" ~name:"b")

let test_capacity_bound () =
  let tr = Tracer.create ~capacity:5 ~now:(fun () -> 0.0) () in
  for i = 1 to 8 do
    Tracer.emit tr ~cat:"c" ~name:"n" ~fields:[ ("i", Json.int i) ] ()
  done;
  check int "retains capacity" 5 (List.length (Tracer.events tr));
  check int "dropped counted" 3 (Tracer.dropped tr);
  check int "counter exact" 8 (Tracer.count tr ~cat:"c" ~name:"n");
  (* Oldest dropped: the first retained event is i=4. *)
  match Tracer.events tr with
  | e :: _ -> check int "oldest is 4" 4 (Json.to_int (List.assoc "i" e.Tracer.ev_fields))
  | [] -> Alcotest.fail "no events"

let test_span_duration () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  let result =
    Tracer.span tr ~cat:"s" ~name:"work" (fun () ->
        clock := 2.5;
        42)
  in
  check int "value through" 42 result;
  check (Alcotest.float 1e-9) "duration summed" 2.5 (Tracer.total_duration tr ~cat:"s" ~name:"work");
  (* Exceptions propagate and are flagged. *)
  (try
     Tracer.span tr ~cat:"s" ~name:"boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match List.rev (Tracer.events tr) with
  | e :: _ -> check bool "raised flag" true (Json.to_bool (List.assoc "raised" e.Tracer.ev_fields))
  | [] -> Alcotest.fail "no events"

let test_subscribers () =
  let tr = Tracer.create ~now:(fun () -> 0.0) () in
  let seen = ref 0 in
  Tracer.subscribe tr (fun _ -> incr seen);
  Tracer.emit tr ~cat:"c" ~name:"n" ();
  Tracer.emit tr ~cat:"c" ~name:"n" ();
  check int "notified" 2 !seen

let test_export_roundtrip () =
  let tr = Tracer.create ~now:(fun () -> 3.25) () in
  Tracer.emit tr ~cat:"kvs" ~name:"commit" ~rank:7 ~fields:[ ("tuples", Json.int 4) ] ();
  let lines = String.split_on_char '\n' (String.trim (Export.to_jsonl tr)) in
  check int "one line" 1 (List.length lines);
  let e = Export.event_of_json (Json.of_string (List.hd lines)) in
  check string "cat" "kvs" e.Tracer.ev_cat;
  check string "name" "commit" e.Tracer.ev_name;
  check int "rank" 7 e.Tracer.ev_rank;
  check int "field" 4 (Json.to_int (List.assoc "tuples" e.Tracer.ev_fields));
  check bool "text mentions event" true
    (let text = Export.to_text tr in
     String.length text > 0
     &&
     try
       ignore (Str.search_forward (Str.regexp_string "commit") text 0);
       true
     with Not_found -> false)

let test_summary_table () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  Tracer.emit tr ~cat:"cmb" ~name:"send" ();
  Tracer.emit tr ~cat:"cmb" ~name:"send" ();
  ignore (Tracer.span tr ~cat:"kvs" ~name:"fence" (fun () -> clock := 1.0));
  let s = Export.summary tr in
  check bool "has cmb row" true
    (try ignore (Str.search_forward (Str.regexp "cmb +send +2") s 0); true with Not_found -> false);
  check bool "has duration" true
    (try ignore (Str.search_forward (Str.regexp_string "1.000000") s 0); true with Not_found -> false)

let test_counters_csv () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  Tracer.emit tr ~cat:"cmb" ~name:"send" ();
  Tracer.emit tr ~cat:"cmb" ~name:"send" ();
  ignore (Tracer.span tr ~cat:"kvs" ~name:"fence" (fun () -> clock := 0.5));
  let csv = Export.counters_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check string "header" "category,name,count,total_dur_s" (List.hd lines);
  check bool "cmb send row" true (List.exists (fun l -> l = "cmb,send,2,0.000000000") lines);
  check bool "kvs fence duration" true
    (List.exists (fun l -> l = "kvs,fence,1,0.500000000" || l = "kvs,fence,2,0.500000000") lines)

let test_fault_counters_csv () =
  let csv =
    Export.fault_counters_csv
      ~extra:[ ("takeovers", 2) ]
      ~rpc_timeouts:3 ~rpc_retries:5 ~dead_letters:7 ~dropped:11 ()
  in
  check string "exact rows"
    "metric,value\nrpc_timeouts,3\nrpc_retries,5\ndead_letters,7\ndropped,11\ntakeovers,2\n"
    csv

(* --- Causal contexts ------------------------------------------------------ *)

let test_ctx_ids () =
  let tr = Tracer.create ~now:(fun () -> 0.0) () in
  let r = Tracer.root_ctx tr in
  check int "root parent" 0 r.Tracer.tc_parent;
  check int "root trace doubles as span" r.Tracer.tc_trace r.Tracer.tc_span;
  let c = Tracer.child_ctx tr r in
  check int "child keeps trace" r.Tracer.tc_trace c.Tracer.tc_trace;
  check int "child points at parent span" r.Tracer.tc_span c.Tracer.tc_parent;
  check bool "child span is fresh" true (c.Tracer.tc_span <> r.Tracer.tc_span);
  (* Ids are deterministic: a second tracer replays the same sequence. *)
  let tr2 = Tracer.create ~now:(fun () -> 0.0) () in
  let r2 = Tracer.root_ctx tr2 in
  check int "deterministic ids" r.Tracer.tc_trace r2.Tracer.tc_trace

let test_span_raised_counter () =
  let tr = Tracer.create ~now:(fun () -> 0.0) () in
  (try Tracer.span tr ~cat:"s" ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  check int "raised counter bumped" 1 (Tracer.count tr ~cat:"s" ~name:"boom.raised");
  ignore (Tracer.span tr ~cat:"s" ~name:"boom" (fun () -> ()));
  check int "success does not bump it" 1 (Tracer.count tr ~cat:"s" ~name:"boom.raised")

(* --- Export: nested fields and Perfetto ---------------------------------- *)

let test_event_json_nested () =
  let tr = Tracer.create ~now:(fun () -> 1.25) () in
  let nested =
    Json.obj
      [ ("inner", Json.list [ Json.int 1; Json.string "two" ]); ("flag", Json.bool false) ]
  in
  Tracer.emit tr ~cat:"kvs" ~name:"apply" ~rank:2
    ~fields:[ ("detail", nested); ("n", Json.int 3) ]
    ();
  let line = List.hd (String.split_on_char '\n' (String.trim (Export.to_jsonl tr))) in
  let e = Export.event_of_json (Json.of_string line) in
  check string "nested field roundtrips" (Json.to_string nested)
    (Json.to_string (List.assoc "detail" e.Tracer.ev_fields));
  check int "sibling field" 3 (Json.to_int (List.assoc "n" e.Tracer.ev_fields));
  check (Alcotest.float 1e-12) "timestamp" 1.25 e.Tracer.ev_ts;
  check int "rank" 2 e.Tracer.ev_rank

let test_perfetto_wellformed () =
  let clock = ref 0.0 in
  let tr = Tracer.create ~now:(fun () -> !clock) () in
  Tracer.emit tr ~cat:"cmb" ~name:"rpc.send" ~rank:1 ();
  clock := 2e-3;
  Tracer.emit tr ~cat:"cmb" ~name:"rpc.done" ~rank:1 ~fields:[ ("dur", Json.float 2e-3) ] ();
  Tracer.emit tr ~cat:"kvs" ~name:"put" ~rank:0 ();
  let doc = Json.of_string (Export.to_perfetto tr) in
  let evs = Json.to_list (Json.member "traceEvents" doc) in
  check bool "has rows" true (List.length evs >= 3);
  let phs = List.map (fun e -> Json.to_string_v (Json.member "ph" e)) evs in
  check bool "thread-name metadata" true (List.mem "M" phs);
  check bool "instants" true (List.mem "i" phs);
  (* Events carrying a dur become complete slices anchored at span start,
     with times in microseconds. *)
  let x = List.find (fun e -> Json.to_string_v (Json.member "ph" e) = "X") evs in
  check (Alcotest.float 1e-6) "dur in us" 2000.0 (Json.to_float (Json.member "dur" x));
  check (Alcotest.float 1e-6) "ts anchored at start" 0.0 (Json.to_float (Json.member "ts" x));
  List.iter
    (fun e ->
      ignore (Json.to_int (Json.member "pid" e));
      ignore (Json.to_int (Json.member "tid" e)))
    evs

let test_fault_counters_csv_of () =
  let tr = Tracer.create ~now:(fun () -> 0.0) () in
  Tracer.add_count tr ~cat:"cmb" ~name:"rpc.timeout" 3;
  Tracer.add_count tr ~cat:"cmb" ~name:"rpc.retry" 5;
  Tracer.add_count tr ~cat:"net" ~name:"dead_letter" 7;
  Tracer.add_count tr ~cat:"net" ~name:"drop" 11;
  check string "matches the hand-threaded variant"
    (Export.fault_counters_csv ~extra:[ ("takeovers", 2) ] ~rpc_timeouts:3 ~rpc_retries:5
       ~dead_letters:7 ~dropped:11 ())
    (Export.fault_counters_csv_of ~extra:[ ("takeovers", 2) ] tr)

(* --- Metrics registry ------------------------------------------------------ *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m ~name:"c.a" ~rank:1;
  Metrics.add m ~name:"c.a" ~rank:1 2;
  Metrics.add m ~name:"c.a" ~rank:4 10;
  check int "per-rank counter" 3 (Metrics.counter m ~name:"c.a" ~rank:1);
  check int "absent counter" 0 (Metrics.counter m ~name:"c.a" ~rank:0);
  check int "total across ranks" 13 (Metrics.counter_total m ~name:"c.a");
  Metrics.set_gauge m ~name:"g.x" ~rank:0 2.5;
  Metrics.set_gauge m ~name:"g.x" ~rank:0 1.5;
  check (Alcotest.option (Alcotest.float 1e-12)) "gauge keeps last value" (Some 1.5)
    (Metrics.gauge m ~name:"g.x" ~rank:0)

let test_metrics_percentiles () =
  (* Deterministic log-spaced samples (1 us .. ~1 ks) against the exact
     sorted-list percentile oracle: a log-bucketed histogram must agree
     to within one growth ratio each side. *)
  let m = Metrics.create () in
  let st = Stats.create () in
  for i = 0 to 499 do
    let v = 10.0 ** ((float_of_int i /. 50.0) -. 6.0) in
    Metrics.observe m ~name:"lat" ~rank:0 v;
    Stats.add st v
  done;
  let s =
    match Metrics.summary m ~name:"lat" ~rank:0 with
    | Some s -> s
    | None -> Alcotest.fail "no summary"
  in
  check int "count" 500 s.Metrics.n;
  check (Alcotest.float 1e-15) "min exact" 1e-6 s.Metrics.mn;
  let tol = Metrics.growth *. Metrics.growth in
  List.iter
    (fun (q, got) ->
      let oracle = Stats.percentile st q in
      if not (got >= oracle /. tol && got <= oracle *. tol) then
        Alcotest.failf "p%g: histogram %g vs oracle %g beyond tolerance x%g" (100. *. q) got
          oracle tol)
    [ (0.5, s.Metrics.p50); (0.95, s.Metrics.p95); (0.99, s.Metrics.p99) ];
  Metrics.observe m ~name:"lat" ~rank:3 1e-6;
  match Metrics.summary_merged m ~name:"lat" with
  | Some sm -> check int "merged count" 501 sm.Metrics.n
  | None -> Alcotest.fail "no merged summary"

let test_metrics_csv_format () =
  let m = Metrics.create () in
  Metrics.incr m ~name:"c.a" ~rank:1;
  Metrics.set_gauge m ~name:"g.x" ~rank:0 2.5;
  Metrics.observe m ~name:"h.lat" ~rank:0 1.0;
  check string "exact csv"
    "metric,rank,value\n\
     c.a,1,1\n\
     g.x,0,2.5\n\
     h.lat.count,0,1\n\
     h.lat.max,0,1\n\
     h.lat.min,0,1\n\
     h.lat.p50,0,1\n\
     h.lat.p95,0,1\n\
     h.lat.p99,0,1\n\
     h.lat.sum,0,1\n"
    (Metrics.to_csv m);
  let j = Metrics.to_json m in
  check int "json counter total" 1 (Json.to_int (Json.member "c.a" (Json.member "counters" j)));
  check int "json histogram count" 1
    (Json.to_int (Json.member "count" (Json.member "h.lat" (Json.member "histograms" j))))

(* --- Integrations ------------------------------------------------------------- *)

let test_session_integration () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let tr = Tracer.create ~now:(fun () -> Engine.now eng) () in
  Session.set_tracer sess (Some tr);
  ignore
    (Proc.spawn eng (fun () ->
         let api = Api.connect sess ~rank:5 in
         ignore (Api.rpc api ~topic:"cmb.ping" Json.null : Session.reply);
         Api.publish api ~topic:"probe.ev" Json.null;
         Proc.sleep 0.01));
  Engine.run eng;
  check int "rpc completion traced" 1 (Tracer.count tr ~cat:"cmb" ~name:"rpc.done");
  check int "publish traced" 1 (Tracer.count tr ~cat:"cmb" ~name:"event.publish");
  (* The event was delivered at all seven brokers. *)
  check int "deliveries traced" 7 (Tracer.count tr ~cat:"cmb" ~name:"event.deliver");
  (* The rpc.done event carries its topic and a sane duration. *)
  let rpc_ev =
    List.find (fun e -> e.Tracer.ev_name = "rpc.done") (Tracer.events tr)
  in
  check string "topic field" "cmb.ping"
    (Json.to_string_v (List.assoc "topic" rpc_ev.Tracer.ev_fields));
  (* cmb.ping is served by the local broker within one event, so the
     broker-level duration is zero; it must simply be present and
     non-negative. *)
  check bool "duration non-negative" true
    (Json.to_float (List.assoc "dur" rpc_ev.Tracer.ev_fields) >= 0.0)

let test_kvs_integration () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let kvs = Kvs.load sess () in
  let tr = Tracer.create ~now:(fun () -> Engine.now eng) () in
  Kvs.set_tracer_all kvs tr;
  ignore
    (Proc.spawn eng (fun () ->
         let c = Client.connect sess ~rank:6 in
         expect_ok "put" (Client.put c ~key:"tr.k" (Json.int 1));
         ignore (expect_ok "commit" (Client.commit c) : int);
         ignore (expect_ok "get" (Client.get c ~key:"tr.k") : Json.t)));
  Engine.run eng;
  check int "put traced" 1 (Tracer.count tr ~cat:"kvs" ~name:"put");
  check bool "commit and flush traced" true
    (Tracer.count tr ~cat:"kvs" ~name:"commit" = 1
    && Tracer.count tr ~cat:"kvs" ~name:"flush" >= 1);
  check int "apply once at master" 1 (Tracer.count tr ~cat:"kvs" ~name:"apply");
  check int "get traced" 1 (Tracer.count tr ~cat:"kvs" ~name:"get")

let test_ctx_propagation_retransmit () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let tr = Tracer.create ~now:(fun () -> Engine.now eng) () in
  Session.set_tracer sess (Some tr);
  (* Lose every ring-plane message until t = 0.3 s: the idempotent RPC's
     first transmission (and possibly early retransmits) vanish, then a
     backoff retransmit gets through. *)
  Net.set_loss (Session.ring_net sess) 1.0;
  ignore
    (Engine.schedule eng ~delay:0.3 (fun () -> Net.set_loss (Session.ring_net sess) 0.0)
      : Engine.handle);
  let got = ref None in
  Session.rpc_rank (Session.broker sess 5) ~idempotent:true ~dst:0 ~topic:"cmb.ping"
    Json.null ~reply:(fun r -> got := Some r);
  Engine.run eng;
  (match !got with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "rpc failed: %s" e
  | None -> Alcotest.fail "no reply");
  check bool "retransmission happened" true (Tracer.count tr ~cat:"cmb" ~name:"rpc.retry" >= 1);
  (* send, every retry, and the completion all carry the same span. *)
  let ctx_of e =
    ( Json.to_int (List.assoc "trace" e.Tracer.ev_fields),
      Json.to_int (List.assoc "span" e.Tracer.ev_fields) )
  in
  let find name =
    List.filter
      (fun e -> e.Tracer.ev_cat = "cmb" && e.Tracer.ev_name = name)
      (Tracer.events tr)
  in
  let send = List.hd (find "rpc.send") in
  List.iter
    (fun retry ->
      check (Alcotest.pair int int) "retry shares the span" (ctx_of send) (ctx_of retry))
    (find "rpc.retry");
  check (Alcotest.pair int int) "completion shares the span" (ctx_of send)
    (ctx_of (List.hd (find "rpc.done")))

let test_fence_critical_path () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:8 () in
  let kvs = Kvs.load sess () in
  let tr = Tracer.create ~now:(fun () -> Engine.now eng) () in
  Session.set_tracer sess (Some tr);
  Kvs.set_tracer_all kvs tr;
  let nprocs = 8 in
  let t_start = ref infinity in
  let t_end = ref 0.0 in
  for r = 0 to nprocs - 1 do
    ignore
      (Proc.spawn eng (fun () ->
           let c = Client.connect sess ~rank:r in
           expect_ok "put" (Client.put c ~key:(Printf.sprintf "cp.k%d" r) (Json.int r));
           if Engine.now eng < !t_start then t_start := Engine.now eng;
           ignore (expect_ok "fence" (Client.fence c ~name:"cp-fence" ~nprocs) : int);
           if Engine.now eng > !t_end then t_end := Engine.now eng)
        : Proc.pid)
  done;
  Engine.run eng;
  let fb =
    match Export.fence_critical_path tr ~name:"cp-fence" with
    | Ok fb -> fb
    | Error e -> Alcotest.fail e
  in
  (* The decomposition telescopes: segments sum to the total exactly. *)
  check (Alcotest.float 1e-12) "segments sum to total" fb.Export.fb_total
    (fb.Export.fb_ascent +. fb.Export.fb_commit +. fb.Export.fb_broadcast);
  check bool "milestones ordered" true
    (fb.Export.fb_start <= fb.Export.fb_commit_begin
    && fb.Export.fb_commit_begin <= fb.Export.fb_publish
    && fb.Export.fb_publish <= fb.Export.fb_end);
  (* All eight processes enter the fence at the same virtual instant
     (identical local puts), so the reconstructed window must match the
     measured collective fence latency. *)
  let window = !t_end -. !t_start in
  if Float.abs (fb.Export.fb_total -. window) > (0.05 *. window) +. 5e-6 then
    Alcotest.failf "critical path %.9f s vs measured window %.9f s" fb.Export.fb_total window;
  (* Span-tree propagation: every tree-reduction hop belongs to the
     trace some client contribution started. *)
  let trace_ids name =
    List.filter_map
      (fun e ->
        if e.Tracer.ev_cat = "kvs" && e.Tracer.ev_name = name then
          Option.map Json.to_int (List.assoc_opt "trace" e.Tracer.ev_fields)
        else None)
      (Tracer.events tr)
  in
  let enters = trace_ids "fence.enter" in
  let forwards = trace_ids "flush.forward" in
  check int "one enter per process" nprocs (List.length enters);
  check bool "reduction hops recorded" true (forwards <> []);
  List.iter
    (fun id -> check bool "forward rides a client's trace" true (List.mem id enters))
    forwards

let test_session_metrics () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:7 () in
  let m = Metrics.create () in
  Session.set_metrics sess (Some m);
  ignore
    (Proc.spawn eng (fun () ->
         let api = Api.connect sess ~rank:5 in
         ignore (Api.rpc api ~topic:"cmb.ping" Json.null : Session.reply);
         ignore (Api.rpc_rank api ~dst:2 ~topic:"cmb.ping" Json.null : Session.reply)));
  Engine.run eng;
  (match Metrics.summary_merged m ~name:"cmb.rpc.latency" with
  | Some s -> check int "rpc latencies observed" 2 s.Metrics.n
  | None -> Alcotest.fail "no cmb.rpc.latency histogram");
  (* The ring-addressed ping crossed links, so the ring plane recorded
     per-hop transit samples and wire bytes. *)
  (match Metrics.summary_merged m ~name:"net.ring.transit" with
  | Some s -> check bool "ring transit sampled" true (s.Metrics.n >= 1)
  | None -> Alcotest.fail "no net.ring.transit histogram");
  check bool "ring bytes counted" true (Metrics.counter_total m ~name:"net.ring.link_bytes" > 0)

let test_sched_integration () =
  let c = Center.create ~nodes:4 () in
  let tr = Tracer.create ~now:(fun () -> Engine.now c.Center.eng) () in
  Instance.set_tracer c.Center.root (Some tr);
  ignore
    (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:2 ()) ~payload:(Job.Sleep 1.0)
      : Job.t);
  Center.run c;
  check int "allocated traced" 1 (Tracer.count tr ~cat:"sched" ~name:"job.allocated");
  check int "running traced" 1 (Tracer.count tr ~cat:"sched" ~name:"job.running");
  check int "complete traced" 1 (Tracer.count tr ~cat:"sched" ~name:"job.complete");
  check bool "cycles traced" true (Tracer.count tr ~cat:"sched" ~name:"cycle" >= 1)

let () =
  Alcotest.run "flux_trace"
    [
      ( "tracer",
        [
          Alcotest.test_case "emit and count" `Quick test_emit_and_count;
          Alcotest.test_case "category filter" `Quick test_category_filter;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
          Alcotest.test_case "span duration" `Quick test_span_duration;
          Alcotest.test_case "subscribers" `Quick test_subscribers;
          Alcotest.test_case "causal context ids" `Quick test_ctx_ids;
          Alcotest.test_case "span raised counter" `Quick test_span_raised_counter;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_export_roundtrip;
          Alcotest.test_case "nested field roundtrip" `Quick test_event_json_nested;
          Alcotest.test_case "perfetto wellformed" `Quick test_perfetto_wellformed;
          Alcotest.test_case "summary" `Quick test_summary_table;
          Alcotest.test_case "counters csv" `Quick test_counters_csv;
          Alcotest.test_case "fault counters csv" `Quick test_fault_counters_csv;
          Alcotest.test_case "fault counters from tracer" `Quick test_fault_counters_csv_of;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_gauges;
          Alcotest.test_case "percentiles vs oracle" `Quick test_metrics_percentiles;
          Alcotest.test_case "csv and json export" `Quick test_metrics_csv_format;
        ] );
      ( "integration",
        [
          Alcotest.test_case "session" `Quick test_session_integration;
          Alcotest.test_case "kvs" `Quick test_kvs_integration;
          Alcotest.test_case "ctx across retransmit" `Quick test_ctx_propagation_retransmit;
          Alcotest.test_case "fence critical path" `Quick test_fence_critical_path;
          Alcotest.test_case "session metrics" `Quick test_session_metrics;
          Alcotest.test_case "scheduler" `Quick test_sched_integration;
        ] );
    ]
