(* Elasticity controller: property tests over the pure control law,
   regression tests for drain-before-shrink and the job-failure hook
   chain, and end-to-end soak scenarios for the three protection
   regimes, telemetry-silent fallback, denied-grow fallback and
   same-seed determinism. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Jobspec = Flux_core.Jobspec
module Job = Flux_core.Job
module Pool = Flux_core.Pool
module Instance = Flux_core.Instance
module Center = Flux_core.Center
module Ctl = Flux_core.Elastic
module Wexec = Flux_modules.Wexec
module Client = Flux_kvs.Client
module KElastic = Flux_kap.Elastic

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* --- Property tests over the pure control law ----------------------------- *)

(* A random valid policy plus a random decision scene. *)
let gen_scene =
  QCheck.Gen.(
    let* high = 5 -- 50 in
    let* low = 0 -- (high - 1) in
    let* step = 1 -- 8 in
    let* min_n = 1 -- 4 in
    let* span = 0 -- 30 in
    let* cooldown_ms = 100 -- 2000 in
    let* silence_ms = 100 -- 2000 in
    let* require_alert = bool in
    let* nodes = 0 -- 40 in
    let* now_ms = 0 -- 10_000 in
    let* last_ms = -5_000 -- 10_000 in
    let* pressure = 0 -- 60 in
    let* has_pressure = bool in
    let* alert = bool in
    let* fresh = bool in
    return
      ( {
          Ctl.p_metric = "q";
          p_high = float_of_int high;
          p_low = float_of_int low;
          p_step = step;
          p_min_nodes = min_n;
          p_max_nodes = min_n + span;
          p_cooldown = float_of_int cooldown_ms /. 1000.0;
          p_period = 0.1;
          p_require_alert = require_alert;
          p_silence = float_of_int silence_ms /. 1000.0;
        },
        { Ctl.m_last_action = float_of_int last_ms /. 1000.0 },
        {
          Ctl.in_now = float_of_int now_ms /. 1000.0;
          in_pressure = (if has_pressure then Some (float_of_int pressure) else None);
          in_nodes = nodes;
          in_alert = alert;
          in_fresh = fresh;
        } ))

let prop_cooldown_freezes =
  QCheck.Test.make ~name:"any decision within cooldown is a hold" ~count:500
    (QCheck.make gen_scene) (fun (p, m, i) ->
      QCheck.assume (i.Ctl.in_now -. m.Ctl.m_last_action < p.Ctl.p_cooldown);
      match Ctl.decide p m i with Ctl.Hold _ -> true | _ -> false)

let prop_step_bounds =
  QCheck.Test.make ~name:"actions respect step, min and max bounds" ~count:1000
    (QCheck.make gen_scene) (fun (p, m, i) ->
      match Ctl.decide p m i with
      | Ctl.Grow n ->
        n >= 1 && n <= p.Ctl.p_step && i.Ctl.in_nodes + n <= p.Ctl.p_max_nodes
      | Ctl.Shrink n ->
        n >= 1 && n <= p.Ctl.p_step && i.Ctl.in_nodes - n >= p.Ctl.p_min_nodes
      | Ctl.Hold _ -> true)

let prop_deterministic =
  QCheck.Test.make ~name:"same inputs, same decision" ~count:500
    (QCheck.make gen_scene) (fun (p, m, i) -> Ctl.decide p m i = Ctl.decide p m i)

(* Sequential no-flap property: fold a random input sequence through
   decide/remember; any two applied actions must be a full cooldown
   apart — which is exactly "no grow-then-shrink reversal inside one
   cooldown window". *)
let gen_sequence =
  QCheck.Gen.(
    let* p, _, _ = gen_scene in
    let* steps =
      list_size (5 -- 40)
        (let* dt_ms = 10 -- 800 in
         let* pressure = 0 -- 60 in
         let* alert = bool in
         let* fresh = frequency [ (4, return true); (1, return false) ] in
         return (dt_ms, pressure, alert, fresh))
    in
    return (p, steps))

let prop_no_flap =
  QCheck.Test.make ~name:"applied actions are a full cooldown apart" ~count:300
    (QCheck.make gen_sequence) (fun (p, steps) ->
      let _, _, _, actions =
        List.fold_left
          (fun (now, nodes, m, acts) (dt_ms, pressure, alert, fresh) ->
            let now = now +. (float_of_int dt_ms /. 1000.0) in
            let i =
              {
                Ctl.in_now = now;
                in_pressure = Some (float_of_int pressure);
                in_nodes = nodes;
                in_alert = alert;
                in_fresh = fresh;
              }
            in
            let d = Ctl.decide p m i in
            let nodes =
              match d with
              | Ctl.Grow n -> nodes + n
              | Ctl.Shrink n -> nodes - n
              | Ctl.Hold _ -> nodes
            in
            let acts =
              match d with Ctl.Hold _ -> acts | _ -> (now, d) :: acts
            in
            (now, nodes, Ctl.remember m ~now d, acts))
          (0.0, p.Ctl.p_min_nodes, Ctl.fresh_memory, [])
          steps
      in
      let rec gaps_ok = function
        | (t2, _) :: ((t1, _) :: _ as rest) ->
          t2 -. t1 >= p.Ctl.p_cooldown && gaps_ok rest
        | _ -> true
      in
      gaps_ok actions)

(* --- Unit tests for decide ------------------------------------------------ *)

let pol =
  {
    Ctl.default_policy with
    Ctl.p_high = 10.0;
    p_low = 2.0;
    p_step = 3;
    p_min_nodes = 2;
    p_max_nodes = 10;
    p_require_alert = true;
  }

let inp ?(pressure = Some 5.0) ?(nodes = 4) ?(alert = false) ?(fresh = true) now =
  { Ctl.in_now = now; in_pressure = pressure; in_nodes = nodes; in_alert = alert; in_fresh = fresh }

let test_decide_guards () =
  check bool "silent telemetry holds" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~fresh:false 1.0) = Ctl.Hold "telemetry-silent");
  check bool "no data holds" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:None 1.0) = Ctl.Hold "no-data");
  check bool "in-band holds" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 5.0) 1.0) = Ctl.Hold "in-band");
  check bool "high pressure without alert awaits" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 20.0) 1.0)
    = Ctl.Hold "awaiting-alert");
  check bool "armed tick grows" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 20.0) ~alert:true 1.0)
    = Ctl.Grow 3);
  check bool "pressure-driven policy grows without alert" true
    (Ctl.decide { pol with Ctl.p_require_alert = false } Ctl.fresh_memory
       (inp ~pressure:(Some 20.0) 1.0)
    = Ctl.Grow 3);
  check bool "low pressure shrinks" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 1.0) 1.0) = Ctl.Shrink 2);
  check bool "at max holds" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 20.0) ~alert:true ~nodes:10 1.0)
    = Ctl.Hold "at-max");
  check bool "at min holds" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 1.0) ~nodes:2 1.0)
    = Ctl.Hold "at-min");
  check bool "grow clamps to max" true
    (Ctl.decide pol Ctl.fresh_memory (inp ~pressure:(Some 20.0) ~alert:true ~nodes:9 1.0)
    = Ctl.Grow 1)

let test_policy_validation () =
  check bool "default valid" true (Ctl.validate_policy Ctl.default_policy = Ok ());
  let bad p = match Ctl.validate_policy p with Error _ -> true | Ok () -> false in
  check bool "low >= high" true (bad { pol with Ctl.p_low = 10.0 });
  check bool "zero step" true (bad { pol with Ctl.p_step = 0 });
  check bool "min > max" true (bad { pol with Ctl.p_min_nodes = 11 });
  check bool "zero cooldown" true (bad { pol with Ctl.p_cooldown = 0.0 });
  check bool "create rejects invalid" true
    (let c = Center.create ~nodes:8 () in
     try
       let telem = Flux_modules.Telem.load c.Center.sess () in
       ignore
         (Ctl.create c.Center.sess ~instance:c.Center.root ~telem
            ~policy:{ pol with Ctl.p_step = 0 } ()
           : Ctl.t);
       false
     with Invalid_argument _ -> true)

(* --- Drain-before-shrink regression (PR 10 satellite) --------------------- *)

(* A shrink that outstrips the free pool must preempt running wexec
   tasks, requeue them under fresh attempt ids, and donate the nodes as
   they free — not strand the jobs and not fire the failure hooks. *)
let test_shrink_mid_job_requeues () =
  Wexec.register_program "elastic-test-worker" (fun ctx ->
      let d = Json.to_float (Json.member "duration" ctx.Wexec.px_args) in
      let tid = Json.to_int (Json.member "tid" ctx.Wexec.px_args) in
      Proc.sleep d;
      (match Client.put ctx.Wexec.px_kvs ~key:(Printf.sprintf "shrinktest.t%d" tid)
               (Json.int tid)
       with
      | Ok () -> ()
      | Error e -> failwith e);
      match Client.commit ctx.Wexec.px_kvs with Ok _ -> () | Error e -> failwith e);
  let c = Center.create ~nodes:16 () in
  let root = c.Center.root in
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:1 (); sub_payload = Job.Sleep 30.0 }
  in
  ignore
    (Instance.submit root ~spec:(Jobspec.make ~nnodes:6 ())
       ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
      : Job.t);
  let hook_fired = ref 0 in
  Instance.on_job_failed root (fun _owner _job -> incr hook_fired);
  let shrink_result = ref (Error (Instance.Resize_invalid 0)) in
  let free_before = ref (-1) in
  let free_after_drain = ref (-1) in
  ignore
    (Engine.schedule c.Center.eng ~delay:0.1 (fun () ->
         match Instance.children root with
         | [ child ] ->
           (* Fill every non-sentinel node with long tasks. *)
           for tid = 0 to 4 do
             ignore
               (Instance.submit child ~spec:(Jobspec.make ~nnodes:1 ())
                  ~payload:
                    (Job.App
                       {
                         prog = "elastic-test-worker";
                         args = Json.obj [ ("tid", Json.int tid) ];
                         per_rank = 1;
                         duration = 2.0;
                       })
                 : Job.t)
           done;
           ignore
             (Engine.schedule c.Center.eng ~delay:1.0 (fun () ->
                  free_before := Pool.free_nodes (Instance.pool root);
                  shrink_result := Instance.request_shrink child ~nnodes:3)
               : Engine.handle);
           ignore
             (Engine.schedule c.Center.eng ~delay:4.0 (fun () ->
                  free_after_drain := Pool.free_nodes (Instance.pool root))
               : Engine.handle)
         | _ -> Alcotest.fail "expected one child")
      : Engine.handle);
  Center.run c;
  check bool "shrink reported a drain" true
    (!shrink_result = Error (Instance.Resize_draining 3));
  check int "3 nodes reached the parent" (!free_before + 3) !free_after_drain;
  (match Instance.children root with
  | [ child ] ->
    let jobs = Instance.jobs child in
    let requeued =
      List.filter
        (fun (j : Job.t) ->
          String.length j.Job.jid > 3
          && String.sub j.Job.jid (String.length j.Job.jid - 3) 3 = ".r1")
        jobs
    in
    check int "3 preempted tasks requeued under fresh attempt ids" 3
      (List.length requeued);
    List.iter
      (fun (j : Job.t) ->
        check bool (j.Job.jid ^ " completed") true (j.Job.jstate = Job.Complete))
      requeued
  | _ -> Alcotest.fail "expected one child");
  check int "preempted jobs bypassed the failure hooks" 0 !hook_fired;
  (* Zero acked-write loss across the rescale: every task (first-shot
     or requeued) committed its key. *)
  let missing = ref 5 in
  ignore
    (Proc.spawn c.Center.eng (fun () ->
         let kv = Center.kvs_client c ~rank:0 in
         let m = ref 0 in
         for tid = 0 to 4 do
           match Client.get kv ~key:(Printf.sprintf "shrinktest.t%d" tid) with
           | Ok v when Json.to_int v = tid -> ()
           | _ -> incr m
         done;
         missing := !m));
  Center.run c;
  check int "all task writes survived the rescale" 0 !missing

(* --- on_job_failed hook chain (PR 10 satellite) --------------------------- *)

let test_on_job_failed_bubbles () =
  Wexec.register_program "elastic-test-failer" (fun _ctx ->
      raise (Wexec.Task_failure "boom"));
  let c = Center.create ~nodes:8 () in
  let root = c.Center.root in
  let keepalive =
    { Job.sub_after = 0.0; sub_spec = Jobspec.make ~nnodes:1 (); sub_payload = Job.Sleep 5.0 }
  in
  ignore
    (Instance.submit root ~spec:(Jobspec.make ~nnodes:4 ())
       ~payload:(Job.Child { policy = "fcfs"; workload = [ keepalive ] })
      : Job.t);
  let at_root = ref [] in
  let at_child = ref [] in
  Instance.on_job_failed root (fun owner job ->
      at_root := (Instance.name owner, job.Job.jid) :: !at_root);
  ignore
    (Engine.schedule c.Center.eng ~delay:0.1 (fun () ->
         match Instance.children root with
         | [ child ] ->
           Instance.on_job_failed child (fun _owner job ->
               at_child := job.Job.jid :: !at_child);
           ignore
             (Instance.submit child ~spec:(Jobspec.make ~nnodes:1 ())
                ~payload:
                  (Job.App
                     { prog = "elastic-test-failer"; args = Json.null; per_rank = 1; duration = 0.5 })
               : Job.t)
         | _ -> Alcotest.fail "expected one child")
      : Engine.handle);
  Center.run c;
  check int "root hook saw the descendant failure" 1 (List.length !at_root);
  check int "child hook saw its own failure" 1 (List.length !at_child);
  match !at_root with
  | [ (owner, _) ] ->
    check bool "owner is the child instance, not the root" true
      (owner <> Instance.name root)
  | _ -> ()

(* --- End-to-end soak scenarios -------------------------------------------- *)

let fast_base =
  { KElastic.default with KElastic.duration = 3.0; drain = 1.5 }

let test_three_regimes () =
  let unprot = KElastic.run { fast_base with KElastic.mode = KElastic.Unprotected } in
  let prot = KElastic.run { fast_base with KElastic.mode = KElastic.Protected } in
  let elas = KElastic.run { fast_base with KElastic.mode = KElastic.Elastic } in
  List.iter
    (fun (r : KElastic.report) ->
      check (Alcotest.list Alcotest.string)
        (KElastic.mode_to_string r.KElastic.e_mode ^ " violations")
        [] r.KElastic.e_violations)
    [ unprot; prot; elas ];
  check bool "unprotected queue blows past the cap" true
    (unprot.KElastic.e_queue_peak > fast_base.KElastic.queue_cap);
  check bool "unprotected collapses below protected" true
    (unprot.KElastic.e_goodput < prot.KElastic.e_goodput);
  check bool "protected bounds the queue" true
    (prot.KElastic.e_queue_peak <= fast_base.KElastic.queue_cap);
  check bool "elastic recovers >= 1.5x protected goodput" true
    (elas.KElastic.e_goodput >= 1.5 *. prot.KElastic.e_goodput);
  check bool "elastic grew" true (elas.KElastic.e_grows > 0);
  check bool "elastic gave the nodes back" true
    (elas.KElastic.e_nodes_final < elas.KElastic.e_nodes_peak);
  check int "zero acked-write loss" 0 elas.KElastic.e_write_loss

let test_silent_fallback () =
  let r = KElastic.run { fast_base with KElastic.silence_at = Some 1.5 } in
  check (Alcotest.list Alcotest.string) "violations" [] r.KElastic.e_violations;
  check bool "controller fell back" true (r.KElastic.e_fallback_entries >= 1)

let test_denied_grow () =
  (* A root with almost no headroom: grows hit Resize_exhausted and the
     controller backs off instead of storming the parent. *)
  let r = KElastic.run { fast_base with KElastic.size = 8; child_nodes = 4 } in
  check (Alcotest.list Alcotest.string) "violations" [] r.KElastic.e_violations;
  check bool "some grows were denied" true (r.KElastic.e_denied > 0);
  (* Backoff: every denial stamps the cooldown, so denials are spaced
     at least a cooldown apart — bounded by run length / cooldown. *)
  let bound =
    int_of_float
      ((fast_base.KElastic.duration +. fast_base.KElastic.drain)
      /. fast_base.KElastic.policy.Ctl.p_cooldown)
    + 1
  in
  check bool "denials bounded by cooldown pacing" true (r.KElastic.e_denied <= bound)

let test_same_seed_determinism () =
  let a = KElastic.run fast_base in
  let b = KElastic.run fast_base in
  check string "fingerprints match" a.KElastic.e_fingerprint b.KElastic.e_fingerprint;
  check int "acked match" a.KElastic.e_acked b.KElastic.e_acked;
  check int "events match" a.KElastic.e_events b.KElastic.e_events

let test_config_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check bool "tiny session" true
    (raises (fun () -> ignore (KElastic.run { fast_base with KElastic.size = 4 })));
  check bool "child too big" true
    (raises (fun () -> ignore (KElastic.run { fast_base with KElastic.child_nodes = 40 })));
  check bool "bad policy" true
    (raises
       (fun () ->
         ignore
           (KElastic.run
              {
                fast_base with
                KElastic.policy = { fast_base.KElastic.policy with Ctl.p_low = 99.0 };
              })))

let () =
  Alcotest.run "flux_elastic"
    [
      ( "control-law",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cooldown_freezes; prop_step_bounds; prop_deterministic; prop_no_flap ]
      );
      ( "decide",
        [
          Alcotest.test_case "guards and bands" `Quick test_decide_guards;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
      ( "rescale",
        [
          Alcotest.test_case "shrink mid-job requeues" `Quick test_shrink_mid_job_requeues;
          Alcotest.test_case "on_job_failed bubbles" `Quick test_on_job_failed_bubbles;
        ] );
      ( "soak",
        [
          Alcotest.test_case "three regimes" `Quick test_three_regimes;
          Alcotest.test_case "telemetry-silent fallback" `Quick test_silent_fallback;
          Alcotest.test_case "denied grow backs off" `Quick test_denied_grow;
          Alcotest.test_case "same seed, same run" `Quick test_same_seed_determinism;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
