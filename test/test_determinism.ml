(* Determinism golden tests: the engine's hot-path optimizations
   (heap compaction, memoized payload sizes and digests, session fast
   paths) must be unobservable. Each workload here runs twice in the
   same process; everything a user can see — trace counters, the final
   simulated clock, event and message counts — must match exactly. *)

module Kap = Flux_kap.Kap
module Chaos = Flux_kap.Chaos
module Sched = Flux_kap.Sched
module Export = Flux_trace.Export

let check = Alcotest.check

(* A small fig2-shaped workload: every proc puts one value, fences, then
   every proc reads one back. Traced so the counter CSV (per-event
   category/name occurrence counts and virtual durations) can serve as a
   behavioural digest of the whole run. *)
let fig2_cfg =
  {
    (Kap.fully_populated ~nodes:8) with
    Kap.value_size = 256;
    ngets = 1;
    trace = true;
  }

let test_kap_run_twice () =
  let r1 = Kap.run fig2_cfg in
  let r2 = Kap.run fig2_cfg in
  let csv r =
    match r.Kap.r_trace with
    | Some tr -> Export.counters_csv tr
    | None -> Alcotest.fail "expected a tracer on a trace=true run"
  in
  check Alcotest.string "trace counters identical" (csv r1) (csv r2);
  check (Alcotest.float 0.0) "final simulated clock identical" r1.Kap.r_wallclock
    r2.Kap.r_wallclock;
  check Alcotest.int "engine events identical" r1.Kap.r_events r2.Kap.r_events;
  check Alcotest.int "rpc messages identical" r1.Kap.r_rpc_messages r2.Kap.r_rpc_messages;
  check Alcotest.int "loads identical" r1.Kap.r_loads_issued r2.Kap.r_loads_issued;
  check (Alcotest.float 0.0) "producer max identical" r1.Kap.r_producer.Kap.ph_max
    r2.Kap.r_producer.Kap.ph_max;
  check (Alcotest.float 0.0) "sync max identical" r1.Kap.r_sync.Kap.ph_max
    r2.Kap.r_sync.Kap.ph_max

(* Tracing must be pay-for-what-you-use in behaviour, not just cost:
   attaching the tracer and metrics registry (trace = true) must leave
   the simulation bit-for-bit identical to an untraced run — same final
   clock, same engine event count, same wire traffic, same phase
   latencies. Instrumentation that scheduled an event or perturbed a
   payload size would show up here. *)
let test_trace_on_off_identical () =
  let on = Kap.run fig2_cfg in
  let off = Kap.run { fig2_cfg with Kap.trace = false } in
  (match (off.Kap.r_trace, off.Kap.r_metrics) with
  | None, None -> ()
  | _ -> Alcotest.fail "untraced run must not carry a tracer or metrics");
  check (Alcotest.float 0.0) "final simulated clock identical" on.Kap.r_wallclock
    off.Kap.r_wallclock;
  check Alcotest.int "engine events identical" on.Kap.r_events off.Kap.r_events;
  check Alcotest.int "rpc messages identical" on.Kap.r_rpc_messages off.Kap.r_rpc_messages;
  check Alcotest.int "loads identical" on.Kap.r_loads_issued off.Kap.r_loads_issued;
  check Alcotest.int "root ingress bytes identical" on.Kap.r_root_ingress_bytes
    off.Kap.r_root_ingress_bytes;
  check (Alcotest.float 0.0) "producer max identical" on.Kap.r_producer.Kap.ph_max
    off.Kap.r_producer.Kap.ph_max;
  check (Alcotest.float 0.0) "sync max identical" on.Kap.r_sync.Kap.ph_max
    off.Kap.r_sync.Kap.ph_max;
  check (Alcotest.float 0.0) "consumer max identical" on.Kap.r_consumer.Kap.ph_max
    off.Kap.r_consumer.Kap.ph_max

(* One chaos seed run twice: kills, revives, takeovers, the final
   (epoch, version) and the virtual clock at convergence must all
   repeat. The report record compares componentwise so a mismatch names
   the field that drifted. *)
let chaos_cfg = { Chaos.default with Chaos.seed = 77; rounds = 12; duration = 12.0 }

let test_chaos_run_twice () =
  let r1 = Chaos.run chaos_cfg in
  let r2 = Chaos.run chaos_cfg in
  check Alcotest.int "commits_ok" r1.Chaos.commits_ok r2.Chaos.commits_ok;
  check Alcotest.int "fences_ok" r1.Chaos.fences_ok r2.Chaos.fences_ok;
  check Alcotest.int "gets_ok" r1.Chaos.gets_ok r2.Chaos.gets_ok;
  check Alcotest.int "kills" r1.Chaos.kills r2.Chaos.kills;
  check Alcotest.int "revives" r1.Chaos.revives r2.Chaos.revives;
  check Alcotest.int "master_kills" r1.Chaos.master_kills r2.Chaos.master_kills;
  check Alcotest.int "takeovers" r1.Chaos.takeovers r2.Chaos.takeovers;
  check Alcotest.int "final_version" r1.Chaos.final_version r2.Chaos.final_version;
  check Alcotest.int "final_master" r1.Chaos.final_master r2.Chaos.final_master;
  check Alcotest.int "rpc_timeouts" r1.Chaos.rpc_timeouts r2.Chaos.rpc_timeouts;
  check Alcotest.int "rpc_retries" r1.Chaos.rpc_retries r2.Chaos.rpc_retries;
  check (Alcotest.list Alcotest.string) "violations" r1.Chaos.violations
    r2.Chaos.violations;
  check (Alcotest.float 0.0) "final clock" r1.Chaos.final_clock r2.Chaos.final_clock;
  check Alcotest.int "sim events" r1.Chaos.sim_events r2.Chaos.sim_events

(* The scheduling ablation at depth 2, run twice with the same seed:
   the throughput counters, final simulated clock, engine event count,
   and the span-chain counter fingerprint
   (sched.submit/sched.match/wexec.start/wexec.complete) must repeat
   bit-for-bit — the harness builds its own session, tracer, and
   instance tree, so this covers the whole stack end to end. *)
let sched_cfg =
  { Sched.default with Sched.seed = 11; nodes = 8; depth = 2; children = 2; tasks = 60 }

let test_sched_run_twice () =
  let r1 = Sched.run sched_cfg in
  let r2 = Sched.run sched_cfg in
  check Alcotest.int "acked" r1.Sched.r_acked r2.Sched.r_acked;
  check (Alcotest.float 0.0) "jobs/s" r1.Sched.r_jobs_per_s r2.Sched.r_jobs_per_s;
  check (Alcotest.float 0.0) "makespan" r1.Sched.r_makespan r2.Sched.r_makespan;
  check (Alcotest.float 0.0) "final clock" r1.Sched.r_final_clock r2.Sched.r_final_clock;
  check Alcotest.int "sim events" r1.Sched.r_sim_events r2.Sched.r_sim_events;
  check Alcotest.int "sched cycles" r1.Sched.r_sched_cycles r2.Sched.r_sched_cycles;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "span chain counts" r1.Sched.r_spans r2.Sched.r_spans;
  if Sched.fingerprint r1 <> Sched.fingerprint r2 then
    Alcotest.fail "sched fingerprint drifted across same-seed runs"

let () =
  Alcotest.run "flux_determinism"
    [
      ( "golden",
        [
          Alcotest.test_case "fig2 workload repeats exactly" `Quick test_kap_run_twice;
          Alcotest.test_case "tracing on vs off is unobservable" `Quick
            test_trace_on_off_identical;
          Alcotest.test_case "chaos seed repeats exactly" `Quick test_chaos_run_twice;
          Alcotest.test_case "sched depth-2 ablation repeats exactly" `Quick
            test_sched_run_twice;
        ] );
    ]
