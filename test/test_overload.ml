(* Overload protection, end to end: bounded mailboxes and per-link net
   queues, credit-based flow control on the request tree, master
   admission control with retry_after hints, barrier shedding — and the
   soak harness proving the composed stack keeps occupancy bounded,
   never loses an acked write, and drains once the storm stops. *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Mailbox = Flux_sim.Mailbox
module Net = Flux_sim.Net
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Barrier = Flux_modules.Barrier
module Overload = Flux_kap.Overload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Bounded mailboxes ---------------------------------------------------- *)

let test_mailbox_drop_newest () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:2 ~policy:Mailbox.Drop_newest () in
  List.iter (fun i -> Mailbox.send eng mb i) [ 1; 2; 3; 4 ];
  check int "capacity holds" 2 (Mailbox.length mb);
  check int "overflow dropped" 2 (Mailbox.dropped mb);
  check int "hwm at capacity" 2 (Mailbox.hwm mb);
  let got = ref [] in
  ignore
    (Proc.spawn eng (fun () ->
         let a = Mailbox.recv mb in
         let b = Mailbox.recv mb in
         got := [ a; b ])
      : Proc.pid);
  Engine.run eng;
  (* Oldest survive: the newest were rejected. *)
  check (Alcotest.list int) "fifo of survivors" [ 1; 2 ] !got

let test_mailbox_drop_oldest () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:2 ~policy:Mailbox.Drop_oldest () in
  List.iter (fun i -> Mailbox.send eng mb i) [ 1; 2; 3; 4 ];
  check int "capacity holds" 2 (Mailbox.length mb);
  check int "evictions counted" 2 (Mailbox.dropped mb);
  let got = ref [] in
  ignore
    (Proc.spawn eng (fun () ->
         let a = Mailbox.recv mb in
         let b = Mailbox.recv mb in
         got := [ a; b ])
      : Proc.pid);
  Engine.run eng;
  (* Newest survive: the head was evicted to make room. *)
  check (Alcotest.list int) "ring-buffer survivors" [ 3; 4 ] !got

let test_mailbox_block_parks_and_drains () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 ~policy:Mailbox.Block () in
  List.iter (fun i -> Mailbox.send eng mb i) [ 1; 2; 3 ];
  check int "one queued" 1 (Mailbox.length mb);
  check int "two parked" 2 (Mailbox.blocked_senders mb);
  check int "nothing dropped" 0 (Mailbox.dropped mb);
  let got = ref [] in
  ignore
    (Proc.spawn eng (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv mb :: !got
         done)
      : Proc.pid);
  Engine.run eng;
  check (Alcotest.list int) "admitted in send order" [ 1; 2; 3 ] (List.rev !got);
  check int "drained" 0 (Mailbox.blocked_senders mb)

let test_mailbox_byte_bound () =
  let eng = Engine.create () in
  let mb =
    Mailbox.create ~max_bytes:10 ~policy:Mailbox.Drop_newest
      ~size_of:String.length ()
  in
  Mailbox.send eng mb "123456";
  Mailbox.send eng mb "7890";
  Mailbox.send eng mb "x";
  check int "bytes at cap" 10 (Mailbox.bytes mb);
  check int "over-byte send dropped" 1 (Mailbox.dropped mb);
  check int "byte hwm" 10 (Mailbox.hwm_bytes mb)

(* --- Bounded net links ---------------------------------------------------- *)

let flood net ~n =
  for i = 1 to n do
    Net.send net ~src:0 ~dst:1 ~size:100 i
  done

let test_net_block_defers_without_loss () =
  let eng = Engine.create () in
  let net = Net.create eng ~nodes:2 () in
  Net.set_link_limits net (Some { Net.max_msgs = 4; max_bytes = max_int; policy = Net.Block });
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  flood net ~n:32;
  Engine.run eng;
  let s = Net.stats net in
  check int "all delivered" 32 !got;
  check bool "sends were deferred" true (s.Net.overload_defers > 0);
  check int "nothing dropped" 0 s.Net.overload_drops;
  check bool "depth bounded" true (Net.max_link_depth_hwm net <= 4)

let test_net_drop_newest_sheds () =
  let eng = Engine.create () in
  let net = Net.create eng ~nodes:2 () in
  Net.set_link_limits net
    (Some { Net.max_msgs = 4; max_bytes = max_int; policy = Net.Drop_newest });
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  flood net ~n:32;
  Engine.run eng;
  let s = Net.stats net in
  check bool "some shed" true (s.Net.overload_drops > 0);
  check int "delivered + shed = offered" 32 (!got + s.Net.overload_drops);
  check bool "depth bounded" true (Net.max_link_depth_hwm net <= 4)

let test_net_drop_oldest_keeps_latest () =
  let eng = Engine.create () in
  let net = Net.create eng ~nodes:2 () in
  Net.set_link_limits net
    (Some { Net.max_msgs = 2; max_bytes = max_int; policy = Net.Drop_oldest });
  let last = ref 0 in
  let got = ref 0 in
  Net.set_handler net 1 (fun ~src:_ i ->
      incr got;
      last := i);
  flood net ~n:16;
  Engine.run eng;
  let s = Net.stats net in
  check bool "some evicted" true (s.Net.overload_drops > 0);
  check int "delivered + evicted = offered" 16 (!got + s.Net.overload_drops);
  (* Eviction favours fresh data: the final message always survives. *)
  check int "latest delivered" 16 !last

let test_net_unbounded_unchanged () =
  (* The bounded machinery must be pay-for-what-you-use: with no limits
     installed the delivery schedule and stats match the seed model. *)
  let run limits =
    let eng = Engine.create () in
    let net = Net.create eng ~nodes:3 () in
    Net.set_link_limits net limits;
    let log = ref [] in
    Net.set_handler net 1 (fun ~src m -> log := (src, m, Engine.now eng) :: !log);
    for i = 1 to 10 do
      Net.send net ~src:0 ~dst:1 ~size:(50 * i) i;
      Net.send net ~src:2 ~dst:1 ~size:77 (100 + i)
    done;
    Engine.run eng;
    !log
  in
  let loose = Some { Net.max_msgs = max_int; max_bytes = max_int; policy = Net.Block } in
  Alcotest.(check bool)
    "loose limits deliver identically" true
    (run None = run loose)

(* --- Master admission control --------------------------------------------- *)

let test_admission_sheds_and_recovers () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:2 () in
  let kvs =
    Kvs.load sess
      ~config:
        {
          Kvs.default_config with
          Kvs.apply_cpu_per_tuple = 1e-3;
          admission_max_intake = 2;
          admission_retry_after = 1e-3;
        }
      ()
  in
  (* Phase 1: single-attempt mputs straight at the master, so the busy
     rejection surfaces to the caller instead of being absorbed by an
     intermediate hop's retries. *)
  let api = Api.connect sess ~rank:0 in
  let ok = ref 0 and busy = ref 0 and other = ref 0 in
  for i = 1 to 16 do
    Api.rpc_async api ~timeout:0.2 ~attempts:1 ~idempotent:true ~topic:"kvs.mput"
      (Json.obj
         [
           ( "bindings",
             Json.list [ Json.obj [ ("key", Printf.ksprintf Json.string "adm.%d" i); ("v", Json.int i) ] ]
           );
         ])
      ~reply:(fun r ->
        match r with
        | Ok _ -> incr ok
        | Error e when Session.busy_retry_after e <> None -> incr busy
        | Error _ -> incr other)
  done;
  Engine.run eng;
  check int "all resolved" 16 (!ok + !busy + !other);
  check bool "some admitted" true (!ok > 0);
  check bool "overflow shed busy" true (!busy > 0);
  check int "no other failures" 0 !other;
  check int "gate counted the sheds" !busy (Kvs.admission_sheds kvs.(0));
  check bool "intake stayed bounded" true (Kvs.intake_hwm kvs.(0) <= 2);
  check int "intake drained" 0 (Kvs.intake_depth kvs.(0));
  (* Phase 2: the same burst from a slave rank, with retries enabled —
     the hint is honoured along the way and every op eventually lands. *)
  let api = Api.connect sess ~rank:1 in
  let ok2 = ref 0 in
  for i = 1 to 16 do
    Api.rpc_async api ~timeout:2.0 ~attempts:8 ~idempotent:true ~topic:"kvs.mput"
      (Json.obj
         [
           ( "bindings",
             Json.list
               [ Json.obj [ ("key", Printf.ksprintf Json.string "adm2.%d" i); ("v", Json.int i) ] ] );
         ])
      ~reply:(fun r -> if Result.is_ok r then incr ok2)
  done;
  Engine.run eng;
  check int "retry_after absorbs the burst" 16 !ok2;
  check bool "busy retries happened" true (Session.rpc_busy_retries sess > 0)

let test_busy_error_roundtrip () =
  (match Session.busy_retry_after (Session.busy_error ~retry_after:0.25) with
  | Some f -> check bool "retry_after survives" true (Float.abs (f -. 0.25) < 1e-9)
  | None -> Alcotest.fail "busy error did not parse");
  check bool "bare busy" true (Session.busy_retry_after "busy" = Some 0.0);
  check bool "timeout is not busy" true (Session.busy_retry_after "timeout" = None);
  check bool "prefix must be exact" true (Session.busy_retry_after "busybody" = None)

(* --- Barrier shedding ----------------------------------------------------- *)

let test_barrier_sheds_direct_enters () =
  let eng = Engine.create () in
  let sess = Session.create eng ~size:2 () in
  let bars = Barrier.load sess ~max_pending:1 () in
  let done_ok = ref 0 and busy_seen = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Proc.spawn eng (fun () ->
           let api = Api.connect sess ~rank:1 in
           let rec go tries =
             if tries > 20 then Alcotest.fail "barrier retry budget exhausted";
             match Barrier.enter api ~name:"ov" ~nprocs:3 with
             | Ok () -> incr done_ok
             | Error e -> (
               match Session.busy_retry_after e with
               | Some after ->
                 incr busy_seen;
                 Proc.sleep (Float.max after 1e-4);
                 go (tries + 1)
               | None -> Alcotest.failf "unexpected barrier error: %s" e)
           in
           go 0)
        : Proc.pid)
  done;
  Engine.run eng;
  check int "all three released" 3 !done_ok;
  check bool "overflow enters were shed" true (!busy_seen > 0);
  check int "instance counted sheds" !busy_seen
    (Array.fold_left (fun acc b -> acc + Barrier.sheds b) 0 bars)

(* --- The soak ------------------------------------------------------------- *)

let soak_cfg seed =
  {
    Overload.default with
    Overload.seed;
    size = 24;
    producers = [ 20; 21; 22; 23 ];
    duration = 0.08;
    rate = 2.0 *. Overload.master_capacity Overload.default;
    flow = Some { Session.default_flow_config with Session.flow_credits = 128; flow_stash = 192 };
    link_limits = Some { Net.max_msgs = 128; max_bytes = max_int; policy = Net.Block };
    kvs =
      {
        Overload.default.Overload.kvs with
        Kvs.admission_max_intake = 96;
      };
  }

let assert_protected label (r : Overload.report) =
  List.iter (fun v -> Printf.printf "%s violation: %s\n%!" label v) r.Overload.violations;
  check int (label ^ ": no violations") 0 (List.length r.Overload.violations);
  check int (label ^ ": zero acked-write loss") 0 r.Overload.lost_acks;
  check int (label ^ ": monotonic reads held") 0 r.Overload.monotonic_violations;
  check bool (label ^ ": drained") true r.Overload.drained;
  check bool (label ^ ": made progress") true (r.Overload.acked > 0);
  check bool (label ^ ": every op resolved") true
    (r.Overload.offered = r.Overload.acked + r.Overload.shed + r.Overload.failed)

let test_soak seed () =
  let cfg = soak_cfg seed in
  let r = Overload.run cfg in
  assert_protected (Printf.sprintf "seed %d" seed) r;
  check bool "stash bounded" true (r.Overload.flow_stash_hwm <= 192);
  check bool "links bounded" true (r.Overload.link_depth_hwm <= 128);
  check bool "intake bounded" true (r.Overload.intake_hwm <= 96)

let test_soak_deterministic () =
  let a = Overload.run (soak_cfg 42) in
  let b = Overload.run (soak_cfg 42) in
  check int "offered" a.Overload.offered b.Overload.offered;
  check int "acked" a.Overload.acked b.Overload.acked;
  check int "shed" a.Overload.shed b.Overload.shed;
  check int "sim_events" a.Overload.sim_events b.Overload.sim_events;
  check int "final_version" a.Overload.final_version b.Overload.final_version;
  check bool "clock" true (a.Overload.final_clock = b.Overload.final_clock)

let test_soak_bursty () =
  let r = Overload.run { (soak_cfg 7) with Overload.profile = Overload.Bursty } in
  assert_protected "bursty" r

let test_soak_chaos_overlay () =
  let r = Overload.run { (soak_cfg 11) with Overload.chaos_kill = true } in
  assert_protected "chaos overlay" r

let test_unprotected_still_correct () =
  (* Every layer off: queues are unbounded, so occupancy assertions are
     vacuous — but no acked write may be lost and the run must drain. *)
  let cfg =
    {
      (soak_cfg 3) with
      Overload.flow = None;
      link_limits = None;
      kvs = { (soak_cfg 3).Overload.kvs with Kvs.admission_max_intake = 0 };
    }
  in
  let r = Overload.run cfg in
  assert_protected "unprotected" r;
  check int "nothing shed without a gate" 0 r.Overload.shed

let () =
  let seeds = List.init 8 (fun i -> 1 + (13 * i)) in
  Alcotest.run "overload"
    [
      ( "mailbox",
        [
          Alcotest.test_case "drop_newest" `Quick test_mailbox_drop_newest;
          Alcotest.test_case "drop_oldest" `Quick test_mailbox_drop_oldest;
          Alcotest.test_case "block parks and drains" `Quick test_mailbox_block_parks_and_drains;
          Alcotest.test_case "byte bound" `Quick test_mailbox_byte_bound;
        ] );
      ( "net",
        [
          Alcotest.test_case "block defers without loss" `Quick test_net_block_defers_without_loss;
          Alcotest.test_case "drop_newest sheds" `Quick test_net_drop_newest_sheds;
          Alcotest.test_case "drop_oldest keeps latest" `Quick test_net_drop_oldest_keeps_latest;
          Alcotest.test_case "unbounded path unchanged" `Quick test_net_unbounded_unchanged;
        ] );
      ( "admission",
        [
          Alcotest.test_case "sheds and recovers" `Quick test_admission_sheds_and_recovers;
          Alcotest.test_case "busy error roundtrip" `Quick test_busy_error_roundtrip;
        ] );
      ("barrier", [ Alcotest.test_case "sheds direct enters" `Quick test_barrier_sheds_direct_enters ]);
      ( "soak",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d bounded, zero loss" seed) `Quick
              (test_soak seed))
          seeds
        @ [
            Alcotest.test_case "same seed, same report" `Quick test_soak_deterministic;
            Alcotest.test_case "bursty profile" `Quick test_soak_bursty;
            Alcotest.test_case "chaos overlay" `Quick test_soak_chaos_overlay;
            Alcotest.test_case "unprotected still correct" `Quick test_unprotected_still_correct;
          ] );
    ]
