examples/io_coscheduling.ml: Float Flux_core Flux_sim List Printf
