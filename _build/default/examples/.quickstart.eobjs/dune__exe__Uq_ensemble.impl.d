examples/uq_ensemble.ml: Float Flux_baseline Flux_core Flux_sim Flux_util List Printf
