examples/tool_launch.ml: Array Flux_cmb Flux_core Flux_json Flux_kvs Flux_modules Flux_sim List Printf
