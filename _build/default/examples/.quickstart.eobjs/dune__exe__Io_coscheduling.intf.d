examples/io_coscheduling.mli:
