examples/uq_ensemble.mli:
