examples/elastic_center.mli:
