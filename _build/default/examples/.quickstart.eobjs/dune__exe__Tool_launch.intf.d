examples/tool_launch.mli:
