examples/elastic_center.ml: Flux_core Flux_json Flux_sim Flux_trace List Printf String
