examples/quickstart.mli:
