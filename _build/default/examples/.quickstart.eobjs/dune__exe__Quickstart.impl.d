examples/quickstart.ml: Flux_cmb Flux_json Flux_kvs Flux_modules Flux_sim Printf
