examples/power_capping.ml: Flux_core Flux_sim List Printf
