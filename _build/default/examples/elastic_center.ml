(* A day in the life of an elastic, multi-user center.

   Combines the pieces the paper's design section promises: a fair-share
   policy so no user monopolizes the machine, a malleable simulation
   that stretches into idle nodes and shrinks under pressure, a dynamic
   site power cap, and run-time tracing of every scheduling decision.

   Run with: dune exec examples/elastic_center.exe *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Tracer = Flux_trace.Tracer
module Export = Flux_trace.Export
module Center = Flux_core.Center
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Pool = Flux_core.Pool

let nodes = 32

let () =
  let c = Center.create ~nodes ~policy:"fairshare" ~power_budget:(300.0 *. 32.0) () in
  let tr = Tracer.create ~now:(fun () -> Engine.now c.Center.eng) () in
  Instance.set_tracer c.Center.root (Some tr);

  (* Alice's malleable simulation arrives first and stretches over the
     whole machine while it is otherwise idle. *)
  let alice =
    Instance.submit c.Center.root
      ~spec:
        (Jobspec.make ~nnodes:8 ~power_per_node:300.0
           ~elasticity:(Jobspec.Malleable (4, 32)) ~user:"alice" ())
      ~payload:(Job.Sleep 60.0)
  in
  (* Bob's rigid jobs arrive in a burst at t=10; fair share orders them
     ahead of Alice's queued second job even though hers arrived first. *)
  let alice2 = ref None and bobs = ref [] in
  ignore
    (Engine.schedule c.Center.eng ~delay:10.0 (fun () ->
         alice2 :=
           Some
             (Instance.submit c.Center.root
                ~spec:(Jobspec.make ~nnodes:8 ~power_per_node:300.0 ~user:"alice" ())
                ~payload:(Job.Sleep 20.0));
         bobs :=
           List.init 2 (fun _ ->
               Instance.submit c.Center.root
                 ~spec:(Jobspec.make ~nnodes:8 ~power_per_node:300.0 ~user:"bob" ())
                 ~payload:(Job.Sleep 20.0)))
      : Engine.handle);
  (* At t=25 the site halves the power budget for ten seconds. *)
  ignore
    (Engine.schedule c.Center.eng ~delay:25.0 (fun () ->
         Printf.printf "t=25: site lowers power cap to %.0f W\n" (300.0 *. 16.0);
         Instance.set_power_cap c.Center.root (300.0 *. 16.0))
      : Engine.handle);
  ignore
    (Engine.schedule c.Center.eng ~delay:35.0 (fun () ->
         Printf.printf "t=35: cap restored\n";
         Instance.set_power_cap c.Center.root (300.0 *. 32.0))
      : Engine.handle);
  (* Probe Alice's malleable width over time. *)
  let widths = ref [] in
  let probe =
    Engine.every c.Center.eng ~period:5.0 (fun () ->
        widths := (Engine.now c.Center.eng, List.length alice.Job.granted_nodes) :: !widths)
  in
  ignore (Engine.schedule c.Center.eng ~delay:70.0 (fun () -> Engine.cancel probe) : Engine.handle);
  Center.run c;

  Printf.printf "\nAlice's malleable job width over time:\n";
  List.iter
    (fun (t, w) -> Printf.printf "  t=%5.1fs  %2d nodes %s\n" t w (String.make w '#'))
    (List.rev !widths);
  let st = Instance.stats c.Center.root in
  Printf.printf "\n%d jobs completed; %d scheduling cycles traced\n" st.Instance.st_completed
    (Tracer.count tr ~cat:"sched" ~name:"cycle");
  (match !bobs with
  | b :: _ ->
    Printf.printf
      "burst absorbed: the malleable job shrank so bob waited %.1fs and alice's second job %.1fs\n"
      (Job.wait_time b)
      (match !alice2 with Some a -> Job.wait_time a | None -> nan)
  | [] -> ());
  print_newline ();
  print_string (Export.summary tr)
