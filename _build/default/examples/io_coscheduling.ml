(* Co-scheduling compute nodes with the shared parallel file system.

   The paper's motivating failure mode: a handful of unrelated
   I/O-intensive jobs, each individually fine, overlap their bursts and
   saturate the center-wide file system. A traditional RJMS schedules
   nodes only; Flux's generalized resource model makes filesystem
   bandwidth a first-class scheduled resource, so the I/O-heavy jobs
   are serialized against the bandwidth budget instead.

   Run with: dune exec examples/io_coscheduling.exe *)

module Engine = Flux_sim.Engine
module Center = Flux_core.Center
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Pool = Flux_core.Pool

let nodes = 32
let fs_capacity = 100.0 (* GB/s *)

(* Six jobs; three are I/O bursts demanding 60 GB/s each. *)
let workload () =
  let io n = Jobspec.make ~nnodes:n ~fs_bandwidth:60.0 ~walltime_est:30.0 () in
  let cpu n = Jobspec.make ~nnodes:n ~walltime_est:30.0 () in
  [
    (io 4, 20.0); (cpu 8, 25.0); (io 4, 20.0); (cpu 8, 25.0); (io 4, 20.0); (cpu 4, 15.0);
  ]

let run ~coschedule =
  let c =
    if coschedule then Center.create ~nodes ~fs_bandwidth:fs_capacity ()
    else Center.create ~nodes ()
  in
  let jobs =
    List.map
      (fun (spec, d) -> Instance.submit c.Center.root ~spec ~payload:(Job.Sleep d))
      (workload ())
  in
  (* Sample the aggregate I/O demand while running. *)
  let peak_demand = ref 0.0 in
  let h =
    Engine.every c.Center.eng ~period:0.5 (fun () ->
        peak_demand := Float.max !peak_demand (Pool.bandwidth_in_use (Instance.pool c.Center.root)))
  in
  (* When bandwidth is not a scheduled resource, track what the jobs
     WOULD demand. *)
  let naive_peak = ref 0.0 in
  let h2 =
    Engine.every c.Center.eng ~period:0.5 (fun () ->
        let running =
          List.filter (fun (j : Job.t) -> j.Job.jstate = Job.Running) jobs
        in
        let demand =
          List.fold_left
            (fun acc (j : Job.t) -> acc +. j.Job.spec.Jobspec.fs_bandwidth)
            0.0 running
        in
        naive_peak := Float.max !naive_peak demand)
  in
  ignore
    (Engine.schedule c.Center.eng ~delay:200.0 (fun () ->
         Engine.cancel h;
         Engine.cancel h2)
      : Engine.handle);
  Center.run c;
  let st = Instance.stats c.Center.root in
  (st, !naive_peak)

let () =
  Printf.printf "shared file system capacity: %.0f GB/s; three jobs burst 60 GB/s each\n\n"
    fs_capacity;
  let naive, naive_demand = run ~coschedule:false in
  Printf.printf
    "traditional (nodes only) : makespan=%5.1fs  peak fs demand=%5.1f GB/s  -> %s\n"
    naive.Instance.st_makespan naive_demand
    (if naive_demand > fs_capacity then "FILE SYSTEM OVERSUBSCRIBED (center-wide I/O disruption)"
     else "ok");
  let cosched, cosched_demand = run ~coschedule:true in
  Printf.printf
    "flux co-scheduling       : makespan=%5.1fs  peak fs demand=%5.1f GB/s  -> %s\n"
    cosched.Instance.st_makespan cosched_demand
    (if cosched_demand > fs_capacity then "oversubscribed" else "bursts serialized, fs protected");
  Printf.printf
    "\nthe bandwidth-aware schedule trades %.1fs of makespan for a file system that never exceeds capacity\n"
    (cosched.Instance.st_makespan -. naive.Instance.st_makespan)
