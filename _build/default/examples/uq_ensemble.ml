(* Uncertainty-Quantification ensemble: thousands of small jobs.

   The paper motivates hierarchical scheduling with exactly this
   workload: a monolithic controller serializes every job start, while
   Flux lets a parent lease resource blocks to child instances whose
   schedulers run in parallel. This example runs the same ensemble both
   ways and prints the comparison.

   Run with: dune exec examples/uq_ensemble.exe *)

module Rng = Flux_util.Rng
module Engine = Flux_sim.Engine
module Center = Flux_core.Center
module Instance = Flux_core.Instance
module Job = Flux_core.Job
module Jobspec = Flux_core.Jobspec
module Workload = Flux_core.Workload
module Central = Flux_baseline.Central

let nodes = 64
let n_jobs = 1500

let ensemble () =
  (* 1-node members, ~0.3 s each: a scale-bridging/UQ style stream. *)
  List.map
    (fun (s : Job.submission) ->
      match s.Job.sub_payload with
      | Job.Sleep d -> { s with Job.sub_payload = Job.Sleep (Float.max 0.05 (d /. 8.0)) }
      | _ -> s)
    (Workload.uq_ensemble (Rng.create 7) ~n:n_jobs ~mean_duration:2.4 ())

let () =
  Printf.printf "ensemble: %d one-node jobs (%.0f node-seconds) on %d nodes\n\n" n_jobs
    (Workload.total_node_seconds (ensemble ()))
    nodes;

  (* Traditional centralized RJMS. *)
  let eng = Engine.create () in
  let central = Central.create eng ~nnodes:nodes () in
  Central.submit_plan central (ensemble ());
  Engine.run eng;
  let cs = Central.stats central in
  Printf.printf "centralized controller : completed=%d makespan=%6.1fs mean_wait=%5.1fs (%d sched cycles on one CPU)\n"
    cs.Central.bs_completed cs.Central.bs_makespan cs.Central.bs_mean_wait
    cs.Central.bs_sched_cycles;

  (* Hierarchical Flux: the root leases 8-node blocks to 8 child
     instances; each child schedules its share independently. *)
  let c = Center.create ~nodes () in
  let parts = Workload.split_round_robin 8 (ensemble ()) in
  List.iter
    (fun workload ->
      ignore
        (Instance.submit c.Center.root ~spec:(Jobspec.make ~nnodes:8 ())
           ~payload:(Job.Child { policy = "fcfs"; workload })
          : Job.t))
    parts;
  Center.run c;
  let fs = Instance.stats_recursive c.Center.root in
  Printf.printf
    "hierarchical flux (8x8): completed=%d makespan=%6.1fs mean_wait=%5.1fs (%d cycles across 9 parallel schedulers)\n"
    (fs.Instance.st_completed - 8) (* subtract the 8 wrapper jobs *)
    fs.Instance.st_makespan fs.Instance.st_mean_wait fs.Instance.st_sched_cycles;
  Printf.printf "\nscheduler parallelism speedup: %.2fx\n"
    (cs.Central.bs_makespan /. fs.Instance.st_makespan)
