(* Quickstart: bring up a comms session, talk to the KVS, synchronize
   with a barrier, and launch a parallel program with wexec.

   Run with: dune exec examples/quickstart.exe *)

module Json = Flux_json.Json
module Engine = Flux_sim.Engine
module Proc = Flux_sim.Proc
module Session = Flux_cmb.Session
module Api = Flux_cmb.Api
module Kvs = Flux_kvs.Kvs_module
module Client = Flux_kvs.Client
module Barrier = Flux_modules.Barrier
module Wexec = Flux_modules.Wexec

let expect label = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" label e)

(* A "program" for wexec to launch: each task greets and reports. *)
let () =
  Wexec.register_program "greeter" (fun ctx ->
      Proc.sleep 0.01;
      ctx.Wexec.px_printf
        (Printf.sprintf "hello from task %d/%d on rank %d" ctx.Wexec.px_global_index
           ctx.Wexec.px_ntasks ctx.Wexec.px_rank))

let () =
  (* 1. A 16-node comms session: one CMB broker per node, three overlay
     planes, kvs + barrier + wexec comms modules loaded. *)
  let eng = Engine.create () in
  let sess = Session.create eng ~size:16 () in
  ignore (Kvs.load sess () : Kvs.t array);
  ignore (Barrier.load sess () : Barrier.t array);
  ignore (Wexec.load sess () : Wexec.t array);
  print_endline "session up: 16 brokers, binary RPC tree, kvs/barrier/wexec loaded";

  (* 2. Two client processes on different nodes share state through the
     KVS with causal consistency. *)
  let version = Flux_sim.Ivar.create () in
  ignore
    (Proc.spawn eng ~name:"writer" (fun () ->
         let c = Client.connect sess ~rank:3 in
         expect "put" (Client.put c ~key:"demo.message" (Json.string "flux works"));
         expect "put" (Client.put c ~key:"demo.answer" (Json.int 42));
         let v = expect "commit" (Client.commit c) in
         Printf.printf "writer(rank 3): committed KVS version %d\n" v;
         Flux_sim.Ivar.fill eng version v)
      : Proc.pid);
  ignore
    (Proc.spawn eng ~name:"reader" (fun () ->
         let c = Client.connect sess ~rank:14 in
         let v = Proc.await version in
         expect "wait_version" (Client.wait_version c v);
         let msg = expect "get" (Client.get c ~key:"demo.message") in
         let answer = expect "get" (Client.get c ~key:"demo.answer") in
         Printf.printf "reader(rank 14): demo.message=%s demo.answer=%s\n"
           (Json.to_string msg) (Json.to_string answer))
      : Proc.pid);

  (* 3. A collective barrier across eight processes. *)
  let released = ref 0 in
  for r = 0 to 7 do
    ignore
      (Proc.spawn eng (fun () ->
           let api = Api.connect sess ~rank:(r * 2) in
           Proc.sleep (0.001 *. float_of_int r);
           expect "barrier" (Barrier.enter api ~name:"demo-barrier" ~nprocs:8);
           incr released)
        : Proc.pid)
  done;

  (* 4. Launch 2 tasks x 4 nodes of "greeter" in bulk; stdout is
     captured in the KVS under lwj.<jobid>.*. *)
  ignore
    (Proc.spawn eng ~name:"launcher" (fun () ->
         let api = Api.connect sess ~rank:0 in
         let c =
           expect "wexec.run"
             (Wexec.run api ~jobid:"demo-job" ~prog:"greeter" ~per_rank:2
                ~ranks:[ 4; 5; 6; 7 ] ())
         in
         Printf.printf "wexec: %d tasks completed (%d failed)\n" c.Wexec.c_ntasks
           c.Wexec.c_failed;
         let kvs = Client.connect sess ~rank:0 in
         match Client.get kvs ~key:"lwj.demo-job.5-1.stdout" with
         | Ok (Json.String out) -> Printf.printf "captured stdout of task 5-1: %s" out
         | Ok _ | Error _ -> print_endline "stdout missing?")
      : Proc.pid);

  Engine.run eng;
  Printf.printf "barrier released %d/8 processes together\n" !released;
  Printf.printf "done (virtual time %.3f s)\n" (Engine.now eng)
